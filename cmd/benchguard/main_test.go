package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEMDSimplexK128-4 	      10	   3000000 ns/op
BenchmarkEMDSimplexK128-4 	      10	   2900000 ns/op
BenchmarkEMDSimplexK256 	      10	  13100000 ns/op
BenchmarkDetectorPushHistogram/cache-4 	 5000	 250000 ns/op	0 B/op	0 allocs/op
BenchmarkUnrelated-4 	 100	 999999 ns/op
PASS
ok  	repro	2.394s
`

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchKeepsMinAndStripsCPUSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkEMDSimplexK128"] != 2900000 {
		t.Errorf("K128 min = %g, want 2900000 (best of the -count runs)", got["BenchmarkEMDSimplexK128"])
	}
	if got["BenchmarkEMDSimplexK256"] != 13100000 {
		t.Errorf("K256 = %g (no -N suffix variant)", got["BenchmarkEMDSimplexK256"])
	}
	if got["BenchmarkDetectorPushHistogram/cache"] != 250000 {
		t.Errorf("sub-benchmark = %g, want 250000 with suffix stripped and path kept", got["BenchmarkDetectorPushHistogram/cache"])
	}
	if len(got) != 4 {
		t.Errorf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
}

func TestRunPassesWithinThreshold(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks":{
		"BenchmarkEMDSimplexK128":{"after_ns_op":2881765},
		"BenchmarkEMDSimplexK256":{"after_ns_op":12973307}}}`)
	var out strings.Builder
	// K128: 2900000 vs 2881765 is +0.6%; K256: 13100000 vs 12973307 is
	// +1.0% — both inside the 15% gate. BenchmarkUnrelated has no
	// baseline and must be skipped, not failed.
	if err := run(base, 15, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 benchmark(s) within 15%") {
		t.Errorf("summary missing:\n%s", out.String())
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks":{
		"BenchmarkEMDSimplexK128":{"after_ns_op":2000000},
		"BenchmarkEMDSimplexK256":{"after_ns_op":12973307}}}`)
	var out strings.Builder
	err := run(base, 15, strings.NewReader(sampleBench), &out)
	if err == nil {
		t.Fatalf("run passed despite K128 at 2900000 vs baseline 2000000 (+45%%)\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkEMDSimplexK128") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("report does not flag the regression:\n%s", out.String())
	}
}

func TestRunErrorsWithoutOverlapOrInput(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks":{"BenchmarkNeverRun":{"after_ns_op":1}}}`)
	var out strings.Builder
	if err := run(base, 15, strings.NewReader(sampleBench), &out); err == nil || !strings.Contains(err.Error(), "no overlap") {
		t.Errorf("want no-overlap error, got %v", err)
	}
	if err := run(base, 15, strings.NewReader("PASS\nok repro 1s\n"), &out); err == nil || !strings.Contains(err.Error(), "no benchmark results") {
		t.Errorf("want empty-input error, got %v", err)
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), 15, strings.NewReader(sampleBench), &out); err == nil {
		t.Error("want error for missing baseline file")
	}
}
