// Command benchguard is the CI bench-regression gate: it reads `go test
// -bench` output on stdin, extracts the best (minimum) ns/op observed
// per benchmark, and compares each against the after_ns_op recorded in a
// BENCH_PR*.json baseline. A benchmark slower than baseline by more than
// -max-regress percent fails the gate.
//
// Usage:
//
//	go test -run xxx -bench 'BenchmarkEMDSimplexK(128|256|512)$' -benchtime 10x -count 3 . \
//	  | go run ./cmd/benchguard -baseline BENCH_PR5.json
//
// Benchmarks present in the input but absent from the baseline (and vice
// versa) are skipped — the gate only judges the overlap, so one baseline
// file can guard a superset or subset of the smoke run. The comparison
// is deliberately one-sided: getting faster never fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// baselineFile is the subset of the BENCH_PR*.json schema the guard
// needs: benchmark name -> recorded after_ns_op.
type baselineFile struct {
	Benchmarks map[string]struct {
		AfterNsOp float64 `json:"after_ns_op"`
	} `json:"benchmarks"`
}

// parseBench extracts min ns/op per benchmark from `go test -bench`
// output. The trailing -N GOMAXPROCS suffix is stripped so names match
// the baseline regardless of the box's core count; sub-benchmark paths
// (Benchmark/case) are kept intact.
func parseBench(r io.Reader) (map[string]float64, error) {
	best := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkName-4  100  12345 ns/op [...]"
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 1 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			return nil, fmt.Errorf("benchguard: bad ns/op %q in line %q", fields[nsIdx], sc.Text())
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if cur, ok := best[name]; !ok || ns < cur {
			best[name] = ns
		}
	}
	return best, sc.Err()
}

// run is the testable body: returns an error if any overlapping
// benchmark regressed past the threshold.
func run(baselinePath string, maxRegress float64, in io.Reader, out io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("benchguard: %w", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchguard: parse %s: %w", baselinePath, err)
	}
	got, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("benchguard: no benchmark results on input")
	}
	checked := 0
	var failures []string
	for name, ns := range got {
		b, ok := base.Benchmarks[name]
		if !ok || b.AfterNsOp <= 0 {
			continue
		}
		checked++
		limit := b.AfterNsOp * (1 + maxRegress/100)
		status := "ok"
		if ns > limit {
			status = "REGRESSED"
			failures = append(failures, name)
		}
		fmt.Fprintf(out, "%-36s %12.0f ns/op  baseline %12.0f  (limit %+.0f%%)  %s\n",
			name, ns, b.AfterNsOp, maxRegress, status)
	}
	if checked == 0 {
		return fmt.Errorf("benchguard: no overlap between input (%d benchmarks) and baseline %s", len(got), baselinePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchguard: %d benchmark(s) regressed >%g%% vs %s: %s",
			len(failures), maxRegress, baselinePath, strings.Join(failures, ", "))
	}
	fmt.Fprintf(out, "benchguard: %d benchmark(s) within %g%% of %s\n", checked, maxRegress, baselinePath)
	return nil
}

func main() {
	baseline := flag.String("baseline", "", "BENCH_PR*.json file holding after_ns_op baselines")
	maxRegress := flag.Float64("max-regress", 15, "max allowed slowdown vs baseline, percent")
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}
	if err := run(*baseline, *maxRegress, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
