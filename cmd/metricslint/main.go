// Command metricslint checks a Prometheus text exposition against the
// structural invariants the fleet's scrape pipeline depends on:
// HELP/TYPE metadata before every family's first sample, no duplicate
// series, parseable values, and per-label-set histogram invariants
// (monotone buckets, le="+Inf" equal to _count). It is the CI gate that
// keeps a live bagcpd -serve or -route scrape conformant.
//
// Usage:
//
//	metricslint http://localhost:8080/metrics   # scrape and check a URL
//	metricslint < exposition.txt                # check stdin
//	metricslint -require NAME url-or-stdin      # also demand a series
//
// Exit status 0 when clean, 1 with one line per violation otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var requires multiFlag
	flag.Var(&requires, "require", "metric family name that must be present (repeatable)")
	timeout := flag.Duration("timeout", 10*time.Second, "HTTP timeout when scraping a URL")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: metricslint [flags] [url]\n\nChecks a Prometheus exposition (scraped from url, or stdin) for\nstructural conformance.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	var (
		body io.Reader = os.Stdin
		from           = "stdin"
	)
	if flag.NArg() == 1 {
		url := flag.Arg(0)
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricslint: scraping %s: %v\n", url, err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "metricslint: scraping %s: status %d\n", url, resp.StatusCode)
			os.Exit(1)
		}
		body, from = resp.Body, url
	}

	blob, err := io.ReadAll(body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: reading %s: %v\n", from, err)
		os.Exit(1)
	}

	failed := false
	for _, lintErr := range obs.Lint(strings.NewReader(string(blob))) {
		failed = true
		fmt.Fprintf(os.Stderr, "metricslint: %s: %v\n", from, lintErr)
	}

	if len(requires) > 0 {
		fams, err := obs.ParseExposition(strings.NewReader(string(blob)))
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "metricslint: %s: %v\n", from, err)
		}
		have := make(map[string]bool, len(fams))
		for _, f := range fams {
			if len(f.Samples) > 0 {
				have[f.Name] = true
			}
		}
		for _, name := range requires {
			if !have[name] {
				failed = true
				fmt.Fprintf(os.Stderr, "metricslint: %s: required family %s has no samples\n", from, name)
			}
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Printf("metricslint: %s: ok\n", from)
}

// multiFlag collects repeated -require values.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
