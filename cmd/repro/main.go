// Command repro regenerates the paper's evaluation artifacts (Fig. 1,
// Fig. 6, Table 1, Fig. 7, Fig. 10, Fig. 11) as plain-text reports.
//
// Usage:
//
//	repro -exp fig1            # one artifact
//	repro -exp all             # everything (paper-scale; takes minutes)
//	repro -exp fig10 -scale small -seed 7
//	repro -exp ablation        # the DESIGN.md §5 design-choice studies
//	repro -exp engine          # multi-stream engine scale-out demo
//	repro -exp pairwise        # tiled + sharded pairwise-EMD demo
//	repro -exp solverscale     # classic vs block-pricing EMD solver study
//	repro -exp distprofile     # offline distance-profile segmentation demo
//
// The pairwise experiment also exposes the multi-process sharding flow:
// each shard process computes its tile subset of the corpus matrix and
// emits a mergeable partial as JSON, and a collector merges them —
//
//	repro -exp pairwise -shard 0/2 > p0.json
//	repro -exp pairwise -shard 1/2 > p1.json
//	repro -exp pairwise -merge p0.json,p1.json
//
// The merged matrix is verified bit-identical to a single-process run.
//
// The -scale small option shrinks the workloads (fewer nodes, records and
// bootstrap replicates) so every figure regenerates in seconds; the shape
// claims still hold at that scale. EXPERIMENTS.md records a full-scale
// run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/bipartite"
	"repro/internal/enron"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|fig6|table1|fig7|fig10|fig11|ablation|engine|pairwise|solverscale|distprofile|all")
	seed := flag.Int64("seed", 1, "master RNG seed")
	scale := flag.String("scale", "full", "workload scale: full|small")
	shard := flag.String("shard", "", "with -exp pairwise: compute shard i/k of the corpus matrix and emit the partial as JSON")
	merge := flag.String("merge", "", "with -exp pairwise: comma-separated partial JSON files to merge and verify")
	flag.Parse()

	small := *scale == "small"
	if *scale != "full" && *scale != "small" {
		fmt.Fprintf(os.Stderr, "repro: unknown scale %q (want full or small)\n", *scale)
		os.Exit(2)
	}
	if *shard != "" || *merge != "" {
		if *exp != "pairwise" {
			fmt.Fprintln(os.Stderr, "repro: -shard and -merge require -exp pairwise")
			os.Exit(2)
		}
		if *shard != "" && *merge != "" {
			fmt.Fprintln(os.Stderr, "repro: -shard and -merge are mutually exclusive")
			os.Exit(2)
		}
		if err := runPairwiseShardFlow(*seed, pairwiseOptions(small), *shard, *merge, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "repro: pairwise failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runners := map[string]func() (string, error){
		"fig1": func() (string, error) {
			r, err := experiments.Fig1(*seed)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"fig6": func() (string, error) {
			r, err := experiments.Fig6(*seed)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"table1": func() (string, error) {
			return experiments.Table1Report(), nil
		},
		"fig7": func() (string, error) {
			opts := experiments.Fig7Options{}
			if small {
				opts = experiments.Fig7Options{
					Subjects:            3,
					Replicates:          200,
					MeanRecordsPerBag:   150,
					MeanBagsPerActivity: 10,
				}
			}
			r, err := experiments.Fig7(*seed, opts)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"fig10": func() (string, error) {
			opts := experiments.Fig10Options{}
			if small {
				opts = experiments.Fig10Options{
					Graph:      bipartite.Section53Options{NodeLambda: 40, Steps: 200, TotalWeight: 10000},
					Replicates: 200,
				}
			}
			r, err := experiments.Fig10(*seed, opts)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"fig11": func() (string, error) {
			opts := experiments.Fig11Options{}
			if small {
				opts = experiments.Fig11Options{
					Corpus:     enron.Config{Employees: 60},
					Replicates: 200,
				}
			}
			r, err := experiments.Fig11(*seed, opts)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"ablation": func() (string, error) {
			r, err := experiments.Ablation(*seed)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"engine": func() (string, error) {
			opts := experiments.EngineScaleOptions{}
			if small {
				opts = experiments.EngineScaleOptions{Streams: 16, Steps: 24, Replicates: 100}
			}
			r, err := experiments.EngineScale(*seed, opts)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"pairwise": func() (string, error) {
			r, err := experiments.PairwiseScale(*seed, pairwiseOptions(small))
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"solverscale": func() (string, error) {
			opts := experiments.SolverScaleOptions{}
			if small {
				opts = experiments.SolverScaleOptions{Ks: []int{16, 32, 64}, Pairs: 2}
			}
			r, err := experiments.SolverScale(*seed, opts)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"distprofile": func() (string, error) {
			opts := experiments.DistProfileOptions{}
			if small {
				opts = experiments.DistProfileOptions{N: 80, PointsPerBag: 60, Replicates: 99}
			}
			r, err := experiments.DistProfileExperiment(*seed, opts)
			if err != nil {
				if r != nil {
					fmt.Print(r.Report)
				}
				return "", err
			}
			return r.Report, nil
		},
	}

	order := []string{"fig1", "fig6", "table1", "fig7", "fig10", "fig11", "ablation", "engine", "pairwise", "solverscale", "distprofile"}
	var selected []string
	if *exp == "all" {
		selected = order
	} else if _, ok := runners[*exp]; ok {
		selected = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (want one of %v or all)\n", *exp, order)
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		report, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(report)
		fmt.Printf("\n[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// pairwiseOptions sizes the pairwise demo corpus. Shard processes and
// the merge collector must agree on these (they are derived from -scale
// only), or the partials would describe different matrices.
func pairwiseOptions(small bool) experiments.PairwiseScaleOptions {
	if small {
		// Tile 12 gives a 4×4 tile grid (10 upper-triangle tiles), so even
		// the small demo genuinely distributes tiles across shards.
		return experiments.PairwiseScaleOptions{N: 48, PointsPerBag: 25, TileSize: 12}
	}
	return experiments.PairwiseScaleOptions{}
}

// runPairwiseShardFlow handles the multi-process halves of the pairwise
// experiment: -shard i/k computes one shard's partial and writes it as
// JSON to stdout; -merge f1,f2,... reads partials back, merges them, and
// prints the verification report.
func runPairwiseShardFlow(seed int64, opts experiments.PairwiseScaleOptions, shard, merge string, out io.Writer) error {
	if shard != "" {
		var idx, cnt int
		if n, err := fmt.Sscanf(shard, "%d/%d", &idx, &cnt); n != 2 || err != nil {
			return fmt.Errorf("bad -shard %q (want i/k, e.g. 0/2)", shard)
		}
		p, err := experiments.PairwiseShardPartial(seed, opts, idx, cnt)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(out)
		return enc.Encode(p)
	}
	var parts []*repro.PartialMatrix
	for _, path := range strings.Split(merge, ",") {
		blob, err := os.ReadFile(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		var p repro.PartialMatrix
		if err := json.Unmarshal(blob, &p); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		parts = append(parts, &p)
	}
	report, err := experiments.PairwiseMergeReport(seed, opts, parts)
	if report != "" {
		fmt.Fprint(out, report)
	}
	return err
}
