// Command repro regenerates the paper's evaluation artifacts (Fig. 1,
// Fig. 6, Table 1, Fig. 7, Fig. 10, Fig. 11) as plain-text reports.
//
// Usage:
//
//	repro -exp fig1            # one artifact
//	repro -exp all             # everything (paper-scale; takes minutes)
//	repro -exp fig10 -scale small -seed 7
//	repro -exp ablation        # the DESIGN.md §5 design-choice studies
//	repro -exp engine          # multi-stream engine scale-out demo
//
// The -scale small option shrinks the workloads (fewer nodes, records and
// bootstrap replicates) so every figure regenerates in seconds; the shape
// claims still hold at that scale. EXPERIMENTS.md records a full-scale
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bipartite"
	"repro/internal/enron"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|fig6|table1|fig7|fig10|fig11|ablation|engine|all")
	seed := flag.Int64("seed", 1, "master RNG seed")
	scale := flag.String("scale", "full", "workload scale: full|small")
	flag.Parse()

	small := *scale == "small"
	if *scale != "full" && *scale != "small" {
		fmt.Fprintf(os.Stderr, "repro: unknown scale %q (want full or small)\n", *scale)
		os.Exit(2)
	}

	runners := map[string]func() (string, error){
		"fig1": func() (string, error) {
			r, err := experiments.Fig1(*seed)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"fig6": func() (string, error) {
			r, err := experiments.Fig6(*seed)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"table1": func() (string, error) {
			return experiments.Table1Report(), nil
		},
		"fig7": func() (string, error) {
			opts := experiments.Fig7Options{}
			if small {
				opts = experiments.Fig7Options{
					Subjects:            3,
					Replicates:          200,
					MeanRecordsPerBag:   150,
					MeanBagsPerActivity: 10,
				}
			}
			r, err := experiments.Fig7(*seed, opts)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"fig10": func() (string, error) {
			opts := experiments.Fig10Options{}
			if small {
				opts = experiments.Fig10Options{
					Graph:      bipartite.Section53Options{NodeLambda: 40, Steps: 200, TotalWeight: 10000},
					Replicates: 200,
				}
			}
			r, err := experiments.Fig10(*seed, opts)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"fig11": func() (string, error) {
			opts := experiments.Fig11Options{}
			if small {
				opts = experiments.Fig11Options{
					Corpus:     enron.Config{Employees: 60},
					Replicates: 200,
				}
			}
			r, err := experiments.Fig11(*seed, opts)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"ablation": func() (string, error) {
			r, err := experiments.Ablation(*seed)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
		"engine": func() (string, error) {
			opts := experiments.EngineScaleOptions{}
			if small {
				opts = experiments.EngineScaleOptions{Streams: 16, Steps: 24, Replicates: 100}
			}
			r, err := experiments.EngineScale(*seed, opts)
			if err != nil {
				return "", err
			}
			return r.Report, nil
		},
	}

	order := []string{"fig1", "fig6", "table1", "fig7", "fig10", "fig11", "ablation", "engine"}
	var selected []string
	if *exp == "all" {
		selected = order
	} else if _, ok := runners[*exp]; ok {
		selected = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (want one of %v or all)\n", *exp, order)
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		report, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(report)
		fmt.Printf("\n[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
