package main

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
)

// TestDebugListener: -debug-addr binds pprof and the runtime gauges,
// and announces its bound address in a structured record.
func TestDebugListener(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	stop, err := startDebug("127.0.0.1:0", logger)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	var base string
	for _, line := range strings.Split(buf.String(), "\n") {
		if addr := announcedAddr(line, `msg="debug listening"`); addr != "" {
			base = addr
		}
	}
	if base == "" {
		t.Fatalf("no debug-listening announcement in: %s", buf.String())
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "bagcpd_goroutines") {
		t.Errorf("debug /metrics: status %d, body:\n%s", resp.StatusCode, body)
	}

	resp2, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("debug /debug/pprof/: status %d", resp2.StatusCode)
	}

	// A disabled debug listener is a no-op, not an error.
	noop, err := startDebug("", logger)
	if err != nil {
		t.Fatal(err)
	}
	noop()
}
