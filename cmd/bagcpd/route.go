package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
)

// runRoute runs the cluster router until SIGINT/SIGTERM: a stateless
// consistent-hash front tier over the -members fleet. Unlike -serve
// there is no engine here — detector state lives only on the members —
// so draining is just stopping the listener; a router restart loses
// nothing but the in-memory migration overrides (re-migrate, or restart
// members so the ring owns everything again, to converge). The bound
// address is announced on stderr like -serve does.
func runRoute(addr, members string, replicas int) error {
	var list []string
	for _, m := range strings.Split(members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			list = append(list, m)
		}
	}
	if len(list) == 0 {
		return fmt.Errorf("-route requires -members (comma-separated member base URLs)")
	}
	rt, err := repro.NewRouter(repro.RouterConfig{Members: list, Replicas: replicas})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bagcpd: routing on http://%s for %d members\n", ln.Addr(), len(list))

	httpSrv := &http.Server{Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "bagcpd: %v, draining router\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}
