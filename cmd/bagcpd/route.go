package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
)

// runRoute runs the cluster router until SIGINT/SIGTERM: a stateless
// consistent-hash front tier over the -members fleet. Unlike -serve
// there is no engine here — detector state lives only on the members —
// so draining is just stopping the listener; a router restart loses
// nothing but the in-memory migration overrides (re-migrate, or restart
// members so the ring owns everything again, to converge). The bound
// address is announced in a structured "routing" log record (addr=...)
// like -serve's "serving" record.
func runRoute(addr, members string, replicas int, debugAddr string, logger *slog.Logger) error {
	var list []string
	for _, m := range strings.Split(members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			list = append(list, m)
		}
	}
	if len(list) == 0 {
		return fmt.Errorf("-route requires -members (comma-separated member base URLs)")
	}
	rt, err := repro.NewRouter(repro.RouterConfig{
		Members:  list,
		Replicas: replicas,
		Logger:   logger,
	})
	if err != nil {
		return err
	}

	stopDebug, err := startDebug(debugAddr, logger)
	if err != nil {
		return err
	}
	defer stopDebug()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Info("routing", "addr", "http://"+ln.Addr().String(), "members", len(list))

	httpSrv := &http.Server{Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		logger.Info("draining router", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}
