package main

import (
	"math"
	"strings"
	"testing"

	"repro"
)

func testDetector(t *testing.T) *repro.Detector {
	t.Helper()
	det, err := repro.NewDetector(repro.Config{
		Tau: 2, TauPrime: 2,
		Builder:   repro.NewHistogramBuilder(-10, 10, 10),
		Bootstrap: repro.BootstrapConfig{Replicates: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestReadJSONL(t *testing.T) {
	input := `[[1],[2],[3]]
[[1.5],[2.5]]

[[0],[1],[2]]
[[5],[6]]
`
	var points []*repro.Point
	err := readJSONL(strings.NewReader(input), testDetector(t), func(p *repro.Point) {
		if p != nil {
			points = append(points, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 bags, window 4 → exactly one inspection point at t=2.
	if len(points) != 1 || points[0].T != 2 {
		t.Fatalf("points = %+v", points)
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	err := readJSONL(strings.NewReader("not json\n"), testDetector(t), func(*repro.Point) {})
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReadCSV(t *testing.T) {
	input := `# comment
0,1.0
0,2.0
1,1.5
1,2.5
2,0.5
2,1.5
3,5.0
3,6.0
`
	var points []*repro.Point
	err := readCSV(strings.NewReader(input), testDetector(t), func(p *repro.Point) {
		if p != nil {
			points = append(points, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].T != 2 {
		t.Fatalf("points = %+v", points)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"short line":     "0\n",
		"bad time":       "x,1\n",
		"bad value":      "0,abc\n",
		"time backwards": "1,1\n0,2\n",
	}
	for name, input := range cases {
		err := readCSV(strings.NewReader(input), testDetector(t), func(*repro.Point) {})
		if err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestReadJSONLStreams: the multiplexed reader gives every stream its
// own bag clock and its output is invariant to the batch size.
func TestReadJSONLStreams(t *testing.T) {
	input := `{"stream":"a","points":[[1],[2],[3]]}
{"stream":"b","points":[[5],[6]]}
{"stream":"a","points":[[1.5],[2.5]]}
{"stream":"b","points":[[5.5],[6.5]]}
{"stream":"a","points":[[0],[1],[2]]}
{"stream":"b","points":[[5],[7]]}
{"stream":"a","points":[[5],[6]]}
{"stream":"b","points":[[0],[1]]}
`
	run := func(batch int) map[string][]*repro.Point {
		eng, err := repro.NewEngine(
			repro.WithTau(2), repro.WithTauPrime(2),
			repro.WithBuilderFactory(repro.HistogramFactory(-10, 10, 10)),
			repro.WithBootstrap(repro.BootstrapConfig{Replicates: 50}),
			repro.WithSeed(3),
		)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string][]*repro.Point{}
		err = readJSONLStreams(strings.NewReader(input), eng, batch, func(id string, p *repro.Point) {
			got[id] = append(got[id], p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	want := run(1)
	// 4 bags per stream, window 4 → exactly one inspection point each.
	for _, id := range []string{"a", "b"} {
		if len(want[id]) != 1 || want[id][0].T != 2 {
			t.Fatalf("stream %s: points = %+v", id, want[id])
		}
	}
	for _, batch := range []int{2, 3, 256} {
		got := run(batch)
		for _, id := range []string{"a", "b"} {
			if len(got[id]) != len(want[id]) {
				t.Fatalf("batch=%d stream=%s: %d points, want %d", batch, id, len(got[id]), len(want[id]))
			}
			for i := range got[id] {
				g, w := *got[id][i], *want[id][i]
				// Compare every field; Kappa needs NaN-aware equality.
				sameKappa := g.Kappa == w.Kappa || (math.IsNaN(g.Kappa) && math.IsNaN(w.Kappa))
				if g.T != w.T || g.Score != w.Score || g.Interval != w.Interval || g.Alarm != w.Alarm || !sameKappa {
					t.Fatalf("batch=%d stream=%s point %d differs: %+v vs %+v", batch, id, i, g, w)
				}
			}
		}
	}
}

func TestReadJSONLStreamsMissingID(t *testing.T) {
	eng, err := repro.NewEngine(
		repro.WithTau(2), repro.WithTauPrime(2),
		repro.WithBuilderFactory(repro.HistogramFactory(-10, 10, 10)),
	)
	if err != nil {
		t.Fatal(err)
	}
	err = readJSONLStreams(strings.NewReader(`{"points":[[1]]}`+"\n"), eng, 4, func(string, *repro.Point) {})
	if err == nil {
		t.Fatal("expected error for missing stream id")
	}
}
