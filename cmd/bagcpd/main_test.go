package main

import (
	"strings"
	"testing"

	"repro"
)

func testDetector(t *testing.T) *repro.Detector {
	t.Helper()
	det, err := repro.NewDetector(repro.Config{
		Tau: 2, TauPrime: 2,
		Builder:   repro.NewHistogramBuilder(-10, 10, 10),
		Bootstrap: repro.BootstrapConfig{Replicates: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestReadJSONL(t *testing.T) {
	input := `[[1],[2],[3]]
[[1.5],[2.5]]

[[0],[1],[2]]
[[5],[6]]
`
	var points []*repro.Point
	err := readJSONL(strings.NewReader(input), testDetector(t), func(p *repro.Point) {
		if p != nil {
			points = append(points, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 bags, window 4 → exactly one inspection point at t=2.
	if len(points) != 1 || points[0].T != 2 {
		t.Fatalf("points = %+v", points)
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	err := readJSONL(strings.NewReader("not json\n"), testDetector(t), func(*repro.Point) {})
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReadCSV(t *testing.T) {
	input := `# comment
0,1.0
0,2.0
1,1.5
1,2.5
2,0.5
2,1.5
3,5.0
3,6.0
`
	var points []*repro.Point
	err := readCSV(strings.NewReader(input), testDetector(t), func(p *repro.Point) {
		if p != nil {
			points = append(points, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].T != 2 {
		t.Fatalf("points = %+v", points)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"short line":     "0\n",
		"bad time":       "x,1\n",
		"bad value":      "0,abc\n",
		"time backwards": "1,1\n0,2\n",
	}
	for name, input := range cases {
		err := readCSV(strings.NewReader(input), testDetector(t), func(*repro.Point) {})
		if err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
