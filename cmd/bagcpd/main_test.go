package main

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro"
)

func testDetector(t *testing.T) *repro.Detector {
	t.Helper()
	det, err := repro.NewDetector(repro.Config{
		Tau: 2, TauPrime: 2,
		Builder:   repro.NewHistogramBuilder(-10, 10, 10),
		Bootstrap: repro.BootstrapConfig{Replicates: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestReadJSONL(t *testing.T) {
	input := `[[1],[2],[3]]
[[1.5],[2.5]]

[[0],[1],[2]]
[[5],[6]]
`
	var points []*repro.Point
	err := readJSONL(strings.NewReader(input), testDetector(t), func(p *repro.Point) {
		if p != nil {
			points = append(points, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 bags, window 4 → exactly one inspection point at t=2.
	if len(points) != 1 || points[0].T != 2 {
		t.Fatalf("points = %+v", points)
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	err := readJSONL(strings.NewReader("not json\n"), testDetector(t), func(*repro.Point) {})
	if err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReadCSV(t *testing.T) {
	input := `# comment
0,1.0
0,2.0
1,1.5
1,2.5
2,0.5
2,1.5
3,5.0
3,6.0
`
	var points []*repro.Point
	err := readCSV(strings.NewReader(input), testDetector(t), func(p *repro.Point) {
		if p != nil {
			points = append(points, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].T != 2 {
		t.Fatalf("points = %+v", points)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"short line":     "0\n",
		"bad time":       "x,1\n",
		"bad value":      "0,abc\n",
		"time backwards": "1,1\n0,2\n",
	}
	for name, input := range cases {
		err := readCSV(strings.NewReader(input), testDetector(t), func(*repro.Point) {})
		if err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestReadJSONLStreams: the multiplexed reader gives every stream its
// own bag clock and its output is invariant to the batch size.
func TestReadJSONLStreams(t *testing.T) {
	input := `{"stream":"a","points":[[1],[2],[3]]}
{"stream":"b","points":[[5],[6]]}
{"stream":"a","points":[[1.5],[2.5]]}
{"stream":"b","points":[[5.5],[6.5]]}
{"stream":"a","points":[[0],[1],[2]]}
{"stream":"b","points":[[5],[7]]}
{"stream":"a","points":[[5],[6]]}
{"stream":"b","points":[[0],[1]]}
`
	run := func(batch int) map[string][]*repro.Point {
		eng, err := repro.NewEngine(
			repro.WithTau(2), repro.WithTauPrime(2),
			repro.WithBuilderFactory(repro.HistogramFactory(-10, 10, 10)),
			repro.WithBootstrap(repro.BootstrapConfig{Replicates: 50}),
			repro.WithSeed(3),
		)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string][]*repro.Point{}
		err = readJSONLStreams(strings.NewReader(input), eng, batch, func(id string, p *repro.Point) {
			got[id] = append(got[id], p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	want := run(1)
	// 4 bags per stream, window 4 → exactly one inspection point each.
	for _, id := range []string{"a", "b"} {
		if len(want[id]) != 1 || want[id][0].T != 2 {
			t.Fatalf("stream %s: points = %+v", id, want[id])
		}
	}
	for _, batch := range []int{2, 3, 256} {
		got := run(batch)
		for _, id := range []string{"a", "b"} {
			if len(got[id]) != len(want[id]) {
				t.Fatalf("batch=%d stream=%s: %d points, want %d", batch, id, len(got[id]), len(want[id]))
			}
			for i := range got[id] {
				g, w := *got[id][i], *want[id][i]
				// Compare every field; Kappa needs NaN-aware equality.
				sameKappa := g.Kappa == w.Kappa || (math.IsNaN(g.Kappa) && math.IsNaN(w.Kappa))
				if g.T != w.T || g.Score != w.Score || g.Interval != w.Interval || g.Alarm != w.Alarm || !sameKappa {
					t.Fatalf("batch=%d stream=%s point %d differs: %+v vs %+v", batch, id, i, g, w)
				}
			}
		}
	}
}

// TestReadJSONLStreamsPoisonedStream is the regression test for the
// silent-drop bug: one stream of a multiplexed batch fails mid-run, and
// the reader must (a) still emit the healthy streams' points from that
// batch, (b) name the failing stream, and (c) count every skipped bag
// per stream — instead of dying with only the first error while the
// skipped bags vanish without a trace.
func TestReadJSONLStreamsPoisonedStream(t *testing.T) {
	// Stream b's second bag is empty (unsummarizable); its later bags in
	// the same batch must be counted as skipped. Stream a is healthy and
	// reaches its single inspection point at t=2.
	input := `{"stream":"a","points":[[1],[2],[3]]}
{"stream":"b","points":[[5],[6]]}
{"stream":"a","points":[[1.5],[2.5]]}
{"stream":"b","points":[]}
{"stream":"a","points":[[0],[1],[2]]}
{"stream":"b","points":[[5],[7]]}
{"stream":"a","points":[[5],[6]]}
{"stream":"b","points":[[0],[1]]}
`
	eng, err := repro.NewEngine(
		repro.WithTau(2), repro.WithTauPrime(2),
		repro.WithBuilderFactory(repro.HistogramFactory(-10, 10, 10)),
		repro.WithBootstrap(repro.BootstrapConfig{Replicates: 50}),
		repro.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]*repro.Point{}
	err = readJSONLStreams(strings.NewReader(input), eng, 256, func(id string, p *repro.Point) {
		got[id] = append(got[id], p)
	})
	if err == nil {
		t.Fatal("poisoned stream must fail the run")
	}
	var serr *streamsError
	if !errors.As(err, &serr) {
		t.Fatalf("error is %T, want *streamsError: %v", err, err)
	}
	if serr.Stream != "b" {
		t.Errorf("failing stream = %q, want \"b\"", serr.Stream)
	}
	// The empty bag plus b's two later bags in the batch: 3 skipped.
	if serr.Skipped["b"] != 3 {
		t.Errorf("skipped[b] = %d, want 3 (failing bag + 2 later bags)", serr.Skipped["b"])
	}
	if serr.Skipped["a"] != 0 {
		t.Errorf("skipped[a] = %d, want 0 (healthy stream)", serr.Skipped["a"])
	}
	// Healthy stream a still produced its inspection point.
	if len(got["a"]) != 1 || got["a"][0].T != 2 {
		t.Errorf("stream a points = %+v, want one point at T=2", got["a"])
	}
	if len(got["b"]) != 0 {
		t.Errorf("stream b emitted %d points despite failing before its window filled", len(got["b"]))
	}
	// The rendered report names the stream and the skip counts.
	msg := err.Error()
	for _, want := range []string{`stream "b"`, "3 bag(s) skipped"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error report %q missing %q", msg, want)
		}
	}
}

func TestReadJSONLStreamsMissingID(t *testing.T) {
	eng, err := repro.NewEngine(
		repro.WithTau(2), repro.WithTauPrime(2),
		repro.WithBuilderFactory(repro.HistogramFactory(-10, 10, 10)),
	)
	if err != nil {
		t.Fatal(err)
	}
	err = readJSONLStreams(strings.NewReader(`{"points":[[1]]}`+"\n"), eng, 4, func(string, *repro.Point) {})
	if err == nil {
		t.Fatal("expected error for missing stream id")
	}
}

func TestStatisticFromFlag(t *testing.T) {
	// Every registered statistic is a valid -score value.
	for _, name := range repro.StatisticNames() {
		got, err := statisticFromFlag(name)
		if err != nil || got != name {
			t.Fatalf("statisticFromFlag(%q) = %q, %v", name, got, err)
		}
	}
	// Unknown names are refused with the registry listed, so the error is
	// self-updating as statistics are registered.
	_, err := statisticFromFlag("mahalanobis")
	if err == nil {
		t.Fatal("unknown -score accepted")
	}
	for _, name := range repro.StatisticNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered statistic %q", err, name)
		}
	}
	if !strings.Contains(err.Error(), `"mahalanobis"`) {
		t.Fatalf("error %q does not echo the rejected name", err)
	}
}
