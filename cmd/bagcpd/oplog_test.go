package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro"
)

// TestServeOplogCrashReplay is the durability acceptance drill, run
// across real processes: process A serves with -oplog, acknowledges
// pushes, and is SIGKILLed — no drain, no snapshot, no checkpoint. Its
// newest oplog segment then gets a torn half-record appended, playing
// the write that was in flight when the kernel pulled the plug.
// Process B starting on the same directory must replay back to exactly
// the acknowledged state: every continued push scores bit-identically
// to an uninterrupted in-process reference, and the stream listing
// reports the full push counts.
func TestServeOplogCrashReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ids := []string{"crash-a", "crash-b", "crash-c"}
	const steps, cut = 12, 7
	oplogDir := filepath.Join(t.TempDir(), "oplog")

	// Uninterrupted reference, bit-exact by the engine contract.
	ref := refEngine(t)
	type key struct {
		id   string
		step int
	}
	want := make(map[key]*repro.Point)
	for step := 0; step < steps; step++ {
		var batch []repro.StreamBag
		for _, id := range ids {
			batch = append(batch, repro.StreamBag{StreamID: id, Bag: repro.BagFromScalars(step, serveBag(id, step))})
		}
		results, err := ref.PushBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			want[key{ids[i], step}] = res.Point
		}
	}

	// Process A: acknowledge the first half, then die by SIGKILL.
	cmdA, baseA := startServeProcess(t, "-oplog", oplogDir)
	for step := 0; step < cut; step++ {
		rows := servePush(t, baseA, step, ids...)
		for i, id := range ids {
			if rows[i].Error != "" || rows[i].BagT != step {
				t.Fatalf("A step %d stream %s: %+v", step, id, rows[i])
			}
		}
	}
	if err := cmdA.Process.Kill(); err != nil { // SIGKILL: no handler runs
		t.Fatal(err)
	}
	cmdA.Wait()

	// The crash artifact: a half-written record at the tail of the
	// newest segment.
	segs, err := filepath.Glob(filepath.Join(oplogDir, "oplog-*.ndjson"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no oplog segments written (%v)", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"push","stream":"crash-a","bag_t":7,"bag":[[1.2,`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Process B: same directory, fresh engine, no restore call — the
	// oplog alone must reconstruct the acknowledged state.
	_, baseB := startServeProcess(t, "-oplog", oplogDir)
	for step := cut; step < steps; step++ {
		rows := servePush(t, baseB, step, ids...)
		for i, id := range ids {
			row := rows[i]
			if row.Error != "" {
				t.Fatalf("B step %d stream %s: %s", step, id, row.Error)
			}
			if row.BagT != step {
				t.Fatalf("B step %d stream %s: bag_t %d (replayed clock out of sync)", step, id, row.BagT)
			}
			wp := want[key{id, step}]
			if wp == nil {
				if !row.Pending {
					t.Fatalf("B step %d stream %s: expected pending, got %+v", step, id, row)
				}
				continue
			}
			if row.Score == nil || *row.Score != wp.Score ||
				*row.Lo != wp.Interval.Lo || *row.Up != wp.Interval.Up ||
				*row.T != wp.T || row.Alarm != wp.Alarm {
				t.Fatalf("B step %d stream %s: replayed row %+v != uninterrupted %+v (interval %+v)",
					step, id, row, wp, wp.Interval)
			}
		}
	}

	// The replayed process carries the full per-stream push counts.
	resp, err := http.Get(baseB + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Streams []struct {
			ID     string `json:"id"`
			Pushed int    `json:"pushed"`
		} `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Streams) != len(ids) {
		t.Fatalf("streams after replay: %+v", listing.Streams)
	}
	for _, s := range listing.Streams {
		if s.Pushed != steps {
			t.Fatalf("stream %s pushed %d, want %d", s.ID, s.Pushed, steps)
		}
	}

	// Durability telemetry: the replay surfaced the torn tail.
	resp, err = http.Get(baseB + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, probe := range []string{
		"bagcpd_oplog_truncated_bytes_total",
		"bagcpd_oplog_records_total",
		"bagcpd_oplog_fsync_seconds_bucket",
	} {
		if !containsLine(string(metrics), probe) {
			t.Fatalf("metrics exposition lacks %s", probe)
		}
	}
}

func containsLine(exposition, name string) bool {
	for _, line := range splitLines(exposition) {
		if len(line) >= len(name) && line[:len(name)] == name {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
