package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro"
)

// TestMain doubles as the serve-mode helper process: the integration
// test re-execs this test binary with BAGCPD_SERVE_HELPER=1 and real
// bagcpd flags, turning it into a second bagcpd process without needing
// a separate `go build`.
func TestMain(m *testing.M) {
	if os.Getenv("BAGCPD_SERVE_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// serveArgs is the detector configuration of the integration test, as
// CLI flags for the server processes and mirrored by refEngine for the
// in-process reference.
var serveArgs = []string{
	"-serve", "127.0.0.1:0",
	"-tau", "2", "-tau-prime", "2",
	"-hist-lo", "-8", "-hist-hi", "10", "-hist-bins", "16",
	"-bootstrap", "120",
	"-seed", "7",
}

func refEngine(t *testing.T) *repro.Engine {
	t.Helper()
	eng, err := repro.NewEngine(
		repro.WithTau(2), repro.WithTauPrime(2),
		repro.WithBuilderFactory(repro.HistogramFactory(-8, 10, 16)),
		repro.WithBootstrap(repro.BootstrapConfig{Replicates: 120}),
		repro.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// announcedAddr extracts the addr= value from a structured log line
// carrying the given msg marker ("msg=serving" / "msg=routing"), or ""
// when the line is some other record.
func announcedAddr(line, marker string) string {
	if !strings.Contains(line, marker) {
		return ""
	}
	for _, f := range strings.Fields(line) {
		if rest, ok := strings.CutPrefix(f, "addr="); ok {
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// startServeProcess launches a bagcpd -serve helper process (with any
// extra flags appended to serveArgs) and returns its base URL once the
// listener is up.
func startServeProcess(t *testing.T, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], append(append([]string{}, serveArgs...), extra...)...)
	cmd.Env = append(os.Environ(), "BAGCPD_SERVE_HELPER=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if addr := announcedAddr(sc.Text(), "msg=serving"); addr != "" {
				urlc <- addr
			}
		}
	}()
	select {
	case u := <-urlc:
		return cmd, u
	case <-time.After(20 * time.Second):
		t.Fatal("server process did not announce its address")
		return nil, ""
	}
}

// serveRow mirrors the server's NDJSON response row.
type serveRow struct {
	Stream  string   `json:"stream"`
	BagT    int      `json:"bag_t"`
	Pending bool     `json:"pending"`
	T       *int     `json:"t"`
	Score   *float64 `json:"score"`
	Lo      *float64 `json:"lo"`
	Up      *float64 `json:"up"`
	Kappa   *float64 `json:"kappa"`
	Alarm   bool     `json:"alarm"`
	Error   string   `json:"error"`
}

// serveBag generates the step-th deterministic bag of a stream (1-D,
// mean shift at step 8, inside the histogram range).
func serveBag(id string, step int) []float64 {
	seed := int64(0)
	for i := 0; i < len(id); i++ {
		seed = seed*131 + int64(id[i])
	}
	vals := make([]float64, 40)
	x := uint64(seed) + uint64(step)*0x9E3779B97F4A7C15
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		// Uniform in [-2, 2), shifted by +3 after the change point.
		v := float64(x%4000)/1000 - 2
		if step >= 8 {
			v += 3
		}
		vals[i] = v
	}
	return vals
}

func servePush(t *testing.T, base string, step int, ids ...string) []serveRow {
	t.Helper()
	var body strings.Builder
	for _, id := range ids {
		vals := serveBag(id, step)
		pts := make([][]float64, len(vals))
		for i, v := range vals {
			pts[i] = []float64{v}
		}
		blob, _ := json.Marshal(pts)
		fmt.Fprintf(&body, "{\"stream\":%q,\"bag\":%s}\n", id, blob)
	}
	resp, err := http.Post(base+"/v1/push", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push status %d: %s", resp.StatusCode, raw)
	}
	var rows []serveRow
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var row serveRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad row %q: %v", line, err)
		}
		rows = append(rows, row)
	}
	return rows
}

// TestServeSnapshotRestoreTwoProcess is the end-to-end rebalancing
// acceptance flow: process A ingests half the data over HTTP, its
// snapshot is taken, A is killed, process B restores the envelope, and
// B's remaining scored rows are required to be EXACTLY (not
// approximately) those of an uninterrupted in-process reference run.
func TestServeSnapshotRestoreTwoProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ids := []string{"proc-a", "proc-b", "proc-c"}
	const steps, cut = 12, 6

	// Uninterrupted reference, bit-exact by the engine contract.
	ref := refEngine(t)
	type key struct {
		id   string
		step int
	}
	want := make(map[key]*repro.Point)
	for step := 0; step < steps; step++ {
		var batch []repro.StreamBag
		for _, id := range ids {
			batch = append(batch, repro.StreamBag{StreamID: id, Bag: repro.BagFromScalars(step, serveBag(id, step))})
		}
		results, err := ref.PushBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			want[key{ids[i], step}] = res.Point
		}
	}

	// Process A: ingest the first half, snapshot, die.
	cmdA, baseA := startServeProcess(t)
	for step := 0; step < cut; step++ {
		servePush(t, baseA, step, ids...)
	}
	resp, err := http.Get(baseA + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	envelope, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, envelope)
	}
	if err := cmdA.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmdA.Wait()

	// Process B: restore and finish the run.
	_, baseB := startServeProcess(t)
	resp, err = http.Post(baseB+"/v1/restore", "application/json", strings.NewReader(string(envelope)))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d: %s", resp.StatusCode, msg)
	}

	for step := cut; step < steps; step++ {
		rows := servePush(t, baseB, step, ids...)
		for i, id := range ids {
			row := rows[i]
			if row.Error != "" {
				t.Fatalf("step %d stream %s: %s", step, id, row.Error)
			}
			if row.BagT != step {
				t.Fatalf("step %d stream %s: bag_t %d (restored clock out of sync)", step, id, row.BagT)
			}
			wp := want[key{id, step}]
			if wp == nil {
				if !row.Pending {
					t.Fatalf("step %d stream %s: expected pending, got %+v", step, id, row)
				}
				continue
			}
			if row.Score == nil || *row.Score != wp.Score ||
				*row.Lo != wp.Interval.Lo || *row.Up != wp.Interval.Up ||
				*row.T != wp.T || row.Alarm != wp.Alarm {
				t.Fatalf("step %d stream %s: restored row %+v != uninterrupted %+v (interval %+v)",
					step, id, row, wp, wp.Interval)
			}
		}
	}

	// The restored process reports the full per-stream push counts.
	resp, err = http.Get(baseB + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Streams []struct {
			ID     string `json:"id"`
			Pushed int    `json:"pushed"`
		} `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Streams) != len(ids) {
		t.Fatalf("streams after restore: %+v", listing.Streams)
	}
	for _, s := range listing.Streams {
		if s.Pushed != steps {
			t.Fatalf("stream %s pushed %d, want %d", s.ID, s.Pushed, steps)
		}
	}
}
