package main

import (
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// startDebug binds the -debug-addr introspection listener shared by
// serve and route modes: pprof under /debug/pprof/ and process runtime
// gauges (goroutines, heap, GC) on /metrics. It is diagnostics, not the
// data path — the main listener keeps serving if this one later fails.
// The returned stop function closes the listener.
func startDebug(addr string, logger *slog.Logger) (stop func(), err error) {
	if addr == "" {
		return func() {}, nil
	}
	reg := obs.NewRegistry()
	obs.RegisterRuntimeGauges(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.Render(w)
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			logger.Warn("debug listener failed", "addr", addr, "error", serr)
		}
	}()
	logger.Info("debug listening", "addr", "http://"+ln.Addr().String())
	return func() { srv.Close() }, nil
}
