package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
)

// startBagcpd re-execs the test binary as a bagcpd process with the
// given flags (serve or route mode) and returns the command plus the
// base URL announced on stderr.
func startBagcpd(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BAGCPD_SERVE_HELPER=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			for _, marker := range []string{"msg=serving", "msg=routing"} {
				if addr := announcedAddr(line, marker); addr != "" {
					select {
					case urlc <- addr:
					default:
					}
				}
			}
		}
	}()
	select {
	case u := <-urlc:
		return cmd, u
	case <-time.After(20 * time.Second):
		t.Fatal("bagcpd process did not announce its address")
		return nil, ""
	}
}

// startMember launches a bagcpd -serve member on addr with the shared
// detector configuration (serveArgs minus its "-serve 127.0.0.1:0"
// prefix), plus any extra flags.
func startMember(t *testing.T, addr string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-serve", addr}, serveArgs[2:]...)
	return startBagcpd(t, append(args, extra...)...)
}

// startRouter launches a bagcpd -route process over the member URLs.
func startRouter(t *testing.T, members []string) (*exec.Cmd, string) {
	t.Helper()
	return startBagcpd(t, "-route", "127.0.0.1:0", "-members", strings.Join(members, ","))
}

// migrate asks the router to move streams onto target and fails the test
// unless the router confirms every one of them.
func migrate(t *testing.T, routerURL string, streams []string, target string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"streams": streams, "target": target})
	resp, err := http.Post(routerURL+"/v1/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status %d: %s", resp.StatusCode, blob)
	}
	var result struct {
		Migrated []string `json:"migrated"`
	}
	if err := json.Unmarshal(blob, &result); err != nil {
		t.Fatal(err)
	}
	if len(result.Migrated) != len(streams) {
		t.Fatalf("migrated %v, want %v", result.Migrated, streams)
	}
}

// fleetStreams picks n stream ids per member by asking an in-process
// ring with the same member list — ownership is a pure function of the
// member set, so the test and the router process agree.
func fleetStreams(t *testing.T, members []string, n int) map[string][]string {
	t.Helper()
	rt, err := repro.NewRouter(repro.RouterConfig{Members: members})
	if err != nil {
		t.Fatal(err)
	}
	byMember := make(map[string][]string)
	short := func() bool {
		for _, m := range members {
			if len(byMember[m]) < n {
				return true
			}
		}
		return false
	}
	for i := 0; short(); i++ {
		if i > 100000 {
			t.Fatal("ring never assigned enough streams to every member")
		}
		id := fmt.Sprintf("c-%d", i)
		owner := rt.Owner(id)
		if len(byMember[owner]) < n {
			byMember[owner] = append(byMember[owner], id)
		}
	}
	return byMember
}

// checkRouted compares one routed response row against the reference
// point for (id, step).
func checkRouted(t *testing.T, row serveRow, id string, step int, want *repro.Point) {
	t.Helper()
	if row.Error != "" {
		t.Fatalf("step %d stream %s: error row %q", step, id, row.Error)
	}
	if row.Stream != id || row.BagT != step {
		t.Fatalf("step %d: row (%s, %d), want (%s, %d) — ordering broken", step, row.Stream, row.BagT, id, step)
	}
	if want == nil {
		if !row.Pending {
			t.Fatalf("step %d stream %s: want pending, got %+v", step, id, row)
		}
		return
	}
	if row.Score == nil || *row.Score != want.Score ||
		*row.Lo != want.Interval.Lo || *row.Up != want.Interval.Up ||
		*row.T != want.T || row.Alarm != want.Alarm {
		t.Fatalf("step %d stream %s: routed row %+v != reference %+v (interval %+v)", step, id, row, want, want.Interval)
	}
}

type refKey struct {
	id   string
	step int
}

// referenceRun scores every (stream, step) on one uninterrupted
// in-process engine — the oracle the routed fleet must match bit-exactly
// whatever migrations and crashes happen along the way.
func referenceRun(t *testing.T, ids []string, steps int) map[refKey]*repro.Point {
	t.Helper()
	ref := refEngine(t)
	want := make(map[refKey]*repro.Point)
	for step := 0; step < steps; step++ {
		var batch []repro.StreamBag
		for _, id := range ids {
			batch = append(batch, repro.StreamBag{StreamID: id, Bag: repro.BagFromScalars(step, serveBag(id, step))})
		}
		results, err := ref.PushBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			want[refKey{ids[i], step}] = res.Point
		}
	}
	return want
}

// TestRouteTwoInstanceSmoke is the CI smoke slice of the chaos flow: a
// 2-member fleet behind a router process, one live migration
// mid-traffic, every scored row bit-identical to the single-engine
// reference. Runs in a few seconds; the full 3-instance SIGKILL chaos
// flow is TestRouteChaosThreeInstances.
func TestRouteTwoInstanceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	_, memA := startMember(t, "127.0.0.1:0")
	_, memB := startMember(t, "127.0.0.1:0")
	members := []string{memA, memB}
	_, front := startRouter(t, members)

	byMember := fleetStreams(t, members, 2)
	ids := append(append([]string{}, byMember[memA]...), byMember[memB]...)
	const steps, cut = 10, 5
	want := referenceRun(t, ids, steps)

	for step := 0; step < cut; step++ {
		rows := servePush(t, front, step, ids...)
		for i, id := range ids {
			checkRouted(t, rows[i], id, step, want[refKey{id, step}])
		}
	}
	migrate(t, front, byMember[memA][:1], memB)
	for step := cut; step < steps; step++ {
		rows := servePush(t, front, step, ids...)
		for i, id := range ids {
			checkRouted(t, rows[i], id, step, want[refKey{id, step}])
		}
	}
}

// TestRouteChaosThreeInstances is the full cluster acceptance flow from
// the roadmap: a 3-instance fleet of REAL bagcpd processes behind a real
// router process, streams live-migrated mid-traffic, one instance
// SIGKILL'd and restored from its snapshot, traffic pushed during the
// outage failing with per-row errors and retried cleanly after the
// restore — and at the end of all that, every scored row the fleet ever
// produced is bit-identical to an undisturbed single-engine run.
func TestRouteChaosThreeInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	_, mem0 := startMember(t, "127.0.0.1:0")
	_, mem1 := startMember(t, "127.0.0.1:0")
	cmd2, mem2 := startMember(t, "127.0.0.1:0")
	members := []string{mem0, mem1, mem2}
	_, front := startRouter(t, members)

	byMember := fleetStreams(t, members, 2)
	var ids []string
	for _, m := range members {
		ids = append(ids, byMember[m]...)
	}
	const (
		steps     = 12
		migrateAt = 4 // move two streams off member 0 mid-traffic
		killAt    = 8 // SIGKILL member 2, restore from snapshot, retry
	)
	want := referenceRun(t, ids, steps+1) // +1: the delta-snapshot probe pushes one extra step
	pushAll := func(step int) {
		t.Helper()
		rows := servePush(t, front, step, ids...)
		if len(rows) != len(ids) {
			t.Fatalf("step %d: %d rows for %d inputs", step, len(rows), len(ids))
		}
		for i, id := range ids {
			checkRouted(t, rows[i], id, step, want[refKey{id, step}])
		}
	}

	for step := 0; step < migrateAt; step++ {
		pushAll(step)
	}

	// Live migration mid-traffic: member 0's streams move to member 1.
	moved := byMember[mem0]
	migrate(t, front, moved, mem1)

	for step := migrateAt; step < killAt; step++ {
		pushAll(step)
	}

	// Crash-restore cycle for member 2: capture its envelope, SIGKILL it
	// (no drain, no goodbye), and while it is down push a batch aimed
	// only at its streams — the router must answer per-row errors naming
	// the dead member, NOT apply the rows anywhere.
	resp, err := http.Get(mem2 + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	envelope, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, envelope)
	}
	if err := cmd2.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	cmd2.Wait()

	deadIDs := byMember[mem2]
	rows := servePush(t, front, killAt, deadIDs...)
	for i, id := range deadIDs {
		if rows[i].Stream != id || rows[i].Error == "" || !strings.Contains(rows[i].Error, mem2) {
			t.Fatalf("outage row %+v, want error naming %s", rows[i], mem2)
		}
	}

	// Restart on the SAME address (the router's member list is static)
	// and restore the envelope. The failed batch above was never applied,
	// so retrying the same step must now produce exactly the reference
	// rows — the crash is invisible in the scores.
	addr := strings.TrimPrefix(mem2, "http://")
	_, mem2b := startMember(t, addr)
	if mem2b != mem2 {
		t.Fatalf("member restarted on %s, want %s", mem2b, mem2)
	}
	resp, err = http.Post(mem2+"/v1/restore", "application/json", bytes.NewReader(envelope))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d: %s", resp.StatusCode, msg)
	}

	for step := killAt; step < steps; step++ {
		pushAll(step)
	}

	// The fleet's aggregated listing accounts for every stream exactly
	// once, with the moved streams on their new member.
	resp, err = http.Get(front + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Streams []struct {
			ID     string `json:"id"`
			Member string `json:"member"`
			Pushed int    `json:"pushed"`
		} `json:"streams"`
		Unreachable []string `json:"unreachable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Unreachable) != 0 {
		t.Fatalf("unreachable members at end of run: %v", listing.Unreachable)
	}
	if len(listing.Streams) != len(ids) {
		t.Fatalf("fleet lists %d streams, want %d: %+v", len(listing.Streams), len(ids), listing.Streams)
	}
	for _, s := range listing.Streams {
		for _, id := range moved {
			if s.ID == id && s.Member != mem1 {
				t.Fatalf("migrated stream %s listed on %s, want %s", id, s.Member, mem1)
			}
		}
		if s.Pushed != steps {
			t.Fatalf("stream %s pushed %d, want %d", s.ID, s.Pushed, steps)
		}
	}

	// Delta snapshots stay O(dirty): after a full snapshot of the
	// restored member, touch ONE of its streams and ask for the delta —
	// the envelope must carry exactly that stream, however many the
	// member holds.
	var full struct {
		Mark uint64 `json:"mark"`
	}
	resp, err = http.Get(mem2 + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	touched := deadIDs[0]
	rows = servePush(t, front, steps, touched)
	checkRouted(t, rows[0], touched, steps, want[refKey{touched, steps}])
	resp, err = http.Get(fmt.Sprintf("%s/v1/snapshot?since=%d", mem2, full.Mark))
	if err != nil {
		t.Fatal(err)
	}
	var delta struct {
		Partial bool `json:"partial"`
		Streams []struct {
			ID string `json:"id"`
		} `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&delta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !delta.Partial || len(delta.Streams) != 1 || delta.Streams[0].ID != touched {
		t.Fatalf("delta after touching %s = %+v, want exactly that stream", touched, delta)
	}

	// Router metrics saw the migrations and the outage.
	resp, err = http.Get(front + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(metrics)
	for _, wantLine := range []string{
		fmt.Sprintf("bagcpd_router_migrations_total %d", len(moved)),
		fmt.Sprintf("bagcpd_router_member_up{member=%q} 1", mem2),
	} {
		if !strings.Contains(text, wantLine) {
			t.Fatalf("router metrics missing %q:\n%s", wantLine, text)
		}
	}
	if !strings.Contains(text, "bagcpd_router_member_errors_total") ||
		strings.Contains(text, "bagcpd_router_member_errors_total 0\n") {
		t.Fatalf("router metrics should have counted the outage errors:\n%s", text)
	}
}

// TestServeSnapshotOnExit: a graceful SIGTERM drain persists the final
// envelope to -snapshot-on-exit, and a fresh process restored from that
// file continues every stream bit-identically.
func TestServeSnapshotOnExit(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	snapPath := t.TempDir() + "/final.snapshot.json"
	ids := []string{"exit-a", "exit-b"}
	const steps, cut = 12, 6
	want := referenceRun(t, ids, steps)

	cmdA, baseA := startMember(t, "127.0.0.1:0", "-snapshot-on-exit", snapPath)
	for step := 0; step < cut; step++ {
		servePush(t, baseA, step, ids...)
	}
	if err := cmdA.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmdA.Wait() }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}

	envelope, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("snapshot-on-exit file: %v", err)
	}
	if _, err := os.Stat(snapPath + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind next to the snapshot (err %v)", err)
	}

	_, baseB := startMember(t, "127.0.0.1:0")
	resp, err := http.Post(baseB+"/v1/restore", "application/json", bytes.NewReader(envelope))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d: %s", resp.StatusCode, msg)
	}
	for step := cut; step < steps; step++ {
		rows := servePush(t, baseB, step, ids...)
		for i, id := range ids {
			checkRouted(t, rows[i], id, step, want[refKey{id, step}])
		}
	}
}
