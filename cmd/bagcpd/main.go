// Command bagcpd runs the bag-of-data change-point detector over a
// stream of bags read from stdin (or a file) and writes one CSV row per
// inspection point: time, score, confidence interval, kappa, alarm.
//
// Input formats (-format):
//
//	jsonl  one JSON array of points per line, each point an array of
//	       numbers: [[1.2, 0.3], [0.9, -0.1], ...]; a line is one bag.
//	csv    one observation per line as "t,v1,v2,..."; consecutive lines
//	       with the same integer t form one bag (t must be
//	       non-decreasing).
//
// Example:
//
//	bagcpd -tau 5 -tau-prime 5 -score kl -k 8 < bags.jsonl
//	bagcpd -format csv -hist-lo -10 -hist-hi 10 -hist-bins 40 < points.csv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		format   = flag.String("format", "jsonl", "input format: jsonl|csv")
		tau      = flag.Int("tau", 5, "reference window length τ")
		tauPrime = flag.Int("tau-prime", 5, "test window length τ′")
		score    = flag.String("score", "kl", "change-point score: kl|lr")
		k        = flag.Int("k", 8, "k-means signature size (multi-dimensional bags)")
		histLo   = flag.Float64("hist-lo", 0, "histogram lower bound (1-D bags; with -hist-bins > 0)")
		histHi   = flag.Float64("hist-hi", 0, "histogram upper bound")
		histBins = flag.Int("hist-bins", 0, "histogram bins; 0 selects k-means signatures")
		reps     = flag.Int("bootstrap", 1000, "Bayesian bootstrap replicates")
		alpha    = flag.Float64("alpha", 0.05, "significance level")
		seed     = flag.Int64("seed", 1, "RNG seed")
		input    = flag.String("in", "-", "input path, or - for stdin")
	)
	flag.Parse()

	var builder repro.Builder
	if *histBins > 0 {
		if !(*histHi > *histLo) {
			fatalf("-hist-hi must exceed -hist-lo")
		}
		builder = repro.NewHistogramBuilder(*histLo, *histHi, *histBins)
	} else {
		builder = repro.NewKMeansBuilder(*k, *seed)
	}
	cfg := repro.Config{
		Tau:       *tau,
		TauPrime:  *tauPrime,
		Builder:   builder,
		Bootstrap: repro.BootstrapConfig{Replicates: *reps, Alpha: *alpha},
		Seed:      *seed,
	}
	switch *score {
	case "kl":
		cfg.Score = repro.ScoreKL
	case "lr":
		cfg.Score = repro.ScoreLR
	default:
		fatalf("unknown -score %q (want kl or lr)", *score)
	}

	det, err := repro.NewDetector(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintln(out, "t,score,ci_lo,ci_up,kappa,alarm")

	emit := func(p *repro.Point) {
		if p == nil {
			return
		}
		kappa := "NaN"
		if !math.IsNaN(p.Kappa) {
			kappa = strconv.FormatFloat(p.Kappa, 'g', -1, 64)
		}
		fmt.Fprintf(out, "%d,%g,%g,%g,%s,%t\n",
			p.T, p.Score, p.Interval.Lo, p.Interval.Up, kappa, p.Alarm)
	}

	var pushErr error
	switch *format {
	case "jsonl":
		pushErr = readJSONL(in, det, emit)
	case "csv":
		pushErr = readCSV(in, det, emit)
	default:
		fatalf("unknown -format %q (want jsonl or csv)", *format)
	}
	if pushErr != nil {
		fatalf("%v", pushErr)
	}
}

func readJSONL(r io.Reader, det *repro.Detector, emit func(*repro.Point)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	t := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var points [][]float64
		if err := json.Unmarshal([]byte(line), &points); err != nil {
			return fmt.Errorf("bagcpd: line %d: %w", t+1, err)
		}
		p, err := det.Push(repro.NewBag(t, points))
		if err != nil {
			return fmt.Errorf("bagcpd: bag %d: %w", t, err)
		}
		emit(p)
		t++
	}
	return sc.Err()
}

func readCSV(r io.Reader, det *repro.Detector, emit func(*repro.Point)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	curT := -1
	var cur [][]float64
	flush := func() error {
		if curT < 0 {
			return nil
		}
		p, err := det.Push(repro.NewBag(curT, cur))
		if err != nil {
			return fmt.Errorf("bagcpd: bag %d: %w", curT, err)
		}
		emit(p)
		cur = nil
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return fmt.Errorf("bagcpd: line %d: need t,v1[,v2...]", lineNo)
		}
		t, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return fmt.Errorf("bagcpd: line %d: bad time %q", lineNo, fields[0])
		}
		vec := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return fmt.Errorf("bagcpd: line %d: bad value %q", lineNo, f)
			}
			vec[i] = v
		}
		if t != curT {
			if t < curT {
				return fmt.Errorf("bagcpd: line %d: time went backwards (%d after %d)", lineNo, t, curT)
			}
			if err := flush(); err != nil {
				return err
			}
			curT = t
		}
		cur = append(cur, vec)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bagcpd: "+format+"\n", args...)
	os.Exit(2)
}
