// Command bagcpd runs the bag-of-data change-point detector over a
// stream of bags read from stdin (or a file) and writes one CSV row per
// inspection point: time, score, confidence interval, kappa, alarm.
//
// Input formats (-format):
//
//	jsonl  one JSON array of points per line, each point an array of
//	       numbers: [[1.2, 0.3], [0.9, -0.1], ...]; a line is one bag.
//	csv    one observation per line as "t,v1,v2,..."; consecutive lines
//	       with the same integer t form one bag (t must be
//	       non-decreasing).
//
// With -streams the input multiplexes MANY independent streams and the
// detector engine fans them across -workers goroutines (jsonl only):
// each line is an object {"stream": "id", "points": [[...], ...]}, bags
// are batched -batch lines at a time through the engine's batch push,
// and the output gains a leading stream column. Every stream's rows are
// bit-identical to running that stream alone through a single detector
// seeded from (-seed, stream id), whatever the batch interleaving or
// worker count.
//
// Example:
//
//	bagcpd -tau 5 -tau-prime 5 -score kl -k 8 < bags.jsonl
//	bagcpd -format csv -hist-lo -10 -hist-hi 10 -hist-bins 40 < points.csv
//	bagcpd -streams -workers 8 -hist-lo -10 -hist-hi 10 -hist-bins 40 < multiplexed.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		format   = flag.String("format", "jsonl", "input format: jsonl|csv")
		tau      = flag.Int("tau", 5, "reference window length τ")
		tauPrime = flag.Int("tau-prime", 5, "test window length τ′")
		score    = flag.String("score", "kl", "change-point score: kl|lr")
		k        = flag.Int("k", 8, "k-means signature size (multi-dimensional bags)")
		histLo   = flag.Float64("hist-lo", 0, "histogram lower bound (1-D bags; with -hist-bins > 0)")
		histHi   = flag.Float64("hist-hi", 0, "histogram upper bound")
		histBins = flag.Int("hist-bins", 0, "histogram bins; 0 selects k-means signatures")
		reps     = flag.Int("bootstrap", 1000, "Bayesian bootstrap replicates")
		alpha    = flag.Float64("alpha", 0.05, "significance level")
		seed     = flag.Int64("seed", 1, "RNG seed")
		input    = flag.String("in", "-", "input path, or - for stdin")
		streams  = flag.Bool("streams", false, "multi-stream mode: jsonl lines are {\"stream\":id,\"points\":[...]}")
		workers  = flag.Int("workers", 0, "engine worker goroutines for -streams (0 = GOMAXPROCS)")
		batch    = flag.Int("batch", 256, "bags per engine batch in -streams mode")
	)
	flag.Parse()

	var factory repro.BuilderFactory
	if *histBins > 0 {
		if !(*histHi > *histLo) {
			fatalf("-hist-hi must exceed -hist-lo")
		}
		factory = repro.HistogramFactory(*histLo, *histHi, *histBins)
	} else {
		factory = repro.KMeansFactory(*k)
	}
	scoreType := repro.ScoreKL
	switch *score {
	case "kl":
	case "lr":
		scoreType = repro.ScoreLR
	default:
		fatalf("unknown -score %q (want kl or lr)", *score)
	}
	bootCfg := repro.BootstrapConfig{Replicates: *reps, Alpha: *alpha}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *streams {
		if *format != "jsonl" {
			fatalf("-streams requires -format jsonl")
		}
		if *batch < 1 {
			fatalf("-batch must be >= 1")
		}
		eng, err := repro.NewEngine(
			repro.WithTau(*tau), repro.WithTauPrime(*tauPrime),
			repro.WithScore(scoreType),
			repro.WithBuilderFactory(factory),
			repro.WithBootstrap(bootCfg),
			repro.WithSeed(*seed),
			repro.WithWorkers(*workers),
		)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintln(out, "stream,t,score,ci_lo,ci_up,kappa,alarm")
		if err := readJSONLStreams(in, eng, *batch, func(id string, p *repro.Point) {
			fmt.Fprintf(out, "%s,%d,%g,%g,%g,%s,%t\n",
				id, p.T, p.Score, p.Interval.Lo, p.Interval.Up, kappaString(p.Kappa), p.Alarm)
		}); err != nil {
			// Rows emitted before the failure (including the failing
			// batch's healthy streams) must reach stdout: os.Exit skips the
			// deferred Flush.
			out.Flush()
			for _, line := range strings.Split(err.Error(), "\n") {
				fmt.Fprintf(os.Stderr, "bagcpd: %s\n", line)
			}
			os.Exit(2)
		}
		return
	}

	det, err := repro.NewDetector(repro.Config{
		Tau:       *tau,
		TauPrime:  *tauPrime,
		Score:     scoreType,
		Builder:   factory(*seed),
		Bootstrap: bootCfg,
		Seed:      *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Fprintln(out, "t,score,ci_lo,ci_up,kappa,alarm")
	emit := func(p *repro.Point) {
		if p == nil {
			return
		}
		fmt.Fprintf(out, "%d,%g,%g,%g,%s,%t\n",
			p.T, p.Score, p.Interval.Lo, p.Interval.Up, kappaString(p.Kappa), p.Alarm)
	}

	var pushErr error
	switch *format {
	case "jsonl":
		pushErr = readJSONL(in, det, emit)
	case "csv":
		pushErr = readCSV(in, det, emit)
	default:
		fatalf("unknown -format %q (want jsonl or csv)", *format)
	}
	if pushErr != nil {
		out.Flush() // rows before the failing bag must survive os.Exit
		fatalf("%v", pushErr)
	}
}

func kappaString(kappa float64) string {
	if math.IsNaN(kappa) {
		return "NaN"
	}
	return strconv.FormatFloat(kappa, 'g', -1, 64)
}

// streamsError is the failure report of a -streams run. The engine's
// batch push keeps errors per-stream — when one bag of a stream fails,
// that stream's later bags in the batch are skipped while every other
// stream proceeds — and before this type existed the CLI silently
// discarded all of that: the skipped bags produced no output, no count,
// and the run died with only the first error, never naming how much of
// which stream was dropped. streamsError carries the failing stream and
// the per-stream skip census so main can put both on stderr before
// exiting non-zero.
type streamsError struct {
	// Stream is the id of the stream whose bag failed first (batch order).
	Stream string
	// Err is that first per-bag error.
	Err error
	// Skipped counts, per stream, the bags of the failing batch that
	// produced no output: the failing bag itself plus the stream's later
	// bags the engine skipped.
	Skipped map[string]int
}

func (e *streamsError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream %q: %v", e.Stream, e.Err)
	ids := make([]string, 0, len(e.Skipped))
	for id := range e.Skipped {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "\nstream %q: %d bag(s) skipped without output", id, e.Skipped[id])
	}
	return b.String()
}

func (e *streamsError) Unwrap() error { return e.Err }

// readJSONLStreams reads multiplexed jsonl ({"stream": id, "points":
// [...]}), assigns each stream its own bag clock in line order, and
// feeds the engine in batches. emit sees one call per inspection point,
// in input order within the batch. A per-bag failure aborts the run
// with a *streamsError naming the failing stream and counting every
// skipped bag per stream; the other streams' results from the failing
// batch are still emitted first.
func readJSONLStreams(r io.Reader, eng *repro.Engine, batchSize int, emit func(string, *repro.Point)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	counts := make(map[string]int)
	buf := make([]repro.StreamBag, 0, batchSize)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		results, err := eng.PushBatch(buf)
		for _, res := range results {
			if res.Err == nil && res.Point != nil {
				emit(res.StreamID, res.Point)
			}
		}
		buf = buf[:0]
		if err != nil {
			serr := &streamsError{Err: err, Skipped: make(map[string]int)}
			for _, res := range results {
				if res.Err == nil {
					continue
				}
				if serr.Stream == "" {
					serr.Stream = res.StreamID
				}
				serr.Skipped[res.StreamID]++
			}
			return serr
		}
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec struct {
			Stream string      `json:"stream"`
			Points [][]float64 `json:"points"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("bagcpd: line %d: %w", lineNo, err)
		}
		if rec.Stream == "" {
			return fmt.Errorf("bagcpd: line %d: missing stream id", lineNo)
		}
		t := counts[rec.Stream]
		counts[rec.Stream]++
		buf = append(buf, repro.StreamBag{StreamID: rec.Stream, Bag: repro.NewBag(t, rec.Points)})
		if len(buf) >= batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return sc.Err()
}

func readJSONL(r io.Reader, det *repro.Detector, emit func(*repro.Point)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	t := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var points [][]float64
		if err := json.Unmarshal([]byte(line), &points); err != nil {
			return fmt.Errorf("bagcpd: line %d: %w", t+1, err)
		}
		p, err := det.Push(repro.NewBag(t, points))
		if err != nil {
			return fmt.Errorf("bagcpd: bag %d: %w", t, err)
		}
		emit(p)
		t++
	}
	return sc.Err()
}

func readCSV(r io.Reader, det *repro.Detector, emit func(*repro.Point)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	curT := -1
	var cur [][]float64
	flush := func() error {
		if curT < 0 {
			return nil
		}
		p, err := det.Push(repro.NewBag(curT, cur))
		if err != nil {
			return fmt.Errorf("bagcpd: bag %d: %w", curT, err)
		}
		emit(p)
		cur = nil
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return fmt.Errorf("bagcpd: line %d: need t,v1[,v2...]", lineNo)
		}
		t, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return fmt.Errorf("bagcpd: line %d: bad time %q", lineNo, fields[0])
		}
		vec := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return fmt.Errorf("bagcpd: line %d: bad value %q", lineNo, f)
			}
			vec[i] = v
		}
		if t != curT {
			if t < curT {
				return fmt.Errorf("bagcpd: line %d: time went backwards (%d after %d)", lineNo, t, curT)
			}
			if err := flush(); err != nil {
				return err
			}
			curT = t
		}
		cur = append(cur, vec)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bagcpd: "+format+"\n", args...)
	os.Exit(2)
}
