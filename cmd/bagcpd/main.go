// Command bagcpd runs the bag-of-data change-point detector over a
// stream of bags read from stdin (or a file) and writes one CSV row per
// inspection point: time, score, confidence interval, kappa, alarm.
//
// Input formats (-format):
//
//	jsonl  one JSON array of points per line, each point an array of
//	       numbers: [[1.2, 0.3], [0.9, -0.1], ...]; a line is one bag.
//	csv    one observation per line as "t,v1,v2,..."; consecutive lines
//	       with the same integer t form one bag (t must be
//	       non-decreasing).
//
// With -streams the input multiplexes MANY independent streams and the
// detector engine fans them across -workers goroutines (jsonl only):
// each line is an object {"stream": "id", "points": [[...], ...]}, bags
// are batched -batch lines at a time through the engine's batch push,
// and the output gains a leading stream column. Every stream's rows are
// bit-identical to running that stream alone through a single detector
// seeded from (-seed, stream id), whatever the batch interleaving or
// worker count.
//
// With -serve the detector engine instead runs as a long-lived HTTP
// service: NDJSON batch ingest on POST /v1/push, stream lifecycle
// endpoints, engine snapshot/restore (GET /v1/snapshot, POST
// /v1/restore) for moving streams between instances, idle-stream TTL
// eviction (-idle-ttl), bounded in-flight batches (-max-inflight; 429 on
// overflow) and Prometheus metrics on GET /metrics. With -oplog DIR the
// service is crash-durable: every acknowledged push row is fsynced to a
// write-ahead oplog before its 200, and a restarted (even SIGKILL'd)
// instance replays the directory back to exactly the acknowledged
// state. -pool-max bounds the resident detector pool, spilling idle
// streams to disk (-spill-dir, default <oplog>/streams) and faulting
// them back in on push; -evict-sweep-max caps evictions per janitor
// sweep. Operational output
// (the bound listen address, drain progress, slow batches, evictions)
// goes to stderr as structured log records — text by default, JSON with
// -log-format json, verbosity via -log-level; the serving announcement
// carries the bound address as addr= (use port 0 to let the OS pick).
// -debug-addr binds a second listener with pprof and process runtime
// gauges; -slow-push tunes the slow-batch warning threshold.
//
// Example:
//
//	bagcpd -tau 5 -tau-prime 5 -score kl -k 8 < bags.jsonl
//	bagcpd -format csv -hist-lo -10 -hist-hi 10 -hist-bins 40 < points.csv
//	bagcpd -streams -workers 8 -hist-lo -10 -hist-hi 10 -hist-bins 40 < multiplexed.jsonl
//	bagcpd -serve :8080 -hist-lo -10 -hist-hi 10 -hist-bins 40 -idle-ttl 10m
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		format   = flag.String("format", "jsonl", "input format: jsonl|csv")
		tau      = flag.Int("tau", 5, "reference window length τ")
		tauPrime = flag.Int("tau-prime", 5, "test window length τ′")
		score    = flag.String("score", "kl", "change-point statistic: "+strings.Join(repro.StatisticNames(), "|"))
		k        = flag.Int("k", 8, "k-means signature size (multi-dimensional bags)")
		histLo   = flag.Float64("hist-lo", 0, "histogram lower bound (1-D bags; with -hist-bins > 0)")
		histHi   = flag.Float64("hist-hi", 0, "histogram upper bound")
		histBins = flag.Int("hist-bins", 0, "histogram bins; 0 selects k-means signatures")
		reps     = flag.Int("bootstrap", 1000, "Bayesian bootstrap replicates")
		alpha    = flag.Float64("alpha", 0.05, "significance level")
		seed     = flag.Int64("seed", 1, "RNG seed")
		input    = flag.String("in", "-", "input path, or - for stdin")
		streams  = flag.Bool("streams", false, "multi-stream mode: jsonl lines are {\"stream\":id,\"points\":[...]}")
		workers  = flag.Int("workers", 0, "engine worker goroutines for -streams (0 = GOMAXPROCS)")
		batch    = flag.Int("batch", 256, "bags per engine batch in -streams mode")

		serve       = flag.String("serve", "", "run as an HTTP service on this address (e.g. :8080; port 0 picks a free port)")
		maxInflight = flag.Int("max-inflight", 0, "serve mode: concurrent push batches before 429 (0 = default)")
		maxBatch    = flag.Int("max-batch", 0, "serve mode: max bags per push batch (0 = default)")
		idleTTL     = flag.Duration("idle-ttl", 0, "serve mode: evict streams idle this long (0 disables eviction)")
		snapOnExit  = flag.String("snapshot-on-exit", "", "serve mode: write a final engine snapshot to this path during graceful SIGINT/SIGTERM drain")
		slowPush    = flag.Duration("slow-push", 0, "serve mode: warn-log push batches at or above this duration (0 = default 1s; negative disables)")
		oplogDir    = flag.String("oplog", "", "serve mode: write-ahead oplog directory — acknowledged pushes survive SIGKILL and replay at startup")
		poolMax     = flag.Int("pool-max", 0, "serve mode: max resident detector streams; idle overflow spills to disk (requires -oplog or -spill-dir; 0 = unbounded)")
		spillDir    = flag.String("spill-dir", "", "serve mode: on-disk store for spilled streams (default: <oplog>/streams)")
		evictMax    = flag.Int("evict-sweep-max", 0, "serve mode: cap streams evicted per janitor sweep (0 = no cap)")

		route    = flag.String("route", "", "run as a cluster router on this address, forwarding to -members")
		members  = flag.String("members", "", "route mode: comma-separated member base URLs (e.g. http://10.0.0.1:8080,http://10.0.0.2:8080)")
		replicas = flag.Int("replicas", 0, "route mode: virtual nodes per member on the hash ring (0 = default)")

		logLevel  = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log output format: text|json")
		debugAddr = flag.String("debug-addr", "", "serve/route mode: bind a debug listener (pprof + runtime metrics) on this address")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fatalf("%v", err)
	}

	if *route != "" {
		if err := runRoute(*route, *members, *replicas, *debugAddr, logger); err != nil {
			fatalf("%v", err)
		}
		return
	}

	var factory repro.BuilderFactory
	var builderTag string
	if *histBins > 0 {
		if !(*histHi > *histLo) {
			fatalf("-hist-hi must exceed -hist-lo")
		}
		factory = repro.HistogramFactory(*histLo, *histHi, *histBins)
		builderTag = fmt.Sprintf("hist(lo=%g,hi=%g,bins=%d)", *histLo, *histHi, *histBins)
	} else {
		factory = repro.KMeansFactory(*k)
		builderTag = fmt.Sprintf("kmeans(k=%d)", *k)
	}
	statName, err := statisticFromFlag(*score)
	if err != nil {
		fatalf("%v", err)
	}
	bootCfg := repro.BootstrapConfig{Replicates: *reps, Alpha: *alpha}

	if *serve != "" {
		eng, err := repro.NewEngine(
			repro.WithTau(*tau), repro.WithTauPrime(*tauPrime),
			repro.WithStatistic(statName),
			repro.WithBuilderFactory(factory),
			repro.WithBuilderTag(builderTag),
			repro.WithBootstrap(bootCfg),
			repro.WithSeed(*seed),
			repro.WithWorkers(*workers),
		)
		if err != nil {
			fatalf("%v", err)
		}
		opts := serveOptions{
			addr:        *serve,
			maxInflight: *maxInflight,
			maxBatch:    *maxBatch,
			idleTTL:     *idleTTL,
			snapOnExit:  *snapOnExit,
			slowPush:    *slowPush,
			oplogDir:    *oplogDir,
			poolMax:     *poolMax,
			spillDir:    *spillDir,
			evictMax:    *evictMax,
			debugAddr:   *debugAddr,
			logger:      logger,
		}
		if err := runServe(eng, opts); err != nil {
			fatalf("%v", err)
		}
		return
	}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *streams {
		if *format != "jsonl" {
			fatalf("-streams requires -format jsonl")
		}
		if *batch < 1 {
			fatalf("-batch must be >= 1")
		}
		eng, err := repro.NewEngine(
			repro.WithTau(*tau), repro.WithTauPrime(*tauPrime),
			repro.WithStatistic(statName),
			repro.WithBuilderFactory(factory),
			repro.WithBootstrap(bootCfg),
			repro.WithSeed(*seed),
			repro.WithWorkers(*workers),
		)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintln(out, "stream,t,score,ci_lo,ci_up,kappa,alarm")
		if err := readJSONLStreams(in, eng, *batch, func(id string, p *repro.Point) {
			fmt.Fprintf(out, "%s,%d,%g,%g,%g,%s,%t\n",
				id, p.T, p.Score, p.Interval.Lo, p.Interval.Up, kappaString(p.Kappa), p.Alarm)
		}); err != nil {
			// Rows emitted before the failure (including the failing
			// batch's healthy streams) must reach stdout: os.Exit skips the
			// deferred Flush.
			out.Flush()
			for _, line := range strings.Split(err.Error(), "\n") {
				fmt.Fprintf(os.Stderr, "bagcpd: %s\n", line)
			}
			os.Exit(2)
		}
		return
	}

	det, err := repro.NewDetector(repro.Config{
		Tau:       *tau,
		TauPrime:  *tauPrime,
		Statistic: statName,
		Builder:   factory(*seed),
		Bootstrap: bootCfg,
		Seed:      *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Fprintln(out, "t,score,ci_lo,ci_up,kappa,alarm")
	emit := func(p *repro.Point) {
		if p == nil {
			return
		}
		fmt.Fprintf(out, "%d,%g,%g,%g,%s,%t\n",
			p.T, p.Score, p.Interval.Lo, p.Interval.Up, kappaString(p.Kappa), p.Alarm)
	}

	var pushErr error
	switch *format {
	case "jsonl":
		pushErr = readJSONL(in, det, emit)
	case "csv":
		pushErr = readCSV(in, det, emit)
	default:
		fatalf("unknown -format %q (want jsonl or csv)", *format)
	}
	if pushErr != nil {
		out.Flush() // rows before the failing bag must survive os.Exit
		fatalf("%v", pushErr)
	}
}

// statisticFromFlag validates the -score flag value against the
// statistic registry, so the set of accepted names (and the error
// message listing them) tracks registered statistics instead of a
// hardcoded kl|lr pair.
func statisticFromFlag(name string) (string, error) {
	if _, ok := repro.LookupStatistic(name); !ok {
		return "", fmt.Errorf("unknown -score %q (want one of: %s)", name, strings.Join(repro.StatisticNames(), ", "))
	}
	return name, nil
}

// newLogger builds the process logger from the -log-level/-log-format
// flags. Log records go to stderr, keeping stdout exclusively for the
// CSV result rows in batch mode.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func kappaString(kappa float64) string {
	if math.IsNaN(kappa) {
		return "NaN"
	}
	return strconv.FormatFloat(kappa, 'g', -1, 64)
}

// streamsError is the failure report of a -streams run. The engine's
// batch push keeps errors per-stream — when one bag of a stream fails,
// that stream's later bags in the batch are skipped while every other
// stream proceeds — and before this type existed the CLI silently
// discarded all of that: the skipped bags produced no output, no count,
// and the run died with only the first error, never naming how much of
// which stream was dropped. streamsError carries the failing stream and
// the per-stream skip census so main can put both on stderr before
// exiting non-zero.
type streamsError struct {
	// Stream is the id of the stream whose bag failed first (batch order).
	Stream string
	// Err is that first per-bag error.
	Err error
	// Skipped counts, per stream, the bags of the failing batch that
	// produced no output: the failing bag itself plus the stream's later
	// bags the engine skipped.
	Skipped map[string]int
}

func (e *streamsError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream %q: %v", e.Stream, e.Err)
	ids := make([]string, 0, len(e.Skipped))
	for id := range e.Skipped {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "\nstream %q: %d bag(s) skipped without output", id, e.Skipped[id])
	}
	return b.String()
}

func (e *streamsError) Unwrap() error { return e.Err }

// readJSONLStreams reads multiplexed jsonl ({"stream": id, "points":
// [...]}), assigns each stream its own bag clock in line order, and
// feeds the engine in batches. emit sees one call per inspection point,
// in input order within the batch. A per-bag failure aborts the run
// with a *streamsError naming the failing stream and counting every
// skipped bag per stream; the other streams' results from the failing
// batch are still emitted first.
func readJSONLStreams(r io.Reader, eng *repro.Engine, batchSize int, emit func(string, *repro.Point)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	counts := make(map[string]int)
	buf := make([]repro.StreamBag, 0, batchSize)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		results, err := eng.PushBatch(buf)
		for _, res := range results {
			if res.Err == nil && res.Point != nil {
				emit(res.StreamID, res.Point)
			}
		}
		buf = buf[:0]
		if err != nil {
			serr := &streamsError{Err: err, Skipped: make(map[string]int)}
			for _, res := range results {
				if res.Err == nil {
					continue
				}
				if serr.Stream == "" {
					serr.Stream = res.StreamID
				}
				serr.Skipped[res.StreamID]++
			}
			return serr
		}
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec struct {
			Stream string      `json:"stream"`
			Points [][]float64 `json:"points"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("bagcpd: line %d: %w", lineNo, err)
		}
		if rec.Stream == "" {
			return fmt.Errorf("bagcpd: line %d: missing stream id", lineNo)
		}
		t := counts[rec.Stream]
		counts[rec.Stream]++
		buf = append(buf, repro.StreamBag{StreamID: rec.Stream, Bag: repro.NewBag(t, rec.Points)})
		if len(buf) >= batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return sc.Err()
}

func readJSONL(r io.Reader, det *repro.Detector, emit func(*repro.Point)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	t := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var points [][]float64
		if err := json.Unmarshal([]byte(line), &points); err != nil {
			return fmt.Errorf("bagcpd: line %d: %w", t+1, err)
		}
		p, err := det.Push(repro.NewBag(t, points))
		if err != nil {
			return fmt.Errorf("bagcpd: bag %d: %w", t, err)
		}
		emit(p)
		t++
	}
	return sc.Err()
}

func readCSV(r io.Reader, det *repro.Detector, emit func(*repro.Point)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	curT := -1
	var cur [][]float64
	flush := func() error {
		if curT < 0 {
			return nil
		}
		p, err := det.Push(repro.NewBag(curT, cur))
		if err != nil {
			return fmt.Errorf("bagcpd: bag %d: %w", curT, err)
		}
		emit(p)
		cur = nil
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return fmt.Errorf("bagcpd: line %d: need t,v1[,v2...]", lineNo)
		}
		t, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return fmt.Errorf("bagcpd: line %d: bad time %q", lineNo, fields[0])
		}
		vec := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return fmt.Errorf("bagcpd: line %d: bad value %q", lineNo, f)
			}
			vec[i] = v
		}
		if t != curT {
			if t < curT {
				return fmt.Errorf("bagcpd: line %d: time went backwards (%d after %d)", lineNo, t, curT)
			}
			if err := flush(); err != nil {
				return err
			}
			curT = t
		}
		cur = append(cur, vec)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}

// serveOptions gathers the serve-mode flags runServe needs.
type serveOptions struct {
	addr        string
	maxInflight int
	maxBatch    int
	idleTTL     time.Duration
	snapOnExit  string
	slowPush    time.Duration
	oplogDir    string
	poolMax     int
	spillDir    string
	evictMax    int
	debugAddr   string
	logger      *slog.Logger
}

// runServe runs the engine as an HTTP service until SIGINT/SIGTERM,
// then drains: the listener stops, in-flight requests finish, the
// eviction janitor halts, a final snapshot is persisted when
// -snapshot-on-exit asked for one, and the engine shuts down. The bound
// address is announced in a structured "serving" log record (addr=...)
// so callers using port 0 — and the integration tests — can find the
// service.
func runServe(eng *repro.Engine, o serveOptions) error {
	srv, err := repro.NewServer(repro.ServerConfig{
		Engine:           eng,
		MaxInFlight:      o.maxInflight,
		MaxBatchBags:     o.maxBatch,
		IdleTTL:          o.idleTTL,
		SlowPush:         o.slowPush,
		OplogDir:         o.oplogDir,
		MaxResident:      o.poolMax,
		SpillDir:         o.spillDir,
		MaxEvictPerSweep: o.evictMax,
		Logger:           o.logger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	stopDebug, err := startDebug(o.debugAddr, o.logger)
	if err != nil {
		return err
	}
	defer stopDebug()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	o.logger.Info("serving", "addr", "http://"+ln.Addr().String())

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		eng.Shutdown()
		return err
	case sig := <-stop:
		o.logger.Info("draining", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(ctx)
		// Persist the final state AFTER the listener drained (no pushes
		// can be in flight) and BEFORE the engine shuts down. The
		// envelope is the same one /v1/snapshot serves: POST it to
		// another instance's /v1/restore — or a router's migration flow —
		// to resume every stream bit-identically.
		if o.snapOnExit != "" {
			if serr := writeSnapshot(eng, o.snapOnExit); serr != nil {
				o.logger.Error("snapshot-on-exit failed", "path", o.snapOnExit, "error", serr)
				if err == nil {
					err = serr
				}
			} else {
				o.logger.Info("final snapshot written", "path", o.snapOnExit)
			}
		}
		// With an oplog, collapse the log into a final checkpoint so the
		// next start replays an envelope, not the whole session's suffix.
		if o.oplogDir != "" {
			if cerr := srv.Checkpoint(); cerr != nil {
				o.logger.Error("drain checkpoint failed", "error", cerr)
				if err == nil {
					err = cerr
				}
			}
		}
		eng.Shutdown()
		return err
	}
}

// writeSnapshot atomically persists the engine's full snapshot envelope:
// written to a temp file in the target directory, then renamed, so a
// crash mid-write can never leave a truncated envelope at path.
func writeSnapshot(eng *repro.Engine, path string) error {
	snap, err := eng.Snapshot()
	if err != nil {
		return err
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bagcpd: "+format+"\n", args...)
	os.Exit(2)
}
