package repro

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (running the same drivers as cmd/repro at a reduced scale so
// the suite completes in minutes), micro-benchmarks for the pipeline
// stages, and the ablation benches called out in DESIGN.md §5.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bag"
	"repro/internal/baseline"
	"repro/internal/bipartite"
	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/emd"
	"repro/internal/enron"
	"repro/internal/experiments"
	"repro/internal/featsel"
	"repro/internal/infoest"
	"repro/internal/innovate"
	"repro/internal/randx"
	"repro/internal/signature"
	"repro/internal/synth"
)

// --- Per-figure benchmarks -------------------------------------------------

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := experiments.Table1Report(); len(rep) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	opts := experiments.Fig7Options{
		Subjects:            1,
		Replicates:          200,
		MeanRecordsPerBag:   200,
		MeanBagsPerActivity: 10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(int64(i+1), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	opts := experiments.Fig10Options{
		Graph:      bipartite.Section53Options{NodeLambda: 30, Steps: 120, TotalWeight: 6000},
		Replicates: 200,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(int64(i+1), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	opts := experiments.Fig11Options{
		Corpus:     enron.Config{Employees: 40},
		Replicates: 200,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(int64(i+1), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Pipeline micro-benchmarks ----------------------------------------------

// randomSignature builds a K-center d-dimensional signature.
func randomSignature(rng *randx.RNG, k, d int) signature.Signature {
	s := signature.Signature{Weights: make([]float64, k)}
	total := 0.0
	for i := 0; i < k; i++ {
		s.Centers = append(s.Centers, rng.NormalVec(d, 0, 3))
		s.Weights[i] = rng.Gamma(1, 1) + 0.01
		total += s.Weights[i]
	}
	for i := range s.Weights {
		s.Weights[i] /= total
	}
	return s
}

func benchmarkEMD(b *testing.B, k, d int) {
	rng := randx.New(1)
	s := randomSignature(rng, k, d)
	t := randomSignature(rng, k, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emd.Distance(s, t, emd.Euclidean); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEMDSimplexK8(b *testing.B)  { benchmarkEMD(b, 8, 2) }
func BenchmarkEMDSimplexK16(b *testing.B) { benchmarkEMD(b, 16, 2) }
func BenchmarkEMDSimplexK32(b *testing.B) { benchmarkEMD(b, 32, 2) }
func BenchmarkEMDSimplexK64(b *testing.B) { benchmarkEMD(b, 64, 2) }

// The large-signature sizes are where the block-pricing path takes over
// (K >= emd.DefaultLargeThreshold); BENCH_PR5.json records the
// before/after comparison against the classic full-refill solver.
func BenchmarkEMDSimplexK128(b *testing.B) { benchmarkEMD(b, 128, 2) }
func BenchmarkEMDSimplexK256(b *testing.B) { benchmarkEMD(b, 256, 2) }
func BenchmarkEMDSimplexK512(b *testing.B) { benchmarkEMD(b, 512, 2) }

// benchmarkEMDSolver measures the explicitly-held warm Solver (the
// detector's steady-state path), bypassing even the sync.Pool rental of
// the package-level Distance.
func benchmarkEMDSolver(b *testing.B, k, d int) {
	rng := randx.New(1)
	s := randomSignature(rng, k, d)
	t := randomSignature(rng, k, d)
	sv := emd.NewSolver()
	if _, err := sv.Distance(s, t, emd.Euclidean); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Distance(s, t, emd.Euclidean); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEMDSolverWarmK16(b *testing.B) { benchmarkEMDSolver(b, 16, 2) }
func BenchmarkEMDSolverWarmK32(b *testing.B) { benchmarkEMDSolver(b, 32, 2) }
func BenchmarkEMDSolverWarmK64(b *testing.B) { benchmarkEMDSolver(b, 64, 2) }

func BenchmarkEMD1DFastPath(b *testing.B) {
	rng := randx.New(2)
	s := randomSignature(rng, 32, 1)
	t := randomSignature(rng, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emd.Distance1D(s, t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEMD1DViaSimplex is the ablation partner of the fast path: the
// same 1-D instances solved by the general transportation simplex.
func BenchmarkEMD1DViaSimplex(b *testing.B) {
	rng := randx.New(2)
	s := randomSignature(rng, 32, 1)
	t := randomSignature(rng, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emd.Distance(s, t, emd.Euclidean); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansSignature(b *testing.B) {
	rng := randx.New(3)
	pts := make([][]float64, 1000)
	for i := range pts {
		pts[i] = rng.NormalVec(4, 0, 1)
	}
	bg := bag.New(0, pts)
	builder := NewKMeansBuilder(8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Build(bg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistogramSignature(b *testing.B) {
	rng := randx.New(4)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.Normal(0, 1)
	}
	bg := bag.FromScalars(0, vals)
	builder := NewHistogramBuilder(-5, 5, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Build(bg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBootstrapCI measures one full confidence interval (T=1000) on
// a precomputed 10×10 log-distance window — the per-step cost of the
// adaptive threshold.
func BenchmarkBootstrapCI(b *testing.B) {
	rng := randx.New(5)
	n := 10
	logD := make([][]float64, n)
	for i := range logD {
		logD[i] = make([]float64, n)
		for j := range logD[i] {
			if i != j {
				logD[i][j] = rng.Normal(0, 1)
			}
		}
	}
	win := infoest.Window{LogD: logD, NRef: 5, NTest: 5}
	score := func(gRef, gTest []float64) float64 { return infoest.ScoreKL(win, gRef, gTest) }
	base := infoest.UniformWeights(5)
	cfg := bootstrap.Config{Replicates: 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bootstrap.ConfidenceInterval(score, base, base, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBootstrapCIParallel is the same interval with the replicate
// shards spread over all cores (the detector's default regime).
func BenchmarkBootstrapCIParallel(b *testing.B) {
	rng := randx.New(5)
	n := 10
	logD := make([][]float64, n)
	for i := range logD {
		logD[i] = make([]float64, n)
		for j := range logD[i] {
			if i != j {
				logD[i][j] = rng.Normal(0, 1)
			}
		}
	}
	win := infoest.Window{LogD: logD, NRef: 5, NTest: 5}
	score := func(gRef, gTest []float64) float64 { return infoest.ScoreKL(win, gRef, gTest) }
	base := infoest.UniformWeights(5)
	cfg := bootstrap.Config{Replicates: 1000, Workers: runtime.GOMAXPROCS(0)}
	est := bootstrap.NewSeededEstimator(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Interval(score, base, base, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorPush measures the steady-state streaming cost per bag
// (signature build + τ+τ′−1 EMDs + bootstrap CI).
func BenchmarkDetectorPush(b *testing.B) {
	rng := randx.New(6)
	det, err := NewDetector(Config{
		Tau: 5, TauPrime: 5,
		Builder:   NewHistogramBuilder(-5, 5, 40),
		Bootstrap: BootstrapConfig{Replicates: 1000},
	})
	if err != nil {
		b.Fatal(err)
	}
	bags := make([]Bag, 64)
	for t := range bags {
		vals := make([]float64, 300)
		for i := range vals {
			vals[i] = rng.Normal(0, 1)
		}
		bags[t] = BagFromScalars(t, vals)
	}
	// Warm the window.
	for t := 0; t < 16; t++ {
		if _, err := det.Push(bags[t%len(bags)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Push(bags[i%len(bags)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorPushHistogram is the ground-cost cache's acceptance
// benchmark: a histogram builder emits bit-identical supports (bin
// midpoints) for every bag, so one cache entry serves all τ+τ′−1 EMDs
// of every Push, and the Manhattan ground forces the 1-D signatures
// through the simplex (Euclidean would take the closed form and never
// price a cost matrix). BENCH_PR6.json records cache vs nocache; the
// contract is cache ≥ 2× on this workload.
func BenchmarkDetectorPushHistogram(b *testing.B) {
	for _, tc := range []struct {
		name  string
		slots int
	}{{"cache", 0}, {"nocache", -1}} {
		b.Run(tc.name, func(b *testing.B) {
			rng := randx.New(6)
			det, err := NewDetector(Config{
				Tau: 8, TauPrime: 8,
				Builder:           NewHistogramBuilder(0, 1, 64),
				Ground:            emd.Manhattan,
				Bootstrap:         BootstrapConfig{Replicates: 100, Workers: 1},
				EMDCostCacheSlots: tc.slots,
			})
			if err != nil {
				b.Fatal(err)
			}
			bags := make([]Bag, 64)
			for t := range bags {
				vals := make([]float64, 800) // 800 uniform draws keep all 64 bins occupied
				for i := range vals {
					vals[i] = rng.Float64()
				}
				bags[t] = BagFromScalars(t, vals)
			}
			for t := 0; t < 20; t++ { // warm the window
				if _, err := det.Push(bags[t%len(bags)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Push(bags[i%len(bags)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectorPushMixedSupport bounds the default-on cost of the
// ground-cost cache on its adversarial workload: a k-means builder emits
// a distinct support set per bag, so the window's τ+τ′−1 solves per push
// compete for DefaultCostCacheSlots LRU slots with a near-zero hit rate
// while every solve still pays the support hash and slot scan.
// BENCH_PR6.json records cache vs nocache; heterogeneous-support streams
// that find the gap measurable should set EMDCostCacheSlots < 0.
func BenchmarkDetectorPushMixedSupport(b *testing.B) {
	for _, tc := range []struct {
		name  string
		slots int
	}{{"cache", 0}, {"nocache", -1}} {
		b.Run(tc.name, func(b *testing.B) {
			rng := randx.New(6)
			det, err := NewDetector(Config{
				Tau: 8, TauPrime: 8,
				Builder:           NewKMeansBuilder(16, 11),
				Ground:            emd.Manhattan,
				Bootstrap:         BootstrapConfig{Replicates: 100, Workers: 1},
				EMDCostCacheSlots: tc.slots,
			})
			if err != nil {
				b.Fatal(err)
			}
			bags := make([]Bag, 64)
			for t := range bags {
				vals := make([]float64, 300)
				for i := range vals {
					vals[i] = rng.Normal(0, 1)
				}
				bags[t] = BagFromScalars(t, vals)
			}
			for t := 0; t < 20; t++ { // warm the window
				if _, err := det.Push(bags[t%len(bags)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Push(bags[i%len(bags)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benchmarks (DESIGN.md §5) --------------------------------------

// ablationSequence is a shared mean-shift workload for the ablations.
func ablationSequence(seed int64, n, size int) bag.Sequence {
	rng := randx.New(seed)
	seq := make(bag.Sequence, n)
	for t := 0; t < n; t++ {
		mu := 0.0
		if t >= n/2 {
			mu = 4
		}
		vals := make([]float64, size)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		seq[t] = bag.FromScalars(t, vals)
	}
	return seq
}

// BenchmarkAblationScores compares the two change-point scores end to end.
func BenchmarkAblationScores(b *testing.B) {
	seq := ablationSequence(7, 30, 200)
	for _, tc := range []struct {
		name  string
		score core.ScoreType
	}{{"KL", core.ScoreKL}, {"LR", core.ScoreLR}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := Config{
				Tau: 5, TauPrime: 5, Score: tc.score,
				Builder:   NewHistogramBuilder(-5, 9, 40),
				Bootstrap: BootstrapConfig{Replicates: 500},
			}
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSignatureK sweeps the quantization fineness: larger K
// means richer signatures but quadratically more expensive EMD.
func BenchmarkAblationSignatureK(b *testing.B) {
	rng := randx.New(8)
	seq := make(bag.Sequence, 24)
	for t := range seq {
		mu := 0.0
		if t >= 12 {
			mu = 3
		}
		pts := make([][]float64, 200)
		for i := range pts {
			pts[i] = []float64{rng.Normal(mu, 1), rng.Normal(-mu, 1)}
		}
		seq[t] = bag.New(t, pts)
	}
	for _, k := range []int{4, 8, 16, 32} {
		b.Run(map[int]string{4: "K4", 8: "K8", 16: "K16", 32: "K32"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Config{
					Tau: 5, TauPrime: 5,
					Builder:   NewKMeansBuilder(k, int64(i)),
					Bootstrap: BootstrapConfig{Replicates: 300},
				}
				if _, err := Run(cfg, seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBootstrapT sweeps the bootstrap size: the CI cost is
// linear in T and independent of bag sizes.
func BenchmarkAblationBootstrapT(b *testing.B) {
	seq := ablationSequence(9, 24, 200)
	for _, replicates := range []int{100, 1000, 5000} {
		b.Run(map[int]string{100: "T100", 1000: "T1000", 5000: "T5000"}[replicates], func(b *testing.B) {
			cfg := Config{
				Tau: 5, TauPrime: 5,
				Builder:   NewHistogramBuilder(-5, 9, 40),
				Bootstrap: BootstrapConfig{Replicates: replicates},
			}
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWeighting compares uniform and discounted base weights.
func BenchmarkAblationWeighting(b *testing.B) {
	seq := ablationSequence(10, 24, 200)
	for _, tc := range []struct {
		name string
		w    core.Weighting
	}{{"uniform", core.WeightUniform}, {"discounted", core.WeightDiscounted}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := Config{
				Tau: 5, TauPrime: 5, Weighting: tc.w,
				Builder:   NewHistogramBuilder(-5, 9, 40),
				Bootstrap: BootstrapConfig{Replicates: 500},
			}
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSection51Generation isolates workload generation cost.
func BenchmarkSection51Generation(b *testing.B) {
	rng := randx.New(11)
	for i := 0; i < b.N; i++ {
		for _, d := range synth.AllSection51() {
			if _, err := d.Generate(rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBipartiteFeatures isolates graph feature extraction.
func BenchmarkBipartiteFeatures(b *testing.B) {
	rng := randx.New(12)
	graphs, err := bipartite.TrafficVolume.Generate(rng,
		bipartite.Section53Options{NodeLambda: 100, Steps: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range bipartite.AllFeatures() {
			if _, err := graphs[i%len(graphs)].FeatureBag(f, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Extension and utility benchmarks ----------------------------------------

// BenchmarkAblationReport times the full design-choice study of
// cmd/repro -exp ablation.
func BenchmarkAblationReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureSelection times featsel.Learn on a 45-bag, 8-D labeled
// history (the §6 extension).
func BenchmarkFeatureSelection(b *testing.B) {
	rng := randx.New(20)
	changes := []int{15, 30}
	seq := make(bag.Sequence, 45)
	for t := range seq {
		shift := 0.0
		for _, c := range changes {
			if t >= c {
				shift += 2
			}
		}
		pts := make([][]float64, 60)
		for i := range pts {
			p := make([]float64, 8)
			p[0] = rng.Normal(shift, 1)
			for j := 1; j < 8; j++ {
				p[j] = rng.Normal(0, 4)
			}
			pts[i] = p
		}
		seq[t] = bag.New(t, pts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := featsel.Learn(seq, changes, featsel.Config{Tau: 5, TauPrime: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhiten times AR(1) prewhitening of 30 bags of 400 samples.
func BenchmarkWhiten(b *testing.B) {
	rng := randx.New(21)
	seq := make(bag.Sequence, 30)
	for t := range seq {
		run := make([]float64, 400)
		for i := 1; i < len(run); i++ {
			run[i] = 0.8*run[i-1] + rng.Normal(0, 1)
		}
		seq[t] = bag.FromScalars(t, run)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := innovate.Whiten(seq, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairwiseEMD20 times the Fig. 6-style full distance matrix
// over 20 bags (parallel across cores).
func BenchmarkPairwiseEMD20(b *testing.B) {
	rng := randx.New(22)
	seq := make(bag.Sequence, 20)
	for t := range seq {
		pts := make([][]float64, 50)
		for i := range pts {
			pts[i] = rng.NormalVec(2, float64(t/10), 1)
		}
		seq[t] = bag.New(t, pts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := NewKMeansBuilder(8, int64(i))
		if _, err := core.PairwiseEMD(builder, seq, nil, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tiled vs. flat pairwise at corpus scale -------------------------------

// flatPairwiseEMD is the seed-era flat implementation (one channel job
// per pair, [][]float64 result), kept in the bench file as the baseline
// the tiled engine is measured against. It matches what core.PairwiseEMD
// was before the tiled rewrite; BENCH_PR3.json records the comparison.
func flatPairwiseEMD(sigs []signature.Signature, ground emd.Ground) ([][]float64, error) {
	n := len(sigs)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	type pair struct{ i, j int }
	jobs := make(chan pair, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sv := emd.NewSolver()
			for p := range jobs {
				if failed.Load() {
					continue
				}
				dist, err := sv.Distance(sigs[p.i], sigs[p.j], ground)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					continue
				}
				m[p.i][p.j] = dist
				m[p.j][p.i] = dist
			}
		}()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			jobs <- pair{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// pairwiseBenchCorpus builds the n-bag benchmark corpus: 1-D
// latency-style bags summarized by a 40-bin histogram, the workload
// where per-pair solver time is smallest and scheduling overhead is
// most visible.
func pairwiseBenchCorpus(n int) bag.Sequence {
	rng := randx.New(64)
	seq := make(bag.Sequence, n)
	for t := range seq {
		mu := float64(4 * t / n)
		vals := make([]float64, 80)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		seq[t] = bag.FromScalars(t, vals)
	}
	return seq
}

func benchmarkPairwiseFlat(b *testing.B, n int) {
	// Build signatures inside the loop, as the seed-era PairwiseEMD did
	// (sequential stateful-builder path) — both variants then time the
	// whole bags→matrix pipeline.
	seq := pairwiseBenchCorpus(n)
	hb := signature.NewHistogramBuilder(-6, 12, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigs, err := signature.BuildSequence(hb, seq)
		if err != nil {
			b.Fatal(err)
		}
		for j := range sigs {
			sigs[j] = sigs[j].Normalized()
		}
		if _, err := flatPairwiseEMD(sigs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkPairwiseTiled(b *testing.B, n int) {
	seq := pairwiseBenchCorpus(n)
	factory := signature.HistogramFactory(-6, 12, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Pairwise(seq, core.WithPairBuilderFactory(factory, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPairwiseFlat64(b *testing.B)   { benchmarkPairwiseFlat(b, 64) }
func BenchmarkPairwiseTiled64(b *testing.B)  { benchmarkPairwiseTiled(b, 64) }
func BenchmarkPairwiseFlat256(b *testing.B)  { benchmarkPairwiseFlat(b, 256) }
func BenchmarkPairwiseTiled256(b *testing.B) { benchmarkPairwiseTiled(b, 256) }
func BenchmarkPairwiseFlat512(b *testing.B)  { benchmarkPairwiseFlat(b, 512) }
func BenchmarkPairwiseTiled512(b *testing.B) { benchmarkPairwiseTiled(b, 512) }

// BenchmarkPairwiseCached256 measures the tile-local ground-cost caches
// on a 256-bag corpus whose histogram signatures all share one support
// set: every tile re-solves the same cost matrix, so the cache collapses
// the tile's ground work to a single priced entry per worker. Manhattan
// keeps the 1-D pairs on the simplex; BENCH_PR6.json records the
// cache/nocache pair.
func BenchmarkPairwiseCached256(b *testing.B) {
	const n = 256
	rng := randx.New(65)
	seq := make(bag.Sequence, n)
	for t := range seq {
		vals := make([]float64, 800) // uniform over [0,1): all 64 bins stay occupied
		for i := range vals {
			vals[i] = rng.Float64()
		}
		seq[t] = bag.FromScalars(t, vals)
	}
	factory := signature.HistogramFactory(0, 1, 64)
	for _, tc := range []struct {
		name  string
		slots int
	}{{"cache", 0}, {"nocache", -1}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Pairwise(seq,
					core.WithPairBuilderFactory(factory, 0),
					core.WithPairGround(emd.Manhattan),
					core.WithPairEMDCostCache(tc.slots),
				)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMDSEmbed times the classical MDS embedding of a 20×20 matrix.
func BenchmarkMDSEmbed(b *testing.B) {
	rng := randx.New(23)
	n := 20
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = rng.NormalVec(2, 0, 3)
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				dx := pts[i][0] - pts[j][0]
				dy := pts[i][1] - pts[j][1]
				d[i][j] = dx*dx + dy*dy
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MDSEmbed(d, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChangeFinder and BenchmarkKCD time the Fig. 1 baselines on a
// 150-step scalar series.
func BenchmarkChangeFinder(b *testing.B) {
	rng := randx.New(24)
	xs := make([]float64, 150)
	for i := range xs {
		xs[i] = rng.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf, err := baseline.NewChangeFinder(2, 0.03, 5, 5)
		if err != nil {
			b.Fatal(err)
		}
		cf.Run(xs)
	}
}

func BenchmarkKCD(b *testing.B) {
	rng := randx.New(25)
	xs := make([][]float64, 150)
	for i := range xs {
		xs[i] = []float64{rng.Normal(0, 1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.RunKCD(xs, baseline.KCDConfig{Window: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine benchmarks ------------------------------------------------------

// benchmarkEngineBatch measures steady-state batch throughput over 64
// concurrent streams: each op pushes one batch with one bag per stream
// (64 detector pushes). The workers=1 variant is the sequential
// per-detector baseline — per-stream output is bit-identical between the
// two (see TestEnginePushBatchBitIdentical), so the worker fan-out is a
// pure throughput knob and the ratio of these two benchmarks is the
// engine's multicore speedup (≈1× on a single-core box).
func benchmarkEngineBatch(b *testing.B, workers int) {
	const streams = 64
	const history = 16
	eng, err := core.NewEngine(core.EngineConfig{
		Template: core.Config{
			Tau: 4, TauPrime: 4,
			Bootstrap: bootstrap.Config{Replicates: 200},
		},
		Factory: signature.HistogramFactory(-6, 6, 24),
		Seed:    1,
		Workers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(9)
	bags := make([][]bag.Bag, streams)
	ids := make([]string, streams)
	for s := range bags {
		ids[s] = "stream-" + string(rune('A'+s%26)) + string(rune('0'+s/26))
		bags[s] = make([]bag.Bag, history)
		for ts := range bags[s] {
			vals := make([]float64, 80)
			for i := range vals {
				vals[i] = rng.Normal(0, 1)
			}
			bags[s][ts] = bag.FromScalars(ts, vals)
		}
	}
	batch := make([]core.StreamBag, streams)
	push := func(step int) {
		for s := range batch {
			batch[s] = core.StreamBag{StreamID: ids[s], Bag: bags[s][step%history]}
		}
		if _, err := eng.PushBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	for step := 0; step < 8; step++ { // fill every window: warm steady state
		push(step)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push(8 + i)
	}
	b.ReportMetric(float64(streams)*float64(b.N)/b.Elapsed().Seconds(), "bags/s")
}

func BenchmarkEnginePushBatch(b *testing.B) {
	benchmarkEngineBatch(b, runtime.GOMAXPROCS(0))
}

func BenchmarkEnginePushBatchSequential(b *testing.B) {
	benchmarkEngineBatch(b, 1)
}
