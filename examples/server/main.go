// Server front-end demo: the engine behind real HTTP, including the
// rebalancing flow — snapshot → kill → restore → bit-identity.
//
// 120 simulated sensors each emit one bag of readings per tick, pushed
// as NDJSON batches to a bagcpd HTTP server (POST /v1/push). Halfway
// through the horizon the first server instance is snapshotted
// (GET /v1/snapshot) and torn down — as if the process crashed or its
// streams were being rebalanced to another shard — and a SECOND server
// instance restores the envelope (POST /v1/restore) and serves the rest
// of the run. An uninterrupted in-process engine provides the reference:
// every score, interval bound and alarm the restored server emits must
// match it EXACTLY, bit for bit, as if the handoff never happened.
//
// Run: go run ./examples/server
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"

	"repro"
)

const (
	sensors = 120
	ticks   = 40
	cut     = 20 // handoff tick: snapshot/kill/restore happens here
)

func newEngine() (*repro.Engine, error) {
	return repro.NewEngine(
		repro.WithTau(5), repro.WithTauPrime(4),
		repro.WithBuilderFactory(repro.HistogramFactory(-6, 10, 32)),
		repro.WithBuilderTag("hist(lo=-6,hi=10,bins=32)"),
		repro.WithBootstrap(repro.BootstrapConfig{Replicates: 400}),
		repro.WithSeed(2026),
	)
}

// instance is one live server: engine + HTTP listener.
type instance struct {
	eng  *repro.Engine
	http *http.Server
	srv  *repro.Server
	base string
}

func startInstance() (*instance, error) {
	eng, err := newEngine()
	if err != nil {
		return nil, err
	}
	srv, err := repro.NewServer(repro.ServerConfig{Engine: eng})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	inst := &instance{
		eng:  eng,
		srv:  srv,
		http: &http.Server{Handler: srv},
		base: "http://" + ln.Addr().String(),
	}
	go inst.http.Serve(ln)
	return inst, nil
}

// kill tears the instance down ungracefully-ish: listener closed, engine
// shut down. Anything not in a snapshot is gone.
func (in *instance) kill() {
	in.http.Close()
	in.srv.Close()
	in.eng.Shutdown()
}

// sensorBags generates every sensor's bag for one tick. The generator is
// its own RNG so the data stream is identical no matter who consumes it.
func sensorBags(rng *rand.Rand, failAt map[string]int, tick int) map[string][]float64 {
	out := make(map[string][]float64, sensors)
	for s := 0; s < sensors; s++ {
		id := sensorID(s)
		mu := 0.0
		if ft, failing := failAt[id]; failing && tick >= ft {
			mu = 2.5
		}
		n := 30 + rng.Intn(30)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = mu + rng.NormFloat64()
		}
		out[id] = vals
	}
	return out
}

// pushTick POSTs one tick's bags as an NDJSON batch and returns the
// scored rows keyed by stream.
func pushTick(base string, bags map[string][]float64) (map[string]string, error) {
	var body strings.Builder
	for s := 0; s < sensors; s++ {
		id := sensorID(s)
		pts := make([][]float64, len(bags[id]))
		for i, v := range bags[id] {
			pts[i] = []float64{v}
		}
		blob, _ := json.Marshal(pts)
		fmt.Fprintf(&body, "{\"stream\":%q,\"bag\":%s}\n", id, blob)
	}
	resp, err := http.Post(base+"/v1/push", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("push: %s: %s", resp.Status, msg)
	}
	rows := make(map[string]string, sensors)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var row struct {
			Stream  string `json:"stream"`
			Pending bool   `json:"pending"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, err
		}
		if !row.Pending {
			rows[row.Stream] = sc.Text()
		}
	}
	return rows, sc.Err()
}

func main() {
	// A third of the fleet drifts at a per-sensor time after the handoff,
	// so detection happens on the RESTORED instance.
	metaRNG := rand.New(rand.NewSource(99))
	failAt := make(map[string]int)
	for s := 0; s < sensors; s++ {
		if s%3 == 0 {
			failAt[sensorID(s)] = cut + 2 + metaRNG.Intn(8)
		}
	}
	tickData := make([]map[string][]float64, ticks)
	dataRNG := rand.New(rand.NewSource(7))
	for tick := 0; tick < ticks; tick++ {
		tickData[tick] = sensorBags(dataRNG, failAt, tick)
	}

	// Uninterrupted reference: the same bags through one in-process
	// engine that never stops.
	refEng, err := newEngine()
	if err != nil {
		log.Fatal(err)
	}
	refRows := make([]map[string]*repro.Point, ticks)
	for tick := 0; tick < ticks; tick++ {
		batch := make([]repro.StreamBag, sensors)
		for s := 0; s < sensors; s++ {
			id := sensorID(s)
			batch[s] = repro.StreamBag{StreamID: id, Bag: repro.BagFromScalars(tick, tickData[tick][id])}
		}
		results, err := refEng.PushBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		refRows[tick] = make(map[string]*repro.Point, sensors)
		for _, res := range results {
			if res.Point != nil {
				refRows[tick][res.StreamID] = res.Point
			}
		}
	}

	// Instance A serves the first half of the horizon.
	instA, err := startInstance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance A up at %s — %d sensors, ticks 0..%d\n", instA.base, sensors, cut-1)
	for tick := 0; tick < cut; tick++ {
		if _, err := pushTick(instA.base, tickData[tick]); err != nil {
			log.Fatal(err)
		}
	}

	// Snapshot A, then kill it.
	resp, err := http.Get(instA.base + "/v1/snapshot")
	if err != nil {
		log.Fatal(err)
	}
	envelope, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var envMeta struct {
		Version int `json:"version"`
		Streams []struct {
			ID string `json:"id"`
		} `json:"streams"`
	}
	if err := json.Unmarshal(envelope, &envMeta); err != nil {
		log.Fatal(err)
	}
	instA.kill()
	fmt.Printf("snapshot taken (v%d envelope, %d streams, %d KiB); instance A killed\n",
		envMeta.Version, len(envMeta.Streams), len(envelope)/1024)

	// Instance B restores the envelope and serves the rest.
	instB, err := startInstance()
	if err != nil {
		log.Fatal(err)
	}
	resp, err = http.Post(instB.base+"/v1/restore", "application/json", strings.NewReader(string(envelope)))
	if err != nil {
		log.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("restore: %s: %s", resp.Status, msg)
	}
	fmt.Printf("instance B up at %s — restored, ticks %d..%d\n", instB.base, cut, ticks-1)

	// Second half through B; every scored row must match the reference
	// bit for bit.
	mismatches, compared := 0, 0
	firstAlarm := make(map[string]int)
	for tick := cut; tick < ticks; tick++ {
		rows, err := pushTick(instB.base, tickData[tick])
		if err != nil {
			log.Fatal(err)
		}
		for id, raw := range rows {
			var row struct {
				T     int     `json:"t"`
				Score float64 `json:"score"`
				Lo    float64 `json:"lo"`
				Up    float64 `json:"up"`
				Alarm bool    `json:"alarm"`
			}
			if err := json.Unmarshal([]byte(raw), &row); err != nil {
				log.Fatal(err)
			}
			want := refRows[tick][id]
			compared++
			if want == nil || row.Score != want.Score || row.Lo != want.Interval.Lo ||
				row.Up != want.Interval.Up || row.T != want.T || row.Alarm != want.Alarm {
				mismatches++
			}
			if row.Alarm {
				if _, seen := firstAlarm[id]; !seen {
					firstAlarm[id] = row.T
				}
			}
		}
	}

	fmt.Printf("\nbit-identity after restore: %d/%d scored rows match the uninterrupted reference", compared-mismatches, compared)
	if mismatches == 0 {
		fmt.Printf(" — exact handoff ✓\n")
	} else {
		fmt.Printf(" — %d MISMATCHES ✗\n", mismatches)
	}

	// Fleet verdict, all detected on the restored instance.
	var flagged, missed, falsePos int
	for s := 0; s < sensors; s++ {
		id := sensorID(s)
		_, alarmed := firstAlarm[id]
		_, failing := failAt[id]
		switch {
		case failing && alarmed:
			flagged++
		case failing:
			missed++
		case alarmed:
			falsePos++
		}
	}
	fmt.Printf("degraded sensors flagged by instance B: %d/%d (missed %d, false alarms %d)\n",
		flagged, len(failAt), missed, falsePos)

	// A taste of the metrics endpoint.
	resp, err = http.Get(instB.base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\ninstance B /metrics excerpt:")
	for _, line := range strings.Split(string(scrape), "\n") {
		if strings.HasPrefix(line, "bagcpd_streams_open") ||
			strings.HasPrefix(line, "bagcpd_push_bags_total") ||
			strings.HasPrefix(line, "bagcpd_restores_total") ||
			strings.HasPrefix(line, "bagcpd_push_batch_seconds{quantile=\"0.9\"}") {
			fmt.Println("  " + line)
		}
	}
	instB.kill()
}

func sensorID(s int) string { return fmt.Sprintf("sensor-%03d", s) }
