// Server front-end sketch: one Engine monitoring MANY concurrent
// streams — the ROADMAP's "millions of users" shape at demo scale.
//
// 150 simulated sensors each emit one bag of readings per tick. A
// central collector gathers every tick's bags into a single batch and
// hands it to Engine.PushBatch, which fans the per-stream detector
// updates across the worker group. A third of the sensors degrade at a
// (per-sensor) time; the engine flags each one individually, and each
// stream's verdict is bit-identical to what a dedicated standalone
// detector for that sensor would have produced — worker count and batch
// interleaving never change results.
//
// Run: go run ./examples/server
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro"
)

const (
	sensors = 150
	ticks   = 45
)

func main() {
	eng, err := repro.NewEngine(
		repro.WithTau(5), repro.WithTauPrime(4),
		repro.WithBuilderFactory(repro.HistogramFactory(-6, 10, 32)),
		repro.WithBootstrap(repro.BootstrapConfig{Replicates: 400}),
		repro.WithSeed(2026),
		// repro.WithWorkers(n) to bound the fan-out; default GOMAXPROCS.
	)
	if err != nil {
		log.Fatal(err)
	}

	// A third of the fleet drifts: mean shifts by +2.5 at a per-sensor
	// failure time in the middle of the horizon.
	rng := rand.New(rand.NewSource(99))
	failAt := make(map[string]int)
	for s := 0; s < sensors; s++ {
		if s%3 == 0 {
			failAt[sensorID(s)] = 18 + rng.Intn(10)
		}
	}

	firstAlarm := make(map[string]int)
	batch := make([]repro.StreamBag, sensors)
	for tick := 0; tick < ticks; tick++ {
		for s := 0; s < sensors; s++ {
			id := sensorID(s)
			mu := 0.0
			if ft, failing := failAt[id]; failing && tick >= ft {
				mu = 2.5
			}
			n := 30 + rng.Intn(30)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = mu + rng.NormFloat64()
			}
			batch[s] = repro.StreamBag{StreamID: id, Bag: repro.BagFromScalars(tick, vals)}
		}
		results, err := eng.PushBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range results {
			if res.Point != nil && res.Point.Alarm {
				if _, seen := firstAlarm[res.StreamID]; !seen {
					firstAlarm[res.StreamID] = res.Point.T
				}
			}
		}
	}

	// Score the fleet: how many failing sensors were flagged, how fast,
	// and how many healthy sensors false-alarmed.
	var flagged, missed, falsePos, delaySum int
	var missedIDs []string
	for s := 0; s < sensors; s++ {
		id := sensorID(s)
		alarm, alarmed := firstAlarm[id]
		ft, failing := failAt[id]
		switch {
		case failing && alarmed && alarm >= ft-1:
			flagged++
			delaySum += alarm - ft
		case failing:
			missed++
			missedIDs = append(missedIDs, id)
		case alarmed:
			falsePos++
		}
	}
	sort.Strings(missedIDs)

	fmt.Printf("%d sensors x %d ticks through one engine (%d streams open)\n\n",
		sensors, ticks, eng.Len())
	fmt.Printf("degraded sensors flagged:  %d/%d\n", flagged, len(failAt))
	if flagged > 0 {
		fmt.Printf("mean detection delay:      %.1f ticks\n", float64(delaySum)/float64(flagged))
	}
	fmt.Printf("healthy sensors flagged:   %d/%d\n", falsePos, sensors-len(failAt))
	if missed > 0 {
		fmt.Printf("missed:                    %v\n", missedIDs)
	}
}

func sensorID(s int) string { return fmt.Sprintf("sensor-%03d", s) }
