// Quickstart: detect a distribution change in a stream of bags, using
// the Engine front-end (functional options, per-stream handles).
//
// Each "day" we observe a variable number of measurements (a bag). For
// the first 15 days they come from N(0,1); afterwards from N(4,1). The
// detector summarizes each bag, embeds the summaries with the Earth
// Mover's Distance, scores the reference-vs-test windows, and raises an
// alarm only when the Bayesian-bootstrap confidence interval at t clears
// the one at t−τ′.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// The Engine is the front door: it owns pooled detector resources and
	// hands out per-stream handles. One stream is the simplest use; see
	// examples/server for many concurrent streams through PushBatch.
	eng, err := repro.NewEngine(
		repro.WithTau(5),      // reference window: 5 bags
		repro.WithTauPrime(5), // test window: 5 bags
		repro.WithBuilderFactory(repro.HistogramFactory(-8, 12, 40)),
		repro.WithBootstrap(repro.BootstrapConfig{
			Replicates: 1000,
			Alpha:      0.05, // 95% confidence intervals
		}),
		repro.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	st, err := eng.Open("daily-measurements")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("day  score    95% interval        alarm")
	for day := 0; day < 30; day++ {
		mean := 0.0
		if day >= 15 {
			mean = 4.0 // the change
		}
		// A bag of 40-80 scalar measurements.
		n := 40 + rng.Intn(41)
		values := make([]float64, n)
		for i := range values {
			values[i] = mean + rng.NormFloat64()
		}

		point, err := st.Push(repro.BagFromScalars(day, values))
		if err != nil {
			log.Fatal(err)
		}
		if point == nil {
			continue // windows still filling
		}
		mark := ""
		if point.Alarm {
			mark = "  <<< CHANGE DETECTED"
		}
		fmt.Printf("%3d  %+.3f  [%+.3f, %+.3f]%s\n",
			point.T, point.Score, point.Interval.Lo, point.Interval.Up, mark)
	}
}
