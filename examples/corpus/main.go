// Corpus-scale retrospective analysis (the Fig. 6 pipeline at size):
// given an archive of bags — here, daily latency samples from a service
// whose behaviour shifts through three regimes — compute the full
// pairwise EMD matrix with the tiled engine, embed it with MDS to see
// the regimes as clusters, and segment the corpus with the
// distance-profile detector (repro.DistProfile), which recovers every
// regime boundary — with a permutation p-value each — from the matrix
// alone.
//
// The same matrix is then recomputed as two shard partials and merged,
// demonstrating the multi-process flow (each shard could run on its own
// host; partials are plain JSON): the merged matrix is bit-identical to
// the single-process one.
//
// Run: go run ./examples/corpus
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 120 daily bags of 60 latency samples; regime boundaries at days 40
	// and 80 (a deploy shifts the median, an incident fattens the tail).
	const days, changeA, changeB = 120, 40, 80
	var seq repro.Sequence
	for day := 0; day < days; day++ {
		samples := make([]float64, 60)
		for i := range samples {
			switch {
			case day < changeA:
				samples[i] = 20 + 3*rng.NormFloat64()
			case day < changeB:
				samples[i] = 26 + 3*rng.NormFloat64()
			default:
				samples[i] = 23 + 3*rng.NormFloat64() + 7*rng.ExpFloat64()
			}
		}
		seq = append(seq, repro.BagFromScalars(day, samples))
	}

	factory := repro.HistogramFactory(0, 80, 48)

	// Full matrix on the tiled engine: one flat allocation, workers
	// stream over tiles, result independent of tile size and workers.
	m, err := repro.PairwiseEMDTiled(seq,
		repro.WithPairBuilderFactory(factory, 7),
		repro.WithTileSize(32),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Same matrix as two mergeable shard partials — in production these
	// two calls run as separate processes on separate hosts, exchanging
	// the partials as JSON (see `repro -exp pairwise -shard i/k`).
	var parts []*repro.PartialMatrix
	for s := 0; s < 2; s++ {
		p, err := repro.PairwiseEMDShard(seq,
			repro.WithPairBuilderFactory(factory, 7),
			repro.WithTileSize(32),
			repro.WithShard(s, 2),
		)
		if err != nil {
			log.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := repro.MergePairwise(parts...)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for i := 0; i < m.N() && identical; i++ {
		for j := 0; j < m.N(); j++ {
			if merged.At(i, j) != m.At(i, j) {
				identical = false
				break
			}
		}
	}
	fmt.Printf("pairwise EMD over %d days (%d distances); 2-shard merge bit-identical: %v\n\n",
		days, days*(days-1)/2, identical)

	// MDS embedding: the three regimes separate in the plane.
	coords, _, err := repro.MDSEmbed(m.Rows(), 2)
	if err != nil {
		log.Fatal(err)
	}
	meanX := func(lo, hi int) (x float64) {
		for d := lo; d < hi; d++ {
			x += coords[d][0]
		}
		return x / float64(hi-lo)
	}
	fmt.Printf("MDS axis-1 centroids: regime1 %+6.2f   regime2 %+6.2f   regime3 %+6.2f\n",
		meanX(0, changeA), meanX(changeA, changeB), meanX(changeB, days))

	// Retrospective segmentation straight from the matrix: the
	// distance-profile detector recovers every regime boundary from the
	// pairwise distances alone — no ground truth, no window lengths —
	// and attaches a permutation p-value to each.
	points, err := repro.DistProfile(m, repro.DistProfileConfig{Replicates: 99, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, p := range points {
		fmt.Printf("segment boundary at day %d (scan stat %.4f, p=%.3f)\n", p.T, p.Stat, p.PValue)
	}
	fmt.Printf("\n%d boundaries recovered at days %v (true changes at days %d and %d)\n",
		len(points), repro.ChangeTimes(points), changeA, changeB)
}
