// Network monitoring (§5.3/§5.4 scenario): watch a stream of bipartite
// communication graphs — senders → receivers per time window — whose
// node sets differ every window, and detect when the communication
// pattern changes.
//
// We simulate a two-community service mesh. At the change point the
// clients re-partition (a failover shifts part of one community's
// traffic to the other backend pool). Each window's graph is converted
// to bags through the paper's node features (out-strength per sender,
// in-strength per receiver), and a detector runs per feature.
//
// Run: go run ./examples/network
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

// poisson draws a Poisson(lambda) count with Knuth's method (the rates
// here are small, so this is fast).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// window generates one bipartite snapshot and returns two feature bags:
// sender out-strengths and receiver in-strengths (isolated nodes are
// dropped — they did not participate in the window).
func window(rng *rand.Rand, shifted bool) (out, in []float64) {
	nSend := 90 + rng.Intn(20)
	nRecv := 46 + rng.Intn(8)
	outStrength := make([]float64, nSend)
	inStrength := make([]float64, nRecv)
	for s := 0; s < nSend; s++ {
		for r := 0; r < nRecv; r++ {
			rate := 0.2 // cross-community chatter
			if (s < nSend/2) == (r < nRecv/2) {
				rate = 2.0 // within-community traffic
			}
			if shifted && s < nSend/2 {
				// Failover: community A sends much less to its own pool
				// and spills onto the other one.
				if r < nRecv/2 {
					rate *= 0.4
				} else {
					rate += 1.2
				}
			}
			if w := poisson(rng, rate); w > 0 {
				outStrength[s] += float64(w)
				inStrength[r] += float64(w)
			}
		}
	}
	return nonzero(outStrength), nonzero(inStrength)
}

func nonzero(xs []float64) []float64 {
	var out []float64
	for _, v := range xs {
		if v > 0 {
			out = append(out, v)
		}
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(23))
	// One engine, one detector stream per graph feature: both feature
	// bags of a window ride through a single batch push, and each stream
	// stays bit-identical to a standalone detector.
	eng, err := repro.NewEngine(
		repro.WithTau(5), repro.WithTauPrime(3),
		repro.WithBuilderFactory(repro.HistogramFactory(0, 200, 32)),
		repro.WithBootstrap(repro.BootstrapConfig{Replicates: 600, Alpha: 0.05}),
		repro.WithSeed(23),
	)
	if err != nil {
		log.Fatal(err)
	}

	const windows = 40
	const changeAt = 25
	fmt.Println("win   senders-feature   receivers-feature")
	for t := 0; t < windows; t++ {
		out, in := window(rng, t >= changeAt)
		results, err := eng.PushBatch([]repro.StreamBag{
			{StreamID: "senders", Bag: repro.BagFromScalars(t, out)},
			{StreamID: "receivers", Bag: repro.BagFromScalars(t, in)},
		})
		if err != nil {
			log.Fatal(err)
		}
		row := func(p *repro.Point) string {
			if p == nil {
				return "    -      "
			}
			mark := " "
			if p.Alarm {
				mark = "X"
			}
			return fmt.Sprintf("%+7.3f  %s ", p.Score, mark)
		}
		fmt.Printf("%3d   %s       %s\n", t, row(results[0].Point), row(results[1].Point))
	}
	fmt.Printf("\nFailover at window %d re-partitioned the traffic; the node-strength\n", changeAt)
	fmt.Println("features (paper features 5 and 6) expose it even though every window")
	fmt.Println("has a different set of active senders and receivers.")
}
