// Survey monitoring (the paper's first motivating scenario): a
// questionnaire is run periodically on a changing group of respondents,
// and we monitor the OVERALL characteristics of the group — not any
// individual — for changes.
//
// Each wave, a different number of people answer two questions scored on
// continuous scales (say, satisfaction and spend). Midway through, the
// population's structure shifts: a single homogeneous group splits into
// two segments with the SAME overall mean. Tracking the per-wave mean
// vector would miss this entirely; the bag-of-data detector sees the
// distributional change.
//
// Run: go run ./examples/survey
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	det, err := repro.NewDetector(repro.Config{
		Tau:      4,
		TauPrime: 4,
		Score:    repro.ScoreKL,
		// 2-D answers → k-means signatures with 6 clusters per wave (a
		// one-off seeded builder from the stream-safe factory).
		Builder:   repro.KMeansFactory(6)(1),
		Bootstrap: repro.BootstrapConfig{Replicates: 800, Alpha: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}

	const waves = 24
	const changeAt = 12
	fmt.Println("wave  respondents  mean(sat, spend)     score   alarm")
	for wave := 0; wave < waves; wave++ {
		n := 150 + rng.Intn(100) // participation varies wave to wave
		answers := make([][]float64, n)
		meanSat, meanSpend := 0.0, 0.0
		for i := range answers {
			var sat, spend float64
			if wave < changeAt {
				// One homogeneous segment centred at (5, 5).
				sat = 5 + rng.NormFloat64()
				spend = 5 + rng.NormFloat64()
			} else {
				// Two polarized segments, same overall mean (5, 5):
				// half the base loves the product, half is churning.
				if rng.Intn(2) == 0 {
					sat = 8 + rng.NormFloat64()
					spend = 8 + rng.NormFloat64()
				} else {
					sat = 2 + rng.NormFloat64()
					spend = 2 + rng.NormFloat64()
				}
			}
			answers[i] = []float64{sat, spend}
			meanSat += sat
			meanSpend += spend
		}
		meanSat /= float64(n)
		meanSpend /= float64(n)

		point, err := det.Push(repro.NewBag(wave, answers))
		if err != nil {
			log.Fatal(err)
		}
		score, mark := "  -   ", ""
		if point != nil {
			score = fmt.Sprintf("%+.3f", point.Score)
			if point.Alarm {
				mark = "  <<< segmentation shift"
			}
		}
		fmt.Printf("%4d  %11d  (%4.2f, %4.2f)      %s%s\n",
			wave, n, meanSat, meanSpend, score, mark)
	}
	fmt.Printf("\nThe population split at wave %d while the mean stayed at (5, 5):\n", changeAt)
	fmt.Println("a mean-based monitor sees nothing; the bag detector raises an alarm.")
}
