// Outbreak detection (the paper's second motivating scenario): patients
// arrive at a hospital at a varying daily rate, and each day's analysis
// must work with however many records arrived — a bag of data per day.
//
// Each patient record is (age, temperature, symptom severity). When an
// outbreak starts, a subpopulation of young patients with high fever
// appears and the arrival rate rises. The detector consumes the raw
// daily bags; no resampling or per-day aggregation is needed even though
// every day has a different number of patients.
//
// Run: go run ./examples/outbreak
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	det, err := repro.NewDetector(repro.Config{
		Tau:      5,
		TauPrime: 3, // shorter test window: we want to react fast
		Score:    repro.ScoreKL,
		Builder:  repro.KMeansFactory(8)(3), // one-off seeded builder from the stream-safe factory

		Bootstrap: repro.BootstrapConfig{Replicates: 800, Alpha: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}

	const days = 40
	const outbreakDay = 25
	fmt.Println("day  patients  score   alarm")
	for day := 0; day < days; day++ {
		// Baseline arrivals ~ Poisson-ish 30-60/day; outbreak adds more.
		n := 30 + rng.Intn(31)
		extra := 0
		if day >= outbreakDay {
			extra = 10 + rng.Intn(20)
		}
		patients := make([][]float64, 0, n+extra)
		for i := 0; i < n; i++ {
			age := 40 + 18*rng.NormFloat64()
			temp := 36.8 + 0.5*rng.NormFloat64()
			severity := 2 + rng.NormFloat64()
			patients = append(patients, []float64{age, temp, severity})
		}
		for i := 0; i < extra; i++ {
			// Outbreak cohort: young, feverish, severe.
			age := 12 + 6*rng.NormFloat64()
			temp := 39.2 + 0.6*rng.NormFloat64()
			severity := 6 + 1.5*rng.NormFloat64()
			patients = append(patients, []float64{age, temp, severity})
		}

		point, err := det.Push(repro.NewBag(day, patients))
		if err != nil {
			log.Fatal(err)
		}
		score, mark := "   -  ", ""
		if point != nil {
			score = fmt.Sprintf("%+.3f", point.Score)
			if point.Alarm {
				mark = "  <<< OUTBREAK SIGNATURE"
			}
		}
		fmt.Printf("%3d  %8d  %s%s\n", day, len(patients), score, mark)
	}
	fmt.Printf("\nOutbreak began on day %d (young, high-fever cohort + higher volume).\n", outbreakDay)
	fmt.Println("Note the detector handles a different number of patients every day.")
}
