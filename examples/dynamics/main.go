// Dynamics change (§6 future-work extension): detect a change in the
// CORRELATION STRUCTURE of a signal whose marginal distribution never
// changes.
//
// Each bag is a window of 400 ordered samples. Before the change the
// samples follow an AR(1) process with φ=0.9 scaled to unit marginal
// variance; afterwards they are white noise with unit variance. Every
// bag's histogram looks like N(0,1) in both regimes, so the raw detector
// sees nothing. Whitening each bag with a fitted AR model (repro.Whiten)
// exposes the change: the innovation variance jumps from 0.19 to 1.
//
// Run: go run ./examples/dynamics
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func arWindow(rng *rand.Rand, n int, phi, marginalSD float64) []float64 {
	sigma := marginalSD * math.Sqrt(1-phi*phi)
	out := make([]float64, n)
	out[0] = rng.NormFloat64() * marginalSD
	for i := 1; i < n; i++ {
		out[i] = phi*out[i-1] + sigma*rng.NormFloat64()
	}
	return out
}

func run(eng *repro.Engine, seq repro.Sequence, name string) []int {
	st, err := eng.Open(name)
	if err != nil {
		log.Fatal(err)
	}
	var alarms []int
	fmt.Printf("%-10s", name)
	for _, b := range seq {
		p, err := st.Push(b)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case p == nil:
			fmt.Print(" ")
		case p.Alarm:
			fmt.Print("X")
			alarms = append(alarms, p.T)
		case p.Score > 0.5:
			fmt.Print("*")
		default:
			fmt.Print(".")
		}
	}
	fmt.Println()
	return alarms
}

func main() {
	rng := rand.New(rand.NewSource(5))
	const windows = 30
	const changeAt = 15

	seq := make(repro.Sequence, windows)
	for t := 0; t < windows; t++ {
		phi := 0.9
		if t >= changeAt {
			phi = 0.0 // white noise — same unit marginal variance
		}
		seq[t] = repro.BagFromScalars(t, arWindow(rng, 400, phi, 1))
	}

	// One engine serves both pipelines as independent streams ("raw" and
	// "whitened"), each with its own deterministic derived seed.
	eng, err := repro.NewEngine(
		repro.WithTau(5), repro.WithTauPrime(5),
		repro.WithBuilderFactory(repro.HistogramFactory(-5, 5, 30)),
		repro.WithBootstrap(repro.BootstrapConfig{Replicates: 800}),
		repro.WithSeed(5),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("30 windows; dynamics change at window %d (marginals identical)\n\n", changeAt)
	rawAlarms := run(eng, seq, "raw")

	whitened, err := repro.Whiten(seq, 1)
	if err != nil {
		log.Fatal(err)
	}
	whiteAlarms := run(eng, whitened, "whitened")

	fmt.Printf("\nraw alarms:      %v\n", rawAlarms)
	fmt.Printf("whitened alarms: %v\n", whiteAlarms)
	fmt.Println("\nThe raw pipeline is blind to a pure dynamics change; AR prewhitening")
	fmt.Println("(the paper's §6 'innovation time series' suggestion) reveals it.")
}
