// Package repro is a Go implementation of "Change-Point Detection in a
// Sequence of Bags-of-Data" (Koshijima, Hino & Murata, IEEE TKDE 27(10),
// 2015). It detects change points in time series whose observation at
// each step is a BAG — a variable-size collection of d-dimensional
// vectors — rather than a single vector.
//
// The pipeline (paper §3-§4):
//
//  1. each bag is summarized as a signature {(center, mass)} by k-means,
//     k-medoids, online quantization, or histogram binning;
//  2. signatures are embedded in a metric space with the Earth Mover's
//     Distance, computed exactly by a transportation simplex;
//  3. a change-point score compares the reference window (τ bags before
//     the inspection point) with the test window (τ′ bags from it):
//     the log-likelihood-ratio score (Eq. 16) or the symmetrized-KL
//     score (Eq. 17), both built from distance-based information
//     estimators for weighted data (Hino & Murata 2013);
//  4. a Bayesian bootstrap resamples the signature weights to attach a
//     confidence interval to every score, and an alarm is raised only
//     when the interval at t clears the interval at t−τ′ (Eq. 18-20) —
//     an adaptive threshold that suppresses false alarms under noise
//     and drift.
//
// Quick start — an Engine owns shared resources (pooled detectors with
// their warm EMD/bootstrap scratch, a bounded worker group) and hands
// out per-stream handles:
//
//	eng, err := repro.NewEngine(
//		repro.WithTau(5), repro.WithTauPrime(5),
//		repro.WithBuilderFactory(repro.HistogramFactory(-10, 10, 40)),
//		repro.WithSeed(1),
//	)
//	...
//	st, err := eng.Open("sensor-42")
//	for t, values := range stream {
//		point, err := st.Push(repro.BagFromScalars(t, values))
//		if point != nil && point.Alarm {
//			// significant change at time point.T
//		}
//	}
//
// Many concurrent streams go through the batch entry point, which fans
// independent streams across workers while keeping every stream's output
// bit-identical to a standalone detector (each stream's RNG streams are
// split deterministically from the engine seed and its id):
//
//	results, err := eng.PushBatch([]repro.StreamBag{
//		{StreamID: "user-1", Bag: bag1},
//		{StreamID: "user-2", Bag: bag2},
//		...
//	})
//
// Randomized signature builders are supplied as factories
// (KMeansFactory, KMedoidsFactory, …) rather than instances, so every
// stream gets its own deterministic builder instead of aliasing shared
// RNG state. The single-stream Detector API (NewDetector, Run) remains
// for simple pipelines and experiment drivers.
//
// The experiment drivers behind every figure of the paper live in
// cmd/repro; see EXPERIMENTS.md for the reproduction log.
package repro

import (
	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/emd"
	"repro/internal/eval"
	"repro/internal/featsel"
	"repro/internal/innovate"
	"repro/internal/mds"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/signature"
)

// Bag is the observation at one time step: a set of d-dimensional points.
type Bag = bag.Bag

// Sequence is an ordered series of bags.
type Sequence = bag.Sequence

// NewBag constructs a bag at time t; it panics on ragged points.
func NewBag(t int, points [][]float64) Bag { return bag.New(t, points) }

// BagFromScalars builds a 1-D bag from a plain value slice.
func BagFromScalars(t int, values []float64) Bag { return bag.FromScalars(t, values) }

// Signature is a weighted point set summarizing one bag (§3.1).
type Signature = signature.Signature

// Builder converts bags into signatures.
type Builder = signature.Builder

// BuilderFactory constructs a fresh Builder for a given seed. Factories
// are the stream-safe way to configure randomized signature builders:
// every detector stream gets its own builder with its own RNG, and two
// factory calls with the same seed yield identical behaviour. See the
// determinism contract on Builder in internal/signature.
type BuilderFactory = signature.BuilderFactory

// KMeansFactory returns a factory of independently seeded k-means
// builders (k-means++ seeding, at most k clusters per bag).
func KMeansFactory(k int) BuilderFactory {
	return signature.KMeansFactory(k, cluster.Config{})
}

// KMedoidsFactory returns a factory of independently seeded k-medoids
// builders (medoids are data points; robust to outliers).
func KMedoidsFactory(k int) BuilderFactory {
	return signature.KMedoidsFactory(k, cluster.Config{})
}

// OnlineFactory returns a factory of online (LVQ-style) quantizer
// builders; the builder is deterministic, so the seed is ignored.
func OnlineFactory(k int, rate float64) BuilderFactory {
	return signature.OnlineFactory(k, rate)
}

// HistogramFactory returns a factory for the 1-D histogram builder over
// [lo, hi) with the given bin count (deterministic; the seed is
// ignored). Invalid parameters panic at factory construction.
func HistogramFactory(lo, hi float64, bins int) BuilderFactory {
	return signature.HistogramFactory(lo, hi, bins)
}

// GridFactory returns a factory for the d-D grid builder with bins cells
// per dimension (deterministic; the seed is ignored).
func GridFactory(lo, hi []float64, bins int) BuilderFactory {
	return signature.GridFactory(lo, hi, bins)
}

// NewKMeansBuilder quantizes each bag with k-means (k-means++ seeding)
// into at most k clusters. The seed makes signature construction
// reproducible.
//
// Deprecated: the returned Builder holds one RNG, so sharing it between
// detectors couples their signature streams and silently breaks
// per-detector reproducibility. Use KMeansFactory with an Engine (or
// call KMeansFactory(k)(seed) for a one-off builder — this function is
// now exactly that, so single-detector behaviour is unchanged).
func NewKMeansBuilder(k int, seed int64) Builder {
	return KMeansFactory(k)(seed)
}

// NewKMedoidsBuilder quantizes each bag with k-medoids (medoids are data
// points; robust to outliers).
//
// Deprecated: see NewKMeansBuilder; use KMedoidsFactory instead.
func NewKMedoidsBuilder(k int, seed int64) Builder {
	return KMedoidsFactory(k)(seed)
}

// NewOnlineBuilder quantizes each bag in one pass with competitive
// learning (LVQ-style); suitable for very large bags.
func NewOnlineBuilder(k int, rate float64) Builder {
	return signature.NewOnlineBuilder(k, rate)
}

// NewHistogramBuilder bins 1-D bags into fixed-width bins over [lo, hi) —
// the paper's "very simple way to make signatures". Out-of-range points
// clamp into the boundary bins.
func NewHistogramBuilder(lo, hi float64, bins int) Builder {
	return signature.NewHistogramBuilder(lo, hi, bins)
}

// NewGridBuilder bins d-D bags into a fixed-width grid with `bins` cells
// per dimension.
func NewGridBuilder(lo, hi []float64, bins int) Builder {
	return signature.NewGridBuilder(lo, hi, bins)
}

// Ground is a ground distance between signature centers for EMD.
type Ground = emd.Ground

// Predefined ground distances.
var (
	// Euclidean is the L2 ground distance (the default).
	Euclidean = emd.Euclidean
	// Manhattan is the L1 ground distance.
	Manhattan = emd.Manhattan
	// Chebyshev is the L∞ ground distance.
	Chebyshev = emd.Chebyshev
)

// EMD returns the Earth Mover's Distance between two signatures under
// ground distance g (nil selects Euclidean with an exact 1-D fast path).
// Different total masses trigger the paper's partial matching (Eq. 7-12).
func EMD(s, t Signature, g Ground) (float64, error) { return emd.Distance(s, t, g) }

// ScoreType selects the change-point score. It is the historical enum
// shim over the named statistic registry (see Statistic); new code
// should select statistics by name with WithStatistic.
type ScoreType = core.ScoreType

// The two change-point scores of §3.3.
const (
	// ScoreKL is the symmetrized-KL score (Eq. 17): robust, conservative.
	ScoreKL = core.ScoreKL
	// ScoreLR is the likelihood-ratio score (Eq. 16): sensitive, noisier.
	ScoreLR = core.ScoreLR
)

// Statistic is a named per-inspection change-point score: it validates
// configs and yields the bootstrap replicate closure for a detector
// window. Built-ins are "kl" (Eq. 17), "lr" (Eq. 16) and "clr"
// (centered-log-ratio compositional preprocessing over the KL score);
// RegisterStatistic adds custom ones.
type Statistic = core.Statistic

// BagPreprocessor is the optional Statistic extension for statistics
// that transform bags before signature construction (the "clr"
// statistic implements it).
type BagPreprocessor = core.BagPreprocessor

// RegisterStatistic adds a custom statistic to the process-wide
// registry under its Name(). The name then works everywhere a built-in
// does — WithStatistic, Config.Statistic, the bagcpd -score flag — and
// joins the engine snapshot fingerprint, so both ends of a snapshot
// hand-off must register it.
func RegisterStatistic(s Statistic) error { return core.RegisterStatistic(s) }

// LookupStatistic returns the registered statistic for name.
func LookupStatistic(name string) (Statistic, bool) { return core.LookupStatistic(name) }

// StatisticNames returns every registered statistic name, sorted.
func StatisticNames() []string { return core.StatisticNames() }

// Weighting selects the base weights of the window signatures.
type Weighting = core.Weighting

// Base weight schemes (Eq. 15).
const (
	// WeightUniform weights every signature equally (paper §5 default).
	WeightUniform = core.WeightUniform
	// WeightDiscounted favours signatures near the inspection point.
	WeightDiscounted = core.WeightDiscounted
)

// Config parameterizes a Detector. Tau, TauPrime and Builder are
// required; everything else has sensible defaults.
type Config = core.Config

// BootstrapConfig controls the Bayesian-bootstrap confidence intervals:
// Replicates (default 1000) and Alpha (default 0.05).
type BootstrapConfig = bootstrap.Config

// Interval is a bootstrap confidence interval with its point estimate.
type Interval = bootstrap.Interval

// Point is the detector output at one inspection time.
type Point = core.Point

// Detector is the streaming change-point detector. Not safe for
// concurrent use.
type Detector = core.Detector

// NewDetector validates cfg and returns a ready Detector.
func NewDetector(cfg Config) (*Detector, error) { return core.New(cfg) }

// Run processes an entire sequence through a fresh detector.
func Run(cfg Config, seq Sequence) ([]Point, error) { return core.Run(cfg, seq) }

// --- Multi-stream engine -----------------------------------------------------

// Engine manages many concurrent detector streams over a pool of shared,
// recycled resources. See NewEngine and the package quick start.
type Engine = core.Engine

// Stream is a handle on one detector stream owned by an Engine.
type Stream = core.Stream

// StreamBag addresses one bag to one stream for Engine.PushBatch.
type StreamBag = core.StreamBag

// StreamResult is Engine.PushBatch's per-bag outcome.
type StreamResult = core.StreamResult

// An Option configures an Engine at construction.
type Option struct {
	apply func(cfg *core.EngineConfig)
}

// WithTau sets the reference window length τ (required, >= 1).
func WithTau(tau int) Option {
	return Option{func(c *core.EngineConfig) { c.Template.Tau = tau }}
}

// WithTauPrime sets the test window length τ′ (required, >= 1; >= 2 for
// ScoreLR).
func WithTauPrime(tauPrime int) Option {
	return Option{func(c *core.EngineConfig) { c.Template.TauPrime = tauPrime }}
}

// WithScore selects the change-point score (default ScoreKL). It is the
// historical enum shim: WithScore(ScoreKL) ≡ WithStatistic("kl") and
// WithScore(ScoreLR) ≡ WithStatistic("lr"), bit-for-bit.
func WithScore(s ScoreType) Option {
	return Option{func(c *core.EngineConfig) { c.Template.Score = s }}
}

// WithStatistic selects the per-inspection change-point statistic by
// registry name: "kl", "lr", "clr", or any name registered with
// RegisterStatistic. The name joins the engine snapshot fingerprint, so
// engines that disagree on it refuse each other's snapshots.
func WithStatistic(name string) Option {
	return Option{func(c *core.EngineConfig) { c.Template.Statistic = name }}
}

// WithWeighting selects the base weights of the window signatures
// (default WeightUniform).
func WithWeighting(w Weighting) Option {
	return Option{func(c *core.EngineConfig) { c.Template.Weighting = w }}
}

// WithBuilderFactory sets the signature builder factory (required).
// Every stream's builder is created from the factory with a seed split
// from the engine seed and the stream id.
func WithBuilderFactory(f BuilderFactory) Option {
	return Option{func(c *core.EngineConfig) { c.Factory = f }}
}

// WithGround sets the EMD ground distance (default Euclidean, with its
// exact 1-D fast path).
func WithGround(g Ground) Option {
	return Option{func(c *core.EngineConfig) { c.Template.Ground = g }}
}

// WithBootstrap configures the Bayesian-bootstrap confidence intervals.
// A zero Workers field defaults to 1 inside an engine: parallelism comes
// from fanning streams across the engine's workers, and the bootstrap
// result is bit-identical regardless.
func WithBootstrap(bc BootstrapConfig) Option {
	return Option{func(c *core.EngineConfig) { c.Template.Bootstrap = bc }}
}

// WithLogFloor clamps distances before taking logs (0 selects the
// default floor).
func WithLogFloor(floor float64) Option {
	return Option{func(c *core.EngineConfig) { c.Template.LogFloor = floor }}
}

// WithRawMass keeps raw cluster counts as signature masses, enabling the
// partial-matching EMD between bags of different sizes.
func WithRawMass(raw bool) Option {
	return Option{func(c *core.EngineConfig) { c.Template.RawMass = raw }}
}

// WithEMDLargeThreshold sets the signature size at which every stream
// detector's EMD solver switches to the block-pricing large-signature
// path (lazy blocked cost matrix, shrinking candidate refills, rooted
// basis tree): 0 — the default — selects emd.DefaultLargeThreshold
// (128), a negative value pins the classic full-refill solver at every
// size, and a positive value is the threshold. Both paths return the
// same optimal EMD to rounding; on degenerate ties they may pick
// different equally optimal bases whose costs differ in the last bits,
// so the threshold is part of the engine snapshot fingerprint — engines
// that disagree on it refuse each other's snapshots rather than
// silently diverging.
func WithEMDLargeThreshold(k int) Option {
	return Option{func(c *core.EngineConfig) { c.Template.EMDLargeK = k }}
}

// WithEMDCostCache sizes the ground-cost cache each stream detector's
// EMD solver holds. The w−1 solves of a push all involve the incoming
// signature, and stable-support builders (histogram, grid) emit
// bit-identical support sets on every bag, so cached cost rows replace
// most ground-distance evaluations with lookups. n = 0 — the default —
// selects emd.DefaultCostCacheSlots, a positive value is the slot
// count, and a negative value disables caching. Unlike the large
// threshold, the cache is bit-transparent — every score is the same
// bits with caching on or off — so this knob is NOT part of the
// snapshot fingerprint and engines may restore across different cache
// settings. Watch emd_ground_evals_total vs emd_cost_cache_hits_total
// on /metrics to see the absorption ratio.
func WithEMDCostCache(n int) Option {
	return Option{func(c *core.EngineConfig) { c.Template.EMDCostCacheSlots = n }}
}

// WithSeed sets the engine base seed. Each stream gets the derived seed
// randx.SplitSeedString(seed, streamID), so per-stream output is a
// deterministic function of (seed, stream id, pushed bags) only —
// independent of how many streams exist or in what order they open.
func WithSeed(seed int64) Option {
	return Option{func(c *core.EngineConfig) { c.Seed = seed }}
}

// WithWorkers bounds the goroutines PushBatch fans streams across
// (default GOMAXPROCS). Worker count never affects output.
func WithWorkers(n int) Option {
	return Option{func(c *core.EngineConfig) { c.Workers = n }}
}

// WithBuilderTag names the builder-factory configuration as an opaque
// string included in the snapshot fingerprint (e.g.
// "hist(lo=-8,hi=12,bins=30)"). Factories are code, so Engine.Restore
// cannot compare their parameters directly; engines whose tags differ
// refuse each other's snapshots, turning a builder-parameter mismatch
// during rebalancing into a loud error instead of silently different
// scores. Deployments that construct the factory from configuration
// should derive the tag from the same configuration.
func WithBuilderTag(tag string) Option {
	return Option{func(c *core.EngineConfig) { c.BuilderTag = tag }}
}

// NewEngine builds an Engine from functional options and validates the
// resulting configuration: WithTau, WithTauPrime and WithBuilderFactory
// are required, everything else has the same defaults as Config.
func NewEngine(opts ...Option) (*Engine, error) {
	var cfg core.EngineConfig
	for _, o := range opts {
		o.apply(&cfg)
	}
	return core.NewEngine(cfg)
}

// EngineStats is a point-in-time census of an engine's resources
// (Engine.Stats): open streams and pooled free detectors.
type EngineStats = core.Stats

// EngineSnapshot is the versioned serializable envelope of a whole
// engine's state — one entry per open stream carrying its detector's
// window, rolling log-EMD matrix, interval history, bootstrap shard
// stream positions and (for randomized builders) builder RNG position.
// Produce with Engine.Snapshot, ship as JSON, and feed to Engine.Restore
// on an identically configured engine: every restored stream is
// bit-identical going forward to one that never stopped. This is the
// rebalancing primitive — streams move between engine instances by
// snapshotting on one and restoring on another.
type EngineSnapshot = core.EngineSnapshot

// SnapshotVersion is the EngineSnapshot schema version Restore accepts.
const SnapshotVersion = core.SnapshotVersion

// --- HTTP server front-end ---------------------------------------------------

// Server is the stdlib-only net/http front-end over an Engine: NDJSON
// batch ingest with back-pressure (POST /v1/push), stream lifecycle
// (GET /v1/streams, POST /v1/streams/{id}/close), engine state transfer
// (GET /v1/snapshot, POST /v1/restore), idle-stream TTL eviction, and a
// Prometheus-style GET /metrics. See internal/server for the endpoint
// and wire-format documentation, and README.md for the HTTP API guide.
type Server = server.Server

// ServerConfig parameterizes NewServer: the Engine it fronts (required),
// MaxInFlight push batches (back-pressure; 429 beyond it), MaxBatchBags
// per request, and the IdleTTL/EvictEvery eviction knobs.
type ServerConfig = server.Config

// NewServer validates cfg and returns a ready HTTP front-end; mount it
// as an http.Handler and Close it when done (stops the eviction
// janitor). The server assumes ownership of the engine: all pushes and
// lifecycle changes must go through it.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// --- Cluster router ----------------------------------------------------------

// Router is the cluster front tier over a fleet of Server instances: it
// consistent-hashes stream ids over a static member list, forwards
// NDJSON push batches to the owning members (preserving per-row result
// order for the client), aggregates GET /v1/streams and GET /metrics
// across the fleet, and live-migrates streams between members without
// perturbing a single score (POST /v1/migrate). See internal/router for
// the endpoint and wire-format documentation, and README.md's "Cluster
// mode" section for the operational guide.
type Router = router.Router

// RouterConfig parameterizes NewRouter: the static Members list
// (required), hash-ring Replicas per member, the HTTP Client used for
// forwarding, and the MaxBatchBytes push-body bound.
type RouterConfig = router.Config

// NewRouter validates cfg and returns a ready router; mount it as an
// http.Handler in front of the member fleet.
func NewRouter(cfg RouterConfig) (*Router, error) { return router.New(cfg) }

// Alarms extracts the inspection times with raised alarms.
func Alarms(points []Point) []int { return core.Alarms(points) }

// Scores extracts the score series.
func Scores(points []Point) []float64 { return core.Scores(points) }

// PairwiseEMD returns the full EMD matrix between all bags of a sequence
// (signatures built with builder, normalized to unit mass). Feed it to
// MDSEmbed to visualize the bags the way Fig. 6 does.
//
// It is a shim over the tiled engine preserving the original [][]float64
// surface; corpus-scale callers should use PairwiseEMDTiled (flat
// PairwiseMatrix, parallel factory-built signatures) and, for n ≫ 10³,
// PairwiseEMDShard + MergePairwise to split the work across processes
// or hosts.
func PairwiseEMD(builder Builder, seq Sequence, g Ground) ([][]float64, error) {
	return core.PairwiseEMD(builder, seq, g, false)
}

// --- Tiled / sharded pairwise EMD -------------------------------------------

// PairwiseMatrix is the full symmetric EMD matrix in one flat row-major
// allocation: At(i, j) reads a cell, Rows() is the [][]float64
// compatibility view (aliasing the same storage).
type PairwiseMatrix = core.PairwiseMatrix

// PartialMatrix is one shard's packed tiles of a pairwise matrix —
// plain, JSON-serializable data that MergePairwise reassembles.
type PartialMatrix = core.PartialMatrix

// PairwiseOpt configures PairwiseEMDTiled and PairwiseEMDShard.
type PairwiseOpt = core.PairwiseOpt

// WithTileSize sets the tile edge T of the upper-triangle partition: a
// worker streams over at most 2T resident signatures per tile. 0 selects
// the default. Tile size never affects the computed values, but all
// shards of one layout must agree on it.
func WithTileSize(t int) PairwiseOpt { return core.WithTileSize(t) }

// WithPairWorkers bounds the tile-computing goroutines (<= 0 selects
// GOMAXPROCS). Worker count never affects the computed values.
func WithPairWorkers(n int) PairwiseOpt { return core.WithPairWorkers(n) }

// WithShard assigns the call shard index of count: the tile grid is
// dealt round-robin, so the count shards of one layout partition the
// matrix exactly. Use with PairwiseEMDShard.
func WithShard(index, count int) PairwiseOpt { return core.WithShard(index, count) }

// WithPairBuilderFactory builds signatures through a factory with
// per-bag split seeds (parallel, worker-count- and shard-independent).
// Exactly one of WithPairBuilderFactory and WithPairBuilder is required.
func WithPairBuilderFactory(f BuilderFactory, seed int64) PairwiseOpt {
	return core.WithPairBuilderFactory(f, seed)
}

// WithPairBuilder builds signatures sequentially with one (possibly
// stateful) builder — the legacy PairwiseEMD path, kept for builders
// whose RNG draw order is part of a reproduction contract.
func WithPairBuilder(b Builder) PairwiseOpt { return core.WithPairBuilder(b) }

// WithPairGround sets the EMD ground distance (nil selects Euclidean
// with its exact 1-D fast path).
func WithPairGround(g Ground) PairwiseOpt { return core.WithPairGround(g) }

// WithPairRawMass keeps raw signature masses (partial-matching EMD)
// instead of normalizing to unit total.
func WithPairRawMass(raw bool) PairwiseOpt { return core.WithPairRawMass(raw) }

// WithPairEMDLargeThreshold sets the signature size at which the tiled
// engine's worker solvers switch to the block-pricing large-signature
// EMD path (0 selects the emd default of 128, negative disables). All
// shards of one sharded run must agree on it; see
// core.WithPairEMDLargeThreshold.
func WithPairEMDLargeThreshold(k int) PairwiseOpt { return core.WithPairEMDLargeThreshold(k) }

// WithPairEMDCostCache sizes the tile-local ground-cost cache each
// worker solver holds (0 selects the emd default, negative disables).
// Bit-transparent — the matrix is identical with caching on or off —
// so shards need not agree on it; see core.WithPairEMDCostCache.
func WithPairEMDCostCache(n int) PairwiseOpt { return core.WithPairEMDCostCache(n) }

// PairwiseEMDTiled computes the full pairwise EMD matrix with the tiled
// engine. The result is a pure function of the signature configuration
// and the ground distance: tile size and worker count are throughput
// knobs only, and the matrix is bit-identical to a sharded run merged
// with MergePairwise.
func PairwiseEMDTiled(seq Sequence, opts ...PairwiseOpt) (*PairwiseMatrix, error) {
	return core.Pairwise(seq, opts...)
}

// PairwiseEMDShard computes one shard of the matrix (select it with
// WithShard) and returns a mergeable partial. Each shard rebuilds all n
// signatures deterministically — O(n) — while the O(n²) distance work is
// divided by the shard layout, so independent processes or hosts can
// each take a shard and a collector can MergePairwise the results.
func PairwiseEMDShard(seq Sequence, opts ...PairwiseOpt) (*PartialMatrix, error) {
	return core.PairwiseShard(seq, opts...)
}

// MergePairwise reassembles a full matrix from every shard's partial,
// validating that the tiles cover the matrix exactly once. The merged
// matrix is bit-identical to a single-process PairwiseEMDTiled run.
func MergePairwise(parts ...*PartialMatrix) (*PairwiseMatrix, error) {
	return core.MergePairwise(parts...)
}

// MDSEmbed computes a k-dimensional classical multidimensional-scaling
// embedding of a symmetric distance matrix. It returns the coordinates
// and the Gram eigenvalues (descending).
func MDSEmbed(dist [][]float64, k int) ([][]float64, []float64, error) {
	return mds.Embed(dist, k)
}

// Metrics summarizes detection quality against ground truth.
type Metrics = eval.Metrics

// MatchAlarms scores alarms against true change points: an alarm matches
// a change c when c−before <= alarm <= c+after.
func MatchAlarms(alarms, changes []int, before, after int) Metrics {
	return eval.Match(alarms, changes, before, after)
}

// Segment is a half-open regime interval [Start, End).
type Segment = eval.Segment

// Segments converts alarm times into a segmentation of [0, n), merging
// alarm bursts closer than minGap into a single boundary — the
// preprocessing/segmentation use of change-point detection from the
// paper's introduction.
func Segments(alarms []int, n, minGap int) []Segment {
	return eval.Segments(alarms, n, minGap)
}

// DistProfileConfig parameterizes DistProfile; the zero value is ready
// to use.
type DistProfileConfig = eval.DistProfileConfig

// ChangePoint is one change detected by DistProfile: the boundary time,
// its scan statistic, its permutation p-value, and the segment it was
// found in.
type ChangePoint = eval.ChangePoint

// DistProfile is the offline distance-profile multi-change-point
// detector (Dubey & Zheng style): it segments a corpus from its pairwise
// EMD matrix alone, returning every change point ranked by scan
// statistic with a permutation-bootstrap p-value. The retrospective
// complement to the streaming detector — no window lengths, no alarm
// threshold, and all change points from one matrix (the same matrix the
// Fig. 6 heatmap and MDS embedding consume).
func DistProfile(m *PairwiseMatrix, cfg DistProfileConfig) ([]ChangePoint, error) {
	return eval.DistProfile(m, cfg)
}

// ChangeTimes extracts the change times of DistProfile's result in
// ascending time order.
func ChangeTimes(points []ChangePoint) []int { return eval.ChangeTimes(points) }

// --- §6 extensions -----------------------------------------------------------

// FeatureSelector holds learned per-dimension relevance weights (the
// paper's first future-work direction: online feature selection from
// labeled change/no-change history).
type FeatureSelector = featsel.Selector

// LearnFeatureWeights learns per-dimension relevance weights from a
// labeled history: changeTimes are the inspection times labeled as
// changes; tau and tauPrime must match the detector the labels came
// from. Wrap the learned selector around any builder with
// (*FeatureSelector).Builder to apply it inside a detector Config.
func LearnFeatureWeights(seq Sequence, changeTimes []int, tau, tauPrime int) (*FeatureSelector, error) {
	return featsel.Learn(seq, changeTimes, featsel.Config{Tau: tau, TauPrime: tauPrime})
}

// Whiten replaces each 1-D bag (interpreted as an ordered sample run)
// with its AR(order) innovation bag — the paper's second future-work
// direction, for bags whose elements are serially correlated. Two
// regimes with identical marginals but different dynamics become
// distinguishable after whitening.
func Whiten(seq Sequence, order int) (Sequence, error) {
	return innovate.Whiten(seq, order)
}
