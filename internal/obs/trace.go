package obs

// TraceHeader is the fleet's batch-correlation header. The router mints
// a trace ID per push batch (or propagates a caller-supplied one) and
// forwards it to the owning members; a member echoes it in every
// per-row result, in its slow-batch log records and in the response
// header. It lives here — the shared observability layer — so the
// server and router agree on the name without depending on each other.
const TraceHeader = "X-Bagcpd-Trace"
