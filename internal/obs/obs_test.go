package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A test counter.")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_total A test counter.\n",
		"# TYPE test_total counter\n",
		"test_total 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("jobs_total", "Jobs.", "kind", "status")
	v.With("emd", "ok").Add(3)
	v.With("emd", "err").Inc()
	if again := v.With("emd", "ok"); again.Value() != 3 {
		t.Fatalf("With not get-or-create: value %d", again.Value())
	}
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	if !strings.Contains(out, `jobs_total{kind="emd",status="ok"} 3`) {
		t.Errorf("missing labeled sample in:\n%s", out)
	}
	if !strings.Contains(out, `jobs_total{kind="emd",status="err"} 1`) {
		t.Errorf("missing second series in:\n%s", out)
	}
}

func TestGetOrCreateIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "Same.")
	b := r.Counter("same_total", "Same.")
	if a != b {
		t.Fatal("Counter not idempotent")
	}
	g1 := r.Gauge("g", "G.")
	g2 := r.Gauge("g", "G.")
	if g1 != g2 {
		t.Fatal("Gauge not idempotent")
	}
	h1 := r.Histogram("h", "H.", []float64{1, 2})
	h2 := r.Histogram("h", "H.", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("Histogram not idempotent")
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering counter as gauge did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp", "Temp.")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("Value = %g, want 1", got)
	}
	var b strings.Builder
	r.Render(&b)
	if !strings.Contains(b.String(), "temp 1\n") {
		t.Errorf("gauge integer value should render without decimal point:\n%s", b.String())
	}
}

func TestGaugeFuncSampledAtScrape(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("live", "Live.", func() float64 { return v })
	var b strings.Builder
	r.Render(&b)
	if !strings.Contains(b.String(), "live 7\n") {
		t.Fatalf("first scrape:\n%s", b.String())
	}
	v = 9
	b.Reset()
	r.Render(&b)
	if !strings.Contains(b.String(), "live 9\n") {
		t.Fatalf("second scrape not resampled:\n%s", b.String())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Sum() != 56.05 {
		t.Errorf("Sum = %g, want 56.05", h.Sum())
	}
	if errs := Lint(strings.NewReader(out)); len(errs) > 0 {
		t.Errorf("histogram exposition fails lint: %v", errs)
	}
}

func TestHistogramVecLabelsWithLe(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("stage_seconds", "Stage.", []float64{1}, "stage", "statistic")
	hv.With("emd", "kl").Observe(0.5)
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	if !strings.Contains(out, `stage_seconds_bucket{stage="emd",statistic="kl",le="1"} 1`) {
		t.Errorf("le label must be appended to family labels:\n%s", out)
	}
	if !strings.Contains(out, `stage_seconds_sum{stage="emd",statistic="kl"} 0.5`) {
		t.Errorf("missing _sum with labels:\n%s", out)
	}
	if errs := Lint(strings.NewReader(out)); len(errs) > 0 {
		t.Errorf("labeled histogram fails lint: %v", errs)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestQuantileCeilRank is the regression test for the floor-rank bug
// the server's hand-rolled quantiles() had: int(p*(n-1)) floors, so p99
// over 10 samples returned the 80th-percentile sample. Ceil-rank
// (rank = ceil(p·n)) never under-reports a tail quantile.
func TestQuantileCeilRank(t *testing.T) {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i + 1)
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"single-p50", seq(1), 0.5, 1},
		{"single-p99", seq(1), 0.99, 1},
		{"n10-p50", seq(10), 0.5, 5},
		{"n10-p90", seq(10), 0.9, 9},
		// The floor-rank bug: int(0.99*9) = 8 → sample 9 (p80-ish).
		// Ceil-rank: ceil(0.99*10) = 10 → the true max.
		{"n10-p99", seq(10), 0.99, 10},
		{"n4-p50", seq(4), 0.5, 2},
		{"n4-p90", seq(4), 0.9, 4},
		{"n4-p99", seq(4), 0.99, 4},
		{"n100-p50", seq(100), 0.5, 50},
		{"n100-p99", seq(100), 0.99, 99},
		{"n100-p999", seq(100), 0.999, 100},
		{"p-one", seq(10), 1.0, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := quantileCeilRank(tc.sorted, tc.p); got != tc.want {
				t.Errorf("quantileCeilRank(n=%d, p=%g) = %g, want %g", len(tc.sorted), tc.p, got, tc.want)
			}
		})
	}
}

func TestSummaryWindowAndQuantiles(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("dur_seconds", "Durations.", 4, []float64{0.5, 0.99})
	for _, v := range []float64{100, 1, 2, 3, 4} { // 100 falls out of the 4-slot window
		s.Observe(v)
	}
	qs, count, sum := s.Quantiles()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if sum != 110 {
		t.Fatalf("sum = %g, want 110", sum)
	}
	if qs[0] != 2 || qs[1] != 4 {
		t.Fatalf("quantiles = %v, want [2 4]", qs)
	}
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		`dur_seconds{quantile="0.5"} 2`,
		`dur_seconds{quantile="0.99"} 4`,
		`dur_seconds_sum 110`,
		`dur_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderOrderIsRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "B.")
	r.Counter("a_total", "A.")
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	if strings.Index(out, "b_total") > strings.Index(out, "a_total") {
		t.Errorf("families must render in registration order:\n%s", out)
	}
}

func TestPushStageObserver(t *testing.T) {
	r := NewRegistry()
	o := r.PushStageObserver("kl")
	o.ObserveStage(StageEMD, 0.002)
	o.ObserveStage(StagePreprocess, 0.0001)
	o.ObserveSolve(SolveDelta{Pivots: 10, GroundEvals: 5, CacheHits: 3, CacheMisses: 2})
	// Second statistic shares the families.
	o2 := r.PushStageObserver("clr")
	o2.ObserveStage(StageEMD, 0.004)
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		`bagcpd_push_stage_seconds_count{stage="emd",statistic="kl"} 1`,
		`bagcpd_push_stage_seconds_count{stage="preprocess",statistic="kl"} 1`,
		`bagcpd_push_stage_seconds_count{stage="emd",statistic="clr"} 1`,
		`bagcpd_push_solver_pivots_total{statistic="kl"} 10`,
		`bagcpd_push_solver_ground_evals_total{statistic="kl"} 5`,
		`bagcpd_push_solver_cache_hits_total{statistic="kl"} 3`,
		`bagcpd_push_solver_cache_misses_total{statistic="kl"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if errs := Lint(strings.NewReader(out)); len(errs) > 0 {
		t.Errorf("stage observer exposition fails lint: %v", errs)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StagePreprocess: "preprocess",
		StageSignature:  "signature",
		StageEMD:        "emd",
		StageBootstrap:  "bootstrap",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
}

func TestRuntimeGaugesRender(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, name := range []string{
		"bagcpd_goroutines ",
		"bagcpd_heap_alloc_bytes ",
		"bagcpd_heap_sys_bytes ",
		"bagcpd_gc_pause_seconds_total ",
		"bagcpd_gc_runs_total ",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("missing runtime gauge %q in:\n%s", name, out)
		}
	}
	if errs := Lint(strings.NewReader(out)); len(errs) > 0 {
		t.Errorf("runtime gauges fail lint: %v", errs)
	}
}

func TestConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "Concurrent.", ExpBuckets(1e-6, 2, 10))
	c := r.Counter("conc_total", "Concurrent.")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64(seed*i%100) * 1e-6)
				c.Inc()
			}
		}(g + 1)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		r.Render(&b)
		if errs := Lint(strings.NewReader(b.String())); len(errs) > 0 {
			close(stop)
			wg.Wait()
			t.Fatalf("concurrent render fails lint: %v", errs)
		}
	}
	close(stop)
	wg.Wait()
}

func TestObserveAllocationFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alloc_seconds", "Alloc.", DefBuckets)
	c := r.Counter("alloc_total", "Alloc.")
	g := r.Gauge("alloc_gauge", "Alloc.")
	o := r.PushStageObserver("kl")
	if n := testing.AllocsPerRun(100, func() {
		h.Observe(1e-4)
		c.Inc()
		g.Set(1)
		o.ObserveStage(StageEMD, 1e-4)
		o.ObserveSolve(SolveDelta{Pivots: 1})
	}); n > 0 {
		t.Fatalf("hot-path observe allocates %.1f per run, want 0", n)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantSub string
	}{
		{
			"missing help/type",
			"foo_total 1\n",
			"no preceding # HELP and # TYPE",
		},
		{
			"type after sample",
			"# HELP foo_total F.\nfoo_total 1\n# TYPE foo_total counter\n",
			"after its first sample",
		},
		{
			"duplicate series",
			"# HELP foo_total F.\n# TYPE foo_total counter\nfoo_total 1\nfoo_total 2\n",
			"duplicate series",
		},
		{
			"duplicate series label order",
			"# HELP foo_total F.\n# TYPE foo_total counter\n" +
				`foo_total{a="1",b="2"} 1` + "\n" + `foo_total{b="2",a="1"} 2` + "\n",
			"duplicate series",
		},
		{
			"bad value",
			"# HELP foo_total F.\n# TYPE foo_total counter\nfoo_total abc\n",
			"bad sample value",
		},
		{
			"invalid type",
			"# TYPE foo_total widget\n",
			"invalid TYPE",
		},
		{
			"missing inf bucket",
			"# HELP h H.\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
			`missing le="+Inf"`,
		},
		{
			"non-monotone buckets",
			"# HELP h H.\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\n" + "h_sum 1\nh_count 5\n",
			"not monotone",
		},
		{
			"inf bucket != count",
			"# HELP h H.\n# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 4\n",
			"!= _count",
		},
		{
			"histogram missing sum",
			"# HELP h H.\n# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 5` + "\nh_count 5\n",
			"missing _sum",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Lint(strings.NewReader(tc.in))
			found := false
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.wantSub) {
					found = true
				}
			}
			if !found {
				t.Errorf("Lint(%q) = %v, want an error containing %q", tc.in, errs, tc.wantSub)
			}
		})
	}
}

func TestLintAcceptsCleanExposition(t *testing.T) {
	in := strings.Join([]string{
		"# HELP a_total A.",
		"# TYPE a_total counter",
		"a_total 1",
		`a_total{k="v"} 2`, // labeled + unlabeled can coexist
		"# HELP s S.",
		"# TYPE s summary",
		`s{quantile="0.5"} 0.1`,
		`s{quantile="0.99"} 0.2`,
		"s_sum 1.5",
		"s_count 10",
		"# Member metrics summed across 2/2 reachable members.", // free comments allowed
		"# HELP h H.",
		"# TYPE h histogram",
		`h_bucket{le="0.1"} 1`,
		`h_bucket{le="+Inf"} 2`,
		"h_sum 0.3",
		"h_count 2",
		"",
	}, "\n")
	if errs := Lint(strings.NewReader(in)); len(errs) > 0 {
		t.Fatalf("clean exposition rejected: %v", errs)
	}
}

func TestLintParsesEscapedLabelValues(t *testing.T) {
	in := "# HELP m M.\n# TYPE m gauge\n" +
		fmt.Sprintf("m{path=%q} 1\n", `C:\temp "x"`)
	if errs := Lint(strings.NewReader(in)); len(errs) > 0 {
		t.Fatalf("escaped label value rejected: %v", errs)
	}
}
