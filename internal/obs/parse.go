package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Sample is one parsed series sample. Name keeps any histogram/summary
// suffix (_bucket/_sum/_count); Labels is the canonical sorted label
// string (empty for unlabeled series) so samples from different
// producers compare equal exactly when they are the same series.
type Sample struct {
	Name   string
	Labels string
	Value  float64

	labels []label
}

// HasLabel reports whether the sample carries the given label key.
func (s Sample) HasLabel(key string) bool {
	_, ok := labelValue(s.labels, key)
	return ok
}

// Family is one parsed metric family: its HELP/TYPE metadata and every
// sample that belongs to it, in exposition order.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseExposition parses a Prometheus text page into its families, in
// order of first appearance. Samples with histogram/summary suffixes
// are attached to the base family that declared the matching TYPE, so a
// histogram's _bucket/_sum/_count rows travel with it. Families seen
// only through samples (no HELP/TYPE headers) come back with Type
// "untyped" and an empty Help. The first malformed sample line aborts
// with an error — this is a strict parser for expositions our own
// renderer (or a peer's) produced, not a lenient scraper.
func ParseExposition(r io.Reader) ([]*Family, error) {
	var order []*Family
	byName := make(map[string]*Family)
	get := func(name string) *Family {
		f, ok := byName[name]
		if !ok {
			f = &Family{Name: name}
			byName[name] = f
			order = append(order, f)
		}
		return f
	}
	// resolve maps a sample name to its declaring family, honoring the
	// histogram/summary suffix conventions (same rules Lint applies).
	resolve := func(sample string) *Family {
		if f, ok := byName[sample]; ok && f.Type != "" {
			return f
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(sample, suffix)
			if !ok {
				continue
			}
			if f, ok := byName[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				if suffix == "_bucket" && f.Type != "histogram" {
					continue
				}
				return f
			}
		}
		return get(sample)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				f := get(fields[2])
				text := ""
				if len(fields) == 4 {
					text = fields[3]
				}
				if fields[1] == "HELP" {
					f.Help = text
				} else {
					f.Type = text
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		f := resolve(name)
		f.Samples = append(f.Samples, Sample{
			Name:   name,
			Labels: canonicalLabels(labels),
			Value:  value,
			labels: labels,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading exposition: %w", err)
	}
	for _, f := range order {
		if f.Type == "" {
			f.Type = "untyped"
		}
	}
	return order, nil
}
