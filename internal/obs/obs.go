// Package obs is the repository's stdlib-only observability layer: a
// typed metrics registry with Prometheus text exposition, the
// stage-level instrumentation seam the detector pipeline reports into,
// and a conformance checker for the exposition format itself.
//
// The registry deliberately implements only what the serving tier
// needs — counters, gauges (stored and scrape-time sampled),
// fixed-bucket histograms, and a windowed quantile summary — so the
// hot paths stay allocation-free: a Counter.Add is one atomic add, a
// Histogram.Observe is a branchless bucket walk plus three atomics,
// and label lookups happen once at registration, never per sample.
//
// Exposition compatibility is a hard contract here: the server and
// router front-ends moved their hand-rolled /metrics rendering onto
// Registry.Render, and every pre-existing series name and sample
// format is preserved bit-for-bit (integer counters render with no
// decimal point, label values are Go-quoted exactly as before).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one rendered series group under a family: it writes its
// sample lines (HELP/TYPE are the family's job).
type metric interface {
	write(w io.Writer, name, labels string)
}

// family is one metric family: a name, HELP/TYPE metadata, and its
// series in registration order.
type family struct {
	name   string
	help   string
	typ    string
	labels []string // label keys for vec families; nil for plain ones

	mu     sync.Mutex
	index  map[string]metric // rendered label string -> series
	series []string          // rendered label strings, registration order
}

func (f *family) get(labels string) (metric, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.index[labels]
	return m, ok
}

// add registers a series under the family, returning the existing one
// when the label set is already present (get-or-create semantics: the
// server and engine may race to resolve the same handle).
func (f *family) add(labels string, m metric) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	if have, ok := f.index[labels]; ok {
		return have
	}
	f.index[labels] = m
	f.series = append(f.series, labels)
	return m
}

// Registry holds metric families in registration order and renders
// them as one Prometheus text exposition. All methods are safe for
// concurrent use. Family constructors are get-or-create: asking twice
// for the same name returns the same handle, and asking with a
// conflicting type or label set panics (it is a programming error, not
// a runtime condition).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v", name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, index: make(map[string]metric)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// renderLabels turns parallel key/value lists into the canonical
// `{k1="v1",k2="v2"}` form (empty string for no labels). Values are
// Go-quoted, which covers the Prometheus escaping rules for `"`, `\`
// and newline.
func renderLabels(keys, values []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(values[i]))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way the pre-registry code did:
// shortest exact form, integers without a decimal point.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render writes the full exposition: every family's HELP and TYPE
// followed by its series in registration order.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		f.mu.Lock()
		series := make([]string, len(f.series))
		copy(series, f.series)
		metrics := make([]metric, len(series))
		for i, ls := range series {
			metrics[i] = f.index[ls]
		}
		f.mu.Unlock()
		for i, ls := range series {
			metrics[i].write(w, f.name, ls)
		}
	}
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing integer counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Counter returns the unlabeled counter registered under name,
// creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "counter", nil)
	if m, ok := f.get(""); ok {
		return m.(*Counter)
	}
	return f.add("", &Counter{}).(*Counter)
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	fam *family
}

// With returns the counter for the given label values (one per label
// key, in registration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.fam.name, len(v.fam.labels), len(values)))
	}
	ls := renderLabels(v.fam.labels, values)
	if m, ok := v.fam.get(ls); ok {
		return m.(*Counter)
	}
	return v.fam.add(ls, &Counter{}).(*Counter)
}

// CounterVec returns the labeled counter family registered under name.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, "counter", labelKeys)}
}

// counterFunc samples a counter value at scrape time.
type counterFunc struct {
	f func() uint64
}

func (c counterFunc) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.f())
}

// CounterFunc registers a counter whose value is sampled from f at
// every scrape — for totals owned by other subsystems (the EMD
// solver's process-wide counters, GC statistics).
func (r *Registry) CounterFunc(name, help string, f func() uint64) {
	fam := r.family(name, help, "counter", nil)
	fam.add("", counterFunc{f})
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a float-valued instantaneous measurement.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (positive or negative) atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// Gauge returns the unlabeled gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "gauge", nil)
	if m, ok := f.get(""); ok {
		return m.(*Gauge)
	}
	return f.add("", &Gauge{}).(*Gauge)
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	fam *family
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.fam.name, len(v.fam.labels), len(values)))
	}
	ls := renderLabels(v.fam.labels, values)
	if m, ok := v.fam.get(ls); ok {
		return m.(*Gauge)
	}
	return v.fam.add(ls, &Gauge{}).(*Gauge)
}

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, "gauge", labelKeys)}
}

// gaugeFunc samples a gauge at scrape time.
type gaugeFunc struct {
	f func() float64
}

func (g gaugeFunc) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.f()))
}

// GaugeFunc registers a gauge whose value is sampled from f at every
// scrape (open streams, pool occupancy, runtime state).
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	fam := r.family(name, help, "gauge", nil)
	fam.add("", gaugeFunc{f})
}

// ---------------------------------------------------------------------------
// Histogram

// DefBuckets are the default latency buckets for pipeline stages:
// exponential, 1µs doubling to ~2s. Stage times span from
// microsecond signature builds to multi-millisecond bootstrap solves,
// so a factor-2 ladder keeps relative quantile error under ~50% across
// the whole range with 21 buckets.
var DefBuckets = ExpBuckets(1e-6, 2, 21)

// FsyncBuckets are the buckets for durability fsync latencies: 16µs
// doubling to ~0.5s. Group-committed fsyncs sit around 0.1–10ms on
// SSDs but stretch thousandfold on saturated or network-backed disks,
// and the histogram must resolve both regimes — the low end is where
// the fsync batching pays off, the high end is the first symptom of a
// dying volume.
var FsyncBuckets = ExpBuckets(16e-6, 2, 16)

// ExpBuckets returns n exponential bucket upper bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram counts observations into fixed upper-bound buckets and
// tracks their sum, rendering the Prometheus `_bucket`/`_sum`/`_count`
// triplet (the `le="+Inf"` bucket is implicit and always equals
// `_count`). Observe is allocation-free and safe for concurrent use.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	// count first: a concurrent Render then never sees a bucket
	// increment that is not yet reflected in the +Inf total, keeping the
	// rendered buckets monotone.
	h.count.Add(1)
	// Linear scan: bucket counts are small (~21) and latencies
	// concentrate in the low buckets, so the scan usually exits early
	// and stays branch-predictable; a binary search buys nothing here.
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			break
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) write(w io.Writer, name, labels string) {
	// _bucket lines carry the family labels plus le, cumulative.
	cum := uint64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(ub)), cum)
	}
	total := h.count.Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, total)
}

// bucketLabels appends le to an already-rendered label string.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Histogram returns the unlabeled histogram registered under name.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, "histogram", nil)
	if m, ok := f.get(""); ok {
		return m.(*Histogram)
	}
	return f.add("", newHistogram(buckets)).(*Histogram)
}

// HistogramVec is a family of histograms keyed by label values. All
// series share the same bucket bounds, which is what makes them
// aggregatable across label sets and across fleet members.
type HistogramVec struct {
	fam     *family
	buckets []float64
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.fam.name, len(v.fam.labels), len(values)))
	}
	ls := renderLabels(v.fam.labels, values)
	if m, ok := v.fam.get(ls); ok {
		return m.(*Histogram)
	}
	return v.fam.add(ls, newHistogram(v.buckets)).(*Histogram)
}

// HistogramVec returns the labeled histogram family registered under
// name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	return &HistogramVec{fam: r.family(name, help, "histogram", labelKeys), buckets: buckets}
}

// ---------------------------------------------------------------------------
// Summary

// Summary is a sliding-window quantile summary: the last window
// observations are retained in a ring buffer and the configured
// quantiles are computed at scrape time by nearest-rank with CEILING
// rank selection — for n samples, quantile p reports the
// ceil(p·n)-th smallest. (The pre-registry implementation floored the
// rank, so p99 over a 10-sample window reported the 80th-percentile
// sample; ceiling-rank never under-reports a tail quantile.)
type Summary struct {
	quantiles []float64

	mu     sync.Mutex
	window []float64
	count  uint64
	sum    float64
}

// Observe records v.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.window[s.count%uint64(len(s.window))] = v
	s.count++
	s.sum += v
	s.mu.Unlock()
}

// Count returns the total number of observations ever made.
func (s *Summary) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Quantiles returns the configured quantiles over the current window
// plus the cumulative count and sum.
func (s *Summary) Quantiles() (qs []float64, count uint64, sum float64) {
	s.mu.Lock()
	n := int(s.count)
	if n > len(s.window) {
		n = len(s.window)
	}
	w := make([]float64, n)
	copy(w, s.window[:n])
	count, sum = s.count, s.sum
	s.mu.Unlock()
	sort.Float64s(w)
	qs = make([]float64, len(s.quantiles))
	for i, p := range s.quantiles {
		qs[i] = quantileCeilRank(w, p)
	}
	return qs, count, sum
}

// quantileCeilRank returns the ceil(p·n)-th smallest of the sorted
// (ascending) samples, 0 for an empty set.
func quantileCeilRank(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

func (s *Summary) write(w io.Writer, name, labels string) {
	qs, count, sum := s.Quantiles()
	for i, p := range s.quantiles {
		fmt.Fprintf(w, "%s%s %s\n", name, quantileLabels(labels, formatFloat(p)), formatFloat(qs[i]))
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
}

func quantileLabels(labels, q string) string {
	if labels == "" {
		return `{quantile="` + q + `"}`
	}
	return labels[:len(labels)-1] + `,quantile="` + q + `"}`
}

// Summary returns the unlabeled window summary registered under name.
// window bounds the retained observations; quantiles are the reported
// points (each in (0, 1]).
func (r *Registry) Summary(name, help string, window int, quantiles []float64) *Summary {
	if window < 1 {
		panic("obs: summary window must be >= 1")
	}
	f := r.family(name, help, "summary", nil)
	if m, ok := f.get(""); ok {
		return m.(*Summary)
	}
	qs := make([]float64, len(quantiles))
	copy(qs, quantiles)
	s := &Summary{quantiles: qs, window: make([]float64, window)}
	return f.add("", s).(*Summary)
}
