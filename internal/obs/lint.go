package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint checks a Prometheus text exposition for the structural
// invariants the fleet's scrape pipeline depends on and returns one
// error per violation (nil-length for a clean exposition):
//
//   - every sample's family has # HELP and # TYPE lines, and both
//     appear BEFORE the family's first sample;
//   - no family declares HELP or TYPE twice, and TYPE is one of
//     counter, gauge, histogram, summary, untyped;
//   - no series (name + canonical label set) appears twice;
//   - sample values parse as floats;
//   - for histogram families: every label set has a le="+Inf" bucket,
//     bucket counts are monotonically non-decreasing in le, the +Inf
//     bucket equals the label set's _count sample, and _sum/_count are
//     present.
//
// It is the engine behind the server/router conformance tests and the
// cmd/metricslint CLI; general comment lines ("# ...") that are not
// HELP/TYPE are ignored, as the format allows.
func Lint(r io.Reader) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type famState struct {
		help, typ  string
		sampleSeen bool
	}
	fams := make(map[string]*famState)
	fam := func(name string) *famState {
		f, ok := fams[name]
		if !ok {
			f = &famState{}
			fams[name] = f
		}
		return f
	}
	// typeOf resolves a sample name to its declaring family,
	// accounting for the histogram/summary suffix conventions.
	typeOf := func(sample string) (family string, f *famState) {
		if f, ok := fams[sample]; ok && f.typ != "" {
			return sample, f
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(sample, suffix)
			if !ok {
				continue
			}
			if f, ok := fams[base]; ok && (f.typ == "histogram" || f.typ == "summary") {
				if suffix == "_bucket" && f.typ != "histogram" {
					continue
				}
				return base, f
			}
		}
		return sample, fams[sample]
	}

	seriesSeen := make(map[string]int) // canonical series -> line
	type histSeries struct {
		buckets map[float64]float64 // le -> cumulative count
		count   *float64
		sum     *float64
	}
	hists := make(map[string]*histSeries) // family + canonical non-le labels

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				name := fields[2]
				f := fam(name)
				switch fields[1] {
				case "HELP":
					if f.help != "" {
						fail(lineNo, "duplicate HELP for %s", name)
					}
					if f.sampleSeen {
						fail(lineNo, "HELP for %s after its first sample", name)
					}
					help := ""
					if len(fields) == 4 {
						help = fields[3]
					}
					if help == "" {
						fail(lineNo, "empty HELP text for %s", name)
					}
					f.help = help
				case "TYPE":
					if f.typ != "" {
						fail(lineNo, "duplicate TYPE for %s", name)
					}
					if f.sampleSeen {
						fail(lineNo, "TYPE for %s after its first sample", name)
					}
					typ := ""
					if len(fields) >= 4 {
						typ = fields[3]
					}
					switch typ {
					case "counter", "gauge", "histogram", "summary", "untyped":
						f.typ = typ
					default:
						fail(lineNo, "invalid TYPE %q for %s", typ, name)
					}
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(lineNo, "%v", err)
			continue
		}
		famName, f := typeOf(name)
		if f == nil || f.typ == "" || f.help == "" {
			fail(lineNo, "sample %s has no preceding # HELP and # TYPE for family %s", name, famName)
			// Record it anyway so one missing header does not cascade.
			f = fam(famName)
		}
		f.sampleSeen = true

		canon := name + canonicalLabels(labels)
		if prev, dup := seriesSeen[canon]; dup {
			fail(lineNo, "duplicate series %s (first at line %d)", canon, prev)
		}
		seriesSeen[canon] = lineNo

		if f.typ == "histogram" {
			key := famName + canonicalLabels(withoutLabel(labels, "le"))
			h, ok := hists[key]
			if !ok {
				h = &histSeries{buckets: make(map[float64]float64)}
				hists[key] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				leStr, ok := labelValue(labels, "le")
				if !ok {
					fail(lineNo, "histogram bucket %s without le label", name)
					break
				}
				le, err := parseLe(leStr)
				if err != nil {
					fail(lineNo, "histogram bucket %s: bad le %q", name, leStr)
					break
				}
				h.buckets[le] = value
			case strings.HasSuffix(name, "_count"):
				v := value
				h.count = &v
			case strings.HasSuffix(name, "_sum"):
				v := value
				h.sum = &v
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("reading exposition: %w", err))
	}

	// Histogram invariants, per label set.
	histKeys := make([]string, 0, len(hists))
	for k := range hists {
		histKeys = append(histKeys, k)
	}
	sort.Strings(histKeys)
	for _, key := range histKeys {
		h := hists[key]
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		if len(les) == 0 || !math.IsInf(les[len(les)-1], +1) {
			errs = append(errs, fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", key))
		}
		prev := math.Inf(-1)
		prevLe := 0.0
		for i, le := range les {
			if c := h.buckets[le]; i > 0 && c < prev {
				errs = append(errs, fmt.Errorf("histogram %s: bucket le=%g count %g < le=%g count %g (not monotone)", key, le, c, prevLe, prev))
			} else {
				prev, prevLe = c, le
			}
		}
		if h.count == nil {
			errs = append(errs, fmt.Errorf("histogram %s: missing _count sample", key))
		} else if inf, ok := h.buckets[math.Inf(+1)]; ok && inf != *h.count {
			errs = append(errs, fmt.Errorf("histogram %s: le=\"+Inf\" bucket %g != _count %g", key, inf, *h.count))
		}
		if h.sum == nil {
			errs = append(errs, fmt.Errorf("histogram %s: missing _sum sample", key))
		}
	}
	return errs
}

// label is one parsed key/value pair.
type label struct{ key, value string }

// parseSample splits `name{k="v",...} value [timestamp]`.
func parseSample(line string) (name string, labels []label, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := -1
		inQuote, escaped := false, false
		for j := i + 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuote:
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[i+1 : end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", nil, 0, fmt.Errorf("sample %q has no value", line)
		}
		rest = strings.TrimSpace(rest)
	}
	if name == "" || !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name in %q", line)
	}
	valStr, _, _ := strings.Cut(rest, " ") // optional timestamp after the value
	value, err = strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q in %q", valStr, line)
	}
	return name, labels, value, nil
}

func parseLabels(s string) ([]label, error) {
	var out []label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		end := -1
		escaped := false
		for j := 1; j < len(s); j++ {
			c := s[j]
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == '"':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		val, err := strconv.Unquote(s[:end+1])
		if err != nil {
			// Prometheus escaping is a subset of Go's; a value Go cannot
			// unquote is malformed for our own renderer too.
			return nil, fmt.Errorf("bad label value for %q: %v", key, err)
		}
		out = append(out, label{key: key, value: val})
		s = s[end+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(name) > 0
}

// canonicalLabels renders a sorted, normalized label string so series
// identity is independent of label order.
func canonicalLabels(labels []label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].key < sorted[j].key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.value))
	}
	b.WriteByte('}')
	return b.String()
}

func withoutLabel(labels []label, key string) []label {
	out := make([]label, 0, len(labels))
	for _, l := range labels {
		if l.key != key {
			out = append(out, l)
		}
	}
	return out
}

func labelValue(labels []label, key string) (string, bool) {
	for _, l := range labels {
		if l.key == key {
			return l.value, true
		}
	}
	return "", false
}

// parseLe parses a histogram le bound, accepting "+Inf".
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(+1), nil
	}
	return strconv.ParseFloat(s, 64)
}
