package obs

// Stage identifies one stage of the detection pipeline inside
// Detector.Push: bag preprocessing (statistics that transform bags,
// e.g. the centred-log-ratio), signature construction, the incremental
// EMD solves against the retained window, and the score/bootstrap
// interval computation.
type Stage int

const (
	StagePreprocess Stage = iota
	StageSignature
	StageEMD
	StageBootstrap
	// NumStages is the number of pipeline stages (for fixed-size
	// per-stage accumulators).
	NumStages
)

// String returns the stage's label value on the
// bagcpd_push_stage_seconds series.
func (s Stage) String() string {
	switch s {
	case StagePreprocess:
		return "preprocess"
	case StageSignature:
		return "signature"
	case StageEMD:
		return "emd"
	case StageBootstrap:
		return "bootstrap"
	default:
		return "unknown"
	}
}

// SolveDelta is the EMD solver work one Push performed, summed over
// the w−1 incremental solves: simplex pivots, ground-distance
// evaluations actually computed, and cost-cache traffic.
type SolveDelta struct {
	Pivots      uint64
	GroundEvals uint64
	CacheHits   uint64
	CacheMisses uint64
}

// StageObserver is the detector's instrumentation seam. The default is
// nil — an uninstrumented detector pays exactly one nil-check per
// stage and records nothing — and the serving tier installs a
// registry-backed observer via Engine.Instrument. Implementations must
// be safe for concurrent use (an engine shares one observer across all
// its streams) and must not allocate in either method: both run on the
// push hot path.
type StageObserver interface {
	// ObserveStage records one pipeline stage's duration for one push.
	ObserveStage(s Stage, seconds float64)
	// ObserveSolve accumulates the push's EMD solver counter deltas.
	ObserveSolve(d SolveDelta)
}

// pushObserver is the registry-backed StageObserver: per-stage
// duration histograms plus solver work counters, all labeled with the
// engine's statistic name (resolved once here, so the hot path never
// touches a label map).
type pushObserver struct {
	stages                                      [NumStages]*Histogram
	pivots, groundEvals, cacheHits, cacheMisses *Counter
}

// PushStageObserver returns a StageObserver recording into this
// registry's bagcpd_push_stage_seconds histograms and
// bagcpd_push_solver_*_total counters, labeled with the given
// statistic name. Handles are resolved once; ObserveStage and
// ObserveSolve are allocation-free.
func (r *Registry) PushStageObserver(statistic string) StageObserver {
	hv := r.HistogramVec(
		"bagcpd_push_stage_seconds",
		"Detector pipeline stage durations per push (preprocess, signature, emd, bootstrap).",
		DefBuckets, "stage", "statistic")
	o := &pushObserver{}
	for s := Stage(0); s < NumStages; s++ {
		o.stages[s] = hv.With(s.String(), statistic)
	}
	o.pivots = r.CounterVec("bagcpd_push_solver_pivots_total",
		"Simplex pivots performed by the per-push EMD solves.", "statistic").With(statistic)
	o.groundEvals = r.CounterVec("bagcpd_push_solver_ground_evals_total",
		"Ground-distance evaluations performed by the per-push EMD solves.", "statistic").With(statistic)
	o.cacheHits = r.CounterVec("bagcpd_push_solver_cache_hits_total",
		"Cost cells served from the ground-cost cache by the per-push EMD solves.", "statistic").With(statistic)
	o.cacheMisses = r.CounterVec("bagcpd_push_solver_cache_misses_total",
		"Cost cells computed and stored by the per-push EMD solves.", "statistic").With(statistic)
	return o
}

func (o *pushObserver) ObserveStage(s Stage, seconds float64) {
	if s < 0 || s >= NumStages {
		return
	}
	o.stages[s].Observe(seconds)
}

func (o *pushObserver) ObserveSolve(d SolveDelta) {
	if d.Pivots > 0 {
		o.pivots.Add(d.Pivots)
	}
	if d.GroundEvals > 0 {
		o.groundEvals.Add(d.GroundEvals)
	}
	if d.CacheHits > 0 {
		o.cacheHits.Add(d.CacheHits)
	}
	if d.CacheMisses > 0 {
		o.cacheMisses.Add(d.CacheMisses)
	}
}
