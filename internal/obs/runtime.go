package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeSampler caches one runtime.ReadMemStats per scrape burst:
// ReadMemStats stops the world, and a scrape samples several gauges
// from the same snapshot, so refreshing at most every refreshEvery
// keeps a scrape to a single pause without the gauges drifting apart.
type runtimeSampler struct {
	mu      sync.Mutex
	ms      runtime.MemStats
	last    time.Time
	refresh time.Duration
}

func (s *runtimeSampler) stats() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.last) >= s.refresh {
		runtime.ReadMemStats(&s.ms)
		s.last = now
	}
	return s.ms
}

// RegisterRuntimeGauges wires process runtime state into the registry:
// goroutine count, heap occupancy, and cumulative GC work — the
// expvar-style numbers a fleet dashboard needs next to the detector's
// own series. Values are sampled at scrape time.
func RegisterRuntimeGauges(r *Registry) {
	s := &runtimeSampler{refresh: 100 * time.Millisecond}
	r.GaugeFunc("bagcpd_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("bagcpd_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		return float64(s.stats().HeapAlloc)
	})
	r.GaugeFunc("bagcpd_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", func() float64 {
		return float64(s.stats().HeapSys)
	})
	// Exposed as a gauge because the value is a float (seconds) and the
	// registry's counters are integers; it is still monotonic.
	r.GaugeFunc("bagcpd_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", func() float64 {
		return float64(s.stats().PauseTotalNs) / 1e9
	})
	r.CounterFunc("bagcpd_gc_runs_total", "Completed GC cycles.", func() uint64 {
		return uint64(s.stats().NumGC)
	})
}
