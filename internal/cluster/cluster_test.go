package cluster

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/vec"
)

// threeBlobs generates three well-separated Gaussian blobs in 2-D.
func threeBlobs(rng *randx.RNG, n int) (points [][]float64, labels []int) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for i := 0; i < n; i++ {
		c := i % 3
		p := []float64{
			centers[c][0] + rng.Normal(0, 0.5),
			centers[c][1] + rng.Normal(0, 0.5),
		}
		points = append(points, p)
		labels = append(labels, c)
	}
	return points, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := randx.New(1)
	points, labels := threeBlobs(rng, 300)
	res, err := KMeans(points, 3, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("got %d centers, want 3", len(res.Centers))
	}
	// Every true cluster must map to exactly one k-means cluster.
	seen := map[int]map[int]int{}
	for i, a := range res.Assign {
		if seen[labels[i]] == nil {
			seen[labels[i]] = map[int]int{}
		}
		seen[labels[i]][a]++
	}
	for lbl, m := range seen {
		if len(m) != 1 {
			t.Errorf("true cluster %d split across k-means clusters %v", lbl, m)
		}
	}
	// Counts sum to the number of points.
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != len(points) {
		t.Errorf("counts sum to %d, want %d", total, len(points))
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := randx.New(1)
	if _, err := KMeans(nil, 3, Config{}, rng); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := KMeans([][]float64{{1}}, 0, Config{}, rng); err == nil {
		t.Error("expected error on k=0")
	}
}

func TestKMeansFewerPointsThanK(t *testing.T) {
	rng := randx.New(2)
	points := [][]float64{{0}, {10}}
	res, err := KMeans(points, 5, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) > 2 {
		t.Fatalf("got %d centers for 2 points", len(res.Centers))
	}
}

func TestKMeansAllIdenticalPoints(t *testing.T) {
	rng := randx.New(3)
	points := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	res, err := KMeans(points, 3, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 {
		t.Fatalf("identical points should give one center, got %d", len(res.Centers))
	}
	if res.Inertia != 0 {
		t.Errorf("inertia = %g, want 0", res.Inertia)
	}
}

func TestKMeansK1IsMean(t *testing.T) {
	rng := randx.New(4)
	points := [][]float64{{0, 0}, {2, 2}, {4, 4}}
	res, err := KMeans(points, 1, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centers[0][0]-2) > 1e-9 || math.Abs(res.Centers[0][1]-2) > 1e-9 {
		t.Errorf("k=1 center = %v, want mean [2 2]", res.Centers[0])
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := randx.New(5)
	points, _ := threeBlobs(rng, 150)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 3, 6} {
		res, err := KMeans(points, k, Config{}, randx.New(99))
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Errorf("inertia should not increase with k: k=%d inertia=%g prev=%g", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	points, _ := threeBlobs(randx.New(6), 90)
	a, _ := KMeans(points, 3, Config{}, randx.New(7))
	b, _ := KMeans(points, 3, Config{}, randx.New(7))
	for i := range a.Centers {
		if vec.Dist2(a.Centers[i], b.Centers[i]) != 0 {
			t.Fatal("same seed must give identical clustering")
		}
	}
}

func TestKMedoidsRecoversBlobs(t *testing.T) {
	rng := randx.New(8)
	points, labels := threeBlobs(rng, 150)
	res, err := KMedoids(points, 3, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("got %d medoids, want 3", len(res.Centers))
	}
	// Medoids must be actual data points.
	for _, m := range res.Centers {
		found := false
		for _, p := range points {
			if vec.SqDist2(m, p) == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Error("medoid is not a data point")
		}
	}
	seen := map[int]map[int]int{}
	for i, a := range res.Assign {
		if seen[labels[i]] == nil {
			seen[labels[i]] = map[int]int{}
		}
		seen[labels[i]][a]++
	}
	for lbl, m := range seen {
		if len(m) != 1 {
			t.Errorf("true cluster %d split: %v", lbl, m)
		}
	}
}

func TestKMedoidsErrors(t *testing.T) {
	rng := randx.New(1)
	if _, err := KMedoids(nil, 2, Config{}, rng); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := KMedoids([][]float64{{1}}, -1, Config{}, rng); err == nil {
		t.Error("expected error on k<1")
	}
}

func TestKMedoidsRobustToOutlier(t *testing.T) {
	// A single extreme outlier should not drag a medoid far from the mass.
	rng := randx.New(9)
	var points [][]float64
	for i := 0; i < 50; i++ {
		points = append(points, []float64{rng.Normal(0, 0.3)})
	}
	points = append(points, []float64{1000})
	res, err := KMedoids(points, 1, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centers[0][0]) > 2 {
		t.Errorf("medoid dragged to %v by outlier", res.Centers[0])
	}
}

func TestOnlineQuantizer(t *testing.T) {
	rng := randx.New(10)
	points, _ := threeBlobs(rng, 600)
	o := NewOnline(3, 0.5)
	for _, p := range points {
		o.Push(p)
	}
	res := o.Result(points)
	if len(res.Centers) != 3 {
		t.Fatalf("got %d centers", len(res.Centers))
	}
	// Each center should sit near one of the true blob centers.
	truth := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for _, ctr := range res.Centers {
		bestD := math.Inf(1)
		for _, tc := range truth {
			if d := vec.Dist2(ctr, tc); d < bestD {
				bestD = d
			}
		}
		if bestD > 1.5 {
			t.Errorf("online center %v is %g away from any true center", ctr, bestD)
		}
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != len(points) {
		t.Errorf("assigned counts sum to %d, want %d", total, len(points))
	}
}

func TestOnlineDuplicateSeeds(t *testing.T) {
	o := NewOnline(3, 0.5)
	o.Push([]float64{1})
	o.Push([]float64{1}) // duplicate must not become a second center
	o.Push([]float64{2})
	if len(o.Centers) != 2 {
		t.Fatalf("got %d centers, want 2", len(o.Centers))
	}
}

func TestOnlineDefaultRate(t *testing.T) {
	o := NewOnline(2, -1)
	if o.rate0 != 0.5 {
		t.Errorf("default rate = %g, want 0.5", o.rate0)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxIters != 50 || c.Tol != 1e-6 {
		t.Errorf("defaults = %+v", c)
	}
	c2 := Config{MaxIters: 5, Tol: 0.1}.withDefaults()
	if c2.MaxIters != 5 || c2.Tol != 0.1 {
		t.Errorf("explicit config overridden: %+v", c2)
	}
}
