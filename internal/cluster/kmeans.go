// Package cluster implements the vector quantizers used to build bag
// signatures (§3.1 of the paper): k-means with k-means++ seeding,
// k-medoids by Voronoi iteration, and an online competitive-learning
// quantizer in the spirit of (unsupervised) learning vector quantization.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/randx"
	"repro/internal/vec"
)

// Result holds the output of a quantizer: K centers, the assignment of
// every input point to a center, and the per-center counts.
type Result struct {
	Centers [][]float64
	Assign  []int
	Counts  []int
	// Inertia is the total squared distance from points to their centers.
	Inertia float64
	// Iters is the number of refinement iterations performed.
	Iters int
}

// Config controls the iterative quantizers.
type Config struct {
	// MaxIters bounds Lloyd/Voronoi iterations (default 50).
	MaxIters int
	// Tol stops iterating when the relative inertia improvement drops
	// below it (default 1e-6).
	Tol float64
}

func (c Config) withDefaults() Config {
	if c.MaxIters <= 0 {
		c.MaxIters = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	return c
}

// KMeans clusters points into at most k clusters with Lloyd's algorithm
// seeded by k-means++. If there are fewer than k distinct points, fewer
// clusters are returned. It returns an error for k < 1 or empty input.
func KMeans(points [][]float64, k int, cfg Config, rng *randx.RNG) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("cluster: no points to cluster")
	}
	cfg = cfg.withDefaults()
	if k > len(points) {
		k = len(points)
	}

	centers := seedPlusPlus(points, k, rng)
	k = len(centers) // may shrink when points collide

	assign := make([]int, len(points))
	counts := make([]int, k)
	prevInertia := math.Inf(1)
	var inertia float64
	iters := 0
	for ; iters < cfg.MaxIters; iters++ {
		// Assignment step.
		inertia = 0
		for i := range counts {
			counts[i] = 0
		}
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := vec.SqDist2(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			counts[best]++
			inertia += bestD
		}
		// Update step.
		d := len(points[0])
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, d)
		}
		for i, p := range points {
			vec.AddScaled(next[assign[i]], 1, p)
		}
		for c := range next {
			if counts[c] == 0 {
				// Empty cluster: reseat at the point farthest from its
				// current center to keep K clusters alive.
				far, farD := 0, -1.0
				for i, p := range points {
					if dd := vec.SqDist2(p, centers[assign[i]]); dd > farD {
						far, farD = i, dd
					}
				}
				next[c] = vec.Clone(points[far])
				continue
			}
			vec.Scale(next[c], 1/float64(counts[c]))
		}
		centers = next
		if prevInertia-inertia <= cfg.Tol*math.Max(prevInertia, 1e-300) {
			iters++
			break
		}
		prevInertia = inertia
	}

	// Final assignment against the last centers.
	inertia = 0
	for i := range counts {
		counts[i] = 0
	}
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, ctr := range centers {
			if d := vec.SqDist2(p, ctr); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		counts[best]++
		inertia += bestD
	}
	return dropEmpty(&Result{Centers: centers, Assign: assign, Counts: counts, Inertia: inertia, Iters: iters}), nil
}

// seedPlusPlus chooses initial centers by the k-means++ D² weighting.
// Duplicate points may yield fewer than k centers.
func seedPlusPlus(points [][]float64, k int, rng *randx.RNG) [][]float64 {
	centers := make([][]float64, 0, k)
	first := rng.Intn(len(points))
	centers = append(centers, vec.Clone(points[first]))

	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = vec.SqDist2(p, centers[0])
	}
	for len(centers) < k {
		total := vec.Sum(d2)
		if total <= 0 {
			break // all remaining points coincide with a center
		}
		idx := rng.Categorical(d2)
		centers = append(centers, vec.Clone(points[idx]))
		for i, p := range points {
			if d := vec.SqDist2(p, centers[len(centers)-1]); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// dropEmpty removes zero-count centers (possible after degenerate inputs)
// and renumbers assignments.
func dropEmpty(r *Result) *Result {
	remap := make([]int, len(r.Centers))
	var centers [][]float64
	var counts []int
	for c := range r.Centers {
		if r.Counts[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(centers)
		centers = append(centers, r.Centers[c])
		counts = append(counts, r.Counts[c])
	}
	for i, a := range r.Assign {
		r.Assign[i] = remap[a]
	}
	r.Centers, r.Counts = centers, counts
	return r
}
