package cluster

import (
	"fmt"
	"math"

	"repro/internal/randx"
	"repro/internal/vec"
)

// KMedoids clusters points into at most k clusters using Voronoi
// iteration (assign to nearest medoid, then move each medoid to the
// in-cluster point minimizing the total distance). Medoids are actual
// data points, which makes the quantizer robust to outliers; the paper
// lists k-medoids as one of the admissible signature builders.
func KMedoids(points [][]float64, k int, cfg Config, rng *randx.RNG) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1, got %d", k)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("cluster: no points to cluster")
	}
	cfg = cfg.withDefaults()
	if k > len(points) {
		k = len(points)
	}

	// Seed with k-means++ then snap each seed to its nearest data point
	// (seeds are data points already, so this is exact).
	medoidIdx := seedMedoids(points, k, rng)
	k = len(medoidIdx)

	assign := make([]int, len(points))
	counts := make([]int, k)
	prevCost := math.Inf(1)
	iters := 0
	for ; iters < cfg.MaxIters; iters++ {
		// Assignment.
		cost := 0.0
		for i := range counts {
			counts[i] = 0
		}
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, mi := range medoidIdx {
				if d := vec.Dist2(p, points[mi]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			counts[best]++
			cost += bestD
		}
		// Medoid update: exhaustive within each cluster.
		changed := false
		for c := range medoidIdx {
			var member []int
			for i, a := range assign {
				if a == c {
					member = append(member, i)
				}
			}
			if len(member) == 0 {
				continue
			}
			best, bestCost := medoidIdx[c], math.Inf(1)
			for _, cand := range member {
				s := 0.0
				for _, m := range member {
					s += vec.Dist2(points[cand], points[m])
				}
				if s < bestCost {
					best, bestCost = cand, s
				}
			}
			if best != medoidIdx[c] {
				medoidIdx[c] = best
				changed = true
			}
		}
		if !changed || prevCost-cost <= cfg.Tol*math.Max(prevCost, 1e-300) {
			iters++
			break
		}
		prevCost = cost
	}

	// Final assignment and inertia (squared distances, for comparability
	// with KMeans).
	inertia := 0.0
	for i := range counts {
		counts[i] = 0
	}
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, mi := range medoidIdx {
			if d := vec.SqDist2(p, points[mi]); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		counts[best]++
		inertia += bestD
	}
	centers := make([][]float64, k)
	for c, mi := range medoidIdx {
		centers[c] = vec.Clone(points[mi])
	}
	return dropEmpty(&Result{Centers: centers, Assign: assign, Counts: counts, Inertia: inertia, Iters: iters}), nil
}

func seedMedoids(points [][]float64, k int, rng *randx.RNG) []int {
	idx := make([]int, 0, k)
	first := rng.Intn(len(points))
	idx = append(idx, first)
	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = vec.SqDist2(p, points[first])
	}
	for len(idx) < k {
		if vec.Sum(d2) <= 0 {
			break
		}
		next := rng.Categorical(d2)
		idx = append(idx, next)
		for i, p := range points {
			if d := vec.SqDist2(p, points[next]); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return idx
}

// Online is a streaming competitive-learning quantizer (unsupervised
// LVQ-style): each arriving point pulls its nearest center toward itself
// with a decaying learning rate. It matches the paper's mention of
// learning vector quantization as a signature builder and allows building
// signatures in one pass over very large bags.
type Online struct {
	Centers [][]float64
	Counts  []int
	rate0   float64
}

// NewOnline creates an online quantizer with k centers seeded from the
// first k distinct points pushed into it. rate0 is the initial learning
// rate (0 < rate0 <= 1, default 0.5 if out of range).
func NewOnline(k int, rate0 float64) *Online {
	if rate0 <= 0 || rate0 > 1 {
		rate0 = 0.5
	}
	return &Online{Centers: make([][]float64, 0, k), Counts: make([]int, 0, k), rate0: rate0}
}

// Push feeds one point into the quantizer.
func (o *Online) Push(p []float64) {
	if len(o.Centers) < cap(o.Centers) {
		for _, c := range o.Centers {
			if vec.SqDist2(c, p) == 0 {
				// Duplicate of an existing seed: treat as a regular update.
				o.update(p)
				return
			}
		}
		o.Centers = append(o.Centers, vec.Clone(p))
		o.Counts = append(o.Counts, 1)
		return
	}
	o.update(p)
}

func (o *Online) update(p []float64) {
	best, bestD := 0, math.Inf(1)
	for c, ctr := range o.Centers {
		if d := vec.SqDist2(p, ctr); d < bestD {
			best, bestD = c, d
		}
	}
	o.Counts[best]++
	// Harmonic decay gives the online k-means (MacQueen) update.
	eta := o.rate0 / (1 + o.rate0*float64(o.Counts[best]-1))
	ctr := o.Centers[best]
	for j := range ctr {
		ctr[j] += eta * (p[j] - ctr[j])
	}
}

// Result converts the online state into a Result. Assign is re-derived
// from the provided points (pass nil to skip assignment).
func (o *Online) Result(points [][]float64) *Result {
	r := &Result{Centers: o.Centers, Counts: append([]int(nil), o.Counts...)}
	if points != nil {
		r.Assign = make([]int, len(points))
		r.Counts = make([]int, len(o.Centers))
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range o.Centers {
				if d := vec.SqDist2(p, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			r.Assign[i] = best
			r.Counts[best]++
			r.Inertia += bestD
		}
	}
	return r
}
