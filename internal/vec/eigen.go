package vec

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix
// using the cyclic Jacobi rotation method. It returns the eigenvalues in
// descending order and a matrix whose COLUMNS are the corresponding
// orthonormal eigenvectors: A = V·diag(λ)·Vᵀ.
//
// Jacobi is quadratic-per-sweep but extremely robust and accurate for the
// small symmetric problems that arise here (MDS Gram matrices with up to
// a few hundred rows).
func EigenSym(a *Matrix) (eigenvalues []float64, eigenvectors *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("vec: EigenSym needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-8 * (1 + a.MaxAbs())) {
		return nil, nil, fmt.Errorf("vec: EigenSym matrix is not symmetric")
	}
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				tau := s / (1 + c)

				w.Set(p, p, app-t*apq)
				w.Set(q, q, aqq+t*apq)
				w.Set(p, q, 0)
				w.Set(q, p, 0)
				for k := 0; k < n; k++ {
					if k != p && k != q {
						akp, akq := w.At(k, p), w.At(k, q)
						w.Set(k, p, akp-s*(akq+tau*akp))
						w.Set(p, k, w.At(k, p))
						w.Set(k, q, akq+s*(akp-tau*akq))
						w.Set(q, k, w.At(k, q))
					}
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, vkp-s*(vkq+tau*vkp))
					v.Set(k, q, vkq+s*(vkp-tau*vkq))
				}
			}
		}
	}

	// Extract the diagonal and sort by descending eigenvalue, permuting
	// the eigenvector columns to match.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	eigenvalues = make([]float64, n)
	eigenvectors = NewMatrix(n, n)
	for newCol, p := range pairs {
		eigenvalues[newCol] = p.val
		for r := 0; r < n; r++ {
			eigenvectors.Set(r, newCol, v.At(r, p.idx))
		}
	}
	return eigenvalues, eigenvectors, nil
}
