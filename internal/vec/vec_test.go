package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{}, []float64{}, 0},
		{[]float64{-1, 1}, []float64{1, 1}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Dot(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm2(3,4) = %g, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %g, want 0", got)
	}
	// Extreme magnitudes must not overflow.
	if got := Norm2([]float64{1e200, 1e200}); math.IsInf(got, 0) {
		t.Error("Norm2 overflowed on large inputs")
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := Dist2(a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("Dist2 = %g, want 5", got)
	}
	if got := SqDist2(a, b); !almostEq(got, 25, 1e-12) {
		t.Errorf("SqDist2 = %g, want 25", got)
	}
	if got := Dist1(a, b); !almostEq(got, 7, 1e-12) {
		t.Errorf("Dist1 = %g, want 7", got)
	}
	if got := DistInf(a, b); !almostEq(got, 4, 1e-12) {
		t.Errorf("DistInf = %g, want 4", got)
	}
}

func TestDistancesAreMetrics(t *testing.T) {
	// Property: symmetry, identity, triangle inequality on random vectors.
	rng := rand.New(rand.NewSource(1))
	dists := map[string]func(a, b []float64) float64{
		"L2":   Dist2,
		"L1":   Dist1,
		"Linf": DistInf,
	}
	for name, d := range dists {
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(5)
			x := make([]float64, n)
			y := make([]float64, n)
			z := make([]float64, n)
			for i := range x {
				x[i], y[i], z[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			}
			if !almostEq(d(x, y), d(y, x), 1e-12) {
				t.Fatalf("%s: not symmetric", name)
			}
			if d(x, x) != 0 {
				t.Fatalf("%s: d(x,x) != 0", name)
			}
			if d(x, z) > d(x, y)+d(y, z)+1e-12 {
				t.Fatalf("%s: triangle inequality violated", name)
			}
		}
	}
}

func TestAddScaledScaleSumMeanClone(t *testing.T) {
	a := []float64{1, 2, 3}
	AddScaled(a, 2, []float64{1, 1, 1})
	want := []float64{3, 4, 5}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("AddScaled = %v, want %v", a, want)
		}
	}
	Scale(a, 0.5)
	if a[0] != 1.5 || a[2] != 2.5 {
		t.Fatalf("Scale = %v", a)
	}
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %g", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	orig := []float64{9, 8}
	cp := Clone(orig)
	cp[0] = 0
	if orig[0] != 9 {
		t.Error("Clone aliases original")
	}
}

func TestArgMinArgMax(t *testing.T) {
	if got := ArgMin([]float64{3, 1, 2, 1}); got != 1 {
		t.Errorf("ArgMin = %d, want 1 (first tie)", got)
	}
	if got := ArgMax([]float64{3, 5, 2, 5}); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first tie)", got)
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Error("ArgMin/ArgMax(nil) should be -1")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g", m.At(1, 0))
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatal("Set failed")
	}
	tr := m.T()
	if tr.At(0, 1) != 9 {
		t.Fatalf("T: got %g", tr.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
	if len(m.String()) == 0 {
		t.Fatal("String should not be empty")
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := NewMatrixFrom([][]float64{{19, 22}, {43, 50}})
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("Mul = %v, want %v", got.Data, want.Data)
		}
	}
	x := a.MulVec([]float64{1, 1})
	if x[0] != 3 || x[1] != 7 {
		t.Fatalf("MulVec = %v", x)
	}
}

func TestMatrixMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		got := a.Mul(Identity(n))
		for i := range a.Data {
			if !almostEq(got.Data[i], a.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddScaleMaxAbs(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, -5}, {2, 3}})
	b := NewMatrixFrom([][]float64{{1, 1}, {1, 1}})
	a.AddInPlace(b).ScaleInPlace(2)
	if a.At(0, 0) != 4 || a.At(0, 1) != -8 {
		t.Fatalf("AddInPlace/ScaleInPlace: %v", a.Data)
	}
	if got := a.MaxAbs(); got != 8 {
		t.Fatalf("MaxAbs = %g, want 8", got)
	}
}

func TestSolveGauss(t *testing.T) {
	a := NewMatrixFrom([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := SolveGauss(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Fatalf("SolveGauss = %v, want %v", x, want)
		}
	}
	// b must be unmodified.
	if b[0] != 8 {
		t.Error("SolveGauss modified rhs")
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveGauss(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for singular matrix")
	}
}

func TestSolveGaussProperty(t *testing.T) {
	// Property: for random well-conditioned A and x, solving A·(A·x)=b
	// recovers x.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps the system well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveGauss(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				t.Fatalf("trial %d: recovered %v, want %v", trial, got, x)
			}
		}
	}
}

func TestCholesky(t *testing.T) {
	a := NewMatrixFrom([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewMatrixFrom([][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	})
	for i := range want.Data {
		if !almostEq(l.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("Cholesky =\n%vwant\n%v", l, want)
		}
	}
}

func TestCholeskyReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		g := NewMatrix(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		// A = G·Gᵀ + εI is SPD.
		a := g.Mul(g.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1e-6)
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rec := l.Mul(l.T())
		for i := range a.Data {
			if !almostEq(rec.Data[i], a.Data[i], 1e-8*(1+a.MaxAbs())) {
				t.Fatalf("trial %d: L·Lᵀ != A", trial)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := NewMatrixFrom([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Eigenvectors must be ±e1, ±e2.
	if !almostEq(math.Abs(vecs.At(0, 0)), 1, 1e-10) {
		t.Fatalf("eigenvector matrix:\n%v", vecs)
	}
}

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMatrixFrom([][]float64{{2, 1}, {1, 2}})
	vals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
}

func TestEigenSymReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Eigenvalues must be descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, vals)
			}
		}
		// V·diag(λ)·Vᵀ must reconstruct A.
		d := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, vals[i])
		}
		rec := vecs.Mul(d).Mul(vecs.T())
		for i := range a.Data {
			if !almostEq(rec.Data[i], a.Data[i], 1e-7*(1+a.MaxAbs())) {
				t.Fatalf("trial %d: reconstruction error", trial)
			}
		}
		// Columns must be orthonormal.
		vtv := vecs.T().Mul(vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(vtv.At(i, j), want, 1e-8) {
					t.Fatalf("trial %d: eigenvectors not orthonormal", trial)
				}
			}
		}
	}
}

func TestEigenSymRejectsNonSymmetric(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigenSym(a); err == nil {
		t.Fatal("expected error for non-symmetric input")
	}
}

func TestEigenSymTraceProperty(t *testing.T) {
	// Property: sum of eigenvalues equals the trace.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := NewMatrix(n, n)
		trace := 0.0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
			trace += a.At(i, i)
		}
		vals, _, err := EigenSym(a)
		if err != nil {
			return false
		}
		return almostEq(Sum(vals), trace, 1e-8*(1+math.Abs(trace)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
