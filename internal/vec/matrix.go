package vec

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewMatrix negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of equally sized rows.
// The rows are copied.
func NewMatrixFrom(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("vec: NewMatrixFrom ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m·b.
// It panics if the inner dimensions disagree.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("vec: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mv := range mi {
			if mv == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range bk {
				oi[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
// It panics if len(x) != m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("vec: MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// AddInPlace sets m += b and returns m.
// It panics if the shapes differ.
func (m *Matrix) AddInPlace(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("vec: AddInPlace shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] += v
	}
	return m
}

// ScaleInPlace multiplies every element of m by alpha and returns m.
func (m *Matrix) ScaleInPlace(alpha float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
	return m
}

// MaxAbs returns the largest absolute element value of m (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	best := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// SolveGauss solves the linear system A·x = b with partial-pivot Gaussian
// elimination. A and b are left unmodified. It returns an error if A is
// not square, shapes disagree, or A is (numerically) singular.
func SolveGauss(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("vec: SolveGauss needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("vec: SolveGauss rhs length %d != %d", len(b), n)
	}
	aug := a.Clone()
	x := Clone(b)
	for col := 0; col < n; col++ {
		// Partial pivoting.
		piv, pivAbs := col, math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if ab := math.Abs(aug.At(r, col)); ab > pivAbs {
				piv, pivAbs = r, ab
			}
		}
		if pivAbs < 1e-13 {
			return nil, fmt.Errorf("vec: SolveGauss singular matrix at column %d", col)
		}
		if piv != col {
			for j := 0; j < n; j++ {
				aug.Data[col*n+j], aug.Data[piv*n+j] = aug.Data[piv*n+j], aug.Data[col*n+j]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) * inv
			if f == 0 {
				continue
			}
			aug.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				aug.Data[r*n+j] -= f * aug.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= aug.At(i, j) * x[j]
		}
		x[i] = s / aug.At(i, i)
	}
	return x, nil
}
