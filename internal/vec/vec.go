// Package vec provides the small dense linear-algebra kernel used across
// the repository: vector operations, a dense matrix type, Cholesky
// factorization, symmetric eigendecomposition (cyclic Jacobi), and linear
// solves. It is deliberately minimal: only the routines required by the
// MDS embedding, multivariate normal sampling, and the SDAR baseline are
// implemented, all on float64 and backed by plain slices.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a, computed with scaling to avoid
// overflow/underflow for extreme magnitudes.
func Norm2(a []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range a {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	return math.Sqrt(SqDist2(a, b))
}

// SqDist2 returns the squared Euclidean distance between a and b.
// It panics if the lengths differ.
func SqDist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: SqDist2 length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Dist1 returns the L1 (Manhattan) distance between a and b.
// It panics if the lengths differ.
func Dist1(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dist1 length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += math.Abs(v - b[i])
	}
	return s
}

// DistInf returns the L∞ (Chebyshev) distance between a and b.
// It panics if the lengths differ.
func DistInf(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: DistInf length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		if d := math.Abs(v - b[i]); d > s {
			s = d
		}
	}
	return s
}

// AddScaled sets dst[i] += alpha*src[i] and returns dst.
// It panics if the lengths differ.
func AddScaled(dst []float64, alpha float64, src []float64) []float64 {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: AddScaled length mismatch %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += alpha * v
	}
	return dst
}

// Scale multiplies every element of a by alpha in place and returns a.
func Scale(a []float64, alpha float64) []float64 {
	for i := range a {
		a[i] *= alpha
	}
	return a
}

// Sum returns the sum of the elements of a.
func Sum(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of a, or 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a))
}

// Clone returns a fresh copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// ArgMin returns the index of the smallest element of a, or -1 for an
// empty slice. Ties resolve to the first occurrence.
func ArgMin(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	best, bi := a[0], 0
	for i, v := range a[1:] {
		if v < best {
			best, bi = v, i+1
		}
	}
	return bi
}

// ArgMax returns the index of the largest element of a, or -1 for an
// empty slice. Ties resolve to the first occurrence.
func ArgMax(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	best, bi := a[0], 0
	for i, v := range a[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}
