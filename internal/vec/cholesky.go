package vec

import (
	"fmt"
	"math"
)

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix A such that A = L·Lᵀ. It returns an error if A
// is not square or not positive definite (within a small tolerance that
// accepts positive semi-definite matrices with tiny negative pivots due to
// rounding, clamping them to zero).
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("vec: Cholesky needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		switch {
		case d > 0:
			l.Set(j, j, math.Sqrt(d))
		case d > -1e-10*(1+math.Abs(a.At(j, j))):
			// Semi-definite within rounding: clamp the pivot.
			l.Set(j, j, 0)
		default:
			return nil, fmt.Errorf("vec: Cholesky matrix not positive definite (pivot %g at %d)", d, j)
		}
		ljj := l.At(j, j)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if ljj == 0 {
				l.Set(i, j, 0)
			} else {
				l.Set(i, j, s/ljj)
			}
		}
	}
	return l, nil
}
