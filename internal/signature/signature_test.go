package signature

import (
	"math"
	"testing"

	"repro/internal/bag"
	"repro/internal/cluster"
	"repro/internal/randx"
)

func TestSignatureValidate(t *testing.T) {
	good := Signature{Centers: [][]float64{{1}, {2}}, Weights: []float64{1, 3}}
	if err := good.Validate(); err != nil {
		t.Errorf("good signature rejected: %v", err)
	}
	cases := map[string]Signature{
		"mismatch": {Centers: [][]float64{{1}}, Weights: []float64{1, 2}},
		"empty":    {},
		"ragged":   {Centers: [][]float64{{1}, {1, 2}}, Weights: []float64{1, 1}},
		"negative": {Centers: [][]float64{{1}}, Weights: []float64{-1}},
		"nan":      {Centers: [][]float64{{1}}, Weights: []float64{math.NaN()}},
		"zero":     {Centers: [][]float64{{1}}, Weights: []float64{0}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestNormalized(t *testing.T) {
	s := Signature{Centers: [][]float64{{0}, {1}}, Weights: []float64{1, 3}}
	n := s.Normalized()
	if math.Abs(n.TotalWeight()-1) > 1e-12 {
		t.Errorf("normalized total = %g", n.TotalWeight())
	}
	if math.Abs(n.Weights[1]-0.75) > 1e-12 {
		t.Errorf("normalized weight = %g, want 0.75", n.Weights[1])
	}
	// Original untouched.
	if s.Weights[1] != 3 {
		t.Error("Normalized modified original")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Signature{Centers: [][]float64{{1, 2}}, Weights: []float64{5}}
	c := s.Clone()
	c.Centers[0][0] = 99
	c.Weights[0] = 0
	if s.Centers[0][0] != 1 || s.Weights[0] != 5 {
		t.Error("Clone aliases original")
	}
}

func TestSignatureMean(t *testing.T) {
	s := Signature{Centers: [][]float64{{0, 0}, {4, 8}}, Weights: []float64{1, 3}}
	m := s.Mean()
	if math.Abs(m[0]-3) > 1e-12 || math.Abs(m[1]-6) > 1e-12 {
		t.Errorf("Mean = %v, want [3 6]", m)
	}
	if (Signature{}).Mean() != nil {
		t.Error("empty Mean should be nil")
	}
}

func TestKMeansBuilder(t *testing.T) {
	rng := randx.New(1)
	var pts [][]float64
	for i := 0; i < 100; i++ {
		pts = append(pts, []float64{rng.Normal(0, 0.2), rng.Normal(0, 0.2)})
		pts = append(pts, []float64{rng.Normal(8, 0.2), rng.Normal(8, 0.2)})
	}
	b := bag.New(0, pts)
	kb := NewKMeansBuilder(2, cluster.Config{}, rng)
	s, err := kb.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("signature size %d, want 2", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalWeight() != 200 {
		t.Errorf("total weight %g, want 200", s.TotalWeight())
	}
	// Centers near (0,0) and (8,8).
	for _, c := range s.Centers {
		near0 := math.Hypot(c[0], c[1]) < 1
		near8 := math.Hypot(c[0]-8, c[1]-8) < 1
		if !near0 && !near8 {
			t.Errorf("center %v far from both blobs", c)
		}
	}
}

func TestBuildersRejectEmptyBag(t *testing.T) {
	rng := randx.New(1)
	builders := map[string]Builder{
		"kmeans":   NewKMeansBuilder(2, cluster.Config{}, rng),
		"kmedoids": NewKMedoidsBuilder(2, cluster.Config{}, rng),
		"online":   NewOnlineBuilder(2, 0.5),
		"hist":     NewHistogramBuilder(0, 1, 4),
	}
	for name, b := range builders {
		if _, err := b.Build(bag.Bag{}); err == nil {
			t.Errorf("%s: expected error on empty bag", name)
		}
	}
}

func TestKMedoidsBuilder(t *testing.T) {
	rng := randx.New(2)
	var pts [][]float64
	for i := 0; i < 60; i++ {
		pts = append(pts, []float64{rng.Normal(float64(i%3)*10, 0.1)})
	}
	s, err := NewKMedoidsBuilder(3, cluster.Config{}, rng).Build(bag.New(0, pts))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.TotalWeight() != 60 {
		t.Fatalf("len=%d total=%g", s.Len(), s.TotalWeight())
	}
}

func TestOnlineBuilder(t *testing.T) {
	rng := randx.New(3)
	var pts [][]float64
	for i := 0; i < 500; i++ {
		pts = append(pts, []float64{rng.Normal(float64(i%2)*10, 0.3)})
	}
	s, err := NewOnlineBuilder(2, 0.5).Build(bag.New(0, pts))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.TotalWeight() != 500 {
		t.Fatalf("len=%d total=%g", s.Len(), s.TotalWeight())
	}
}

func TestHistogramBuilder(t *testing.T) {
	hb := NewHistogramBuilder(0, 10, 5)
	b := bag.FromScalars(0, []float64{0.5, 1.5, 1.6, 9.9, -3, 15})
	s, err := hb.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Out-of-range points clamp into end bins: bin0 has 0.5 and -3,
	// bin0 center is 1.0... wait width=2: bin0=[0,2) center 1 holds
	// {0.5, 1.5, 1.6, -3}; bin4=[8,10) center 9 holds {9.9, 15}.
	if s.TotalWeight() != 6 {
		t.Errorf("total weight %g, want 6", s.TotalWeight())
	}
	if s.Len() != 2 {
		t.Fatalf("got %d occupied bins, want 2: %+v", s.Len(), s)
	}
	for i, c := range s.Centers {
		switch c[0] {
		case 1:
			if s.Weights[i] != 4 {
				t.Errorf("bin at 1 weight %g, want 4", s.Weights[i])
			}
		case 9:
			if s.Weights[i] != 2 {
				t.Errorf("bin at 9 weight %g, want 2", s.Weights[i])
			}
		default:
			t.Errorf("unexpected bin center %g", c[0])
		}
	}
}

func TestHistogramBuilderRejectsMultiDim(t *testing.T) {
	hb := NewHistogramBuilder(0, 1, 2)
	if _, err := hb.Build(bag.New(0, [][]float64{{1, 2}})); err == nil {
		t.Error("expected error for 2-D bag")
	}
}

func TestHistogramBuilderPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogramBuilder(0, 1, 0) },
		func() { NewHistogramBuilder(1, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGridBuilder(t *testing.T) {
	gb := NewGridBuilder([]float64{0, 0}, []float64{4, 4}, 2)
	b := bag.New(0, [][]float64{
		{0.5, 0.5}, {1, 1}, // cell (0,0), center (1,1)
		{3, 3},   // cell (1,1), center (3,3)
		{-5, 10}, // clamped to cell (0,1), center (1,3)
	})
	s, err := gb.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.TotalWeight() != 4 {
		t.Fatalf("len=%d total=%g, want 3 and 4", s.Len(), s.TotalWeight())
	}
	weightAt := func(x, y float64) float64 {
		for i, c := range s.Centers {
			if c[0] == x && c[1] == y {
				return s.Weights[i]
			}
		}
		return -1
	}
	if weightAt(1, 1) != 2 {
		t.Errorf("cell (1,1) weight = %g, want 2", weightAt(1, 1))
	}
	if weightAt(3, 3) != 1 {
		t.Errorf("cell (3,3) weight = %g, want 1", weightAt(3, 3))
	}
	if weightAt(1, 3) != 1 {
		t.Errorf("clamped cell (1,3) weight = %g, want 1", weightAt(1, 3))
	}
}

func TestGridBuilderDimensionMismatch(t *testing.T) {
	gb := NewGridBuilder([]float64{0}, []float64{1}, 2)
	if _, err := gb.Build(bag.New(0, [][]float64{{1, 2}})); err == nil {
		t.Error("expected dimension error")
	}
}

func TestBuildSequence(t *testing.T) {
	hb := NewHistogramBuilder(0, 10, 10)
	seq := bag.Sequence{
		bag.FromScalars(0, []float64{1, 2, 3}),
		bag.FromScalars(1, []float64{7, 8}),
	}
	sigs, err := BuildSequence(hb, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 2 {
		t.Fatalf("got %d signatures", len(sigs))
	}
	if sigs[0].TotalWeight() != 3 || sigs[1].TotalWeight() != 2 {
		t.Error("weights do not match bag sizes")
	}
	// Error propagation from an empty bag.
	seq = append(seq, bag.Bag{T: 2})
	if _, err := BuildSequence(hb, seq); err == nil {
		t.Error("expected error for empty bag in sequence")
	}
}

// TestGridBuilderDeterministicOrder is the regression test for the grid
// builder's map-iteration bug: two builds of the same bag must emit the
// cells in the same (first-occupied) order, otherwise every bit-identity
// contract downstream of a grid signature silently breaks.
func TestGridBuilderDeterministicOrder(t *testing.T) {
	rng := randx.New(77)
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = rng.NormalVec(2, 0, 2)
	}
	b := bag.New(0, pts)
	gb := NewGridBuilder([]float64{-6, -6}, []float64{6, 6}, 8)
	ref, err := gb.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 20; run++ {
		s, err := gb.Build(b)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != ref.Len() {
			t.Fatalf("run %d: %d cells vs %d", run, s.Len(), ref.Len())
		}
		for i := range s.Centers {
			if s.Weights[i] != ref.Weights[i] || s.Centers[i][0] != ref.Centers[i][0] || s.Centers[i][1] != ref.Centers[i][1] {
				t.Fatalf("run %d: entry %d differs: (%v, %g) vs (%v, %g)",
					run, i, s.Centers[i], s.Weights[i], ref.Centers[i], ref.Weights[i])
			}
		}
	}
}
