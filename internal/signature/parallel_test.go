package signature

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bag"
	"repro/internal/cluster"
	"repro/internal/randx"
)

func parallelTestSeq(n int) bag.Sequence {
	rng := randx.New(77)
	seq := make(bag.Sequence, n)
	for i := range seq {
		pts := make([][]float64, 30+rng.Intn(20))
		for j := range pts {
			pts[j] = []float64{rng.Normal(float64(i%5), 1), rng.Normal(0, 2)}
		}
		seq[i] = bag.New(i, pts)
	}
	return seq
}

// TestBuildSequenceParallelBitIdentity: the parallel build is a pure
// function of (factory, seed, seq) — every worker count, including the
// sequential workers=1 reference, yields bit-identical signatures.
func TestBuildSequenceParallelBitIdentity(t *testing.T) {
	seq := parallelTestSeq(24)
	// (The grid builder emits map-ordered centers, so it is compared as a
	// weighted set in the stateless test below instead of bit-for-bit.)
	factories := map[string]BuilderFactory{
		"kmeans":   KMeansFactory(4, cluster.Config{MaxIters: 20}),
		"kmedoids": KMedoidsFactory(3, cluster.Config{MaxIters: 15}),
	}
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			want, err := BuildSequenceParallel(factory, 9, seq, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8, 0} {
				got, err := BuildSequenceParallel(factory, 9, seq, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: signatures differ from sequential build", workers)
				}
			}
		})
	}
}

// TestBuildSequenceParallelPerBagStreams: bag i must be summarized
// exactly as a fresh factory(SplitSeed(seed, i)) builder would — the
// reseeding fast path may not change the derived streams.
func TestBuildSequenceParallelPerBagStreams(t *testing.T) {
	seq := parallelTestSeq(10)
	factory := KMeansFactory(4, cluster.Config{MaxIters: 20})
	got, err := BuildSequenceParallel(factory, 13, seq, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range seq {
		want, err := factory(randx.SplitSeed(13, int64(i))).Build(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("bag %d differs from fresh per-bag builder", i)
		}
	}
}

// TestBuildSequenceParallelMatchesSequentialForStateless: for a
// deterministic builder the parallel build equals plain BuildSequence.
func TestBuildSequenceParallelMatchesSequentialForStateless(t *testing.T) {
	seq := parallelTestSeq(16)
	factory := GridFactory([]float64{-6, -8}, []float64{12, 8}, 5)
	want, err := BuildSequence(factory(0), seq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildSequenceParallel(factory, 3, seq, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Grid signatures iterate a map, so center order is not canonical;
	// compare as weighted sets.
	for i := range want {
		if !sameWeightedSet(got[i], want[i]) {
			t.Fatalf("bag %d differs between BuildSequence and BuildSequenceParallel", i)
		}
	}
}

func sameWeightedSet(a, b Signature) bool {
	if a.Len() != b.Len() {
		return false
	}
	am := map[string]float64{}
	bm := map[string]float64{}
	for i, c := range a.Centers {
		am[fmt.Sprint(c)] += a.Weights[i]
	}
	for i, c := range b.Centers {
		bm[fmt.Sprint(c)] += b.Weights[i]
	}
	return reflect.DeepEqual(am, bm)
}

// TestBuildSequenceParallelError: a failing bag aborts the build with a
// bag-indexed error for every worker count.
func TestBuildSequenceParallelError(t *testing.T) {
	seq := parallelTestSeq(8)
	seq[5] = bag.Bag{T: 5} // empty bag
	for _, workers := range []int{1, 4} {
		if _, err := BuildSequenceParallel(KMeansFactory(3, cluster.Config{}), 1, seq, workers); err == nil {
			t.Fatalf("workers=%d: expected error for empty bag", workers)
		}
	}
}

// TestBuilderReseedMatchesFresh: Reseed rewinds a used builder to the
// exact stream of a freshly constructed one.
func TestBuilderReseedMatchesFresh(t *testing.T) {
	seq := parallelTestSeq(6)
	used := NewKMeansBuilder(4, cluster.Config{MaxIters: 20}, randx.New(1))
	for _, b := range seq {
		if _, err := used.Build(b); err != nil {
			t.Fatal(err)
		}
	}
	used.Reseed(99)
	fresh := NewKMeansBuilder(4, cluster.Config{MaxIters: 20}, randx.New(99))
	for i, b := range seq {
		got, err := used.Build(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Build(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("bag %d: reseeded builder diverges from fresh builder", i)
		}
	}
}
