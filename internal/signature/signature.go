// Package signature implements the bag summaries of §3.1 of the paper: a
// signature S = {(u_k, w_k)} is a set of cluster centers u_k with masses
// w_k (the number of bag points quantized to each center). Builders turn a
// bag into a signature via k-means, k-medoids, online competitive
// learning, or fixed-width histogram binning (the 1-D special case the
// paper highlights).
package signature

import (
	"fmt"
	"math"

	"repro/internal/bag"
	"repro/internal/cluster"
	"repro/internal/randx"
	"repro/internal/vec"
)

// Signature is a weighted point set summarizing one bag's distribution.
type Signature struct {
	// Centers are the representative vectors u_k.
	Centers [][]float64
	// Weights are the masses w_k >= 0 (typically cluster populations).
	Weights []float64
}

// Len returns the number of (center, weight) pairs.
func (s Signature) Len() int { return len(s.Centers) }

// Dim returns the dimension of the centers, or 0 for an empty signature.
func (s Signature) Dim() int {
	if len(s.Centers) == 0 {
		return 0
	}
	return len(s.Centers[0])
}

// TotalWeight returns the sum of the weights.
func (s Signature) TotalWeight() float64 { return vec.Sum(s.Weights) }

// Validate checks structural consistency: matching lengths, uniform
// dimension, non-negative finite weights, and positive total weight.
func (s Signature) Validate() error {
	if len(s.Centers) != len(s.Weights) {
		return fmt.Errorf("signature: %d centers but %d weights", len(s.Centers), len(s.Weights))
	}
	if len(s.Centers) == 0 {
		return fmt.Errorf("signature: empty")
	}
	d := len(s.Centers[0])
	for i, c := range s.Centers {
		if len(c) != d {
			return fmt.Errorf("signature: center %d has dimension %d, want %d", i, len(c), d)
		}
	}
	total := 0.0
	for i, w := range s.Weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("signature: weight %d is %g", i, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("signature: total weight is %g", total)
	}
	return nil
}

// Normalized returns a copy whose weights sum to 1. Signatures with equal
// total mass make EMD a true metric, so detector pipelines normalize by
// default.
func (s Signature) Normalized() Signature {
	total := s.TotalWeight()
	out := Signature{Centers: s.Centers, Weights: make([]float64, len(s.Weights))}
	if total <= 0 {
		return out
	}
	for i, w := range s.Weights {
		out.Weights[i] = w / total
	}
	return out
}

// Clone returns a deep copy.
func (s Signature) Clone() Signature {
	out := Signature{
		Centers: make([][]float64, len(s.Centers)),
		Weights: vec.Clone(s.Weights),
	}
	for i, c := range s.Centers {
		out.Centers[i] = vec.Clone(c)
	}
	return out
}

// Mean returns the weighted mean of the signature's centers.
func (s Signature) Mean() []float64 {
	if s.Len() == 0 {
		return nil
	}
	m := make([]float64, s.Dim())
	total := s.TotalWeight()
	if total <= 0 {
		return m
	}
	for i, c := range s.Centers {
		vec.AddScaled(m, s.Weights[i]/total, c)
	}
	return m
}

// A Builder turns a bag into a signature.
//
// Determinism contract: a Builder may hold mutable state (the k-means
// and k-medoids builders consume draws from their RNG on every Build),
// so its output is a function of the whole call sequence, not of the
// single bag. Sharing one stateful Builder between detectors or
// goroutines silently couples their signature streams and destroys
// per-detector reproducibility. Components that need one independent
// builder per stream, per bag, or per worker take a BuilderFactory
// instead and derive each builder's seed with randx.SplitSeed.
type Builder interface {
	// Build summarizes b. It returns an error for bags it cannot
	// summarize (e.g. empty bags).
	Build(b bag.Bag) (Signature, error)
}

// A BuilderFactory constructs a fresh Builder whose randomness (if any)
// is driven entirely by seed. Factories are the stream-safe way to hand
// builders to concurrent components: every call returns a builder with
// its own RNG state, two calls with the same seed return builders with
// identical behaviour, and the factory itself must be safe for
// concurrent calls. Builders for deterministic summaries (histogram,
// grid, online quantization) may ignore the seed and even return a
// shared instance, provided Build is stateless and concurrency-safe.
type BuilderFactory func(seed int64) Builder

// RNGSnapshotter is implemented by builders whose Build consumes RNG
// draws (k-means, k-medoids): their signature stream is a function of
// the RNG position, so checkpointing a detector mid-run requires
// exporting that position and restoring it onto the factory-fresh
// builder of the resumed stream. Stateless builders (histogram, grid,
// online) deliberately do not implement it — they have nothing to
// checkpoint.
type RNGSnapshotter interface {
	// RNGState returns the builder's current RNG stream position.
	RNGState() randx.State
	// RestoreRNGState positions the builder's RNG at st; after it the
	// builder's future signatures are bit-identical to the builder the
	// state was captured from.
	RestoreRNGState(st randx.State) error
}

// KMeansFactory returns a factory of independently seeded k-means
// builders: factory(seed) behaves exactly like
// NewKMeansBuilder(k, cfg, randx.New(seed)).
func KMeansFactory(k int, cfg cluster.Config) BuilderFactory {
	return func(seed int64) Builder { return NewKMeansBuilder(k, cfg, randx.New(seed)) }
}

// KMedoidsFactory returns a factory of independently seeded k-medoids
// builders.
func KMedoidsFactory(k int, cfg cluster.Config) BuilderFactory {
	return func(seed int64) Builder { return NewKMedoidsBuilder(k, cfg, randx.New(seed)) }
}

// OnlineFactory returns a factory of online quantizer builders. The
// online builder is deterministic and stateless across Build calls, so
// the seed is ignored.
func OnlineFactory(k int, rate0 float64) BuilderFactory {
	return func(int64) Builder { return NewOnlineBuilder(k, rate0) }
}

// HistogramFactory returns a factory for the 1-D histogram builder. The
// builder is deterministic and stateless, so one shared instance serves
// every seed. Invalid parameters panic at factory construction, not at
// first use.
func HistogramFactory(lo, hi float64, bins int) BuilderFactory {
	hb := NewHistogramBuilder(lo, hi, bins)
	return func(int64) Builder { return hb }
}

// GridFactory returns a factory for the d-D grid builder; like
// HistogramFactory it validates eagerly and shares one stateless
// instance.
func GridFactory(lo, hi []float64, bins int) BuilderFactory {
	gb := NewGridBuilder(lo, hi, bins)
	return func(int64) Builder { return gb }
}

// KMeansBuilder quantizes bags with k-means (§3.1). The zero value is not
// usable; construct with NewKMeansBuilder.
type KMeansBuilder struct {
	k   int
	cfg cluster.Config
	rng *randx.RNG
}

// NewKMeansBuilder creates a k-means signature builder with at most k
// clusters per bag. The rng drives the k-means++ seeding; pass a split
// stream for reproducibility.
func NewKMeansBuilder(k int, cfg cluster.Config, rng *randx.RNG) *KMeansBuilder {
	return &KMeansBuilder{k: k, cfg: cfg, rng: rng}
}

// Build implements Builder.
func (kb *KMeansBuilder) Build(b bag.Bag) (Signature, error) {
	if b.Len() == 0 {
		return Signature{}, fmt.Errorf("signature: cannot summarize empty bag (t=%d)", b.T)
	}
	res, err := cluster.KMeans(b.Points, kb.k, kb.cfg, kb.rng)
	if err != nil {
		return Signature{}, err
	}
	return fromClusterResult(res), nil
}

// Reseed rewinds the builder's RNG to the stream a fresh builder
// constructed with randx.New(seed) would produce. BuildSequenceParallel
// uses this to re-derive a per-bag stream on a worker-owned builder
// without allocating a new one.
func (kb *KMeansBuilder) Reseed(seed int64) { kb.rng.Reseed(seed) }

// RNGState implements RNGSnapshotter.
func (kb *KMeansBuilder) RNGState() randx.State { return kb.rng.State() }

// RestoreRNGState implements RNGSnapshotter.
func (kb *KMeansBuilder) RestoreRNGState(st randx.State) error { return kb.rng.Restore(st) }

// KMedoidsBuilder quantizes bags with k-medoids.
type KMedoidsBuilder struct {
	k   int
	cfg cluster.Config
	rng *randx.RNG
}

// NewKMedoidsBuilder creates a k-medoids signature builder.
func NewKMedoidsBuilder(k int, cfg cluster.Config, rng *randx.RNG) *KMedoidsBuilder {
	return &KMedoidsBuilder{k: k, cfg: cfg, rng: rng}
}

// Build implements Builder.
func (kb *KMedoidsBuilder) Build(b bag.Bag) (Signature, error) {
	if b.Len() == 0 {
		return Signature{}, fmt.Errorf("signature: cannot summarize empty bag (t=%d)", b.T)
	}
	res, err := cluster.KMedoids(b.Points, kb.k, kb.cfg, kb.rng)
	if err != nil {
		return Signature{}, err
	}
	return fromClusterResult(res), nil
}

// Reseed rewinds the builder's RNG to the stream of randx.New(seed); see
// (*KMeansBuilder).Reseed.
func (kb *KMedoidsBuilder) Reseed(seed int64) { kb.rng.Reseed(seed) }

// RNGState implements RNGSnapshotter.
func (kb *KMedoidsBuilder) RNGState() randx.State { return kb.rng.State() }

// RestoreRNGState implements RNGSnapshotter.
func (kb *KMedoidsBuilder) RestoreRNGState(st randx.State) error { return kb.rng.Restore(st) }

// OnlineBuilder quantizes bags with one-pass competitive learning
// (unsupervised LVQ), suitable for very large bags.
type OnlineBuilder struct {
	k     int
	rate0 float64
}

// NewOnlineBuilder creates an online quantizer builder with k centers and
// initial learning rate rate0.
func NewOnlineBuilder(k int, rate0 float64) *OnlineBuilder {
	return &OnlineBuilder{k: k, rate0: rate0}
}

// Build implements Builder.
func (ob *OnlineBuilder) Build(b bag.Bag) (Signature, error) {
	if b.Len() == 0 {
		return Signature{}, fmt.Errorf("signature: cannot summarize empty bag (t=%d)", b.T)
	}
	o := cluster.NewOnline(ob.k, ob.rate0)
	for _, p := range b.Points {
		o.Push(p)
	}
	return fromClusterResult(o.Result(b.Points)), nil
}

func fromClusterResult(res *cluster.Result) Signature {
	s := Signature{
		Centers: res.Centers,
		Weights: make([]float64, len(res.Counts)),
	}
	for i, c := range res.Counts {
		s.Weights[i] = float64(c)
	}
	return s
}

// HistogramBuilder bins 1-D bags into fixed-width bins over [Lo, Hi)
// (§3.1's "very simple way to make signatures"). Out-of-range points are
// clamped into the boundary bins. Empty bins are dropped from the
// signature (signatures are sparse histograms).
type HistogramBuilder struct {
	Lo, Hi float64
	Bins   int
}

// NewHistogramBuilder creates a histogram builder with the given range and
// bin count. It panics for invalid parameters so misconfiguration fails
// fast at experiment setup.
func NewHistogramBuilder(lo, hi float64, bins int) *HistogramBuilder {
	if bins < 1 || !(hi > lo) {
		panic(fmt.Sprintf("signature: invalid histogram [%g,%g) with %d bins", lo, hi, bins))
	}
	return &HistogramBuilder{Lo: lo, Hi: hi, Bins: bins}
}

// Build implements Builder for 1-D bags.
func (hb *HistogramBuilder) Build(b bag.Bag) (Signature, error) {
	if b.Len() == 0 {
		return Signature{}, fmt.Errorf("signature: cannot summarize empty bag (t=%d)", b.T)
	}
	if b.Dim() != 1 {
		return Signature{}, fmt.Errorf("signature: histogram builder needs 1-D bags, got %d-D", b.Dim())
	}
	width := (hb.Hi - hb.Lo) / float64(hb.Bins)
	counts := make([]float64, hb.Bins)
	for _, p := range b.Points {
		idx := int((p[0] - hb.Lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= hb.Bins {
			idx = hb.Bins - 1
		}
		counts[idx]++
	}
	var s Signature
	for i, c := range counts {
		if c == 0 {
			continue
		}
		mid := hb.Lo + (float64(i)+0.5)*width
		s.Centers = append(s.Centers, []float64{mid})
		s.Weights = append(s.Weights, c)
	}
	return s, nil
}

// GridBuilder bins d-dimensional bags into a fixed-width grid, the d-D
// generalization of HistogramBuilder. Bins are addressed sparsely so only
// occupied cells consume memory.
type GridBuilder struct {
	Lo, Hi []float64
	Bins   int // bins per dimension
}

// NewGridBuilder creates a grid builder over the box [lo, hi) with bins
// cells per dimension. It panics for invalid parameters.
func NewGridBuilder(lo, hi []float64, bins int) *GridBuilder {
	if bins < 1 || len(lo) != len(hi) || len(lo) == 0 {
		panic("signature: invalid grid parameters")
	}
	for j := range lo {
		if !(hi[j] > lo[j]) {
			panic(fmt.Sprintf("signature: invalid grid range dim %d [%g,%g)", j, lo[j], hi[j]))
		}
	}
	return &GridBuilder{Lo: vec.Clone(lo), Hi: vec.Clone(hi), Bins: bins}
}

// Build implements Builder.
func (gb *GridBuilder) Build(b bag.Bag) (Signature, error) {
	if b.Len() == 0 {
		return Signature{}, fmt.Errorf("signature: cannot summarize empty bag (t=%d)", b.T)
	}
	d := b.Dim()
	if d != len(gb.Lo) {
		return Signature{}, fmt.Errorf("signature: grid builder is %d-D but bag is %d-D", len(gb.Lo), d)
	}
	type cell struct {
		count  float64
		center []float64
	}
	cells := map[string]*cell{}
	// Cells are emitted in first-occupied order, which is a deterministic
	// function of the bag: iterating the map directly would permute the
	// signature entries per call, and while EMD is mathematically
	// invariant to entry order, the simplex pivot order (and hence the
	// floating-point rounding) is not — bit-identity contracts depend on
	// a stable order.
	var order []*cell
	key := make([]byte, 0, d*4)
	idx := make([]int, d)
	for _, p := range b.Points {
		key = key[:0]
		for j := 0; j < d; j++ {
			width := (gb.Hi[j] - gb.Lo[j]) / float64(gb.Bins)
			k := int((p[j] - gb.Lo[j]) / width)
			if k < 0 {
				k = 0
			}
			if k >= gb.Bins {
				k = gb.Bins - 1
			}
			idx[j] = k
			key = append(key, byte(k), byte(k>>8), byte(k>>16), 0xff)
		}
		c, ok := cells[string(key)]
		if !ok {
			center := make([]float64, d)
			for j := 0; j < d; j++ {
				width := (gb.Hi[j] - gb.Lo[j]) / float64(gb.Bins)
				center[j] = gb.Lo[j] + (float64(idx[j])+0.5)*width
			}
			c = &cell{center: center}
			cells[string(key)] = c
			order = append(order, c)
		}
		c.count++
	}
	s := Signature{
		Centers: make([][]float64, 0, len(order)),
		Weights: make([]float64, 0, len(order)),
	}
	for _, c := range order {
		s.Centers = append(s.Centers, c.center)
		s.Weights = append(s.Weights, c.count)
	}
	return s, nil
}

// BuildSequence applies builder to every bag of seq, returning one
// signature per bag. It stops at the first failing bag.
func BuildSequence(builder Builder, seq bag.Sequence) ([]Signature, error) {
	out := make([]Signature, len(seq))
	for i, b := range seq {
		s, err := builder.Build(b)
		if err != nil {
			return nil, fmt.Errorf("bag %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}
