package signature

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bag"
	"repro/internal/randx"
)

// reseeder is the optional fast path for BuildSequenceParallel: builders
// that can rewind their RNG in place (k-means, k-medoids) let each worker
// keep a single builder and reseed it per bag instead of constructing a
// fresh one.
type reseeder interface {
	Reseed(seed int64)
}

// BuildSequenceParallel builds one signature per bag like BuildSequence,
// but with an explicit per-bag RNG stream so the bags can be summarized
// concurrently: bag i is built by a builder seeded with
// randx.SplitSeed(seed, i). The output is a pure function of (factory,
// seed, seq) — bit-identical for every workers value, including the
// sequential workers == 1 path. workers <= 0 selects GOMAXPROCS.
//
// Note the contract difference from BuildSequence: a single stateful
// builder consumes one RNG stream across all bags, so for k-means or
// k-medoids factories the two functions produce different (but equally
// valid) signatures. For deterministic builders (histogram, grid,
// online) the outputs are identical.
//
// On failure the error of one failing bag is returned (which one is
// scheduling-dependent when several fail concurrently); the remaining
// bags are abandoned as soon as the first failure is observed.
func BuildSequenceParallel(factory BuilderFactory, seed int64, seq bag.Sequence, workers int) ([]Signature, error) {
	if factory == nil {
		return nil, fmt.Errorf("signature: BuildSequenceParallel requires a factory")
	}
	n := len(seq)
	out := make([]Signature, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// buildOne summarizes bag i on a worker-owned builder (reseeding it
	// when supported, otherwise constructing a fresh one per bag).
	buildOne := func(b Builder, rs reseeder, i int) error {
		bagSeed := randx.SplitSeed(seed, int64(i))
		bi := b
		if rs != nil {
			rs.Reseed(bagSeed)
		} else {
			bi = factory(bagSeed)
		}
		s, err := bi.Build(seq[i])
		if err != nil {
			return fmt.Errorf("bag %d: %w", i, err)
		}
		out[i] = s
		return nil
	}

	newWorkerBuilder := func() (Builder, reseeder) {
		b := factory(0)
		rs, _ := b.(reseeder)
		return b, rs
	}

	if workers <= 1 {
		b, rs := newWorkerBuilder()
		for i := 0; i < n; i++ {
			if err := buildOne(b, rs, i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errs   = make([]error, workers)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			b, rs := newWorkerBuilder()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := buildOne(b, rs, i); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
