package bag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	b := New(7, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	if b.T != 7 {
		t.Errorf("T = %d", b.T)
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d", b.Len())
	}
	if b.Dim() != 2 {
		t.Errorf("Dim = %d", b.Dim())
	}
}

func TestNewPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged points")
		}
	}()
	New(0, [][]float64{{1}, {1, 2}})
}

func TestValidate(t *testing.T) {
	if err := (Bag{}).Validate(); err != nil {
		t.Errorf("empty bag should validate: %v", err)
	}
	bad := Bag{Points: [][]float64{{math.NaN()}}}
	if err := bad.Validate(); err == nil {
		t.Error("NaN point should fail validation")
	}
	inf := Bag{Points: [][]float64{{math.Inf(1)}}}
	if err := inf.Validate(); err == nil {
		t.Error("Inf point should fail validation")
	}
}

func TestDimOfEmpty(t *testing.T) {
	if (Bag{}).Dim() != 0 {
		t.Error("empty bag Dim should be 0")
	}
	if (Bag{}).Mean() != nil {
		t.Error("empty bag Mean should be nil")
	}
}

func TestClone(t *testing.T) {
	b := New(0, [][]float64{{1, 2}})
	c := b.Clone()
	c.Points[0][0] = 99
	if b.Points[0][0] != 1 {
		t.Error("Clone aliases original storage")
	}
}

func TestMean(t *testing.T) {
	b := New(0, [][]float64{{0, 0}, {2, 4}})
	m := b.Mean()
	if m[0] != 1 || m[1] != 2 {
		t.Errorf("Mean = %v, want [1 2]", m)
	}
}

func TestBounds(t *testing.T) {
	b := New(0, [][]float64{{1, -5}, {-2, 7}, {0, 0}})
	lo, hi := b.Bounds()
	if lo[0] != -2 || lo[1] != -5 || hi[0] != 1 || hi[1] != 7 {
		t.Errorf("Bounds = %v %v", lo, hi)
	}
	lo, hi = (Bag{}).Bounds()
	if lo != nil || hi != nil {
		t.Error("empty Bounds should be nil")
	}
}

func TestScalarsRoundTrip(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5}
	b := FromScalars(2, vals)
	if b.T != 2 || b.Dim() != 1 {
		t.Fatalf("FromScalars: T=%d Dim=%d", b.T, b.Dim())
	}
	got := b.Scalars()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("Scalars = %v, want %v", got, vals)
		}
	}
}

func TestScalarsPanicsOnMultiDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, [][]float64{{1, 2}}).Scalars()
}

func TestSequenceMeanAndSizes(t *testing.T) {
	s := Sequence{
		New(0, [][]float64{{0}, {2}}),
		New(1, [][]float64{{3}}),
	}
	ms := s.MeanSequence()
	if ms[0][0] != 1 || ms[1][0] != 3 {
		t.Errorf("MeanSequence = %v", ms)
	}
	sz := s.Sizes()
	if sz[0] != 2 || sz[1] != 1 {
		t.Errorf("Sizes = %v", sz)
	}
}

func TestSequenceBounds(t *testing.T) {
	s := Sequence{
		{}, // empty bag is skipped
		New(0, [][]float64{{1, 10}}),
		New(1, [][]float64{{-3, 5}, {2, 20}}),
	}
	lo, hi := s.Bounds()
	if lo[0] != -3 || lo[1] != 5 || hi[0] != 2 || hi[1] != 20 {
		t.Errorf("Sequence Bounds = %v %v", lo, hi)
	}
	var empty Sequence
	if lo, hi := empty.Bounds(); lo != nil || hi != nil {
		t.Error("empty sequence bounds should be nil")
	}
}

func TestSequenceValidate(t *testing.T) {
	good := Sequence{
		FromScalars(0, []float64{1}),
		{},
		FromScalars(2, []float64{2, 3}),
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good sequence rejected: %v", err)
	}
	mixed := Sequence{
		FromScalars(0, []float64{1}),
		New(1, [][]float64{{1, 2}}),
	}
	if err := mixed.Validate(); err == nil {
		t.Error("mixed-dimension sequence should fail")
	}
}

func TestMeanPropertyShiftInvariance(t *testing.T) {
	// Property: Mean(bag + c) == Mean(bag) + c.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		d := 1 + rng.Intn(4)
		c := rng.NormFloat64()
		pts := make([][]float64, n)
		shifted := make([][]float64, n)
		for i := range pts {
			pts[i] = make([]float64, d)
			shifted[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = rng.NormFloat64()
				shifted[i][j] = pts[i][j] + c
			}
		}
		m1 := New(0, pts).Mean()
		m2 := New(0, shifted).Mean()
		for j := 0; j < d; j++ {
			if math.Abs(m2[j]-m1[j]-c) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
