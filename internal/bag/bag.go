// Package bag defines the fundamental observation type of the paper: a
// bag of data, i.e. the collection of d-dimensional vectors observed at a
// single time step (Eq. 3 of the paper). The number of vectors per bag may
// vary over time, which is exactly the setting the method targets.
package bag

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Bag is the observation at one time step: n_t vectors in R^d.
// Points may alias caller storage; use Clone for an independent copy.
type Bag struct {
	// T is the time index of the observation (informational).
	T int
	// Points holds the n_t observed vectors; all must share one dimension.
	Points [][]float64
}

// New constructs a bag at time t from the given points.
// It panics if the points are ragged (mixed dimensions).
func New(t int, points [][]float64) Bag {
	b := Bag{T: t, Points: points}
	if err := b.Validate(); err != nil {
		panic(err.Error())
	}
	return b
}

// Len returns n_t, the number of vectors in the bag.
func (b Bag) Len() int { return len(b.Points) }

// Dim returns the dimensionality of the vectors, or 0 for an empty bag.
func (b Bag) Dim() int {
	if len(b.Points) == 0 {
		return 0
	}
	return len(b.Points[0])
}

// Validate checks that all points share the same dimension and contain no
// NaN or infinite coordinates.
func (b Bag) Validate() error {
	if len(b.Points) == 0 {
		return nil
	}
	d := len(b.Points[0])
	for i, p := range b.Points {
		if len(p) != d {
			return fmt.Errorf("bag: point %d has dimension %d, want %d", i, len(p), d)
		}
		for j, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("bag: point %d coordinate %d is %g", i, j, v)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the bag.
func (b Bag) Clone() Bag {
	pts := make([][]float64, len(b.Points))
	for i, p := range b.Points {
		pts[i] = vec.Clone(p)
	}
	return Bag{T: b.T, Points: pts}
}

// Mean returns the sample mean vector of the bag, or nil for an empty bag.
// This is the descriptive-statistic summary whose information loss the
// paper's Fig. 1 demonstrates.
func (b Bag) Mean() []float64 {
	if len(b.Points) == 0 {
		return nil
	}
	d := b.Dim()
	m := make([]float64, d)
	for _, p := range b.Points {
		vec.AddScaled(m, 1, p)
	}
	vec.Scale(m, 1/float64(len(b.Points)))
	return m
}

// Bounds returns per-dimension [min, max] over the bag's points.
// It returns (nil, nil) for an empty bag.
func (b Bag) Bounds() (lo, hi []float64) {
	if len(b.Points) == 0 {
		return nil, nil
	}
	d := b.Dim()
	lo = vec.Clone(b.Points[0])
	hi = vec.Clone(b.Points[0])
	for _, p := range b.Points[1:] {
		for j := 0; j < d; j++ {
			if p[j] < lo[j] {
				lo[j] = p[j]
			}
			if p[j] > hi[j] {
				hi[j] = p[j]
			}
		}
	}
	return lo, hi
}

// FromScalars builds a bag of 1-D points from a plain value slice.
func FromScalars(t int, values []float64) Bag {
	pts := make([][]float64, len(values))
	for i, v := range values {
		pts[i] = []float64{v}
	}
	return Bag{T: t, Points: pts}
}

// Scalars extracts the flat value slice from a bag of 1-D points.
// It panics if the bag is not one-dimensional.
func (b Bag) Scalars() []float64 {
	if b.Len() > 0 && b.Dim() != 1 {
		panic(fmt.Sprintf("bag: Scalars on %d-dimensional bag", b.Dim()))
	}
	out := make([]float64, len(b.Points))
	for i, p := range b.Points {
		out[i] = p[0]
	}
	return out
}

// Sequence is an ordered series of bags, one per time step.
type Sequence []Bag

// MeanSequence reduces each bag to its sample mean, producing the ordinary
// single-vector-per-step series that existing methods require (used by the
// Fig. 1 baseline comparison).
func (s Sequence) MeanSequence() [][]float64 {
	out := make([][]float64, len(s))
	for i, b := range s {
		out[i] = b.Mean()
	}
	return out
}

// Sizes returns n_t for each bag.
func (s Sequence) Sizes() []int {
	out := make([]int, len(s))
	for i, b := range s {
		out[i] = b.Len()
	}
	return out
}

// Bounds returns per-dimension [min, max] over every point of every bag.
// It returns (nil, nil) if the sequence holds no points.
func (s Sequence) Bounds() (lo, hi []float64) {
	for _, b := range s {
		blo, bhi := b.Bounds()
		if blo == nil {
			continue
		}
		if lo == nil {
			lo, hi = vec.Clone(blo), vec.Clone(bhi)
			continue
		}
		for j := range lo {
			if blo[j] < lo[j] {
				lo[j] = blo[j]
			}
			if bhi[j] > hi[j] {
				hi[j] = bhi[j]
			}
		}
	}
	return lo, hi
}

// Validate checks every bag and that all non-empty bags share a dimension.
func (s Sequence) Validate() error {
	d := -1
	for i, b := range s {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("bag %d: %w", i, err)
		}
		if b.Len() == 0 {
			continue
		}
		if d == -1 {
			d = b.Dim()
		} else if b.Dim() != d {
			return fmt.Errorf("bag %d has dimension %d, want %d", i, b.Dim(), d)
		}
	}
	return nil
}
