package enron

import (
	"testing"
	"time"

	"repro/internal/randx"
)

func TestWeeks(t *testing.T) {
	w := Weeks()
	// 2000-07-01 to 2002-05-31 is exactly 100 weeks of 7 days.
	if w < 99 || w > 101 {
		t.Errorf("Weeks() = %d, want ≈100", w)
	}
}

func TestEventsTable(t *testing.T) {
	evs := Events()
	if len(evs) != 17 {
		t.Fatalf("%d events, want 17", len(evs))
	}
	// Date-ordered and within the study period.
	for i, e := range evs {
		if e.Description == "" {
			t.Errorf("event %d has no description", i)
		}
		if e.Date.Before(Start) || e.Date.After(End) {
			t.Errorf("event %d date %v outside study period", i, e.Date)
		}
		if i > 0 && e.Date.Before(evs[i-1].Date) {
			t.Errorf("events out of order at %d", i)
		}
		if e.Week() < 0 || e.Week() >= Weeks() {
			t.Errorf("event %d week %d out of range", i, e.Week())
		}
	}
	// Fig. 11 ground truth: the paper detects all but the Andersen
	// firing (Jan 15, 2002); GraphScope detects 8.
	paperCount, gsCount := 0, 0
	for _, e := range evs {
		if e.DetectedByPaper {
			paperCount++
		}
		if e.DetectedByGraphScope {
			gsCount++
		}
	}
	if paperCount != 16 {
		t.Errorf("paper detections = %d, want 16", paperCount)
	}
	if gsCount != 8 {
		t.Errorf("GraphScope detections = %d, want 8", gsCount)
	}
	// The paper must detect every GraphScope event ("we were able to
	// detect most of the events that were detected in [22] along with
	// some extras").
	for _, e := range evs {
		if e.DetectedByGraphScope && !e.DetectedByPaper {
			t.Errorf("event %q marked GraphScope-only", e.Description)
		}
	}
}

func TestEventWeekComputation(t *testing.T) {
	e := Event{Date: Start}
	if e.Week() != 0 {
		t.Errorf("Start week = %d", e.Week())
	}
	e2 := Event{Date: Start.AddDate(0, 0, 21)}
	if e2.Week() != 3 {
		t.Errorf("three weeks in = %d", e2.Week())
	}
}

func smallCfg() Config {
	return Config{Employees: 40, Departments: 4, BaseRate: 0.8, Participation: 0.6}
}

func TestGenerateShape(t *testing.T) {
	c := Generate(smallCfg(), randx.New(1))
	if len(c.Graphs) != Weeks() {
		t.Fatalf("%d graphs, want %d", len(c.Graphs), Weeks())
	}
	if len(c.WeekDates) != len(c.Graphs) {
		t.Fatal("week dates not parallel")
	}
	if !c.WeekDates[0].Equal(Start) {
		t.Errorf("week 0 date %v", c.WeekDates[0])
	}
	for i, g := range c.Graphs {
		if err := g.Validate(); err != nil {
			t.Fatalf("week %d: %v", i, err)
		}
		if len(g.Edges) == 0 {
			t.Fatalf("week %d has no e-mail", i)
		}
	}
}

func TestNodeSetsVaryAcrossWeeks(t *testing.T) {
	c := Generate(smallCfg(), randx.New(2))
	sizes := map[int]bool{}
	for _, g := range c.Graphs {
		sizes[g.NumSrc] = true
	}
	if len(sizes) < 5 {
		t.Errorf("sender counts take only %d distinct values — node sets should vary", len(sizes))
	}
}

func TestVolumeShockRaisesTraffic(t *testing.T) {
	c := Generate(smallCfg(), randx.New(3))
	// The Nov 19 2001 restatement is a magnitude-1 volume shock.
	var shockWeek int
	for _, e := range c.Events {
		if e.Kind == VolumeShock && e.Magnitude == 1.0 && e.Date.Month() == time.November {
			shockWeek = e.Week()
		}
	}
	if shockWeek == 0 {
		t.Fatal("no November volume shock found")
	}
	// Compare traffic in the shock week to the two quiet weeks 6-7
	// weeks earlier (after decay, before the October events).
	shock := c.Graphs[shockWeek].TotalWeight()
	quiet := (c.Graphs[20].TotalWeight() + c.Graphs[21].TotalWeight()) / 2
	if shock < 1.8*quiet {
		t.Errorf("shock traffic %g not elevated vs quiet %g", shock, quiet)
	}
}

func TestParticipationShiftShrinksPopulation(t *testing.T) {
	c := Generate(smallCfg(), randx.New(4))
	// Bankruptcy (Dec 2 2001) is a participation shift: sender count in
	// that week must drop versus the yearly average.
	var week int
	for _, e := range c.Events {
		if e.Kind == ParticipationShift && e.Magnitude == 1.0 {
			week = e.Week()
		}
	}
	avg := 0.0
	for w := 5; w < 20; w++ {
		avg += float64(c.Graphs[w].NumSrc)
	}
	avg /= 15
	if float64(c.Graphs[week].NumSrc) > 0.85*avg {
		t.Errorf("bankruptcy week senders %d vs baseline %g — no shrink", c.Graphs[week].NumSrc, avg)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := Generate(smallCfg(), randx.New(5))
	b := Generate(smallCfg(), randx.New(5))
	for i := range a.Graphs {
		if len(a.Graphs[i].Edges) != len(b.Graphs[i].Edges) {
			t.Fatal("same seed produced different corpora")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Employees != 150 || c.Departments != 4 || c.BaseRate != 0.8 || c.Participation != 0.6 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestEventWeeksHelper(t *testing.T) {
	ws := EventWeeks()
	if len(ws) != 17 {
		t.Fatalf("%d event weeks", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] < ws[i-1] {
			t.Error("event weeks out of order")
		}
	}
}
