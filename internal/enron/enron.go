// Package enron simulates the ENRON e-mail corpus workload of §5.4
// (Klimt & Yang 2004). The paper analyzes 278,274 messages from
// 2000-07-01 to 2002-05-31 as weekly sender→recipient bipartite graphs
// and checks whether change-point alarms align with seventeen documented
// corporate events (Fig. 11). The raw corpus is not bundled here, so this
// package generates weekly graphs from a latent-organization traffic
// model whose parameters shift at exactly those event weeks:
//
//   - volume events (earnings shocks, bankruptcy) multiply traffic,
//   - structural events (CEO changes, investigations) re-mix the
//     department-level communication matrix,
//   - participation events (layoffs) change who is active.
//
// Each event carries the paper's two ground-truth columns: whether the
// paper's method flagged it and whether GraphScope [22] did. See
// DESIGN.md §4 for the substitution rationale.
package enron

import (
	"time"

	"repro/internal/bipartite"
	"repro/internal/randx"
)

// Start is the first simulated week (the paper trims the corpus to
// 2000-07-01 … 2002-05-31).
var Start = time.Date(2000, 7, 1, 0, 0, 0, 0, time.UTC)

// End is the last simulated day.
var End = time.Date(2002, 5, 31, 0, 0, 0, 0, time.UTC)

// Weeks is the number of weekly graphs in the study period.
func Weeks() int {
	return int(End.Sub(Start).Hours()/(24*7)) + 1
}

// EventKind classifies how an event perturbs the communication model.
type EventKind int

// Event perturbation kinds.
const (
	// VolumeShock multiplies overall traffic (news storms, crises).
	VolumeShock EventKind = iota
	// StructureShift re-mixes the department communication matrix
	// (leadership changes, reorganizations).
	StructureShift
	// ParticipationShift changes the active sender/recipient population
	// (layoffs, resignations).
	ParticipationShift
)

// Event is one dated Fig. 11 event with the paper's detection marks.
type Event struct {
	Date        time.Time
	Description string
	// DetectedByPaper mirrors the left X column of Fig. 11 (the paper's
	// method detected the event with at least one of the 7 features).
	DetectedByPaper bool
	// DetectedByGraphScope mirrors the right X column (Sun et al. [22]).
	DetectedByGraphScope bool
	// Kind drives the simulator's perturbation.
	Kind EventKind
	// Magnitude scales the perturbation (1 = strong).
	Magnitude float64
}

// Week returns the 0-based week index of the event within the study
// period.
func (e Event) Week() int {
	return int(e.Date.Sub(Start).Hours() / (24 * 7))
}

// Events returns the seventeen Fig. 11 events in date order.
func Events() []Event {
	d := func(y, m, day int) time.Time { return time.Date(y, time.Month(m), day, 0, 0, 0, 0, time.UTC) }
	return []Event{
		{d(2001, 2, 4), "Skilling replaces Lay as chief executive of Enron", true, true, StructureShift, 0.9},
		{d(2001, 5, 17), "Congress begins implementing President Bush's energy plan into legislation", true, false, VolumeShock, 0.5},
		{d(2001, 6, 7), "Lay divests his stocks in Enron", true, true, ParticipationShift, 0.6},
		{d(2001, 8, 14), "Skilling resigns abruptly citing personal reasons; Kenneth Lay returns to CEO", true, true, StructureShift, 1.0},
		{d(2001, 9, 11), "Four terrorist attacks launched by al-Qaeda", true, false, VolumeShock, 0.4},
		{d(2001, 10, 16), "Enron reports a $618 million loss and a $1.2 billion reduction in shareholder equity", true, false, VolumeShock, 1.0},
		{d(2001, 10, 19), "Securities and Exchange Commission launches inquiry into Enron finances", true, false, VolumeShock, 0.9},
		{d(2001, 11, 19), "Enron restates its third-quarter earnings and says a $690 million debt is due Nov. 27", true, true, VolumeShock, 1.0},
		{d(2001, 11, 28), "Dynegy deal collapses", true, true, StructureShift, 1.0},
		{d(2001, 12, 2), "Enron files for bankruptcy, the biggest in US history, and lays off 4,000 employees", true, false, ParticipationShift, 1.0},
		{d(2002, 1, 9), "The Justice Department opens a criminal investigation of Enron", true, true, VolumeShock, 0.9},
		{d(2002, 1, 15), "Enron fires Andersen, blaming the auditor for destroying Enron documents", false, false, VolumeShock, 0.2},
		{d(2002, 1, 23), "Kenneth Lay resigns as chairman and chief executive of Enron", true, false, StructureShift, 0.8},
		{d(2002, 1, 30), "Enron names Stephen F. Cooper new CEO", true, true, StructureShift, 0.9},
		{d(2002, 2, 4), "Kenneth Lay resigns from the board", true, true, ParticipationShift, 0.7},
		{d(2002, 4, 9), "David Duncan, Andersen's former top Enron auditor, pleads guilty to obstruction", true, false, VolumeShock, 0.6},
		{d(2002, 4, 24), "House passes accounting reform package", true, false, VolumeShock, 0.5},
	}
}

// EventWeeks returns the 0-based week index of every event.
func EventWeeks() []int {
	evs := Events()
	out := make([]int, len(evs))
	for i, e := range evs {
		out[i] = e.Week()
	}
	return out
}

// Config scales the simulation; the zero value gives a corpus-sized
// workload (≈150 active senders/recipients per week).
type Config struct {
	// Employees is the latent organization size (default 150).
	Employees int
	// Departments is the number of latent communities (default 4).
	Departments int
	// BaseRate is the expected e-mails per active sender-recipient pair
	// per week within a department (default 0.8; cross-department pairs
	// get BaseRate/8).
	BaseRate float64
	// Participation is the baseline probability an employee is active in
	// a given week (default 0.6).
	Participation float64
}

func (c Config) withDefaults() Config {
	if c.Employees <= 0 {
		c.Employees = 150
	}
	if c.Departments <= 0 {
		c.Departments = 4
	}
	if c.BaseRate <= 0 {
		c.BaseRate = 0.8
	}
	if c.Participation <= 0 || c.Participation > 1 {
		c.Participation = 0.6
	}
	return c
}

// Corpus is the simulated weekly graph stream with its ground truth.
type Corpus struct {
	Graphs []bipartite.Graph
	Events []Event
	// WeekDates[w] is the Monday-aligned start date of week w.
	WeekDates []time.Time
}

// Generate simulates the weekly graphs over the full study period.
func Generate(cfg Config, rng *randx.RNG) *Corpus {
	cfg = cfg.withDefaults()
	weeks := Weeks()
	events := Events()
	eventAt := map[int]Event{}
	for _, e := range events {
		eventAt[e.Week()] = e
	}

	// Latent state, perturbed by events and relaxing toward baseline.
	volume := 1.0        // traffic multiplier
	mixing := 0.0        // 0 = departmental, 1 = fully mixed
	participation := 0.0 // additive shift on the activity probability

	dept := make([]int, cfg.Employees)
	for i := range dept {
		dept[i] = i % cfg.Departments
	}

	c := &Corpus{Events: events}
	for w := 0; w < weeks; w++ {
		if e, ok := eventAt[w]; ok {
			// Events shift the organization to a NEW regime (a step),
			// not a one-week spike: communication patterns at Enron
			// changed persistently as the crisis unfolded. Steps
			// compound across the event clusters and relax slowly.
			switch e.Kind {
			case VolumeShock:
				volume *= 1 + 1.6*e.Magnitude
			case StructureShift:
				mixing = clampMix(mixing + 0.6*e.Magnitude)
				volume *= 1 + 0.6*e.Magnitude
			case ParticipationShift:
				participation -= 0.45 * e.Magnitude
				volume *= 1 + 0.5*e.Magnitude
			}
			if volume > 10 {
				volume = 10
			}
			if participation < -0.45 {
				participation = -0.45
			}
		}
		g := sampleWeek(cfg, rng, dept, volume, mixing, participation)
		c.Graphs = append(c.Graphs, g)
		c.WeekDates = append(c.WeekDates, Start.AddDate(0, 0, 7*w))
		// Slow relaxation toward baseline: half-life ≈ 8 weeks, so a step
		// stays essentially flat across the τ′ = 3-week test window (the
		// detector sees a step, not a spike followed by a recovery).
		volume = 1 + (volume-1)*0.92
		mixing *= 0.92
		participation *= 0.92
	}
	return c
}

func clampMix(x float64) float64 {
	if x > 0.95 {
		return 0.95
	}
	if x < 0 {
		return 0
	}
	return x
}

// sampleWeek draws one weekly bipartite graph. Sources and destinations
// are the week's active senders/recipients, densely renumbered (different
// weeks have different node sets and sizes, as in the real corpus).
func sampleWeek(cfg Config, rng *randx.RNG, dept []int, volume, mixing, participation float64) bipartite.Graph {
	p := cfg.Participation + participation
	if p < 0.1 {
		p = 0.1
	}
	var senders, receivers []int
	for i := range dept {
		if rng.Bernoulli(p) {
			senders = append(senders, i)
		}
		if rng.Bernoulli(p) {
			receivers = append(receivers, i)
		}
	}
	if len(senders) == 0 {
		senders = append(senders, 0)
	}
	if len(receivers) == 0 {
		receivers = append(receivers, 1%len(dept))
	}
	g := bipartite.Graph{NumSrc: len(senders), NumDst: len(receivers)}
	for si, s := range senders {
		for ri, r := range receivers {
			if s == r {
				continue
			}
			rate := cfg.BaseRate / 8
			if dept[s] == dept[r] {
				rate = cfg.BaseRate
			}
			// Mixing interpolates toward the mean rate: structural
			// events blur the department boundaries.
			meanRate := cfg.BaseRate * (1.0 + float64(cfg.Departments-1)/8) / float64(cfg.Departments)
			rate = (1-mixing)*rate + mixing*meanRate
			w := rng.Poisson(rate * volume)
			if w > 0 {
				g.Edges = append(g.Edges, bipartite.Edge{Src: si, Dst: ri, Weight: float64(w)})
			}
		}
	}
	return g
}
