// Package testutil holds small helpers shared by the repository's tests.
package testutil

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-regression tests skip themselves under -race: the
// race runtime instruments sync.Pool and goroutine handoff with heap
// allocations that do not exist in production builds.
var RaceEnabled = raceEnabled
