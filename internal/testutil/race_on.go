//go:build race

package testutil

const raceEnabled = true
