package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bag"
	"repro/internal/randx"
	"repro/internal/signature"
)

// builderSeedTag keys the derivation of a stream's builder seed from its
// stream seed. It is negative so it can never collide with the bootstrap
// shard streams, which are derived from the same stream seed with
// non-negative shard indices.
const builderSeedTag = -1

// EngineConfig parameterizes an Engine.
type EngineConfig struct {
	// Template holds the per-stream detector parameters (Tau, TauPrime,
	// Score, Weighting, Ground, Bootstrap, LogFloor, RawMass). Its
	// Builder field must be nil — per-stream builders come from Factory —
	// and its Seed field is ignored in favour of the engine Seed. A zero
	// Bootstrap.Workers defaults to 1: the engine parallelizes across
	// streams, so nesting per-detector bootstrap parallelism underneath
	// would only oversubscribe the CPUs (the bootstrap result is
	// bit-identical either way).
	Template Config
	// Factory builds each stream's signature builder from the stream's
	// derived seed. Required.
	Factory signature.BuilderFactory
	// Seed is the engine base seed from which every per-stream seed is
	// split.
	Seed int64
	// Workers bounds the goroutines PushBatch fans streams across;
	// 0 selects GOMAXPROCS. Worker count never affects output.
	Workers int
}

// Engine is the multi-stream front-end over the single-stream Detector.
//
// The paper's detector is inherently per-stream, but a service monitors
// many independent streams at once (one per user, sensor, or service).
// An Engine owns the resources those streams share — a pool of recycled
// detectors (each carrying its warm EMD solver and bootstrap scratch)
// and a bounded worker group for batch pushes — and hands out
// lightweight Stream handles. Determinism is preserved per stream: every
// stream's detector is seeded with randx.SplitSeedString(engineSeed,
// streamID) and gets its own factory-built signature builder, so its
// output is bit-identical to a standalone Detector constructed from
// StreamConfig(streamID), independent of batch composition, worker
// count, or which pooled detector happens to serve it.
//
// Create with NewEngine; obtain per-stream handles with Open or feed
// many streams at once with PushBatch.
//
// Concurrency: Open, Close and Len are safe for concurrent use.
// Detector state is owned by the stream, so pushes to the SAME stream
// must be serialized by the caller — concurrent PushBatch calls (or a
// PushBatch concurrent with Stream.Push) are safe only when they touch
// disjoint stream sets. Within one PushBatch call the engine itself
// serializes all bags of a stream in input order.
type Engine struct {
	cfg EngineConfig

	mu      sync.Mutex
	streams map[string]*Stream
	free    []*Detector // closed streams' detectors, warm and ready to recycle
}

// NewEngine validates cfg and returns an Engine with no open streams.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("core: EngineConfig.Factory is required")
	}
	if cfg.Template.Builder != nil {
		return nil, fmt.Errorf("core: EngineConfig.Template.Builder must be nil; per-stream builders come from Factory")
	}
	if err := cfg.Template.validateCommon(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Template.Bootstrap.Workers == 0 {
		cfg.Template.Bootstrap.Workers = 1
	}
	return &Engine{cfg: cfg, streams: make(map[string]*Stream)}, nil
}

// StreamConfig returns the exact detector Config the engine uses for
// stream id: the template with Seed = SplitSeedString(engineSeed, id)
// and a fresh factory-built Builder seeded from that stream seed. A
// standalone New(eng.StreamConfig(id)) detector fed the same bags
// produces bit-identical Points to the engine's stream — this is the
// engine's reproducibility contract, and the form in which it is tested.
func (e *Engine) StreamConfig(id string) Config {
	seed := randx.SplitSeedString(e.cfg.Seed, id)
	cfg := e.cfg.Template
	cfg.Seed = seed
	cfg.Builder = e.cfg.Factory(randx.SplitSeed(seed, builderSeedTag))
	return cfg
}

// Open returns the handle for stream id, creating the stream on first
// use. Opening recycles a pooled detector when one is free (rebinding it
// to the stream's seed and builder); otherwise it constructs one. Open
// is idempotent: a second Open of a live id returns the same handle.
func (e *Engine) Open(id string) (*Stream, error) {
	if id == "" {
		return nil, fmt.Errorf("core: stream id must be non-empty")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.streams[id]; ok {
		return st, nil
	}
	cfg := e.StreamConfig(id)
	if cfg.Builder == nil {
		// Checked on both paths: the recycle branch below bypasses New's
		// validation, and a factory returning nil must fail here, not as a
		// nil dereference on the stream's first Push.
		return nil, fmt.Errorf("core: builder factory returned nil for stream %q", id)
	}
	var det *Detector
	if n := len(e.free); n > 0 {
		det = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		det.reset(cfg.Builder, cfg.Seed)
	} else {
		var err error
		det, err = New(cfg)
		if err != nil {
			return nil, err
		}
	}
	st := &Stream{eng: e, id: id, det: det}
	e.streams[id] = st
	return st, nil
}

// Len returns the number of open streams.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.streams)
}

// Stream is a lightweight handle on one detector stream owned by an
// Engine. It is not safe for concurrent use (see Engine).
type Stream struct {
	eng *Engine
	id  string
	det *Detector
}

// ID returns the stream identifier passed to Open.
func (s *Stream) ID() string { return s.id }

// Push feeds the stream's next bag, exactly like Detector.Push. It
// returns an error after Close.
func (s *Stream) Push(b bag.Bag) (*Point, error) {
	if s.det == nil {
		return nil, fmt.Errorf("core: stream %q is closed", s.id)
	}
	return s.det.Push(b)
}

// Close releases the stream and recycles its detector (window buffers,
// EMD solver and bootstrap scratch) into the engine's pool for the next
// Open. Close is idempotent; a later Open of the same id starts the
// stream from scratch, bit-identical to its first life.
func (s *Stream) Close() {
	e := s.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.det == nil {
		return
	}
	delete(e.streams, s.id)
	e.free = append(e.free, s.det)
	s.det = nil
}

// StreamBag addresses one bag to one stream for PushBatch.
type StreamBag struct {
	StreamID string
	Bag      bag.Bag
}

// StreamResult is PushBatch's per-bag outcome, parallel to the input
// batch. Point is nil while the stream's window is still filling (just
// like Detector.Push) and on error.
type StreamResult struct {
	StreamID string
	Point    *Point
	Err      error
}

// PushBatch feeds every bag of batch to its stream, fanning independent
// streams across the engine's worker group while preserving, for each
// stream, the input order of its bags. Streams are opened on first use.
// The result slice is parallel to batch; each stream's results are
// bit-identical to pushing the same bags through that stream one by one,
// regardless of Workers or how the batch interleaves streams.
//
// Errors stay per-stream: a failing bag records its error, the stream's
// later bags in this batch are skipped (their Err wraps the failure),
// and all other streams proceed. The returned error is the first
// per-bag error in batch order, nil if every bag succeeded.
func (e *Engine) PushBatch(batch []StreamBag) ([]StreamResult, error) {
	results := make([]StreamResult, len(batch))

	// Group the batch by stream, preserving first-appearance order and
	// per-stream bag order. Streams are opened (or created) up front on
	// the calling goroutine; the fan-out below never touches the engine
	// lock.
	type group struct {
		st   *Stream
		idxs []int
	}
	index := make(map[string]int)
	var groups []group
	for i, sb := range batch {
		results[i].StreamID = sb.StreamID
		gi, ok := index[sb.StreamID]
		if !ok {
			st, err := e.Open(sb.StreamID)
			if err != nil {
				index[sb.StreamID] = -1
				results[i].Err = err
				continue
			}
			gi = len(groups)
			groups = append(groups, group{st: st})
			index[sb.StreamID] = gi
		}
		if gi < 0 {
			results[i].Err = fmt.Errorf("core: stream %q could not be opened", sb.StreamID)
			continue
		}
		groups[gi].idxs = append(groups[gi].idxs, i)
	}

	run := func(g *group) {
		var failed error
		for _, i := range g.idxs {
			if failed != nil {
				results[i].Err = fmt.Errorf("core: stream %q: bag skipped after earlier error in batch: %w", g.st.id, failed)
				continue
			}
			p, err := g.st.det.Push(batch[i].Bag)
			results[i].Point = p
			if err != nil {
				results[i].Err = err
				failed = err
			}
		}
	}

	workers := e.cfg.Workers
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for gi := range groups {
			run(&groups[gi])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					gi := int(next.Add(1)) - 1
					if gi >= len(groups) {
						return
					}
					run(&groups[gi])
				}
			}()
		}
		wg.Wait()
	}

	var firstErr error
	for i := range results {
		if results[i].Err != nil {
			firstErr = results[i].Err
			break
		}
	}
	return results, firstErr
}
