package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bag"
	"repro/internal/obs"
	"repro/internal/randx"
	"repro/internal/signature"
)

// builderSeedTag keys the derivation of a stream's builder seed from its
// stream seed. It is negative so it can never collide with the bootstrap
// shard streams, which are derived from the same stream seed with
// non-negative shard indices.
const builderSeedTag = -1

// EngineConfig parameterizes an Engine.
type EngineConfig struct {
	// Template holds the per-stream detector parameters (Tau, TauPrime,
	// Score, Weighting, Ground, Bootstrap, LogFloor, RawMass). Its
	// Builder field must be nil — per-stream builders come from Factory —
	// and its Seed field is ignored in favour of the engine Seed. A zero
	// Bootstrap.Workers defaults to 1: the engine parallelizes across
	// streams, so nesting per-detector bootstrap parallelism underneath
	// would only oversubscribe the CPUs (the bootstrap result is
	// bit-identical either way).
	Template Config
	// Factory builds each stream's signature builder from the stream's
	// derived seed. Required.
	Factory signature.BuilderFactory
	// Seed is the engine base seed from which every per-stream seed is
	// split.
	Seed int64
	// BuilderTag optionally names the Factory/Ground configuration as an
	// opaque string (e.g. "hist(lo=-8,hi=12,bins=30)"). Factories are
	// code, so the snapshot fingerprint cannot derive their parameters;
	// a tag lets deployments that configure factories from flags carry
	// those parameters into the envelope, making a restore onto an
	// engine with different builder parameters fail loudly instead of
	// silently diverging. Engines with differing tags refuse each
	// other's snapshots.
	BuilderTag string
	// Workers bounds the goroutines PushBatch fans streams across;
	// 0 selects GOMAXPROCS. Worker count never affects output.
	Workers int
}

// Engine is the multi-stream front-end over the single-stream Detector.
//
// The paper's detector is inherently per-stream, but a service monitors
// many independent streams at once (one per user, sensor, or service).
// An Engine owns the resources those streams share — a pool of recycled
// detectors (each carrying its warm EMD solver and bootstrap scratch)
// and a bounded worker group for batch pushes — and hands out
// lightweight Stream handles. Determinism is preserved per stream: every
// stream's detector is seeded with randx.SplitSeedString(engineSeed,
// streamID) and gets its own factory-built signature builder, so its
// output is bit-identical to a standalone Detector constructed from
// StreamConfig(streamID), independent of batch composition, worker
// count, or which pooled detector happens to serve it.
//
// Create with NewEngine; obtain per-stream handles with Open or feed
// many streams at once with PushBatch.
//
// Concurrency: Open, Close, Get, Len, Stats and Shutdown are safe for
// concurrent use, and each stream guards its detector with its own lock,
// so a Close racing a Push can never hand a detector to the pool while it
// is mid-push. Pushes to the SAME stream are serialized by that lock but
// their ORDER is then up to goroutine scheduling — for deterministic
// output, callers must still serialize pushes per stream: concurrent
// PushBatch calls (or a PushBatch concurrent with Stream.Push) only have
// reproducible results when they touch disjoint stream sets. Within one
// PushBatch call the engine itself serializes all bags of a stream in
// input order.
type Engine struct {
	cfg EngineConfig

	// mark is the engine-wide mutation counter behind delta snapshots:
	// every push (and restore) stamps the touched stream with the next
	// value, so "streams dirty since mark M" is an O(streams) scan with
	// no per-push synchronization beyond one atomic add. The counter
	// orders mutations, it does not count them — batches stamp once per
	// stream group.
	mark atomic.Uint64

	mu       sync.Mutex
	streams  map[string]*Stream
	free     []*Detector // closed streams' detectors, warm and ready to recycle
	closed   bool
	inflight sync.WaitGroup // running PushBatch calls, drained by Shutdown
	observer obs.StageObserver
}

// Mark returns the engine's current mutation mark. A caller that takes a
// full snapshot records the envelope's Mark and later asks
// SnapshotDelta(mark) for just the streams that changed since. The
// counter is monotonic for the life of the engine (restores stamp the
// restored streams, so they are dirty relative to any earlier mark).
func (e *Engine) Mark() uint64 { return e.mark.Load() }

// StatisticName returns the registry name of the per-inspection
// statistic every stream of this engine computes — the same identity
// the snapshot fingerprint carries. Server front-ends surface it on
// /metrics as the bagcpd_engine_info gauge.
func (e *Engine) StatisticName() string { return e.cfg.Template.StatisticName() }

// Instrument resolves a stage observer against the registry (labeled
// with the engine's statistic name) and attaches it to every current
// and future stream's detector, pooled detectors included, so per-stage
// push durations and solver work land on bagcpd_push_stage_seconds and
// the bagcpd_push_solver_*_total counters. Instrumentation never
// changes detector output; it only adds stage timing to pushes.
// Restored and recycled streams inherit the observer because every
// stream creation path goes through Open.
func (e *Engine) Instrument(r *obs.Registry) {
	o := r.PushStageObserver(e.StatisticName())
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observer = o
	// Taking st.mu under e.mu follows closeAllLocked's lock order.
	for _, st := range e.streams {
		st.mu.Lock()
		if st.det != nil {
			st.det.SetObserver(o)
		}
		st.mu.Unlock()
	}
	for _, det := range e.free {
		det.SetObserver(o)
	}
}

// NewEngine validates cfg and returns an Engine with no open streams.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("core: EngineConfig.Factory is required")
	}
	if cfg.Template.Builder != nil {
		return nil, fmt.Errorf("core: EngineConfig.Template.Builder must be nil; per-stream builders come from Factory")
	}
	if err := cfg.Template.validateCommon(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Template.Bootstrap.Workers == 0 {
		cfg.Template.Bootstrap.Workers = 1
	}
	return &Engine{cfg: cfg, streams: make(map[string]*Stream)}, nil
}

// StreamConfig returns the exact detector Config the engine uses for
// stream id: the template with Seed = SplitSeedString(engineSeed, id)
// and a fresh factory-built Builder seeded from that stream seed. A
// standalone New(eng.StreamConfig(id)) detector fed the same bags
// produces bit-identical Points to the engine's stream — this is the
// engine's reproducibility contract, and the form in which it is tested.
func (e *Engine) StreamConfig(id string) Config {
	seed := randx.SplitSeedString(e.cfg.Seed, id)
	cfg := e.cfg.Template
	cfg.Seed = seed
	cfg.Builder = e.cfg.Factory(randx.SplitSeed(seed, builderSeedTag))
	return cfg
}

// Open returns the handle for stream id, creating the stream on first
// use. Opening recycles a pooled detector when one is free (rebinding it
// to the stream's seed and builder); otherwise it constructs one. Open
// is idempotent: a second Open of a live id returns the same handle.
func (e *Engine) Open(id string) (*Stream, error) {
	if id == "" {
		return nil, fmt.Errorf("core: stream id must be non-empty")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("core: engine is shut down")
	}
	if st, ok := e.streams[id]; ok {
		return st, nil
	}
	cfg := e.StreamConfig(id)
	if cfg.Builder == nil {
		// Checked on both paths: the recycle branch below bypasses New's
		// validation, and a factory returning nil must fail here, not as a
		// nil dereference on the stream's first Push.
		return nil, fmt.Errorf("core: builder factory returned nil for stream %q", id)
	}
	var det *Detector
	if n := len(e.free); n > 0 {
		det = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		det.reset(cfg.Builder, cfg.Seed)
	} else {
		var err error
		det, err = New(cfg)
		if err != nil {
			return nil, err
		}
	}
	det.SetObserver(e.observer)
	st := &Stream{eng: e, id: id, det: det}
	e.streams[id] = st
	return st, nil
}

// Len returns the number of open streams.
func (e *Engine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.streams)
}

// Get returns the handle for stream id if it is currently open, without
// creating it (Open is create-on-use; Get is the read-only lookup a
// server front-end needs for lifecycle endpoints).
func (e *Engine) Get(id string) (*Stream, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.streams[id]
	return st, ok
}

// StreamIDs returns the ids of all open streams, sorted.
func (e *Engine) StreamIDs() []string {
	e.mu.Lock()
	ids := make([]string, 0, len(e.streams))
	for id := range e.streams {
		ids = append(ids, id)
	}
	e.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Stats is a point-in-time census of the engine's resources.
type Stats struct {
	// Open is the number of open streams.
	Open int
	// PooledFree is the number of closed streams' warm detectors waiting
	// in the recycle pool.
	PooledFree int
}

// Stats returns the engine's current resource census.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Open: len(e.streams), PooledFree: len(e.free)}
}

// CloseAll closes every open stream, recycling all detectors into the
// pool. The engine stays usable — a later Open starts streams from
// scratch. It is the "make room for a restored state" primitive: callers
// must not have pushes in flight.
func (e *Engine) CloseAll() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closeAllLocked()
}

func (e *Engine) closeAllLocked() {
	for id, st := range e.streams {
		st.mu.Lock()
		if st.det != nil {
			e.free = append(e.free, st.det)
			st.det = nil
		}
		st.mu.Unlock()
		delete(e.streams, id)
	}
}

// Shutdown tears the whole engine down: it refuses new Opens, waits for
// in-flight PushBatch calls to drain, closes every stream and returns all
// detectors to the pool. Pushes racing the shutdown fail per-stream with
// a closed-stream error once their stream is torn down; pushes already
// holding a stream's lock complete first. Shutdown is idempotent, and
// every engine entry point except Len/Get/Stats errors afterwards.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()

	// New PushBatch calls are refused from here on (Open checks closed);
	// wait for the ones already running.
	e.inflight.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	e.closeAllLocked()
}

// Stream is a handle on one detector stream owned by an Engine. Its own
// lock makes Push/Close races memory-safe, but the OUTPUT of concurrent
// pushes to one stream depends on scheduling order — serialize pushes per
// stream for deterministic results (see Engine).
type Stream struct {
	eng *Engine
	id  string

	mu    sync.Mutex
	det   *Detector
	dirty uint64 // engine mark of the last mutation; 0 = never touched
}

// markDirtyLocked stamps the stream with the engine's next mutation
// mark. Callers hold s.mu.
func (s *Stream) markDirtyLocked() { s.dirty = s.eng.mark.Add(1) }

// ID returns the stream identifier passed to Open.
func (s *Stream) ID() string { return s.id }

// Push feeds the stream's next bag, exactly like Detector.Push. It
// returns an error after Close.
func (s *Stream) Push(b bag.Bag) (*Point, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.det == nil {
		return nil, fmt.Errorf("core: stream %q is closed", s.id)
	}
	s.markDirtyLocked()
	return s.det.Push(b)
}

// Seq returns the number of bags pushed so far — the time index the
// stream's next bag will get in sequential-clock wire protocols. It
// returns 0 after Close.
func (s *Stream) Seq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.det == nil {
		return 0
	}
	return s.det.Count()
}

// StreamStats is Stream.Introspect's point-in-time view of one stream:
// the bag clock, window occupancy, the last inspection's outcome, the
// per-stage cumulative push costs (populated while the engine is
// instrumented), and the delta-snapshot dirty mark.
type StreamStats struct {
	// ID is the stream identifier.
	ID string `json:"stream"`
	// Bags is the bag clock: bags pushed so far (the next bag's index).
	Bags int `json:"bags"`
	// WindowFill is the number of signatures currently retained,
	// saturating at WindowSize once the stream starts scoring.
	WindowFill int `json:"window_fill"`
	// WindowSize is τ+τ′.
	WindowSize int `json:"window_size"`
	// DirtyMark is the engine mutation mark of the stream's last
	// mutation; 0 means untouched since engine start.
	DirtyMark uint64 `json:"dirty_mark"`
	// HasLast reports whether Last holds a real inspection Point (false
	// until the window first fills).
	HasLast bool `json:"has_last"`
	// Last is the most recent inspection Point.
	Last Point `json:"last,omitempty"`
	// Stages is the cumulative per-stage push cost since the stream
	// opened. All zeros while the engine is uninstrumented.
	Stages []StageTotal `json:"stages"`
}

// Introspect returns the stream's live stats. It errors after Close.
// The call takes the stream lock, so it serializes with pushes; it does
// no scoring work of its own.
func (s *Stream) Introspect() (StreamStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.det == nil {
		return StreamStats{}, fmt.Errorf("core: stream %q is closed", s.id)
	}
	totals := s.det.StageTotals()
	st := StreamStats{
		ID:         s.id,
		Bags:       s.det.Count(),
		WindowFill: len(s.det.window),
		WindowSize: s.det.WindowSize(),
		DirtyMark:  s.dirty,
		Stages:     totals[:],
	}
	st.Last, st.HasLast = s.det.Last()
	return st, nil
}

// Close releases the stream and recycles its detector (window buffers,
// EMD solver and bootstrap scratch) into the engine's pool for the next
// Open. Close is idempotent and safe against every interleaving with
// Open and Push on the same id: the detector is handed to the pool
// exactly once, never while a Push holds it, and a stale handle kept
// across a Close+reopen cannot tear down (or double-free into the pool)
// the id's CURRENT stream — only the handle the engine registered.
func (s *Stream) Close() {
	e := s.eng
	// Deregister first, under the engine lock alone. Waiting for the
	// stream lock happens OUTSIDE e.mu: a push group can hold s.mu for a
	// long batch, and blocking the whole engine (every Open/Get/PushBatch
	// start) on one stream's in-flight work would stall unrelated
	// streams. Deregister only if this handle is still the id's
	// registered stream; after a Close+reopen race the map may hold a
	// NEWER stream for the same id, which must survive a stale handle's
	// Close.
	e.mu.Lock()
	if cur, ok := e.streams[s.id]; ok && cur == s {
		delete(e.streams, s.id)
	}
	e.mu.Unlock()
	// Wait for any in-flight push on THIS handle, then take the detector
	// exactly once (concurrent Closes race here; only one sees non-nil).
	s.mu.Lock()
	det := s.det
	s.det = nil
	s.mu.Unlock()
	if det == nil {
		return
	}
	e.mu.Lock()
	e.free = append(e.free, det)
	e.mu.Unlock()
}

// StreamBag addresses one bag to one stream for PushBatch.
type StreamBag struct {
	StreamID string
	Bag      bag.Bag
}

// StreamResult is PushBatch's per-bag outcome, parallel to the input
// batch. Point is nil while the stream's window is still filling (just
// like Detector.Push) and on error.
type StreamResult struct {
	StreamID string
	Point    *Point
	Err      error
}

// PushBatch feeds every bag of batch to its stream, fanning independent
// streams across the engine's worker group while preserving, for each
// stream, the input order of its bags. Streams are opened on first use.
// The result slice is parallel to batch; each stream's results are
// bit-identical to pushing the same bags through that stream one by one,
// regardless of Workers or how the batch interleaves streams.
//
// Errors stay per-stream: a failing bag records its error, the stream's
// later bags in this batch are skipped (their Err wraps the failure),
// and all other streams proceed. The returned error is the first
// per-bag error in batch order, nil if every bag succeeded.
func (e *Engine) PushBatch(batch []StreamBag) ([]StreamResult, error) {
	return e.PushBatchFn(batch, nil)
}

// PushBatchFn is PushBatch with a mutation hook: onApply (when non-nil)
// is invoked once per SUCCESSFULLY applied bag, with the bag's batch
// index and the engine mutation mark the applying group stamped, while
// the stream's lock is still held. That lock makes the hook's call
// order per stream exactly the apply order — across concurrent batches
// too — which is what a write-ahead log needs to record a replayable
// history (the server enqueues each applied row's oplog record here).
// The hook must be fast and must not call back into the engine or the
// stream; it runs on the push fan-out workers.
func (e *Engine) PushBatchFn(batch []StreamBag, onApply func(i int, mark uint64)) ([]StreamResult, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: engine is shut down")
	}
	// Registered under the engine lock so Shutdown's closed flag and its
	// inflight.Wait can never miss a running batch.
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()

	results := make([]StreamResult, len(batch))

	// Group the batch by stream, preserving first-appearance order and
	// per-stream bag order. Streams are opened (or created) up front on
	// the calling goroutine; the fan-out below never touches the engine
	// lock.
	type group struct {
		st   *Stream
		idxs []int
	}
	index := make(map[string]int)
	var groups []group
	for i, sb := range batch {
		results[i].StreamID = sb.StreamID
		gi, ok := index[sb.StreamID]
		if !ok {
			st, err := e.Open(sb.StreamID)
			if err != nil {
				index[sb.StreamID] = -1
				results[i].Err = err
				continue
			}
			gi = len(groups)
			groups = append(groups, group{st: st})
			index[sb.StreamID] = gi
		}
		if gi < 0 {
			results[i].Err = fmt.Errorf("core: stream %q could not be opened", sb.StreamID)
			continue
		}
		groups[gi].idxs = append(groups[gi].idxs, i)
	}

	run := func(g *group) {
		// One lock hold for the whole group: the stream's bags are pushed
		// back-to-back without re-acquiring, and a Close racing the batch
		// either waits for the group or makes every bag fail closed.
		g.st.mu.Lock()
		defer g.st.mu.Unlock()
		var failed error
		if g.st.det == nil {
			failed = fmt.Errorf("core: stream %q is closed", g.st.id)
			for _, i := range g.idxs {
				results[i].Err = failed
			}
			return
		}
		g.st.markDirtyLocked()
		for _, i := range g.idxs {
			if failed != nil {
				results[i].Err = fmt.Errorf("core: stream %q: bag skipped after earlier error in batch: %w", g.st.id, failed)
				continue
			}
			p, err := g.st.det.Push(batch[i].Bag)
			results[i].Point = p
			if err != nil {
				results[i].Err = err
				failed = err
				continue
			}
			if onApply != nil {
				onApply(i, g.st.dirty)
			}
		}
	}

	workers := e.cfg.Workers
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for gi := range groups {
			run(&groups[gi])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					gi := int(next.Add(1)) - 1
					if gi >= len(groups) {
						return
					}
					run(&groups[gi])
				}
			}()
		}
		wg.Wait()
	}

	var firstErr error
	for i := range results {
		if results[i].Err != nil {
			firstErr = results[i].Err
			break
		}
	}
	return results, firstErr
}
