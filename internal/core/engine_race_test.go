package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/signature"
)

// TestEngineOpenClosePushRace hammers one stream id with concurrent
// Open, Close, Push, PushBatch and failing Opens (run under -race in
// CI). The properties checked are the ones a Close/Open race can break:
// no panic, no detector double-freed into the pool, and — after the
// storm — a fresh life of the id is bit-identical to a standalone
// detector, proving no pooled detector kept another stream's state.
func TestEngineOpenClosePushRace(t *testing.T) {
	factory := signature.HistogramFactory(-6, 9, 24)
	eng := newTestEngine(t, factory, 2)
	const id = "contested"
	bags := streamBags(id, 8)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				st, err := eng.Open(id)
				if err != nil {
					continue
				}
				st.Push(bags[i%len(bags)]) // may fail closed; must not race
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if st, ok := eng.Get(id); ok {
					st.Close()
					st.Close() // double Close on the same handle must be harmless
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				eng.PushBatch([]StreamBag{
					{StreamID: id, Bag: bags[i%len(bags)]},
					{StreamID: id, Bag: bags[(i+1)%len(bags)]},
				})
			}
		}()
	}
	wg.Wait()

	// The pool must hold at most one detector per closed life — a
	// double-free would let two streams share one detector. Count
	// distinct detectors by opening streams until the pool is drained.
	if st, ok := eng.Get(id); ok {
		st.Close()
	}
	stats := eng.Stats()
	if stats.Open != 0 {
		t.Fatalf("streams left open after storm: %+v", stats)
	}
	seen := make(map[*Detector]bool)
	for i := 0; i < stats.PooledFree; i++ {
		st, err := eng.Open(fmt.Sprintf("drain-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		st.mu.Lock()
		det := st.det
		st.mu.Unlock()
		if seen[det] {
			t.Fatal("pool handed out the same detector twice: double-free")
		}
		seen[det] = true
	}

	// Fresh life of the contested id must match a standalone detector.
	st, err := eng.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(eng.StreamConfig(id))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bags {
		got, err := st.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		if (got == nil) != (want == nil) {
			t.Fatalf("nil mismatch after storm: %v vs %v", got, want)
		}
		if got != nil && !pointsEqual(*got, *want) {
			t.Fatalf("post-storm point %+v != standalone %+v", *got, *want)
		}
	}
}

// TestStreamStaleHandleClose: a handle kept across Close + reopen must
// not be able to tear down the id's CURRENT stream or double-free its
// detector into the pool.
func TestStreamStaleHandleClose(t *testing.T) {
	factory := signature.HistogramFactory(-6, 9, 24)
	eng := newTestEngine(t, factory, 1)
	bags := streamBags("x", 3)

	stale, err := eng.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	stale.Close()

	cur, err := eng.Open("x") // recycles the pooled detector
	if err != nil {
		t.Fatal(err)
	}
	stale.Close() // must be a no-op: stale handle, already closed
	if _, err := cur.Push(bags[0]); err != nil {
		t.Fatalf("current stream broken by stale Close: %v", err)
	}
	if got := eng.Stats(); got.Open != 1 || got.PooledFree != 0 {
		t.Fatalf("stats after stale Close = %+v, want 1 open / 0 pooled", got)
	}
}
