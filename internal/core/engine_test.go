package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/cluster"
	"repro/internal/emd"
	"repro/internal/randx"
	"repro/internal/signature"
	"repro/internal/testutil"
)

// engineTemplate is the per-stream configuration every engine test uses.
func engineTemplate() Config {
	return Config{
		Tau: 3, TauPrime: 3,
		Bootstrap: bootstrap.Config{Replicates: 200},
	}
}

func newTestEngine(t testing.TB, factory signature.BuilderFactory, workers int) *Engine {
	t.Helper()
	eng, err := NewEngine(EngineConfig{
		Template: engineTemplate(),
		Factory:  factory,
		Seed:     42,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// streamBags generates a deterministic per-stream 1-D sequence with a
// mean shift halfway through; each stream's data differs.
func streamBags(id string, n int) []bag.Bag {
	rng := randx.New(randx.SplitSeedString(1000, id))
	out := make([]bag.Bag, n)
	for ts := range out {
		mu := 0.0
		if ts >= n/2 {
			mu = 3
		}
		vals := make([]float64, 60)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		out[ts] = bag.FromScalars(ts, vals)
	}
	return out
}

// TestEnginePushBatchBitIdentical is the engine's core contract: N
// streams fed through PushBatch — in interleaved batches, for several
// worker counts — produce bit-identical Points to N standalone detectors
// built from StreamConfig, for both a deterministic (histogram) and a
// randomized (k-means) builder factory.
func TestEnginePushBatchBitIdentical(t *testing.T) {
	factories := map[string]signature.BuilderFactory{
		"histogram": signature.HistogramFactory(-6, 9, 24),
		"kmeans":    signature.KMeansFactory(4, cluster.Config{MaxIters: 20}),
	}
	ids := []string{"user-0", "user-1", "user-2", "user-3", "user-4"}
	const steps = 12

	for fname, factory := range factories {
		t.Run(fname, func(t *testing.T) {
			// Standalone reference: one fresh detector per stream.
			ref := make(map[string][]*Point)
			refEng := newTestEngine(t, factory, 1) // only used for StreamConfig
			for _, id := range ids {
				det, err := New(refEng.StreamConfig(id))
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range streamBags(id, steps) {
					p, err := det.Push(b)
					if err != nil {
						t.Fatal(err)
					}
					ref[id] = append(ref[id], p)
				}
			}

			for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				eng := newTestEngine(t, factory, workers)
				got := make(map[string][]*Point)
				// Interleave streams step by step so batches mix streams.
				bags := make(map[string][]bag.Bag, len(ids))
				for _, id := range ids {
					bags[id] = streamBags(id, steps)
				}
				for step := 0; step < steps; step++ {
					var batch []StreamBag
					for _, id := range ids {
						batch = append(batch, StreamBag{StreamID: id, Bag: bags[id][step]})
					}
					results, err := eng.PushBatch(batch)
					if err != nil {
						t.Fatal(err)
					}
					if len(results) != len(batch) {
						t.Fatalf("got %d results for %d bags", len(results), len(batch))
					}
					for _, res := range results {
						got[res.StreamID] = append(got[res.StreamID], res.Point)
					}
				}
				for _, id := range ids {
					comparePointSeries(t, fmt.Sprintf("workers=%d stream=%s", workers, id), got[id], ref[id])
				}
			}
		})
	}
}

// comparePointSeries compares two aligned []*Point (nil = warm-up).
func comparePointSeries(t *testing.T, label string, got, want []*Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range got {
		if (got[i] == nil) != (want[i] == nil) {
			t.Fatalf("%s: point %d nil mismatch (%v vs %v)", label, i, got[i], want[i])
		}
		if got[i] != nil && !pointsEqual(*got[i], *want[i]) {
			t.Fatalf("%s: point %d %+v != %+v", label, i, *got[i], *want[i])
		}
	}
}

// TestEngineStreamPushMatchesBatch: pushing bag-by-bag through an Open
// handle equals feeding the same bags via PushBatch.
func TestEngineStreamPushMatchesBatch(t *testing.T) {
	factory := signature.HistogramFactory(-6, 9, 24)
	bags := streamBags("solo", 10)

	engA := newTestEngine(t, factory, 2)
	st, err := engA.Open("solo")
	if err != nil {
		t.Fatal(err)
	}
	var viaPush []*Point
	for _, b := range bags {
		p, err := st.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		viaPush = append(viaPush, p)
	}

	engB := newTestEngine(t, factory, 2)
	batch := make([]StreamBag, len(bags))
	for i, b := range bags {
		batch[i] = StreamBag{StreamID: "solo", Bag: b}
	}
	results, err := engB.PushBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	viaBatch := make([]*Point, len(results))
	for i := range results {
		viaBatch[i] = results[i].Point
	}
	comparePointSeries(t, "push-vs-batch", viaPush, viaBatch)
}

// TestEngineOpenIdempotentAndClose: Open twice returns the same handle;
// Close recycles the detector and a reopened stream starts from scratch.
func TestEngineOpenIdempotentAndClose(t *testing.T) {
	eng := newTestEngine(t, signature.HistogramFactory(-6, 9, 24), 1)
	a, err := eng.Open("s")
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Open("s")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Open is not idempotent")
	}
	if eng.Len() != 1 {
		t.Fatalf("Len = %d, want 1", eng.Len())
	}
	a.Close()
	a.Close() // idempotent
	if eng.Len() != 0 {
		t.Fatalf("Len after Close = %d, want 0", eng.Len())
	}
	if _, err := a.Push(streamBags("s", 1)[0]); err == nil {
		t.Fatal("Push on closed stream should error")
	}
	if _, err := eng.Open(""); err == nil {
		t.Fatal("Open(\"\") should error")
	}
}

// TestEngineDetectorRecycling: a detector recycled through the pool
// (open A → push → close → open B) serves stream B bit-identically to a
// fresh engine that only ever ran B — recycling must leave no residue.
func TestEngineDetectorRecycling(t *testing.T) {
	factory := signature.KMeansFactory(4, cluster.Config{MaxIters: 20})
	bagsA := streamBags("a", 9)
	bagsB := streamBags("b", 9)

	run := func(withA bool) []*Point {
		eng := newTestEngine(t, factory, 1)
		if withA {
			stA, err := eng.Open("a")
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range bagsA {
				if _, err := stA.Push(b); err != nil {
					t.Fatal(err)
				}
			}
			stA.Close() // detector goes to the pool, warm
		}
		stB, err := eng.Open("b")
		if err != nil {
			t.Fatal(err)
		}
		var out []*Point
		for _, b := range bagsB {
			p, err := stB.Push(b)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
		}
		return out
	}

	comparePointSeries(t, "recycled-vs-fresh", run(true), run(false))
}

// TestDetectorResetBitIdentical: Reset rewinds a warm detector to its
// initial state — refeeding the same bags reproduces the exact Points of
// the first run (stateless builder, so the builder needs no reset).
func TestDetectorResetBitIdentical(t *testing.T) {
	cfg := Config{
		Tau: 3, TauPrime: 3,
		Builder:   signature.NewHistogramBuilder(-6, 9, 24),
		Bootstrap: bootstrap.Config{Replicates: 200},
		Seed:      5,
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bags := streamBags("reset", 10)
	feed := func() []*Point {
		var out []*Point
		for _, b := range bags {
			p, err := d.Push(b)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
		}
		return out
	}
	first := feed()
	d.Reset()
	second := feed()
	comparePointSeries(t, "reset", second, first)

	// And a Reset mid-window (before the window ever filled) must too.
	d.Reset()
	if _, err := d.Push(bags[0]); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	comparePointSeries(t, "reset-mid-warmup", feed(), first)
}

// zeroAllocBuilder returns precomputed signatures so AllocsPerRun can
// isolate the detector's own allocations from the signature build.
type zeroAllocBuilder struct {
	sigs []signature.Signature
	i    int
}

func (zb *zeroAllocBuilder) Build(bag.Bag) (signature.Signature, error) {
	s := zb.sigs[zb.i%len(zb.sigs)]
	zb.i++
	return s, nil
}

// TestDetectorResetCycleZeroAllocs: a full Reset + refill + inspect
// cycle on a warm detector must not allocate — the point of pooling
// detectors is that recycling is free.
func TestDetectorResetCycleZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	hb := signature.NewHistogramBuilder(-6, 9, 24)
	bags := streamBags("alloc", 8)
	zb := &zeroAllocBuilder{}
	for _, b := range bags {
		s, err := hb.Build(b)
		if err != nil {
			t.Fatal(err)
		}
		// Pre-normalize and use RawMass so Push takes the signature as-is.
		zb.sigs = append(zb.sigs, s.Normalized())
	}
	d, err := New(Config{
		Tau: 3, TauPrime: 3,
		Builder:   zb,
		RawMass:   true,
		Bootstrap: bootstrap.Config{Replicates: 200},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := func() {
		zb.i = 0
		for _, b := range bags {
			if _, err := d.Push(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed() // warm everything once
	if allocs := testing.AllocsPerRun(10, func() {
		d.Reset()
		feed()
	}); allocs > 3 {
		// Each inspection returns one fresh *Point; with 8 bags and a
		// τ+τ′=6 window the cycle inspects at counts 6, 7 and 8, so the
		// three returned Points are the detector's entire steady-state
		// cost. Anything above means Reset leaks buffer reuse.
		t.Errorf("Reset+refill cycle: %g allocs/op, want <= 3 (the returned Points)", allocs)
	}
}

// TestEnginePushBatchPartialError: a failing bag poisons only its own
// stream — its later bags in the batch are skipped with a wrapping
// error, other streams complete, and the batch error is the first
// per-bag error in input order.
func TestEnginePushBatchPartialError(t *testing.T) {
	eng := newTestEngine(t, signature.HistogramFactory(-6, 9, 24), 2)
	good := streamBags("good", 4)
	batch := []StreamBag{
		{StreamID: "good", Bag: good[0]},
		{StreamID: "bad", Bag: bag.Bag{T: 0}}, // empty bag: builder error
		{StreamID: "good", Bag: good[1]},
		{StreamID: "bad", Bag: good[2]}, // would be fine, but follows the failure
	}
	results, err := eng.PushBatch(batch)
	if err == nil {
		t.Fatal("expected batch error")
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy stream affected: %+v", results)
	}
	if results[1].Err == nil || results[3].Err == nil {
		t.Fatalf("failing stream errors not recorded: %+v", results)
	}
	if err.Error() != results[1].Err.Error() {
		t.Fatalf("batch error %q is not the first per-bag error %q", err, results[1].Err)
	}
}

// TestNewEngineValidation: option/config errors surface at construction.
func TestNewEngineValidation(t *testing.T) {
	tmpl := engineTemplate()
	cases := map[string]EngineConfig{
		"missing factory": {Template: tmpl},
		"builder set": {
			Template: func() Config { c := tmpl; c.Builder = signature.NewHistogramBuilder(0, 1, 2); return c }(),
			Factory:  signature.HistogramFactory(0, 1, 2),
		},
		"bad tau": {
			Template: func() Config { c := tmpl; c.Tau = 0; return c }(),
			Factory:  signature.HistogramFactory(0, 1, 2),
		},
	}
	for name, cfg := range cases {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// badSigBuilder yields an invalid signature for one bag index, to force
// an EMD error inside PairwiseEMD.
type badSigBuilder struct {
	badAt int
	n     int
}

func (bb *badSigBuilder) Build(b bag.Bag) (signature.Signature, error) {
	i := bb.n
	bb.n++
	w := 1.0
	if i == bb.badAt {
		w = -1 // invalid: Distance rejects negative weights
	}
	return signature.Signature{Centers: [][]float64{{float64(i), 0}}, Weights: []float64{w}}, nil
}

// TestPairwiseEMDCancelsOnError: after the first failing pair, the
// remaining jobs must be cancelled instead of drained — the ground
// distance should run for far fewer than all n(n−1)/2 pairs.
func TestPairwiseEMDCancelsOnError(t *testing.T) {
	const n = 40
	seq := make(bag.Sequence, n)
	for i := range seq {
		seq[i] = bag.New(i, [][]float64{{float64(i), 1}})
	}
	var groundCalls atomic.Int64
	ground := emd.Ground(func(a, b []float64) float64 {
		groundCalls.Add(1)
		return emd.Euclidean(a, b)
	})
	// RawMass path so the single-center signatures keep weight -1.
	_, err := PairwiseEMD(&badSigBuilder{badAt: 2}, seq, ground, true)
	if err == nil {
		t.Fatal("expected error from invalid signature")
	}
	total := int64(n * (n - 1) / 2)
	if calls := groundCalls.Load(); calls >= total/2 {
		t.Errorf("ground ran %d times; want far fewer than the full %d pairs (cancellation failed)", calls, total)
	}
}
