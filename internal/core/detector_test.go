package core

import (
	"math"
	"testing"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/cluster"
	"repro/internal/randx"
	"repro/internal/signature"
)

// gaussianSeq builds a sequence of 1-D bags: bags [0,change) from
// N(mu1,1), bags [change,n) from N(mu2,1), each with size points.
func gaussianSeq(rng *randx.RNG, n, change, size int, mu1, mu2 float64) bag.Sequence {
	seq := make(bag.Sequence, n)
	for t := 0; t < n; t++ {
		mu := mu1
		if t >= change {
			mu = mu2
		}
		vals := make([]float64, size)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		seq[t] = bag.FromScalars(t, vals)
	}
	return seq
}

func histCfg() Config {
	return Config{
		Tau:      5,
		TauPrime: 5,
		Builder:  signature.NewHistogramBuilder(-10, 10, 40),
		Bootstrap: bootstrap.Config{
			Replicates: 300,
			Alpha:      0.05,
		},
		Seed: 1,
	}
}

func TestConfigValidation(t *testing.T) {
	b := signature.NewHistogramBuilder(0, 1, 4)
	cases := map[string]Config{
		"tau0":     {Tau: 0, TauPrime: 5, Builder: b},
		"tauP0":    {Tau: 5, TauPrime: 0, Builder: b},
		"noBuild":  {Tau: 5, TauPrime: 5},
		"lrTauP1":  {Tau: 5, TauPrime: 1, Score: ScoreLR, Builder: b},
		"badScore": {Tau: 5, TauPrime: 5, Score: ScoreType(9), Builder: b},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected config error", name)
		}
	}
	good := Config{Tau: 5, TauPrime: 5, Builder: b}
	if _, err := New(good); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestScoreTypeString(t *testing.T) {
	if ScoreKL.String() != "KL" || ScoreLR.String() != "LR" {
		t.Error("ScoreType strings")
	}
	if ScoreType(7).String() == "" {
		t.Error("unknown score type should still render")
	}
}

func TestPushWarmup(t *testing.T) {
	d, err := New(histCfg())
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(2)
	seq := gaussianSeq(rng, 12, 99, 50, 0, 0)
	var first *Point
	for i, b := range seq {
		p, err := d.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		if i < d.WindowSize()-1 {
			if p != nil {
				t.Fatalf("point produced during warmup at i=%d", i)
			}
			continue
		}
		if p == nil {
			t.Fatalf("no point after window filled at i=%d", i)
		}
		if first == nil {
			first = p
		}
	}
	// First inspection time is τ (reference fills indices 0..τ-1).
	if first.T != 5 {
		t.Errorf("first inspection T = %d, want 5", first.T)
	}
}

func TestDetectsMeanShiftKL(t *testing.T) {
	rng := randx.New(3)
	seq := gaussianSeq(rng, 30, 15, 100, 0, 6)
	points, err := Run(histCfg(), seq)
	if err != nil {
		t.Fatal(err)
	}
	// The score at the change point must dominate the others.
	var atChange, maxElsewhere float64
	for _, p := range points {
		if p.T == 15 {
			atChange = p.Score
		} else if p.T < 11 || p.T > 19 {
			if p.Score > maxElsewhere {
				maxElsewhere = p.Score
			}
		}
	}
	if atChange <= maxElsewhere {
		t.Errorf("score at change %g not above background %g", atChange, maxElsewhere)
	}
	// An alarm should be raised at/near the change point.
	alarms := Alarms(points)
	foundNear := false
	for _, a := range alarms {
		if a >= 14 && a <= 17 {
			foundNear = true
		}
	}
	if !foundNear {
		t.Errorf("no alarm near t=15; alarms=%v", alarms)
	}
}

func TestDetectsMeanShiftLR(t *testing.T) {
	rng := randx.New(4)
	seq := gaussianSeq(rng, 30, 15, 100, 0, 6)
	cfg := histCfg()
	cfg.Score = ScoreLR
	points, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	var atChange float64
	background := 0.0
	count := 0
	for _, p := range points {
		if p.T == 15 {
			atChange = p.Score
		} else if p.T < 11 || p.T > 19 {
			background += p.Score
			count++
		}
	}
	if atChange <= background/float64(count)+1 {
		t.Errorf("LR score at change %g not above mean background %g", atChange, background/float64(count))
	}
}

func TestNoAlarmsOnStationarySequence(t *testing.T) {
	rng := randx.New(5)
	seq := gaussianSeq(rng, 40, 999, 80, 0, 0)
	points, err := Run(histCfg(), seq)
	if err != nil {
		t.Fatal(err)
	}
	alarms := Alarms(points)
	if len(alarms) > 1 {
		t.Errorf("stationary sequence raised %d alarms: %v", len(alarms), alarms)
	}
}

func TestKappaNaNUntilPreviousIntervalExists(t *testing.T) {
	rng := randx.New(6)
	seq := gaussianSeq(rng, 20, 999, 50, 0, 0)
	points, err := Run(histCfg(), seq)
	if err != nil {
		t.Fatal(err)
	}
	// First inspection times τ..τ+τ′−1 have no t−τ′ interval.
	for _, p := range points {
		if p.T < 10 {
			if !math.IsNaN(p.Kappa) {
				t.Errorf("T=%d: kappa should be NaN, got %g", p.T, p.Kappa)
			}
			if p.Alarm {
				t.Errorf("T=%d: alarm without previous interval", p.T)
			}
		} else {
			if math.IsNaN(p.Kappa) {
				t.Errorf("T=%d: kappa should be defined", p.T)
			}
		}
	}
}

// pointsEqual compares Points treating NaN kappas as equal.
func pointsEqual(a, b Point) bool {
	if a.T != b.T || a.Score != b.Score || a.Interval != b.Interval || a.Alarm != b.Alarm {
		return false
	}
	if math.IsNaN(a.Kappa) != math.IsNaN(b.Kappa) {
		return false
	}
	return math.IsNaN(a.Kappa) || a.Kappa == b.Kappa
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	seq := gaussianSeq(randx.New(7), 25, 12, 60, 0, 4)
	a, err := Run(histCfg(), seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(histCfg(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if !pointsEqual(a[i], b[i]) {
			t.Fatalf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStreamingMatchesBatch(t *testing.T) {
	seq := gaussianSeq(randx.New(8), 25, 12, 60, 0, 4)
	batch, err := Run(histCfg(), seq)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(histCfg())
	if err != nil {
		t.Fatal(err)
	}
	var stream []Point
	for _, b := range seq {
		p, err := d.Push(b)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			stream = append(stream, *p)
		}
	}
	if len(batch) != len(stream) {
		t.Fatalf("batch %d points, stream %d", len(batch), len(stream))
	}
	for i := range batch {
		if !pointsEqual(batch[i], stream[i]) {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestEmptyBagPropagatesError(t *testing.T) {
	d, err := New(histCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Push(bag.Bag{T: 0}); err == nil {
		t.Fatal("expected error for empty bag")
	}
}

func TestDiscountedWeightingRuns(t *testing.T) {
	cfg := histCfg()
	cfg.Weighting = WeightDiscounted
	seq := gaussianSeq(randx.New(9), 25, 12, 60, 0, 5)
	points, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	var atChange, bg float64
	n := 0
	for _, p := range points {
		if p.T == 12 {
			atChange = p.Score
		} else if p.T < 9 || p.T > 15 {
			bg += p.Score
			n++
		}
	}
	if atChange <= bg/float64(n) {
		t.Errorf("discounted weighting: score at change %g below background %g", atChange, bg/float64(n))
	}
}

func TestRawMassMode(t *testing.T) {
	cfg := histCfg()
	cfg.RawMass = true
	seq := gaussianSeq(randx.New(10), 22, 11, 60, 0, 5)
	points, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		if math.IsNaN(p.Score) || math.IsInf(p.Score, 0) {
			t.Fatalf("raw-mass score is %g", p.Score)
		}
	}
}

func TestKMeansBuilderWith2DBags(t *testing.T) {
	rng := randx.New(11)
	seq := make(bag.Sequence, 20)
	for t2 := 0; t2 < 20; t2++ {
		mu := 0.0
		if t2 >= 10 {
			mu = 5
		}
		pts := make([][]float64, 60)
		for i := range pts {
			pts[i] = []float64{rng.Normal(mu, 1), rng.Normal(-mu, 1)}
		}
		seq[t2] = bag.New(t2, pts)
	}
	cfg := Config{
		Tau:       5,
		TauPrime:  5,
		Builder:   signature.NewKMeansBuilder(4, cluster.Config{}, rng.Split(1)),
		Bootstrap: bootstrap.Config{Replicates: 200},
		Seed:      2,
	}
	points, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	var atChange, maxElsewhere float64
	for _, p := range points {
		if p.T == 10 {
			atChange = p.Score
		} else if p.T < 7 || p.T > 13 {
			if p.Score > maxElsewhere {
				maxElsewhere = p.Score
			}
		}
	}
	if atChange <= maxElsewhere {
		t.Errorf("2-D k-means: score at change %g not above background %g", atChange, maxElsewhere)
	}
}

func TestAlarmsAndScoresHelpers(t *testing.T) {
	points := []Point{
		{T: 5, Score: 1, Alarm: false},
		{T: 6, Score: 2, Alarm: true},
		{T: 7, Score: 3, Alarm: true},
	}
	a := Alarms(points)
	if len(a) != 2 || a[0] != 6 || a[1] != 7 {
		t.Errorf("Alarms = %v", a)
	}
	s := Scores(points)
	if s[0] != 1 || s[2] != 3 {
		t.Errorf("Scores = %v", s)
	}
}

func TestPairwiseEMD(t *testing.T) {
	rng := randx.New(12)
	seq := gaussianSeq(rng, 8, 4, 50, 0, 6)
	m, err := PairwiseEMD(signature.NewHistogramBuilder(-10, 10, 40), seq, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 8 {
		t.Fatalf("matrix size %d", len(m))
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal m[%d][%d] = %g", i, i, m[i][i])
		}
		for j := range m {
			if math.Abs(m[i][j]-m[j][i]) > 1e-12 {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Cross-regime distances must exceed within-regime distances.
	within := (m[0][1] + m[1][2] + m[5][6] + m[6][7]) / 4
	across := (m[0][5] + m[1][6] + m[2][7]) / 3
	if across <= within {
		t.Errorf("across %g <= within %g", across, within)
	}
}

func TestWindowSlideKeepsMatrixConsistent(t *testing.T) {
	// After many pushes, the rolling logD must equal a freshly computed
	// matrix over the same window. We verify indirectly: a detector fed a
	// long stationary prefix then re-fed only the last window's bags must
	// produce the same score (same seed ⇒ same bootstrap draws only if
	// RNG state matches, so compare the deterministic Point estimate).
	seqFull := gaussianSeq(randx.New(13), 30, 999, 50, 0, 0)
	cfg := histCfg()
	cfg.Bootstrap.Replicates = 10
	pointsFull, err := Run(cfg, seqFull)
	if err != nil {
		t.Fatal(err)
	}
	last := pointsFull[len(pointsFull)-1]

	// Re-run on only the final window's bags.
	w := cfg.Tau + cfg.TauPrime
	tail := seqFull[len(seqFull)-w:]
	pointsTail, err := Run(cfg, tail)
	if err != nil {
		t.Fatal(err)
	}
	if len(pointsTail) != 1 {
		t.Fatalf("tail run gave %d points", len(pointsTail))
	}
	if math.Abs(pointsTail[0].Interval.Point-last.Interval.Point) > 1e-12 {
		t.Errorf("rolling window point %g vs fresh %g", last.Interval.Point, pointsTail[0].Interval.Point)
	}
}

func TestAlarmSuppressionOnGradualDrift(t *testing.T) {
	// A slow drift produces elevated scores but wide, overlapping
	// confidence intervals (paper §5.1 dataset 3): alarms must stay rare
	// compared to an abrupt jump of the same total magnitude.
	rng := randx.New(14)
	n, size := 40, 60
	drift := make(bag.Sequence, n)
	for t2 := 0; t2 < n; t2++ {
		mu := 6 * float64(t2) / float64(n) // slow ramp 0→6
		vals := make([]float64, size)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		drift[t2] = bag.FromScalars(t2, vals)
	}
	jump := gaussianSeq(rng, n, n/2, size, 0, 6)

	cfg := histCfg()
	pd, err := Run(cfg, drift)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := Run(cfg, jump)
	if err != nil {
		t.Fatal(err)
	}
	if len(Alarms(pj)) == 0 {
		t.Error("abrupt jump raised no alarm")
	}
	if len(Alarms(pd)) > len(Alarms(pj))+1 {
		t.Errorf("gradual drift raised %d alarms vs jump %d", len(Alarms(pd)), len(Alarms(pj)))
	}
}

func TestPairwiseEMDParallelDeterminism(t *testing.T) {
	// The concurrent matrix fill must produce identical results across
	// runs (distinct cells per job; no ordering effects).
	rng := randx.New(31)
	seq := gaussianSeq(rng, 16, 8, 60, 0, 5)
	builder := signature.NewHistogramBuilder(-10, 10, 30)
	a, err := PairwiseEMD(builder, seq, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PairwiseEMD(builder, seq, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("nondeterministic cell (%d,%d): %g vs %g", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestPairwiseEMDPropagatesGroundError(t *testing.T) {
	rng := randx.New(32)
	seq := gaussianSeq(rng, 6, 3, 20, 0, 1)
	builder := signature.NewHistogramBuilder(-10, 10, 30)
	bad := func(a, b []float64) float64 { return math.NaN() }
	if _, err := PairwiseEMD(builder, seq, bad, false); err == nil {
		t.Fatal("NaN ground distance must surface as an error")
	}
}

func TestPairwiseEMDEmptyBagError(t *testing.T) {
	seq := bag.Sequence{bag.FromScalars(0, []float64{1}), {}}
	builder := signature.NewHistogramBuilder(-10, 10, 30)
	if _, err := PairwiseEMD(builder, seq, nil, false); err == nil {
		t.Fatal("empty bag must surface as an error")
	}
}

func TestLogFloorConfig(t *testing.T) {
	// With a huge floor, all log-distances collapse to the same constant
	// and every score becomes ~0: the floor is genuinely wired through.
	rng := randx.New(33)
	seq := gaussianSeq(rng, 16, 8, 50, 0, 8)
	cfg := histCfg()
	cfg.LogFloor = 1e9
	points, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if math.Abs(p.Score) > 1e-9 {
			t.Fatalf("score %g with saturating floor, want 0", p.Score)
		}
	}
}
