package core

import (
	"strings"
	"testing"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/obs"
	"repro/internal/randx"
	"repro/internal/signature"
	"repro/internal/testutil"
)

// TestDetectorPushInstrumentedAllocs pins the instrumentation seam's
// allocation contract: attaching a registry-backed observer must not
// add per-push garbage beyond the uninstrumented bound (time.Now,
// Histogram.Observe, Counter.Add and solver Stats() are all
// allocation-free).
func TestDetectorPushInstrumentedAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	d, bags := warmDetector(t, 1)
	d.SetObserver(obs.NewRegistry().PushStageObserver("kl"))
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := d.Push(bags[i%len(bags)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Same bound as TestDetectorPushSteadyStateAllocs: instrumentation
	// must be free of per-push allocations.
	if allocs > 60 {
		t.Errorf("instrumented steady-state Push: %g allocs/op, want <= 60", allocs)
	}
}

// TestDetectorOutputInvariantToObserver: instrumentation is pure
// telemetry — a detector with an observer attached produces
// bit-identical Points to one without.
func TestDetectorOutputInvariantToObserver(t *testing.T) {
	run := func(instrument bool) []Point {
		rng := randx.New(3)
		d, err := New(Config{
			Tau: 4, TauPrime: 4,
			Builder:   signature.NewHistogramBuilder(-6, 6, 24),
			Bootstrap: bootstrap.Config{Replicates: 300, Workers: 1},
			Seed:      5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if instrument {
			d.SetObserver(obs.NewRegistry().PushStageObserver("kl"))
		}
		var out []Point
		for ts := 0; ts < 16; ts++ {
			mu := 0.0
			if ts >= 8 {
				mu = 2.5
			}
			vals := make([]float64, 60)
			for i := range vals {
				vals[i] = rng.Normal(mu, 1)
			}
			p, err := d.Push(bag.FromScalars(ts, vals))
			if err != nil {
				t.Fatal(err)
			}
			if p != nil {
				out = append(out, *p)
			}
		}
		return out
	}
	want := run(false)
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("instrumented run: %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if !pointsEqual(got[i], want[i]) {
			t.Fatalf("point %d: instrumented %+v != plain %+v", i, got[i], want[i])
		}
	}
}

// TestEngineInstrumentStageMetrics drives an instrumented engine and
// checks the stage histograms and solver counters land on the registry
// with the statistic label, and that Stream.Introspect reports the
// matching cumulative stage state.
func TestEngineInstrumentStageMetrics(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Template: Config{
			Tau: 2, TauPrime: 2,
			Bootstrap: bootstrap.Config{Replicates: 60},
		},
		Factory: signature.HistogramFactory(-6, 6, 16),
		Seed:    41,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown()
	reg := obs.NewRegistry()
	eng.Instrument(reg)

	rng := randx.New(17)
	var batch []StreamBag
	for ts := 0; ts < 6; ts++ {
		vals := make([]float64, 40)
		for i := range vals {
			vals[i] = rng.Normal(0, 1)
		}
		batch = append(batch, StreamBag{StreamID: "s1", Bag: bag.FromScalars(ts, vals)})
	}
	if _, err := eng.PushBatch(batch); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	reg.Render(&b)
	out := b.String()
	for _, want := range []string{
		`bagcpd_push_stage_seconds_count{stage="preprocess",statistic="kl"} 6`,
		`bagcpd_push_stage_seconds_count{stage="signature",statistic="kl"} 6`,
		`bagcpd_push_stage_seconds_count{stage="emd",statistic="kl"} 6`,
		// Window w=4 fills at push 4, so 3 of the 6 pushes inspect.
		`bagcpd_push_stage_seconds_count{stage="bootstrap",statistic="kl"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `bagcpd_push_solver_pivots_total{statistic="kl"}`) {
		t.Errorf("missing solver pivot counter in:\n%s", out)
	}
	if errs := obs.Lint(strings.NewReader(out)); len(errs) > 0 {
		t.Errorf("instrumented engine exposition fails lint: %v", errs)
	}

	st, _ := eng.Get("s1")
	stats, err := st.Introspect()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bags != 6 || stats.WindowFill != 4 || stats.WindowSize != 4 {
		t.Errorf("introspect clock/window = %d/%d/%d, want 6/4/4", stats.Bags, stats.WindowFill, stats.WindowSize)
	}
	if !stats.HasLast || stats.Last.T != 4 {
		t.Errorf("introspect last = %+v (hasLast=%v), want inspection at T=4", stats.Last, stats.HasLast)
	}
	if stats.DirtyMark == 0 {
		t.Error("introspect dirty mark is 0 after pushes")
	}
	for _, sg := range stats.Stages {
		wantN := uint64(6)
		if sg.Stage == "bootstrap" {
			wantN = 3
		}
		if sg.Count != wantN {
			t.Errorf("stage %s count = %d, want %d", sg.Stage, sg.Count, wantN)
		}
	}

	// A recycled detector keeps the observer but starts fresh stage state.
	st.Close()
	st2, err := eng.Open("s2")
	if err != nil {
		t.Fatal(err)
	}
	stats2, err := st2.Introspect()
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range stats2.Stages {
		if sg.Count != 0 || sg.Seconds != 0 {
			t.Errorf("recycled stream stage %s not reset: %+v", sg.Stage, sg)
		}
	}
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = rng.Normal(0, 1)
	}
	if _, err := st2.Push(bag.FromScalars(0, vals)); err != nil {
		t.Fatal(err)
	}
	stats2, _ = st2.Introspect()
	if stats2.Stages[0].Count != 1 {
		t.Errorf("recycled detector lost the observer: preprocess count = %d, want 1", stats2.Stages[0].Count)
	}
}

// TestStreamIntrospectClosed: Introspect on a closed stream errors
// rather than fabricating zeros.
func TestStreamIntrospectClosed(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Template: Config{Tau: 1, TauPrime: 1, Bootstrap: bootstrap.Config{Replicates: 20}},
		Factory:  signature.HistogramFactory(-4, 4, 8),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown()
	st, err := eng.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := st.Introspect(); err == nil {
		t.Fatal("Introspect on closed stream did not error")
	}
}

// BenchmarkDetectorPushInstrumented is the instrumented twin of
// BenchmarkDetectorPushHistogram: the delta between them is the full
// observability cost (stage clocks + histogram observes + solver stats
// accumulation) on a real push.
func BenchmarkDetectorPushInstrumented(b *testing.B) {
	d, bags := warmDetector(b, 1)
	d.SetObserver(obs.NewRegistry().PushStageObserver("kl"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Push(bags[i%len(bags)]); err != nil {
			b.Fatal(err)
		}
	}
}
