package core

import (
	"math"
	"testing"

	"repro/internal/bootstrap"
	"repro/internal/emd"
	"repro/internal/randx"
	"repro/internal/signature"
)

// TestDetectorCostCacheBitIdentity runs the full detector twice on the
// same sequence — EMD cost caching on vs off — and requires every
// inspection point to match bit-for-bit. The Manhattan ground forces the
// 1-D histogram signatures through the simplex (Euclidean would take the
// closed form and never touch the cache), so this exercises the cached
// row fills on the real detector loop. The contract is what keeps
// EMDCostCacheSlots out of the snapshot fingerprint.
func TestDetectorCostCacheBitIdentity(t *testing.T) {
	mkCfg := func(cacheSlots int) Config {
		return Config{
			Tau:      5,
			TauPrime: 5,
			Builder:  signature.NewHistogramBuilder(-10, 10, 40),
			Ground:   emd.Manhattan,
			Bootstrap: bootstrap.Config{
				Replicates: 150,
				Alpha:      0.05,
			},
			Seed:              1,
			EMDCostCacheSlots: cacheSlots,
		}
	}
	rng := randx.New(3)
	seq := gaussianSeq(rng, 28, 14, 80, 0, 5)

	cached, err := Run(mkCfg(0), seq) // 0 = default cache on
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(mkCfg(-1), seq) // negative = cache disabled
	if err != nil {
		t.Fatal(err)
	}
	if len(cached) != len(plain) {
		t.Fatalf("point counts differ: cached %d vs uncached %d", len(cached), len(plain))
	}
	for i := range plain {
		c, p := cached[i], plain[i]
		same := c.T == p.T && c.Score == p.Score && c.Alarm == p.Alarm &&
			c.Interval == p.Interval &&
			math.Float64bits(c.Kappa) == math.Float64bits(p.Kappa) // Kappa is NaN during warm-up
		if !same {
			t.Fatalf("point %d differs with cache on:\n  cached:   %+v\n  uncached: %+v", i, c, p)
		}
	}
}

// TestPairwiseCostCacheBitIdentity: the tile-local ground-cost caches
// must not perturb a single bit of the pairwise matrix, across worker
// counts and tile sizes.
func TestPairwiseCostCacheBitIdentity(t *testing.T) {
	const n = 19
	rng := randx.New(47)
	seq := gaussianSeq(rng, n, n/2, 60, 0, 4)
	builder := signature.NewHistogramBuilder(-8, 10, 32)

	ref, err := Pairwise(seq,
		WithPairBuilder(builder),
		WithPairGround(emd.Manhattan), // force the simplex on 1-D histograms
		WithPairEMDCostCache(-1),      // cache off
		WithPairWorkers(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, tile := range []int{1, 6, n} {
			m, err := Pairwise(seq,
				WithPairBuilder(builder),
				WithPairGround(emd.Manhattan),
				WithPairEMDCostCache(0), // default cache on
				WithPairWorkers(workers),
				WithTileSize(tile),
			)
			if err != nil {
				t.Fatalf("cached tile=%d workers=%d: %v", tile, workers, err)
			}
			assertMatrixEqualsRef(t, "cached vs uncached", m, ref.Rows())
		}
	}
}
