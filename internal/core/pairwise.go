// Tiled, shardable pairwise-EMD subsystem.
//
// The Fig. 6 dissimilarity matrix — EMD between every pair of bags of a
// corpus — is the gateway to the paper's corpus-scale analyses (MDS
// embedding, retrospective segmentation). A flat n(n−1)/2 job queue
// stops scaling once n passes a few thousand: the per-pair channel
// hand-off dominates cheap distances, the [][]float64 result is an
// allocation storm, and one machine owns the whole triangle.
//
// This file replaces it with a tiled engine:
//
//   - the upper triangle is partitioned into T×T tiles, so a worker
//     streaming over one tile touches at most 2T resident signatures
//     (cache reuse) and claims work one tile at a time with a single
//     atomic increment instead of one channel operation per pair;
//   - each worker owns a prewarmed emd.Solver, and the result is a flat
//     row-major PairwiseMatrix (one allocation) with a Rows()
//     compatibility view;
//   - the tile grid is the unit of multi-host sharding: WithShard(i, k)
//     deterministically assigns every k-th tile to shard i, each shard
//     emits a mergeable PartialMatrix, and MergePairwise reassembles the
//     full matrix — bit-identical to a single-process run.
//
// Determinism contract: the computed matrix is a pure function of the
// signatures and the ground distance. Tile size, worker count, and shard
// layout are pure throughput/topology knobs — every cell is computed
// exactly once, by exactly one worker, with a solver whose result does
// not depend on what it solved before, so all configurations produce
// bit-identical matrices (this is property-tested). Signature
// construction is deterministic too: the factory path builds bag i with
// a builder seeded by randx.SplitSeed(seed, i) regardless of worker
// count or shard, and the legacy stateful-builder path builds
// sequentially in bag order.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bag"
	"repro/internal/emd"
	"repro/internal/signature"
)

// MaxTileSize caps the automatic tile edge: 2·64 signatures of typical
// size (≤ 128 centers) stay resident in L2 while a worker sweeps a
// tile. autoTileSize shrinks the tile below this for small corpora so
// the grid always has enough tiles to feed every worker.
const MaxTileSize = 64

// autoTileSize picks the tile edge when WithTileSize is not given: at
// least 16 tile rows (≥ 136 claimable tiles, so even a small corpus
// fans out across all workers instead of collapsing into one tile),
// capped at MaxTileSize for cache residency. The rule depends only on
// n, never on the machine, so independent shard processes derive the
// same grid.
func autoTileSize(n int) int {
	t := (n + 15) / 16
	if t < 1 {
		t = 1
	}
	if t > MaxTileSize {
		t = MaxTileSize
	}
	return t
}

// PairwiseMatrix is the full symmetric n×n EMD matrix in one flat
// row-major allocation. At(i, j) is the distance between bags i and j;
// the diagonal is zero.
type PairwiseMatrix struct {
	n    int
	data []float64
	rows [][]float64 // Rows() view, built eagerly (so Rows is race-free)
}

// newPairwiseMatrix allocates a zeroed n×n matrix and its row view.
func newPairwiseMatrix(n int) *PairwiseMatrix {
	m := &PairwiseMatrix{n: n, data: make([]float64, n*n), rows: make([][]float64, n)}
	for i := 0; i < n; i++ {
		m.rows[i] = m.data[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

// N returns the number of bags (matrix side length).
func (m *PairwiseMatrix) N() int { return m.n }

// At returns the distance between bags i and j.
func (m *PairwiseMatrix) At(i, j int) float64 { return m.data[i*m.n+j] }

// Data returns the flat row-major backing slice (length n²). It is the
// live storage, not a copy.
func (m *PairwiseMatrix) Data() []float64 { return m.data }

// Rows returns an [][]float64 view of the matrix for callers that
// predate PairwiseMatrix (mds.Embed, plot.Heatmap, the PairwiseEMD
// shim). The rows alias the flat storage — they are views, not copies.
func (m *PairwiseMatrix) Rows() [][]float64 { return m.rows }

// PartialMatrix is one shard's contribution to a pairwise matrix: the
// packed cells of the tiles assigned to that shard. Partials are plain
// data (JSON-serializable) so independent processes or hosts can each
// compute one shard and a collector can MergePairwise them. Values[t]
// holds tile TileIDs[t]'s upper-triangle cells in row-major tile order.
type PartialMatrix struct {
	N          int         `json:"n"`
	TileSize   int         `json:"tile_size"`
	ShardIndex int         `json:"shard_index"`
	ShardCount int         `json:"shard_count"`
	TileIDs    []int       `json:"tile_ids"`
	Values     [][]float64 `json:"values"`
}

// pairwiseCfg is the resolved option set of one Pairwise/PairwiseShard
// call.
type pairwiseCfg struct {
	tile        int
	workers     int
	shardIdx    int
	shardCnt    int
	builder     signature.Builder
	factory     signature.BuilderFactory
	factorySeed int64
	ground      emd.Ground
	rawMass     bool
	largeK      int   // emd.WithLargeThreshold for every worker solver
	cacheSlots  int   // ground-cost cache slots per worker; < 0 disables
	err         error // first option error, reported at the call site
}

// PairwiseOpt configures Pairwise and PairwiseShard.
type PairwiseOpt func(*pairwiseCfg)

func (c *pairwiseCfg) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

// WithTileSize sets the tile edge T: workers claim T×T blocks of the
// upper triangle, streaming over at most 2T resident signatures per
// tile. 0 (the default) selects autoTileSize(n) — a pure function of n,
// capped at MaxTileSize. Tile size never affects the computed values,
// but all shards of one sharded run must use the same tile size so
// their tile grids align (the automatic rule guarantees this as long as
// the shards see the same corpus).
func WithTileSize(t int) PairwiseOpt {
	return func(c *pairwiseCfg) {
		if t < 0 {
			c.fail("core: tile size must be >= 0, got %d", t)
			return
		}
		c.tile = t
	}
}

// WithPairWorkers bounds the goroutines that compute tiles; <= 0 (the
// default) selects GOMAXPROCS. Worker count never affects the computed
// values.
func WithPairWorkers(n int) PairwiseOpt {
	return func(c *pairwiseCfg) { c.workers = n }
}

// WithShard assigns this call the tiles of shard index out of count
// total shards: tiles are enumerated in deterministic grid order and
// dealt round-robin, so the k shards of one layout partition the
// triangle exactly. Use with PairwiseShard; Pairwise (which returns the
// complete matrix) only accepts the trivial 0-of-1 layout.
func WithShard(index, count int) PairwiseOpt {
	return func(c *pairwiseCfg) {
		if count < 1 || index < 0 || index >= count {
			c.fail("core: invalid shard %d of %d (want 0 <= index < count)", index, count)
			return
		}
		c.shardIdx, c.shardCnt = index, count
	}
}

// WithPairBuilderFactory selects the stream-safe signature path:
// signatures are built with signature.BuildSequenceParallel, bag i by a
// builder seeded with randx.SplitSeed(seed, i). The result is a pure
// function of (factory, seed, seq) — independent of worker count and,
// crucially, identical on every shard of a multi-process run. Exactly
// one of WithPairBuilderFactory and WithPairBuilder must be given.
func WithPairBuilderFactory(f signature.BuilderFactory, seed int64) PairwiseOpt {
	return func(c *pairwiseCfg) {
		if f == nil {
			c.fail("core: pairwise builder factory must be non-nil")
			return
		}
		c.factory, c.factorySeed = f, seed
	}
}

// WithPairBuilder selects the legacy stateful-builder path: signatures
// are built sequentially in bag order by the one shared builder, whose
// RNG draw order is part of the reproducibility contract (this is what
// the seed-era PairwiseEMD did). Prefer WithPairBuilderFactory for new
// code; a stateful builder ties the matrix to sequential build order and
// cannot parallelize signature construction.
func WithPairBuilder(b signature.Builder) PairwiseOpt {
	return func(c *pairwiseCfg) {
		if b == nil {
			c.fail("core: pairwise builder must be non-nil")
			return
		}
		c.builder = b
	}
}

// WithPairGround sets the EMD ground distance; nil (the default) selects
// Euclidean with its exact 1-D fast path.
func WithPairGround(g emd.Ground) PairwiseOpt {
	return func(c *pairwiseCfg) { c.ground = g }
}

// WithPairRawMass keeps raw signature masses instead of normalizing to
// unit total, enabling the partial-matching EMD between bags of
// different sizes.
func WithPairRawMass(raw bool) PairwiseOpt {
	return func(c *pairwiseCfg) { c.rawMass = raw }
}

// WithPairEMDLargeThreshold sets the signature size at which every
// worker's EMD solver switches to the block-pricing large-signature
// path: 0 (the default) selects emd.DefaultLargeThreshold, negative
// pins the classic solver. Both paths compute the same optimal EMD to
// rounding, but degenerate instances may settle on bases whose costs
// differ in the last bits, so all shards of one sharded run must use
// the same threshold for the merged matrix to be bit-identical to a
// single-process run.
func WithPairEMDLargeThreshold(k int) PairwiseOpt {
	return func(c *pairwiseCfg) { c.largeK = k }
}

// WithPairEMDCostCache sizes the ground-cost cache each worker solver
// holds: a tile revisits its ≤2T resident signatures O(T) times, so
// cached cost rows turn most of a tile's ground-distance work into
// lookups (with stable-support builders — histogram, grid — a single
// cached matrix serves the whole tile). 0 (the default) selects
// emd.DefaultCostCacheSlots, a positive value is the per-worker slot
// count, and a negative value disables caching. The cache is
// bit-transparent — the matrix is identical with caching on or off —
// so unlike the large threshold it does not have to agree across the
// shards of a sharded run.
func WithPairEMDCostCache(n int) PairwiseOpt {
	return func(c *pairwiseCfg) { c.cacheSlots = n }
}

func resolvePairwise(opts []PairwiseOpt) (pairwiseCfg, error) {
	cfg := pairwiseCfg{shardCnt: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return cfg, cfg.err
	}
	if cfg.builder == nil && cfg.factory == nil {
		return cfg, fmt.Errorf("core: pairwise needs WithPairBuilder or WithPairBuilderFactory")
	}
	if cfg.builder != nil && cfg.factory != nil {
		return cfg, fmt.Errorf("core: WithPairBuilder and WithPairBuilderFactory are mutually exclusive")
	}
	// cfg.tile == 0 stays 0 here: the automatic tile size depends on n,
	// which the call sites resolve once the signatures exist.
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	return cfg, nil
}

// tileRef addresses one tile of the upper-triangle grid: tile rows
// [a·T, min((a+1)·T, n)) × tile cols [b·T, …), with a <= b.
type tileRef struct{ a, b int }

// tileGrid returns the number of tile rows/cols for n items at tile
// size t.
func tileGrid(n, t int) int {
	if n == 0 {
		return 0
	}
	return (n + t - 1) / t
}

// tileID is the canonical id of tile (a, b) in an nt×nt grid. Ids are
// what PartialMatrix carries across processes, so they must be stable
// for a given (n, tileSize).
func tileID(a, b, nt int) int { return a*nt + b }

// shardTiles enumerates the upper-triangle tiles of the grid in
// deterministic order (row-major over a <= b) and keeps every
// shardCnt-th one starting at shardIdx — the round-robin deal that
// balances diagonal (half) tiles and full tiles across shards.
func shardTiles(n, tile, shardIdx, shardCnt int) []tileRef {
	nt := tileGrid(n, tile)
	var tiles []tileRef
	rank := 0
	for a := 0; a < nt; a++ {
		for b := a; b < nt; b++ {
			if rank%shardCnt == shardIdx {
				tiles = append(tiles, tileRef{a, b})
			}
			rank++
		}
	}
	return tiles
}

// pairwiseSignatures builds (and normalizes, unless rawMass) one
// signature per bag via the configured path.
func pairwiseSignatures(seq bag.Sequence, cfg *pairwiseCfg) ([]signature.Signature, error) {
	var sigs []signature.Signature
	var err error
	if cfg.factory != nil {
		sigs, err = signature.BuildSequenceParallel(cfg.factory, cfg.factorySeed, seq, cfg.workers)
	} else {
		sigs, err = signature.BuildSequence(cfg.builder, seq)
	}
	if err != nil {
		return nil, err
	}
	if !cfg.rawMass {
		for i := range sigs {
			sigs[i] = sigs[i].Normalized()
		}
	}
	return sigs, nil
}

// packedTileLen returns the number of upper-triangle cells in tile tl.
func packedTileLen(n, tile int, tl tileRef) int {
	iLo, iHi := tl.a*tile, min((tl.a+1)*tile, n)
	jHi := min((tl.b+1)*tile, n)
	if tl.a != tl.b {
		return (iHi - iLo) * (jHi - tl.b*tile)
	}
	ln := 0
	for i := iLo; i < iHi; i++ {
		ln += jHi - (i + 1)
	}
	return ln
}

// computeTiles computes the upper-triangle cells of every tile in
// tiles. Exactly one of the two destinations is used: with flat != nil
// (the full-matrix path) cells land at flat[i*n+j]; otherwise (the
// shard path) each tile is written to its own packed buffer in
// packed[ti] — a shard never allocates the full n² matrix, only the
// O(n²/k) cells it owns.
//
// Workers claim tiles with an atomic counter; each owns a Solver
// prewarmed for the largest signature. The first error cancels the
// outstanding tiles: workers re-check the failure flag before every
// pair, so a failing ground distance stops the sweep promptly instead
// of draining the whole triangle.
//
// Every signature is validated ONCE up front (n checks instead of the
// 2(n−1) per-pair re-validations the flat queue paid), which lets the
// inner loop use the solver's validated entry point.
func computeTiles(sigs []signature.Signature, flat []float64, packed [][]float64, tiles []tileRef, cfg *pairwiseCfg) error {
	n := len(sigs)
	maxLen := 0
	for i, s := range sigs {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("core: signature %d: %w", i, err)
		}
		if d := s.Dim(); d != sigs[0].Dim() {
			return fmt.Errorf("core: signature %d is %d-D but signature 0 is %d-D", i, d, sigs[0].Dim())
		}
		if l := s.Len(); l > maxLen {
			maxLen = l
		}
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
	)
	sweep := func(sv *emd.Solver) {
		for {
			ti := int(next.Add(1)) - 1
			if ti >= len(tiles) || failed.Load() {
				return
			}
			tl := tiles[ti]
			var dst []float64
			k := 0
			if flat == nil {
				dst = make([]float64, packedTileLen(n, cfg.tile, tl))
				packed[ti] = dst
			}
			iLo, iHi := tl.a*cfg.tile, min((tl.a+1)*cfg.tile, n)
			jHi := min((tl.b+1)*cfg.tile, n)
			for i := iLo; i < iHi; i++ {
				jLo := tl.b * cfg.tile
				if tl.a == tl.b {
					jLo = i + 1 // diagonal tile: upper cells only
				}
				for j := jLo; j < jHi; j++ {
					if failed.Load() {
						return
					}
					dist, err := sv.DistanceValidated(sigs[i], sigs[j], cfg.ground)
					if err != nil {
						errOnce.Do(func() {
							firstErr = fmt.Errorf("core: EMD(%d,%d): %w", i, j, err)
						})
						failed.Store(true)
						return
					}
					if flat != nil {
						flat[i*n+j] = dist
					} else {
						dst[k] = dist
						k++
					}
				}
			}
		}
	}

	// Each worker gets its own solver and (unless disabled) its own
	// tile-local ground-cost cache: a tile revisits its ≤2T resident
	// signatures O(T) times, so cached cost rows serve most of its solves.
	// The cache is prewarmed for the corpus dimensionality so the sweep
	// stays allocation-free after warm-up.
	dim := 0
	if n > 0 {
		dim = sigs[0].Dim()
	}
	newWorkerSolver := func() *emd.Solver {
		sv := emd.NewSolver(emd.WithLargeThreshold(cfg.largeK))
		if cfg.cacheSlots >= 0 {
			cc := emd.NewCostCache(cfg.cacheSlots)
			cc.Prewarm(maxLen, dim)
			sv.SetCostCache(cc)
		}
		sv.Prewarm(maxLen)
		return sv
	}
	workers := cfg.workers
	if workers > len(tiles) {
		workers = len(tiles)
	}
	if workers <= 1 {
		sweep(newWorkerSolver())
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				sweep(newWorkerSolver())
			}()
		}
		wg.Wait()
	}
	return firstErr
}

// Pairwise computes the full symmetric EMD matrix between all bags of
// seq with the tiled engine. See the package comment of this file for
// the determinism contract; WithShard layouts other than the trivial
// 0-of-1 must go through PairwiseShard + MergePairwise.
func Pairwise(seq bag.Sequence, opts ...PairwiseOpt) (*PairwiseMatrix, error) {
	cfg, err := resolvePairwise(opts)
	if err != nil {
		return nil, err
	}
	if cfg.shardCnt != 1 {
		return nil, fmt.Errorf("core: Pairwise computes the complete matrix; use PairwiseShard for shard %d of %d", cfg.shardIdx, cfg.shardCnt)
	}
	sigs, err := pairwiseSignatures(seq, &cfg)
	if err != nil {
		return nil, err
	}
	n := len(sigs)
	if cfg.tile == 0 {
		cfg.tile = autoTileSize(n)
	}
	m := newPairwiseMatrix(n)
	if err := computeTiles(sigs, m.data, nil, shardTiles(n, cfg.tile, 0, 1), &cfg); err != nil {
		return nil, err
	}
	// Mirror the upper triangle; the diagonal stays zero.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.data[j*n+i] = m.data[i*n+j]
		}
	}
	return m, nil
}

// PairwiseShard computes one shard's tiles (selected with WithShard) and
// returns them as a mergeable PartialMatrix. Every shard builds all n
// signatures — O(n) work, deterministic across shards via the factory's
// per-bag split seeds — while the O(n²) distance work is what the shard
// layout divides. Run the k shards anywhere (goroutines, processes,
// hosts), then reassemble with MergePairwise.
func PairwiseShard(seq bag.Sequence, opts ...PairwiseOpt) (*PartialMatrix, error) {
	cfg, err := resolvePairwise(opts)
	if err != nil {
		return nil, err
	}
	sigs, err := pairwiseSignatures(seq, &cfg)
	if err != nil {
		return nil, err
	}
	n := len(sigs)
	if cfg.tile == 0 {
		cfg.tile = autoTileSize(n)
	}
	tiles := shardTiles(n, cfg.tile, cfg.shardIdx, cfg.shardCnt)
	// The shard computes straight into per-tile packed buffers: its
	// memory is O(n²/shardCount), never the full matrix.
	packed := make([][]float64, len(tiles))
	if err := computeTiles(sigs, nil, packed, tiles, &cfg); err != nil {
		return nil, err
	}

	nt := tileGrid(n, cfg.tile)
	p := &PartialMatrix{
		N:          n,
		TileSize:   cfg.tile,
		ShardIndex: cfg.shardIdx,
		ShardCount: cfg.shardCnt,
		TileIDs:    make([]int, 0, len(tiles)),
		Values:     packed,
	}
	for _, tl := range tiles {
		p.TileIDs = append(p.TileIDs, tileID(tl.a, tl.b, nt))
	}
	return p, nil
}

// MergePairwise reassembles the full matrix from the partials of every
// shard of one layout. It validates that the partials agree on (n, tile
// size) and that their tiles cover the upper-triangle grid exactly once
// — a missing or duplicated tile is an error, not a silent zero block.
// The merged matrix is bit-identical to a single-process Pairwise run
// with the same signature configuration.
func MergePairwise(parts ...*PartialMatrix) (*PairwiseMatrix, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: MergePairwise needs at least one partial")
	}
	n, tile := parts[0].N, parts[0].TileSize
	if n < 0 || tile < 1 {
		return nil, fmt.Errorf("core: invalid partial header (n=%d, tile=%d)", n, tile)
	}
	nt := tileGrid(n, tile)
	m := newPairwiseMatrix(n)
	seen := make(map[int]bool, nt*(nt+1)/2)
	for pi, p := range parts {
		if p.N != n || p.TileSize != tile {
			return nil, fmt.Errorf("core: partial %d has layout (n=%d, tile=%d), want (n=%d, tile=%d)", pi, p.N, p.TileSize, n, tile)
		}
		if len(p.TileIDs) != len(p.Values) {
			return nil, fmt.Errorf("core: partial %d carries %d tile ids but %d value blocks", pi, len(p.TileIDs), len(p.Values))
		}
		for ti, id := range p.TileIDs {
			if nt == 0 {
				// n=0 yields an empty grid; a partial carrying tiles anyway
				// is corrupt, and id/nt below would divide by zero.
				return nil, fmt.Errorf("core: partial %d declares n=0 but carries tile %d", pi, id)
			}
			a, b := id/nt, id%nt
			if id < 0 || a > b || b >= nt {
				return nil, fmt.Errorf("core: partial %d: tile id %d is outside the %d×%d upper-triangle grid", pi, id, nt, nt)
			}
			if seen[id] {
				return nil, fmt.Errorf("core: tile %d covered twice (shards must partition the grid)", id)
			}
			seen[id] = true
			if err := unpackTile(m.data, n, tile, tileRef{a, b}, p.Values[ti]); err != nil {
				return nil, fmt.Errorf("core: partial %d tile %d: %w", pi, id, err)
			}
		}
	}
	if want := nt * (nt + 1) / 2; len(seen) != want {
		for a := 0; a < nt; a++ {
			for b := a; b < nt; b++ {
				if !seen[tileID(a, b, nt)] {
					return nil, fmt.Errorf("core: tile %d missing (%d of %d covered); run every shard of the layout", tileID(a, b, nt), len(seen), want)
				}
			}
		}
	}
	// Mirror the upper triangle into the lower one.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.data[j*n+i] = m.data[i*n+j]
		}
	}
	return m, nil
}

// unpackTile writes a packed tile back into the flat n×n buffer,
// inverting packTile.
func unpackTile(data []float64, n, tile int, tl tileRef, vals []float64) error {
	iLo, iHi := tl.a*tile, min((tl.a+1)*tile, n)
	jHi := min((tl.b+1)*tile, n)
	k := 0
	for i := iLo; i < iHi; i++ {
		jLo := tl.b * tile
		if tl.a == tl.b {
			jLo = i + 1
		}
		w := jHi - jLo
		if k+w > len(vals) {
			return fmt.Errorf("packed tile too short: %d values", len(vals))
		}
		copy(data[i*n+jLo:i*n+jHi], vals[k:k+w])
		k += w
	}
	if k != len(vals) {
		return fmt.Errorf("packed tile has %d values, want %d", len(vals), k)
	}
	return nil
}
