// The pluggable statistic layer: per-inspection change-point scores as
// named, registered values instead of a hardwired enum.
//
// The paper's Eq. 16/17 scores are two points in a family — any pure
// function of the window's log-distance matrix and the (resampled)
// signature weights is a valid per-inspection statistic, and it
// automatically inherits the whole pipeline: the incremental log-EMD
// window, the Bayesian bootstrap (which only re-mixes weights), the
// κ_t interval-overlap alarm, and snapshot/restore. This file defines
// the seam once: a Statistic is a named object that yields the
// bootstrap.ScoreFunc closure for a window, every layer above
// identifies it by its stable NAME (config validation, the engine
// snapshot fingerprint, the CLI flag, the option surface), and a
// process-wide registry maps names to implementations. The historical
// ScoreType enum and Config.Score survive as shims that resolve to
// registry names, bit-identical to the pre-registry behaviour.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/infoest"
)

// Statistic is a named per-inspection change-point score. Implementations
// must be stateless values (they are shared across detectors and
// goroutines); per-window state lives in the closure Bind returns.
type Statistic interface {
	// Name is the stable registry key ("kl", "lr", …). It identifies the
	// statistic in Config validation, the engine snapshot fingerprint,
	// the bagcpd -score flag and the option surface, so it must never
	// change once released.
	Name() string
	// Validate checks that cfg satisfies the statistic's structural
	// requirements (e.g. the LR score needs TauPrime >= 2). It must not
	// retain cfg.
	Validate(cfg Config) error
	// Bind returns the replicate score closure over win. The detector
	// rebuilds *win in place before every inspection, and the bootstrap
	// calls the closure once per replicate with freshly drawn weights —
	// the closure must re-read *win on every call and be safe for
	// concurrent calls (the bootstrap fans replicates across workers).
	Bind(win *infoest.Window) bootstrap.ScoreFunc
}

// BagPreprocessor is an optional Statistic extension: a statistic that
// implements it transforms every incoming bag BEFORE signature
// construction. This is how data-space normalizations (the compositional
// CLR map) ride the statistic seam without touching the builder layer.
// The transform must be a pure, deterministic function of the bag.
type BagPreprocessor interface {
	PreprocessBag(b bag.Bag) (bag.Bag, error)
}

var (
	statMu  sync.RWMutex
	statReg = map[string]Statistic{
		"kl":  klStatistic{},
		"lr":  lrStatistic{},
		"clr": clrStatistic{},
	}
)

// RegisterStatistic adds a custom statistic to the process-wide registry
// under s.Name(). Names must be non-empty, contain no whitespace or
// commas (they appear in CSV output and comma-joined error messages),
// and not collide with a registered statistic. Registration is
// typically done from an init function; the statistic then works
// everywhere a built-in does — Config.Statistic, WithStatistic, the
// bagcpd -score flag — and its NAME joins the snapshot fingerprint, so
// both ends of a snapshot hand-off must register it.
func RegisterStatistic(s Statistic) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("core: statistic name must be non-empty")
	}
	if strings.ContainsAny(name, " \t\n\r,") {
		return fmt.Errorf("core: statistic name %q must not contain whitespace or commas", name)
	}
	statMu.Lock()
	defer statMu.Unlock()
	if _, dup := statReg[name]; dup {
		return fmt.Errorf("core: statistic %q is already registered", name)
	}
	statReg[name] = s
	return nil
}

// LookupStatistic returns the registered statistic for name.
func LookupStatistic(name string) (Statistic, bool) {
	statMu.RLock()
	defer statMu.RUnlock()
	s, ok := statReg[name]
	return s, ok
}

// StatisticNames returns every registered statistic name, sorted. Error
// messages and CLI usage text derive the valid set from it, so the
// listed names can never go stale.
func StatisticNames() []string {
	statMu.RLock()
	names := make([]string, 0, len(statReg))
	for name := range statReg {
		names = append(names, name)
	}
	statMu.RUnlock()
	sort.Strings(names)
	return names
}

// klStatistic is the symmetrized-KL score of Eq. 17: conservative and
// robust, less sensitive to minor changes. Registered as "kl".
type klStatistic struct{}

func (klStatistic) Name() string { return "kl" }

func (klStatistic) Validate(Config) error { return nil }

func (klStatistic) Bind(win *infoest.Window) bootstrap.ScoreFunc {
	return func(gRef, gTest []float64) float64 {
		return infoest.ScoreKL(*win, gRef, gTest)
	}
}

// lrStatistic is the log-likelihood-ratio score of Eq. 16: sensitive to
// small changes but noisier. Registered as "lr".
type lrStatistic struct{}

func (lrStatistic) Name() string { return "lr" }

func (lrStatistic) Validate(cfg Config) error {
	if cfg.TauPrime < 2 {
		return fmt.Errorf("core: statistic %q (ScoreLR, Eq. 16) requires TauPrime >= 2, got %d", "lr", cfg.TauPrime)
	}
	return nil
}

func (lrStatistic) Bind(win *infoest.Window) bootstrap.ScoreFunc {
	return func(gRef, gTest []float64) float64 {
		return infoest.ScoreLR(*win, gRef, gTest)
	}
}

// clrZeroFloor replaces zero components before the CLR log transform
// (the standard multiplicative zero-replacement for compositional data,
// taken at a value far below any real share). Deterministic, so two
// detectors always agree on the transformed bags.
const clrZeroFloor = 1e-12

// clrStatistic is the compositional statistic for share-of-total bags,
// registered as "clr": every bag point is mapped through the centered
// log-ratio transform of Aitchison geometry,
//
//	clr(p)_j = log p_j − (1/d) Σ_k log p_k,
//
// before signature construction, and the window is then scored with the
// symmetrized-KL estimator (Eq. 17) exactly like "kl". Points whose
// components are shares of a total (market shares, traffic mix, budget
// composition) live on the simplex, where the Euclidean EMD ground
// distance over-weights changes in large components; the CLR map sends
// compositions to R^d with the simplex geometry flattened out, and it is
// scale-invariant — raw counts and normalized shares transform to the
// same point, so callers need not normalize first. Zero components are
// floored at clrZeroFloor (multiplicative zero replacement); negative
// components are rejected, and points need at least 2 components (the
// CLR of a 1-D composition is identically zero).
type clrStatistic struct{ klStatistic }

func (clrStatistic) Name() string { return "clr" }

func (clrStatistic) PreprocessBag(b bag.Bag) (bag.Bag, error) {
	if b.Len() == 0 {
		return b, nil
	}
	d := b.Dim()
	if d < 2 {
		return bag.Bag{}, fmt.Errorf("core: statistic %q needs points with >= 2 components (compositions), got dimension %d", "clr", d)
	}
	pts := make([][]float64, len(b.Points))
	for i, p := range b.Points {
		out := make([]float64, d)
		mean := 0.0
		for j, v := range p {
			if v < 0 {
				return bag.Bag{}, fmt.Errorf("core: statistic %q: point %d component %d is negative (%g); compositions must be non-negative", "clr", i, j, v)
			}
			if v < clrZeroFloor {
				v = clrZeroFloor
			}
			out[j] = math.Log(v)
			mean += out[j]
		}
		mean /= float64(d)
		for j := range out {
			out[j] -= mean
		}
		pts[i] = out
	}
	return bag.Bag{T: b.T, Points: pts}, nil
}
