package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bag"
	"repro/internal/signature"
)

// TestSnapshotSplitExtractRestoreRoundTrip is the per-stream snapshot
// surgery contract, for every builder factory: a full envelope is
// carved up with ExtractStreams (migration) and SplitByStream (one
// envelope per stream), the pieces are shipped through JSON and merged
// onto OTHER engines with RestoreStreams, and every stream's remaining
// points are bit-identical to an uninterrupted reference run.
func TestSnapshotSplitExtractRestoreRoundTrip(t *testing.T) {
	ids := []string{"s-0", "s-1", "s-2"}
	const steps, cut = 14, 8

	for fname, fc := range snapshotFactories() {
		t.Run(fname, func(t *testing.T) {
			bags := make(map[string][]bag.Bag, len(ids))
			for _, id := range ids {
				bags[id] = fc.bags(id, steps)
			}
			batchAt := func(eng *Engine, step int, ids ...string) map[string]*Point {
				var batch []StreamBag
				for _, id := range ids {
					batch = append(batch, StreamBag{StreamID: id, Bag: bags[id][step]})
				}
				results, err := eng.PushBatch(batch)
				if err != nil {
					t.Fatal(err)
				}
				got := make(map[string]*Point, len(results))
				for _, res := range results {
					got[res.StreamID] = res.Point
				}
				return got
			}

			// Uninterrupted reference run.
			ref := newTestEngine(t, fc.factory, 2)
			refTail := make(map[string][]*Point)
			for step := 0; step < steps; step++ {
				points := batchAt(ref, step, ids...)
				if step >= cut {
					for id, p := range points {
						refTail[id] = append(refTail[id], p)
					}
				}
			}

			// Donor engine: run to the cut, snapshot, carve the envelope.
			donor := newTestEngine(t, fc.factory, 2)
			for step := 0; step < cut; step++ {
				batchAt(donor, step, ids...)
			}
			snap, err := donor.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			moved, err := snap.ExtractStreams("s-1", "s-2")
			if err != nil {
				t.Fatal(err)
			}
			if !moved.Partial || len(moved.Streams) != 2 {
				t.Fatalf("extracted envelope: partial=%v streams=%d", moved.Partial, len(moved.Streams))
			}
			if len(snap.Streams) != 1 || snap.Streams[0].ID != "s-0" {
				t.Fatalf("donor envelope after extraction: %+v", streamIDsOf(snap))
			}

			// Ship both halves through JSON like the HTTP tier does.
			moved = jsonRoundTrip(t, moved)
			snap = jsonRoundTrip(t, snap)

			// s-1 migrates alone via SplitByStream; s-2 via the remaining
			// extracted envelope. Both merge into engine B, which already
			// holds other live state (stream "resident") — RestoreStreams
			// must not disturb it.
			singles := moved.SplitByStream()
			if len(singles) != 2 {
				t.Fatalf("SplitByStream: %d envelopes, want 2", len(singles))
			}
			for i, env := range singles {
				if len(env.Streams) != 1 || !env.Partial {
					t.Fatalf("split envelope %d: partial=%v streams=%+v", i, env.Partial, streamIDsOf(&env))
				}
			}
			engB := newTestEngine(t, fc.factory, 2)
			if _, err := engB.PushBatch([]StreamBag{{StreamID: "resident", Bag: fc.bags("resident", 1)[0]}}); err != nil {
				t.Fatal(err)
			}
			for i := range singles {
				if err := engB.RestoreStreams(&singles[i]); err != nil {
					t.Fatal(err)
				}
			}
			if _, open := engB.Get("resident"); !open {
				t.Fatal("merge restore closed an unrelated live stream")
			}

			// s-0 stays home: the donor's own engine keeps running it.
			got := make(map[string][]*Point)
			for step := cut; step < steps; step++ {
				for id, p := range batchAt(donor, step, "s-0") {
					got[id] = append(got[id], p)
				}
				for id, p := range batchAt(engB, step, "s-1", "s-2") {
					got[id] = append(got[id], p)
				}
			}
			for _, id := range ids {
				comparePointSeries(t, fmt.Sprintf("%s stream=%s", fname, id), got[id], refTail[id])
			}
		})
	}
}

func streamIDsOf(s *EngineSnapshot) []string {
	ids := make([]string, len(s.Streams))
	for i := range s.Streams {
		ids[i] = s.Streams[i].ID
	}
	return ids
}

func jsonRoundTrip(t *testing.T, s *EngineSnapshot) *EngineSnapshot {
	t.Helper()
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var out EngineSnapshot
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestSnapshotSplitExtractErrors covers the surgery error paths: unknown
// and double extraction, duplicate ids, merge conflicts, fingerprint
// mismatch on the receiving engine, and rollback on a failed merge.
func TestSnapshotSplitExtractErrors(t *testing.T) {
	factory := signature.HistogramFactory(-6, 9, 24)
	eng := newTestEngine(t, factory, 1)
	for _, id := range []string{"a", "b", "c"} {
		for _, b := range streamBags(id, 8) {
			if _, err := eng.PushBatch([]StreamBag{{StreamID: id, Bag: b}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("extract-unknown", func(t *testing.T) {
		env := *snap
		env.Streams = append([]StreamSnapshot(nil), snap.Streams...)
		if _, err := env.ExtractStreams("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
			t.Fatalf("want unknown-stream error, got %v", err)
		}
		if len(env.Streams) != 3 {
			t.Fatal("failed extraction mutated the envelope")
		}
	})
	t.Run("extract-duplicate-arg", func(t *testing.T) {
		env := *snap
		env.Streams = append([]StreamSnapshot(nil), snap.Streams...)
		if _, err := env.ExtractStreams("a", "a"); err == nil {
			t.Fatal("want duplicate-id error")
		}
	})
	t.Run("extract-twice", func(t *testing.T) {
		env := *snap
		env.Streams = append([]StreamSnapshot(nil), snap.Streams...)
		if _, err := env.ExtractStreams("a"); err != nil {
			t.Fatal(err)
		}
		if _, err := env.ExtractStreams("a"); err == nil {
			t.Fatal("second extraction of the same stream must fail")
		}
	})
	t.Run("snapshot-streams-unknown", func(t *testing.T) {
		if _, err := eng.SnapshotStreams("a", "ghost"); err == nil {
			t.Fatal("want unknown-stream error")
		}
		if _, err := eng.SnapshotStreams("a", "a"); err == nil {
			t.Fatal("want duplicate-id error")
		}
		part, err := eng.SnapshotStreams("a")
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial || len(part.Streams) != 1 || part.Streams[0].ID != "a" {
			t.Fatalf("partial envelope: %+v", streamIDsOf(part))
		}
	})
	t.Run("restore-refuses-partial", func(t *testing.T) {
		part, err := eng.SnapshotStreams("a")
		if err != nil {
			t.Fatal(err)
		}
		target := newTestEngine(t, factory, 1)
		if err := target.Restore(part); err == nil || !strings.Contains(err.Error(), "partial") {
			t.Fatalf("Restore must refuse partial envelopes, got %v", err)
		}
	})
	t.Run("merge-conflict", func(t *testing.T) {
		part, err := eng.SnapshotStreams("a")
		if err != nil {
			t.Fatal(err)
		}
		target := newTestEngine(t, factory, 1)
		if _, err := target.Open("a"); err != nil {
			t.Fatal(err)
		}
		if err := target.RestoreStreams(part); err == nil || !strings.Contains(err.Error(), "already open") {
			t.Fatalf("want already-open conflict, got %v", err)
		}
	})
	t.Run("merge-fingerprint-mismatch", func(t *testing.T) {
		part, err := eng.SnapshotStreams("a")
		if err != nil {
			t.Fatal(err)
		}
		bad := *part
		bad.Tau++
		target := newTestEngine(t, factory, 1)
		if _, err := target.Open("survivor"); err != nil {
			t.Fatal(err)
		}
		if err := target.RestoreStreams(&bad); err == nil {
			t.Fatal("want fingerprint mismatch error")
		}
		if _, open := target.Get("survivor"); !open || target.Len() != 1 {
			t.Fatal("refused merge must leave the receiving engine untouched")
		}
	})
	t.Run("merge-names-stream-twice", func(t *testing.T) {
		part, err := eng.SnapshotStreams("a")
		if err != nil {
			t.Fatal(err)
		}
		bad := *part
		bad.Streams = append(append([]StreamSnapshot(nil), part.Streams...), part.Streams...)
		if err := newTestEngine(t, factory, 1).RestoreStreams(&bad); err == nil {
			t.Fatal("want duplicate-stream error")
		}
	})
	t.Run("merge-rollback-on-failure", func(t *testing.T) {
		part, err := eng.SnapshotStreams("a", "b")
		if err != nil {
			t.Fatal(err)
		}
		bad := jsonRoundTrip(t, part)
		// Corrupt the SECOND stream's matrix so the first opens fine and
		// the failure must roll it back.
		det := bad.Streams[1].Detector
		det.LogD = det.LogD[:len(det.LogD)-1]
		bad.Streams[1].Detector = det
		target := newTestEngine(t, factory, 1)
		if _, err := target.Open("survivor"); err != nil {
			t.Fatal(err)
		}
		if err := target.RestoreStreams(bad); err == nil {
			t.Fatal("want matrix shape error")
		}
		if target.Len() != 1 {
			t.Fatalf("failed merge left %d streams open, want only the survivor", target.Len())
		}
		if _, open := target.Get("survivor"); !open {
			t.Fatal("failed merge closed the pre-existing stream")
		}
	})
}

// TestSnapshotDeltaDirtyStreamsOnly is the delta-snapshot acceptance
// property: after M streams are touched past a mark, the delta envelope
// carries exactly those M stream states regardless of how many streams
// the engine holds, and applying it to a warm standby converges the
// standby bit-identically.
func TestSnapshotDeltaDirtyStreamsOnly(t *testing.T) {
	factory := signature.HistogramFactory(-6, 9, 24)
	const total, dirty = 40, 3
	eng := newTestEngine(t, factory, 4)
	allIDs := make([]string, total)
	for i := range allIDs {
		allIDs[i] = fmt.Sprintf("s-%02d", i)
	}
	push := func(e *Engine, step int, ids ...string) {
		var batch []StreamBag
		for _, id := range ids {
			batch = append(batch, StreamBag{StreamID: id, Bag: streamBags(id, step+1)[step]})
		}
		if _, err := e.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 7; step++ {
		push(eng, step, allIDs...)
	}

	// Full snapshot seeds the standby and records the high-water mark.
	full, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("full snapshot must not be partial")
	}
	standby := newTestEngine(t, factory, 4)
	if err := standby.Restore(full); err != nil {
		t.Fatal(err)
	}

	// Touch only M streams, then cut a delta since the full mark.
	touched := allIDs[:dirty]
	push(eng, 7, touched...)
	delta, err := eng.SnapshotDelta(full.Mark)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Partial {
		t.Fatal("delta snapshot must be partial")
	}
	if len(delta.Streams) != dirty {
		t.Fatalf("delta has %d streams, want exactly the %d dirty ones (O(M) independent of %d total)",
			len(delta.Streams), dirty, total)
	}
	for i, id := range touched {
		if delta.Streams[i].ID != id {
			t.Fatalf("delta stream %d = %q, want %q", i, delta.Streams[i].ID, id)
		}
	}

	// An immediately following delta from the new mark is empty.
	empty, err := eng.SnapshotDelta(delta.Mark)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Streams) != 0 {
		t.Fatalf("delta after quiesce has %d streams, want 0", len(empty.Streams))
	}

	// Apply the delta to the standby (close-then-merge per dirty stream)
	// and verify both engines score the next step identically.
	for _, ss := range delta.Streams {
		if st, ok := standby.Get(ss.ID); ok {
			st.Close()
		}
	}
	if err := standby.RestoreStreams(delta); err != nil {
		t.Fatal(err)
	}
	for step := 8; step < 10; step++ {
		var batch []StreamBag
		for _, id := range touched {
			batch = append(batch, StreamBag{StreamID: id, Bag: streamBags(id, step+1)[step]})
		}
		want, err := eng.PushBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := standby.PushBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			wp, gp := want[i].Point, got[i].Point
			if (wp == nil) != (gp == nil) {
				t.Fatalf("step %d row %d: nil mismatch", step, i)
			}
			if wp != nil && !pointsEqual(*wp, *gp) {
				t.Fatalf("step %d row %d: standby %+v != primary %+v", step, i, *gp, *wp)
			}
		}
	}
}
