// Snapshot/restore: full detector and engine state as a versioned,
// JSON-serializable envelope.
//
// The detector is an online procedure, so a long-lived service must be
// able to checkpoint a stream's state and resume it elsewhere — that is
// how streams rebalance across engine instances. The contract is strict
// bit-identity: a restored detector's future Points (scores AND bootstrap
// intervals) are exactly those the uninterrupted detector would have
// produced, because the snapshot captures everything the output depends
// on — the signature window, the rolling log-EMD matrix, the interval
// history, the bootstrap shard stream positions, and (for randomized
// builders) the builder's RNG position. Everything else in a Detector is
// derived or scratch.
//
// What the snapshot does NOT carry is configuration identity: the
// builder factory and ground distance are code, not data. A snapshot can
// only be restored onto an engine constructed with the same Template,
// Factory and Seed; the envelope records a parameter fingerprint so
// mismatches fail loudly instead of producing silently different scores.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bootstrap"
	"repro/internal/randx"
	"repro/internal/signature"
)

// SnapshotVersion is the envelope schema version. Restore refuses other
// versions: the snapshot encodes internal stream positions whose meaning
// is tied to the code that wrote them.
//
// v2 added the EMD large-path threshold (emd_large_k) to the
// fingerprint AND changed what a default configuration computes:
// detectors now auto-route signatures at or above
// emd.DefaultLargeThreshold through the block-pricing solver, whose
// optimal cost can differ from the classic path's in the last bits on
// degenerate instances. A v1 envelope restored here could therefore
// diverge from its source run without any fingerprint field
// disagreeing, so v1 is refused outright — a loud re-run beats a
// silent drift.
//
// v3 changed the large path's pricing from per-row candidate lists to
// per-block candidate queues with a cyclic drain cursor. The pivot
// ORDER differs from v2, so degenerate K≥128 instances can settle on a
// different equally-optimal basis and produce different last bits under
// an unchanged fingerprint — same reasoning as v2, so v2 envelopes are
// refused. Note what did NOT join the fingerprint: EMDCostCacheSlots.
// The ground-cost cache is bit-transparent (stored costs are the exact
// floats the ground returned, replayed through the identical comparison
// sequence), so cache configuration cannot change any computed value
// and snapshots may freely cross cache settings.
//
// v4 replaced the fingerprint's score field with the statistic NAME:
// the detector's per-inspection score is now a registry of named
// Statistic implementations (see statistic.go) of which the old
// ScoreKL/ScoreLR enum values are two, so an int can no longer identify
// which statistic produced the snapshotted intervals — a v4 reader
// handed a v3 envelope would have to GUESS the mapping for any engine
// carrying a registered custom statistic, and a wrong guess silently
// scores the restored window with a different statistic. v3 envelopes
// are refused outright (same doctrine as v1/v2): re-run or re-snapshot
// with a v4 writer. The JSON key is "statistic" and the legacy "score"
// key is gone, so a v3 envelope also cannot masquerade as v4 by version
// edits alone without its fingerprint going visibly blank.
const SnapshotVersion = 4

// SignatureState is one window signature in serializable form.
type SignatureState struct {
	Centers [][]float64 `json:"centers"`
	Weights []float64   `json:"weights"`
}

// IntervalState is one inspection time's bootstrap interval, keyed
// explicitly (JSON objects cannot have int keys).
type IntervalState struct {
	T  int     `json:"t"`
	Lo float64 `json:"lo"`
	Up float64 `json:"up"`
	Pt float64 `json:"point"`
}

// DetectorState is the complete serializable state of one Detector.
type DetectorState struct {
	// Count is the number of bags pushed so far.
	Count int `json:"count"`
	// Window holds the retained signatures, oldest first.
	Window []SignatureState `json:"window"`
	// LogD is the rolling log-EMD matrix over the window (row i column j
	// is the clamped log distance between window signatures i and j).
	LogD [][]float64 `json:"log_d"`
	// History holds the recent intervals the κ_t test still consults.
	History []IntervalState `json:"history"`
	// Bootstrap is the position of the detector's persistent bootstrap
	// shard streams.
	Bootstrap bootstrap.StreamState `json:"bootstrap"`
	// BuilderRNG is the builder's RNG position for randomized builders
	// (k-means, k-medoids); nil for stateless builders.
	BuilderRNG *randx.State `json:"builder_rng,omitempty"`
}

// Snapshot captures the detector's complete state. The detector can keep
// running afterwards; the snapshot is a deep copy.
func (d *Detector) Snapshot() (*DetectorState, error) {
	bs, err := d.est.StreamState()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot bootstrap streams: %w", err)
	}
	st := &DetectorState{
		Count:     d.count,
		Window:    make([]SignatureState, len(d.window)),
		LogD:      make([][]float64, len(d.logD)),
		Bootstrap: bs,
	}
	for i, sig := range d.window {
		c := sig.Clone()
		st.Window[i] = SignatureState{Centers: c.Centers, Weights: c.Weights}
	}
	for i, row := range d.logD {
		st.LogD[i] = append([]float64(nil), row...)
	}
	ts := make([]int, 0, len(d.history))
	for t := range d.history {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	for _, t := range ts {
		iv := d.history[t]
		st.History = append(st.History, IntervalState{T: t, Lo: iv.Lo, Up: iv.Up, Pt: iv.Point})
	}
	if snap, ok := d.cfg.Builder.(signature.RNGSnapshotter); ok {
		rs := snap.RNGState()
		st.BuilderRNG = &rs
	}
	return st, nil
}

// RestoreSnapshot rewinds the detector to exactly the state st was
// captured at: window, distance matrix, interval history, bootstrap
// shard streams and builder RNG position. The detector must have been
// constructed with the same configuration (and, for randomized builders,
// a factory-fresh builder on the same seed) as the snapshotted one; from
// here its Points are bit-identical to the uninterrupted detector's.
func (d *Detector) RestoreSnapshot(st *DetectorState) error {
	w := d.WindowSize()
	if len(st.Window) > w {
		return fmt.Errorf("core: snapshot window has %d signatures, detector holds at most %d", len(st.Window), w)
	}
	if len(st.LogD) != len(st.Window) {
		return fmt.Errorf("core: snapshot log-distance matrix has %d rows for %d window signatures", len(st.LogD), len(st.Window))
	}
	for i, row := range st.LogD {
		if len(row) != len(st.Window) {
			return fmt.Errorf("core: snapshot log-distance row %d has %d columns, want %d", i, len(row), len(st.Window))
		}
	}
	if st.Count < len(st.Window) {
		return fmt.Errorf("core: snapshot count %d is smaller than its window (%d signatures)", st.Count, len(st.Window))
	}
	for i, sig := range st.Window {
		s := signature.Signature{Centers: sig.Centers, Weights: sig.Weights}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("core: snapshot window signature %d: %w", i, err)
		}
	}
	snap, stateful := d.cfg.Builder.(signature.RNGSnapshotter)
	if stateful && st.BuilderRNG == nil {
		return fmt.Errorf("core: snapshot lacks builder RNG state but the detector's builder is randomized — snapshot and detector configurations disagree")
	}
	if !stateful && st.BuilderRNG != nil {
		return fmt.Errorf("core: snapshot carries builder RNG state but the detector's builder is stateless — snapshot and detector configurations disagree")
	}

	// All validation passed; from here on mutate in place. Start from the
	// recycled-clean state so leftover buffers are reused, not leaked.
	d.reset(d.cfg.Builder, d.cfg.Seed)
	d.count = st.Count
	for _, sig := range st.Window {
		d.window = append(d.window, signature.Signature{Centers: sig.Centers, Weights: sig.Weights}.Clone())
	}
	for _, row := range st.LogD {
		r := make([]float64, len(row), w)
		copy(r, row)
		d.logD = append(d.logD, r)
	}
	for _, h := range st.History {
		d.history[h.T] = bootstrap.Interval{Lo: h.Lo, Up: h.Up, Point: h.Pt}
	}
	if err := d.est.RestoreStreams(st.Bootstrap); err != nil {
		return err
	}
	if stateful {
		if err := snap.RestoreRNGState(*st.BuilderRNG); err != nil {
			return fmt.Errorf("core: restore builder RNG: %w", err)
		}
	}
	return nil
}

// StreamSnapshot pairs a stream id with its detector state.
type StreamSnapshot struct {
	ID       string        `json:"id"`
	Detector DetectorState `json:"detector"`
}

// EngineSnapshot is the versioned envelope of a whole engine's state:
// one entry per open stream plus the configuration fingerprint restore
// validates against. It is plain data — json.Marshal it to ship engine
// state across processes (Go's JSON float encoding is shortest-exact, so
// the envelope round-trips float64 values bit-for-bit).
type EngineSnapshot struct {
	Version  int   `json:"version"`
	Seed     int64 `json:"seed"`
	Tau      int   `json:"tau"`
	TauPrime int   `json:"tau_prime"`
	// Statistic is the registry NAME of the per-inspection statistic
	// ("kl", "lr", …) — since v4 the statistic's identity in the
	// fingerprint, replacing the v3 "score" int. Both ends of a
	// hand-off must have the named statistic registered.
	Statistic  string  `json:"statistic"`
	Weighting  int     `json:"weighting"`
	RawMass    bool    `json:"raw_mass"`
	LogFloor   float64 `json:"log_floor"`
	Replicates int     `json:"replicates"`
	Alpha      float64 `json:"alpha"`
	EMDLargeK  int     `json:"emd_large_k,omitempty"`
	BuilderTag string  `json:"builder_tag,omitempty"`
	// Mark is the engine's mutation counter at capture time. Feed it back
	// to Engine.SnapshotDelta (or GET /v1/snapshot?since=mark) to get
	// just the streams that changed after this envelope was cut.
	Mark uint64 `json:"mark,omitempty"`
	// Partial marks an envelope that carries a SUBSET of the source
	// engine's streams (a delta snapshot, a migration extract, or a
	// SplitByStream slice). Partial envelopes merge into a live engine
	// via RestoreStreams; Restore refuses them, because treating a
	// subset as the whole state would silently drop every other stream.
	Partial bool             `json:"partial,omitempty"`
	Streams []StreamSnapshot `json:"streams"`
}

// SplitByStream slices the envelope into one single-stream envelope per
// stream, each carrying the full configuration fingerprint (and the
// source Mark) so it can be validated and restored independently — the
// unit of routing when a fleet rebalances streams one at a time. The
// receiver is not modified; the per-stream envelopes share the
// receiver's DetectorState values (treat them as read-only, like the
// envelope itself).
func (s *EngineSnapshot) SplitByStream() []EngineSnapshot {
	out := make([]EngineSnapshot, len(s.Streams))
	for i := range s.Streams {
		env := *s
		env.Partial = true
		env.Streams = []StreamSnapshot{s.Streams[i]}
		out[i] = env
	}
	return out
}

// ExtractStreams removes the named streams from the envelope and
// returns them as a new partial envelope with the same fingerprint —
// the donor half of a migration: what is extracted is no longer in the
// source envelope, so the same stream state can never be restored in
// two places from one envelope. Extraction errors (an id not present —
// including one already extracted — or a duplicate in ids) leave the
// receiver unchanged.
func (s *EngineSnapshot) ExtractStreams(ids ...string) (*EngineSnapshot, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: ExtractStreams requires at least one stream id")
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if want[id] {
			return nil, fmt.Errorf("core: ExtractStreams: duplicate stream id %q", id)
		}
		want[id] = true
	}
	out := *s
	out.Partial = true
	out.Streams = make([]StreamSnapshot, 0, len(ids))
	kept := make([]StreamSnapshot, 0, len(s.Streams))
	for _, ss := range s.Streams {
		if want[ss.ID] {
			out.Streams = append(out.Streams, ss)
			delete(want, ss.ID)
		} else {
			kept = append(kept, ss)
		}
	}
	if len(want) > 0 {
		missing := make([]string, 0, len(want))
		for id := range want {
			missing = append(missing, id)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("core: ExtractStreams: stream(s) not in envelope (unknown or already extracted): %s", strings.Join(missing, ", "))
	}
	s.Streams = kept
	return &out, nil
}

// fingerprint returns the envelope carrying cfg's restore-validated
// parameters and no streams.
func (e *Engine) fingerprint() EngineSnapshot {
	t := e.cfg.Template
	return EngineSnapshot{
		Version:    SnapshotVersion,
		Seed:       e.cfg.Seed,
		Tau:        t.Tau,
		TauPrime:   t.TauPrime,
		Statistic:  t.StatisticName(),
		Weighting:  int(t.Weighting),
		RawMass:    t.RawMass,
		LogFloor:   t.LogFloor,
		Replicates: t.Bootstrap.Replicates,
		Alpha:      t.Bootstrap.Alpha,
		EMDLargeK:  t.EMDLargeK,
		BuilderTag: e.cfg.BuilderTag,
	}
}

// ValidateSnapshot checks that snap could be restored onto this engine —
// the schema version is readable and the configuration fingerprint
// (seed, τ, τ′, statistic name, weighting, raw-mass, log-floor,
// replicates, α, EMD large-path threshold, builder tag) matches —
// without touching any state. A server front-end
// calls it BEFORE tearing down live streams, so a rejected envelope
// leaves the receiving engine exactly as it was.
func (e *Engine) ValidateSnapshot(snap *EngineSnapshot) error {
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("core: snapshot version %d, this engine reads version %d", snap.Version, SnapshotVersion)
	}
	want := e.fingerprint()
	mismatch := snap.Seed != want.Seed || snap.Tau != want.Tau || snap.TauPrime != want.TauPrime ||
		snap.Statistic != want.Statistic || snap.Weighting != want.Weighting || snap.RawMass != want.RawMass ||
		snap.LogFloor != want.LogFloor || snap.Replicates != want.Replicates || snap.Alpha != want.Alpha ||
		snap.EMDLargeK != want.EMDLargeK || snap.BuilderTag != want.BuilderTag
	if mismatch {
		got := *snap
		got.Streams = nil
		want.Streams = nil
		return fmt.Errorf("core: snapshot configuration %+v does not match engine configuration %+v", got, want)
	}
	return nil
}

// Snapshot serializes the full engine state: every open stream's
// detector, in stream-id order. The caller must have quiesced the engine
// — no pushes may be in flight (a server front-end holds its exclusive
// state lock around this; each stream's own lock is still taken so a
// violated contract corrupts nothing, though it would make WHICH state
// got captured a race).
func (e *Engine) Snapshot() (*EngineSnapshot, error) {
	return e.snapshotWhere(nil, false)
}

// SnapshotStreams serializes just the named streams as a partial
// envelope — the capture half of a live migration. Every id must be an
// open stream (unknown ids error before anything is captured); the
// streams stay open on this engine, so the caller that is moving them
// closes them once the envelope is safely shipped.
func (e *Engine) SnapshotStreams(ids ...string) (*EngineSnapshot, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: SnapshotStreams requires at least one stream id")
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if want[id] {
			return nil, fmt.Errorf("core: SnapshotStreams: duplicate stream id %q", id)
		}
		want[id] = true
	}
	e.mu.Lock()
	for id := range want {
		if _, ok := e.streams[id]; !ok {
			e.mu.Unlock()
			return nil, fmt.Errorf("core: SnapshotStreams: stream %q is not open", id)
		}
	}
	e.mu.Unlock()
	return e.snapshotWhere(func(id string, _ uint64) bool { return want[id] }, true)
}

// SnapshotDelta serializes only the streams mutated after mark (a value
// previously returned in an envelope's Mark field or from Engine.Mark).
// The envelope is Partial — restoring it merges the dirty streams into
// (or refreshes them on) a receiver that already holds the rest — and
// its own Mark is the new high-water value for the next delta. The cost
// scales with the number of dirty streams, not the fleet's total stream
// count; stream CLOSURES are not recorded (a stream evicted since mark
// is simply absent), so receivers reconcile stream death out of band.
func (e *Engine) SnapshotDelta(mark uint64) (*EngineSnapshot, error) {
	return e.snapshotWhere(func(_ string, dirty uint64) bool { return dirty > mark }, true)
}

// snapshotWhere captures the streams keep admits (nil keeps all) into an
// envelope. The engine must be quiesced by the caller, as with Snapshot.
func (e *Engine) snapshotWhere(keep func(id string, dirty uint64) bool, partial bool) (*EngineSnapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("core: engine is shut down")
	}
	snap := e.fingerprint()
	snap.Mark = e.mark.Load()
	snap.Partial = partial
	ids := make([]string, 0, len(e.streams))
	for id := range e.streams {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := e.streams[id]
		st.mu.Lock()
		det := st.det
		var ds *DetectorState
		var err error
		if det != nil && (keep == nil || keep(id, st.dirty)) {
			ds, err = det.Snapshot()
		}
		st.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot stream %q: %w", id, err)
		}
		if ds != nil {
			snap.Streams = append(snap.Streams, StreamSnapshot{ID: id, Detector: *ds})
		}
	}
	return &snap, nil
}

// Restore reconstructs the snapshotted streams on this engine: each
// stream is opened (recycling pooled detectors as usual) and its
// detector rewound to the snapshot state, after which every stream is
// bit-identical going forward to one that never stopped. The engine must
// have no open streams (CloseAll first — restore replaces state, it does
// not merge), and its configuration must match the snapshot fingerprint
// (ValidateSnapshot); the builder factory and ground distance are code
// and cannot be fingerprinted directly, so deployments that build them
// from configuration should describe that configuration in
// EngineConfig.BuilderTag — engines with differing tags refuse each
// other's snapshots instead of silently diverging. On error the engine
// may hold a partially restored stream set; CloseAll before retrying.
//
// Cost: restoring RNG stream positions is an exact REPLAY — O(draws
// consumed so far) per bootstrap shard and builder stream, the price of
// bit-identity on the historical stdlib stream (whose internal state is
// not exportable). Streams restore in parallel across the engine's
// worker budget, but a fleet of very long-lived streams still pays
// seconds per ~10⁵ pushes of per-stream history; snapshot/restore is a
// rebalancing primitive, not a hot-path operation.
func (e *Engine) Restore(snap *EngineSnapshot) error {
	if err := e.ValidateSnapshot(snap); err != nil {
		return err
	}
	if snap.Partial {
		return fmt.Errorf("core: envelope is partial (a delta or extracted slice); Restore replaces ALL state — use RestoreStreams to merge it")
	}
	if n := e.Len(); n != 0 {
		return fmt.Errorf("core: restore requires an engine with no open streams, have %d (CloseAll first)", n)
	}
	streams := make([]*Stream, len(snap.Streams))
	for i := range snap.Streams {
		st, err := e.Open(snap.Streams[i].ID)
		if err != nil {
			return fmt.Errorf("core: restore stream %q: %w", snap.Streams[i].ID, err)
		}
		streams[i] = st
	}
	errs := e.rewindStreams(streams, snap.Streams)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("core: restore stream %q: %w", snap.Streams[i].ID, err)
		}
	}
	return nil
}

// RestoreStreams merges the envelope's streams into this engine — the
// receiving half of a live migration, and the apply half of a delta
// snapshot. The fingerprint must match exactly as for Restore, but the
// engine keeps its other open streams; each restored stream must NOT
// already be open here (a migration that raced a duplicate delivery
// fails loudly instead of silently rewinding a live stream). On any
// error the streams this call opened are closed again, so a refused
// merge leaves the engine exactly as it was. Quiescence contract is
// Restore's: no pushes in flight.
func (e *Engine) RestoreStreams(snap *EngineSnapshot) error {
	if err := e.ValidateSnapshot(snap); err != nil {
		return err
	}
	if len(snap.Streams) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(snap.Streams))
	for i := range snap.Streams {
		id := snap.Streams[i].ID
		if seen[id] {
			return fmt.Errorf("core: RestoreStreams: envelope names stream %q twice", id)
		}
		seen[id] = true
		if _, open := e.Get(id); open {
			return fmt.Errorf("core: RestoreStreams: stream %q is already open on this engine", id)
		}
	}
	streams := make([]*Stream, len(snap.Streams))
	rollback := func(n int) {
		for i := 0; i < n; i++ {
			streams[i].Close()
		}
	}
	for i := range snap.Streams {
		st, err := e.Open(snap.Streams[i].ID)
		if err != nil {
			rollback(i)
			return fmt.Errorf("core: restore stream %q: %w", snap.Streams[i].ID, err)
		}
		streams[i] = st
	}
	errs := e.rewindStreams(streams, snap.Streams)
	for i, err := range errs {
		if err != nil {
			rollback(len(streams))
			return fmt.Errorf("core: restore stream %q: %w", snap.Streams[i].ID, err)
		}
	}
	return nil
}

// rewindStreams rewinds each stream's detector to its snapshot state.
// Detector rewinds are independent per stream and dominated by RNG
// replay, so they fan across the worker budget. Restored streams are
// stamped dirty: relative to any mark taken before the restore, their
// state IS new on this engine.
func (e *Engine) rewindStreams(streams []*Stream, snaps []StreamSnapshot) []error {
	errs := make([]error, len(streams))
	restore := func(i int) {
		st := streams[i]
		st.mu.Lock()
		st.markDirtyLocked()
		errs[i] = st.det.RestoreSnapshot(&snaps[i].Detector)
		st.mu.Unlock()
	}
	workers := e.cfg.Workers
	if workers > len(streams) {
		workers = len(streams)
	}
	if workers <= 1 {
		for i := range streams {
			restore(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(streams) {
						return
					}
					restore(i)
				}
			}()
		}
		wg.Wait()
	}
	return errs
}
