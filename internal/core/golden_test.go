package core

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/randx"
	"repro/internal/signature"
)

var updateGolden = flag.Bool("update", false, "rewrite golden test fixtures instead of comparing against them")

// The golden end-to-end trace: a frozen detector run over a 200-bag
// synthetic sequence whose scores, intervals, κ and alarms are
// committed to testdata and asserted BIT-identical on every run.
// Solver-internal changes that are supposed to be score-invariant
// (pricing, pivoting, buffer management below the large threshold)
// cannot silently drift past this test: any last-bit change in any of
// the ~188 inspection points fails loudly.
//
// Regenerate deliberately (after a change that is MEANT to alter
// scores) with:
//
//	go test ./internal/core -run TestGoldenDetectorTrace -update
//
// Floats are serialized as Go hex float strings ('x' format), which
// round-trip exactly and make the fixture diffable; Kappa is "NaN"
// until the first comparable interval exists.

// goldenTraces enumerates one frozen fixture per statistic. Statistic
// "" is the legacy KL fixture (predating the statistic layer — its
// bytes must stay untouched, so its header carries no statistic field
// and the run configures the detector exactly as the seed did).
var goldenTraces = []struct {
	name      string
	path      string
	statistic string
}{
	{name: "kl", path: "testdata/golden_detector_trace.json", statistic: ""},
	{name: "lr", path: "testdata/golden_detector_trace_lr.json", statistic: "lr"},
}

type goldenPoint struct {
	T     int    `json:"t"`
	Score string `json:"score"`
	Lo    string `json:"lo"`
	Up    string `json:"up"`
	Point string `json:"point"`
	Kappa string `json:"kappa"`
	Alarm bool   `json:"alarm"`
}

type goldenTrace struct {
	Description string `json:"description"`
	Seed        int64  `json:"seed"`
	Bags        int    `json:"bags"`
	Tau         int    `json:"tau"`
	TauPrime    int    `json:"tau_prime"`
	Replicates  int    `json:"replicates"`
	// Statistic is the registry name the trace was run under; empty in
	// the legacy KL fixture, which predates the statistic layer.
	Statistic string        `json:"statistic,omitempty"`
	Points    []goldenPoint `json:"points"`
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// goldenSequence generates the frozen 200-bag workload: 1-D Gaussian
// bags with mean shifts at t=60 (0→3) and t=130 (3→1), 120 points per
// bag, all drawn from one seeded stream.
func goldenSequence() bag.Sequence {
	rng := randx.New(97531)
	seq := make(bag.Sequence, 200)
	for t := range seq {
		mu := 0.0
		switch {
		case t >= 130:
			mu = 1
		case t >= 60:
			mu = 3
		}
		vals := make([]float64, 120)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		seq[t] = bag.FromScalars(t, vals)
	}
	return seq
}

func goldenConfig() Config {
	return Config{
		Tau:       6,
		TauPrime:  6,
		Builder:   signature.NewHistogramBuilder(-4, 7, 40),
		Bootstrap: bootstrap.Config{Replicates: 400, Alpha: 0.05},
		Seed:      20260729,
	}
}

func runGoldenTrace(t *testing.T, statistic string) goldenTrace {
	t.Helper()
	cfg := goldenConfig()
	cfg.Statistic = statistic
	points, err := Run(cfg, goldenSequence())
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	desc := "frozen detector run: 200 1-D Gaussian bags, mean shifts at t=60 and t=130; asserts bit-identical scores/intervals on every run (floats are exact hex; regenerate with -update)"
	if statistic != "" {
		desc = "frozen " + statistic + " detector run: 200 1-D Gaussian bags, mean shifts at t=60 and t=130; asserts bit-identical scores/intervals on every run (floats are exact hex; regenerate with -update)"
	}
	tr := goldenTrace{
		Description: desc,
		Seed:        cfg.Seed,
		Bags:        200,
		Tau:         cfg.Tau,
		TauPrime:    cfg.TauPrime,
		Replicates:  cfg.Bootstrap.Replicates,
		Statistic:   statistic,
	}
	for _, p := range points {
		tr.Points = append(tr.Points, goldenPoint{
			T:     p.T,
			Score: hexFloat(p.Score),
			Lo:    hexFloat(p.Interval.Lo),
			Up:    hexFloat(p.Interval.Up),
			Point: hexFloat(p.Interval.Point),
			Kappa: hexFloat(p.Kappa),
			Alarm: p.Alarm,
		})
	}
	return tr
}

func TestGoldenDetectorTrace(t *testing.T) {
	for _, tc := range goldenTraces {
		t.Run(tc.name, func(t *testing.T) { checkGoldenTrace(t, tc.path, tc.statistic) })
	}
}

func checkGoldenTrace(t *testing.T, path, statistic string) {
	got := runGoldenTrace(t, statistic)

	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d points)", path, len(got.Points))
		return
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create it): %v", err)
	}
	var want goldenTrace
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("corrupt golden fixture: %v", err)
	}
	if want.Seed != got.Seed || want.Bags != got.Bags || want.Tau != got.Tau ||
		want.TauPrime != got.TauPrime || want.Replicates != got.Replicates ||
		want.Statistic != got.Statistic {
		t.Fatalf("golden fixture header %+v does not describe this test's configuration; regenerate with -update", want)
	}
	if len(want.Points) != len(got.Points) {
		t.Fatalf("golden trace has %d points, run produced %d", len(want.Points), len(got.Points))
	}
	mismatches := 0
	for i := range want.Points {
		w, g := want.Points[i], got.Points[i]
		if w != g {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("point %d (t=%d) drifted:\n  golden: %+v\n  run:    %+v", i, w.T, w, g)
			}
		}
	}
	if mismatches > 3 {
		t.Errorf("... and %d more drifted points", mismatches-3)
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d points are not bit-identical to the golden trace; if the change is MEANT to move scores, regenerate with -update and explain the drift in the commit", mismatches, len(want.Points))
	}

	// The fixture must round-trip its own hex floats (guards against a
	// hand-edited file that parses but lost exactness).
	for i, p := range want.Points {
		for _, fv := range []string{p.Score, p.Lo, p.Up, p.Point, p.Kappa} {
			v, err := strconv.ParseFloat(fv, 64)
			if err != nil {
				t.Fatalf("point %d: unparsable float %q: %v", i, fv, err)
			}
			if !math.IsNaN(v) && hexFloat(v) != fv {
				t.Fatalf("point %d: float %q does not round-trip", i, fv)
			}
		}
	}
}

// TestGoldenTraceHasSignal sanity-checks the fixture itself: the frozen
// run must actually alarm near both injected changes, so the golden
// trace keeps covering the full score→interval→κ→alarm pipeline (a
// fixture of all-quiet points would pin bits but guard nothing).
func TestGoldenTraceHasSignal(t *testing.T) {
	for _, tc := range goldenTraces {
		t.Run(tc.name, func(t *testing.T) {
			got := runGoldenTrace(t, tc.statistic)
			alarmNear := func(c int) bool {
				for _, p := range got.Points {
					if p.Alarm && p.T >= c-3 && p.T <= c+8 {
						return true
					}
				}
				return false
			}
			if !alarmNear(60) || !alarmNear(130) {
				t.Fatalf("golden run no longer alarms near both injected changes (t=60, t=130)")
			}
			nan := 0
			for _, p := range got.Points {
				if p.Kappa == "NaN" {
					nan++
				}
			}
			if nan == 0 || nan >= len(got.Points) {
				t.Fatalf("expected a warm-up prefix of NaN κ points and a comparable suffix, got %d/%d NaN", nan, len(got.Points))
			}
		})
	}
}
