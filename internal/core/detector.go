// Package core implements the paper's change-point detector for
// sequences of bags-of-data. It wires together the pipeline of §3-§4:
//
//	bag → signature (quantization)            internal/signature
//	    → pairwise EMD in a metric space      internal/emd
//	    → change-point score (Eq. 16/17)      internal/infoest
//	    → Bayesian-bootstrap interval (Eq.19) internal/bootstrap
//	    → adaptive alarm κ_t > 0 (Eq. 18/20)
//
// The detector is a streaming structure: bags are Pushed one at a time,
// a rolling window of the last τ+τ′ signatures is kept, and the log-EMD
// matrix over the window is updated incrementally — each new bag costs
// τ+τ′−1 EMD evaluations, after which the score and its entire bootstrap
// interval are computed without touching the distances again.
package core

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/emd"
	"repro/internal/infoest"
	"repro/internal/obs"
	"repro/internal/signature"
)

// ScoreType selects which change-point score the detector computes.
//
// It predates the named statistic registry (see Statistic) and is kept
// as a bit-identical shim: Config.Score = ScoreKL/ScoreLR resolves to
// the registered "kl"/"lr" statistic, and a detector configured either
// way produces the same bits. New code should prefer Config.Statistic
// (or repro.WithStatistic) with a registry name.
type ScoreType int

const (
	// ScoreKL is the symmetrized-KL score (Eq. 17): conservative and
	// robust, less sensitive to minor changes. Statistic name "kl".
	ScoreKL ScoreType = iota
	// ScoreLR is the log-likelihood-ratio score (Eq. 16): sensitive to
	// small changes but noisier. Requires TauPrime >= 2. Statistic
	// name "lr".
	ScoreLR
)

// String implements fmt.Stringer.
func (s ScoreType) String() string {
	switch s {
	case ScoreKL:
		return "KL"
	case ScoreLR:
		return "LR"
	default:
		return fmt.Sprintf("ScoreType(%d)", int(s))
	}
}

// statisticName returns the registry name the enum value resolves to,
// or "" for values outside the enum.
func (s ScoreType) statisticName() string {
	switch s {
	case ScoreKL:
		return "kl"
	case ScoreLR:
		return "lr"
	default:
		return ""
	}
}

// Weighting selects the base weights γ of the window signatures.
type Weighting int

const (
	// WeightUniform gives every signature weight 1/τ (resp. 1/τ′).
	WeightUniform Weighting = iota
	// WeightDiscounted applies the hyperbolic time discounting of
	// Eq. 15: weight ∝ 1/|t−i|, favouring signatures near the
	// inspection point.
	WeightDiscounted
)

// Config parameterizes a Detector.
type Config struct {
	// Tau is the reference window length τ (number of bags before the
	// inspection point). Required, >= 1.
	Tau int
	// TauPrime is the test window length τ′ (number of bags from the
	// inspection point onward). Required, >= 1 (>= 2 for ScoreLR).
	TauPrime int
	// Score selects the change-point score (default ScoreKL). It is the
	// historical enum shim over the statistic registry; leave it zero
	// and set Statistic to select a statistic by name instead. Setting
	// both to disagreeing values is a validation error.
	Score ScoreType
	// Statistic selects the change-point score by registry name ("kl",
	// "lr", "clr", or any name passed to RegisterStatistic). Empty means
	// "derive from Score", preserving the pre-registry configuration
	// surface bit-for-bit. The resolved NAME — see StatisticName — is
	// what joins the engine snapshot fingerprint.
	Statistic string
	// Weighting selects the base weights (default WeightUniform, which
	// is what the paper uses in all of §5).
	Weighting Weighting
	// Builder converts bags into signatures. Required.
	Builder signature.Builder
	// Ground is the EMD ground distance; nil selects Euclidean with the
	// exact 1-D fast path.
	Ground emd.Ground
	// Bootstrap configures the confidence intervals (T replicates,
	// significance level α, and worker parallelism). A zero Workers field
	// is promoted to GOMAXPROCS: the detector's score functions are pure,
	// so its bootstrap replicates always parallelize safely, and the
	// sharded RNG streams make the result identical for a fixed Seed
	// regardless of the worker count. Set Workers to 1 to force
	// single-threaded evaluation.
	Bootstrap bootstrap.Config
	// LogFloor clamps distances before taking logs; 0 selects
	// infoest.DefaultFloor.
	LogFloor float64
	// RawMass keeps the raw cluster counts as signature masses, enabling
	// the partial-matching EMD between bags of different sizes. The
	// default (false) normalizes each signature to unit mass, which makes
	// EMD a proper metric between the bag distributions and is the
	// behaviour used for all reproduced experiments.
	RawMass bool
	// EMDLargeK overrides the signature size at which the detector's EMD
	// solver switches to the block-pricing large-signature path: 0
	// selects emd.DefaultLargeThreshold (128), a negative value pins the
	// classic solver at every size, and a positive value is the
	// threshold. Both paths return the same optimal EMD to rounding, but
	// on degenerate instances they may settle on different equally
	// optimal bases whose costs differ in the last bits — so the
	// threshold is part of the engine snapshot fingerprint and must be
	// held fixed wherever bit-identical scores are promised.
	EMDLargeK int
	// EMDCostCacheSlots sizes the detector's ground-cost cache: the w−1
	// EMD solves per push share the incoming signature's cost rows, and
	// stable-support builders (histogram, grid) share one matrix across
	// every push. 0 selects emd.DefaultCostCacheSlots, a positive value
	// is the slot count, and a negative value disables caching.
	// Clustering builders (k-means, k-medoids, online) emit a distinct
	// support set per bag, so the window's pairs overwhelm the default
	// slots and hits are rare while every solve still pays the support
	// hash; streams where that overhead is measurable (see
	// BenchmarkDetectorPushMixedSupport) should set this negative. Unlike
	// EMDLargeK this knob is deliberately NOT part of the snapshot
	// fingerprint: the cache is bit-transparent (stored costs are the
	// exact floats the ground function returned and the solver replays
	// the identical comparison sequence), so scores are the same bits
	// with the cache on or off.
	EMDCostCacheSlots int
	// Seed drives the bootstrap resampling (and nothing else).
	Seed int64
}

// StatisticName resolves which registered statistic the config selects:
// Statistic when set, otherwise the name the Score enum shims to. The
// result is the stable identity that joins the engine snapshot
// fingerprint; "" means the config is invalid (an out-of-enum Score).
func (c Config) StatisticName() string {
	if c.Statistic != "" {
		return c.Statistic
	}
	return c.Score.statisticName()
}

// statistic resolves the config's Statistic/Score selection against the
// registry, with the same error texts validateCommon promises.
func (c Config) statistic() (Statistic, error) {
	if c.Statistic != "" && c.Score != ScoreKL && c.Score.statisticName() != c.Statistic {
		return nil, fmt.Errorf("core: Config sets both Statistic=%q and Score=%v; they disagree — set one", c.Statistic, c.Score)
	}
	name := c.StatisticName()
	if name == "" {
		return nil, fmt.Errorf("core: unknown score type %d", c.Score)
	}
	stat, ok := LookupStatistic(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown statistic %q (registered: %s)", name, strings.Join(StatisticNames(), ", "))
	}
	return stat, nil
}

// validateCommon checks every Config field except Builder. The Engine
// validates its per-stream template with it at construction, before any
// stream (and hence any factory-built Builder) exists.
func (c Config) validateCommon() error {
	if c.Tau < 1 {
		return fmt.Errorf("core: Tau must be >= 1, got %d", c.Tau)
	}
	if c.TauPrime < 1 {
		return fmt.Errorf("core: TauPrime must be >= 1, got %d", c.TauPrime)
	}
	stat, err := c.statistic()
	if err != nil {
		return err
	}
	return stat.Validate(c)
}

func (c Config) validate() error {
	if err := c.validateCommon(); err != nil {
		return err
	}
	if c.Builder == nil {
		return fmt.Errorf("core: Builder is required")
	}
	return nil
}

// Point is the detector output for one inspection time.
type Point struct {
	// T is the inspection time: the index of the first test bag.
	T int
	// Score is the change-point score at the base weights.
	Score float64
	// Interval is the 100(1−α)% Bayesian-bootstrap confidence interval
	// of the score.
	Interval bootstrap.Interval
	// Kappa is κ_t = ξ_lo(t) − ξ_up(t−τ′); NaN while the earlier
	// interval is not yet available.
	Kappa float64
	// Alarm reports κ_t > 0: a significant change at time T.
	Alarm bool
}

// Detector is the streaming change-point detector. Create with New, feed
// with Push. A Detector is not safe for concurrent use.
type Detector struct {
	cfg     Config
	gRef    []float64 // base weights θ for the reference window
	gTest   []float64 // base weights θ for the test window
	window  []signature.Signature
	logD    [][]float64                // rolling (τ+τ′)² log-EMD matrix, time order
	count   int                        // bags pushed so far
	history map[int]bootstrap.Interval // interval per inspection time

	solver  *emd.Solver          // reusable EMD workspace (zero-alloc warm path)
	est     *bootstrap.Estimator // reusable bootstrap workspace
	win     infoest.Window       // current inspection window, rebuilt per inspect
	stat    Statistic            // resolved statistic (registry lookup at New)
	prep    BagPreprocessor      // stat's bag transform, nil for most statistics
	scoreFn bootstrap.ScoreFunc  // stat's closure over &win, built once
	spare   []float64            // recycled log-distance row from the last slide
	rowPool [][]float64          // rows salvaged by Reset, reused while refilling

	// obs is the instrumentation seam: nil (the default) means every
	// stage boundary in Push costs exactly one nil-check and nothing is
	// recorded; when set, Push times each pipeline stage and accumulates
	// the solver's per-solve counters. Never affects output.
	obs      obs.StageObserver
	stageCum [obs.NumStages]float64 // cumulative seconds per stage (introspection)
	stageCnt [obs.NumStages]uint64  // stage executions (introspection)
	last     Point                  // most recent inspection Point
	hasLast  bool
}

// New validates cfg and returns a ready Detector.
func New(cfg Config) (*Detector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Bootstrap.Workers == 0 {
		cfg.Bootstrap.Workers = runtime.GOMAXPROCS(0)
	}
	solverOpts := []emd.SolverOption{emd.WithLargeThreshold(cfg.EMDLargeK)}
	if cfg.EMDCostCacheSlots >= 0 {
		solverOpts = append(solverOpts, emd.WithCostCache(cfg.EMDCostCacheSlots))
	}
	d := &Detector{
		cfg:     cfg,
		history: make(map[int]bootstrap.Interval),
		solver:  emd.NewSolver(solverOpts...),
		// Persistent shard streams seeded from Config.Seed: the detector
		// pays no per-push reseeding cost and its output is a deterministic
		// function of Seed and the pushed sequence, independent of the
		// bootstrap worker count.
		est: bootstrap.NewSeededEstimator(cfg.Seed),
	}
	// validate() already resolved the statistic; the second lookup here
	// cannot fail. The closure binds &d.win, which interval() rebuilds in
	// place before every inspection.
	d.stat, _ = cfg.statistic()
	d.prep, _ = d.stat.(BagPreprocessor)
	d.scoreFn = d.stat.Bind(&d.win)
	switch cfg.Weighting {
	case WeightDiscounted:
		d.gRef = infoest.DiscountedRefWeights(cfg.Tau)
		d.gTest = infoest.DiscountedTestWeights(cfg.TauPrime)
	default:
		d.gRef = infoest.UniformWeights(cfg.Tau)
		d.gTest = infoest.UniformWeights(cfg.TauPrime)
	}
	// The rolling log-distance matrix grows with the window: row i gains
	// one column per push until the window is full, at which point every
	// row has length τ+τ′.
	d.logD = make([][]float64, 0, cfg.Tau+cfg.TauPrime)
	return d, nil
}

// WindowSize returns τ+τ′, the number of bags the detector retains.
func (d *Detector) WindowSize() int { return d.cfg.Tau + d.cfg.TauPrime }

// Count returns the number of bags pushed so far.
func (d *Detector) Count() int { return d.count }

// SetObserver installs (or, with nil, removes) the stage-level
// instrumentation seam. The observer must be safe for concurrent use
// when detectors sharing it run on different goroutines, and must not
// allocate (see obs.StageObserver). Instrumentation never changes the
// detector's output; with a nil observer Push pays one nil-check per
// stage boundary and records nothing.
func (d *Detector) SetObserver(o obs.StageObserver) { d.obs = o }

// observeStage closes one stage at now: it reports the duration since
// start to the observer, folds it into the per-stage cumulative totals
// (the introspection surface), and returns now as the next stage's
// start. Callers check d.obs != nil first.
func (d *Detector) observeStage(s obs.Stage, start time.Time) time.Time {
	now := time.Now()
	sec := now.Sub(start).Seconds()
	d.obs.ObserveStage(s, sec)
	d.stageCum[s] += sec
	d.stageCnt[s]++
	return now
}

// StageTotal is one pipeline stage's cumulative cost on this detector
// since construction or the last Reset. Populated only while an
// observer is attached.
type StageTotal struct {
	// Stage is the stage label ("preprocess", "signature", "emd",
	// "bootstrap") as exposed on bagcpd_push_stage_seconds.
	Stage string `json:"stage"`
	// Seconds is the total wall time spent in the stage.
	Seconds float64 `json:"seconds"`
	// Count is the number of times the stage ran.
	Count uint64 `json:"count"`
}

// StageTotals returns the per-stage cumulative times and counts. All
// zeros when no observer has been attached (stage timing is only
// measured while instrumented, so the uninstrumented hot path stays a
// single nil-check).
func (d *Detector) StageTotals() [obs.NumStages]StageTotal {
	var out [obs.NumStages]StageTotal
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		out[s] = StageTotal{Stage: s.String(), Seconds: d.stageCum[s], Count: d.stageCnt[s]}
	}
	return out
}

// Last returns the most recent inspection Point, if any inspection has
// happened since construction or the last Reset.
func (d *Detector) Last() (Point, bool) { return d.last, d.hasLast }

// Push feeds the next bag. Once at least τ+τ′ bags have arrived it
// returns the Point for inspection time t = count−τ′ (the scores lag the
// stream by τ′−1 steps, which is inherent to the method: the test window
// must fill before time t can be judged). Before that it returns nil.
func (d *Detector) Push(b bag.Bag) (*Point, error) {
	var clock time.Time
	if d.obs != nil {
		clock = time.Now()
	}
	if d.prep != nil {
		var err error
		b, err = d.prep.PreprocessBag(b)
		if err != nil {
			return nil, fmt.Errorf("core: preprocessing bag %d for statistic %q: %w", d.count, d.stat.Name(), err)
		}
	}
	if d.obs != nil {
		clock = d.observeStage(obs.StagePreprocess, clock)
	}
	sig, err := d.cfg.Builder.Build(b)
	if err != nil {
		return nil, fmt.Errorf("core: building signature for bag %d: %w", d.count, err)
	}
	if !d.cfg.RawMass {
		sig = sig.Normalized()
	}
	if d.obs != nil {
		clock = d.observeStage(obs.StageSignature, clock)
	}
	w := d.WindowSize()
	if len(d.window) == w {
		// Slide: drop the oldest signature and shift the distance matrix
		// up-left by one. The evicted row's backing array is recycled for
		// the incoming row, so a warm detector allocates nothing here.
		copy(d.window, d.window[1:])
		d.window[w-1] = signature.Signature{} // release the evicted signature
		d.window = d.window[:w-1]
		d.spare = d.logD[w-1][:0]
		for i := 0; i < w-1; i++ {
			copy(d.logD[i], d.logD[i+1][1:w])
			d.logD[i] = d.logD[i][:w-1]
		}
		d.logD = d.logD[:w-1]
	}
	// Append the new signature and its distances to the retained ones.
	row := d.spare
	d.spare = nil
	if row == nil {
		if n := len(d.rowPool); n > 0 {
			row = d.rowPool[n-1]
			d.rowPool = d.rowPool[:n-1]
		}
	}
	if cap(row) < len(d.window)+1 {
		row = make([]float64, 0, w)
	}
	row = row[:len(d.window)+1]
	row[len(row)-1] = 0 // self-distance slot; the diagonal is ignored
	var delta obs.SolveDelta
	for i, s := range d.window {
		var dist float64
		if d.cfg.EMDCostCacheSlots >= 0 {
			// Cached entry point: the w−1 solves of this push share the
			// incoming signature's cost rows, and stable-support builders
			// hit one matrix across every push. Bit-identical to Distance.
			dist, err = d.solver.DistanceCached(s, sig, d.cfg.Ground)
		} else {
			dist, err = d.solver.Distance(s, sig, d.cfg.Ground)
		}
		if err != nil {
			return nil, fmt.Errorf("core: EMD between bags %d and %d: %w", d.count-len(d.window)+i, d.count, err)
		}
		if d.obs != nil {
			// Stats() is per-solve; fold each solve's counters into the
			// push's delta so one ObserveSolve covers all w−1 solves.
			st := d.solver.Stats()
			delta.Pivots += uint64(st.Pivots)
			delta.GroundEvals += uint64(st.GroundEvals)
			delta.CacheHits += uint64(st.CacheHits)
			delta.CacheMisses += uint64(st.CacheMisses)
		}
		l := infoest.ClampLog(dist, d.cfg.LogFloor)
		row[i] = l
		d.logD[i] = append(d.logD[i], l)
	}
	d.window = append(d.window, sig)
	d.logD = append(d.logD, row)
	d.count++
	if d.obs != nil {
		d.obs.ObserveSolve(delta)
		clock = d.observeStage(obs.StageEMD, clock)
	}

	if len(d.window) < w {
		return nil, nil
	}
	p, err := d.inspect()
	if d.obs != nil {
		d.observeStage(obs.StageBootstrap, clock)
	}
	return p, err
}

// interval runs the score/bootstrap stage over the current full window:
// it rebinds the window view and computes the Bayesian-bootstrap interval
// on the detector's persistent estimator. Zero allocations once warm.
func (d *Detector) interval() (bootstrap.Interval, error) {
	d.win = infoest.Window{LogD: d.logD, NRef: d.cfg.Tau, NTest: d.cfg.TauPrime}
	if err := d.win.Validate(); err != nil {
		return bootstrap.Interval{}, err
	}
	// The estimator is in persistent-stream mode (seeded from cfg.Seed at
	// construction), so no caller RNG is involved.
	return d.est.Interval(d.scoreFn, d.gRef, d.gTest, d.cfg.Bootstrap, nil)
}

// inspect scores the current full window. The inspection time is
// t = count − τ′ (the first bag of the test half).
func (d *Detector) inspect() (*Point, error) {
	t := d.count - d.cfg.TauPrime
	iv, err := d.interval()
	if err != nil {
		return nil, err
	}
	d.history[t] = iv

	p := &Point{T: t, Score: iv.Point, Interval: iv, Kappa: math.NaN()}
	if prev, ok := d.history[t-d.cfg.TauPrime]; ok {
		p.Kappa = bootstrap.Kappa(iv, prev)
		p.Alarm = p.Kappa > 0
	}
	// Trim history: only intervals within τ′ of the newest time are
	// ever consulted again.
	delete(d.history, t-2*d.cfg.TauPrime)
	d.last = *p
	d.hasLast = true
	return p, nil
}

// Reset rewinds the detector to its freshly-constructed state while
// retaining every internal buffer: the signature window and distance
// matrix are emptied (their backing arrays kept for reuse), the alarm
// history is cleared, and the bootstrap shard streams are rewound to
// their initial position for Config.Seed. A warm detector that is Reset
// and refed therefore produces bit-identical Points to a brand-new
// New(cfg) detector, with zero steady-state allocations.
//
// The Builder is NOT reset — a stateful builder (k-means, k-medoids)
// keeps its RNG position, so full bit-identity after Reset additionally
// requires a stateless builder or a fresh one from a BuilderFactory (the
// Engine's detector pool always supplies a fresh builder when it
// recycles a detector).
func (d *Detector) Reset() { d.reset(d.cfg.Builder, d.cfg.Seed) }

// reset is Reset plus rebinding the per-stream identity: the Engine's
// detector pool recycles a detector for a new stream by swapping in that
// stream's builder and seed.
func (d *Detector) reset(builder signature.Builder, seed int64) {
	d.cfg.Builder = builder
	d.cfg.Seed = seed
	for i := range d.window {
		d.window[i] = signature.Signature{}
	}
	d.window = d.window[:0]
	for i := range d.logD {
		d.rowPool = append(d.rowPool, d.logD[i][:0])
		d.logD[i] = nil
	}
	d.logD = d.logD[:0]
	if d.spare != nil {
		d.rowPool = append(d.rowPool, d.spare[:0])
		d.spare = nil
	}
	d.count = 0
	clear(d.history)
	d.est.ResetStreams(seed)
	// Introspection state is per-stream; the observer is engine-owned and
	// survives recycling.
	d.stageCum = [obs.NumStages]float64{}
	d.stageCnt = [obs.NumStages]uint64{}
	d.last = Point{}
	d.hasLast = false
}

// Run processes a whole sequence through a fresh detector and returns
// every produced Point in time order.
func Run(cfg Config, seq bag.Sequence) ([]Point, error) {
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	var out []Point
	for _, b := range seq {
		p, err := d.Push(b)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, *p)
		}
	}
	return out, nil
}

// Alarms extracts the inspection times with raised alarms.
func Alarms(points []Point) []int {
	var out []int
	for _, p := range points {
		if p.Alarm {
			out = append(out, p.T)
		}
	}
	return out
}

// Scores extracts the score series (parallel to the points).
func Scores(points []Point) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Score
	}
	return out
}

// PairwiseEMD builds signatures for every bag of seq and returns the full
// symmetric EMD matrix between them (used by the Fig. 6 EMD heatmaps and
// the MDS embeddings). Signatures are normalized unless rawMass is true.
//
// It is a thin shim over the tiled engine (Pairwise) preserving the
// seed-era surface and output bit-for-bit: signature construction stays
// sequential because a caller-supplied Builder may hold state (a shared
// RNG for k-means seeding) whose draw order is part of the
// reproducibility contract. Callers who can provide a BuilderFactory
// should use Pairwise with WithPairBuilderFactory instead, which builds
// signatures in parallel from per-bag split seeds and supports
// multi-host sharding via PairwiseShard/MergePairwise.
func PairwiseEMD(builder signature.Builder, seq bag.Sequence, ground emd.Ground, rawMass bool) ([][]float64, error) {
	m, err := Pairwise(seq,
		WithPairBuilder(builder),
		WithPairGround(ground),
		WithPairRawMass(rawMass),
	)
	if err != nil {
		return nil, err
	}
	return m.Rows(), nil
}
