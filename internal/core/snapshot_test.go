package core

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/bag"
	"repro/internal/cluster"
	"repro/internal/randx"
	"repro/internal/signature"
)

// streamBags2D generates a deterministic per-stream 2-D sequence with a
// mean shift halfway through (the multi-dimensional sibling of
// streamBags, for builders that are not 1-D-only).
func streamBags2D(id string, n int) []bag.Bag {
	rng := randx.New(randx.SplitSeedString(2000, id))
	out := make([]bag.Bag, n)
	for ts := range out {
		mu := 0.0
		if ts >= n/2 {
			mu = 3
		}
		pts := make([][]float64, 40)
		for i := range pts {
			pts[i] = []float64{rng.Normal(mu, 1), rng.Normal(-mu, 1.5)}
		}
		out[ts] = bag.Bag{T: ts, Points: pts}
	}
	return out
}

// snapshotFactories is every builder factory the engine supports, with a
// matching bag generator (the histogram builder is 1-D-only).
func snapshotFactories() map[string]struct {
	factory signature.BuilderFactory
	bags    func(id string, n int) []bag.Bag
} {
	return map[string]struct {
		factory signature.BuilderFactory
		bags    func(id string, n int) []bag.Bag
	}{
		"kmeans":    {signature.KMeansFactory(4, cluster.Config{MaxIters: 20}), streamBags2D},
		"kmedoids":  {signature.KMedoidsFactory(4, cluster.Config{MaxIters: 20}), streamBags2D},
		"histogram": {signature.HistogramFactory(-6, 9, 24), streamBags},
		"grid":      {signature.GridFactory([]float64{-7, -9}, []float64{9, 7}, 8), streamBags2D},
		"online":    {signature.OnlineFactory(5, 0.3), streamBags2D},
	}
}

// TestEngineSnapshotRestoreBitIdentical is the snapshot contract: for
// every builder factory and worker count, Snapshot → (JSON round-trip) →
// Restore → push k more bags is bit-identical to the uninterrupted run —
// scores, intervals, kappas and alarms all exactly equal.
func TestEngineSnapshotRestoreBitIdentical(t *testing.T) {
	ids := []string{"s-0", "s-1", "s-2"}
	const steps, cut = 14, 8 // snapshot mid-stream, after windows are full

	for fname, fc := range snapshotFactories() {
		t.Run(fname, func(t *testing.T) {
			bags := make(map[string][]bag.Bag, len(ids))
			for _, id := range ids {
				bags[id] = fc.bags(id, steps)
			}
			batchAt := func(step int) []StreamBag {
				var batch []StreamBag
				for _, id := range ids {
					batch = append(batch, StreamBag{StreamID: id, Bag: bags[id][step]})
				}
				return batch
			}

			// Uninterrupted reference run.
			ref := newTestEngine(t, fc.factory, 2)
			refTail := make(map[string][]*Point)
			for step := 0; step < steps; step++ {
				results, err := ref.PushBatch(batchAt(step))
				if err != nil {
					t.Fatal(err)
				}
				if step >= cut {
					for _, res := range results {
						refTail[res.StreamID] = append(refTail[res.StreamID], res.Point)
					}
				}
			}

			for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				label := fmt.Sprintf("workers=%d", workers)
				engA := newTestEngine(t, fc.factory, workers)
				for step := 0; step < cut; step++ {
					if _, err := engA.PushBatch(batchAt(step)); err != nil {
						t.Fatal(err)
					}
				}
				snap, err := engA.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				// The envelope must survive serialization bit-for-bit; ship
				// it through JSON like the HTTP server does.
				blob, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var wire EngineSnapshot
				if err := json.Unmarshal(blob, &wire); err != nil {
					t.Fatal(err)
				}

				engB := newTestEngine(t, fc.factory, workers)
				if err := engB.Restore(&wire); err != nil {
					t.Fatal(err)
				}
				if engB.Len() != len(ids) {
					t.Fatalf("%s: restored engine has %d streams, want %d", label, engB.Len(), len(ids))
				}
				got := make(map[string][]*Point)
				for step := cut; step < steps; step++ {
					results, err := engB.PushBatch(batchAt(step))
					if err != nil {
						t.Fatal(err)
					}
					for _, res := range results {
						got[res.StreamID] = append(got[res.StreamID], res.Point)
					}
				}
				for _, id := range ids {
					comparePointSeries(t, fmt.Sprintf("%s %s stream=%s", fname, label, id), got[id], refTail[id])
				}

				// The donor engine was not perturbed by being snapshotted:
				// it finishes the run bit-identically too.
				gotA := make(map[string][]*Point)
				for step := cut; step < steps; step++ {
					results, err := engA.PushBatch(batchAt(step))
					if err != nil {
						t.Fatal(err)
					}
					for _, res := range results {
						gotA[res.StreamID] = append(gotA[res.StreamID], res.Point)
					}
				}
				for _, id := range ids {
					comparePointSeries(t, fmt.Sprintf("%s %s donor stream=%s", fname, label, id), gotA[id], refTail[id])
				}
			}
		})
	}
}

// TestEngineSnapshotEarly: snapshots taken while windows are still
// filling (and before any interval history exists) restore correctly.
func TestEngineSnapshotEarly(t *testing.T) {
	factory := signature.HistogramFactory(-6, 9, 24)
	const steps = 9
	for _, cut := range []int{0, 1, 3} { // window is τ+τ′ = 6
		engA := newTestEngine(t, factory, 1)
		ref := newTestEngine(t, factory, 1)
		bags := streamBags("early", steps)
		var refTail []*Point
		for step := 0; step < steps; step++ {
			results, err := ref.PushBatch([]StreamBag{{StreamID: "early", Bag: bags[step]}})
			if err != nil {
				t.Fatal(err)
			}
			if step >= cut {
				refTail = append(refTail, results[0].Point)
			}
		}
		for step := 0; step < cut; step++ {
			if _, err := engA.PushBatch([]StreamBag{{StreamID: "early", Bag: bags[step]}}); err != nil {
				t.Fatal(err)
			}
		}
		if cut > 0 { // cut=0 snapshots an engine with no open streams
			if _, err := engA.Open("early"); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := engA.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		engB := newTestEngine(t, factory, 1)
		if err := engB.Restore(snap); err != nil {
			t.Fatal(err)
		}
		var got []*Point
		for step := cut; step < steps; step++ {
			results, err := engB.PushBatch([]StreamBag{{StreamID: "early", Bag: bags[step]}})
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, results[0].Point)
		}
		comparePointSeries(t, fmt.Sprintf("cut=%d", cut), got, refTail)
	}
}

func TestEngineRestoreValidation(t *testing.T) {
	factory := signature.HistogramFactory(-6, 9, 24)
	eng := newTestEngine(t, factory, 1)
	bags := streamBags("v", 8)
	for _, b := range bags {
		if _, err := eng.PushBatch([]StreamBag{{StreamID: "v", Bag: b}}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("version", func(t *testing.T) {
		bad := *snap
		bad.Version = 99
		if err := newTestEngine(t, factory, 1).Restore(&bad); err == nil {
			t.Fatal("expected version error")
		}
	})
	t.Run("fingerprint", func(t *testing.T) {
		bad := *snap
		bad.Tau++
		if err := newTestEngine(t, factory, 1).Restore(&bad); err == nil {
			t.Fatal("expected fingerprint error")
		}
		bad = *snap
		bad.Seed++
		if err := newTestEngine(t, factory, 1).Restore(&bad); err == nil {
			t.Fatal("expected seed mismatch error")
		}
		bad = *snap
		bad.BuilderTag = "hist(lo=-99,hi=99,bins=2)"
		if err := newTestEngine(t, factory, 1).Restore(&bad); err == nil {
			t.Fatal("expected builder tag mismatch error")
		}
		// The EMD large-path threshold selects which (equally optimal)
		// basis degenerate instances settle on, so engines that disagree
		// on it must refuse each other's snapshots instead of silently
		// diverging in the last bits.
		bad = *snap
		bad.EMDLargeK = 64
		if err := newTestEngine(t, factory, 1).Restore(&bad); err == nil {
			t.Fatal("expected EMD large-threshold mismatch error")
		}
	})
	t.Run("v3-envelope-refused", func(t *testing.T) {
		// A v3 envelope — Version 3, integer "score" fingerprint field,
		// no "statistic" — must be refused loudly by version, not limp
		// through with a zero-valued statistic name.
		blob, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var wire map[string]json.RawMessage
		if err := json.Unmarshal(blob, &wire); err != nil {
			t.Fatal(err)
		}
		wire["version"] = json.RawMessage("3")
		delete(wire, "statistic")
		wire["score"] = json.RawMessage("0")
		legacy, err := json.Marshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		var old EngineSnapshot
		if err := json.Unmarshal(legacy, &old); err != nil {
			t.Fatal(err)
		}
		err = newTestEngine(t, factory, 1).Restore(&old)
		if err == nil {
			t.Fatal("v3 envelope accepted")
		}
		if want := "snapshot version 3, this engine reads version 4"; !strings.Contains(err.Error(), want) {
			t.Fatalf("v3 refusal error %q does not name the versions (%q)", err, want)
		}
	})
	t.Run("statistic-mismatch", func(t *testing.T) {
		// Same schema version, different statistic name: the fingerprint
		// check must refuse (an lr score history is meaningless to a kl
		// engine even though every other knob agrees).
		bad := *snap
		bad.Statistic = "lr"
		if err := newTestEngine(t, factory, 1).Restore(&bad); err == nil {
			t.Fatal("expected statistic-name mismatch error")
		}
	})
	t.Run("open-streams", func(t *testing.T) {
		target := newTestEngine(t, factory, 1)
		if _, err := target.Open("occupied"); err != nil {
			t.Fatal(err)
		}
		if err := target.Restore(snap); err == nil {
			t.Fatal("expected open-streams error")
		}
		target.CloseAll()
		if err := target.Restore(snap); err != nil {
			t.Fatalf("restore after CloseAll: %v", err)
		}
	})
	t.Run("builder-statefulness-mismatch", func(t *testing.T) {
		bad := *snap
		bad.Streams = append([]StreamSnapshot(nil), snap.Streams...)
		st := randx.New(1).State()
		bad.Streams[0].Detector.BuilderRNG = &st
		target := newTestEngine(t, factory, 1)
		if err := target.Restore(&bad); err == nil {
			t.Fatal("expected builder mismatch error for RNG state on a stateless builder")
		}
	})
	t.Run("corrupt-matrix", func(t *testing.T) {
		bad := *snap
		bad.Streams = append([]StreamSnapshot(nil), snap.Streams...)
		det := bad.Streams[0].Detector
		det.LogD = det.LogD[:len(det.LogD)-1]
		bad.Streams[0].Detector = det
		target := newTestEngine(t, factory, 1)
		if err := target.Restore(&bad); err == nil {
			t.Fatal("expected matrix shape error")
		}
	})
}

// TestEngineShutdown: Shutdown closes every stream into the pool, is
// idempotent, and every entry point refuses work afterwards.
func TestEngineShutdown(t *testing.T) {
	factory := signature.HistogramFactory(-6, 9, 24)
	eng := newTestEngine(t, factory, 2)
	bags := streamBags("a", 4)
	for _, id := range []string{"a", "b", "c"} {
		if _, err := eng.PushBatch([]StreamBag{{StreamID: id, Bag: bags[0]}}); err != nil {
			t.Fatal(err)
		}
	}
	stA, ok := eng.Get("a")
	if !ok {
		t.Fatal("stream a should be open")
	}
	if got := eng.Stats(); got.Open != 3 || got.PooledFree != 0 {
		t.Fatalf("stats before shutdown = %+v", got)
	}

	eng.Shutdown()
	eng.Shutdown() // idempotent

	if got := eng.Stats(); got.Open != 0 || got.PooledFree != 3 {
		t.Fatalf("stats after shutdown = %+v, want 0 open / 3 pooled", got)
	}
	if _, err := eng.Open("z"); err == nil {
		t.Fatal("Open after Shutdown should fail")
	}
	if _, err := eng.PushBatch([]StreamBag{{StreamID: "a", Bag: bags[1]}}); err == nil {
		t.Fatal("PushBatch after Shutdown should fail")
	}
	if _, err := stA.Push(bags[1]); err == nil {
		t.Fatal("Push on a shut-down stream should fail")
	}
	if _, err := eng.Snapshot(); err == nil {
		t.Fatal("Snapshot after Shutdown should fail")
	}
}
