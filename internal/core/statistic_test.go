package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/infoest"
	"repro/internal/randx"
	"repro/internal/signature"
)

func TestStatisticRegistryBuiltins(t *testing.T) {
	names := StatisticNames()
	for _, want := range []string{"kl", "lr", "clr"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in statistic %q missing from registry: %v", want, names)
		}
		s, ok := LookupStatistic(want)
		if !ok || s.Name() != want {
			t.Fatalf("LookupStatistic(%q) = %v, %v", want, s, ok)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("StatisticNames not sorted: %v", names)
		}
	}
	if _, ok := LookupStatistic("no-such-statistic"); ok {
		t.Fatal("lookup of unregistered name succeeded")
	}
}

type testStatistic struct{ name string }

func (s testStatistic) Name() string        { return s.name }
func (testStatistic) Validate(Config) error { return nil }
func (testStatistic) Bind(win *infoest.Window) bootstrap.ScoreFunc {
	return func(gRef, gTest []float64) float64 { return infoest.ScoreKL(*win, gRef, gTest) }
}

func TestRegisterStatisticValidation(t *testing.T) {
	if err := RegisterStatistic(testStatistic{name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := RegisterStatistic(testStatistic{name: "has space"}); err == nil {
		t.Fatal("whitespace name accepted")
	}
	if err := RegisterStatistic(testStatistic{name: "has,comma"}); err == nil {
		t.Fatal("comma name accepted")
	}
	if err := RegisterStatistic(testStatistic{name: "kl"}); err == nil {
		t.Fatal("duplicate of built-in accepted")
	}
	if err := RegisterStatistic(testStatistic{name: "test-custom-kl"}); err != nil {
		t.Fatalf("valid registration failed: %v", err)
	}
	if err := RegisterStatistic(testStatistic{name: "test-custom-kl"}); err == nil {
		t.Fatal("duplicate custom registration accepted")
	}
	// A registered custom statistic is a first-class config choice.
	cfg := Config{
		Tau: 3, TauPrime: 3,
		Statistic: "test-custom-kl",
		Builder:   signature.NewHistogramBuilder(-4, 7, 20),
		Bootstrap: bootstrap.Config{Replicates: 50},
		Seed:      1,
	}
	if cfg.StatisticName() != "test-custom-kl" {
		t.Fatalf("StatisticName = %q", cfg.StatisticName())
	}
	if _, err := New(cfg); err != nil {
		t.Fatalf("detector with custom statistic: %v", err)
	}
}

func TestConfigStatisticResolution(t *testing.T) {
	base := Config{Tau: 3, TauPrime: 3, Builder: signature.NewHistogramBuilder(-4, 7, 20)}

	// The enum shim resolves to the registered names.
	for _, tc := range []struct {
		score ScoreType
		want  string
	}{{ScoreKL, "kl"}, {ScoreLR, "lr"}} {
		cfg := base
		cfg.Score = tc.score
		if got := cfg.StatisticName(); got != tc.want {
			t.Fatalf("Score=%v resolves to %q, want %q", tc.score, got, tc.want)
		}
	}

	// Statistic wins when set; agreement with Score is allowed.
	cfg := base
	cfg.Statistic = "lr"
	cfg.Score = ScoreLR
	if err := cfg.validate(); err != nil {
		t.Fatalf("agreeing Score/Statistic rejected: %v", err)
	}

	// Disagreement is refused loudly.
	cfg = base
	cfg.Statistic = "kl"
	cfg.Score = ScoreLR
	if err := cfg.validate(); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("disagreeing Score/Statistic: err = %v", err)
	}

	// Out-of-enum Score keeps the historical error text.
	cfg = base
	cfg.Score = ScoreType(9)
	if err := cfg.validate(); err == nil || !strings.Contains(err.Error(), "unknown score type 9") {
		t.Fatalf("bad enum: err = %v", err)
	}

	// Unregistered name lists the registered set.
	cfg = base
	cfg.Statistic = "nope"
	if err := cfg.validate(); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown statistic: err = %v", err)
	}

	// The lr statistic's structural requirement still binds by name.
	cfg = base
	cfg.Statistic = "lr"
	cfg.TauPrime = 1
	if err := cfg.validate(); err == nil || !strings.Contains(err.Error(), "TauPrime >= 2") {
		t.Fatalf("lr with TauPrime=1: err = %v", err)
	}
}

// TestStatisticShimBitIdentity is the refactor's contract on the
// historical surface: a detector configured through the ScoreType enum
// and one configured through the statistic name produce bit-identical
// Points — same scores, same intervals, same alarms.
func TestStatisticShimBitIdentity(t *testing.T) {
	seq := goldenSequence()[:40]
	for _, tc := range []struct {
		score ScoreType
		name  string
	}{{ScoreKL, "kl"}, {ScoreLR, "lr"}} {
		mk := func(mutate func(*Config)) []Point {
			cfg := Config{
				Tau: 4, TauPrime: 4,
				Builder:   signature.NewHistogramBuilder(-4, 7, 40),
				Bootstrap: bootstrap.Config{Replicates: 120, Alpha: 0.05},
				Seed:      77,
			}
			mutate(&cfg)
			pts, err := Run(cfg, seq)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			return pts
		}
		viaEnum := mk(func(c *Config) { c.Score = tc.score })
		viaName := mk(func(c *Config) { c.Statistic = tc.name })
		if len(viaEnum) != len(viaName) || len(viaEnum) == 0 {
			t.Fatalf("%s: point counts differ (%d vs %d)", tc.name, len(viaEnum), len(viaName))
		}
		for i := range viaEnum {
			a, b := viaEnum[i], viaName[i]
			sameKappa := a.Kappa == b.Kappa || (math.IsNaN(a.Kappa) && math.IsNaN(b.Kappa))
			if a.T != b.T || a.Score != b.Score || a.Interval != b.Interval || !sameKappa || a.Alarm != b.Alarm {
				t.Fatalf("%s: point %d differs between enum and name config:\n  enum: %+v\n  name: %+v", tc.name, i, a, b)
			}
		}
	}
}

func TestCLRPreprocessBag(t *testing.T) {
	clr, ok := LookupStatistic("clr")
	if !ok {
		t.Fatal("clr not registered")
	}
	prep := clr.(BagPreprocessor)

	t.Run("maps-to-clr-coordinates", func(t *testing.T) {
		b := bag.New(3, [][]float64{{1, 2, 4}})
		got, err := prep.PreprocessBag(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.T != 3 || got.Len() != 1 {
			t.Fatalf("shape changed: %+v", got)
		}
		// clr components must sum to zero and preserve log ratios.
		sum := 0.0
		for _, v := range got.Points[0] {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("clr components sum to %g, want 0", sum)
		}
		if d := (got.Points[0][1] - got.Points[0][0]) - math.Log(2); math.Abs(d) > 1e-12 {
			t.Fatalf("log-ratio not preserved: %g", d)
		}
	})

	t.Run("scale-invariant", func(t *testing.T) {
		// Raw counts and normalized shares are the same composition.
		counts := bag.New(0, [][]float64{{30, 50, 20}})
		shares := bag.New(0, [][]float64{{0.3, 0.5, 0.2}})
		a, err := prep.PreprocessBag(counts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := prep.PreprocessBag(shares)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a.Points[0] {
			if math.Abs(a.Points[0][j]-b.Points[0][j]) > 1e-9 {
				t.Fatalf("not scale-invariant: %v vs %v", a.Points[0], b.Points[0])
			}
		}
	})

	t.Run("zero-floored", func(t *testing.T) {
		if _, err := prep.PreprocessBag(bag.New(0, [][]float64{{0, 1}})); err != nil {
			t.Fatalf("zero component should be floored, got %v", err)
		}
	})
	t.Run("negative-rejected", func(t *testing.T) {
		if _, err := prep.PreprocessBag(bag.New(0, [][]float64{{-0.1, 1.1}})); err == nil {
			t.Fatal("negative component accepted")
		}
	})
	t.Run("dim1-rejected", func(t *testing.T) {
		if _, err := prep.PreprocessBag(bag.New(0, [][]float64{{1}})); err == nil {
			t.Fatal("1-D composition accepted (clr is identically zero there)")
		}
	})
	t.Run("empty-ok", func(t *testing.T) {
		if _, err := prep.PreprocessBag(bag.Bag{T: 1}); err != nil {
			t.Fatalf("empty bag: %v", err)
		}
	})
}

// TestCLRDetectorEndToEnd runs the clr statistic through the full
// detector pipeline on a share-of-total workload: traffic mix over 3
// categories whose composition shifts mid-stream while the TOTAL keeps
// growing — invisible to a scale-sensitive view, loud in CLR
// coordinates. Also pins that the preprocessing actually ran (a raw
// detector sees different signatures) and that the engine fingerprint
// carries the name.
func TestCLRDetectorEndToEnd(t *testing.T) {
	rng := randx.New(4242)
	const n, change = 60, 30
	seq := make(bag.Sequence, n)
	for ts := range seq {
		shares := []float64{0.6, 0.3, 0.1}
		if ts >= change {
			shares = []float64{0.3, 0.6, 0.1}
		}
		total := 1000.0 * (1.0 + 0.05*float64(ts)) // growing total: composition is the only signal
		pts := make([][]float64, 80)
		for i := range pts {
			p := make([]float64, 3)
			for j := range p {
				frac := shares[j] * math.Exp(rng.Normal(0, 0.08))
				p[j] = total * frac
			}
			pts[i] = p
		}
		seq[ts] = bag.New(ts, pts)
	}

	cfg := Config{
		Tau: 5, TauPrime: 5,
		Statistic: "clr",
		Builder:   signature.NewGridBuilder([]float64{-3, -3, -3}, []float64{3, 3, 3}, 12),
		Bootstrap: bootstrap.Config{Replicates: 150, Alpha: 0.05},
		Seed:      9,
	}
	points, err := Run(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	alarmed := false
	for _, p := range points {
		if p.Alarm && p.T >= change-2 && p.T <= change+8 {
			alarmed = true
		}
	}
	if !alarmed {
		t.Fatalf("clr detector raised no alarm near the composition change at t=%d; alarms at %v", change, Alarms(points))
	}

	// Fingerprint: an engine templated on clr stamps the name.
	eng, err := NewEngine(EngineConfig{
		Template: Config{Tau: 5, TauPrime: 5, Statistic: "clr",
			Bootstrap: bootstrap.Config{Replicates: 150, Alpha: 0.05}},
		Factory: signature.GridFactory([]float64{-3, -3, -3}, []float64{3, 3, 3}, 12),
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.StatisticName() != "clr" {
		t.Fatalf("engine StatisticName = %q", eng.StatisticName())
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Statistic != "clr" {
		t.Fatalf("snapshot fingerprint statistic = %q, want clr", snap.Statistic)
	}
}
