package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/randx"
	"repro/internal/signature"
)

// TestQuickScoreInvariantToWithinBagOrder: the pipeline must treat bags
// as SETS — permuting the points inside every bag cannot change any
// score (histogram signatures are exactly permutation invariant).
func TestQuickScoreInvariantToWithinBagOrder(t *testing.T) {
	cfg := Config{
		Tau: 3, TauPrime: 3,
		Builder:   signature.NewHistogramBuilder(-8, 8, 24),
		Bootstrap: bootstrap.Config{Replicates: 50},
		Seed:      1,
	}
	f := func(seed int64) bool {
		rng := randx.New(seed)
		seq := make(bag.Sequence, 10)
		shuffled := make(bag.Sequence, 10)
		for ts := range seq {
			mu := 0.0
			if ts >= 5 {
				mu = 3
			}
			vals := make([]float64, 30+rng.Intn(20))
			for i := range vals {
				vals[i] = rng.Normal(mu, 1)
			}
			seq[ts] = bag.FromScalars(ts, vals)
			perm := append([]float64(nil), vals...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			shuffled[ts] = bag.FromScalars(ts, perm)
		}
		a, err1 := Run(cfg, seq)
		b, err2 := Run(cfg, shuffled)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Abs(a[i].Score-b[i].Score) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickScoreShiftInvariance: translating every point of every bag by
// a constant must not change any score (EMD is translation invariant and
// the histogram range shifts with the data).
func TestQuickScoreShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		shift := rng.Normal(0, 10)
		mk := func(offset float64, hb signature.Builder) []Point {
			seq := make(bag.Sequence, 10)
			gen := randx.New(seed + 7)
			for ts := range seq {
				mu := offset
				if ts >= 5 {
					mu += 3
				}
				vals := make([]float64, 40)
				for i := range vals {
					vals[i] = gen.Normal(mu, 1)
				}
				seq[ts] = bag.FromScalars(ts, vals)
			}
			cfg := Config{
				Tau: 3, TauPrime: 3,
				Builder:   hb,
				Bootstrap: bootstrap.Config{Replicates: 50},
				Seed:      1,
			}
			pts, err := Run(cfg, seq)
			if err != nil {
				return nil
			}
			return pts
		}
		a := mk(0, signature.NewHistogramBuilder(-8, 11, 38))
		b := mk(shift, signature.NewHistogramBuilder(-8+shift, 11+shift, 38))
		if a == nil || b == nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntervalAlwaysBracketsSomeReplicate: Lo <= Up for every
// produced interval, and the point score is finite.
func TestQuickIntervalSane(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		seq := make(bag.Sequence, 12)
		for ts := range seq {
			vals := make([]float64, 20+rng.Intn(30))
			for i := range vals {
				vals[i] = rng.Normal(float64(ts%3), 1+rng.Float64())
			}
			seq[ts] = bag.FromScalars(ts, vals)
		}
		cfg := Config{
			Tau: 3, TauPrime: 3,
			Builder:   signature.NewHistogramBuilder(-6, 9, 30),
			Bootstrap: bootstrap.Config{Replicates: 60},
			Seed:      seed,
		}
		points, err := Run(cfg, seq)
		if err != nil {
			return false
		}
		for _, p := range points {
			if p.Interval.Lo > p.Interval.Up {
				return false
			}
			if math.IsNaN(p.Score) || math.IsInf(p.Score, 0) {
				return false
			}
			// An alarm implies κ > 0 and a defined previous interval.
			if p.Alarm && !(p.Kappa > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickDuplicatingEveryPointInvariant: duplicating every point of
// every bag doubles the masses but must not change normalized-signature
// scores.
func TestQuickDuplicatingEveryPointInvariant(t *testing.T) {
	cfg := Config{
		Tau: 3, TauPrime: 3,
		Builder:   signature.NewHistogramBuilder(-8, 8, 24),
		Bootstrap: bootstrap.Config{Replicates: 40},
		Seed:      3,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := make(bag.Sequence, 8)
		doubled := make(bag.Sequence, 8)
		for ts := range seq {
			n := 20 + rng.Intn(20)
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = rng.NormFloat64() * 2
			}
			seq[ts] = bag.FromScalars(ts, vals)
			doubled[ts] = bag.FromScalars(ts, append(append([]float64{}, vals...), vals...))
		}
		a, err1 := Run(cfg, seq)
		b, err2 := Run(cfg, doubled)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if math.Abs(a[i].Score-b[i].Score) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
