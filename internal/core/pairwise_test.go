package core

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bag"
	"repro/internal/cluster"
	"repro/internal/emd"
	"repro/internal/randx"
	"repro/internal/signature"
)

// seedEraPairwiseEMD is the flat pre-tile implementation (single
// n(n−1)/2 job queue, fully materialized [][]float64), kept verbatim in
// the test as the bit-identity oracle for the tiled engine.
func seedEraPairwiseEMD(builder signature.Builder, seq bag.Sequence, ground emd.Ground, rawMass bool) ([][]float64, error) {
	sigs, err := signature.BuildSequence(builder, seq)
	if err != nil {
		return nil, err
	}
	if !rawMass {
		for i := range sigs {
			sigs[i] = sigs[i].Normalized()
		}
	}
	n := len(sigs)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	type pair struct{ i, j int }
	jobs := make(chan pair, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	errOnce := sync.Once{}
	var firstErr error
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sv := emd.NewSolver()
			for p := range jobs {
				if failed.Load() {
					continue
				}
				dist, err := sv.Distance(sigs[p.i], sigs[p.j], ground)
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("core: EMD(%d,%d): %w", p.i, p.j, err)
					})
					failed.Store(true)
					continue
				}
				m[p.i][p.j] = dist
				m[p.j][p.i] = dist
			}
		}()
	}
produce:
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if failed.Load() {
				break produce
			}
			jobs <- pair{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

func assertMatrixEqualsRef(t *testing.T, label string, m *PairwiseMatrix, ref [][]float64) {
	t.Helper()
	if m.N() != len(ref) {
		t.Fatalf("%s: matrix size %d, want %d", label, m.N(), len(ref))
	}
	for i := range ref {
		for j := range ref[i] {
			if got := m.At(i, j); got != ref[i][j] {
				t.Fatalf("%s: cell (%d,%d) = %g, want %g (must be bit-identical)", label, i, j, got, ref[i][j])
			}
		}
	}
}

// TestPairwiseTiledBitIdenticalToFlat is the tentpole property test:
// the tiled matrix equals the flat seed-era PairwiseEMD bit-for-bit for
// every tested tile size, worker count, and shard split (after
// MergePairwise) — tiling, parallelism, and sharding are pure
// throughput/topology knobs.
func TestPairwiseTiledBitIdenticalToFlat(t *testing.T) {
	const n = 23
	rng := randx.New(41)
	seq := gaussianSeq(rng, n, n/2, 40, 0, 4)
	builder := signature.NewHistogramBuilder(-8, 12, 32) // deterministic: flat and tiled see the same signatures

	ref, err := seedEraPairwiseEMD(builder, seq, nil, false)
	if err != nil {
		t.Fatal(err)
	}

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, tile := range []int{1, 7, 64, n} {
		for _, workers := range workerCounts {
			label := fmt.Sprintf("tile=%d workers=%d", tile, workers)
			m, err := Pairwise(seq,
				WithPairBuilder(builder),
				WithTileSize(tile),
				WithPairWorkers(workers),
			)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			assertMatrixEqualsRef(t, label, m, ref)

			for _, shards := range []int{1, 2, 3} {
				parts := make([]*PartialMatrix, shards)
				for s := 0; s < shards; s++ {
					parts[s], err = PairwiseShard(seq,
						WithPairBuilder(builder),
						WithTileSize(tile),
						WithPairWorkers(workers),
						WithShard(s, shards),
					)
					if err != nil {
						t.Fatalf("%s shard %d/%d: %v", label, s, shards, err)
					}
				}
				merged, err := MergePairwise(parts...)
				if err != nil {
					t.Fatalf("%s merge %d shards: %v", label, shards, err)
				}
				assertMatrixEqualsRef(t, fmt.Sprintf("%s shards=%d", label, shards), merged, ref)
			}
		}
	}
}

// TestPairwiseFactoryPathDeterministic: the factory path is a pure
// function of (factory, seed, seq) — identical across worker counts,
// tile sizes, and shard layouts even for the randomized k-means builder.
func TestPairwiseFactoryPathDeterministic(t *testing.T) {
	const n = 17
	rng := randx.New(43)
	seq := make(bag.Sequence, n)
	for ts := 0; ts < n; ts++ {
		pts := make([][]float64, 30)
		for i := range pts {
			pts[i] = rng.NormalVec(2, float64(ts/6), 1)
		}
		seq[ts] = bag.New(ts, pts)
	}
	factory := signature.KMeansFactory(6, cluster.Config{MaxIters: 25})
	const seed = 99

	ref, err := Pairwise(seq, WithPairBuilderFactory(factory, seed), WithPairWorkers(1), WithTileSize(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		for _, tile := range []int{1, 5, n} {
			m, err := Pairwise(seq, WithPairBuilderFactory(factory, seed), WithPairWorkers(workers), WithTileSize(tile))
			if err != nil {
				t.Fatal(err)
			}
			assertMatrixEqualsRef(t, fmt.Sprintf("factory tile=%d workers=%d", tile, workers), m, ref.Rows())
		}
	}
	// Two-shard split through the factory path merges to the same matrix.
	var parts []*PartialMatrix
	for s := 0; s < 2; s++ {
		p, err := PairwiseShard(seq, WithPairBuilderFactory(factory, seed), WithTileSize(5), WithShard(s, 2))
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := MergePairwise(parts...)
	if err != nil {
		t.Fatal(err)
	}
	assertMatrixEqualsRef(t, "factory shards=2", merged, ref.Rows())
}

// TestPartialMatrixJSONRoundTrip: partials survive the serialization
// boundary between shard processes without perturbing a single bit.
func TestPartialMatrixJSONRoundTrip(t *testing.T) {
	rng := randx.New(44)
	seq := gaussianSeq(rng, 11, 5, 30, 0, 3)
	builder := signature.NewHistogramBuilder(-8, 10, 24)
	ref, err := seedEraPairwiseEMD(builder, seq, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	var parts []*PartialMatrix
	for s := 0; s < 2; s++ {
		p, err := PairwiseShard(seq, WithPairBuilder(builder), WithTileSize(3), WithShard(s, 2))
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var rt PartialMatrix
		if err := json.Unmarshal(blob, &rt); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, &rt)
	}
	merged, err := MergePairwise(parts...)
	if err != nil {
		t.Fatal(err)
	}
	assertMatrixEqualsRef(t, "json round-trip", merged, ref)
}

func TestPairwiseMatrixViews(t *testing.T) {
	rng := randx.New(45)
	seq := gaussianSeq(rng, 6, 3, 20, 0, 3)
	m, err := Pairwise(seq, WithPairBuilder(signature.NewHistogramBuilder(-8, 10, 24)))
	if err != nil {
		t.Fatal(err)
	}
	rows := m.Rows()
	if len(rows) != m.N() {
		t.Fatalf("Rows() has %d rows, want %d", len(rows), m.N())
	}
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != m.At(i, j) {
				t.Fatalf("Rows()[%d][%d] = %g, At = %g", i, j, rows[i][j], m.At(i, j))
			}
		}
	}
	if m.At(0, 0) != 0 || m.At(3, 3) != 0 {
		t.Error("diagonal must be zero")
	}
	if &m.Rows()[0][0] != &m.Data()[0] {
		t.Error("Rows() must be a view over the flat storage, not a copy")
	}
}

func TestPairwiseOptionValidation(t *testing.T) {
	seq := bag.Sequence{bag.FromScalars(0, []float64{1})}
	hb := signature.NewHistogramBuilder(0, 2, 2)
	cases := map[string][]PairwiseOpt{
		"no builder":       {},
		"both paths":       {WithPairBuilder(hb), WithPairBuilderFactory(signature.HistogramFactory(0, 2, 2), 1)},
		"nil builder":      {WithPairBuilder(nil)},
		"nil factory":      {WithPairBuilderFactory(nil, 1)},
		"negative tile":    {WithPairBuilder(hb), WithTileSize(-1)},
		"bad shard index":  {WithPairBuilder(hb), WithShard(2, 2)},
		"bad shard count":  {WithPairBuilder(hb), WithShard(0, 0)},
		"sharded Pairwise": {WithPairBuilder(hb), WithShard(0, 2)},
	}
	for name, opts := range cases {
		if _, err := Pairwise(seq, opts...); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMergePairwiseValidation(t *testing.T) {
	rng := randx.New(46)
	seq := gaussianSeq(rng, 9, 4, 20, 0, 3)
	builder := signature.NewHistogramBuilder(-8, 10, 16)
	shard := func(s, k, tile int) *PartialMatrix {
		t.Helper()
		p, err := PairwiseShard(seq, WithPairBuilder(builder), WithTileSize(tile), WithShard(s, k))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p0, p1 := shard(0, 2, 3), shard(1, 2, 3)

	if _, err := MergePairwise(); err == nil {
		t.Error("empty merge: expected error")
	}
	if _, err := MergePairwise(p0); err == nil {
		t.Error("missing shard: expected coverage error")
	}
	if _, err := MergePairwise(p0, p1, p1); err == nil {
		t.Error("duplicate shard: expected overlap error")
	}
	if _, err := MergePairwise(p0, shard(1, 2, 4)); err == nil {
		t.Error("mismatched tile size: expected layout error")
	}
	if m, err := MergePairwise(p0, p1); err != nil || m.N() != 9 {
		t.Errorf("valid merge failed: %v", err)
	}
	// A corrupted packed block must be rejected, not silently unpacked.
	bad := *p1
	bad.Values = append([][]float64{}, p1.Values...)
	bad.Values[0] = bad.Values[0][:len(bad.Values[0])-1]
	if _, err := MergePairwise(p0, &bad); err == nil {
		t.Error("truncated tile block: expected error")
	}
}

// TestPairwiseShardLayoutPartitionsTriangle: for several (n, tile, k)
// layouts, the shards' tile lists partition the upper-triangle grid.
func TestPairwiseShardLayoutPartitionsTriangle(t *testing.T) {
	for _, n := range []int{1, 5, 23, 64, 100} {
		for _, tile := range []int{1, 7, 64} {
			nt := tileGrid(n, tile)
			want := nt * (nt + 1) / 2
			for _, k := range []int{1, 2, 3, 5} {
				seen := map[tileRef]int{}
				total := 0
				for s := 0; s < k; s++ {
					for _, tl := range shardTiles(n, tile, s, k) {
						seen[tl]++
						total++
					}
				}
				if total != want || len(seen) != want {
					t.Fatalf("n=%d tile=%d k=%d: %d tiles over %d distinct, want %d", n, tile, k, total, len(seen), want)
				}
				for tl, c := range seen {
					if c != 1 {
						t.Fatalf("n=%d tile=%d k=%d: tile %v assigned %d times", n, tile, k, tl, c)
					}
				}
			}
		}
	}
}

func TestPairwiseEmptyAndSingle(t *testing.T) {
	builder := signature.NewHistogramBuilder(0, 2, 2)
	m, err := Pairwise(bag.Sequence{}, WithPairBuilder(builder))
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 0 || len(m.Rows()) != 0 {
		t.Errorf("empty sequence: n=%d", m.N())
	}
	m, err = Pairwise(bag.Sequence{bag.FromScalars(0, []float64{1})}, WithPairBuilder(builder))
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 1 || m.At(0, 0) != 0 {
		t.Errorf("single bag: n=%d, diag=%g", m.N(), m.At(0, 0))
	}
}

// TestPairwiseTiledCancelsOnErrorWithoutLeaks extends the call-counting
// cancellation test to the tiled engine: a failing ground distance must
// cancel the outstanding tiles promptly (the ground runs for far fewer
// than all pairs) across tile sizes, and the worker goroutines must all
// exit — no leaks.
func TestPairwiseTiledCancelsOnErrorWithoutLeaks(t *testing.T) {
	const n = 48
	seq := make(bag.Sequence, n)
	for i := range seq {
		// Two points per bag so the Euclidean 1-D fast path is skipped in
		// favour of the simplex (which consults the ground distance).
		seq[i] = bag.New(i, [][]float64{{float64(i), 1}, {float64(i), 2}})
	}
	total := int64(n * (n - 1) / 2)
	for _, tile := range []int{1, 5, 64} {
		for _, workers := range []int{1, 4} {
			var groundCalls atomic.Int64
			ground := emd.Ground(func(a, b []float64) float64 {
				groundCalls.Add(1)
				return math.NaN() // poison: every pair fails
			})
			before := runtime.NumGoroutine()
			_, err := Pairwise(seq,
				WithPairBuilder(&badSigBuilder{badAt: -1}),
				WithPairGround(ground),
				WithPairRawMass(true),
				WithTileSize(tile),
				WithPairWorkers(workers),
			)
			if err == nil {
				t.Fatalf("tile=%d workers=%d: expected error from poisoned ground", tile, workers)
			}
			if calls := groundCalls.Load(); calls >= total/2 {
				t.Errorf("tile=%d workers=%d: ground ran %d times; want far fewer than the full %d pairs (cancellation failed)",
					tile, workers, calls, total)
			}
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if now := runtime.NumGoroutine(); now > before {
				t.Errorf("tile=%d workers=%d: %d goroutines before, %d after — workers leaked", tile, workers, before, now)
			}
		}
	}
}

// TestAutoTileSizeFeedsWorkers guards against the small-corpus
// parallelism collapse: the automatic tile size must yield enough tiles
// that a Fig. 6-sized corpus (n=20) still fans out across workers,
// instead of one 64-edge tile pinning all n(n−1)/2 solves to a single
// goroutine. The rule must also be machine-independent (pure in n) so
// shard processes agree on the grid.
func TestAutoTileSizeFeedsWorkers(t *testing.T) {
	for _, n := range []int{2, 20, 64, 512, 100000} {
		tile := autoTileSize(n)
		if tile < 1 || tile > MaxTileSize {
			t.Fatalf("autoTileSize(%d) = %d, want in [1, %d]", n, tile, MaxTileSize)
		}
		if n >= 16 {
			if tiles := len(shardTiles(n, tile, 0, 1)); tiles < 16 {
				t.Errorf("n=%d: only %d tiles at auto tile %d; small corpora must still feed all workers", n, tiles, tile)
			}
		}
	}
	if autoTileSize(100000) != MaxTileSize {
		t.Errorf("large n must cap at MaxTileSize")
	}
}

// TestMergePairwiseRejectsCorruptEmptyPartial: a malformed partial
// declaring n=0 but carrying tile ids must return an error, not panic
// with a divide by zero in the tile-id decomposition.
func TestMergePairwiseRejectsCorruptEmptyPartial(t *testing.T) {
	corrupt := &PartialMatrix{N: 0, TileSize: 1, TileIDs: []int{0}, Values: [][]float64{{}}}
	if _, err := MergePairwise(corrupt); err == nil {
		t.Error("corrupt n=0 partial with tiles must error")
	}
}

// TestPairwiseMatrixRowsConcurrent: Rows() is built eagerly, so
// concurrent readers on a shared matrix must be race-free (this test
// exists to fail under -race if the view ever becomes lazy again).
func TestPairwiseMatrixRowsConcurrent(t *testing.T) {
	rng := randx.New(47)
	seq := gaussianSeq(rng, 8, 4, 20, 0, 3)
	m, err := Pairwise(seq, WithPairBuilder(signature.NewHistogramBuilder(-8, 10, 16)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows := m.Rows()
			if rows[1][2] != m.At(1, 2) {
				t.Error("Rows() view inconsistent")
			}
		}()
	}
	wg.Wait()
}

// TestPairwiseShardMemoryIsPacked: a shard's partial carries exactly its
// packed cells — the sum of its value-block lengths equals the cells of
// its tiles, not n² (the full-matrix scratch the shard path must never
// allocate per the n ≫ 10³ design).
func TestPairwiseShardMemoryIsPacked(t *testing.T) {
	rng := randx.New(48)
	const n = 30
	seq := gaussianSeq(rng, n, n/2, 20, 0, 3)
	total := 0
	for s := 0; s < 3; s++ {
		p, err := PairwiseShard(seq,
			WithPairBuilder(signature.NewHistogramBuilder(-8, 10, 16)),
			WithTileSize(7), WithShard(s, 3))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range p.Values {
			total += len(v)
		}
	}
	if want := n * (n - 1) / 2; total != want {
		t.Errorf("shards carry %d packed cells in total, want exactly the %d upper-triangle cells", total, want)
	}
}

// TestPairwiseEMDLargeThresholdOption drives the tiled engine with the
// block-pricing EMD path forced on every worker solver: the matrix must
// agree with the classic-path matrix within the solver conformance
// envelope (1e-9 — the two paths may settle on different equally
// optimal bases, so bit-identity is deliberately NOT promised across
// DIFFERENT thresholds), and a sharded run with the same threshold must
// merge bit-identically to its own single-process run.
func TestPairwiseEMDLargeThresholdOption(t *testing.T) {
	const n = 20
	rng := randx.New(44)
	seq := make(bag.Sequence, n)
	for ts := 0; ts < n; ts++ {
		pts := make([][]float64, 30)
		for i := range pts {
			pts[i] = rng.NormalVec(2, float64(ts/7), 1)
		}
		seq[ts] = bag.New(ts, pts)
	}
	factory := signature.KMeansFactory(6, cluster.Config{MaxIters: 25})
	const seed = 7

	classic, err := Pairwise(seq, WithPairBuilderFactory(factory, seed), WithPairEMDLargeThreshold(-1))
	if err != nil {
		t.Fatal(err)
	}
	forced, err := Pairwise(seq, WithPairBuilderFactory(factory, seed), WithPairEMDLargeThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c, f := classic.At(i, j), forced.At(i, j)
			if math.Abs(c-f) > 1e-9*(1+c) {
				t.Fatalf("cell (%d,%d): classic %.17g vs block-pricing %.17g", i, j, c, f)
			}
		}
	}

	// Same threshold on every shard → merged matrix bit-identical to the
	// single-process forced run.
	var parts []*PartialMatrix
	for s := 0; s < 2; s++ {
		p, err := PairwiseShard(seq, WithPairBuilderFactory(factory, seed),
			WithPairEMDLargeThreshold(1), WithTileSize(5), WithShard(s, 2))
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := MergePairwise(parts...)
	if err != nil {
		t.Fatal(err)
	}
	forcedTiled, err := Pairwise(seq, WithPairBuilderFactory(factory, seed),
		WithPairEMDLargeThreshold(1), WithTileSize(5))
	if err != nil {
		t.Fatal(err)
	}
	assertMatrixEqualsRef(t, "forced-large shards=2", merged, forcedTiled.Rows())
}
