package core

import (
	"testing"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/randx"
	"repro/internal/signature"
	"repro/internal/testutil"
)

func warmDetector(t testing.TB, workers int) (*Detector, []bag.Bag) {
	t.Helper()
	rng := randx.New(6)
	d, err := New(Config{
		Tau: 5, TauPrime: 5,
		Builder:   signature.NewHistogramBuilder(-5, 5, 40),
		Bootstrap: bootstrap.Config{Replicates: 1000, Workers: workers},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bags := make([]bag.Bag, 24)
	for ts := range bags {
		vals := make([]float64, 300)
		for i := range vals {
			vals[i] = rng.Normal(0, 1)
		}
		bags[ts] = bag.FromScalars(ts, vals)
	}
	for ts := 0; ts < len(bags); ts++ {
		if _, err := d.Push(bags[ts]); err != nil {
			t.Fatal(err)
		}
	}
	return d, bags
}

// TestDetectorBootstrapStageZeroAllocs is the allocation-regression guard
// for Detector.Push's score/bootstrap stage: once the window is warm, the
// interval computation (window rebind, T=1000 Dirichlet replicates, score
// evaluations, quantiles) must not allocate at all.
func TestDetectorBootstrapStageZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	d, _ := warmDetector(t, 1)
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := d.interval(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm detector score/bootstrap stage: %g allocs/op, want 0", allocs)
	}
}

// TestDetectorPushSteadyStateAllocs bounds the whole Push: the signature
// build inherently allocates (it returns a fresh signature), but the
// window slide, EMD row, and bootstrap stage must not add per-push
// garbage beyond it.
func TestDetectorPushSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	d, bags := warmDetector(t, 1)
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := d.Push(bags[i%len(bags)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Builder output (centers slice + rows + weights + normalized copy) is
	// ~46 allocations for a 40-bin histogram; anything near the old
	// per-push cost (hundreds: fresh simplex scratch per EMD plus
	// bootstrap buffers) must fail.
	if allocs > 60 {
		t.Errorf("steady-state Push: %g allocs/op, want <= 60 (signature build only)", allocs)
	}
}

// TestDetectorOutputInvariantToBootstrapWorkers: the sharded bootstrap
// must make detector output identical whatever Config.Bootstrap.Workers
// is — parallelism is a pure throughput knob.
func TestDetectorOutputInvariantToBootstrapWorkers(t *testing.T) {
	run := func(workers int) []Point {
		rng := randx.New(11)
		cfg := Config{
			Tau: 4, TauPrime: 4,
			Builder:   signature.NewHistogramBuilder(-6, 6, 24),
			Bootstrap: bootstrap.Config{Replicates: 400, Workers: workers},
			Seed:      9,
		}
		seq := make(bag.Sequence, 20)
		for ts := range seq {
			mu := 0.0
			if ts >= 10 {
				mu = 3
			}
			vals := make([]float64, 80)
			for i := range vals {
				vals[i] = rng.Normal(mu, 1)
			}
			seq[ts] = bag.FromScalars(ts, vals)
		}
		pts, err := Run(cfg, seq)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !pointsEqual(got[i], want[i]) {
				t.Fatalf("workers=%d: point %d %+v != %+v", workers, i, got[i], want[i])
			}
		}
	}
}
