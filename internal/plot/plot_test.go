package plot

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesBasic(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 2, 1, 0}
	out := Series("test", vals, nil, nil, []int{3}, []int{2}, 5)
	if !strings.Contains(out, "test") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 5 rows + alarm rail.
	if len(lines) != 7 {
		t.Fatalf("got %d lines, want 7:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no data glyphs")
	}
	rail := lines[len(lines)-1]
	if rail[3] != 'X' {
		t.Errorf("alarm mark missing: %q", rail)
	}
	if !strings.Contains(out, ":") {
		t.Error("change-point column missing")
	}
}

func TestSeriesWithBands(t *testing.T) {
	vals := []float64{1, 2, 3}
	lo := []float64{0.5, 1.5, 2.5}
	hi := []float64{1.5, 2.5, 3.5}
	out := Series("bands", vals, lo, hi, nil, nil, 9)
	if !strings.Contains(out, ".") {
		t.Error("confidence band glyphs missing")
	}
}

func TestSeriesEdgeCases(t *testing.T) {
	if out := Series("e", nil, nil, nil, nil, nil, 5); !strings.Contains(out, "empty") {
		t.Error("empty series")
	}
	out := Series("nan", []float64{math.NaN(), math.NaN()}, nil, nil, nil, nil, 5)
	if !strings.Contains(out, "no finite") {
		t.Errorf("all-NaN series: %q", out)
	}
	// Constant series must not divide by zero.
	out = Series("const", []float64{2, 2, 2}, nil, nil, nil, nil, 5)
	if !strings.Contains(out, "*") {
		t.Error("constant series not rendered")
	}
	// Malformed bands.
	out = Series("bad", []float64{1, 2}, []float64{1}, nil, nil, nil, 5)
	if !strings.Contains(out, "malformed") {
		t.Error("malformed bands not reported")
	}
}

func TestHeatmap(t *testing.T) {
	m := [][]float64{{0, 1}, {1, 0}}
	out := Heatmap("hm", m)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Diagonal (0) must be lighter than off-diagonal (1).
	if lines[1][0] == lines[1][1] {
		t.Error("heatmap has no contrast")
	}
	if out := Heatmap("e", nil); !strings.Contains(out, "empty") {
		t.Error("empty heatmap")
	}
	// Constant matrix must not panic.
	Heatmap("c", [][]float64{{5, 5}, {5, 5}})
}

func TestScatter(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {0.5, 0.2}}
	out := Scatter("sc", pts, 20, 10)
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Errorf("point labels missing:\n%s", out)
	}
	if out := Scatter("e", nil, 10, 10); !strings.Contains(out, "empty") {
		t.Error("empty scatter")
	}
	if out := Scatter("bad", [][]float64{{1}}, 10, 10); !strings.Contains(out, "2-D") {
		t.Error("1-D points not rejected")
	}
	// Tiny requested size gets clamped.
	out = Scatter("clamp", pts, 1, 1)
	if len(out) < 10 {
		t.Error("clamped scatter too small")
	}
}

func TestEventRaster(t *testing.T) {
	out := EventRaster("er", 10, []int{2, 11}, []int{2, 5})
	if !strings.Contains(out, "alarms") || !strings.Contains(out, "events") {
		t.Error("rows missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	alarmRow := strings.TrimPrefix(lines[1], "alarms: ")
	if alarmRow[2] != 'X' {
		t.Error("alarm not marked")
	}
	if strings.Count(alarmRow, "X") != 1 {
		t.Error("out-of-range alarm leaked")
	}
	if out := EventRaster("e", 0, nil, nil); !strings.Contains(out, "empty") {
		t.Error("empty raster")
	}
}
