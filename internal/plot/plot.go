// Package plot renders the repository's experiment artifacts as ASCII:
// score series with confidence bands and alarm marks (Fig. 6/7/10/11
// right panels), distance-matrix heatmaps (Fig. 6 left panels), and 2-D
// scatter plots for MDS embeddings (Fig. 6 middle panels). Everything
// writes plain text so experiment drivers can stream to stdout or logs.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series renders a line plot of values (optionally with [lo, hi]
// confidence bands: pass nil to omit) over `height` text rows. Alarm
// positions (indices into values) are marked with 'X' on an extra rail,
// and change positions with '|'. Width equals len(values) columns.
func Series(title string, values, lo, hi []float64, alarms, changes []int, height int) string {
	n := len(values)
	if n == 0 {
		return title + ": (empty)\n"
	}
	if height < 2 {
		height = 8
	}
	if (lo != nil && len(lo) != n) || (hi != nil && len(hi) != n) {
		return title + ": (malformed confidence bands)\n"
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	scan := func(xs []float64) {
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	scan(values)
	if lo != nil {
		scan(lo)
	}
	if hi != nil {
		scan(hi)
	}
	if math.IsInf(minV, 1) {
		return title + ": (no finite values)\n"
	}
	if maxV == minV {
		maxV = minV + 1
	}
	rowOf := func(v float64) int {
		r := int(math.Round((v - minV) / (maxV - minV) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r > height-1 {
			r = height - 1
		}
		return height - 1 - r // row 0 is the top
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", n))
	}
	alarmSet := map[int]bool{}
	for _, a := range alarms {
		alarmSet[a] = true
	}
	changeSet := map[int]bool{}
	for _, c := range changes {
		changeSet[c] = true
	}
	for i := 0; i < n; i++ {
		if changeSet[i] {
			for r := 0; r < height; r++ {
				grid[r][i] = ':'
			}
		}
		if lo != nil && hi != nil && !math.IsNaN(lo[i]) && !math.IsNaN(hi[i]) {
			top, bot := rowOf(hi[i]), rowOf(lo[i])
			for r := top; r <= bot; r++ {
				grid[r][i] = '.'
			}
		}
		if !math.IsNaN(values[i]) && !math.IsInf(values[i], 0) {
			grid[rowOf(values[i])][i] = '*'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.3g, %.3g]\n", title, minV, maxV)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	rail := []byte(strings.Repeat("-", n))
	for i := range rail {
		if alarmSet[i] {
			rail[i] = 'X'
		}
	}
	b.Write(rail)
	b.WriteByte('\n')
	return b.String()
}

// Heatmap renders a matrix with darker glyphs for larger values — the
// ASCII analogue of the Fig. 6 EMD matrices.
func Heatmap(title string, m [][]float64) string {
	if len(m) == 0 {
		return title + ": (empty)\n"
	}
	shades := []byte(" .:-=+*#%@")
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, row := range m {
		for _, v := range row {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == minV {
		maxV = minV + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.3g, %.3g]\n", title, minV, maxV)
	for _, row := range m {
		line := make([]byte, len(row))
		for j, v := range row {
			idx := int((v - minV) / (maxV - minV) * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line[j] = shades[idx]
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// Scatter renders 2-D points in a width×height character grid, labelling
// each point with the last digit of its index (the Fig. 6 MDS panels
// label bags by number). Points beyond the first 10 reuse digits.
func Scatter(title string, pts [][]float64, width, height int) string {
	if len(pts) == 0 {
		return title + ": (empty)\n"
	}
	if width < 8 {
		width = 48
	}
	if height < 4 {
		height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		if len(p) < 2 {
			return title + ": (points must be 2-D)\n"
		}
		minX = math.Min(minX, p[0])
		maxX = math.Max(maxX, p[0])
		minY = math.Min(minY, p[1])
		maxY = math.Max(maxY, p[1])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i, p := range pts {
		c := int((p[0] - minX) / (maxX - minX) * float64(width-1))
		r := height - 1 - int((p[1]-minY)/(maxY-minY)*float64(height-1))
		grid[r][c] = byte('0' + i%10)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  x:[%.3g, %.3g] y:[%.3g, %.3g]\n", title, minX, maxX, minY, maxY)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// EventRaster renders alarm times against labelled event times on a
// shared time axis of n steps — the ASCII analogue of Fig. 11's event
// alignment.
func EventRaster(title string, n int, alarms, events []int) string {
	if n <= 0 {
		return title + ": (empty)\n"
	}
	alarmRow := []byte(strings.Repeat(" ", n))
	eventRow := []byte(strings.Repeat(" ", n))
	for _, a := range alarms {
		if a >= 0 && a < n {
			alarmRow[a] = 'X'
		}
	}
	for _, e := range events {
		if e >= 0 && e < n {
			eventRow[e] = '|'
		}
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString("alarms: " + string(alarmRow) + "\n")
	b.WriteString("events: " + string(eventRow) + "\n")
	return b.String()
}
