package bootstrap

import (
	"encoding/json"
	"testing"
)

// stateScore is a cheap deterministic statistic for stream-state tests.
func stateScore(gRef, gTest []float64) float64 {
	s := 0.0
	for i, v := range gRef {
		s += float64(i+1) * v
	}
	for i, v := range gTest {
		s -= float64(i+1) * v
	}
	return s
}

func stateIntervals(t *testing.T, e *Estimator, n int) []Interval {
	t.Helper()
	baseRef := []float64{0.25, 0.25, 0.25, 0.25}
	baseTest := []float64{0.5, 0.25, 0.25}
	cfg := Config{Replicates: 150, Alpha: 0.1}
	out := make([]Interval, n)
	for i := range out {
		iv, err := e.Interval(stateScore, baseRef, baseTest, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = iv
	}
	return out
}

// TestEstimatorStreamStateRoundTrip: capture mid-run, serialize, restore
// onto a fresh estimator, and require the remaining interval sequence to
// be bit-identical to the uninterrupted one.
func TestEstimatorStreamStateRoundTrip(t *testing.T) {
	ref := NewSeededEstimator(424242)
	stateIntervals(t, ref, 5) // advance mid-stream

	st, err := ref.StreamState()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) == 0 {
		t.Fatal("expected materialized shards after intervals")
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back StreamState
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	restored := NewSeededEstimator(0) // wrong seed on purpose; RestoreStreams must fix it
	if err := restored.RestoreStreams(back); err != nil {
		t.Fatal(err)
	}
	want := stateIntervals(t, ref, 5)
	got := stateIntervals(t, restored, 5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d after restore %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestEstimatorRestoreOntoWarm: restoring onto a pooled estimator that
// already ran on a different seed (extra shards materialized) must rewind
// the surplus shards to their initial position too.
func TestEstimatorRestoreOntoWarm(t *testing.T) {
	ref := NewSeededEstimator(7)
	stateIntervals(t, ref, 3)
	st, err := ref.StreamState()
	if err != nil {
		t.Fatal(err)
	}

	warm := NewSeededEstimator(1313)
	// Materialize MORE shards than the snapshot has by running a larger
	// replicate count.
	base := []float64{0.5, 0.5}
	if _, err := warm.Interval(stateScore, base, base, Config{Replicates: 150 * 4}, nil); err != nil {
		t.Fatal(err)
	}
	if err := warm.RestoreStreams(st); err != nil {
		t.Fatal(err)
	}
	want := stateIntervals(t, ref, 4)
	got := stateIntervals(t, warm, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d after warm restore %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestStreamStatePerCallEstimatorErrors(t *testing.T) {
	if _, err := NewEstimator().StreamState(); err == nil {
		t.Fatal("expected error for per-call estimator")
	}
}
