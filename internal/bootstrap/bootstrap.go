// Package bootstrap implements the Bayesian bootstrap (Rubin 1981) used
// in §4 of the paper to attach confidence intervals to change-point
// scores, and the overlap test (Eq. 18-20) that turns those intervals
// into an adaptive alarm threshold.
//
// Instead of resampling data points, the Bayesian bootstrap resamples the
// WEIGHTS attached to them: each replicate draws a fresh weight vector
// from a Dirichlet distribution and re-evaluates the statistic. Because
// the change-point scores of this paper are explicit functions of the
// signature weights (and of a fixed log-EMD matrix), every replicate
// costs only O((τ+τ′)²) floating-point work — no distance is recomputed.
//
// The plain bootstrap uses Dir(1,…,1) (Appendix A). When the analyst
// supplies non-uniform base weights θ (e.g. the time-discounting of
// Eq. 15), Appendix B prescribes Dir(n·θ), which matches the first two
// moments of weighted multinomial resampling.
package bootstrap

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/randx"
)

// Config controls confidence-interval estimation.
type Config struct {
	// Replicates is T, the number of bootstrap replicates (default 1000).
	Replicates int
	// Alpha is the significance level; the interval covers 1−Alpha
	// (default 0.05 → 95% interval).
	Alpha float64
}

func (c Config) withDefaults() Config {
	if c.Replicates <= 0 {
		c.Replicates = 1000
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.05
	}
	return c
}

// Interval is a two-sided confidence interval [Lo, Up] for a score, with
// the point estimate computed at the base weights.
type Interval struct {
	Lo, Up float64
	// Point is the score evaluated at the unresampled base weights.
	Point float64
}

// Contains reports whether x lies in the closed interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Up }

// Width returns Up − Lo.
func (iv Interval) Width() float64 { return iv.Up - iv.Lo }

// ScoreFunc evaluates the statistic under one weight assignment. The
// slices are owned by the caller and reused across replicates; the
// function must not retain them.
type ScoreFunc func(gRef, gTest []float64) float64

// ConfidenceInterval estimates the 100(1−α)% Bayesian-bootstrap interval
// of score (Eq. 19). baseRef and baseTest are the base weight vectors θ
// of the reference and test sets; each must be non-negative and sum to 1.
// Replicate r draws γ_ref ~ Dir(τ·θ_ref), γ_test ~ Dir(τ′·θ_test)
// (Eq. 21-22) and evaluates score(γ_ref, γ_test).
func ConfidenceInterval(score ScoreFunc, baseRef, baseTest []float64, cfg Config, rng *randx.RNG) (Interval, error) {
	cfg = cfg.withDefaults()
	if err := validateWeights("baseRef", baseRef); err != nil {
		return Interval{}, err
	}
	if err := validateWeights("baseTest", baseTest); err != nil {
		return Interval{}, err
	}
	alphaRef := scaled(baseRef)
	alphaTest := scaled(baseTest)

	gRef := make([]float64, len(baseRef))
	gTest := make([]float64, len(baseTest))
	scores := make([]float64, cfg.Replicates)
	for r := range scores {
		rng.DirichletInto(alphaRef, gRef)
		rng.DirichletInto(alphaTest, gTest)
		scores[r] = score(gRef, gTest)
	}
	sort.Float64s(scores)
	return Interval{
		Lo:    Quantile(scores, cfg.Alpha/2),
		Up:    Quantile(scores, 1-cfg.Alpha/2),
		Point: score(baseRef, baseTest),
	}, nil
}

// scaled returns n·θ with zero entries clamped to a tiny positive value
// (the Dirichlet needs strictly positive parameters; a zero base weight
// means the item should essentially never receive mass).
func scaled(theta []float64) []float64 {
	n := float64(len(theta))
	out := make([]float64, len(theta))
	for i, v := range theta {
		a := n * v
		if a <= 0 {
			a = 1e-8
		}
		out[i] = a
	}
	return out
}

func validateWeights(name string, w []float64) error {
	if len(w) == 0 {
		return fmt.Errorf("bootstrap: %s is empty", name)
	}
	total := 0.0
	for i, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("bootstrap: %s[%d] = %g", name, i, v)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("bootstrap: %s sums to %g, want 1", name, total)
	}
	return nil
}

// Quantile returns the p-quantile (0 <= p <= 1) of an ASCENDING-sorted
// slice using linear interpolation between order statistics.
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Kappa computes the test statistic κ_t = ξ_lo(t) − ξ_up(t−τ′) of Eq. 20:
// cur is the interval at the inspection point, prev the interval τ′ steps
// earlier (so the two test windows share no bags).
func Kappa(cur, prev Interval) float64 { return cur.Lo - prev.Up }

// Alarm reports whether κ_t > 0 (Eq. 18): the current interval lies
// entirely above the earlier one, signalling a significant change.
func Alarm(cur, prev Interval) bool { return Kappa(cur, prev) > 0 }
