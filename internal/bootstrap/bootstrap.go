// Package bootstrap implements the Bayesian bootstrap (Rubin 1981) used
// in §4 of the paper to attach confidence intervals to change-point
// scores, and the overlap test (Eq. 18-20) that turns those intervals
// into an adaptive alarm threshold.
//
// Instead of resampling data points, the Bayesian bootstrap resamples the
// WEIGHTS attached to them: each replicate draws a fresh weight vector
// from a Dirichlet distribution and re-evaluates the statistic. Because
// the change-point scores of this paper are explicit functions of the
// signature weights (and of a fixed log-EMD matrix), every replicate
// costs only O((τ+τ′)²) floating-point work — no distance is recomputed.
//
// The plain bootstrap uses Dir(1,…,1) (Appendix A). When the analyst
// supplies non-uniform base weights θ (e.g. the time-discounting of
// Eq. 15), Appendix B prescribes Dir(n·θ), which matches the first two
// moments of weighted multinomial resampling.
//
// Replicates are organized in fixed-size shards, each driven by its own
// RNG stream derived with randx.SplitSeed from a single base draw. The
// result is therefore bit-identical for a given seed no matter how many
// worker goroutines execute the shards — parallelism is a pure throughput
// knob. The Estimator type owns all scratch (Dirichlet parameters, weight
// vectors, the replicate score buffer, shard RNGs) so a warm Estimator
// computes intervals with zero steady-state allocations.
package bootstrap

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/randx"
)

// Config controls confidence-interval estimation.
type Config struct {
	// Replicates is T, the number of bootstrap replicates (default 1000).
	Replicates int
	// Alpha is the significance level; the interval covers 1−Alpha
	// (default 0.05 → 95% interval).
	Alpha float64
	// Workers caps the number of goroutines evaluating replicate shards.
	// 0 or 1 evaluates everything on the calling goroutine (safe for
	// stateful score functions); >= 2 requires score to be safe for
	// concurrent calls. The interval is bit-identical for a given RNG
	// state regardless of Workers.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Replicates <= 0 {
		c.Replicates = 1000
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.05
	}
	return c
}

// Interval is a two-sided confidence interval [Lo, Up] for a score, with
// the point estimate computed at the base weights.
type Interval struct {
	Lo, Up float64
	// Point is the score evaluated at the unresampled base weights.
	Point float64
}

// Contains reports whether x lies in the closed interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Up }

// Width returns Up − Lo.
func (iv Interval) Width() float64 { return iv.Up - iv.Lo }

// ScoreFunc evaluates the statistic under one weight assignment. The
// slices are owned by the caller and reused across replicates; the
// function must not retain them. When Config.Workers >= 2 the function is
// called from multiple goroutines concurrently and must be safe for that
// (pure functions of the arguments, like the infoest scores, are).
type ScoreFunc func(gRef, gTest []float64) float64

// shardSize is the number of replicates per RNG stream. It is part of
// the reproducibility contract: changing it changes which stream drives
// which replicate and hence the drawn weights for a given seed.
const shardSize = 64

// shardState is one replicate shard's private scratch.
type shardState struct {
	rng         *randx.RNG
	gRef, gTest []float64
}

// Estimator computes Bayesian-bootstrap confidence intervals with
// reusable scratch buffers and optional parallel shard evaluation.
// The zero value is NOT ready; use NewEstimator or NewSeededEstimator. An
// Estimator is not safe for concurrent use (but distinct Estimators are
// independent).
type Estimator struct {
	alphaRef, alphaTest []float64
	scores              []float64
	shards              []shardState

	// persistent selects the shard stream regime. A seeded estimator owns
	// long-lived shard streams derived once from seedBase; an unseeded one
	// reseeds every shard from the caller's RNG on each call.
	persistent bool
	seedBase   int64

	// Per-call state shared with worker goroutines.
	score      ScoreFunc
	replicates int
	numShards  int
	next       atomic.Int64
	wg         sync.WaitGroup
}

// NewEstimator returns an estimator in per-call reseed mode: every
// Interval call consumes one draw from its rng argument and deterministic
// shard streams are derived from it, so a pooled/shared Estimator gives
// reproducible results purely as a function of the caller's RNG state.
// Buffers grow on first use and are retained for subsequent calls.
func NewEstimator() *Estimator { return &Estimator{} }

// NewSeededEstimator returns an estimator with persistent shard streams:
// shard k is driven by the stream New(SplitSeed(seed, k)), created once
// and advanced across calls, so no reseeding cost is ever paid. The
// sequence of intervals is a deterministic function of seed and the call
// sequence, and — like the per-call mode — bit-identical regardless of
// Config.Workers. The rng argument of Interval is ignored (may be nil).
// This is the regime for streaming detectors, which pay for an interval
// on every push.
func NewSeededEstimator(seed int64) *Estimator {
	return &Estimator{persistent: true, seedBase: seed}
}

// ResetStreams rewinds the estimator to the state NewSeededEstimator(seed)
// would have: persistent shard streams at their initial positions for
// seed, with all scratch buffers retained. Pooled detectors use this to
// recycle a warm estimator for a new stream without reallocating its
// shard RNGs — the subsequent interval sequence is bit-identical to a
// freshly seeded estimator's. Calling it on a per-call estimator
// (NewEstimator) converts it to persistent mode; in that case the
// existing shard RNGs are discarded because the two modes use different
// generator backends.
func (e *Estimator) ResetStreams(seed int64) {
	if !e.persistent {
		// Per-call shards are xoshiro-backed while persistent streams are
		// stdlib-backed; they cannot be rewound in place.
		e.shards = nil
		e.persistent = true
	}
	e.seedBase = seed
	for k := range e.shards {
		e.shards[k].rng.Reseed(randx.SplitSeed(seed, int64(k)))
	}
}

// StreamState is the serializable position of a seeded estimator's
// persistent shard streams. Restoring it with RestoreStreams yields an
// estimator whose future intervals are bit-identical to the one it was
// captured from — the checkpoint/resume hook the engine snapshot uses.
type StreamState struct {
	// Seed is the estimator's base seed (shard k's stream derives from
	// SplitSeed(Seed, k)).
	Seed int64 `json:"seed"`
	// Shards holds the position of every shard stream materialized so
	// far; shards beyond the slice haven't been created yet and restore
	// implicitly (a lazily-created shard always starts at draw 0).
	Shards []randx.State `json:"shards"`
}

// StreamState captures the persistent shard stream positions of a seeded
// estimator (NewSeededEstimator or ResetStreams). It errors on a per-call
// estimator, whose shard streams are reseeded from the caller's RNG every
// Interval and therefore have no position of their own to checkpoint.
func (e *Estimator) StreamState() (StreamState, error) {
	if !e.persistent {
		return StreamState{}, fmt.Errorf("bootstrap: StreamState requires a seeded estimator (NewSeededEstimator)")
	}
	st := StreamState{Seed: e.seedBase, Shards: make([]randx.State, len(e.shards))}
	for k := range e.shards {
		st.Shards[k] = e.shards[k].rng.State()
	}
	return st, nil
}

// RestoreStreams positions the estimator's persistent shard streams at
// st: existing shard RNGs are rewound and replayed in place, missing ones
// are created, and shards beyond st.Shards are rewound to their initial
// position (matching an uninterrupted run, where they would not have been
// created yet). After RestoreStreams the estimator's interval sequence is
// bit-identical to the estimator StreamState was captured from. Like
// ResetStreams, calling it on a per-call estimator converts it to
// persistent mode (discarding the incompatible fast-seed shard RNGs).
func (e *Estimator) RestoreStreams(st StreamState) error {
	e.ResetStreams(st.Seed)
	for len(e.shards) < len(st.Shards) {
		k := int64(len(e.shards))
		e.shards = append(e.shards, shardState{rng: randx.New(randx.SplitSeed(st.Seed, k))})
	}
	for k := range st.Shards {
		if err := e.shards[k].rng.Restore(st.Shards[k]); err != nil {
			return fmt.Errorf("bootstrap: shard %d: %w", k, err)
		}
	}
	return nil
}

var estimatorPool = sync.Pool{New: func() any { return NewEstimator() }}

// ConfidenceInterval estimates the 100(1−α)% Bayesian-bootstrap interval
// of score (Eq. 19). baseRef and baseTest are the base weight vectors θ
// of the reference and test sets; each must be non-negative and sum to 1.
// Replicate r draws γ_ref ~ Dir(τ·θ_ref), γ_test ~ Dir(τ′·θ_test)
// (Eq. 21-22) and evaluates score(γ_ref, γ_test).
//
// This is the convenience wrapper: it rents an Estimator from an internal
// pool. Streaming callers (the detector) hold their own Estimator.
func ConfidenceInterval(score ScoreFunc, baseRef, baseTest []float64, cfg Config, rng *randx.RNG) (Interval, error) {
	e := estimatorPool.Get().(*Estimator)
	defer estimatorPool.Put(e)
	return e.Interval(score, baseRef, baseTest, cfg, rng)
}

// Interval estimates the confidence interval like ConfidenceInterval,
// reusing the Estimator's scratch. In per-call reseed mode (NewEstimator)
// rng is consumed for exactly one draw — the shard seed base — so the
// caller's stream advances identically regardless of Replicates or
// Workers. In persistent mode (NewSeededEstimator) rng is ignored and the
// estimator's own shard streams advance instead.
func (e *Estimator) Interval(score ScoreFunc, baseRef, baseTest []float64, cfg Config, rng *randx.RNG) (Interval, error) {
	cfg = cfg.withDefaults()
	if err := validateWeights("baseRef", baseRef); err != nil {
		return Interval{}, err
	}
	if err := validateWeights("baseTest", baseTest); err != nil {
		return Interval{}, err
	}
	e.alphaRef = scaledInto(e.alphaRef, baseRef)
	e.alphaTest = scaledInto(e.alphaTest, baseTest)

	T := cfg.Replicates
	e.replicates = T
	e.numShards = (T + shardSize - 1) / shardSize
	e.score = score
	if cap(e.scores) < T {
		e.scores = make([]float64, T)
	}
	e.scores = e.scores[:T]
	for len(e.shards) < e.numShards {
		k := int64(len(e.shards))
		if e.persistent {
			// Long-lived stream, never reseeded: the seeding cost is paid
			// once per shard for the estimator's lifetime.
			e.shards = append(e.shards, shardState{rng: randx.New(randx.SplitSeed(e.seedBase, k))})
		} else {
			// Fast-seed RNGs: each interval reseeds every shard stream, so
			// O(1) reseeding matters more than matching New's stream.
			e.shards = append(e.shards, shardState{rng: randx.NewFast(0)})
		}
	}
	for k := 0; k < e.numShards; k++ {
		s := &e.shards[k]
		s.gRef = growFloats(s.gRef, len(baseRef))
		s.gTest = growFloats(s.gTest, len(baseTest))
	}

	if !e.persistent {
		// One draw from the caller's stream seeds every shard.
		base := rng.Int63()
		for k := 0; k < e.numShards; k++ {
			e.shards[k].rng.Reseed(randx.SplitSeed(base, int64(k)))
		}
	}

	workers := cfg.Workers
	if workers > e.numShards {
		workers = e.numShards
	}
	if workers <= 1 {
		for k := 0; k < e.numShards; k++ {
			e.runShard(k)
		}
	} else {
		e.next.Store(0)
		e.wg.Add(workers)
		for w := 0; w < workers; w++ {
			go e.runWorker()
		}
		e.wg.Wait()
	}
	e.score = nil // do not retain the caller's closure

	lo := quantileSelect(e.scores, cfg.Alpha/2)
	up := quantileSelect(e.scores, 1-cfg.Alpha/2)
	return Interval{Lo: lo, Up: up, Point: score(baseRef, baseTest)}, nil
}

// runWorker drains shard indices until none remain.
func (e *Estimator) runWorker() {
	defer e.wg.Done()
	for {
		k := int(e.next.Add(1)) - 1
		if k >= e.numShards {
			return
		}
		e.runShard(k)
	}
}

// runShard evaluates the replicates of shard k into the scores buffer.
func (e *Estimator) runShard(k int) {
	s := &e.shards[k]
	lo := k * shardSize
	hi := lo + shardSize
	if hi > e.replicates {
		hi = e.replicates
	}
	for r := lo; r < hi; r++ {
		s.rng.DirichletInto(e.alphaRef, s.gRef)
		s.rng.DirichletInto(e.alphaTest, s.gTest)
		e.scores[r] = e.score(s.gRef, s.gTest)
	}
}

// scaledInto fills dst with n·θ, clamping zero entries to a tiny positive
// value (the Dirichlet needs strictly positive parameters; a zero base
// weight means the item should essentially never receive mass). Entries
// within rounding error of 1 are snapped to exactly 1 so the Gamma(1,1) =
// Exp(1) fast path triggers for uniform base weights.
func scaledInto(dst, theta []float64) []float64 {
	dst = growFloats(dst, len(theta))
	n := float64(len(theta))
	for i, v := range theta {
		a := n * v
		if a <= 0 {
			a = 1e-8
		} else if math.Abs(a-1) <= 1e-12 {
			a = 1
		}
		dst[i] = a
	}
	return dst
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func validateWeights(name string, w []float64) error {
	if len(w) == 0 {
		return fmt.Errorf("bootstrap: %s is empty", name)
	}
	total := 0.0
	for i, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("bootstrap: %s[%d] = %g", name, i, v)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("bootstrap: %s sums to %g, want 1", name, total)
	}
	return nil
}

// Quantile returns the p-quantile (0 <= p <= 1) of an ASCENDING-sorted
// slice using linear interpolation between order statistics.
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// quantileSelect returns the same value as Quantile(sort(xs), p) without
// sorting: it selects the two order statistics the interpolation needs
// with an in-place quickselect (O(n) expected instead of O(n log n)).
// xs is reordered but not otherwise modified. NaN scores (a degenerate
// statistic) are not orderable by the Hoare partition, so that case
// falls back to the sort-based path, which degrades gracefully the way
// the pre-quickselect implementation did.
func quantileSelect(xs []float64, p float64) float64 {
	for _, v := range xs {
		if math.IsNaN(v) {
			sort.Float64s(xs)
			return Quantile(xs, p)
		}
	}
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return xs[0]
	}
	if p <= 0 {
		return selectKth(xs, 0)
	}
	if p >= 1 {
		return selectKth(xs, n-1)
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return selectKth(xs, n-1)
	}
	a := selectKth(xs, lo)
	// After selectKth, xs[lo+1:] holds exactly the elements ranked above
	// lo, so the next order statistic is their minimum.
	b := xs[lo+1]
	for _, v := range xs[lo+2:] {
		if v < b {
			b = v
		}
	}
	return a*(1-frac) + b*frac
}

// selectKth partially reorders xs so xs[k] holds its ascending-order
// value, everything before it is <= and everything after is >=. It uses
// iterative median-of-three quickselect (deterministic; expected O(n)).
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot, moved to xs[lo].
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		// Hoare partition.
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if xs[i] >= pivot {
					break
				}
			}
			for {
				j--
				if xs[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return xs[k]
}

// Kappa computes the test statistic κ_t = ξ_lo(t) − ξ_up(t−τ′) of Eq. 20:
// cur is the interval at the inspection point, prev the interval τ′ steps
// earlier (so the two test windows share no bags).
func Kappa(cur, prev Interval) float64 { return cur.Lo - prev.Up }

// Alarm reports whether κ_t > 0 (Eq. 18): the current interval lies
// entirely above the earlier one, signalling a significant change.
func Alarm(cur, prev Interval) bool { return Kappa(cur, prev) > 0 }
