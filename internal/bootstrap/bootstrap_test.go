package bootstrap

import (
	"math"
	"sort"
	"testing"

	"repro/internal/randx"
)

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(s, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Error("single-element quantile")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Lo: 1, Up: 3, Point: 2}
	if !iv.Contains(1) || !iv.Contains(3) || iv.Contains(0.5) {
		t.Error("Contains misbehaves")
	}
	if iv.Width() != 2 {
		t.Errorf("Width = %g", iv.Width())
	}
}

func TestKappaAndAlarm(t *testing.T) {
	prev := Interval{Lo: 0, Up: 1}
	cur := Interval{Lo: 2, Up: 3}
	if Kappa(cur, prev) != 1 {
		t.Errorf("Kappa = %g", Kappa(cur, prev))
	}
	if !Alarm(cur, prev) {
		t.Error("disjoint-above intervals must alarm")
	}
	overlap := Interval{Lo: 0.5, Up: 2}
	if Alarm(overlap, prev) {
		t.Error("overlapping intervals must not alarm")
	}
	// Equal boundary: κ = 0, no alarm (strict inequality in Eq. 18).
	touch := Interval{Lo: 1, Up: 2}
	if Alarm(touch, prev) {
		t.Error("touching intervals must not alarm")
	}
}

func TestConfidenceIntervalValidation(t *testing.T) {
	score := func(a, b []float64) float64 { return 0 }
	rng := randx.New(1)
	if _, err := ConfidenceInterval(score, nil, []float64{1}, Config{}, rng); err == nil {
		t.Error("empty baseRef accepted")
	}
	if _, err := ConfidenceInterval(score, []float64{0.5, 0.4}, []float64{1}, Config{}, rng); err == nil {
		t.Error("non-normalized baseRef accepted")
	}
	if _, err := ConfidenceInterval(score, []float64{1}, []float64{-1, 2}, Config{}, rng); err == nil {
		t.Error("negative baseTest accepted")
	}
}

func TestConfidenceIntervalDeterministicGivenSeed(t *testing.T) {
	score := func(a, b []float64) float64 { return a[0] - b[0] }
	base := []float64{0.5, 0.5}
	iv1, err := ConfidenceInterval(score, base, base, Config{Replicates: 200}, randx.New(42))
	if err != nil {
		t.Fatal(err)
	}
	iv2, err := ConfidenceInterval(score, base, base, Config{Replicates: 200}, randx.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if iv1 != iv2 {
		t.Errorf("same seed gave %+v vs %+v", iv1, iv2)
	}
}

func TestConfidenceIntervalOfWeightedMean(t *testing.T) {
	// Statistic: Bayesian-bootstrap weighted mean of fixed values. The
	// posterior mean equals the sample mean and the 95% interval must
	// bracket it with plausible width (Rubin 1981: posterior variance
	// ≈ s²/(n+1)).
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	n := len(values)
	score := func(gRef, _ []float64) float64 {
		s := 0.0
		for i, g := range gRef {
			s += g * values[i]
		}
		return s
	}
	base := make([]float64, n)
	for i := range base {
		base[i] = 1 / float64(n)
	}
	iv, err := ConfidenceInterval(score, base, []float64{1}, Config{Replicates: 4000}, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	mean := 5.5
	if math.Abs(iv.Point-mean) > 1e-9 {
		t.Errorf("Point = %g, want %g", iv.Point, mean)
	}
	if !(iv.Lo < mean && mean < iv.Up) {
		t.Errorf("interval [%g, %g] does not bracket the mean %g", iv.Lo, iv.Up, mean)
	}
	// Theoretical posterior sd ≈ sqrt(Σ(v−m)²/n/(n+1)) ≈ 0.866; a 95%
	// interval should be roughly ±1.96 sd.
	sd := 0.0
	for _, v := range values {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(n) / float64(n+1))
	wantWidth := 2 * 1.96 * sd
	if math.Abs(iv.Width()-wantWidth) > 0.35*wantWidth {
		t.Errorf("width = %g, want ≈ %g", iv.Width(), wantWidth)
	}
}

func TestWeightedBaseShiftsInterval(t *testing.T) {
	// Appendix B: base weights θ shift the Dirichlet parameters. Placing
	// almost all base mass on the largest value must shift the interval
	// upward relative to uniform.
	values := []float64{0, 0, 0, 10}
	score := func(gRef, _ []float64) float64 {
		s := 0.0
		for i, g := range gRef {
			s += g * values[i]
		}
		return s
	}
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	skewed := []float64{0.05, 0.05, 0.05, 0.85}
	dummy := []float64{1}
	ivU, err := ConfidenceInterval(score, uniform, dummy, Config{Replicates: 2000}, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	ivS, err := ConfidenceInterval(score, skewed, dummy, Config{Replicates: 2000}, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if ivS.Point <= ivU.Point {
		t.Errorf("skewed point %g should exceed uniform point %g", ivS.Point, ivU.Point)
	}
	if ivS.Lo <= ivU.Lo {
		t.Errorf("skewed Lo %g should exceed uniform Lo %g", ivS.Lo, ivU.Lo)
	}
}

func TestZeroBaseWeightGetsAlmostNoMass(t *testing.T) {
	// A zero base weight clamps to a tiny Dirichlet parameter: the item
	// should receive essentially no resampled mass.
	score := func(gRef, _ []float64) float64 { return gRef[0] }
	base := []float64{0, 0.5, 0.5}
	iv, err := ConfidenceInterval(score, base, []float64{1}, Config{Replicates: 500}, randx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if iv.Up > 0.05 {
		t.Errorf("zero-weight item received mass up to %g", iv.Up)
	}
}

func TestCoverageOfBootstrapInterval(t *testing.T) {
	// Frequentist sanity: over repeated datasets from N(0,1), the 95%
	// Bayesian-bootstrap interval for the mean should cover 0 most of
	// the time. (Coverage is approximate for n=25; accept 85-100%.)
	master := randx.New(13)
	const datasets = 60
	const n = 25
	covered := 0
	base := make([]float64, n)
	for i := range base {
		base[i] = 1.0 / n
	}
	for d := 0; d < datasets; d++ {
		values := make([]float64, n)
		for i := range values {
			values[i] = master.Normal(0, 1)
		}
		score := func(gRef, _ []float64) float64 {
			s := 0.0
			for i, g := range gRef {
				s += g * values[i]
			}
			return s
		}
		iv, err := ConfidenceInterval(score, base, []float64{1}, Config{Replicates: 400}, master.Split(int64(d)))
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(0) {
			covered++
		}
	}
	rate := float64(covered) / datasets
	if rate < 0.85 {
		t.Errorf("coverage = %g, want >= 0.85", rate)
	}
}

func TestScoresSortedInternally(t *testing.T) {
	// The interval must be monotone: Lo <= Up always, for an asymmetric
	// noisy statistic.
	rng := randx.New(17)
	score := func(gRef, gTest []float64) float64 {
		return gRef[0]*3 - gTest[0] + rng.Float64()*0.01
	}
	base2 := []float64{0.7, 0.3}
	iv, err := ConfidenceInterval(score, base2, base2, Config{Replicates: 333, Alpha: 0.1}, randx.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > iv.Up {
		t.Errorf("Lo %g > Up %g", iv.Lo, iv.Up)
	}
}

func TestQuantileMatchesSortedExtremes(t *testing.T) {
	rng := randx.New(23)
	s := make([]float64, 100)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	sort.Float64s(s)
	if Quantile(s, 0) != s[0] || Quantile(s, 1) != s[99] {
		t.Error("extreme quantiles must be min/max")
	}
	// Monotonicity in p.
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := Quantile(s, p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%g", p)
		}
		prev = q
	}
}
