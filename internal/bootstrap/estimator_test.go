package bootstrap

import (
	"math"
	"sort"
	"testing"

	"repro/internal/randx"
	"repro/internal/testutil"
)

// kl-ish pure score used by the parallel tests: must be safe for
// concurrent calls.
func pureScore(gRef, gTest []float64) float64 {
	s := 0.0
	for i, g := range gRef {
		s += g * float64(i+1)
	}
	for i, g := range gTest {
		s -= g * g * float64(i+1)
	}
	return s
}

// TestIntervalBitIdenticalAcrossWorkers is the reproducibility contract
// of the sharded bootstrap: for a fixed RNG state the interval must be
// bit-identical no matter how many workers evaluate the shards.
func TestIntervalBitIdenticalAcrossWorkers(t *testing.T) {
	base := []float64{0.25, 0.25, 0.25, 0.25}
	for _, T := range []int{1, 63, 64, 65, 1000} {
		var want Interval
		for wi, workers := range []int{1, 2, 4, 16} {
			e := NewEstimator()
			iv, err := e.Interval(pureScore, base, base,
				Config{Replicates: T, Workers: workers}, randx.New(42))
			if err != nil {
				t.Fatal(err)
			}
			if wi == 0 {
				want = iv
			} else if iv != want {
				t.Fatalf("T=%d workers=%d: %+v != %+v", T, workers, iv, want)
			}
		}
	}
}

// TestSeededEstimatorDeterministicSequence: a persistent-stream estimator
// reproduces the same interval SEQUENCE for the same seed, and the
// sequence is worker-count invariant.
func TestSeededEstimatorDeterministicSequence(t *testing.T) {
	base := []float64{0.5, 0.3, 0.2}
	cfgSeq := Config{Replicates: 300, Workers: 1}
	cfgPar := Config{Replicates: 300, Workers: 8}
	a := NewSeededEstimator(7)
	b := NewSeededEstimator(7)
	other := NewSeededEstimator(8)
	sawDifferent := false
	for step := 0; step < 5; step++ {
		ivA, err := a.Interval(pureScore, base, base, cfgSeq, nil)
		if err != nil {
			t.Fatal(err)
		}
		ivB, err := b.Interval(pureScore, base, base, cfgPar, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ivA != ivB {
			t.Fatalf("step %d: sequential %+v != parallel %+v", step, ivA, ivB)
		}
		ivO, err := other.Interval(pureScore, base, base, cfgSeq, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ivO.Lo != ivA.Lo || ivO.Up != ivA.Up {
			sawDifferent = true
		}
	}
	if !sawDifferent {
		t.Error("different seeds produced identical interval sequences")
	}
}

// TestQuantileSelectMatchesSort: the quickselect quantile must agree
// exactly with sort-then-interpolate on random inputs.
func TestQuantileSelectMatchesSort(t *testing.T) {
	rng := randx.New(31)
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		if trial%4 == 0 {
			// Heavy duplicates stress the Hoare partition.
			for i := range xs {
				xs[i] = math.Floor(xs[i] * 2)
			}
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, p := range []float64{0, 0.01, 0.025, 0.31, 0.5, 0.975, 0.99, 1} {
			want := Quantile(sorted, p)
			got := quantileSelect(append([]float64(nil), xs...), p)
			if got != want && math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d n=%d p=%g: quantileSelect %.17g, Quantile %.17g", trial, n, p, got, want)
			}
		}
	}
}

// TestNaNScoresDoNotPanic: a degenerate statistic returning NaN must
// degrade gracefully (as the sort-based quantiles always did), never
// panic inside the quickselect.
func TestNaNScoresDoNotPanic(t *testing.T) {
	base := []float64{0.5, 0.5}
	nanScore := func(gRef, _ []float64) float64 {
		if gRef[0] > 0.5 {
			return math.NaN()
		}
		return gRef[0]
	}
	iv, err := ConfidenceInterval(nanScore, base, base, Config{Replicates: 200}, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// With NaNs in the replicate set the interval is NaN-degraded; the
	// contract here is only "no panic, Lo <= Up or NaN".
	if !math.IsNaN(iv.Lo) && !math.IsNaN(iv.Up) && iv.Lo > iv.Up {
		t.Errorf("Lo %g > Up %g", iv.Lo, iv.Up)
	}
	// All-NaN scores must also survive.
	allNaN := func(_, _ []float64) float64 { return math.NaN() }
	if _, err := ConfidenceInterval(allNaN, base, base, Config{Replicates: 50}, randx.New(2)); err != nil {
		t.Fatal(err)
	}
}

// TestWarmEstimatorZeroAllocs is the allocation-regression guard for the
// bootstrap stage: a warm sequential Estimator computes a full interval
// without heap allocations.
func TestWarmEstimatorZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	base := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	cfg := Config{Replicates: 500, Workers: 1}
	e := NewSeededEstimator(3)
	if _, err := e.Interval(pureScore, base, base, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Interval(pureScore, base, base, cfg, nil); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Estimator.Interval: %g allocs/op, want 0", allocs)
	}
}

// TestParallelEstimatorBoundedAllocs: the parallel path may pay a few
// goroutine-spawn allocations but must stay far away from per-replicate
// allocation.
func TestParallelEstimatorBoundedAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	base := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	cfg := Config{Replicates: 1000, Workers: 4}
	e := NewSeededEstimator(3)
	if _, err := e.Interval(pureScore, base, base, cfg, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Interval(pureScore, base, base, cfg, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Errorf("parallel Estimator.Interval: %g allocs/op, want <= 16 (goroutine spawns only)", allocs)
	}
}

// TestUniformBaseTakesExpPath: with uniform base weights the scaled
// Dirichlet parameters must snap to exactly 1 (Dir(1,…,1) is the plain
// Bayesian bootstrap), enabling the exponential fast path.
func TestUniformBaseTakesExpPath(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7, 10, 33} {
		theta := make([]float64, n)
		for i := range theta {
			theta[i] = 1 / float64(n)
		}
		alpha := scaledInto(nil, theta)
		for i, a := range alpha {
			if a != 1 {
				t.Fatalf("n=%d: alpha[%d] = %.17g, want exactly 1", n, i, a)
			}
		}
	}
	// Non-uniform weights must NOT snap.
	alpha := scaledInto(nil, []float64{0.7, 0.3})
	if alpha[0] == 1 || alpha[1] == 1 {
		t.Fatalf("non-uniform weights snapped to 1: %v", alpha)
	}
}

// TestConfidenceIntervalStatisticalSanityParallel repeats the weighted
// mean check through the parallel path: posterior mean and width must
// match Rubin's theory regardless of sharding.
func TestConfidenceIntervalStatisticalSanityParallel(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	n := len(values)
	score := func(gRef, _ []float64) float64 {
		s := 0.0
		for i, g := range gRef {
			s += g * values[i]
		}
		return s
	}
	base := make([]float64, n)
	for i := range base {
		base[i] = 1 / float64(n)
	}
	iv, err := ConfidenceInterval(score, base, []float64{1},
		Config{Replicates: 4000, Workers: 4}, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	mean := 5.5
	if math.Abs(iv.Point-mean) > 1e-9 {
		t.Errorf("Point = %g, want %g", iv.Point, mean)
	}
	if !(iv.Lo < mean && mean < iv.Up) {
		t.Errorf("interval [%g, %g] does not bracket %g", iv.Lo, iv.Up, mean)
	}
	sd := 0.0
	for _, v := range values {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(n) / float64(n+1))
	wantWidth := 2 * 1.96 * sd
	if math.Abs(iv.Width()-wantWidth) > 0.35*wantWidth {
		t.Errorf("width = %g, want ≈ %g", iv.Width(), wantWidth)
	}
}

// TestResetStreamsRewindsSeededEstimator: after ResetStreams(seed) a used
// persistent estimator reproduces the exact interval sequence of a fresh
// NewSeededEstimator(seed) — the property the detector pool relies on to
// recycle warm estimators.
func TestResetStreamsRewindsSeededEstimator(t *testing.T) {
	base := []float64{0.5, 0.3, 0.2}
	cfg := Config{Replicates: 300, Workers: 2}
	sequence := func(e *Estimator, n int) []Interval {
		out := make([]Interval, n)
		for i := range out {
			iv, err := e.Interval(pureScore, base, base, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = iv
		}
		return out
	}

	e := NewSeededEstimator(7)
	first := sequence(e, 4)
	e.ResetStreams(7)
	if second := sequence(e, 4); !slicesEqualIntervals(first, second) {
		t.Fatalf("reset to same seed diverged: %+v vs %+v", first, second)
	}

	// Rebinding to a different seed matches a fresh estimator of that seed.
	e.ResetStreams(11)
	want := sequence(NewSeededEstimator(11), 4)
	if got := sequence(e, 4); !slicesEqualIntervals(got, want) {
		t.Fatalf("reset to new seed diverged from fresh estimator: %+v vs %+v", got, want)
	}

	// A per-call estimator converts cleanly to persistent mode.
	p := NewEstimator()
	if _, err := p.Interval(pureScore, base, base, cfg, randx.New(3)); err != nil {
		t.Fatal(err)
	}
	p.ResetStreams(7)
	if got := sequence(p, 4); !slicesEqualIntervals(got, first) {
		t.Fatalf("converted estimator diverged: %+v vs %+v", got, first)
	}
}

func slicesEqualIntervals(a, b []Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
