// Package bipartite implements weighted bipartite graphs (sender →
// receiver communication snapshots), the seven node/edge features of
// §5.3 that turn a graph into a bag of scalars, and the four synthetic
// dynamic-graph workloads of §5.3. Graphs observed in different time
// windows may have different node sets and sizes — the setting the paper
// targets, where behaviour-vector methods (which require a fixed node
// set) do not apply.
package bipartite

import (
	"fmt"
	"math/bits"

	"repro/internal/bag"
)

// Edge is a weighted edge from source node Src to destination node Dst.
type Edge struct {
	Src, Dst int
	Weight   float64
}

// Graph is one bipartite communication snapshot. Node ids are dense:
// sources are 0..NumSrc-1, destinations 0..NumDst-1. Zero-weight edges
// should be omitted.
type Graph struct {
	NumSrc, NumDst int
	Edges          []Edge
}

// Validate checks node id ranges and weights.
func (g *Graph) Validate() error {
	if g.NumSrc < 0 || g.NumDst < 0 {
		return fmt.Errorf("bipartite: negative node counts %d/%d", g.NumSrc, g.NumDst)
	}
	for i, e := range g.Edges {
		if e.Src < 0 || e.Src >= g.NumSrc {
			return fmt.Errorf("bipartite: edge %d source %d out of range [0,%d)", i, e.Src, g.NumSrc)
		}
		if e.Dst < 0 || e.Dst >= g.NumDst {
			return fmt.Errorf("bipartite: edge %d destination %d out of range [0,%d)", i, e.Dst, g.NumDst)
		}
		if e.Weight <= 0 {
			return fmt.Errorf("bipartite: edge %d has non-positive weight %g", i, e.Weight)
		}
	}
	return nil
}

// TotalWeight returns the sum of all edge weights (total traffic).
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, e := range g.Edges {
		s += e.Weight
	}
	return s
}

// Feature identifies one of the seven §5.3 graph features. The numeric
// values match the paper's feature numbering (1-7).
type Feature int

// The seven features of §5.3.
const (
	// SrcDegree (1): number of destinations each source connects to.
	SrcDegree Feature = iota + 1
	// DstDegree (2): number of sources each destination connects to.
	DstDegree
	// SrcSecondDegree (3): number of OTHER sources each source reaches
	// via a shared destination.
	SrcSecondDegree
	// DstSecondDegree (4): number of OTHER destinations each destination
	// reaches via a shared source.
	DstSecondDegree
	// SrcStrength (5): total weight of edges leaving each source.
	SrcStrength
	// DstStrength (6): total weight of edges entering each destination.
	DstStrength
	// EdgeWeight (7): the weight of each edge.
	EdgeWeight
)

// String implements fmt.Stringer.
func (f Feature) String() string {
	switch f {
	case SrcDegree:
		return "1:src-degree"
	case DstDegree:
		return "2:dst-degree"
	case SrcSecondDegree:
		return "3:src-2nd-degree"
	case DstSecondDegree:
		return "4:dst-2nd-degree"
	case SrcStrength:
		return "5:src-strength"
	case DstStrength:
		return "6:dst-strength"
	case EdgeWeight:
		return "7:edge-weight"
	default:
		return fmt.Sprintf("Feature(%d)", int(f))
	}
}

// AllFeatures lists the seven features in paper order.
func AllFeatures() []Feature {
	return []Feature{SrcDegree, DstDegree, SrcSecondDegree, DstSecondDegree, SrcStrength, DstStrength, EdgeWeight}
}

// FeatureBag extracts feature f from the graph as a 1-D bag at time t:
// one value per node (features 1-6) or per edge (feature 7). Nodes with
// no incident edges are skipped (they did not participate in the window).
func (g *Graph) FeatureBag(f Feature, t int) (bag.Bag, error) {
	var vals []float64
	switch f {
	case SrcDegree:
		deg := make([]float64, g.NumSrc)
		for _, e := range g.Edges {
			deg[e.Src]++
		}
		vals = nonZero(deg)
	case DstDegree:
		deg := make([]float64, g.NumDst)
		for _, e := range g.Edges {
			deg[e.Dst]++
		}
		vals = nonZero(deg)
	case SrcSecondDegree:
		vals = secondDegrees(g.Edges, g.NumSrc, g.NumDst, true)
	case DstSecondDegree:
		vals = secondDegrees(g.Edges, g.NumSrc, g.NumDst, false)
	case SrcStrength:
		str := make([]float64, g.NumSrc)
		for _, e := range g.Edges {
			str[e.Src] += e.Weight
		}
		vals = nonZero(str)
	case DstStrength:
		str := make([]float64, g.NumDst)
		for _, e := range g.Edges {
			str[e.Dst] += e.Weight
		}
		vals = nonZero(str)
	case EdgeWeight:
		vals = make([]float64, 0, len(g.Edges))
		for _, e := range g.Edges {
			vals = append(vals, e.Weight)
		}
	default:
		return bag.Bag{}, fmt.Errorf("bipartite: unknown feature %d", int(f))
	}
	if len(vals) == 0 {
		return bag.Bag{}, fmt.Errorf("bipartite: feature %v produced an empty bag (graph has %d edges)", f, len(g.Edges))
	}
	return bag.FromScalars(t, vals), nil
}

// nonZero keeps the entries of participating nodes (degree/strength > 0).
func nonZero(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, v := range xs {
		if v != 0 {
			out = append(out, v)
		}
	}
	return out
}

// secondDegrees computes, for every participating node on one side, the
// number of OTHER same-side nodes reachable through a shared neighbour.
// Bitsets make this O(E · n/64) instead of O(E · n).
func secondDegrees(edges []Edge, numSrc, numDst int, forSources bool) []float64 {
	n, m := numSrc, numDst // n = side being scored, m = opposite side
	side := func(e Edge) (own, other int) { return e.Src, e.Dst }
	if !forSources {
		n, m = numDst, numSrc
		side = func(e Edge) (own, other int) { return e.Dst, e.Src }
	}
	words := (n + 63) / 64
	// neighbour bitset of each opposite-side node over the scored side.
	opp := make([][]uint64, m)
	adj := make([][]int, n) // opposite-side neighbours of each scored node
	active := make([]bool, n)
	for _, e := range edges {
		own, other := side(e)
		if opp[other] == nil {
			opp[other] = make([]uint64, words)
		}
		opp[other][own/64] |= 1 << (own % 64)
		adj[own] = append(adj[own], other)
		active[own] = true
	}
	var out []float64
	acc := make([]uint64, words)
	for v := 0; v < n; v++ {
		if !active[v] {
			continue
		}
		for i := range acc {
			acc[i] = 0
		}
		seen := make(map[int]bool, len(adj[v]))
		for _, o := range adj[v] {
			if seen[o] {
				continue // parallel edges
			}
			seen[o] = true
			for i, w := range opp[o] {
				acc[i] |= w
			}
		}
		acc[v/64] &^= 1 << (v % 64) // exclude the node itself
		count := 0
		for _, w := range acc {
			count += bits.OnesCount64(w)
		}
		out = append(out, float64(count))
	}
	return out
}

// FeatureSequence extracts feature f from every graph of a time series,
// producing the bag sequence the detector consumes.
func FeatureSequence(graphs []Graph, f Feature) (bag.Sequence, error) {
	seq := make(bag.Sequence, len(graphs))
	for t := range graphs {
		b, err := graphs[t].FeatureBag(f, t)
		if err != nil {
			return nil, fmt.Errorf("graph %d: %w", t, err)
		}
		seq[t] = b
	}
	return seq, nil
}
