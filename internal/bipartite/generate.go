package bipartite

import (
	"fmt"
	"math"

	"repro/internal/randx"
)

// Section53Dataset identifies one of the four synthetic dynamic-graph
// workloads of §5.3.
type Section53Dataset int

// The four §5.3 datasets.
const (
	// TrafficVolume (1): community structure fixed, every community's
	// Poisson rate rises to a+1 inside change block a (baseline 1).
	TrafficVolume Section53Dataset = iota + 1
	// Partition (2): the node partitions η, ζ shift by ±0.1a inside
	// block a; the rate matrix stays at its initial value, so total
	// traffic shifts too.
	Partition
	// PartitionFixedTraffic (3): like Partition, but the TOTAL edge
	// weight is fixed (100,000 by default) and allocated to communities
	// by the rate ratios — only the structure changes, not the volume.
	PartitionFixedTraffic
	// RateShuffle (4): partitions fixed, the four community rates are
	// interchanged in a different way in each block; the total expected
	// traffic is invariant under the permutation.
	RateShuffle
)

// String implements fmt.Stringer.
func (d Section53Dataset) String() string {
	switch d {
	case TrafficVolume:
		return "Dataset 1 (traffic volume)"
	case Partition:
		return "Dataset 2 (partition shift)"
	case PartitionFixedTraffic:
		return "Dataset 3 (partition shift, fixed traffic)"
	case RateShuffle:
		return "Dataset 4 (rate shuffle)"
	default:
		return fmt.Sprintf("Section53Dataset(%d)", int(d))
	}
}

// Section53Options scales the workloads; the zero value selects the
// paper's parameters.
type Section53Options struct {
	// NodeLambda is the Poisson mean of per-side node counts (paper: 200).
	NodeLambda float64
	// Steps overrides the sequence length (paper: 200; 240 for dataset 4).
	Steps int
	// TotalWeight is dataset 3's fixed total traffic (paper: 100,000).
	TotalWeight int
}

func (o Section53Options) withDefaults(d Section53Dataset) Section53Options {
	if o.NodeLambda <= 0 {
		o.NodeLambda = 200
	}
	if o.Steps <= 0 {
		if d == RateShuffle {
			o.Steps = 240
		} else {
			o.Steps = 200
		}
	}
	if o.TotalWeight <= 0 {
		o.TotalWeight = 100000
	}
	return o
}

// blockLen is the paper's regime length: parameters change every 20 steps
// starting at 1-based t = 41 (0-based index 40).
const blockLen = 20

// initial community rate matrix λ_{k,l} and partitions (§5.3).
var initialRates = [2][2]float64{{10, 3}, {1, 5}}

// Changes returns the 0-based indices where the dataset's parameters
// change, for a sequence of the given length.
func (d Section53Dataset) Changes(steps int) []int {
	var out []int
	for c := 2 * blockLen; c < steps; c += blockLen {
		out = append(out, c)
	}
	return out
}

// blockIndex returns which change block 0-based step t falls into:
// 0 = baseline (before the first change), a >= 1 = the a-th block.
func blockIndex(t int) int {
	if t < 2*blockLen {
		return 0
	}
	return t/blockLen - 1
}

// Generate produces the time series of bipartite graphs for the dataset.
func (d Section53Dataset) Generate(rng *randx.RNG, opts Section53Options) ([]Graph, error) {
	if d < TrafficVolume || d > RateShuffle {
		return nil, fmt.Errorf("bipartite: unknown §5.3 dataset %d", int(d))
	}
	opts = opts.withDefaults(d)
	// Per-block parameters are drawn ONCE per block: the paper's κ in
	// η = ζ = 0.5 + 0.1a(−1)^κ selects a direction for the whole block,
	// not per step.
	numBlocks := opts.Steps/blockLen + 1
	etaByBlock := make([]float64, numBlocks)
	for a := range etaByBlock {
		etaByBlock[a] = 0.5
		if a >= 1 {
			shift := 0.1 * float64(a)
			if rng.Bernoulli(0.5) {
				shift = -shift
			}
			etaByBlock[a] = clamp01(0.5 + shift)
		}
	}
	graphs := make([]Graph, opts.Steps)
	for t := 0; t < opts.Steps; t++ {
		a := blockIndex(t)
		rates := initialRates
		eta, zeta := 0.5, 0.5
		switch d {
		case TrafficVolume:
			lam := 1.0
			if a >= 1 {
				lam = float64(a + 1)
			}
			rates = [2][2]float64{{lam, lam}, {lam, lam}}
		case Partition, PartitionFixedTraffic:
			eta = etaByBlock[a]
			zeta = eta
		case RateShuffle:
			rates = shuffledRates(a)
		}
		g := sampleGraph(rng, opts, d, rates, eta, zeta)
		graphs[t] = g
	}
	return graphs, nil
}

func clamp01(x float64) float64 {
	if x < 0.1 {
		return 0.1
	}
	if x > 0.9 {
		return 0.9
	}
	return x
}

// shuffledRates interchanges the four community rates differently in each
// block (dataset 4). The multiset {10,3,1,5} is invariant, so the total
// expected traffic is too.
//
// With equal partitions (η = ζ = 0.5), a permutation is visible to the
// bag features only if it changes the multiset of row sums or of column
// sums of the rate matrix: otherwise the distributions of every node and
// edge statistic are literally unchanged (bags are unlabeled). The
// schedule below cycles through four arrangements chosen so that EVERY
// consecutive transition changes the row-sum multiset:
//
//	A=(10,3 / 1,5): rows {13,6}   D=(10,5 / 3,1): rows {15,4}
//	B=(10,1 / 3,5): rows {11,8}   C=(10,5 / 1,3): rows {15,4}, cols {11,8}
//
// A→D→B→C→A→… changes row sums at every boundary (C→A changes {15,4} to
// {13,6}).
func shuffledRates(block int) [2][2]float64 {
	perms := [][4]int{
		{0, 1, 2, 3}, // A: baseline (10,3 / 1,5)
		{0, 3, 1, 2}, // D: (10,5 / 3,1)
		{0, 2, 1, 3}, // B: (10,1 / 3,5)
		{0, 3, 2, 1}, // C: (10,5 / 1,3)
	}
	flat := [4]float64{initialRates[0][0], initialRates[0][1], initialRates[1][0], initialRates[1][1]}
	p := perms[block%len(perms)]
	return [2][2]float64{{flat[p[0]], flat[p[1]]}, {flat[p[2]], flat[p[3]]}}
}

// sampleGraph draws one bipartite snapshot.
func sampleGraph(rng *randx.RNG, opts Section53Options, d Section53Dataset, rates [2][2]float64, eta, zeta float64) Graph {
	ns := rng.Poisson(opts.NodeLambda)
	nd := rng.Poisson(opts.NodeLambda)
	if ns < 2 {
		ns = 2
	}
	if nd < 2 {
		nd = 2
	}
	srcSplit := int(math.Round(eta * float64(ns)))
	dstSplit := int(math.Round(zeta * float64(nd)))
	srcCluster := func(i int) int {
		if i < srcSplit {
			return 0
		}
		return 1
	}
	dstCluster := func(j int) int {
		if j < dstSplit {
			return 0
		}
		return 1
	}

	g := Graph{NumSrc: ns, NumDst: nd}
	if d == PartitionFixedTraffic {
		// Deterministic community totals by rate ratio, then a uniform
		// multinomial allocation of the total weight within each
		// community ("the weights of the edges are distributed randomly").
		sizes := [2][2]int{}
		for i := 0; i < ns; i++ {
			for j := 0; j < nd; j++ {
				sizes[srcCluster(i)][dstCluster(j)]++
			}
		}
		rateSum := rates[0][0] + rates[0][1] + rates[1][0] + rates[1][1]
		weights := map[[2]int]float64{}
		for k := 0; k < 2; k++ {
			for l := 0; l < 2; l++ {
				if sizes[k][l] == 0 {
					continue
				}
				communityTotal := int(math.Round(float64(opts.TotalWeight) * rates[k][l] / rateSum))
				// Multinomial over the community's cells: throw
				// communityTotal balls into sizes[k][l] cells. Sampling
				// cell indices uniformly is exact and O(total).
				counts := make(map[int]float64, sizes[k][l])
				for b := 0; b < communityTotal; b++ {
					counts[rng.Intn(sizes[k][l])]++
				}
				// Map dense cell index back to (i, j) lazily below via
				// the same enumeration order.
				cell := 0
				for i := 0; i < ns; i++ {
					if srcCluster(i) != k {
						continue
					}
					for j := 0; j < nd; j++ {
						if dstCluster(j) != l {
							continue
						}
						if w := counts[cell]; w > 0 {
							weights[[2]int{i, j}] = w
						}
						cell++
					}
				}
			}
		}
		for ij, w := range weights {
			g.Edges = append(g.Edges, Edge{Src: ij[0], Dst: ij[1], Weight: w})
		}
		return g
	}

	for i := 0; i < ns; i++ {
		for j := 0; j < nd; j++ {
			lam := rates[srcCluster(i)][dstCluster(j)]
			w := rng.Poisson(lam)
			if w > 0 {
				g.Edges = append(g.Edges, Edge{Src: i, Dst: j, Weight: float64(w)})
			}
		}
	}
	return g
}

// AllSection53 lists the four datasets in paper order.
func AllSection53() []Section53Dataset {
	return []Section53Dataset{TrafficVolume, Partition, PartitionFixedTraffic, RateShuffle}
}
