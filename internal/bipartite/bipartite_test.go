package bipartite

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// paperExample builds the Fig. 9 example graph: 5 sources, 4 destinations.
// Edges (1-based in the paper, 0-based here):
//
//	s1→d1 w6, s1→d3 w14, s2→d1 w8, s3→d2 w11, s4→d3 w5, s4→d4 w4, s5→d3 w7
//
// Weights chosen so s1's out-strength is 20 and d3's in-strength 26,
// matching the paper's worked numbers.
func paperExample() Graph {
	return Graph{
		NumSrc: 5, NumDst: 4,
		Edges: []Edge{
			{0, 0, 6}, {0, 2, 14},
			{1, 0, 8},
			{2, 1, 11},
			{3, 2, 5}, {3, 3, 4},
			{4, 2, 7},
		},
	}
}

func featureVals(t *testing.T, g Graph, f Feature) []float64 {
	t.Helper()
	b, err := g.FeatureBag(f, 0)
	if err != nil {
		t.Fatalf("%v: %v", f, err)
	}
	return b.Scalars()
}

func TestValidate(t *testing.T) {
	g := paperExample()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Graph{NumSrc: 1, NumDst: 1, Edges: []Edge{{5, 0, 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range source accepted")
	}
	bad2 := Graph{NumSrc: 1, NumDst: 1, Edges: []Edge{{0, 0, 0}}}
	if err := bad2.Validate(); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestFeature1SrcDegree(t *testing.T) {
	// Paper: "source node 1 is connected to 2 destination nodes, so its
	// degree is 2."
	vals := featureVals(t, paperExample(), SrcDegree)
	if len(vals) != 5 {
		t.Fatalf("got %d sources", len(vals))
	}
	if vals[0] != 2 {
		t.Errorf("source 1 degree = %g, want 2", vals[0])
	}
}

func TestFeature2DstDegree(t *testing.T) {
	// Paper: "destination node 1 is connected to 2 source nodes."
	vals := featureVals(t, paperExample(), DstDegree)
	if vals[0] != 2 {
		t.Errorf("destination 1 degree = %g, want 2", vals[0])
	}
	// d3 receives from s1, s4, s5.
	if vals[2] != 3 {
		t.Errorf("destination 3 degree = %g, want 3", vals[2])
	}
}

func TestFeature3SrcSecondDegree(t *testing.T) {
	// Paper: "source node 1 is connected to destination nodes 1 and 3,
	// which are connected to source node 2, and source nodes 4 and 5…
	// therefore its second degree is 3."
	vals := featureVals(t, paperExample(), SrcSecondDegree)
	if vals[0] != 3 {
		t.Errorf("source 1 second degree = %g, want 3", vals[0])
	}
}

func TestFeature4DstSecondDegree(t *testing.T) {
	// Paper: "destination node 1 is connected to source node 1, which is
	// connected to destination node 3. Therefore its second degree is 1.
	// Note that source node 2 connects to destination node 1, but does
	// not connect to any other destination nodes."
	vals := featureVals(t, paperExample(), DstSecondDegree)
	if vals[0] != 1 {
		t.Errorf("destination 1 second degree = %g, want 1", vals[0])
	}
}

func TestFeature5SrcStrength(t *testing.T) {
	// Paper: "it would be 20 for source node 1, and 9 for source node 4."
	vals := featureVals(t, paperExample(), SrcStrength)
	if vals[0] != 20 {
		t.Errorf("source 1 strength = %g, want 20", vals[0])
	}
	if vals[3] != 9 {
		t.Errorf("source 4 strength = %g, want 9", vals[3])
	}
}

func TestFeature6DstStrength(t *testing.T) {
	// Paper: "it would be 14 for destination node 1, and 26 for
	// destination node 3."
	vals := featureVals(t, paperExample(), DstStrength)
	if vals[0] != 14 {
		t.Errorf("destination 1 strength = %g, want 14", vals[0])
	}
	if vals[2] != 26 {
		t.Errorf("destination 3 strength = %g, want 26", vals[2])
	}
}

func TestFeature7EdgeWeight(t *testing.T) {
	vals := featureVals(t, paperExample(), EdgeWeight)
	if len(vals) != 7 {
		t.Fatalf("got %d edges", len(vals))
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	g := paperExample()
	if sum != g.TotalWeight() {
		t.Errorf("edge weights sum %g != total %g", sum, g.TotalWeight())
	}
}

func TestFeatureSkipsIsolatedNodes(t *testing.T) {
	g := Graph{NumSrc: 10, NumDst: 2, Edges: []Edge{{0, 0, 1}}}
	vals := featureVals(t, g, SrcDegree)
	if len(vals) != 1 {
		t.Errorf("isolated sources not skipped: %v", vals)
	}
}

func TestFeatureBagErrors(t *testing.T) {
	g := paperExample()
	if _, err := g.FeatureBag(Feature(0), 0); err == nil {
		t.Error("unknown feature accepted")
	}
	empty := Graph{NumSrc: 3, NumDst: 3}
	if _, err := empty.FeatureBag(SrcDegree, 0); err == nil {
		t.Error("empty graph should error (empty bag)")
	}
}

func TestFeatureStrings(t *testing.T) {
	for _, f := range AllFeatures() {
		if f.String() == "" {
			t.Error("empty feature name")
		}
	}
}

func TestSecondDegreeParallelEdgesNotDoubleCounted(t *testing.T) {
	g := Graph{
		NumSrc: 2, NumDst: 1,
		Edges: []Edge{{0, 0, 1}, {0, 0, 2}, {1, 0, 1}},
	}
	vals := featureVals(t, g, SrcSecondDegree)
	if vals[0] != 1 {
		t.Errorf("second degree with parallel edges = %g, want 1", vals[0])
	}
}

func TestFeatureSequence(t *testing.T) {
	graphs := []Graph{paperExample(), paperExample()}
	seq, err := FeatureSequence(graphs, SrcStrength)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 || seq[1].T != 1 {
		t.Fatalf("sequence shape wrong")
	}
}

func smallOpts() Section53Options {
	return Section53Options{NodeLambda: 25, Steps: 100, TotalWeight: 4000}
}

func TestSection53Changes(t *testing.T) {
	got := TrafficVolume.Changes(100)
	want := []int{40, 60, 80}
	if len(got) != len(want) {
		t.Fatalf("Changes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Changes = %v, want %v", got, want)
		}
	}
}

func TestSection53GenerateShapes(t *testing.T) {
	for _, d := range AllSection53() {
		graphs, err := d.Generate(randx.New(int64(d)), smallOpts())
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if len(graphs) != 100 {
			t.Fatalf("%v: %d graphs", d, len(graphs))
		}
		for i := range graphs {
			if err := graphs[i].Validate(); err != nil {
				t.Fatalf("%v graph %d: %v", d, i, err)
			}
			if len(graphs[i].Edges) == 0 {
				t.Fatalf("%v graph %d has no edges", d, i)
			}
		}
	}
}

func TestSection53InvalidID(t *testing.T) {
	if _, err := Section53Dataset(0).Generate(randx.New(1), smallOpts()); err == nil {
		t.Error("dataset 0 accepted")
	}
}

func TestTrafficVolumeRises(t *testing.T) {
	graphs, err := TrafficVolume.Generate(randx.New(1), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline block [0,40): λ=1; block a=3 covers [80,100): λ=4.
	// Per-cell traffic must quadruple.
	perNode := func(lo, hi int) float64 {
		s, n := 0.0, 0
		for t2 := lo; t2 < hi; t2++ {
			s += graphs[t2].TotalWeight()
			n += graphs[t2].NumSrc * graphs[t2].NumDst
		}
		return s / float64(n)
	}
	base := perNode(0, 40)
	block3 := perNode(80, 100)
	if block3 < 3.5*base || block3 > 4.5*base {
		t.Errorf("block λ=4 per-cell traffic %g vs baseline %g (want ~4x)", block3, base)
	}
}

func TestFixedTrafficIsConstant(t *testing.T) {
	graphs, err := PartitionFixedTraffic.Generate(randx.New(2), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range graphs {
		tw := g.TotalWeight()
		// Rounding of community totals can shift the sum by a few units.
		if math.Abs(tw-4000) > 4 {
			t.Errorf("graph %d total weight %g, want 4000±4", i, tw)
		}
	}
}

func TestRateShuffleKeepsExpectedTraffic(t *testing.T) {
	graphs, err := RateShuffle.Generate(randx.New(3), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Expected per-cell rate is Σλ/4 in every block; compare first and a
	// late block.
	perCell := func(lo, hi int) float64 {
		s, n := 0.0, 0
		for t2 := lo; t2 < hi; t2++ {
			s += graphs[t2].TotalWeight()
			n += graphs[t2].NumSrc * graphs[t2].NumDst
		}
		return s / float64(n)
	}
	early := perCell(0, 40)
	late := perCell(60, 80)
	if math.Abs(early-late) > 0.25*early {
		t.Errorf("rate shuffle changed total traffic: %g vs %g", early, late)
	}
}

func TestRateShufflePermutesRates(t *testing.T) {
	// The per-block rate matrices must always be a permutation of
	// {10,3,1,5}, consecutive blocks must differ, and — crucially for
	// detectability with unlabeled bags — every consecutive transition
	// must change the multiset of row sums or of column sums.
	rowSums := func(r [2][2]float64) [2]float64 {
		a, b := r[0][0]+r[0][1], r[1][0]+r[1][1]
		if a > b {
			a, b = b, a
		}
		return [2]float64{a, b}
	}
	colSums := func(r [2][2]float64) [2]float64 {
		a, b := r[0][0]+r[1][0], r[0][1]+r[1][1]
		if a > b {
			a, b = b, a
		}
		return [2]float64{a, b}
	}
	for a := 0; a <= 11; a++ {
		r := shuffledRates(a)
		sum := r[0][0] + r[0][1] + r[1][0] + r[1][1]
		if sum != 19 {
			t.Fatalf("block %d rates %v do not sum to 19", a, r)
		}
		if a > 0 {
			prev := shuffledRates(a - 1)
			if rowSums(r) == rowSums(prev) && colSums(r) == colSums(prev) {
				t.Fatalf("transition %d→%d is invisible: row sums %v, col sums %v unchanged",
					a-1, a, rowSums(r), colSums(r))
			}
		}
	}
}

func TestGenerateDeterministicGivenSeed(t *testing.T) {
	a, err := Partition.Generate(randx.New(7), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition.Generate(randx.New(7), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Edges) != len(b[i].Edges) || a[i].NumSrc != b[i].NumSrc {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	o := Section53Options{}.withDefaults(TrafficVolume)
	if o.NodeLambda != 200 || o.Steps != 200 || o.TotalWeight != 100000 {
		t.Errorf("defaults = %+v", o)
	}
	o4 := Section53Options{}.withDefaults(RateShuffle)
	if o4.Steps != 240 {
		t.Errorf("dataset 4 default steps = %d, want 240", o4.Steps)
	}
}
