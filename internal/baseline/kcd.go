package baseline

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Kernel is a positive-definite kernel function.
type Kernel func(a, b []float64) float64

// RBF returns a Gaussian kernel with bandwidth sigma:
// K(a,b) = exp(−‖a−b‖² / (2σ²)).
func RBF(sigma float64) Kernel {
	if sigma <= 0 {
		panic(fmt.Sprintf("baseline: RBF sigma must be positive, got %g", sigma))
	}
	inv := 1 / (2 * sigma * sigma)
	return func(a, b []float64) float64 {
		return math.Exp(-vec.SqDist2(a, b) * inv)
	}
}

// OneClassSVM is a ν-one-class SVM trained by SMO-style coordinate
// descent: minimize ½ αᵀKα subject to Σα = 1, 0 ≤ α_i ≤ 1/(ν·n).
type OneClassSVM struct {
	Alpha []float64
	Rho   float64 // offset: ρ = wᵀφ(x_sv) for margin support vectors
	X     [][]float64
	K     Kernel
}

// FitOneClassSVM trains a one-class SVM on points with parameter ν in
// (0, 1] controlling the outlier fraction.
func FitOneClassSVM(points [][]float64, nu float64, k Kernel, maxIter int) (*OneClassSVM, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("baseline: no points to fit")
	}
	if nu <= 0 || nu > 1 {
		return nil, fmt.Errorf("baseline: nu must be in (0,1], got %g", nu)
	}
	if k == nil {
		return nil, fmt.Errorf("baseline: kernel is required")
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	c := 1 / (nu * float64(n))
	if c*float64(n) < 1 {
		return nil, fmt.Errorf("baseline: infeasible nu=%g for n=%d", nu, n)
	}

	// Gram matrix.
	gram := make([][]float64, n)
	for i := range gram {
		gram[i] = make([]float64, n)
		for j := range gram[i] {
			gram[i][j] = k(points[i], points[j])
		}
	}

	// Feasible start: fill the first ⌈νn⌉ points up to the cap.
	alpha := make([]float64, n)
	remaining := 1.0
	for i := 0; i < n && remaining > 0; i++ {
		a := math.Min(c, remaining)
		alpha[i] = a
		remaining -= a
	}
	// Gradient g = K·α.
	g := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				g[i] += gram[i][j] * alpha[j]
			}
		}
	}

	const tol = 1e-6
	for iter := 0; iter < maxIter; iter++ {
		// Working pair: i can grow (α_i < C) with minimal gradient;
		// j can shrink (α_j > 0) with maximal gradient.
		i, j := -1, -1
		gi, gj := math.Inf(1), math.Inf(-1)
		for t := 0; t < n; t++ {
			if alpha[t] < c-1e-14 && g[t] < gi {
				gi, i = g[t], t
			}
			if alpha[t] > 1e-14 && g[t] > gj {
				gj, j = g[t], t
			}
		}
		if i == -1 || j == -1 || gj-gi < tol {
			break // KKT-optimal
		}
		eta := gram[i][i] + gram[j][j] - 2*gram[i][j]
		if eta < 1e-12 {
			eta = 1e-12
		}
		delta := (gj - gi) / eta
		delta = math.Min(delta, c-alpha[i])
		delta = math.Min(delta, alpha[j])
		if delta <= 0 {
			break
		}
		alpha[i] += delta
		alpha[j] -= delta
		for t := 0; t < n; t++ {
			g[t] += delta * (gram[t][i] - gram[t][j])
		}
	}

	// ρ = average decision value over margin support vectors
	// (0 < α < C); fall back to all support vectors.
	rho, count := 0.0, 0
	for t := 0; t < n; t++ {
		if alpha[t] > 1e-10 && alpha[t] < c-1e-10 {
			rho += g[t]
			count++
		}
	}
	if count == 0 {
		for t := 0; t < n; t++ {
			if alpha[t] > 1e-10 {
				rho += g[t]
				count++
			}
		}
	}
	if count > 0 {
		rho /= float64(count)
	}
	return &OneClassSVM{Alpha: alpha, Rho: rho, X: points, K: k}, nil
}

// Decision returns wᵀφ(x) − ρ; non-negative inside the learned region.
func (m *OneClassSVM) Decision(x []float64) float64 {
	s := 0.0
	for i, a := range m.Alpha {
		if a != 0 {
			s += a * m.K(m.X[i], x)
		}
	}
	return s - m.Rho
}

// wNormSq returns ‖w‖² = αᵀKα.
func (m *OneClassSVM) wNormSq() float64 {
	s := 0.0
	for i, ai := range m.Alpha {
		if ai == 0 {
			continue
		}
		for j, aj := range m.Alpha {
			if aj != 0 {
				s += ai * aj * m.K(m.X[i], m.X[j])
			}
		}
	}
	return s
}

// KCDIndex is Desobry's dissimilarity between two one-class SVMs trained
// on the reference and test windows: the arc between the two hyperplane
// normals in feature space, normalized by the sum of the single-class
// margin arcs:
//
//	D = arccos(w_r·w_t / ‖w_r‖‖w_t‖) /
//	    (arccos(ρ_r/‖w_r‖) + arccos(ρ_t/‖w_t‖))
func KCDIndex(ref, test *OneClassSVM) float64 {
	dot := 0.0
	for i, ai := range ref.Alpha {
		if ai == 0 {
			continue
		}
		for j, aj := range test.Alpha {
			if aj != 0 {
				dot += ai * aj * ref.K(ref.X[i], test.X[j])
			}
		}
	}
	nr := math.Sqrt(ref.wNormSq())
	nt := math.Sqrt(test.wNormSq())
	if nr == 0 || nt == 0 {
		return 0
	}
	cosAngle := clampUnit(dot / (nr * nt))
	arc := math.Acos(cosAngle)
	margin := math.Acos(clampUnit(ref.Rho/nr)) + math.Acos(clampUnit(test.Rho/nt))
	if margin < 1e-12 {
		margin = 1e-12
	}
	return arc / margin
}

func clampUnit(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

// KCDConfig parameterizes the sliding-window KCD detector.
type KCDConfig struct {
	// Window is the number of steps in each of the reference and test
	// windows (default 25).
	Window int
	// Nu is the one-class SVM parameter (default 0.2).
	Nu float64
	// Sigma is the RBF bandwidth (default 1; use the median heuristic
	// externally for real data).
	Sigma float64
	// MaxIter bounds SMO iterations per fit (default 1000).
	MaxIter int
}

func (c KCDConfig) withDefaults() KCDConfig {
	if c.Window <= 0 {
		c.Window = 25
	}
	if c.Nu <= 0 || c.Nu > 1 {
		c.Nu = 0.2
	}
	if c.Sigma <= 0 {
		c.Sigma = 1
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 1000
	}
	return c
}

// RunKCD slides a reference window [t−W, t) and a test window [t, t+W)
// over a vector series and emits the KCD index at each valid t. Times
// before the windows fit get score 0. The returned slice is parallel to
// xs.
func RunKCD(xs [][]float64, cfg KCDConfig) ([]float64, error) {
	cfg = cfg.withDefaults()
	n := len(xs)
	scores := make([]float64, n)
	if n < 2*cfg.Window {
		return scores, nil
	}
	kern := RBF(cfg.Sigma)
	for t := cfg.Window; t+cfg.Window <= n; t++ {
		ref, err := FitOneClassSVM(xs[t-cfg.Window:t], cfg.Nu, kern, cfg.MaxIter)
		if err != nil {
			return nil, fmt.Errorf("baseline: KCD reference fit at %d: %w", t, err)
		}
		test, err := FitOneClassSVM(xs[t:t+cfg.Window], cfg.Nu, kern, cfg.MaxIter)
		if err != nil {
			return nil, fmt.Errorf("baseline: KCD test fit at %d: %w", t, err)
		}
		scores[t] = KCDIndex(ref, test)
	}
	return scores, nil
}

// MedianHeuristicSigma returns the median pairwise distance of a sample
// of the series, the standard bandwidth heuristic for RBF kernels.
func MedianHeuristicSigma(xs [][]float64) float64 {
	n := len(xs)
	if n < 2 {
		return 1
	}
	var dists []float64
	step := 1
	if n > 200 {
		step = n / 200
	}
	for i := 0; i < n; i += step {
		for j := i + step; j < n; j += step {
			dists = append(dists, vec.Dist2(xs[i], xs[j]))
		}
	}
	if len(dists) == 0 {
		return 1
	}
	// Median by partial selection.
	k := len(dists) / 2
	quickSelect(dists, k)
	if dists[k] <= 0 {
		return 1
	}
	return dists[k]
}

// quickSelect partially sorts xs so xs[k] is the k-th order statistic.
func quickSelect(xs []float64, k int) {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}
