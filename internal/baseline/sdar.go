// Package baseline implements the two single-vector-per-step comparators
// of Fig. 1(c): ChangeFinder (Takeuchi & Yamanishi, "A unifying framework
// for detecting outliers and change points from time series", TKDE 2006,
// reference [8]) built on sequentially discounting AR (SDAR) models, and
// KCD (Desobry, Davy & Doncarli, "An online kernel change detection
// algorithm", IEEE TSP 2005, reference [9]) built on one-class SVMs.
//
// Both methods consume one vector per time step. The paper's point is
// that when bags are collapsed to their sample means, these methods see
// no signal; this package exists so the repository can regenerate that
// comparison honestly rather than assert it.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// SDAR is a scalar sequentially-discounting AR(k) model. Statistics are
// updated with exponential discounting factor r: newer points dominate,
// so the model tracks drifting processes.
type SDAR struct {
	order    int
	r        float64
	mu       float64   // discounted mean
	c        []float64 // discounted autocovariances c[0..order]
	sigma2   float64   // discounted prediction error variance
	histBuf  []float64 // last `order` centered observations, newest first
	seen     int
	coeffSet bool
	coef     []float64
}

// NewSDAR creates a scalar SDAR model of the given AR order and discount
// factor r in (0, 1). Typical r is 0.01-0.05.
func NewSDAR(order int, r float64) (*SDAR, error) {
	if order < 1 {
		return nil, fmt.Errorf("baseline: SDAR order must be >= 1, got %d", order)
	}
	if r <= 0 || r >= 1 {
		return nil, fmt.Errorf("baseline: SDAR discount r must be in (0,1), got %g", r)
	}
	return &SDAR{
		order:   order,
		r:       r,
		c:       make([]float64, order+1),
		sigma2:  1,
		histBuf: make([]float64, 0, order),
	}, nil
}

// Update feeds x_t and returns the logarithmic loss −log p(x_t | past)
// under the model state BEFORE incorporating x_t (the prequential score
// the ChangeFinder framework uses).
func (s *SDAR) Update(x float64) float64 {
	// Score first (prediction from the old state).
	pred := s.predict()
	variance := s.sigma2
	if variance < 1e-12 {
		variance = 1e-12
	}
	resid := x - pred
	logLoss := 0.5*math.Log(2*math.Pi*variance) + resid*resid/(2*variance)

	// Then update the discounted statistics.
	s.mu = (1-s.r)*s.mu + s.r*x
	xc := x - s.mu
	// Autocovariances against the centered history.
	s.c[0] = (1-s.r)*s.c[0] + s.r*xc*xc
	for j := 1; j <= s.order && j <= len(s.histBuf); j++ {
		s.c[j] = (1-s.r)*s.c[j] + s.r*xc*s.histBuf[j-1]
	}
	// Refit AR coefficients by Yule-Walker when enough history exists.
	if s.seen >= s.order+1 {
		s.fit()
	}
	// Discounted innovation variance (against the new prediction).
	predNew := s.predict()
	rn := x - predNew
	s.sigma2 = (1-s.r)*s.sigma2 + s.r*rn*rn

	// Slide the centered history (newest first).
	if len(s.histBuf) == s.order {
		copy(s.histBuf[1:], s.histBuf[:s.order-1])
		s.histBuf[0] = xc
	} else {
		s.histBuf = append([]float64{xc}, s.histBuf...)
	}
	s.seen++
	return logLoss
}

// predict returns the one-step-ahead mean from the current state.
func (s *SDAR) predict() float64 {
	if !s.coeffSet || len(s.histBuf) < s.order {
		return s.mu
	}
	p := s.mu
	for j := 0; j < s.order; j++ {
		p += s.coef[j] * s.histBuf[j]
	}
	return p
}

// fit solves the Yule-Walker equations R·a = c for the AR coefficients,
// where R is the Toeplitz autocovariance matrix.
func (s *SDAR) fit() {
	k := s.order
	r := vec.NewMatrix(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			lag := i - j
			if lag < 0 {
				lag = -lag
			}
			r.Set(i, j, s.c[lag])
		}
		// Ridge term keeps the system solvable early on.
		r.Set(i, i, r.At(i, i)+1e-8)
	}
	rhs := make([]float64, k)
	copy(rhs, s.c[1:])
	coef, err := vec.SolveGauss(r, rhs)
	if err != nil {
		return // keep previous coefficients
	}
	s.coef = coef
	s.coeffSet = true
}

// ChangeFinder is the two-stage change-point detector of [8]: an SDAR
// model scores each observation (outlier score), the scores are smoothed
// over a window, a second SDAR model scores the smoothed series, and a
// final smoothing yields the change-point score.
type ChangeFinder struct {
	stage1, stage2   *SDAR
	smooth1, smooth2 *movingAverage
}

// NewChangeFinder builds a ChangeFinder with AR order k, discount r, and
// smoothing windows w1 (outlier scores) and w2 (change scores).
func NewChangeFinder(order int, r float64, w1, w2 int) (*ChangeFinder, error) {
	if w1 < 1 || w2 < 1 {
		return nil, fmt.Errorf("baseline: smoothing windows must be >= 1, got %d/%d", w1, w2)
	}
	s1, err := NewSDAR(order, r)
	if err != nil {
		return nil, err
	}
	s2, err := NewSDAR(order, r)
	if err != nil {
		return nil, err
	}
	return &ChangeFinder{
		stage1:  s1,
		stage2:  s2,
		smooth1: newMovingAverage(w1),
		smooth2: newMovingAverage(w2),
	}, nil
}

// Update feeds x_t and returns the change-point score at time t.
func (cf *ChangeFinder) Update(x float64) float64 {
	outlier := cf.stage1.Update(x)
	smoothed := cf.smooth1.push(outlier)
	second := cf.stage2.Update(smoothed)
	return cf.smooth2.push(second)
}

// Run scores a whole scalar series.
func (cf *ChangeFinder) Run(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = cf.Update(x)
	}
	return out
}

// RunVector scores a vector series by averaging per-dimension
// ChangeFinder scores (each dimension gets an independent model with the
// same hyperparameters).
func RunVectorChangeFinder(xs [][]float64, order int, r float64, w1, w2 int) ([]float64, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	d := len(xs[0])
	cfs := make([]*ChangeFinder, d)
	for j := 0; j < d; j++ {
		cf, err := NewChangeFinder(order, r, w1, w2)
		if err != nil {
			return nil, err
		}
		cfs[j] = cf
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("baseline: vector %d has dimension %d, want %d", i, len(x), d)
		}
		s := 0.0
		for j := 0; j < d; j++ {
			s += cfs[j].Update(x[j])
		}
		out[i] = s / float64(d)
	}
	return out, nil
}

// movingAverage is a fixed-window running mean.
type movingAverage struct {
	buf  []float64
	next int
	full bool
	sum  float64
}

func newMovingAverage(w int) *movingAverage {
	return &movingAverage{buf: make([]float64, w)}
}

func (m *movingAverage) push(x float64) float64 {
	m.sum -= m.buf[m.next]
	m.buf[m.next] = x
	m.sum += x
	m.next++
	if m.next == len(m.buf) {
		m.next = 0
		m.full = true
	}
	if m.full {
		return m.sum / float64(len(m.buf))
	}
	return m.sum / float64(m.next)
}
