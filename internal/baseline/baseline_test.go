package baseline

import (
	"math"
	"testing"

	"repro/internal/randx"
)

func TestNewSDARValidation(t *testing.T) {
	if _, err := NewSDAR(0, 0.05); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := NewSDAR(2, 0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := NewSDAR(2, 1); err == nil {
		t.Error("r=1 accepted")
	}
}

func TestSDARLossSpikesAtLevelShift(t *testing.T) {
	s, err := NewSDAR(2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(1)
	var losses []float64
	for i := 0; i < 200; i++ {
		x := rng.Normal(0, 1)
		if i >= 100 {
			x = rng.Normal(20, 1)
		}
		losses = append(losses, s.Update(x))
	}
	// The loss right after the shift must dwarf the steady-state loss.
	steady := 0.0
	for i := 50; i < 100; i++ {
		steady += losses[i]
	}
	steady /= 50
	if losses[100] < steady*5 {
		t.Errorf("loss at shift %g, steady %g", losses[100], steady)
	}
	// And it must settle back down as the model adapts.
	late := 0.0
	for i := 180; i < 200; i++ {
		late += losses[i]
	}
	late /= 20
	if late > steady*4 {
		t.Errorf("SDAR did not adapt: late loss %g vs steady %g", late, steady)
	}
}

func TestSDARTracksARProcess(t *testing.T) {
	// Feed a strongly autocorrelated AR(1) process; the fitted model
	// must achieve much lower loss than an i.i.d.-mean model would,
	// i.e. its predictions must use the history.
	s, _ := NewSDAR(1, 0.02)
	rng := randx.New(2)
	x := 0.0
	var preds, actuals []float64
	for i := 0; i < 1500; i++ {
		x = 0.95*x + rng.Normal(0, 1)
		if i > 1000 {
			preds = append(preds, s.predict())
			actuals = append(actuals, x)
		}
		s.Update(x)
	}
	// Prediction residual variance must be far below the marginal
	// variance of the process (≈ 1/(1−0.95²) ≈ 10).
	resid := 0.0
	for i := range preds {
		d := actuals[i] - preds[i]
		resid += d * d
	}
	resid /= float64(len(preds))
	if resid > 4 {
		t.Errorf("AR(1) residual variance %g; model is not using history", resid)
	}
}

func TestChangeFinderValidation(t *testing.T) {
	if _, err := NewChangeFinder(2, 0.05, 0, 5); err == nil {
		t.Error("w1=0 accepted")
	}
	if _, err := NewChangeFinder(0, 0.05, 5, 5); err == nil {
		t.Error("order 0 accepted")
	}
}

func TestChangeFinderDetectsShiftInScalarSeries(t *testing.T) {
	cf, err := NewChangeFinder(2, 0.03, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(3)
	xs := make([]float64, 300)
	for i := range xs {
		if i < 150 {
			xs[i] = rng.Normal(0, 1)
		} else {
			xs[i] = rng.Normal(15, 1)
		}
	}
	scores := cf.Run(xs)
	peak := 0.0
	peakAt := 0
	for i := 50; i < len(scores); i++ {
		if scores[i] > peak {
			peak, peakAt = scores[i], i
		}
	}
	if peakAt < 150 || peakAt > 175 {
		t.Errorf("ChangeFinder peak at %d, want within [150,175]", peakAt)
	}
}

func TestChangeFinderFlatOnMeaninglessSeries(t *testing.T) {
	// A stationary series should not produce an extreme late-series
	// score relative to its own baseline: the max after warmup should
	// be within a small factor of the median.
	cf, _ := NewChangeFinder(2, 0.03, 5, 5)
	rng := randx.New(4)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.Normal(0, 1)
	}
	scores := cf.Run(xs)[60:]
	maxV, sum := math.Inf(-1), 0.0
	for _, s := range scores {
		if s > maxV {
			maxV = s
		}
		sum += s
	}
	mean := sum / float64(len(scores))
	if maxV > mean*5+10 {
		t.Errorf("stationary series produced spike: max %g vs mean %g", maxV, mean)
	}
}

func TestRunVectorChangeFinder(t *testing.T) {
	rng := randx.New(5)
	xs := make([][]float64, 200)
	for i := range xs {
		mu := 0.0
		if i >= 100 {
			mu = 10
		}
		xs[i] = []float64{rng.Normal(mu, 1), rng.Normal(-mu, 1)}
	}
	scores, err := RunVectorChangeFinder(xs, 2, 0.03, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	peakAt := 0
	peak := 0.0
	for i := 50; i < len(scores); i++ {
		if scores[i] > peak {
			peak, peakAt = scores[i], i
		}
	}
	if peakAt < 100 || peakAt > 125 {
		t.Errorf("vector ChangeFinder peak at %d", peakAt)
	}
	// Dimension mismatch error.
	bad := [][]float64{{1, 2}, {1}}
	if _, err := RunVectorChangeFinder(bad, 2, 0.03, 5, 5); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestRBFKernel(t *testing.T) {
	k := RBF(1)
	if got := k([]float64{0}, []float64{0}); got != 1 {
		t.Errorf("K(x,x) = %g, want 1", got)
	}
	if got := k([]float64{0}, []float64{100}); got > 1e-10 {
		t.Errorf("far kernel = %g, want ≈0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("RBF(0) should panic")
		}
	}()
	RBF(0)
}

func TestOneClassSVMValidation(t *testing.T) {
	k := RBF(1)
	if _, err := FitOneClassSVM(nil, 0.5, k, 100); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitOneClassSVM([][]float64{{1}}, 0, k, 100); err == nil {
		t.Error("nu=0 accepted")
	}
	if _, err := FitOneClassSVM([][]float64{{1}}, 0.5, nil, 100); err == nil {
		t.Error("nil kernel accepted")
	}
}

func TestOneClassSVMSeparatesInliersFromOutliers(t *testing.T) {
	rng := randx.New(6)
	var pts [][]float64
	for i := 0; i < 60; i++ {
		pts = append(pts, []float64{rng.Normal(0, 1), rng.Normal(0, 1)})
	}
	m, err := FitOneClassSVM(pts, 0.2, RBF(1.5), 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Constraint: Σα = 1, 0 <= α <= 1/(νn).
	sum := 0.0
	c := 1 / (0.2 * 60)
	for _, a := range m.Alpha {
		if a < -1e-12 || a > c+1e-9 {
			t.Fatalf("alpha %g outside [0, %g]", a, c)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Σα = %g, want 1", sum)
	}
	// Decision at the center must exceed decision far away.
	center := m.Decision([]float64{0, 0})
	far := m.Decision([]float64{8, 8})
	if center <= far {
		t.Errorf("decision(center)=%g <= decision(far)=%g", center, far)
	}
	if far > 0 {
		t.Errorf("far point classified as inlier: %g", far)
	}
}

func TestKCDIndexLowForSameDistribution(t *testing.T) {
	rng := randx.New(7)
	mk := func() [][]float64 {
		var pts [][]float64
		for i := 0; i < 40; i++ {
			pts = append(pts, []float64{rng.Normal(0, 1)})
		}
		return pts
	}
	kern := RBF(1)
	a, err := FitOneClassSVM(mk(), 0.2, kern, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitOneClassSVM(mk(), 0.2, kern, 2000)
	if err != nil {
		t.Fatal(err)
	}
	same := KCDIndex(a, b)

	var shiftedPts [][]float64
	for i := 0; i < 40; i++ {
		shiftedPts = append(shiftedPts, []float64{rng.Normal(6, 1)})
	}
	c, err := FitOneClassSVM(shiftedPts, 0.2, kern, 2000)
	if err != nil {
		t.Fatal(err)
	}
	diff := KCDIndex(a, c)
	if diff <= same*1.5 {
		t.Errorf("KCD index: same-dist %g, shifted %g — no separation", same, diff)
	}
}

func TestRunKCDDetectsShift(t *testing.T) {
	rng := randx.New(8)
	xs := make([][]float64, 120)
	for i := range xs {
		mu := 0.0
		if i >= 60 {
			mu = 8
		}
		xs[i] = []float64{rng.Normal(mu, 1)}
	}
	scores, err := RunKCD(xs, KCDConfig{Window: 20, Nu: 0.2, Sigma: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	peakAt, peak := 0, 0.0
	for i, s := range scores {
		if s > peak {
			peak, peakAt = s, i
		}
	}
	if peakAt < 55 || peakAt > 65 {
		t.Errorf("KCD peak at %d, want near 60", peakAt)
	}
}

func TestRunKCDShortSeries(t *testing.T) {
	scores, err := RunKCD([][]float64{{1}, {2}}, KCDConfig{Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s != 0 {
			t.Error("short series should give zero scores")
		}
	}
}

func TestMedianHeuristicSigma(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}, {3}}
	sigma := MedianHeuristicSigma(xs)
	if sigma <= 0 {
		t.Errorf("sigma = %g", sigma)
	}
	if MedianHeuristicSigma(nil) != 1 {
		t.Error("empty input should default to 1")
	}
	if MedianHeuristicSigma([][]float64{{5}, {5}}) != 1 {
		t.Error("identical points should default to 1")
	}
}

func TestQuickSelect(t *testing.T) {
	rng := randx.New(9)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		k := rng.Intn(n)
		cp := append([]float64(nil), xs...)
		quickSelect(cp, k)
		// cp[k] must be the k-th order statistic.
		less := 0
		for _, v := range xs {
			if v < cp[k] {
				less++
			}
		}
		if less > k {
			t.Fatalf("trial %d: %d values below selected k=%d", trial, less, k)
		}
	}
}
