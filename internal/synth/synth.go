// Package synth generates the paper's synthetic bag sequences: the Fig. 1
// motivating example (a 1-D Gaussian-mixture stream whose sample mean is
// uninformative) and the five 2-D datasets of §5.1 used to study the
// behaviour of the bootstrap confidence intervals.
//
// All generators use 0-based bag indices; a change "at index c" means bag
// c is the first bag drawn from the new regime (the paper's 1-based
// "change at t = 11" is index 10 here).
package synth

import (
	"fmt"
	"math"

	"repro/internal/bag"
	"repro/internal/randx"
)

// Fig1Len is the length of the Fig. 1 sequence.
const Fig1Len = 150

// Fig1Changes are the change indices of the Fig. 1 sequence: at index 50
// the generator switches from one Gaussian to a two-component mixture,
// and at 100 to a three-component mixture. All mixtures are symmetric
// about zero, so the per-bag sample mean stays ≈0 throughout — exactly
// the property that defeats single-vector methods in Fig. 1(b)/(c).
var Fig1Changes = []int{50, 100}

// Fig1Sequence generates the Fig. 1 stream: 150 bags of ~300 one-
// dimensional points each.
//
//	bags [0,50):    N(0, 1)
//	bags [50,100):  ½N(−4, 1) + ½N(4, 1)
//	bags [100,150): ⅓N(−7, 1) + ⅓N(0, 1) + ⅓N(7, 1)
func Fig1Sequence(rng *randx.RNG) bag.Sequence {
	seq := make(bag.Sequence, Fig1Len)
	for t := 0; t < Fig1Len; t++ {
		n := 280 + rng.Intn(41) // "about 300 instances at each step"
		vals := make([]float64, n)
		for i := range vals {
			switch {
			case t < 50:
				vals[i] = rng.Normal(0, 1)
			case t < 100:
				if rng.Bernoulli(0.5) {
					vals[i] = rng.Normal(-4, 1)
				} else {
					vals[i] = rng.Normal(4, 1)
				}
			default:
				switch rng.Intn(3) {
				case 0:
					vals[i] = rng.Normal(-7, 1)
				case 1:
					vals[i] = rng.Normal(0, 1)
				default:
					vals[i] = rng.Normal(7, 1)
				}
			}
		}
		seq[t] = bag.FromScalars(t, vals)
	}
	return seq
}

// Section51Len is the number of bags in each §5.1 dataset.
const Section51Len = 20

// Section51Dataset identifies one of the five synthetic datasets of §5.1.
type Section51Dataset int

// The five §5.1 datasets.
const (
	// LargeVariance: all points from N(0, 15²·I); no change points.
	LargeVariance Section51Dataset = iota + 1
	// HeavyNoise: 80% standard normal, 20% scattered noise; no changes.
	HeavyNoise
	// CircularDrift: the mean moves smoothly on a circle; no significant
	// change points (a constantly, gradually changing distribution).
	CircularDrift
	// MeanJump: the mean jumps from (3,0) to (−3,0) at index 10.
	MeanJump
	// SpeedUp: the mean circles at radius √3 until index 10, then at
	// radius 3 (it "starts to move faster").
	SpeedUp
)

// String implements fmt.Stringer.
func (d Section51Dataset) String() string {
	switch d {
	case LargeVariance:
		return "Dataset 1 (large variance)"
	case HeavyNoise:
		return "Dataset 2 (80/20 noise)"
	case CircularDrift:
		return "Dataset 3 (circular drift)"
	case MeanJump:
		return "Dataset 4 (mean jump)"
	case SpeedUp:
		return "Dataset 5 (speed up)"
	default:
		return fmt.Sprintf("Section51Dataset(%d)", int(d))
	}
}

// Changes returns the indices of the dataset's significant change points
// (empty when the paper says there are none).
func (d Section51Dataset) Changes() []int {
	switch d {
	case MeanJump, SpeedUp:
		return []int{10}
	default:
		return nil
	}
}

// Generate produces the 20-bag sequence for the dataset. Each bag holds
// n_t ~ Poisson(50) two-dimensional Gaussian points per the §5.1 recipes.
func (d Section51Dataset) Generate(rng *randx.RNG) (bag.Sequence, error) {
	if d < LargeVariance || d > SpeedUp {
		return nil, fmt.Errorf("synth: unknown §5.1 dataset %d", int(d))
	}
	seq := make(bag.Sequence, Section51Len)
	for t := 0; t < Section51Len; t++ {
		n := rng.Poisson(50)
		if n == 0 {
			n = 1 // bags must be non-empty for signature building
		}
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = d.samplePoint(rng, t)
		}
		seq[t] = bag.New(t, pts)
	}
	return seq, nil
}

// samplePoint draws one point of bag index t (paper time t+1).
func (d Section51Dataset) samplePoint(rng *randx.RNG, t int) []float64 {
	paperT := float64(t + 1) // the §5.1 formulas are 1-based
	switch d {
	case LargeVariance:
		return []float64{rng.Normal(0, 15), rng.Normal(0, 15)}
	case HeavyNoise:
		if rng.Bernoulli(0.8) {
			return []float64{rng.Normal(0, 1), rng.Normal(0, 1)}
		}
		// Noise: mean itself drawn from N(0, 20·I) per point, Σ = 5·I.
		mx := rng.Normal(0, math.Sqrt(20))
		my := rng.Normal(0, math.Sqrt(20))
		return []float64{rng.Normal(mx, math.Sqrt(5)), rng.Normal(my, math.Sqrt(5))}
	case CircularDrift:
		angle := math.Pi * (paperT - 0.5) / 5
		mx := math.Sqrt(3) * math.Cos(angle)
		my := math.Sqrt(3) * math.Sin(angle)
		return []float64{rng.Normal(mx, 1), rng.Normal(my, 1)}
	case MeanJump:
		mu := 3.0
		if t >= 10 {
			mu = -3.0
		}
		return []float64{rng.Normal(mu, 1), rng.Normal(0, 1)}
	case SpeedUp:
		rho := math.Sqrt(3)
		if t >= 10 {
			rho = 3
		}
		angle := math.Pi * (paperT - 0.5) / 5
		return []float64{
			rng.Normal(rho*math.Cos(angle), 1),
			rng.Normal(rho*math.Sin(angle), 1),
		}
	default:
		panic("unreachable")
	}
}

// AllSection51 lists the five datasets in paper order.
func AllSection51() []Section51Dataset {
	return []Section51Dataset{LargeVariance, HeavyNoise, CircularDrift, MeanJump, SpeedUp}
}

// GMM1D describes a one-dimensional Gaussian mixture used by example
// programs: components with means Mu, standard deviations Sigma, and
// mixing proportions Pi (normalized internally).
type GMM1D struct {
	Mu, Sigma, Pi []float64
}

// Sample draws one value from the mixture.
func (g GMM1D) Sample(rng *randx.RNG) float64 {
	k := rng.Categorical(g.Pi)
	return rng.Normal(g.Mu[k], g.Sigma[k])
}

// Bag draws a bag of n values at time t.
func (g GMM1D) Bag(rng *randx.RNG, t, n int) bag.Bag {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = g.Sample(rng)
	}
	return bag.FromScalars(t, vals)
}
