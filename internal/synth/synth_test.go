package synth

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/vec"
)

func TestFig1SequenceShape(t *testing.T) {
	seq := Fig1Sequence(randx.New(1))
	if len(seq) != Fig1Len {
		t.Fatalf("length %d, want %d", len(seq), Fig1Len)
	}
	for i, b := range seq {
		if b.Len() < 280 || b.Len() > 320 {
			t.Errorf("bag %d has %d points, want ~300", i, b.Len())
		}
		if b.Dim() != 1 {
			t.Fatalf("bag %d dim %d", i, b.Dim())
		}
	}
}

func TestFig1SampleMeanIsUninformative(t *testing.T) {
	// The crux of Fig. 1: each regime is symmetric about 0, so the
	// per-bag sample means stay near 0 in ALL regimes.
	seq := Fig1Sequence(randx.New(2))
	for i, b := range seq {
		m := b.Mean()[0]
		if math.Abs(m) > 1.2 {
			t.Errorf("bag %d mean = %g, should be ≈0", i, m)
		}
	}
}

func TestFig1RegimesDifferInSpread(t *testing.T) {
	// The distributions DO change: regime variances grow with each
	// change (1 → 16+1 → ~33).
	seq := Fig1Sequence(randx.New(3))
	variance := func(i int) float64 {
		vals := seq[i].Scalars()
		m := vec.Mean(vals)
		s := 0.0
		for _, v := range vals {
			s += (v - m) * (v - m)
		}
		return s / float64(len(vals))
	}
	v1 := variance(25)
	v2 := variance(75)
	v3 := variance(125)
	if !(v1 < v2 && v2 < v3) {
		t.Errorf("regime variances not increasing: %g, %g, %g", v1, v2, v3)
	}
	if math.Abs(v1-1) > 0.4 {
		t.Errorf("regime 1 variance = %g, want ≈1", v1)
	}
	if math.Abs(v2-17) > 4 {
		t.Errorf("regime 2 variance = %g, want ≈17", v2)
	}
}

func TestSection51Shapes(t *testing.T) {
	for _, d := range AllSection51() {
		seq, err := d.Generate(randx.New(4))
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if len(seq) != Section51Len {
			t.Fatalf("%v: length %d", d, len(seq))
		}
		if err := seq.Validate(); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		total := 0
		for _, b := range seq {
			if b.Dim() != 2 {
				t.Fatalf("%v: dim %d", d, b.Dim())
			}
			total += b.Len()
		}
		// n_t ~ Poisson(50): mean bag size near 50.
		avg := float64(total) / Section51Len
		if avg < 35 || avg > 65 {
			t.Errorf("%v: mean bag size %g, want ≈50", d, avg)
		}
	}
}

func TestSection51Changes(t *testing.T) {
	wants := map[Section51Dataset][]int{
		LargeVariance: nil,
		HeavyNoise:    nil,
		CircularDrift: nil,
		MeanJump:      {10},
		SpeedUp:       {10},
	}
	for d, want := range wants {
		got := d.Changes()
		if len(got) != len(want) {
			t.Errorf("%v: changes = %v, want %v", d, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: changes = %v, want %v", d, got, want)
			}
		}
	}
}

func TestSection51InvalidID(t *testing.T) {
	if _, err := Section51Dataset(0).Generate(randx.New(1)); err == nil {
		t.Error("dataset 0 accepted")
	}
	if _, err := Section51Dataset(9).Generate(randx.New(1)); err == nil {
		t.Error("dataset 9 accepted")
	}
}

func TestMeanJumpActuallyJumps(t *testing.T) {
	seq, err := MeanJump.Generate(randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	before := 0.0
	after := 0.0
	for t2 := 0; t2 < 10; t2++ {
		before += seq[t2].Mean()[0]
	}
	for t2 := 10; t2 < 20; t2++ {
		after += seq[t2].Mean()[0]
	}
	before /= 10
	after /= 10
	if math.Abs(before-3) > 1 {
		t.Errorf("pre-change mean x = %g, want ≈3", before)
	}
	if math.Abs(after+3) > 1 {
		t.Errorf("post-change mean x = %g, want ≈-3", after)
	}
}

func TestLargeVarianceIsStationary(t *testing.T) {
	seq, err := LargeVariance.Generate(randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// Bag means fluctuate but centre on 0 with sd ≈ 15/√50 ≈ 2.1.
	for i, b := range seq {
		m := b.Mean()
		if math.Hypot(m[0], m[1]) > 10 {
			t.Errorf("bag %d mean %v too far from origin", i, m)
		}
	}
}

func TestCircularDriftMovesOnCircle(t *testing.T) {
	seq, err := CircularDrift.Generate(randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// Bag means should sit near radius √3 with drifting angle.
	for i, b := range seq {
		m := b.Mean()
		r := math.Hypot(m[0], m[1])
		if math.Abs(r-math.Sqrt(3)) > 1 {
			t.Errorf("bag %d mean radius %g, want ≈√3", i, r)
		}
	}
	// Consecutive means must actually move.
	moved := 0.0
	for i := 1; i < len(seq); i++ {
		moved += vec.Dist2(seq[i].Mean(), seq[i-1].Mean())
	}
	if moved < 3 {
		t.Errorf("total drift %g too small", moved)
	}
}

func TestSpeedUpRadiusGrows(t *testing.T) {
	seq, err := SpeedUp.Generate(randx.New(8))
	if err != nil {
		t.Fatal(err)
	}
	rBefore, rAfter := 0.0, 0.0
	for t2 := 0; t2 < 10; t2++ {
		m := seq[t2].Mean()
		rBefore += math.Hypot(m[0], m[1])
	}
	for t2 := 10; t2 < 20; t2++ {
		m := seq[t2].Mean()
		rAfter += math.Hypot(m[0], m[1])
	}
	rBefore /= 10
	rAfter /= 10
	if math.Abs(rBefore-math.Sqrt(3)) > 0.5 {
		t.Errorf("pre-change radius %g, want ≈√3", rBefore)
	}
	if math.Abs(rAfter-3) > 0.5 {
		t.Errorf("post-change radius %g, want ≈3", rAfter)
	}
}

func TestDatasetStrings(t *testing.T) {
	for _, d := range AllSection51() {
		if d.String() == "" {
			t.Error("empty dataset name")
		}
	}
	if Section51Dataset(42).String() == "" {
		t.Error("unknown dataset should still render")
	}
}

func TestGMM1D(t *testing.T) {
	g := GMM1D{Mu: []float64{-5, 5}, Sigma: []float64{0.1, 0.1}, Pi: []float64{1, 1}}
	rng := randx.New(9)
	b := g.Bag(rng, 3, 1000)
	if b.T != 3 || b.Len() != 1000 {
		t.Fatalf("bag shape %d/%d", b.T, b.Len())
	}
	neg, pos := 0, 0
	for _, v := range b.Scalars() {
		if v < 0 {
			neg++
		} else {
			pos++
		}
	}
	if neg < 400 || pos < 400 {
		t.Errorf("mixture imbalance: %d/%d", neg, pos)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := Fig1Sequence(randx.New(10))
	b := Fig1Sequence(randx.New(10))
	for i := range a {
		if a[i].Len() != b[i].Len() {
			t.Fatal("lengths differ")
		}
		for j := range a[i].Points {
			if a[i].Points[j][0] != b[i].Points[j][0] {
				t.Fatal("values differ")
			}
		}
	}
}
