package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/signature"
)

// PairwiseScaleOptions sizes the tiled/sharded pairwise-EMD
// demonstration. The corpus is a pure function of (seed, options), so
// independent shard PROCESSES given the same seed and options compute
// partials of the same matrix — that is what makes the
// `repro -exp pairwise -shard i/k` → `-merge` flow work.
type PairwiseScaleOptions struct {
	// N is the number of bags in the corpus (default 192).
	N int
	// PointsPerBag is the number of 2-D points per bag (default 40).
	PointsPerBag int
	// Bins is the per-dimension grid resolution of the signature builder
	// (default 6; the grid builder is deterministic, so the flat and
	// tiled paths see identical signatures).
	Bins int
	// TileSize is the tile edge (default 0 → core.DefaultTileSize).
	TileSize int
	// Workers bounds the tile workers (default 0 → GOMAXPROCS).
	Workers int
}

func (o PairwiseScaleOptions) withDefaults() PairwiseScaleOptions {
	if o.N <= 0 {
		o.N = 192
	}
	if o.PointsPerBag <= 0 {
		o.PointsPerBag = 40
	}
	if o.Bins <= 0 {
		o.Bins = 6
	}
	return o
}

// pairwiseCorpus generates the demo corpus: N bags of 2-D Gaussian
// points whose mean walks through four regimes (so the matrix has the
// block structure of Fig. 6 at corpus scale). Deterministic in seed.
func pairwiseCorpus(seed int64, opts PairwiseScaleOptions) bag.Sequence {
	rng := randx.New(randx.SplitSeed(seed, 7001))
	seq := make(bag.Sequence, opts.N)
	for t := 0; t < opts.N; t++ {
		regime := 4 * t / opts.N
		mu := []float64{float64(regime%2) * 3, float64(regime/2) * 3}
		pts := make([][]float64, opts.PointsPerBag)
		for i := range pts {
			pts[i] = []float64{rng.Normal(mu[0], 1), rng.Normal(mu[1], 1)}
		}
		seq[t] = bag.New(t, pts)
	}
	return seq
}

func pairwiseBuilderOpts(opts PairwiseScaleOptions) []core.PairwiseOpt {
	factory := signature.GridFactory([]float64{-4, -4}, []float64{7, 7}, opts.Bins)
	return []core.PairwiseOpt{
		core.WithPairBuilderFactory(factory, 0),
		core.WithTileSize(opts.TileSize),
	}
}

// PairwiseShardPartial computes shard `shard` of `shards` of the demo
// corpus matrix — the per-process half of the two-process → merge flow
// behind `repro -exp pairwise -shard i/k`.
func PairwiseShardPartial(seed int64, opts PairwiseScaleOptions, shard, shards int) (*core.PartialMatrix, error) {
	opts = opts.withDefaults()
	seq := pairwiseCorpus(seed, opts)
	o := append(pairwiseBuilderOpts(opts),
		core.WithPairWorkers(opts.Workers),
		core.WithShard(shard, shards),
	)
	return core.PairwiseShard(seq, o...)
}

// PairwiseMergeReport merges shard partials (typically read back from
// the JSON the -shard runs emitted), verifies the result against an
// in-process single-machine computation of the same corpus, and renders
// a report. The verification recomputes the full matrix, which is
// exactly what a production collector would NOT do — it is here to make
// the demo self-checking.
func PairwiseMergeReport(seed int64, opts PairwiseScaleOptions, parts []*core.PartialMatrix) (string, error) {
	opts = opts.withDefaults()
	merged, err := core.MergePairwise(parts...)
	if err != nil {
		return "", err
	}
	seq := pairwiseCorpus(seed, opts)
	full, err := core.Pairwise(seq, append(pairwiseBuilderOpts(opts), core.WithPairWorkers(opts.Workers))...)
	if err != nil {
		return "", err
	}
	identical := matricesIdentical(merged, full)

	var b strings.Builder
	b.WriteString(header("Sharded pairwise EMD — merge report"))
	fmt.Fprintf(&b, "merged %d partial(s) into a %d×%d matrix (tile size %d)\n",
		len(parts), merged.N(), merged.N(), parts[0].TileSize)
	for i, p := range parts {
		fmt.Fprintf(&b, "  partial %d: shard %d/%d, %d tiles\n", i, p.ShardIndex, p.ShardCount, len(p.TileIDs))
	}
	fmt.Fprintf(&b, "bit-identical to single-process matrix: %v\n", identical)
	mean, maxD := matrixStats(merged)
	fmt.Fprintf(&b, "mean off-diagonal EMD %.4f, max %.4f\n", mean, maxD)
	if !identical {
		return b.String(), fmt.Errorf("experiments: merged matrix differs from the single-process matrix")
	}
	return b.String(), nil
}

func matricesIdentical(a, b *core.PairwiseMatrix) bool {
	if a.N() != b.N() {
		return false
	}
	da, db := a.Data(), b.Data()
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

func matrixStats(m *core.PairwiseMatrix) (mean, max float64) {
	n := m.N()
	if n < 2 {
		return 0, 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := m.At(i, j)
			sum += d
			max = math.Max(max, d)
		}
	}
	return sum / float64(n*(n-1)/2), max
}

// PairwiseScaleResult carries the rendered report plus headline numbers
// for programmatic checks.
type PairwiseScaleResult struct {
	Report string
	// SecondsSequential and SecondsParallel time the tiled matrix with
	// one worker vs. the full worker group.
	SecondsSequential float64
	SecondsParallel   float64
	// BitIdentical reports that worker count did not change a single bit.
	BitIdentical bool
	// ShardMergeIdentical reports that a 2-shard compute → MergePairwise
	// run reproduced the single-process matrix exactly.
	ShardMergeIdentical bool
}

// PairwiseScale exercises the tiled pairwise engine the way the
// ROADMAP's "sharded PairwiseEMD for n ≫ 10³" item intends: an N-bag
// corpus is reduced to its full dissimilarity matrix once with one
// worker and once with the full worker group (bit-identity check,
// throughput comparison), and then recomputed as two shard partials that
// are merged — the same flow that `repro -exp pairwise -shard 0/2`,
// `-shard 1/2` and `-merge` run as separate processes.
func PairwiseScale(seed int64, opts PairwiseScaleOptions) (*PairwiseScaleResult, error) {
	opts = opts.withDefaults()
	seq := pairwiseCorpus(seed, opts)
	base := pairwiseBuilderOpts(opts)

	run := func(workers int) (*core.PairwiseMatrix, float64, error) {
		start := time.Now()
		m, err := core.Pairwise(seq, append(base, core.WithPairWorkers(workers))...)
		return m, time.Since(start).Seconds(), err
	}
	seqMat, seqSecs, err := run(1)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parMat, parSecs, err := run(workers)
	if err != nil {
		return nil, err
	}
	identical := matricesIdentical(seqMat, parMat)

	// Two shards in-process, then merge: the single-machine rehearsal of
	// the multi-host flow.
	var parts []*core.PartialMatrix
	for s := 0; s < 2; s++ {
		p, err := core.PairwiseShard(seq, append(base, core.WithShard(s, 2))...)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	merged, err := core.MergePairwise(parts...)
	if err != nil {
		return nil, err
	}
	shardIdentical := matricesIdentical(merged, parMat)

	pairs := opts.N * (opts.N - 1) / 2
	var b strings.Builder
	b.WriteString(header("Pairwise EMD at corpus scale — tiled + sharded"))
	fmt.Fprintf(&b, "corpus: %d bags × %d points, grid %d² signatures, %d pairs, tile size %d\n",
		opts.N, opts.PointsPerBag, opts.Bins, pairs, parts[0].TileSize)
	fmt.Fprintf(&b, "  tiled, 1 worker:      %8.3fs  (%8.0f pairs/s)\n", seqSecs, float64(pairs)/seqSecs)
	fmt.Fprintf(&b, "  tiled, %2d workers:    %8.3fs  (%8.0f pairs/s, %.2fx)\n", workers, parSecs, float64(pairs)/parSecs, seqSecs/parSecs)
	fmt.Fprintf(&b, "  bit-identical across worker counts: %v\n", identical)
	fmt.Fprintf(&b, "  2-shard partials (%d + %d tiles) merge == single-process: %v\n",
		len(parts[0].TileIDs), len(parts[1].TileIDs), shardIdentical)
	mean, maxD := matrixStats(merged)
	fmt.Fprintf(&b, "  mean off-diagonal EMD %.4f, max %.4f\n", mean, maxD)
	b.WriteString("\nshard this across processes with:\n")
	b.WriteString("  repro -exp pairwise -shard 0/2 > p0.json\n")
	b.WriteString("  repro -exp pairwise -shard 1/2 > p1.json\n")
	b.WriteString("  repro -exp pairwise -merge p0.json,p1.json\n")

	return &PairwiseScaleResult{
		Report:              b.String(),
		SecondsSequential:   seqSecs,
		SecondsParallel:     parSecs,
		BitIdentical:        identical,
		ShardMergeIdentical: shardIdentical,
	}, nil
}
