package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mds"
	"repro/internal/plot"
	"repro/internal/randx"
	"repro/internal/synth"
)

// Fig6DatasetResult holds one row of Fig. 6: the EMD matrix between the
// 20 bags, their 2-D MDS embedding, and the score series with 95%
// bootstrap confidence intervals and alarms.
type Fig6DatasetResult struct {
	Dataset synth.Section51Dataset
	EMD     [][]float64
	MDS     [][]float64
	Points  []core.Point
	Alarms  []int
	Changes []int
	// MeanCIWidth is the average confidence-interval width, the
	// quantity the paper compares across datasets (wider on noisy or
	// drifting data).
	MeanCIWidth float64
	Metrics     eval.Metrics
}

// Fig6Result aggregates the five §5.1 datasets.
type Fig6Result struct {
	Datasets []Fig6DatasetResult
	Report   string
}

// fig6EMDMatrix computes one dataset's 20×20 dissimilarity matrix on the
// tiled pairwise engine. Signatures are built through the k-means
// FACTORY with per-bag split seeds — not the old stateful-builder path,
// where a single shared RNG threaded through every build and tied the
// matrix to sequential build order. The matrix is therefore a pure
// function of (seed, ds, seq): bit-identical for every workers value
// (0 selects GOMAXPROCS), which the experiments tests assert.
func fig6EMDMatrix(seq bag.Sequence, seed int64, ds synth.Section51Dataset, workers int) (*core.PairwiseMatrix, error) {
	return core.Pairwise(seq,
		core.WithPairBuilderFactory(kmeansFactory(8), randx.SplitSeed(seed, 100+int64(ds))),
		core.WithPairWorkers(workers),
	)
}

// Fig6 runs the five confidence-interval behaviour studies of §5.1
// (τ = τ′ = 5, 20 bags of ~Poisson(50) 2-D points each).
func Fig6(seed int64) (*Fig6Result, error) {
	rng := randx.New(seed)
	res := &Fig6Result{}
	for _, ds := range synth.AllSection51() {
		seq, err := ds.Generate(rng.Split(int64(ds)))
		if err != nil {
			return nil, err
		}
		builder := kmeansBuilder(8, rng.Split(100+int64(ds)))

		mat, err := fig6EMDMatrix(seq, seed, ds, 0)
		if err != nil {
			return nil, fmt.Errorf("fig6 %v EMD matrix: %w", ds, err)
		}
		emdMat := mat.Rows()
		coords, _, err := mds.Embed(emdMat, 2)
		if err != nil {
			return nil, fmt.Errorf("fig6 %v MDS: %w", ds, err)
		}

		cfg := detectorConfig(5, 5, builder, 1000, seed+int64(ds))
		points, err := core.Run(cfg, seq)
		if err != nil {
			return nil, fmt.Errorf("fig6 %v detector: %w", ds, err)
		}
		dr := Fig6DatasetResult{
			Dataset: ds,
			EMD:     emdMat,
			MDS:     coords,
			Points:  points,
			Alarms:  core.Alarms(points),
			Changes: ds.Changes(),
		}
		for _, p := range points {
			dr.MeanCIWidth += p.Interval.Width()
		}
		dr.MeanCIWidth /= float64(len(points))
		dr.Metrics = eval.Match(dr.Alarms, dr.Changes, 1, 3)
		res.Datasets = append(res.Datasets, dr)
	}
	res.Report = res.render()
	return res, nil
}

func (r *Fig6Result) render() string {
	var b strings.Builder
	b.WriteString(header("Figure 6 — confidence-interval behaviour on the five §5.1 datasets"))
	for _, dr := range r.Datasets {
		fmt.Fprintf(&b, "\n--- %v ---\n", dr.Dataset)
		b.WriteString(plot.Heatmap("EMD matrix (20×20 bags)", dr.EMD))
		b.WriteString(plot.Scatter("MDS embedding of the bags", dr.MDS, 48, 12))
		times, scores, lo, hi := seriesOf(dr.Points)
		b.WriteString(plot.Series("scoreKL with 95% bootstrap CI", scores, lo, hi,
			offsetsToIndex(times, dr.Alarms), offsetsToIndex(times, dr.Changes), 10))
		fmt.Fprintf(&b, "alarms at %v (true changes %v)   mean CI width %.3f\n",
			dr.Alarms, dr.Changes, dr.MeanCIWidth)
		fmt.Fprintf(&b, "metrics: %v\n", dr.Metrics)
	}
	b.WriteString("\npaper's claims: no alarms on datasets 1-3; an alarm at the dataset-4\n")
	b.WriteString("jump; dataset 5's change is missed; CI widths are larger for the\n")
	b.WriteString("noisy/unstationary datasets 2, 3 and 5 than for 1 and 4.\n")
	return b.String()
}
