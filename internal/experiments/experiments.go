// Package experiments contains the driver for every table and figure of
// the paper's evaluation (§5). Each driver generates its workload from a
// seed, runs the detector (and baselines where the figure calls for
// them), computes quantitative detection metrics against ground truth,
// and renders a plain-text report. cmd/repro prints the reports;
// bench_test.go times the same drivers; EXPERIMENTS.md records their
// output.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/signature"
)

// histogramBuilderFor constructs a histogram signature builder spanning
// the observed range of a 1-D bag sequence (slightly padded so late
// observations near the extremes do not pile into the clamp bins).
func histogramBuilderFor(seq bag.Sequence, bins int) (signature.Builder, error) {
	lo, hi := seq.Bounds()
	if lo == nil {
		return nil, fmt.Errorf("experiments: sequence has no points")
	}
	span := hi[0] - lo[0]
	if span <= 0 {
		span = 1
	}
	pad := 0.05 * span
	return signature.NewHistogramBuilder(lo[0]-pad, hi[0]+pad, bins), nil
}

// detectorConfig assembles the standard §5 configuration: scoreKL,
// uniform weights, Bayesian bootstrap with T replicates at 95%.
func detectorConfig(tau, tauPrime int, b signature.Builder, replicates int, seed int64) core.Config {
	return core.Config{
		Tau:       tau,
		TauPrime:  tauPrime,
		Score:     core.ScoreKL,
		Builder:   b,
		Bootstrap: bootstrap.Config{Replicates: replicates, Alpha: 0.05},
		Seed:      seed,
	}
}

// kmeansBuilder builds the k-means signature builder used for
// multi-dimensional bags.
func kmeansBuilder(k int, rng *randx.RNG) signature.Builder {
	return signature.NewKMeansBuilder(k, cluster.Config{MaxIters: 25}, rng)
}

// kmeansFactory is the stream-safe counterpart of kmeansBuilder: drivers
// that build signatures in parallel (the tiled pairwise matrix) take a
// factory so every bag gets its own split-seeded builder.
func kmeansFactory(k int) signature.BuilderFactory {
	return signature.KMeansFactory(k, cluster.Config{MaxIters: 25})
}

// seriesOf extracts aligned slices (times, scores, CI bounds) from
// detector output for plotting and evaluation.
func seriesOf(points []core.Point) (times []int, scores, lo, hi []float64) {
	for _, p := range points {
		times = append(times, p.T)
		scores = append(scores, p.Score)
		lo = append(lo, p.Interval.Lo)
		hi = append(hi, p.Interval.Up)
	}
	return times, scores, lo, hi
}

// offsetsToIndex maps absolute alarm/change times to indices relative to
// the first inspected time, for plotting on a score-series axis.
func offsetsToIndex(times []int, marks []int) []int {
	if len(times) == 0 {
		return nil
	}
	first := times[0]
	var out []int
	for _, m := range marks {
		idx := m - first
		if idx >= 0 && idx < len(times) {
			out = append(out, idx)
		}
	}
	return out
}

// section header helper for reports.
func header(title string) string {
	bar := strings.Repeat("=", len(title))
	return fmt.Sprintf("%s\n%s\n", title, bar)
}
