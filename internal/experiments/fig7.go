package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/pamap"
	"repro/internal/plot"
	"repro/internal/randx"
)

// Table1Report renders the paper's Table 1 (activities and their IDs).
func Table1Report() string {
	var b strings.Builder
	b.WriteString(header("Table 1 — Activities and their IDs (PAMAP protocol)"))
	acts := pamap.Table1()
	half := (len(acts) + 1) / 2
	fmt.Fprintf(&b, "%-22s %-4s   %-22s %-4s\n", "Activity", "ID", "Activity", "ID")
	for i := 0; i < half; i++ {
		left := acts[i]
		right := ""
		rightID := ""
		if i+half < len(acts) {
			right = acts[i+half].Name()
			rightID = fmt.Sprintf("%d", int(acts[i+half]))
		}
		fmt.Fprintf(&b, "%-22s %-4d   %-22s %-4s\n", left.Name(), int(left), right, rightID)
	}
	return b.String()
}

// Fig7SubjectResult is one panel of Fig. 7.
type Fig7SubjectResult struct {
	Subject int
	Points  []core.Point
	Alarms  []int
	Changes []int
	Metrics eval.Metrics
}

// Fig7Result aggregates the three subjects shown in the paper.
type Fig7Result struct {
	Subjects []Fig7SubjectResult
	Report   string
}

// Fig7Options scales the experiment for benchmarking; the zero value
// reproduces the paper setting (3 subjects, full protocol, T=500).
type Fig7Options struct {
	Subjects   int
	Replicates int
	// MeanRecordsPerBag overrides the ≈948 records per bag.
	MeanRecordsPerBag int
	// MeanBagsPerActivity overrides the ≈18 bags per activity segment.
	MeanBagsPerActivity int
}

func (o Fig7Options) withDefaults() Fig7Options {
	if o.Subjects <= 0 {
		o.Subjects = 3
	}
	if o.Replicates <= 0 {
		o.Replicates = 500
	}
	return o
}

// Fig7 runs the PAMAP activity-transition experiment (§5.2): 10-second
// bags of 4-channel sensor records, τ = τ′ = 5, k-means signatures.
func Fig7(seed int64, opts Fig7Options) (*Fig7Result, error) {
	opts = opts.withDefaults()
	rng := randx.New(seed)
	res := &Fig7Result{}
	for subj := 0; subj < opts.Subjects; subj++ {
		rec := pamap.Generate(pamap.Config{
			Subject:             subj,
			MeanRecordsPerBag:   opts.MeanRecordsPerBag,
			MeanBagsPerActivity: opts.MeanBagsPerActivity,
		}, rng.Split(int64(subj)))

		builder := kmeansBuilder(8, rng.Split(1000+int64(subj)))
		cfg := detectorConfig(5, 5, builder, opts.Replicates, seed+int64(subj))
		points, err := core.Run(cfg, rec.Bags)
		if err != nil {
			return nil, fmt.Errorf("fig7 subject %d: %w", subj, err)
		}
		sr := Fig7SubjectResult{
			Subject: subj,
			Points:  points,
			Alarms:  core.Alarms(points),
			Changes: rec.Changes,
		}
		// The paper reports "plausible accuracy": alarms within a few
		// bags of a transition count as hits (±5 bags ≈ ±50 s).
		sr.Metrics = eval.Match(sr.Alarms, sr.Changes, 2, 5)
		res.Subjects = append(res.Subjects, sr)
	}
	res.Report = res.render()
	return res, nil
}

func (r *Fig7Result) render() string {
	var b strings.Builder
	b.WriteString(header("Figure 7 — PAMAP activity transitions (simulated subjects)"))
	for _, sr := range r.Subjects {
		fmt.Fprintf(&b, "\n--- Subject %d ---\n", sr.Subject+1)
		times, scores, lo, hi := seriesOf(sr.Points)
		b.WriteString(plot.Series("scoreKL with 95% CI (':' = activity change, 'X' = alarm)",
			scores, lo, hi,
			offsetsToIndex(times, sr.Alarms), offsetsToIndex(times, sr.Changes), 10))
		fmt.Fprintf(&b, "activity changes: %v\n", sr.Changes)
		fmt.Fprintf(&b, "alarms:           %v\n", sr.Alarms)
		fmt.Fprintf(&b, "metrics: %v\n", sr.Metrics)
	}
	b.WriteString("\npaper's claims: transitions are detected with plausible accuracy;\n")
	b.WriteString("not every transition raises an alarm, but scores rise at changes and\n")
	b.WriteString("rapid score oscillation does not trigger false alarms.\n")
	return b.String()
}
