package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/emd"
	"repro/internal/randx"
	"repro/internal/signature"
)

// SolverScaleOptions sizes the large-signature solver study.
type SolverScaleOptions struct {
	// Ks are the signature sizes to sweep (default 32, 64, 128, 256).
	Ks []int
	// Dim is the center dimensionality (default 2).
	Dim int
	// Pairs is the number of random signature pairs timed per K
	// (default 4).
	Pairs int
}

func (o *SolverScaleOptions) defaults() {
	if len(o.Ks) == 0 {
		o.Ks = []int{32, 64, 128, 256}
	}
	if o.Dim <= 0 {
		o.Dim = 2
	}
	if o.Pairs <= 0 {
		o.Pairs = 4
	}
}

// SolverScaleRow is one K of the study: mean per-distance time for the
// classic full-refill solver and the block-pricing solver, their pivot
// and refill-row counts, and the largest relative cost disagreement
// observed (must sit inside the 1e-9 conformance envelope).
type SolverScaleRow struct {
	K              int
	ClassicPerOp   time.Duration
	LargePerOp     time.Duration
	CachedPerOp    time.Duration // warm re-solve with a ground-cost cache
	Speedup        float64
	CachedSpeedup  float64 // uncached path time / cached warm re-solve time
	ClassicPivots  int
	LargePivots    int
	ClassicRefills int // refill rows scanned (each prices ~K cells)
	LargeRefills   int
	// Cost-amortization counters: ground evaluations performed by the
	// uncached solves vs the cached warm re-solves (the latter must be
	// zero — every cell is served from the cache), cache cells served,
	// and large-path pivots fed from the retained candidate queues.
	UncachedGroundEvals int
	CachedGroundEvals   int
	CacheHits           int
	CandReuse           int
	MaxRelDiff          float64
}

// SolverScaleResult is the report of the solver-scaling experiment.
type SolverScaleResult struct {
	Rows   []SolverScaleRow
	Report string
}

// SolverScale measures the block-pricing large-signature EMD path
// against the classic full-refill solver on identical random signature
// pairs, verifying on every pair that the two optimal costs agree
// within 1e-9. It is the `repro -exp solverscale` driver: the numbers
// demonstrate where the DefaultLargeThreshold crossover sits on the
// running machine and that the conformance contract holds at scale.
func SolverScale(seed int64, opts SolverScaleOptions) (*SolverScaleResult, error) {
	opts.defaults()
	rng := randx.New(seed)
	res := &SolverScaleResult{}

	classic := emd.NewSolver(emd.WithLargeThreshold(-1))
	large := emd.NewSolver()
	cached := emd.NewSolver() // default dispatch + ground-cost cache

	for _, k := range opts.Ks {
		row := SolverScaleRow{K: k}
		var classicTotal, largeTotal, cachedTotal time.Duration
		for p := 0; p < opts.Pairs; p++ {
			s := solverScaleSig(rng, k, opts.Dim)
			u := solverScaleSig(rng, k, opts.Dim)

			start := time.Now()
			cv, err := classic.Distance(s, u, emd.Euclidean)
			if err != nil {
				return nil, fmt.Errorf("solverscale: classic K=%d: %w", k, err)
			}
			classicTotal += time.Since(start)
			cs := classic.Stats()
			row.ClassicPivots += cs.Pivots
			row.ClassicRefills += cs.RefillRows
			row.UncachedGroundEvals += cs.GroundEvals

			start = time.Now()
			lv, err := large.DistanceLarge(s, u, emd.Euclidean)
			if err != nil {
				return nil, fmt.Errorf("solverscale: block-pricing K=%d: %w", k, err)
			}
			largeTotal += time.Since(start)
			ls := large.Stats()
			row.LargePivots += ls.Pivots
			row.LargeRefills += ls.RefillRows
			row.UncachedGroundEvals += ls.GroundEvals
			row.CandReuse += ls.CandReuse

			// Cached column: prime the cache with one solve of the pair,
			// then time the warm re-solve — the repeat-heavy shape of the
			// detector window and the pairwise tiles. The warm value must
			// be bit-identical to the uncached path the solver's dispatch
			// selects (classic below the threshold, block-pricing at or
			// above), and must perform zero ground evaluations.
			if _, err := cached.DistanceCached(s, u, emd.Euclidean); err != nil {
				return nil, fmt.Errorf("solverscale: cache prime K=%d: %w", k, err)
			}
			start = time.Now()
			wv, err := cached.DistanceCached(s, u, emd.Euclidean)
			if err != nil {
				return nil, fmt.Errorf("solverscale: cached K=%d: %w", k, err)
			}
			cachedTotal += time.Since(start)
			ws := cached.Stats()
			row.CachedGroundEvals += ws.GroundEvals
			row.CacheHits += ws.CacheHits
			want := cv
			if k >= emd.DefaultLargeThreshold {
				want = lv
			}
			if wv != want {
				return nil, fmt.Errorf("solverscale: K=%d pair %d: cached %.17g != uncached %.17g (cache must be bit-transparent)", k, p, wv, want)
			}
			if ws.GroundEvals != 0 {
				return nil, fmt.Errorf("solverscale: K=%d pair %d: warm cached re-solve performed %d ground evals, want 0", k, p, ws.GroundEvals)
			}

			rel := math.Abs(cv-lv) / (1 + math.Abs(cv))
			if rel > row.MaxRelDiff {
				row.MaxRelDiff = rel
			}
			if rel > 1e-9 {
				return nil, fmt.Errorf("solverscale: K=%d pair %d: classic %.17g vs block-pricing %.17g (rel %.3g > 1e-9)", k, p, cv, lv, rel)
			}
		}
		row.ClassicPerOp = classicTotal / time.Duration(opts.Pairs)
		row.LargePerOp = largeTotal / time.Duration(opts.Pairs)
		row.CachedPerOp = cachedTotal / time.Duration(opts.Pairs)
		if row.LargePerOp > 0 {
			row.Speedup = float64(row.ClassicPerOp) / float64(row.LargePerOp)
		}
		uncachedPerOp := row.ClassicPerOp
		if k >= emd.DefaultLargeThreshold {
			uncachedPerOp = row.LargePerOp
		}
		if row.CachedPerOp > 0 {
			row.CachedSpeedup = float64(uncachedPerOp) / float64(row.CachedPerOp)
		}
		res.Rows = append(res.Rows, row)
	}

	var b strings.Builder
	b.WriteString(header("Solver scaling: classic full-refill vs block-pricing EMD simplex"))
	fmt.Fprintf(&b, "\n%d pairs per K, %d-D centers, auto threshold %d (repro.WithEMDLargeThreshold overrides)\n\n",
		opts.Pairs, opts.Dim, emd.DefaultLargeThreshold)
	fmt.Fprintf(&b, "%6s  %14s  %14s  %8s  %18s  %22s  %10s\n",
		"K", "classic/op", "block/op", "speedup", "pivots (c->b)", "refill rows (c->b)", "max rel Δ")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%6d  %14s  %14s  %7.2fx  %8d -> %7d  %10d -> %9d  %10.2g\n",
			r.K, r.ClassicPerOp.Round(time.Microsecond), r.LargePerOp.Round(time.Microsecond),
			r.Speedup, r.ClassicPivots, r.LargePivots, r.ClassicRefills, r.LargeRefills, r.MaxRelDiff)
	}
	b.WriteString("\nCost amortization (warm re-solve of each pair with a ground-cost cache,\n")
	b.WriteString("vs the uncached path the solver's dispatch selects for that K):\n\n")
	fmt.Fprintf(&b, "%6s  %14s  %8s  %14s  %12s  %12s  %10s\n",
		"K", "cached/op", "speedup", "ground evals", "cached evals", "cache hits", "queue hits")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%6d  %14s  %7.2fx  %14d  %12d  %12d  %10d\n",
			r.K, r.CachedPerOp.Round(time.Microsecond), r.CachedSpeedup,
			r.UncachedGroundEvals, r.CachedGroundEvals, r.CacheHits, r.CandReuse)
	}
	b.WriteString("\nEvery pair's optimal cost agreed within 1e-9, every warm cached\n")
	b.WriteString("re-solve was bit-identical to its uncached path with zero ground\n")
	b.WriteString("evaluations; the conformance suite (FuzzSolverDistance, exhaustive\n")
	b.WriteString("small-instance enumeration, golden detector trace) pins the same\n")
	b.WriteString("contract in CI.\n")
	res.Report = b.String()
	return res, nil
}

// solverScaleSig draws one normalized K-center signature.
func solverScaleSig(rng *randx.RNG, k, dim int) signature.Signature {
	s := signature.Signature{Weights: make([]float64, k)}
	total := 0.0
	for i := 0; i < k; i++ {
		s.Centers = append(s.Centers, rng.NormalVec(dim, 0, 3))
		s.Weights[i] = rng.Gamma(1, 1) + 0.01
		total += s.Weights[i]
	}
	for i := range s.Weights {
		s.Weights[i] /= total
	}
	return s
}
