package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/randx"
	"repro/internal/signature"
)

// DistProfileOptions sizes the offline distance-profile segmentation
// demo. The corpus is the same two-change synthetic workload the golden
// detector trace freezes (1-D Gaussian bags, mean 0→3→1), scaled by N:
// the changes sit at 30% and 65% of the horizon.
type DistProfileOptions struct {
	// N is the number of bags (default 200, the golden-trace horizon).
	N int
	// PointsPerBag is the bag size (default 120).
	PointsPerBag int
	// Replicates is the permutation-replicate count behind each split's
	// p-value (default 199).
	Replicates int
	// Tolerance is how far (in bags) a detected change may sit from a
	// planted one and still count as recovered (default 5).
	Tolerance int
}

func (o DistProfileOptions) withDefaults() DistProfileOptions {
	if o.N <= 0 {
		o.N = 200
	}
	if o.PointsPerBag <= 0 {
		o.PointsPerBag = 120
	}
	if o.Replicates <= 0 {
		o.Replicates = 199
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 5
	}
	return o
}

// distProfileCorpus generates the two-change corpus: 1-D Gaussian bags
// with mean shifts 0→3 at 30% and 3→1 at 65% of the horizon (t=60 and
// t=130 at the default N=200 — the golden trace's workload, regenerated
// from the experiment seed). Returns the sequence and the planted
// change times.
func distProfileCorpus(seed int64, opts DistProfileOptions) (bag.Sequence, []int) {
	c1, c2 := 3*opts.N/10, 13*opts.N/20
	rng := randx.New(randx.SplitSeed(seed, 8101))
	seq := make(bag.Sequence, opts.N)
	for t := range seq {
		mu := 0.0
		switch {
		case t >= c2:
			mu = 1
		case t >= c1:
			mu = 3
		}
		vals := make([]float64, opts.PointsPerBag)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		seq[t] = bag.FromScalars(t, vals)
	}
	return seq, []int{c1, c2}
}

// DistProfileResult carries the rendered report plus the headline
// outcome for programmatic checks.
type DistProfileResult struct {
	Report string
	// Planted are the true change times of the corpus.
	Planted []int
	// Detected are the change times DistProfile returned, in time order.
	Detected []int
	// Recovered reports that every planted change has a detected change
	// within Tolerance AND no spurious extra changes were reported.
	Recovered bool
}

// DistProfileExperiment demonstrates offline multi-change-point
// segmentation on top of the pairwise engine: the two-change corpus is
// reduced to its full pairwise EMD matrix (the Fig. 6 artifact), and
// eval.DistProfile recovers both planted changes from the matrix alone —
// no window lengths, no alarm threshold, significance from a permutation
// bootstrap. This is the retrospective complement to the streaming
// detector: one matrix, every change point, each with a p-value.
func DistProfileExperiment(seed int64, opts DistProfileOptions) (*DistProfileResult, error) {
	opts = opts.withDefaults()
	seq, planted := distProfileCorpus(seed, opts)

	m, err := core.Pairwise(seq,
		core.WithPairBuilderFactory(signature.HistogramFactory(-4, 7, 40), 0),
	)
	if err != nil {
		return nil, err
	}

	points, err := eval.DistProfile(m, eval.DistProfileConfig{
		Replicates: opts.Replicates,
		Seed:       randx.SplitSeed(seed, 8102),
	})
	if err != nil {
		return nil, err
	}
	detected := eval.ChangeTimes(points)

	recovered := len(detected) == len(planted)
	for _, c := range planted {
		hit := false
		for _, d := range detected {
			if d >= c-opts.Tolerance && d <= c+opts.Tolerance {
				hit = true
				break
			}
		}
		recovered = recovered && hit
	}

	var b strings.Builder
	b.WriteString(header("Distance-profile segmentation — offline multi-change-point detection"))
	fmt.Fprintf(&b, "corpus: %d bags × %d points, mean 0→3→1 with changes planted at t=%d and t=%d\n",
		opts.N, opts.PointsPerBag, planted[0], planted[1])
	fmt.Fprintf(&b, "input: %d×%d pairwise EMD matrix (histogram signatures); %d permutation replicates per split\n",
		m.N(), m.N(), opts.Replicates)
	fmt.Fprintf(&b, "detected %d change point(s), ranked by scan statistic:\n", len(points))
	for _, p := range points {
		fmt.Fprintf(&b, "  t=%-4d stat=%.6f  p=%.4f  (segment [%d,%d))\n", p.T, p.Stat, p.PValue, p.SegStart, p.SegEnd)
	}
	fmt.Fprintf(&b, "both planted changes recovered within ±%d bags, no extras: %v\n", opts.Tolerance, recovered)

	res := &DistProfileResult{Report: b.String(), Planted: planted, Detected: detected, Recovered: recovered}
	if !recovered {
		return res, fmt.Errorf("experiments: distance-profile segmentation missed a planted change (planted %v, detected %v)", planted, detected)
	}
	return res, nil
}
