package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/plot"
	"repro/internal/randx"
	"repro/internal/synth"
)

// Fig1Result reproduces the paper's motivating Fig. 1: the proposed
// method applied to the raw bag stream versus ChangeFinder [8] and
// KCD [9] applied to the per-bag sample-mean sequence.
type Fig1Result struct {
	// Points is the proposed detector's output on the bag stream.
	Points []core.Point
	// CFScores are ChangeFinder change scores on the mean sequence.
	CFScores []float64
	// KCDScores are kernel-change-detection scores on the mean sequence.
	KCDScores []float64
	// Changes are the true change indices (50 and 100).
	Changes []int
	// Proposed, CF, KCD are detection metrics with a ±5-step tolerance.
	Proposed, CF, KCD eval.Metrics
	// Report is the rendered text artifact.
	Report string
}

// Fig1 runs the experiment. tolerance is the alarm-to-change matching
// window in steps (the paper eyeballs the plots; we quantify with ±5).
func Fig1(seed int64) (*Fig1Result, error) {
	rng := randx.New(seed)
	seq := synth.Fig1Sequence(rng.Split(1))
	changes := synth.Fig1Changes

	// Proposed method on the raw bags.
	builder, err := histogramBuilderFor(seq, 40)
	if err != nil {
		return nil, err
	}
	cfg := detectorConfig(5, 5, builder, 500, seed)
	points, err := core.Run(cfg, seq)
	if err != nil {
		return nil, fmt.Errorf("fig1 proposed: %w", err)
	}

	// Baselines on the sample-mean sequence (this is the information
	// bottleneck Fig. 1(b) illustrates).
	means := seq.MeanSequence()
	cfScores, err := baseline.RunVectorChangeFinder(means, 2, 0.03, 5, 5)
	if err != nil {
		return nil, fmt.Errorf("fig1 ChangeFinder: %w", err)
	}
	sigma := baseline.MedianHeuristicSigma(means)
	kcdScores, err := baseline.RunKCD(means, baseline.KCDConfig{Window: 20, Nu: 0.2, Sigma: sigma})
	if err != nil {
		return nil, fmt.Errorf("fig1 KCD: %w", err)
	}

	res := &Fig1Result{
		Points:    points,
		CFScores:  cfScores,
		KCDScores: kcdScores,
		Changes:   changes,
	}

	const tol = 5
	res.Proposed = eval.Match(core.Alarms(points), changes, 1, tol)
	// Baselines have no adaptive threshold; grade them at their single
	// best fixed threshold (maximally charitable).
	allTimes := make([]int, len(means))
	for i := range allTimes {
		allTimes[i] = i
	}
	cfSweep := eval.SweepThreshold(cfScores, allTimes, changes, 1, tol, thresholdGrid(cfScores))
	res.CF, _ = eval.BestF1(cfSweep)
	kcdSweep := eval.SweepThreshold(kcdScores, allTimes, changes, 1, tol, thresholdGrid(kcdScores))
	res.KCD, _ = eval.BestF1(kcdSweep)

	res.Report = res.render()
	return res, nil
}

// thresholdGrid spans candidate thresholds between the score extremes.
func thresholdGrid(scores []float64) []float64 {
	lo, hi := scores[0], scores[0]
	for _, s := range scores {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([]float64, 30)
	for i := range grid {
		grid[i] = lo + (hi-lo)*float64(i+1)/31
	}
	return grid
}

func (r *Fig1Result) render() string {
	var b strings.Builder
	b.WriteString(header("Figure 1 — bags vs sample-mean baselines (changes at t=50, 100)"))
	times, scores, lo, hi := seriesOf(r.Points)
	b.WriteString(plot.Series("proposed (scoreKL on bags)", scores, lo, hi,
		offsetsToIndex(times, core.Alarms(r.Points)), offsetsToIndex(times, r.Changes), 10))
	b.WriteString(plot.Series("ChangeFinder on sample means", r.CFScores, nil, nil, nil, r.Changes, 8))
	b.WriteString(plot.Series("KCD on sample means", r.KCDScores, nil, nil, nil, r.Changes, 8))
	fmt.Fprintf(&b, "\nproposed (adaptive threshold):    %v\n", r.Proposed)
	fmt.Fprintf(&b, "ChangeFinder (best fixed thresh): %v\n", r.CF)
	fmt.Fprintf(&b, "KCD (best fixed threshold):       %v\n", r.KCD)
	b.WriteString("\npaper's claim: the mean sequence loses the mixture structure, so the\n")
	b.WriteString("baselines' scores are unrelated to the changes while the proposed\n")
	b.WriteString("method detects both.\n")
	return b.String()
}
