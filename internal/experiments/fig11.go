package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/enron"
	"repro/internal/eval"
	"repro/internal/plot"
	"repro/internal/randx"
)

// Fig11EventOutcome records, for one Fig. 11 event, whether our run
// flagged it alongside the paper's two ground-truth columns.
type Fig11EventOutcome struct {
	Event      enron.Event
	DetectedBy []bipartite.Feature // features with an alarm within the window
	Detected   bool
}

// Fig11Result is the Enron case study: per-feature alarm series over the
// ~100 weekly graphs and the event alignment table.
type Fig11Result struct {
	Weeks     int
	PerFeat   map[bipartite.Feature][]core.Point
	Outcomes  []Fig11EventOutcome
	AnyAlarms []int
	Metrics   eval.Metrics
	Report    string
}

// Fig11Options scales the simulation (employee count, bootstrap size).
type Fig11Options struct {
	Corpus     enron.Config
	Replicates int
	// ToleranceWeeks is the alarm↔event matching window (default 2,
	// i.e. an alarm within two weeks after the event counts — weekly
	// aggregation plus τ′=3 lag makes exact-week alignment unrealistic,
	// mirroring how the paper reads the figure).
	ToleranceWeeks int
}

func (o Fig11Options) withDefaults() Fig11Options {
	if o.Replicates <= 0 {
		o.Replicates = 500
	}
	if o.ToleranceWeeks <= 0 {
		o.ToleranceWeeks = 2
	}
	return o
}

// Fig11 runs the ENRON case study of §5.4: weekly sender→recipient
// graphs, the seven §5.3 features, reference window of five weeks and
// test window of three (τ=5, τ′=3 per the paper).
func Fig11(seed int64, opts Fig11Options) (*Fig11Result, error) {
	opts = opts.withDefaults()
	rng := randx.New(seed)
	corpus := enron.Generate(opts.Corpus, rng.Split(1))

	res := &Fig11Result{
		Weeks:   len(corpus.Graphs),
		PerFeat: map[bipartite.Feature][]core.Point{},
	}
	alarmWeeks := map[bipartite.Feature][]int{}
	for _, f := range bipartite.AllFeatures() {
		seq, err := bipartite.FeatureSequence(corpus.Graphs, f)
		if err != nil {
			return nil, fmt.Errorf("fig11 %v: %w", f, err)
		}
		builder, err := histogramBuilderFor(seq, 30)
		if err != nil {
			return nil, err
		}
		cfg := detectorConfig(5, 3, builder, opts.Replicates, seed+int64(f))
		points, err := core.Run(cfg, seq)
		if err != nil {
			return nil, fmt.Errorf("fig11 %v detector: %w", f, err)
		}
		res.PerFeat[f] = points
		alarmWeeks[f] = core.Alarms(points)
		res.AnyAlarms = append(res.AnyAlarms, alarmWeeks[f]...)
	}

	// Event alignment: an event counts as detected when any feature has
	// an alarm within [week−1, week+tolerance].
	for _, e := range corpus.Events {
		out := Fig11EventOutcome{Event: e}
		for _, f := range bipartite.AllFeatures() {
			for _, a := range alarmWeeks[f] {
				if a >= e.Week()-1 && a <= e.Week()+opts.ToleranceWeeks {
					out.DetectedBy = append(out.DetectedBy, f)
					break
				}
			}
		}
		out.Detected = len(out.DetectedBy) > 0
		res.Outcomes = append(res.Outcomes, out)
	}
	res.Metrics = eval.Match(dedupInts(res.AnyAlarms), enron.EventWeeks(), 1, opts.ToleranceWeeks)
	res.Report = res.render(corpus)
	return res, nil
}

func dedupInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func (r *Fig11Result) render(corpus *enron.Corpus) string {
	var b strings.Builder
	b.WriteString(header("Figure 11 — ENRON corpus (simulated), weekly bipartite graphs"))
	for _, f := range bipartite.AllFeatures() {
		points := r.PerFeat[f]
		times, scores, lo, hi := seriesOf(points)
		b.WriteString(plot.Series(fmt.Sprintf("feature %v", f), scores, lo, hi,
			offsetsToIndex(times, core.Alarms(points)),
			offsetsToIndex(times, enron.EventWeeks()), 6))
	}
	b.WriteString(plot.EventRaster("alarm/event alignment (any feature)", r.Weeks,
		dedupInts(r.AnyAlarms), enron.EventWeeks()))

	b.WriteString("\nEvent table (ours = this run; paper/GS = Fig. 11 ground-truth columns):\n")
	fmt.Fprintf(&b, "%-12s %-5s %-6s %-3s  %s\n", "date", "ours", "paper", "GS", "event")
	for _, o := range r.Outcomes {
		mark := func(v bool) string {
			if v {
				return "X"
			}
			return "-"
		}
		desc := o.Event.Description
		if len(desc) > 58 {
			desc = desc[:55] + "..."
		}
		fmt.Fprintf(&b, "%-12s %-5s %-6s %-3s  %s\n",
			o.Event.Date.Format("2006-01-02"), mark(o.Detected),
			mark(o.Event.DetectedByPaper), mark(o.Event.DetectedByGraphScope), desc)
	}
	fmt.Fprintf(&b, "\nany-feature alarm metrics vs the 17 events: %v\n", r.Metrics)
	b.WriteString("\npaper's claims: the change-point scores coincide with many of the\n")
	b.WriteString("events; all events detected by GraphScope [22] are detected, plus\n")
	b.WriteString("extras GraphScope missed.\n")
	return b.String()
}
