package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/randx"
	"repro/internal/signature"
)

// AblationResult holds the design-choice studies of DESIGN.md §5 that
// are not directly tied to a single paper figure: score type, window
// lengths, weighting, bootstrap size, and adaptive-vs-fixed thresholding.
type AblationResult struct {
	Rows   []AblationRow
	Report string
}

// AblationRow is one configuration's outcome on the shared workload.
type AblationRow struct {
	Study   string
	Variant string
	Metrics eval.Metrics
	// MeanCIWidth summarizes interval sharpness (NaN when not relevant).
	MeanCIWidth float64
}

// ablationWorkload builds a repeatable 1-D workload with three planted
// changes of decreasing magnitude plus a noisy stretch: large jump at 20,
// medium at 40, small at 60.
func ablationWorkload(seed int64) (bag.Sequence, []int) {
	rng := randx.New(seed)
	const n = 80
	changes := []int{20, 40, 60}
	mu := func(t int) float64 {
		switch {
		case t < 20:
			return 0
		case t < 40:
			return 5
		case t < 60:
			return 8
		default:
			return 9.5
		}
	}
	seq := make(bag.Sequence, n)
	for t := 0; t < n; t++ {
		size := 60 + rng.Intn(60)
		vals := make([]float64, size)
		for i := range vals {
			vals[i] = rng.Normal(mu(t), 1.5)
		}
		seq[t] = bag.FromScalars(t, vals)
	}
	return seq, changes
}

// Ablation runs every study on the shared workload.
func Ablation(seed int64) (*AblationResult, error) {
	seq, changes := ablationWorkload(seed)
	builder := signature.NewHistogramBuilder(-6, 16, 44)
	res := &AblationResult{}

	run := func(study, variant string, cfg core.Config) error {
		points, err := core.Run(cfg, seq)
		if err != nil {
			return fmt.Errorf("ablation %s/%s: %w", study, variant, err)
		}
		row := AblationRow{
			Study:   study,
			Variant: variant,
			Metrics: eval.Match(core.Alarms(points), changes, 1, 4),
		}
		for _, p := range points {
			row.MeanCIWidth += p.Interval.Width()
		}
		row.MeanCIWidth /= float64(len(points))
		res.Rows = append(res.Rows, row)
		return nil
	}

	base := func() core.Config {
		return core.Config{
			Tau: 5, TauPrime: 5,
			Builder:   builder,
			Bootstrap: bootstrap.Config{Replicates: 500, Alpha: 0.05},
			Seed:      seed,
		}
	}

	// Study 1: score type.
	for _, s := range []core.ScoreType{core.ScoreKL, core.ScoreLR} {
		cfg := base()
		cfg.Score = s
		if err := run("score", s.String(), cfg); err != nil {
			return nil, err
		}
	}
	// Study 2: window lengths.
	for _, w := range []struct{ tau, tp int }{{3, 3}, {5, 5}, {8, 8}, {8, 3}} {
		cfg := base()
		cfg.Tau, cfg.TauPrime = w.tau, w.tp
		if err := run("window", fmt.Sprintf("tau=%d,tau'=%d", w.tau, w.tp), cfg); err != nil {
			return nil, err
		}
	}
	// Study 3: weighting.
	for _, w := range []core.Weighting{core.WeightUniform, core.WeightDiscounted} {
		cfg := base()
		cfg.Weighting = w
		name := "uniform"
		if w == core.WeightDiscounted {
			name = "discounted"
		}
		if err := run("weighting", name, cfg); err != nil {
			return nil, err
		}
	}
	// Study 4: bootstrap size.
	for _, reps := range []int{50, 500, 5000} {
		cfg := base()
		cfg.Bootstrap.Replicates = reps
		if err := run("bootstrapT", fmt.Sprintf("T=%d", reps), cfg); err != nil {
			return nil, err
		}
	}
	// Study 5: raw vs normalized signature mass.
	for _, raw := range []bool{false, true} {
		cfg := base()
		cfg.RawMass = raw
		name := "normalized"
		if raw {
			name = "raw-mass"
		}
		if err := run("mass", name, cfg); err != nil {
			return nil, err
		}
	}

	// Study 6: adaptive CI threshold vs best fixed threshold on the KL
	// score series — the §4 motivation.
	cfg := base()
	points, err := core.Run(cfg, seq)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Study:   "threshold",
		Variant: "adaptive (CI overlap)",
		Metrics: eval.Match(core.Alarms(points), changes, 1, 4),
	})
	times := make([]int, len(points))
	scores := make([]float64, len(points))
	for i, p := range points {
		times[i] = p.T
		scores[i] = p.Score
	}
	sweep := eval.SweepThreshold(scores, times, changes, 1, 4, thresholdGrid(scores))
	bestFixed, _ := eval.BestF1(sweep)
	res.Rows = append(res.Rows, AblationRow{
		Study:   "threshold",
		Variant: "best fixed (oracle)",
		Metrics: bestFixed,
	})

	res.Report = res.render()
	return res, nil
}

func (r *AblationResult) render() string {
	var b strings.Builder
	b.WriteString(header("Ablation studies (DESIGN.md §5) — 3 planted changes of decreasing size"))
	fmt.Fprintf(&b, "%-11s %-22s %-44s %s\n", "study", "variant", "metrics", "mean CI width")
	last := ""
	for _, row := range r.Rows {
		study := row.Study
		if study == last {
			study = ""
		} else if last != "" {
			b.WriteString("\n")
		}
		last = row.Study
		fmt.Fprintf(&b, "%-11s %-22s %-44s %.3f\n", study, row.Variant, row.Metrics.String(), row.MeanCIWidth)
	}
	b.WriteString("\nreading guide: both scores detect all changes here (LR is the noisier\n")
	b.WriteString("one — wider intervals); oversized windows start leaking false alarms;\n")
	b.WriteString("T only stabilizes the interval estimate (detection quality saturates\n")
	b.WriteString("at small T); raw-mass partial matching lets the varying bag sizes\n")
	b.WriteString("inject mass noise — much wider intervals and a missed change — which\n")
	b.WriteString("is why the detector normalizes signatures by default; the adaptive\n")
	b.WriteString("threshold matches an ORACLE fixed threshold without being given one.\n")
	return b.String()
}
