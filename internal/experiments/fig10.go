package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/plot"
	"repro/internal/randx"
)

// Fig10FeatureResult is one feature row of one Fig. 10 panel.
type Fig10FeatureResult struct {
	Feature bipartite.Feature
	Points  []core.Point
	Alarms  []int
	Metrics eval.Metrics
}

// Fig10DatasetResult is one panel (dataset) of Fig. 10: the detector run
// on each of the seven graph features.
type Fig10DatasetResult struct {
	Dataset  bipartite.Section53Dataset
	Changes  []int
	Features []Fig10FeatureResult
	// CombinedMetrics treats a change as detected if ANY feature raised
	// an alarm near it (the paper's reading of the panels).
	CombinedMetrics eval.Metrics
}

// Fig10Result aggregates the four synthetic bipartite-graph datasets.
type Fig10Result struct {
	Datasets []Fig10DatasetResult
	Report   string
}

// Fig10Options scales the workload; the zero value reproduces the paper
// (node λ=200, 200/240 steps).
type Fig10Options struct {
	Graph      bipartite.Section53Options
	Replicates int
}

func (o Fig10Options) withDefaults() Fig10Options {
	if o.Replicates <= 0 {
		o.Replicates = 500
	}
	return o
}

// Fig10 runs the §5.3 synthetic bipartite-graph experiments: for each
// dataset, each of the 7 features becomes a 1-D bag sequence scored with
// scoreKL (the paper's Eq. 17 choice for this section), τ = τ′ = 5.
func Fig10(seed int64, opts Fig10Options) (*Fig10Result, error) {
	opts = opts.withDefaults()
	rng := randx.New(seed)
	res := &Fig10Result{}
	for _, ds := range bipartite.AllSection53() {
		graphs, err := ds.Generate(rng.Split(int64(ds)), opts.Graph)
		if err != nil {
			return nil, err
		}
		steps := len(graphs)
		dr := Fig10DatasetResult{Dataset: ds, Changes: ds.Changes(steps)}
		var allAlarms []int
		for _, f := range bipartite.AllFeatures() {
			seq, err := bipartite.FeatureSequence(graphs, f)
			if err != nil {
				return nil, fmt.Errorf("fig10 %v %v: %w", ds, f, err)
			}
			builder, err := histogramBuilderFor(seq, 30)
			if err != nil {
				return nil, err
			}
			cfg := detectorConfig(5, 5, builder, opts.Replicates, seed+int64(ds)*10+int64(f))
			points, err := core.Run(cfg, seq)
			if err != nil {
				return nil, fmt.Errorf("fig10 %v %v detector: %w", ds, f, err)
			}
			fr := Fig10FeatureResult{
				Feature: f,
				Points:  points,
				Alarms:  core.Alarms(points),
			}
			fr.Metrics = eval.Match(fr.Alarms, dr.Changes, 2, 6)
			allAlarms = append(allAlarms, fr.Alarms...)
			dr.Features = append(dr.Features, fr)
		}
		dr.CombinedMetrics = eval.Match(allAlarms, dr.Changes, 2, 6)
		res.Datasets = append(res.Datasets, dr)
	}
	res.Report = res.render()
	return res, nil
}

func (r *Fig10Result) render() string {
	var b strings.Builder
	b.WriteString(header("Figure 10 — synthetic bipartite graphs, 7 features × 4 datasets"))
	for _, dr := range r.Datasets {
		fmt.Fprintf(&b, "\n--- %v (changes at %v) ---\n", dr.Dataset, dr.Changes)
		for _, fr := range dr.Features {
			times, scores, lo, hi := seriesOf(fr.Points)
			b.WriteString(plot.Series(fmt.Sprintf("feature %v", fr.Feature),
				scores, lo, hi,
				offsetsToIndex(times, fr.Alarms), offsetsToIndex(times, dr.Changes), 6))
			fmt.Fprintf(&b, "  %v\n", fr.Metrics)
		}
		fmt.Fprintf(&b, "any-feature combination: %v\n", dr.CombinedMetrics)
	}
	b.WriteString("\npaper's claims: every change is caught by at least one feature; the\n")
	b.WriteString("node-strength features 5 and 6 detect accurately in all situations\n")
	b.WriteString("(even the small early changes); the second-degree features 3 and 4\n")
	b.WriteString("carry no signal because the synthetic data has no source-destination\n")
	b.WriteString("correspondence structure; occasional high scores without changes are\n")
	b.WriteString("suppressed by the confidence intervals.\n")
	return b.String()
}
