package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/randx"
	"repro/internal/signature"
)

// EngineScaleOptions sizes the multi-stream engine demonstration.
type EngineScaleOptions struct {
	// Streams is the number of concurrent detector streams (default 64).
	Streams int
	// Steps is the number of bags pushed per stream (default 40).
	Steps int
	// Replicates is the bootstrap size per inspection (default 200).
	Replicates int
}

func (o EngineScaleOptions) withDefaults() EngineScaleOptions {
	if o.Streams <= 0 {
		o.Streams = 64
	}
	if o.Steps <= 0 {
		o.Steps = 40
	}
	if o.Replicates <= 0 {
		o.Replicates = 200
	}
	return o
}

// EngineScaleResult carries the rendered report plus the headline
// numbers for programmatic checks.
type EngineScaleResult struct {
	Report string
	// BagsPerSecBatch and BagsPerSecSequential are the engine throughput
	// with the full worker group vs. one worker.
	BagsPerSecBatch      float64
	BagsPerSecSequential float64
	// Recall is the fraction of streams whose change was detected within
	// the tolerance window.
	Recall float64
	// BitIdentical reports whether the parallel run reproduced the
	// sequential run exactly, stream by stream.
	BitIdentical bool
}

// EngineScale exercises the multi-stream Engine the way the ROADMAP's
// "detector pool / server front-end" item intends: S independent streams
// (each a 1-D Gaussian with a per-stream change point) are multiplexed
// through PushBatch, once with a single worker and once with the full
// worker group. The report shows throughput for both runs, verifies the
// outputs are bit-identical (worker count is a pure throughput knob),
// and scores detection quality across all streams.
func EngineScale(seed int64, opts EngineScaleOptions) (*EngineScaleResult, error) {
	opts = opts.withDefaults()
	tau, tauPrime := 5, 5

	// Per-stream workloads: mean shift 0→3 at a change point staggered
	// across streams (middle third of the horizon).
	ids := make([]string, opts.Streams)
	changes := make(map[string]int, opts.Streams)
	bags := make(map[string][]bag.Bag, opts.Streams)
	for s := range ids {
		ids[s] = fmt.Sprintf("stream-%03d", s)
		change := opts.Steps/3 + s%(opts.Steps/3+1)
		changes[ids[s]] = change
		rng := randx.New(randx.SplitSeed(seed, int64(s)))
		seq := make([]bag.Bag, opts.Steps)
		for ts := range seq {
			mu := 0.0
			if ts >= change {
				mu = 3
			}
			vals := make([]float64, 60)
			for i := range vals {
				vals[i] = rng.Normal(mu, 1)
			}
			seq[ts] = bag.FromScalars(ts, vals)
		}
		bags[ids[s]] = seq
	}

	newEngine := func(workers int) (*core.Engine, error) {
		return core.NewEngine(core.EngineConfig{
			Template: core.Config{
				Tau: tau, TauPrime: tauPrime,
				Score:     core.ScoreKL,
				Bootstrap: bootstrap.Config{Replicates: opts.Replicates, Alpha: 0.05},
			},
			Factory: signature.HistogramFactory(-6, 9, 30),
			Seed:    seed,
			Workers: workers,
		})
	}

	run := func(workers int) (map[string][]*core.Point, float64, error) {
		eng, err := newEngine(workers)
		if err != nil {
			return nil, 0, err
		}
		out := make(map[string][]*core.Point, opts.Streams)
		batch := make([]core.StreamBag, opts.Streams)
		start := time.Now()
		for step := 0; step < opts.Steps; step++ {
			for s, id := range ids {
				batch[s] = core.StreamBag{StreamID: id, Bag: bags[id][step]}
			}
			results, err := eng.PushBatch(batch)
			if err != nil {
				return nil, 0, err
			}
			for _, res := range results {
				if res.Point != nil {
					out[res.StreamID] = append(out[res.StreamID], res.Point)
				}
			}
		}
		elapsed := time.Since(start)
		return out, float64(opts.Streams*opts.Steps) / elapsed.Seconds(), nil
	}

	seqPoints, seqRate, err := run(1)
	if err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	parPoints, parRate, err := run(workers)
	if err != nil {
		return nil, err
	}

	identical := true
	for _, id := range ids {
		a, b := seqPoints[id], parPoints[id]
		if len(a) != len(b) {
			identical = false
			break
		}
		for i := range a {
			if a[i].T != b[i].T || a[i].Score != b[i].Score || a[i].Interval != b[i].Interval || a[i].Alarm != b[i].Alarm {
				identical = false
				break
			}
		}
	}

	detected := 0
	for _, id := range ids {
		var alarms []int
		for _, p := range parPoints[id] {
			if p.Alarm {
				alarms = append(alarms, p.T)
			}
		}
		if m := eval.Match(alarms, []int{changes[id]}, 2, tauPrime+2); m.TruePositives > 0 {
			detected++
		}
	}
	recall := float64(detected) / float64(opts.Streams)

	var b strings.Builder
	fmt.Fprintf(&b, "Engine scale-out: %d streams x %d bags, tau=%d, tau'=%d, T=%d replicates\n",
		opts.Streams, opts.Steps, tau, tauPrime, opts.Replicates)
	fmt.Fprintf(&b, "  sequential (1 worker):   %10.0f bags/s\n", seqRate)
	fmt.Fprintf(&b, "  batched (%2d workers):    %10.0f bags/s  (%.2fx)\n", workers, parRate, parRate/seqRate)
	fmt.Fprintf(&b, "  bit-identical outputs:   %v\n", identical)
	fmt.Fprintf(&b, "  change detected:         %d/%d streams (recall %.2f)\n", detected, opts.Streams, recall)

	return &EngineScaleResult{
		Report:               b.String(),
		BagsPerSecBatch:      parRate,
		BagsPerSecSequential: seqRate,
		Recall:               recall,
		BitIdentical:         identical,
	}, nil
}
