package experiments

import (
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/enron"
	"repro/internal/randx"
	"repro/internal/synth"
)

func TestFig1ReproducesTheClaim(t *testing.T) {
	res, err := Fig1(1)
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: the proposed method detects both changes.
	if res.Proposed.Recall() < 1 {
		t.Errorf("proposed method missed a change: %v", res.Proposed)
	}
	// The baselines, even at their best fixed threshold, must do
	// strictly worse than the proposed method (their input carries no
	// signal). Give them the benefit of the doubt on one lucky change.
	if res.CF.F1() >= res.Proposed.F1() {
		t.Errorf("ChangeFinder F1 %g >= proposed %g — mean sequence should be uninformative",
			res.CF.F1(), res.Proposed.F1())
	}
	if res.KCD.F1() >= res.Proposed.F1() {
		t.Errorf("KCD F1 %g >= proposed %g", res.KCD.F1(), res.Proposed.F1())
	}
	if !strings.Contains(res.Report, "Figure 1") {
		t.Error("report missing")
	}
}

func TestFig6ReproducesTheClaims(t *testing.T) {
	res, err := Fig6(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 5 {
		t.Fatalf("%d datasets", len(res.Datasets))
	}
	byID := map[int]Fig6DatasetResult{}
	for _, dr := range res.Datasets {
		byID[int(dr.Dataset)] = dr
	}
	// Claims 1-3: no (or almost no) alarms on the no-change datasets.
	for id := 1; id <= 3; id++ {
		if len(byID[id].Alarms) > 1 {
			t.Errorf("dataset %d raised %d alarms: %v", id, len(byID[id].Alarms), byID[id].Alarms)
		}
	}
	// Claim 4: the dataset-4 jump is detected…
	if byID[4].Metrics.Recall() < 1 {
		t.Errorf("dataset 4 jump not detected: alarms %v", byID[4].Alarms)
	}
	// …and the dataset-5 change is NOT ("our method was able to raise
	// alerts successfully for dataset 4, but not for Dataset 5").
	if len(byID[5].Alarms) != 0 {
		t.Errorf("dataset 5 raised alarms %v; the paper misses this change", byID[5].Alarms)
	}
	// Claim: CI widths are larger under drift/unstationarity. The drift
	// datasets (3, 5) must have wider mean intervals than the stationary
	// ones (1, 2). (Dataset 4's mean width is inflated by the windows
	// straddling the jump, so it is excluded from this comparison.)
	drift := (byID[3].MeanCIWidth + byID[5].MeanCIWidth) / 2
	stationary := (byID[1].MeanCIWidth + byID[2].MeanCIWidth) / 2
	if drift <= stationary {
		t.Errorf("mean CI width drift %g <= stationary %g", drift, stationary)
	}
	if !strings.Contains(res.Report, "Figure 6") {
		t.Error("report missing")
	}
}

func TestTable1Report(t *testing.T) {
	rep := Table1Report()
	for _, want := range []string{"lying", "rope jumping", "Nordic walking", "12"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Table 1 report missing %q", want)
		}
	}
}

func TestFig7Scaled(t *testing.T) {
	res, err := Fig7(3, Fig7Options{
		Subjects:            1,
		Replicates:          150,
		MeanRecordsPerBag:   120,
		MeanBagsPerActivity: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	sr := res.Subjects[0]
	// "Plausible accuracy": at least half of the activity transitions
	// raise alarms, and precision stays high (few false alarms).
	if sr.Metrics.Recall() < 0.5 {
		t.Errorf("recall %g too low: %v", sr.Metrics.Recall(), sr.Metrics)
	}
	if sr.Metrics.Precision() < 0.6 {
		t.Errorf("precision %g too low: %v", sr.Metrics.Precision(), sr.Metrics)
	}
	if !strings.Contains(res.Report, "Subject 1") {
		t.Error("report missing")
	}
}

func TestFig10Scaled(t *testing.T) {
	res, err := Fig10(4, Fig10Options{
		Graph:      bipartite.Section53Options{NodeLambda: 30, Steps: 120, TotalWeight: 6000},
		Replicates: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 4 {
		t.Fatalf("%d datasets", len(res.Datasets))
	}
	for _, dr := range res.Datasets {
		// Headline claim: every change detected by at least one feature.
		if dr.CombinedMetrics.Recall() < 0.5 {
			t.Errorf("%v: combined recall %g: %v", dr.Dataset, dr.CombinedMetrics.Recall(), dr.CombinedMetrics)
		}
		// The strength features (5, 6) must beat the second-degree
		// features (3, 4) on datasets where volume shifts (1 and 2).
		if dr.Dataset == bipartite.TrafficVolume {
			var strengthF1, secondF1 float64
			for _, fr := range dr.Features {
				switch fr.Feature {
				case bipartite.SrcStrength, bipartite.DstStrength:
					strengthF1 += fr.Metrics.F1() / 2
				case bipartite.SrcSecondDegree, bipartite.DstSecondDegree:
					secondF1 += fr.Metrics.F1() / 2
				}
			}
			if strengthF1 <= secondF1 {
				t.Errorf("dataset 1: strength F1 %g <= second-degree F1 %g", strengthF1, secondF1)
			}
		}
	}
	if !strings.Contains(res.Report, "Figure 10") {
		t.Error("report missing")
	}
}

func TestFig11Scaled(t *testing.T) {
	res, err := Fig11(5, Fig11Options{
		Corpus:     enron.Config{Employees: 40},
		Replicates: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 17 {
		t.Fatalf("%d event outcomes", len(res.Outcomes))
	}
	detected := 0
	gsDetected := 0
	for _, o := range res.Outcomes {
		if o.Detected {
			detected++
			if o.Event.DetectedByGraphScope {
				gsDetected++
			}
		}
	}
	// Shape claim: a clear majority of the events coincide with alarms,
	// including most of the GraphScope-detected subset.
	if detected < 9 {
		t.Errorf("only %d/17 events detected", detected)
	}
	if gsDetected < 5 {
		t.Errorf("only %d/8 GraphScope events detected", gsDetected)
	}
	if !strings.Contains(res.Report, "ENRON") {
		t.Error("report missing")
	}
}

func TestAblation(t *testing.T) {
	res, err := Ablation(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 12 {
		t.Fatalf("only %d ablation rows", len(res.Rows))
	}
	byVariant := map[string]AblationRow{}
	for _, r := range res.Rows {
		byVariant[r.Study+"/"+r.Variant] = r
	}
	// The adaptive threshold must match the oracle fixed threshold's F1
	// (that is the practical point of §4: no tuning needed).
	adaptive := byVariant["threshold/adaptive (CI overlap)"].Metrics.F1()
	oracle := byVariant["threshold/best fixed (oracle)"].Metrics.F1()
	if adaptive < oracle-0.15 {
		t.Errorf("adaptive F1 %g far below oracle fixed %g", adaptive, oracle)
	}
	// The baseline configuration must detect all three planted changes.
	if got := byVariant["score/KL"].Metrics.Recall(); got < 1 {
		t.Errorf("baseline KL recall %g", got)
	}
	// Bigger bootstrap must not hurt detection.
	if byVariant["bootstrapT/T=5000"].Metrics.F1() < byVariant["bootstrapT/T=50"].Metrics.F1()-0.25 {
		t.Errorf("T=5000 much worse than T=50: %v vs %v",
			byVariant["bootstrapT/T=5000"].Metrics, byVariant["bootstrapT/T=50"].Metrics)
	}
	if !strings.Contains(res.Report, "Ablation studies") {
		t.Error("report missing")
	}
}

// TestFig6MatrixDeterministicAcrossWorkers guards the fig6 migration off
// the stateful-builder path: the dissimilarity matrix is built through
// the k-means factory with per-bag split seeds, so it must be
// bit-identical for every worker count (the old path threaded one shared
// RNG through every build and was tied to sequential order).
func TestFig6MatrixDeterministicAcrossWorkers(t *testing.T) {
	const seed = 2
	for _, ds := range synth.AllSection51()[:2] {
		rng := randx.New(seed)
		seq, err := ds.Generate(rng.Split(int64(ds)))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := fig6EMDMatrix(seq, seed, ds, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			m, err := fig6EMDMatrix(seq, seed, ds, workers)
			if err != nil {
				t.Fatal(err)
			}
			if m.N() != ref.N() {
				t.Fatalf("ds %v: size %d vs %d", ds, m.N(), ref.N())
			}
			for i := 0; i < m.N(); i++ {
				for j := 0; j < m.N(); j++ {
					if m.At(i, j) != ref.At(i, j) {
						t.Fatalf("ds %v workers=%d: cell (%d,%d) = %g, want %g", ds, workers, i, j, m.At(i, j), ref.At(i, j))
					}
				}
			}
		}
	}
}

// TestFig6Deterministic: the whole experiment (matrix, MDS, detector,
// report) is a pure function of its seed.
func TestFig6Deterministic(t *testing.T) {
	a, err := Fig6(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report != b.Report {
		t.Error("Fig6 report differs between identical runs")
	}
}

func TestPairwiseScale(t *testing.T) {
	opts := PairwiseScaleOptions{N: 32, PointsPerBag: 20, TileSize: 8}
	res, err := PairwiseScale(5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BitIdentical {
		t.Error("worker count changed the matrix")
	}
	if !res.ShardMergeIdentical {
		t.Error("2-shard merge differs from single-process matrix")
	}
	if !strings.Contains(res.Report, "Pairwise EMD at corpus scale") {
		t.Error("report missing")
	}
}

// TestPairwiseShardMergeFlow drives the same path as the
// `repro -exp pairwise -shard i/k` → `-merge` CLI: three shard partials
// computed independently (as three processes would) merge into a matrix
// the merge report verifies against a single-process run.
func TestPairwiseShardMergeFlow(t *testing.T) {
	opts := PairwiseScaleOptions{N: 24, PointsPerBag: 15, TileSize: 5}
	const shards = 3
	parts := make([]*core.PartialMatrix, shards)
	for s := 0; s < shards; s++ {
		p, err := PairwiseShardPartial(5, opts, s, shards)
		if err != nil {
			t.Fatal(err)
		}
		parts[s] = p
	}
	report, err := PairwiseMergeReport(5, opts, parts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "bit-identical to single-process matrix: true") {
		t.Errorf("merge report does not confirm bit-identity:\n%s", report)
	}
	// Dropping a shard must fail loudly, not zero-fill.
	if _, err := PairwiseMergeReport(5, opts, parts[:2]); err == nil {
		t.Error("merge with a missing shard must error")
	}
}

// TestSolverScale drives the `repro -exp solverscale` study at a small
// scale: the report must render, every row must carry counters, and the
// classic-vs-block-pricing cost agreement is enforced inside the driver
// (it errors past 1e-9).
func TestSolverScale(t *testing.T) {
	res, err := SolverScale(3, SolverScaleOptions{Ks: []int{8, 24}, Pairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.ClassicPivots <= 0 || r.LargePivots <= 0 {
			t.Errorf("K=%d: missing pivot counters: %+v", r.K, r)
		}
		if r.MaxRelDiff > 1e-9 {
			t.Errorf("K=%d: rel diff %g escaped the driver's own gate", r.K, r.MaxRelDiff)
		}
	}
	if !strings.Contains(res.Report, "block-pricing") {
		t.Error("report missing")
	}
}
