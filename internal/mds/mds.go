// Package mds implements classical (Torgerson) multidimensional scaling,
// used to render the Fig. 6 middle panels: given the pairwise EMD matrix
// between bags, it embeds the bags in a low-dimensional Euclidean space
// that best preserves the squared distances.
package mds

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Embed computes a k-dimensional classical MDS embedding of the n×n
// symmetric distance matrix dist. It returns an n×k coordinate matrix
// (rows are items) and the eigenvalues of the doubly centered Gram
// matrix in descending order (useful to judge embedding quality).
//
// Dimensions whose eigenvalue is non-positive (the distance matrix is not
// exactly Euclidean) are filled with zeros.
func Embed(dist [][]float64, k int) (coords [][]float64, eigenvalues []float64, err error) {
	n := len(dist)
	if n == 0 {
		return nil, nil, fmt.Errorf("mds: empty distance matrix")
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("mds: k must be >= 1, got %d", k)
	}
	for i, row := range dist {
		if len(row) != n {
			return nil, nil, fmt.Errorf("mds: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	for i := 0; i < n; i++ {
		if dist[i][i] != 0 {
			return nil, nil, fmt.Errorf("mds: nonzero diagonal at %d", i)
		}
		for j := i + 1; j < n; j++ {
			if math.Abs(dist[i][j]-dist[j][i]) > 1e-9*(1+math.Abs(dist[i][j])) {
				return nil, nil, fmt.Errorf("mds: asymmetric at (%d,%d)", i, j)
			}
			if dist[i][j] < 0 {
				return nil, nil, fmt.Errorf("mds: negative distance at (%d,%d)", i, j)
			}
		}
	}

	// B = −½ J D² J with J = I − 11ᵀ/n (double centering).
	d2 := vec.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d2.Set(i, j, dist[i][j]*dist[i][j])
		}
	}
	rowMean := make([]float64, n)
	grand := 0.0
	for i := 0; i < n; i++ {
		rowMean[i] = vec.Mean(d2.Row(i))
		grand += rowMean[i]
	}
	grand /= float64(n)
	b := vec.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, -0.5*(d2.At(i, j)-rowMean[i]-rowMean[j]+grand))
		}
	}

	vals, vecs, err := vec.EigenSym(b)
	if err != nil {
		return nil, nil, fmt.Errorf("mds: eigendecomposition: %w", err)
	}
	if k > n {
		k = n
	}
	coords = make([][]float64, n)
	for i := range coords {
		coords[i] = make([]float64, k)
	}
	for c := 0; c < k; c++ {
		if vals[c] <= 0 {
			continue // non-Euclidean residual dimension
		}
		scale := math.Sqrt(vals[c])
		for i := 0; i < n; i++ {
			coords[i][c] = scale * vecs.At(i, c)
		}
	}
	return coords, vals, nil
}

// Stress returns the normalized residual Σ(d_ij − δ_ij)² / Σ d_ij²
// between the input distances d and the embedding distances δ — a
// goodness-of-fit measure for an MDS embedding (0 is perfect).
func Stress(dist [][]float64, coords [][]float64) float64 {
	num, den := 0.0, 0.0
	for i := range dist {
		for j := i + 1; j < len(dist); j++ {
			dij := dist[i][j]
			delta := vec.Dist2(coords[i], coords[j])
			num += (dij - delta) * (dij - delta)
			den += dij * dij
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
