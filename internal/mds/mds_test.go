package mds

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/vec"
)

func distMatrix(points [][]float64) [][]float64 {
	n := len(points)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = vec.Dist2(points[i], points[j])
		}
	}
	return d
}

func TestEmbedRecoversEuclideanConfiguration(t *testing.T) {
	// Points in the plane: MDS on their exact distance matrix must
	// reproduce all pairwise distances (up to rotation/reflection).
	pts := [][]float64{{0, 0}, {1, 0}, {0, 2}, {3, 3}, {-1, 1}}
	d := distMatrix(pts)
	coords, vals, err := Embed(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			got := vec.Dist2(coords[i], coords[j])
			if math.Abs(got-d[i][j]) > 1e-8 {
				t.Errorf("distance (%d,%d): embedded %g, want %g", i, j, got, d[i][j])
			}
		}
	}
	// Only two meaningful dimensions: remaining eigenvalues ~0.
	for c := 2; c < len(vals); c++ {
		if math.Abs(vals[c]) > 1e-8 {
			t.Errorf("eigenvalue %d = %g, want ~0", c, vals[c])
		}
	}
}

func TestEmbedStressNearZeroForEuclidean(t *testing.T) {
	rng := randx.New(1)
	pts := make([][]float64, 15)
	for i := range pts {
		pts[i] = rng.NormalVec(2, 0, 3)
	}
	d := distMatrix(pts)
	coords, _, err := Embed(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := Stress(d, coords); s > 1e-10 {
		t.Errorf("stress = %g, want ~0", s)
	}
}

func TestEmbedSeparatesClusters(t *testing.T) {
	// Two groups with small within-distance, large across-distance: the
	// 2-D embedding must keep the groups apart (this is exactly how
	// Fig. 6 uses MDS on EMD matrices).
	rng := randx.New(2)
	n := 20
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var base float64
			if (i < 10) == (j < 10) {
				base = 1
			} else {
				base = 10
			}
			v := base + rng.Float64()*0.1
			d[i][j], d[j][i] = v, v
		}
	}
	coords, _, err := Embed(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	within, across := 0.0, 0.0
	nw, na := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dd := vec.Dist2(coords[i], coords[j])
			if (i < 10) == (j < 10) {
				within += dd
				nw++
			} else {
				across += dd
				na++
			}
		}
	}
	if across/float64(na) <= 2*within/float64(nw) {
		t.Errorf("embedding does not separate clusters: across %g, within %g", across/float64(na), within/float64(nw))
	}
}

func TestEmbedValidation(t *testing.T) {
	if _, _, err := Embed(nil, 2); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, _, err := Embed([][]float64{{0, 1}, {1, 0}}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Embed([][]float64{{0, 1}}, 1); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := Embed([][]float64{{1, 0}, {0, 0}}, 1); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	if _, _, err := Embed([][]float64{{0, 1}, {2, 0}}, 1); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, _, err := Embed([][]float64{{0, -1}, {-1, 0}}, 1); err == nil {
		t.Error("negative distance accepted")
	}
}

func TestEmbedKLargerThanN(t *testing.T) {
	d := [][]float64{{0, 1}, {1, 0}}
	coords, _, err := Embed(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(coords[0]) != 2 {
		t.Errorf("k should clamp to n: got %d dims", len(coords[0]))
	}
}

func TestStressZeroDistanceMatrix(t *testing.T) {
	d := [][]float64{{0, 0}, {0, 0}}
	coords := [][]float64{{0}, {0}}
	if s := Stress(d, coords); s != 0 {
		t.Errorf("Stress = %g, want 0", s)
	}
}
