package oplog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func pushRec(stream string, t int, mark uint64) Record {
	return Record{
		Op:     OpPush,
		Stream: stream,
		BagT:   t,
		Bag:    [][]float64{{float64(t), 1.5}, {2.25, -3}},
		Mark:   mark,
		Trace:  "tr",
	}
}

func replayAll(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestRoundtrip: appended records come back byte-for-byte from a fresh
// Open of the same directory, in append order.
func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	want := []Record{
		pushRec("a", 0, 1),
		pushRec("b", 0, 2),
		pushRec("a", 1, 3),
		{Op: OpClose, Stream: "b", Mark: 3},
	}
	if err := l.Append(want...); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l); !reflect.DeepEqual(got, want) {
		t.Fatalf("same-process replay = %+v, want %+v", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{})
	if got := replayAll(t, l2); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened replay = %+v, want %+v", got, want)
	}
	if st := l2.Stats(); st.TruncatedBytes != 0 {
		t.Fatalf("clean log truncated %d bytes", st.TruncatedBytes)
	}
}

// TestRotation: a tiny segment limit forces rotations; replay order and
// content survive, and the directory really holds multiple segments.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 128})
	var want []Record
	for i := 0; i < 40; i++ {
		rec := pushRec("s", i, uint64(i+1))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatal("no rotations at SegmentBytes=128")
	}
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2", st.Segments)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) != st.Segments {
		t.Fatalf("on-disk segments = %d (%v), stats say %d", len(segs), err, st.Segments)
	}
	l.Close()

	l2 := mustOpen(t, dir, Options{SegmentBytes: 128})
	if got := replayAll(t, l2); !reflect.DeepEqual(got, want) {
		t.Fatalf("rotated replay lost records: got %d, want %d", len(got), len(want))
	}
}

// TestTornTail: every flavor of crash damage at the end of the final
// segment is truncated back to the last intact record at Open.
func TestTornTail(t *testing.T) {
	cases := []struct {
		name string
		tail string
	}{
		{"partial line", `{"op":"push","stream":"s","bag_t":2,"bag":[[1.0`},
		{"garbage line with newline", "#!garbage!#\n"},
		{"valid json, invalid record", `{"op":"push","stream":"","bag_t":2,"bag":[[1]]}` + "\n"},
		{"unknown op", `{"op":"merge","stream":"s"}` + "\n"},
		{"negative bag_t", `{"op":"push","stream":"s","bag_t":-1,"bag":[[1]]}` + "\n"},
		{"empty bag", `{"op":"push","stream":"s","bag_t":2,"bag":[]}` + "\n"},
		{"whitespace tail", "   \n"},
		{"bare newline", "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{})
			want := []Record{pushRec("s", 0, 1), pushRec("s", 1, 2)}
			if err := l.Append(want...); err != nil {
				t.Fatal(err)
			}
			l.Close()

			seg := filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, 1, segSuffix))
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l2 := mustOpen(t, dir, Options{})
			if st := l2.Stats(); st.TruncatedBytes != uint64(len(tc.tail)) {
				t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, len(tc.tail))
			}
			if got := replayAll(t, l2); !reflect.DeepEqual(got, want) {
				t.Fatalf("replay after truncation = %+v, want %+v", got, want)
			}
			// The truncation is physical: a third open sees a clean log.
			l2.Close()
			l3 := mustOpen(t, dir, Options{})
			if st := l3.Stats(); st.TruncatedBytes != 0 {
				t.Fatalf("second open truncated again: %d bytes", st.TruncatedBytes)
			}
		})
	}
}

// TestInteriorCorruptionRefused: damage that is NOT the crash tail —
// a bad line in a sealed segment — fails Open loudly instead of being
// skipped.
func TestInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		if err := l.Append(pushRec("s", i, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 2 {
		t.Fatal("test needs a sealed segment")
	}
	l.Close()

	first := filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, 1, segSuffix))
	blob, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	blob = bytes.Replace(blob, []byte(`"op":"push"`), []byte(`"op":"bogus"`), 1)
	if err := os.WriteFile(first, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("Open with interior corruption: err = %v, want corrupt-record refusal", err)
	}
}

// TestCheckpointCompaction: a checkpoint persists the envelope, deletes
// the pre-checkpoint segments, and replay afterwards yields only the
// post-checkpoint suffix.
func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := l.Append(pushRec("s", i, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	envelope := []byte(`{"fake":"envelope"}`)
	if err := l.Checkpoint(envelope, 5); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if got, ok, err := l.LoadCheckpoint(); err != nil || !ok || !bytes.Equal(got, envelope) {
		t.Fatalf("LoadCheckpoint = %q, %v, %v", got, ok, err)
	}
	if st := l.Stats(); st.CompactedSegments == 0 || st.BytesSinceCheckpoint != 0 {
		t.Fatalf("after checkpoint: %+v", st)
	}
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("replay after checkpoint = %d records, want 0", len(got))
	}

	suffix := []Record{pushRec("s", 5, 6), pushRec("s", 6, 7)}
	if err := l.Append(suffix...); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := mustOpen(t, dir, Options{})
	if got, ok, err := l2.LoadCheckpoint(); err != nil || !ok || !bytes.Equal(got, envelope) {
		t.Fatalf("reopened LoadCheckpoint = %q, %v, %v", got, ok, err)
	}
	if got := replayAll(t, l2); !reflect.DeepEqual(got, suffix) {
		t.Fatalf("reopened replay = %+v, want the post-checkpoint suffix %+v", got, suffix)
	}
}

// TestCheckpointQuiescenceViolation: a segment carrying records marked
// past the checkpoint's mark is kept, and the violation is reported.
func TestCheckpointQuiescenceViolation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if err := l.Append(pushRec("s", 0, 10)); err != nil {
		t.Fatal(err)
	}
	err := l.Checkpoint([]byte("{}"), 5)
	if err == nil || !strings.Contains(err.Error(), "past checkpoint mark") {
		t.Fatalf("checkpoint below record marks: err = %v", err)
	}
	// The mark-10 record must still replay — it was not compacted away.
	if got := replayAll(t, l); len(got) != 1 || got[0].Mark != 10 {
		t.Fatalf("replay = %+v, want the kept mark-10 record", got)
	}
}

// TestGroupCommitConcurrent: concurrent Enqueue+Sync from many
// goroutines loses nothing, and the coalescing means fewer fsyncs than
// records.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := fmt.Sprintf("w%d", w)
			for i := 0; i < per; i++ {
				rec := pushRec(stream, i, uint64(w*per+i+1))
				l.Enqueue(&rec)
				if err := l.Sync(); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()

	l2 := mustOpen(t, dir, Options{})
	recs := replayAll(t, l2)
	if len(recs) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(recs), workers*per)
	}
	// Per-stream order must be enqueue order even under contention.
	next := make(map[string]int)
	for _, r := range recs {
		if r.BagT != next[r.Stream] {
			t.Fatalf("stream %s: record bag_t %d, want %d (order lost)", r.Stream, r.BagT, next[r.Stream])
		}
		next[r.Stream]++
	}
}

// TestCloseRefusesWrites: a closed log is poisoned.
func TestCloseRefusesWrites(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(pushRec("s", 0, 1)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after Close")
	}
}

// TestStreamStore: the spill store round-trips arbitrary ids, survives
// reopen, cleans tmp remnants, and enforces its id bounds.
func TestStreamStore(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStreamStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"plain", "weird/../id \x00!", "uni-ço∂é"}
	for i, id := range ids {
		if err := s.Put(id, []byte(fmt.Sprintf("blob-%d", i))); err != nil {
			t.Fatalf("put %q: %v", id, err)
		}
	}
	if s.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ids))
	}
	// Overwrite replaces.
	if err := s.Put("plain", []byte("blob-0b")); err != nil {
		t.Fatal(err)
	}
	if blob, ok, err := s.Get("plain"); err != nil || !ok || string(blob) != "blob-0b" {
		t.Fatalf("Get plain = %q, %v, %v", blob, ok, err)
	}
	if _, ok, _ := s.Get("absent"); ok {
		t.Fatal("Get(absent) ok")
	}
	if err := s.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	if s.Has(ids[1]) {
		t.Fatal("Has after Delete")
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete of missing id: %v", err)
	}

	// A tmp remnant from a crashed spill is swept at open; real spills
	// survive the reopen with their ids decoded back from the filenames.
	if err := os.WriteFile(filepath.Join(dir, "leftover.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStreamStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 || !s2.Has("plain") || !s2.Has(ids[2]) {
		t.Fatalf("reopened store: Len=%d IDs=%v", s2.Len(), s2.IDs())
	}
	if _, err := os.Stat(filepath.Join(dir, "leftover.tmp")); !os.IsNotExist(err) {
		t.Fatal("tmp remnant survived reopen")
	}

	if err := s2.Put("", []byte("x")); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := s2.Put(strings.Repeat("x", maxSpillID+1), []byte("x")); err == nil {
		t.Fatal("oversized id accepted")
	}
}
