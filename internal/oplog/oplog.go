// Package oplog is the durability tier under the HTTP server: an
// append-only, fsync-batched NDJSON write-ahead log of applied push
// rows, plus an on-disk store for spilled idle streams (store.go).
//
// The contract is at-least-once: a push row is acknowledged (the server
// writes its 200) only after its record is on disk, so a SIGKILL'd
// instance replays to a state containing every acknowledged row —
// exactly the durable prefix. Rows in flight at the crash (applied in
// memory but not yet synced) were never acknowledged and are simply
// absent after replay; clients that retry them get the same time
// indices they would have been assigned, because the replayed clock
// stops exactly where durability stopped.
//
// Layout of an oplog directory:
//
//	oplog-00000001.ndjson   log segments, one JSON Record per line,
//	oplog-00000002.ndjson   strictly ordered by segment index then line
//	checkpoint.json         the last full engine envelope (optional)
//	streams/                spilled per-stream envelopes (see store.go)
//
// Writes are group-committed: concurrent Enqueues accumulate in memory
// and one Sync flushes and fsyncs them all, so the fsync cost amortizes
// across the batch concurrency instead of multiplying with it. A
// checkpoint rewrites the full engine envelope atomically and compacts:
// every record is covered by the envelope (the server quiesces pushes
// while checkpointing), so all prior segments are deleted. Replay is
// therefore "last envelope + dirty suffix".
//
// On Open the final segment's torn tail — a partial line from a crash
// mid-write, or trailing garbage — is truncated back to the last intact
// record. Interior corruption (a bad line that is NOT the tail) fails
// Open loudly: that is not a crash artifact but real damage, and
// serving from a silently holed log would violate the acknowledgement
// contract.
package oplog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/bag"
)

// Record operation kinds.
const (
	// OpPush records one applied push row: stream id, the bag's assigned
	// time index, the bag points, the engine mutation mark stamped by the
	// applying batch, and the batch trace id (if any).
	OpPush = "push"
	// OpClose records an explicit stream close (lifecycle endpoint,
	// discard-mode eviction, migration extract): on replay the stream's
	// state is dropped exactly as it was live, so a later life of the id
	// starts from tick 0 again. Spill-mode evictions write no record —
	// the spilled envelope, not the log, carries that state onward.
	OpClose = "close"
)

// Record is one oplog line.
type Record struct {
	Op     string      `json:"op"`
	Stream string      `json:"stream"`
	BagT   int         `json:"bag_t,omitempty"`
	Bag    [][]float64 `json:"bag,omitempty"`
	// Mark is the engine mutation mark of the applying batch — a
	// monotone ordering hint carried per record so compaction can
	// cross-check that a checkpoint envelope (whose own Mark is read
	// under quiescence) really covers a segment before deleting it.
	Mark uint64 `json:"mark,omitempty"`
	// Trace is the batch correlation id, for post-hoc attribution of
	// replayed rows to client pushes.
	Trace string `json:"trace,omitempty"`
}

// valid is the torn-tail test: a line that does not parse into a
// well-formed record is where the durable log ends. Bag contents are
// vetted here too — a half-written float that still parses as JSON must
// count as torn, not replay garbage into a detector.
func (r *Record) valid() bool {
	switch r.Op {
	case OpPush:
		if r.Stream == "" || r.BagT < 0 || len(r.Bag) == 0 {
			return false
		}
		return (bag.Bag{Points: r.Bag}).Validate() == nil
	case OpClose:
		return r.Stream != ""
	default:
		return false
	}
}

const (
	segPrefix      = "oplog-"
	segSuffix      = ".ndjson"
	checkpointName = "checkpoint.json"
	// StreamDirName is the spill store subdirectory a server conventionally
	// places under its oplog directory.
	StreamDirName = "streams"
	// DefaultSegmentBytes rotates segments at 8 MiB: large enough that
	// rotation is rare, small enough that compaction reclaims space in
	// useful increments.
	DefaultSegmentBytes = 8 << 20
)

// Options parameterize Open.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// 0 selects DefaultSegmentBytes.
	SegmentBytes int64
	// FsyncObserver, if non-nil, receives the duration of every data-file
	// fsync in seconds (the server points a latency histogram here).
	FsyncObserver func(seconds float64)
}

// segInfo is the per-segment census Open builds (and appends maintain).
type segInfo struct {
	index   uint64
	path    string
	bytes   int64
	records int
	maxMark uint64
}

// Stats is a point-in-time census of the log.
type Stats struct {
	Records              uint64 // records appended this process (not replayed ones)
	AppendedBytes        uint64 // bytes appended this process
	Fsyncs               uint64 // data-file fsyncs performed
	Rotations            uint64 // segment rotations
	TruncatedBytes       uint64 // torn-tail bytes discarded at Open
	Checkpoints          uint64 // checkpoints written this process
	CompactedSegments    uint64 // segments deleted by compaction
	Segments             int    // current segment count (including active)
	BytesSinceCheckpoint int64  // log bytes appended since the last checkpoint (or Open)
}

// Log is an open oplog directory. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	// qmu guards the enqueue side of the group commit: records land in
	// queue as marshaled lines and enqSeq labels the newest one.
	qmu      sync.Mutex
	queue    []byte
	qRecords int
	qMaxMark uint64
	enqSeq   uint64

	// smu guards the sync side: segment files, the synced high-water
	// sequence, checkpointing and compaction. It is held across fsync, so
	// concurrent Syncs coalesce — the second caller finds its records
	// already durable and returns without touching the disk.
	smu      sync.Mutex
	active   *os.File
	activeInfo segInfo
	sealed   []segInfo // older segments, ascending index
	synced   uint64
	err      error // sticky: a failed write poisons the log
	stats    Stats
}

// Open opens (creating if needed) the oplog directory, truncates the
// final segment's torn tail, and indexes every segment for replay and
// compaction.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("oplog: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i := range segs {
		last := i == len(segs)-1
		if err := l.scanSegment(&segs[i], last, nil); err != nil {
			return nil, err
		}
	}
	if len(segs) == 0 {
		segs = []segInfo{{index: 1, path: l.segPath(1)}}
	}
	l.activeInfo = segs[len(segs)-1]
	l.sealed = segs[:len(segs)-1]
	f, err := os.OpenFile(l.activeInfo.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("oplog: %w", err)
	}
	l.active = f
	l.stats.Segments = len(l.sealed) + 1
	// Carried-over log bytes count toward the next checkpoint trigger:
	// a server that crashes before its first checkpoint should not need
	// another full segment of traffic before collapsing the backlog.
	l.stats.BytesSinceCheckpoint = l.activeInfo.bytes
	for _, s := range l.sealed {
		l.stats.BytesSinceCheckpoint += s.bytes
	}
	return l, nil
}

func (l *Log) segPath(index uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%08d%s", segPrefix, index, segSuffix))
}

// listSegments returns the directory's segments in ascending index order.
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("oplog: %w", err)
	}
	var segs []segInfo
	for _, ent := range ents {
		name := ent.Name()
		if !ent.Type().IsRegular() {
			continue
		}
		rest, ok := cutAffixes(name, segPrefix, segSuffix)
		if !ok {
			continue
		}
		var index uint64
		if _, err := fmt.Sscanf(rest, "%d", &index); err != nil || index == 0 {
			continue
		}
		segs = append(segs, segInfo{index: index, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	for i := 1; i < len(segs); i++ {
		if segs[i].index == segs[i-1].index {
			return nil, fmt.Errorf("oplog: duplicate segment index %d", segs[i].index)
		}
	}
	return segs, nil
}

func cutAffixes(s, prefix, suffix string) (string, bool) {
	if len(s) <= len(prefix)+len(suffix) {
		return "", false
	}
	if s[:len(prefix)] != prefix || s[len(s)-len(suffix):] != suffix {
		return "", false
	}
	return s[len(prefix) : len(s)-len(suffix)], true
}

// scanSegment walks one segment line by line, filling info's census and
// feeding each record to fn (when non-nil). For the final segment a
// torn or corrupt tail is truncated off the file; anywhere else it is
// an error.
func (l *Log) scanSegment(info *segInfo, tail bool, fn func(Record) error) error {
	f, err := os.Open(info.path)
	if err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	line := 0
	info.bytes, info.records, info.maxMark = 0, 0, 0
	for {
		raw, err := r.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return fmt.Errorf("oplog: reading %s: %w", info.path, err)
		}
		torn := err == io.EOF // no trailing newline: a write died mid-line
		body := raw
		if !torn && len(body) > 0 {
			body = body[:len(body)-1]
		}
		if len(body) == 0 && torn {
			break // clean EOF right after the final newline
		}
		var rec Record
		bad := torn || json.Unmarshal(body, &rec) != nil || !rec.valid()
		if bad {
			if !tail {
				return fmt.Errorf("oplog: segment %s line %d: corrupt record (not a crash tail — refusing to skip interior damage)", filepath.Base(info.path), line+1)
			}
			// Torn tail: everything from here was never acknowledged.
			if terr := os.Truncate(info.path, off); terr != nil {
				return fmt.Errorf("oplog: truncating torn tail of %s: %w", info.path, terr)
			}
			l.stats.TruncatedBytes += uint64(size - off)
			break
		}
		line++
		off += int64(len(raw))
		info.records++
		if rec.Mark > info.maxMark {
			info.maxMark = rec.Mark
		}
		if fn != nil {
			if ferr := fn(rec); ferr != nil {
				return fmt.Errorf("oplog: segment %s line %d: %w", filepath.Base(info.path), line, ferr)
			}
		}
		if err == io.EOF {
			break
		}
	}
	info.bytes = off
	return nil
}

// Enqueue marshals rec into the pending group-commit batch. The record
// is NOT durable until a Sync covering it returns nil. Callers that
// need per-stream replay order must enqueue in apply order (the server
// does this from the engine's apply hook, under the stream lock).
func (l *Log) Enqueue(rec *Record) {
	blob, err := json.Marshal(rec)
	if err != nil {
		// Only unencodable floats could do this, and bags are validated
		// finite — but if it ever happens, poison the log rather than
		// acknowledge a row that was never recorded.
		l.smu.Lock()
		if l.err == nil {
			l.err = fmt.Errorf("oplog: marshal record: %w", err)
		}
		l.smu.Unlock()
		return
	}
	l.qmu.Lock()
	defer l.qmu.Unlock()
	l.queue = append(l.queue, blob...)
	l.queue = append(l.queue, '\n')
	l.qRecords++
	if rec.Mark > l.qMaxMark {
		l.qMaxMark = rec.Mark
	}
	l.enqSeq++
}

// Append enqueues recs and syncs — the convenience path for records
// outside the push hot loop (close records, tests).
func (l *Log) Append(recs ...Record) error {
	for i := range recs {
		l.Enqueue(&recs[i])
	}
	return l.Sync()
}

// Sync makes every record enqueued before the call durable: the pending
// batch is written to the active segment (rotating first if it is over
// the size limit) and fsynced. Concurrent Syncs coalesce into one fsync.
// A Sync error is sticky: the log refuses all further writes, because a
// hole in the middle of a segment can never be acknowledged around.
func (l *Log) Sync() error {
	l.qmu.Lock()
	target := l.enqSeq
	l.qmu.Unlock()

	l.smu.Lock()
	defer l.smu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.synced >= target {
		return nil // a concurrent Sync already carried these records down
	}
	l.qmu.Lock()
	chunk := l.queue
	records, maxMark, upto := l.qRecords, l.qMaxMark, l.enqSeq
	l.queue = nil
	l.qRecords, l.qMaxMark = 0, 0
	l.qmu.Unlock()

	if l.activeInfo.bytes > 0 && l.activeInfo.bytes+int64(len(chunk)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return err
		}
	}
	if _, err := l.active.Write(chunk); err != nil {
		l.err = fmt.Errorf("oplog: append: %w", err)
		return l.err
	}
	start := time.Now()
	if err := l.active.Sync(); err != nil {
		l.err = fmt.Errorf("oplog: fsync: %w", err)
		return l.err
	}
	if l.opts.FsyncObserver != nil {
		l.opts.FsyncObserver(time.Since(start).Seconds())
	}
	l.stats.Fsyncs++
	l.stats.Records += uint64(records)
	l.stats.AppendedBytes += uint64(len(chunk))
	l.stats.BytesSinceCheckpoint += int64(len(chunk))
	l.activeInfo.bytes += int64(len(chunk))
	l.activeInfo.records += records
	if maxMark > l.activeInfo.maxMark {
		l.activeInfo.maxMark = maxMark
	}
	l.synced = upto
	return nil
}

// rotateLocked seals the active segment and starts the next one.
// Callers hold smu.
func (l *Log) rotateLocked() error {
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("oplog: fsync before rotation: %w", err)
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("oplog: sealing segment: %w", err)
	}
	l.sealed = append(l.sealed, l.activeInfo)
	next := segInfo{index: l.activeInfo.index + 1, path: l.segPath(l.activeInfo.index + 1)}
	f, err := os.OpenFile(next.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("oplog: new segment: %w", err)
	}
	l.active = f
	l.activeInfo = next
	l.stats.Rotations++
	l.stats.Segments = len(l.sealed) + 1
	syncDir(l.dir)
	return nil
}

// Checkpoint atomically persists envelope (an opaque blob — the server
// passes a marshaled core.EngineSnapshot) as the directory's
// checkpoint, rotates, and compacts away every sealed segment. The
// caller must be quiescent: no pushes in flight, so every record in the
// log is covered by the envelope. mark is the envelope's engine
// mutation mark; a sealed segment carrying records marked AFTER it
// would mean the quiescence contract was violated, and is kept (and
// reported as an error) instead of deleted.
func (l *Log) Checkpoint(envelope []byte, mark uint64) error {
	if err := l.Sync(); err != nil { // pending records precede the envelope cut
		return err
	}
	l.smu.Lock()
	defer l.smu.Unlock()
	if l.err != nil {
		return l.err
	}
	path := filepath.Join(l.dir, checkpointName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("oplog: checkpoint: %w", err)
	}
	if _, err := f.Write(envelope); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("oplog: checkpoint: %w", err)
	}
	syncDir(l.dir)

	// The envelope is durable; everything before it is redundant. Seal
	// the active segment so the whole pre-checkpoint log is compactable.
	if l.activeInfo.records > 0 {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return err
		}
	}
	var kept []segInfo
	var firstErr error
	for _, seg := range l.sealed {
		if seg.maxMark > mark {
			if firstErr == nil {
				firstErr = fmt.Errorf("oplog: segment %s carries mark %d past checkpoint mark %d — checkpoint taken without quiescing pushes?", filepath.Base(seg.path), seg.maxMark, mark)
			}
			kept = append(kept, seg)
			continue
		}
		if err := os.Remove(seg.path); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("oplog: compacting %s: %w", filepath.Base(seg.path), err)
			}
			kept = append(kept, seg)
			continue
		}
		l.stats.CompactedSegments++
	}
	l.sealed = kept
	l.stats.Segments = len(l.sealed) + 1
	l.stats.Checkpoints++
	l.stats.BytesSinceCheckpoint = 0
	syncDir(l.dir)
	return firstErr
}

// LoadCheckpoint returns the checkpoint blob, or ok=false when no
// checkpoint has ever been written.
func (l *Log) LoadCheckpoint() (blob []byte, ok bool, err error) {
	blob, err = os.ReadFile(filepath.Join(l.dir, checkpointName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("oplog: %w", err)
	}
	return blob, true, nil
}

// Replay feeds every durable record, in segment-then-line order, to fn.
// Call it after Open and before the first Enqueue (the server replays
// before it starts serving); fn errors abort the replay.
func (l *Log) Replay(fn func(Record) error) error {
	l.smu.Lock()
	segs := make([]segInfo, 0, len(l.sealed)+1)
	segs = append(segs, l.sealed...)
	segs = append(segs, l.activeInfo)
	l.smu.Unlock()
	for i := range segs {
		if segs[i].records == 0 {
			continue
		}
		// Tails were truncated at Open; any damage found now is interior.
		if err := l.scanSegment(&segs[i], false, fn); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the log's census.
func (l *Log) Stats() Stats {
	l.smu.Lock()
	defer l.smu.Unlock()
	return l.stats
}

// BytesSinceCheckpoint returns the log bytes appended since the last
// checkpoint — the server's auto-checkpoint trigger reads it per push.
func (l *Log) BytesSinceCheckpoint() int64 {
	l.smu.Lock()
	defer l.smu.Unlock()
	return l.stats.BytesSinceCheckpoint
}

// Err returns the sticky write error, if the log is poisoned.
func (l *Log) Err() error {
	l.smu.Lock()
	defer l.smu.Unlock()
	return l.err
}

// Close syncs pending records and closes the active segment. The log
// refuses writes afterwards.
func (l *Log) Close() error {
	err := l.Sync()
	l.smu.Lock()
	defer l.smu.Unlock()
	if l.active != nil {
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.active = nil
	}
	if l.err == nil {
		l.err = fmt.Errorf("oplog: log is closed")
	}
	return err
}

// syncDir fsyncs a directory so renames and unlinks inside it are
// durable. Errors are ignored: some filesystems refuse directory fsync,
// and the data-file fsyncs already carry the acknowledgement contract.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
