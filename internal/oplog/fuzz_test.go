package oplog

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzOplogReplay hammers the torn-tail recovery path: a segment with a
// known-good prefix of records gets arbitrary fuzz bytes appended (the
// crash tail), and Open + Replay must (a) never fail — tail damage is a
// normal crash artifact, not an error — and (b) always preserve the
// intact prefix verbatim. Fuzz bytes that happen to form additional
// valid records are legitimately replayed after the prefix; anything
// from the first bad line onward must be truncated.
func FuzzOplogReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(`{"op":"push","stream":"s","bag_t":3,"bag":[[1.0`))
	f.Add([]byte(`{"op":"push","stream":"t","bag_t":0,"bag":[[4,5]]}` + "\n"))
	f.Add([]byte("garbage\nmore garbage"))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(`{"op":"close","stream":""}` + "\n"))
	f.Add([]byte(`{"op":"push","stream":"s","bag_t":3,"bag":[[null]]}` + "\n"))

	prefix := []Record{
		{Op: OpPush, Stream: "s", BagT: 0, Bag: [][]float64{{1, 2}, {3, 4}}, Mark: 1},
		{Op: OpClose, Stream: "x", Mark: 1},
		{Op: OpPush, Stream: "s", BagT: 1, Bag: [][]float64{{-0.5}}, Mark: 2},
	}

	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(prefix...); err != nil {
			t.Fatal(err)
		}
		l.Close()

		seg := filepath.Join(dir, "oplog-00000001.ndjson")
		intact, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		fh, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(tail); err != nil {
			t.Fatal(err)
		}
		fh.Close()

		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open after tail %q: %v", tail, err)
		}
		var got []Record
		if err := l2.Replay(func(r Record) error {
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("Replay after tail %q: %v", tail, err)
		}
		l2.Close()

		if len(got) < len(prefix) || !reflect.DeepEqual(got[:len(prefix)], prefix) {
			t.Fatalf("prefix lost: replayed %+v, want prefix %+v", got, prefix)
		}
		// Whatever survived on disk must start with the intact prefix bytes.
		after, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(after, intact) {
			t.Fatalf("truncation ate intact records: file %d bytes, prefix %d", len(after), len(intact))
		}
	})
}
