package oplog

import (
	"encoding/base32"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// StreamStore is the disk half of the bounded detector pool: one file
// per spilled stream, holding that stream's single-stream partial
// envelope (core.EngineSnapshot via SplitByStream, marshaled by the
// caller — the store treats blobs as opaque). The filename encodes the
// stream id (base32, so arbitrary ids are filesystem-safe), which makes
// the store's census a directory listing and needs no separate index
// file to keep crash-consistent.
//
// Writes are atomic and durable (tmp + fsync + rename + dir sync): a
// spilled stream's envelope is the ONLY copy of its state once the
// checkpoint compacts its oplog records away, so a half-written spill
// file must be impossible. Safe for concurrent use.
type StreamStore struct {
	dir string

	mu  sync.Mutex
	ids map[string]bool
}

const spillSuffix = ".json"

// spillEncoding makes stream ids filesystem-safe. No padding: '=' is
// legal in filenames but ugly, and decode is unambiguous without it.
var spillEncoding = base32.StdEncoding.WithPadding(base32.NoPadding)

// maxSpillID bounds the encodable stream id length: base32 expands 8/5
// and filenames cap at 255 bytes on common filesystems. Ids beyond it
// cannot spill (the server keeps them resident and says why).
const maxSpillID = 150

// OpenStreamStore opens (creating if needed) a spill directory and
// indexes the streams already spilled there.
func OpenStreamStore(dir string) (*StreamStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("oplog: stream store: %w", err)
	}
	s := &StreamStore{dir: dir, ids: make(map[string]bool)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("oplog: stream store: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if !ent.Type().IsRegular() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			// A spill that died before its rename; the stream was still
			// resident (files replace their stream only after a durable
			// rename), so the remnant is garbage.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		enc, ok := strings.CutSuffix(name, spillSuffix)
		if !ok {
			continue
		}
		raw, err := spillEncoding.DecodeString(enc)
		if err != nil {
			return nil, fmt.Errorf("oplog: stream store: undecodable spill file %q", name)
		}
		s.ids[string(raw)] = true
	}
	return s, nil
}

func (s *StreamStore) path(id string) string {
	return filepath.Join(s.dir, spillEncoding.EncodeToString([]byte(id))+spillSuffix)
}

// Put durably stores blob as stream id's spilled envelope, replacing
// any previous spill of the id.
func (s *StreamStore) Put(id string, blob []byte) error {
	if id == "" {
		return fmt.Errorf("oplog: stream store: empty stream id")
	}
	if len(id) > maxSpillID {
		return fmt.Errorf("oplog: stream store: id %q is %d bytes, spill supports at most %d", id, len(id), maxSpillID)
	}
	path := s.path(id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("oplog: stream store: %w", err)
	}
	if _, err = f.Write(blob); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("oplog: stream store: spill %q: %w", id, err)
	}
	syncDir(s.dir)
	s.mu.Lock()
	s.ids[id] = true
	s.mu.Unlock()
	return nil
}

// Get returns stream id's spilled envelope blob; ok=false when the
// stream is not spilled.
func (s *StreamStore) Get(id string) ([]byte, bool, error) {
	s.mu.Lock()
	known := s.ids[id]
	s.mu.Unlock()
	if !known {
		return nil, false, nil
	}
	blob, err := os.ReadFile(s.path(id))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("oplog: stream store: read %q: %w", id, err)
	}
	return blob, true, nil
}

// Has reports whether stream id is spilled.
func (s *StreamStore) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ids[id]
}

// Delete removes stream id's spill file (after a fault-in, or when the
// live engine's state supersedes it). Missing files are not an error.
func (s *StreamStore) Delete(id string) error {
	err := os.Remove(s.path(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("oplog: stream store: delete %q: %w", id, err)
	}
	syncDir(s.dir)
	s.mu.Lock()
	delete(s.ids, id)
	s.mu.Unlock()
	return nil
}

// Len returns the number of spilled streams.
func (s *StreamStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ids)
}

// IDs returns the spilled stream ids (unordered).
func (s *StreamStore) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.ids))
	for id := range s.ids {
		out = append(out, id)
	}
	return out
}
