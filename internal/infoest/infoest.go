// Package infoest implements the distance-based information estimators
// for weighted data of Hino & Murata ("Information estimators for
// weighted observations", Neural Networks 46, 2013) used in §3.3 of the
// paper, together with the two change-point scores built from them
// (Eq. 16 and Eq. 17).
//
// All estimators are pure functions of a pairwise log-distance matrix and
// weight vectors. This factoring is what makes the Bayesian bootstrap of
// §4 cheap: the log-EMD matrix of a window is computed once, and each
// bootstrap replicate only re-mixes it with fresh Dirichlet weights.
//
// The estimators carry an additive constant c and a multiplicative
// effective dimension d (see the paper's discussion after the estimator
// definitions). Both change-point scores are differences of estimators,
// in which c cancels and d is a common positive scale, so the package
// fixes c = 0 and d = 1.
package infoest

import (
	"fmt"
	"math"
)

// DefaultFloor is the smallest distance fed into log: distances below it
// are clamped so coincident signatures do not produce -Inf terms. The
// value is far below any distance arising from the experiments while
// keeping log bounded.
const DefaultFloor = 1e-12

// ClampLog returns log(max(d, floor)); a non-positive floor selects
// DefaultFloor.
func ClampLog(d, floor float64) float64 {
	if floor <= 0 {
		floor = DefaultFloor
	}
	if d < floor {
		d = floor
	}
	return math.Log(d)
}

// Information estimates the information content −log p(x) (up to the
// affine constants fixed to c=0, d=1) of an item x with respect to a
// weighted reference set, given the log-distances from every reference
// item to x and the reference weights γ (non-negative, summing to 1):
//
//	I(x; S') = Σ_j γ'_j · log d(S'_j, x)
func Information(logDistToX, gamma []float64) float64 {
	if len(logDistToX) != len(gamma) {
		panic(fmt.Sprintf("infoest: Information length mismatch %d != %d", len(logDistToX), len(gamma)))
	}
	s := 0.0
	for j, g := range gamma {
		if g == 0 {
			continue
		}
		s += g * logDistToX[j]
	}
	return s
}

// AutoEntropy estimates the entropy of a weighted set from its pairwise
// log-distance matrix (logD[i][j] = log d(S_i, S_j), diagonal ignored):
//
//	H(S) = Σ_i Σ_{j≠i} γ_i γ_j / (1 − γ_i) · log d(S_i, S_j)
//
// The 1/(1−γ_i) factor is the leave-one-out renormalization of the
// weights. Entries with γ_i = 1 (a set concentrated on one item) have no
// leave-one-out distribution and contribute zero.
func AutoEntropy(logD [][]float64, gamma []float64) float64 {
	n := len(gamma)
	if len(logD) != n {
		panic(fmt.Sprintf("infoest: AutoEntropy matrix has %d rows, want %d", len(logD), n))
	}
	h := 0.0
	for i := 0; i < n; i++ {
		gi := gamma[i]
		if gi == 0 || gi >= 1 {
			continue
		}
		row := logD[i]
		if len(row) != n {
			panic(fmt.Sprintf("infoest: AutoEntropy row %d has %d cols, want %d", i, len(row), n))
		}
		scale := gi / (1 - gi)
		for j := 0; j < n; j++ {
			if j == i || gamma[j] == 0 {
				continue
			}
			h += scale * gamma[j] * row[j]
		}
	}
	return h
}

// CrossEntropy estimates the cross entropy between two weighted sets from
// the rectangular log-distance matrix logD[i][j] = log d(A_i, B_j):
//
//	H(A, B) = Σ_i Σ_j γA_i γB_j · log d(A_i, B_j)
func CrossEntropy(logD [][]float64, gammaA, gammaB []float64) float64 {
	if len(logD) != len(gammaA) {
		panic(fmt.Sprintf("infoest: CrossEntropy matrix has %d rows, want %d", len(logD), len(gammaA)))
	}
	h := 0.0
	for i, ga := range gammaA {
		if ga == 0 {
			continue
		}
		row := logD[i]
		if len(row) != len(gammaB) {
			panic(fmt.Sprintf("infoest: CrossEntropy row %d has %d cols, want %d", i, len(row), len(gammaB)))
		}
		for j, gb := range gammaB {
			if gb == 0 {
				continue
			}
			h += ga * gb * row[j]
		}
	}
	return h
}

// Window is a view of one inspection point's data: the symmetric
// log-distance matrix over the τ reference signatures followed by the τ′
// test signatures, in time order. LogD must be (NRef+NTest)² with
// LogD[i][j] = log d(S_i, S_j); the diagonal is ignored.
type Window struct {
	LogD  [][]float64
	NRef  int
	NTest int
}

// Validate checks the window's structural invariants.
func (w Window) Validate() error {
	n := w.NRef + w.NTest
	if w.NRef < 1 || w.NTest < 1 {
		return fmt.Errorf("infoest: window needs at least one reference and one test signature, got %d/%d", w.NRef, w.NTest)
	}
	if len(w.LogD) != n {
		return fmt.Errorf("infoest: window matrix has %d rows, want %d", len(w.LogD), n)
	}
	for i, row := range w.LogD {
		if len(row) != n {
			return fmt.Errorf("infoest: window row %d has %d cols, want %d", i, len(row), n)
		}
	}
	return nil
}

// ScoreLR computes the log-likelihood-ratio change-point score of Eq. 16
// at the inspection point, which is the FIRST element of the test set:
//
//	scoreLR(S_t) = I(S_t; S_ref) − I(S_t; S_test \ S_t)
//
// gRef and gTest are the weight vectors γ of the reference and test sets
// (each non-negative, summing to 1). The test set must contain at least
// two signatures so that S_test \ S_t is non-empty; the leave-one-out
// weights are renormalized by 1/(1−γ_t).
func ScoreLR(w Window, gRef, gTest []float64) float64 {
	if len(gRef) != w.NRef || len(gTest) != w.NTest {
		panic(fmt.Sprintf("infoest: ScoreLR weight lengths %d/%d, want %d/%d", len(gRef), len(gTest), w.NRef, w.NTest))
	}
	if w.NTest < 2 {
		panic("infoest: ScoreLR requires at least two test signatures")
	}
	tIdx := w.NRef // inspection point: first test signature
	// I(S_t; S_ref)
	iRef := 0.0
	for i := 0; i < w.NRef; i++ {
		if gRef[i] == 0 {
			continue
		}
		iRef += gRef[i] * w.LogD[i][tIdx]
	}
	// I(S_t; S_test \ S_t) with leave-one-out renormalization.
	gt := gTest[0]
	if gt >= 1 {
		// Degenerate: all test mass on the inspection point. The
		// leave-one-out distribution is undefined; fall back to uniform
		// over the remaining test points.
		iTest := 0.0
		for j := 1; j < w.NTest; j++ {
			iTest += w.LogD[w.NRef+j][tIdx]
		}
		return iRef - iTest/float64(w.NTest-1)
	}
	iTest := 0.0
	for j := 1; j < w.NTest; j++ {
		if gTest[j] == 0 {
			continue
		}
		iTest += gTest[j] / (1 - gt) * w.LogD[w.NRef+j][tIdx]
	}
	return iRef - iTest
}

// ScoreKL computes the symmetrized-KL change-point score of Eq. 17:
//
//	scoreKL = (D_KL(S_ref‖S_test) + D_KL(S_test‖S_ref)) / 2
//	        = H(S_ref, S_test) − (H(S_ref) + H(S_test)) / 2
//
// using the cross- and auto-entropy estimators above (the cross-entropy
// estimator is symmetric in its arguments because the underlying distance
// is, so the two cross terms coincide).
func ScoreKL(w Window, gRef, gTest []float64) float64 {
	if len(gRef) != w.NRef || len(gTest) != w.NTest {
		panic(fmt.Sprintf("infoest: ScoreKL weight lengths %d/%d, want %d/%d", len(gRef), len(gTest), w.NRef, w.NTest))
	}
	cross := 0.0
	for i := 0; i < w.NRef; i++ {
		gi := gRef[i]
		if gi == 0 {
			continue
		}
		row := w.LogD[i]
		for j := 0; j < w.NTest; j++ {
			if gTest[j] == 0 {
				continue
			}
			cross += gi * gTest[j] * row[w.NRef+j]
		}
	}
	// Auto entropies over the two diagonal blocks.
	hRef := 0.0
	for i := 0; i < w.NRef; i++ {
		gi := gRef[i]
		if gi == 0 || gi >= 1 {
			continue
		}
		scale := gi / (1 - gi)
		row := w.LogD[i]
		for j := 0; j < w.NRef; j++ {
			if j == i || gRef[j] == 0 {
				continue
			}
			hRef += scale * gRef[j] * row[j]
		}
	}
	hTest := 0.0
	for i := 0; i < w.NTest; i++ {
		gi := gTest[i]
		if gi == 0 || gi >= 1 {
			continue
		}
		scale := gi / (1 - gi)
		row := w.LogD[w.NRef+i]
		for j := 0; j < w.NTest; j++ {
			if j == i || gTest[j] == 0 {
				continue
			}
			hTest += scale * gTest[j] * row[w.NRef+j]
		}
	}
	return cross - (hRef+hTest)/2
}

// UniformWeights returns the equal-weight vector (1/n, …, 1/n).
func UniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// DiscountedRefWeights returns reference weights γ_i ∝ 1/|t−i| (Eq. 15):
// the reference signatures are at times t−τ … t−1 relative to the
// inspection point t, so the most recent one gets the largest weight.
// Index 0 is the oldest reference signature.
func DiscountedRefWeights(tau int) []float64 {
	w := make([]float64, tau)
	total := 0.0
	for i := 0; i < tau; i++ {
		// Signature i sits at time t−τ+i, so |t − (t−τ+i)| = τ−i.
		w[i] = 1 / float64(tau-i)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// DiscountedTestWeights returns test weights γ_i ∝ 1/|t−i+1| for the test
// signatures at times t … t+τ′−1 (Eq. 15): the inspection point itself
// gets the largest weight. Index 0 is the inspection point.
func DiscountedTestWeights(tauPrime int) []float64 {
	w := make([]float64, tauPrime)
	total := 0.0
	for i := 0; i < tauPrime; i++ {
		// Signature i sits at time t+i, so |t − (t+i) + 1|... the paper's
		// convention makes the weight decay with forward distance: 1/(i+1).
		w[i] = 1 / float64(i+1)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}
