package infoest

import (
	"math"
	"testing"

	"repro/internal/randx"
)

func TestClampLog(t *testing.T) {
	if got := ClampLog(math.E, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("ClampLog(e) = %g, want 1", got)
	}
	if got := ClampLog(0, 0); got != math.Log(DefaultFloor) {
		t.Errorf("ClampLog(0) = %g, want log(floor)", got)
	}
	if got := ClampLog(1e-3, 1e-2); got != math.Log(1e-2) {
		t.Errorf("custom floor ignored: %g", got)
	}
}

func TestInformationKnown(t *testing.T) {
	// I = 0.5*log(2) + 0.5*log(8) = 0.5*(log 16) = 2 log 2.
	logs := []float64{math.Log(2), math.Log(8)}
	gamma := []float64{0.5, 0.5}
	got := Information(logs, gamma)
	want := 2 * math.Log(2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Information = %g, want %g", got, want)
	}
}

func TestInformationZeroWeightSkipsInf(t *testing.T) {
	logs := []float64{math.Inf(-1), 0}
	gamma := []float64{0, 1}
	if got := Information(logs, gamma); got != 0 {
		t.Errorf("zero-weight -Inf term leaked: %g", got)
	}
}

func TestInformationPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Information([]float64{1}, []float64{0.5, 0.5})
}

func TestAutoEntropyKnownTwoPoints(t *testing.T) {
	// Two items with distance e, uniform weights: each i contributes
	// (0.5/(0.5))·0.5·1 = 0.5, total = 1.
	l := math.Log(math.E)
	logD := [][]float64{{0, l}, {l, 0}}
	got := AutoEntropy(logD, []float64{0.5, 0.5})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("AutoEntropy = %g, want 1", got)
	}
}

func TestAutoEntropyDegenerateWeight(t *testing.T) {
	// γ_i = 1 has no leave-one-out distribution: contribution is zero.
	logD := [][]float64{{0, 5}, {5, 0}}
	if got := AutoEntropy(logD, []float64{1, 0}); got != 0 {
		t.Errorf("AutoEntropy with degenerate weight = %g, want 0", got)
	}
}

func TestCrossEntropyKnown(t *testing.T) {
	// H(A,B) = Σ γa γb log d. With uniform weights this is the mean log
	// distance.
	logD := [][]float64{
		{math.Log(1), math.Log(2)},
		{math.Log(4), math.Log(8)},
	}
	got := CrossEntropy(logD, []float64{0.5, 0.5}, []float64{0.5, 0.5})
	want := (0 + math.Log(2) + math.Log(4) + math.Log(8)) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("CrossEntropy = %g, want %g", got, want)
	}
}

func TestEntropyOrderingForGaussians(t *testing.T) {
	// Statistical sanity: the auto-entropy estimator must rank a wide
	// Gaussian sample above a narrow one (H ≈ c + log σ in 1-D).
	rng := randx.New(1)
	build := func(sigma float64) ([][]float64, []float64) {
		const n = 60
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Normal(0, sigma)
		}
		logD := make([][]float64, n)
		for i := range logD {
			logD[i] = make([]float64, n)
			for j := range logD[i] {
				if i != j {
					logD[i][j] = ClampLog(math.Abs(xs[i]-xs[j]), 0)
				}
			}
		}
		return logD, UniformWeights(n)
	}
	narrowD, narrowG := build(1)
	wideD, wideG := build(10)
	hNarrow := AutoEntropy(narrowD, narrowG)
	hWide := AutoEntropy(wideD, wideG)
	if hWide <= hNarrow {
		t.Errorf("entropy ordering violated: wide %g <= narrow %g", hWide, hNarrow)
	}
	// The theoretical gap is log(10); the estimator should be in the
	// right ballpark.
	if gap := hWide - hNarrow; math.Abs(gap-math.Log(10)) > 1.0 {
		t.Errorf("entropy gap = %g, want ≈ %g", gap, math.Log(10))
	}
}

// makeWindow builds a window from 1-D "signature positions": the log
// distance is log|x_i − x_j| clamped.
func makeWindow(ref, test []float64) Window {
	all := append(append([]float64{}, ref...), test...)
	n := len(all)
	logD := make([][]float64, n)
	for i := range logD {
		logD[i] = make([]float64, n)
		for j := range logD[i] {
			if i != j {
				logD[i][j] = ClampLog(math.Abs(all[i]-all[j]), 0)
			}
		}
	}
	return Window{LogD: logD, NRef: len(ref), NTest: len(test)}
}

func TestWindowValidate(t *testing.T) {
	w := makeWindow([]float64{0, 1}, []float64{2, 3})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Window{LogD: w.LogD, NRef: 0, NTest: 4}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for NRef=0")
	}
	bad2 := Window{LogD: w.LogD[:3], NRef: 2, NTest: 2}
	if err := bad2.Validate(); err == nil {
		t.Error("expected error for short matrix")
	}
}

func TestScoreLRDetectsShift(t *testing.T) {
	// Reference clustered near 0; test clustered near 10. The inspection
	// point (first test element) is far from the reference and close to
	// the rest of the test set, so scoreLR must be strongly positive.
	w := makeWindow([]float64{0, 0.1, -0.1, 0.05}, []float64{10, 10.1, 9.9, 10.05})
	gRef := UniformWeights(4)
	gTest := UniformWeights(4)
	shifted := ScoreLR(w, gRef, gTest)

	// Homogeneous case: everything near 0 → score near 0.
	w0 := makeWindow([]float64{0, 0.1, -0.1, 0.05}, []float64{0.02, 0.08, -0.06, 0.01})
	flat := ScoreLR(w0, gRef, gTest)
	if shifted <= flat+1 {
		t.Errorf("scoreLR shifted=%g flat=%g: shift not detected", shifted, flat)
	}
}

func TestScoreKLDetectsShift(t *testing.T) {
	w := makeWindow([]float64{0, 0.1, -0.1, 0.05}, []float64{10, 10.1, 9.9, 10.05})
	gRef := UniformWeights(4)
	gTest := UniformWeights(4)
	shifted := ScoreKL(w, gRef, gTest)

	w0 := makeWindow([]float64{0, 0.1, -0.1, 0.05}, []float64{0.02, 0.08, -0.06, 0.01})
	flat := ScoreKL(w0, gRef, gTest)
	if shifted <= flat+1 {
		t.Errorf("scoreKL shifted=%g flat=%g: shift not detected", shifted, flat)
	}
}

func TestScoreKLSymmetryInRefTest(t *testing.T) {
	// Swapping reference and test must not change scoreKL (both terms of
	// the symmetrized divergence swap roles).
	rng := randx.New(2)
	for trial := 0; trial < 50; trial++ {
		nR, nT := 2+rng.Intn(4), 2+rng.Intn(4)
		ref := make([]float64, nR)
		test := make([]float64, nT)
		for i := range ref {
			ref[i] = rng.Normal(0, 1)
		}
		for i := range test {
			test[i] = rng.Normal(1, 2)
		}
		w := makeWindow(ref, test)
		wSwap := makeWindow(test, ref)
		gR, gT := UniformWeights(nR), UniformWeights(nT)
		a := ScoreKL(w, gR, gT)
		b := ScoreKL(wSwap, gT, gR)
		if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
			t.Fatalf("trial %d: scoreKL not symmetric: %g vs %g", trial, a, b)
		}
	}
}

func TestScoreLRRequiresTwoTestPoints(t *testing.T) {
	w := makeWindow([]float64{0, 1}, []float64{2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for τ'=1")
		}
	}()
	ScoreLR(w, UniformWeights(2), UniformWeights(1))
}

func TestScoreLRDegenerateTestWeight(t *testing.T) {
	// All test mass on the inspection point: falls back to uniform
	// leave-one-out; must not panic or return NaN.
	w := makeWindow([]float64{0, 0.1}, []float64{5, 5.1, 4.9})
	got := ScoreLR(w, UniformWeights(2), []float64{1, 0, 0})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("degenerate weights produced %g", got)
	}
}

func TestScoresWithZeroWeights(t *testing.T) {
	// Zero weights drop terms; equivalent to removing those items. Using
	// a window with an extreme outlier in the reference that has zero
	// weight: scores must match the window without it.
	wFull := makeWindow([]float64{0, 0.1, 1000}, []float64{5, 5.1})
	gRefZero := []float64{0.5, 0.5, 0}
	gTest := UniformWeights(2)
	a := ScoreKL(wFull, gRefZero, gTest)

	wTrim := makeWindow([]float64{0, 0.1}, []float64{5, 5.1})
	b := ScoreKL(wTrim, UniformWeights(2), gTest)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("zero-weighted outlier affected scoreKL: %g vs %g", a, b)
	}

	aLR := ScoreLR(wFull, gRefZero, gTest)
	bLR := ScoreLR(wTrim, UniformWeights(2), gTest)
	if math.Abs(aLR-bLR) > 1e-9 {
		t.Errorf("zero-weighted outlier affected scoreLR: %g vs %g", aLR, bLR)
	}
}

func TestUniformWeights(t *testing.T) {
	w := UniformWeights(4)
	for _, v := range w {
		if v != 0.25 {
			t.Fatalf("UniformWeights = %v", w)
		}
	}
}

func TestDiscountedWeights(t *testing.T) {
	ref := DiscountedRefWeights(3)
	// Raw: 1/3, 1/2, 1/1 → most recent (index 2) largest.
	if !(ref[2] > ref[1] && ref[1] > ref[0]) {
		t.Errorf("ref discounting not increasing toward t: %v", ref)
	}
	if math.Abs(ref[0]+ref[1]+ref[2]-1) > 1e-12 {
		t.Errorf("ref weights do not sum to 1: %v", ref)
	}
	test := DiscountedTestWeights(3)
	// Raw: 1/1, 1/2, 1/3 → inspection point (index 0) largest.
	if !(test[0] > test[1] && test[1] > test[2]) {
		t.Errorf("test discounting not decreasing from t: %v", test)
	}
	if math.Abs(test[0]+test[1]+test[2]-1) > 1e-12 {
		t.Errorf("test weights do not sum to 1: %v", test)
	}
}

func TestScoreUniformVsExplicitWeightsAgree(t *testing.T) {
	rng := randx.New(3)
	ref := []float64{rng.Normal(0, 1), rng.Normal(0, 1), rng.Normal(0, 1)}
	test := []float64{rng.Normal(2, 1), rng.Normal(2, 1), rng.Normal(2, 1)}
	w := makeWindow(ref, test)
	a := ScoreKL(w, UniformWeights(3), UniformWeights(3))
	explicit := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	b := ScoreKL(w, explicit, explicit)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("uniform vs explicit weights disagree: %g vs %g", a, b)
	}
}
