package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsConformance is the strict exposition-format check on a
// live server's /metrics: every family has HELP/TYPE before its first
// sample, no duplicate series, histogram buckets are monotone and the
// +Inf bucket equals _count. The router test runs the same checker on
// its aggregated exposition.
func TestMetricsConformance(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for step := 0; step < 8; step++ {
		doPush(t, ts, pushBody(step, "s1", "s2"))
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if errs := obs.Lint(bytes.NewReader(body)); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("server /metrics fails exposition conformance:\n%s", body)
	}
	// The stage histograms must be present and labeled by statistic.
	if !strings.Contains(string(body), `bagcpd_push_stage_seconds_count{stage="emd",statistic="kl"}`) {
		t.Errorf("missing stage histogram series in:\n%s", body)
	}
}

// TestPushTraceEcho: a push carrying the trace header gets the trace
// echoed in every NDJSON result row and the response header; a push
// without it carries no trace field (preserving the pre-trace wire
// bytes for direct clients).
func TestPushTraceEcho(t *testing.T) {
	_, ts := newTestServer(t, nil)

	req, err := http.NewRequest("POST", ts.URL+"/v1/push", strings.NewReader(pushBody(0, "tr")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, "deadbeef01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "deadbeef01" {
		t.Errorf("response trace header = %q, want deadbeef01", got)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if !strings.Contains(sc.Text(), `"trace":"deadbeef01"`) {
			t.Errorf("row missing trace: %s", sc.Text())
		}
	}

	resp2, err := http.Post(ts.URL+"/v1/push", "application/x-ndjson", strings.NewReader(pushBody(1, "tr")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(body), `"trace"`) {
		t.Errorf("traceless push grew a trace field: %s", body)
	}
}

// TestSlowPushLogged: batches at or above the SlowPush threshold emit a
// structured warn record carrying the trace ID; with a frozen clock
// (every batch measures 0s) nothing is logged.
func TestSlowPushLogged(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	clock := &testClock{t: time.Unix(1000, 0)}
	_, frozen := newTestServer(t, func(c *Config) {
		c.Logger = logger
		c.SlowPush = time.Nanosecond
		c.Now = clock.Now
	})
	doPush(t, frozen, pushBody(0, "sl"))
	if strings.Contains(buf.String(), "slow push batch") {
		t.Fatalf("0-duration batch logged as slow: %s", buf.String())
	}

	buf.Reset()
	_, ts := newTestServer(t, func(c *Config) {
		c.Logger = logger
		c.SlowPush = time.Nanosecond // real clock: every batch trips it
	})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/push", strings.NewReader(pushBody(0, "sl")))
	req.Header.Set(TraceHeader, "feedface02")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	out := buf.String()
	if !strings.Contains(out, `"msg":"slow push batch"`) {
		t.Fatalf("no slow-batch record in: %s", out)
	}
	if !strings.Contains(out, `"trace":"feedface02"`) {
		t.Fatalf("slow-batch record missing trace in: %s", out)
	}
}

// TestStreamStatsEndpoint: GET /v1/streams/{id}/stats reports the bag
// clock, window occupancy, last inspection and per-stage cumulative
// costs for a live stream, and 404s for unknown ones.
func TestStreamStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for step := 0; step < 8; step++ {
		doPush(t, ts, pushBody(step, "st"))
	}
	resp, err := http.Get(ts.URL + "/v1/streams/st/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("stats status %d: %s", resp.StatusCode, msg)
	}
	var row streamStatsRow
	if err := json.NewDecoder(resp.Body).Decode(&row); err != nil {
		t.Fatal(err)
	}
	if row.Stream != "st" || row.Bags != 8 {
		t.Errorf("stats stream/bags = %q/%d, want st/8", row.Stream, row.Bags)
	}
	if row.WindowSize != 6 || row.WindowFill != 6 {
		t.Errorf("window = %d/%d, want 6/6", row.WindowFill, row.WindowSize)
	}
	if row.Last == nil {
		t.Fatal("stats missing last inspection")
	}
	// 8 bags with τ=τ′=3: last inspection at t = 8 − 3 = 5.
	if row.Last.T != 5 {
		t.Errorf("last.T = %d, want 5", row.Last.T)
	}
	if row.DirtyMark == 0 {
		t.Error("dirty mark is 0 after pushes")
	}
	// The engine is instrumented by the server, so stage totals are live.
	var emdSeen bool
	for _, sg := range row.Stages {
		if sg.Stage == "emd" {
			emdSeen = true
			if sg.Count != 8 {
				t.Errorf("emd stage count = %d, want 8", sg.Count)
			}
		}
	}
	if !emdSeen {
		t.Error("stats missing emd stage total")
	}

	resp404, err := http.Get(ts.URL + "/v1/streams/nope/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stream stats status = %d, want 404", resp404.StatusCode)
	}
}
