package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServerIngest measures the full HTTP ingest path: one NDJSON
// batch of 32 streams × 4 bags per request, through parse → engine
// fan-out → NDJSON response. Streams are warm (windows full), so every
// bag pays the steady-state cost: τ+τ′−1 EMDs plus a bootstrap interval.
func BenchmarkServerIngest(b *testing.B) {
	const streams, bagsPerStream = 32, 4
	srv, err := New(Config{Engine: testEngine(b)})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%02d", i)
	}
	body := func(step int) string {
		var sb strings.Builder
		for r := 0; r < bagsPerStream; r++ {
			sb.WriteString(pushBody(step+r, ids...))
		}
		return sb.String()
	}
	// Warm every stream past its window so the benchmark measures the
	// scoring regime, not the fill phase.
	for step := 0; step < 8; step += bagsPerStream {
		if _, err := http.Post(ts.URL+"/v1/push", "application/x-ndjson", strings.NewReader(body(step))); err != nil {
			b.Fatal(err)
		}
	}

	bodies := make([]string, 8)
	for i := range bodies {
		bodies[i] = body(8 + i*bagsPerStream)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/push", "application/x-ndjson", strings.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	bags := float64(streams * bagsPerStream)
	b.ReportMetric(bags*float64(b.N)/b.Elapsed().Seconds(), "bags/s")
}
