package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/bootstrap"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/signature"
)

// newestSegment returns the highest-indexed oplog segment in dir.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "oplog-*.ndjson"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no oplog segments in %s (%v)", dir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// scoredEqual fails unless two response rows agree on everything a
// client consumes.
func scoredEqual(t *testing.T, tag string, got, want resultRow) {
	t.Helper()
	if got.Stream != want.Stream || got.BagT != want.BagT || got.Pending != want.Pending ||
		got.Error != want.Error || got.Alarm != want.Alarm {
		t.Fatalf("%s: row %+v != reference %+v", tag, got, want)
	}
	eqF := func(a, b *float64) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		return a == nil || *a == *b
	}
	eqI := func(a, b *int) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		return a == nil || *a == *b
	}
	if !eqI(got.T, want.T) || !eqF(got.Score, want.Score) || !eqF(got.Lo, want.Lo) ||
		!eqF(got.Up, want.Up) || !eqF(got.Kappa, want.Kappa) {
		t.Fatalf("%s: scored row %+v != reference %+v", tag, got, want)
	}
}

// TestOplogRecoverTornTail is the in-process crash drill: server A
// acknowledges pushes into an oplog, is abandoned without a checkpoint,
// the newest segment gets a torn tail appended (the crash artifact),
// and server B recovering the same directory — with a fresh engine —
// must continue every stream bit-identically to a server that never
// stopped. A checkpoint mid-way exercises the envelope + suffix path.
func TestOplogRecoverTornTail(t *testing.T) {
	ids := []string{"d-0", "d-1", "d-2"}
	const steps, ckptAt, cut = 14, 4, 9

	_, refTS := newTestServer(t, nil)
	var want [][]resultRow
	for step := 0; step < steps; step++ {
		want = append(want, doPush(t, refTS, pushBody(step, ids...)))
	}

	dir := t.TempDir()
	srvA, tsA := newTestServer(t, func(c *Config) { c.OplogDir = dir })
	for step := 0; step < cut; step++ {
		rows := doPush(t, tsA, pushBody(step, ids...))
		for i := range rows {
			scoredEqual(t, fmt.Sprintf("A step %d row %d", step, i), rows[i], want[step][i])
		}
		if step == ckptAt {
			if err := srvA.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	// "Crash": drop A without a drain checkpoint. Close the log so B can
	// own the files; every acknowledged row is already fsynced, so this
	// adds no durability a real SIGKILL wouldn't have had.
	tsA.Close()
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(newestSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"push","stream":"d-0","bag_t":9,"bag":[[0.1`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srvB, tsB := newTestServer(t, func(c *Config) { c.OplogDir = dir })
	if n := srvB.eng.Len(); n != len(ids) {
		t.Fatalf("recovered %d streams, want %d", n, len(ids))
	}
	// The torn row was never acknowledged: d-0's clock must sit at cut,
	// so the client's retry of step `cut` gets the same label again.
	rows := doPush(t, tsB, pushBody(cut, ids...))
	for i := range rows {
		scoredEqual(t, fmt.Sprintf("B step %d row %d", cut, i), rows[i], want[cut][i])
	}
	for step := cut + 1; step < steps; step++ {
		rows := doPush(t, tsB, pushBody(step, ids...))
		for i := range rows {
			scoredEqual(t, fmt.Sprintf("B step %d row %d", step, i), rows[i], want[step][i])
		}
	}
}

// poolFactories are the five builder families the spill path must
// round-trip: a spilled-and-faulted stream re-enters scoring through
// its serialized envelope, so any signature state the envelope drops
// would surface here as a score divergence.
var poolFactories = map[string]signature.BuilderFactory{
	"kmeans":   signature.KMeansFactory(4, cluster.Config{}),
	"kmedoids": signature.KMedoidsFactory(4, cluster.Config{}),
	"online":   signature.OnlineFactory(4, 0.1),
	"hist":     signature.HistogramFactory(-6, 9, 24),
	"grid":     signature.GridFactory([]float64{-6}, []float64{9}, 24),
}

func factoryEngine(t testing.TB, f signature.BuilderFactory) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.EngineConfig{
		Template: core.Config{
			Tau: 3, TauPrime: 3,
			Bootstrap: bootstrap.Config{Replicates: 150},
		},
		Factory: f,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestSpillPoolBitIdentity: M streams through a pool bounded at P ≪ M
// must score bit-identically to an unbounded server, for every builder
// family, while resident streams never exceed P and the spill/fault-in
// counters prove streams actually paged through disk.
func TestSpillPoolBitIdentity(t *testing.T) {
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("p-%d", i)
	}
	const steps, bound = 11, 3

	for name, factory := range poolFactories {
		t.Run(name, func(t *testing.T) {
			_, refTS := newTestServer(t, func(c *Config) { c.Engine = factoryEngine(t, factory) })
			want := make(map[string][]resultRow)
			for step := 0; step < steps; step++ {
				for _, id := range ids {
					rows := doPush(t, refTS, pushBody(step, id))
					want[id] = append(want[id], rows[0])
				}
			}

			srv, ts := newTestServer(t, func(c *Config) {
				c.Engine = factoryEngine(t, factory)
				c.SpillDir = t.TempDir()
				c.MaxResident = bound
			})
			for step := 0; step < steps; step++ {
				for _, id := range ids {
					rows := doPush(t, ts, pushBody(step, id))
					scoredEqual(t, fmt.Sprintf("%s %s step %d", name, id, step), rows[0], want[id][step])
				}
			}
			if peak := srv.poolPeak.Load(); peak > bound {
				t.Fatalf("resident peak %d exceeded pool bound %d", peak, bound)
			}
			if srv.met.spills.Value() == 0 || srv.met.faultins.Value() == 0 {
				t.Fatalf("pool never paged: spills=%d faultins=%d",
					srv.met.spills.Value(), srv.met.faultins.Value())
			}
			if srv.met.spillErrors.Value() != 0 {
				t.Fatalf("spill errors: %d", srv.met.spillErrors.Value())
			}
		})
	}
}

// TestEvictSpillContinuation is the eviction bugfix headline: an idle
// stream evicted in spill mode is NOT lost — its next push faults the
// envelope back in and scoring continues exactly where it left off.
func TestEvictSpillContinuation(t *testing.T) {
	clock := &testClock{t: time.Unix(1000, 0)}
	const steps, cut = 12, 6
	id := "evicted"

	_, refTS := newTestServer(t, nil)
	var want []resultRow
	for step := 0; step < steps; step++ {
		want = append(want, doPush(t, refTS, pushBody(step, id))[0])
	}

	srv, ts := newTestServer(t, func(c *Config) {
		c.SpillDir = t.TempDir()
		c.Now = clock.Now
	})
	for step := 0; step < cut; step++ {
		rows := doPush(t, ts, pushBody(step, id))
		scoredEqual(t, fmt.Sprintf("pre-evict step %d", step), rows[0], want[step])
	}
	clock.Advance(time.Hour)
	evicted := srv.EvictIdle(30 * time.Minute)
	if len(evicted) != 1 || evicted[0] != id {
		t.Fatalf("EvictIdle = %v, want [%s]", evicted, id)
	}
	if srv.eng.Len() != 0 {
		t.Fatalf("stream still resident after spill eviction")
	}
	if !srv.spill.Has(id) {
		t.Fatal("spill store does not hold the evicted stream")
	}
	for step := cut; step < steps; step++ {
		rows := doPush(t, ts, pushBody(step, id))
		scoredEqual(t, fmt.Sprintf("post-evict step %d", step), rows[0], want[step])
	}
	if srv.met.faultins.Value() != 1 {
		t.Fatalf("faultins = %d, want 1", srv.met.faultins.Value())
	}
	if srv.spill.Has(id) {
		t.Fatal("spill file survived the fault-in")
	}
}

// TestEvictSweepRace: the sweep must not hold the phase lock across the
// whole candidate set, and a stream pushed between the census and its
// batch keeps its state. EvictBatch=1 makes every candidate its own
// batch; the sweepPause hook pushes to a later candidate in the
// lock-free window between batches.
func TestEvictSweepRace(t *testing.T) {
	clock := &testClock{t: time.Unix(1000, 0)}
	srv, ts := newTestServer(t, func(c *Config) {
		c.Now = clock.Now
		c.EvictBatch = 1
	})
	ids := []string{"r-a", "r-b", "r-c"}
	for step := 0; step < 2; step++ {
		doPush(t, ts, pushBody(step, ids...))
	}
	clock.Advance(time.Hour)

	pushed := false
	srv.sweepPause = func() {
		if pushed {
			return
		}
		pushed = true
		// Between batches no locks are held: this push must neither
		// deadlock nor be torn down by the batches that follow it.
		doPush(t, ts, pushBody(2, "r-c"))
	}
	evicted := srv.EvictIdle(30 * time.Minute)
	if !pushed {
		t.Fatal("sweepPause never ran — sweep was not batched")
	}
	wantEvicted := []string{"r-a", "r-b"}
	if len(evicted) != len(wantEvicted) || evicted[0] != wantEvicted[0] || evicted[1] != wantEvicted[1] {
		t.Fatalf("evicted %v, want %v (r-c was re-pushed mid-sweep)", evicted, wantEvicted)
	}
	if _, open := srv.eng.Get("r-c"); !open {
		t.Fatal("re-pushed stream r-c was evicted out from under its acknowledgement")
	}
	// MaxEvictPerSweep caps a sweep's total work.
	clock.Advance(2 * time.Hour)
	srv.sweepPause = nil
	srv.cfg.MaxEvictPerSweep = 1
	if evicted := srv.EvictIdle(30 * time.Minute); len(evicted) != 1 {
		t.Fatalf("capped sweep evicted %v, want exactly 1", evicted)
	}
}

// TestCloseSpilledStream: a spilled stream is still logically open —
// the close endpoint must drop its on-disk envelope, not 404.
func TestCloseSpilledStream(t *testing.T) {
	clock := &testClock{t: time.Unix(1000, 0)}
	srv, ts := newTestServer(t, func(c *Config) {
		c.SpillDir = t.TempDir()
		c.Now = clock.Now
	})
	doPush(t, ts, pushBody(0, "s-0"))
	clock.Advance(time.Hour)
	if evicted := srv.EvictIdle(time.Minute); len(evicted) != 1 {
		t.Fatalf("evicted %v", evicted)
	}
	resp, err := http.Post(ts.URL+"/v1/streams/s-0/close", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close of spilled stream: status %d", resp.StatusCode)
	}
	if srv.spill.Has("s-0") {
		t.Fatal("spill file survived the close")
	}
	// The next life starts from tick 0.
	rows := doPush(t, ts, pushBody(0, "s-0"))
	if rows[0].BagT != 0 {
		t.Fatalf("new life starts at bag_t %d, want 0", rows[0].BagT)
	}
}

// TestRetryAfterDerived: the 429 hint follows the observed batch
// latency tail instead of the old hardcoded 1s.
func TestRetryAfterDerived(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.MaxInFlight = 1 })
	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()

	resp, err := http.Post(ts.URL+"/v1/push", "application/x-ndjson", strings.NewReader(pushBody(0, "x")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("cold Retry-After = %q, want 1", got)
	}

	srv.met.batchLat.Observe(3.2) // p99 of the window → ceil → 4
	resp, err = http.Post(ts.URL+"/v1/push", "application/x-ndjson", strings.NewReader(pushBody(0, "x")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "4" {
		t.Fatalf("loaded Retry-After = %q, want 4", got)
	}
}

// brokenWriter fails every write after the response headers, playing a
// client that hung up mid-response.
type brokenWriter struct {
	header http.Header
	code   int
}

func (b *brokenWriter) Header() http.Header {
	if b.header == nil {
		b.header = make(http.Header)
	}
	return b.header
}
func (b *brokenWriter) WriteHeader(code int)      { b.code = code }
func (b *brokenWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("connection reset") }

// TestPushResponseWriteErrors: a dead client connection stops the
// response loop at the first failed row and the dropped rows are
// counted — previously every Encode error was silently discarded.
func TestPushResponseWriteErrors(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	// Enough rows that the response overflows the bufio buffer and hits
	// the broken connection mid-loop.
	ids := make([]string, 80)
	for i := range ids {
		ids[i] = fmt.Sprintf("w-%d", i)
	}
	req := httptest.NewRequest("POST", "/v1/push", strings.NewReader(pushBody(0, ids...)))
	srv.ServeHTTP(&brokenWriter{}, req)
	if n := srv.met.respWriteErrors.Value(); n == 0 {
		t.Fatal("dropped response rows were not counted")
	} else if n > uint64(len(ids)) {
		t.Fatalf("counted %d drops for %d rows", n, len(ids))
	}
}
