// Package server puts a stdlib-only net/http front-end on the
// multi-stream detector engine: NDJSON batch ingest, stream lifecycle
// endpoints, engine snapshot/restore for rebalancing streams across
// instances, back-pressure, idle-stream eviction, and a Prometheus-style
// metrics endpoint.
//
// Endpoints:
//
//	POST /v1/push                NDJSON rows {"stream": id, "bag": [[...],...]};
//	                             the response streams back one NDJSON row per
//	                             input row (pending / scored / error). 429 when
//	                             the in-flight batch limit is reached.
//	GET  /v1/streams             open streams with per-stream push counts and
//	                             idle ages.
//	POST /v1/streams/{id}/close  close one stream (its detector recycles into
//	                             the engine pool; a later push restarts the
//	                             stream from scratch).
//	POST /v1/streams/extract     serialize the named streams into a partial
//	                             envelope AND close them here — the donor half
//	                             of a live migration.
//	POST /v1/streams/adopt       merge a partial envelope's streams into the
//	                             live engine — the receiving half of a live
//	                             migration. 409 if any stream is already open.
//	GET  /v1/snapshot            the full engine state as a versioned JSON
//	                             envelope (core.EngineSnapshot). Pushes are
//	                             paused while the snapshot is taken. With
//	                             ?since=M, a delta: only streams mutated after
//	                             mark M (see the envelope's "mark" field).
//	POST /v1/restore             replace all engine state with an envelope
//	                             previously served by /v1/snapshot — restored
//	                             streams are bit-identical going forward to
//	                             ones that never stopped.
//	GET  /metrics                Prometheus text exposition.
//	GET  /healthz                liveness probe.
//
// Concurrency model: push batches run concurrently up to
// Config.MaxInFlight (back-pressure beyond that is the client's signal
// to slow down). Concurrent batches touching the same stream are applied
// atomically per batch, but their relative order is whatever arrival
// order the engine sees — clients that need a deterministic stream must
// serialize their own pushes, exactly as with Engine.PushBatch.
// Snapshot and restore take an exclusive lock: they wait for running
// batches to finish and hold new ones until the state transfer is done.
//
// Durability (optional, Config.OplogDir): every applied push row is
// appended to a write-ahead oplog and group-commit fsynced BEFORE the
// batch's 200 is written, so a SIGKILL'd instance replays back to
// exactly the acknowledged prefix of every stream. Checkpoints collapse
// the log into a full engine envelope (automatic past
// Config.OplogCheckpointBytes, and on graceful drain). With
// Config.MaxResident the detector pool is bounded: idle streams spill
// their envelopes to an on-disk stream store instead of being
// discarded, and a push to a spilled stream faults it back in
// transparently — bit-identical to a stream that never left memory.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oplog"
)

// TraceHeader is the batch-correlation header: the router mints a trace
// ID per push batch (or propagates a caller-supplied one) and forwards
// it here, the server echoes it in every per-row result and in its
// slow-batch log lines, and the response carries it back. One user push
// is thereby traceable across the whole fleet.
const TraceHeader = obs.TraceHeader

// Config parameterizes a Server.
type Config struct {
	// Engine is the detector engine the server fronts. Required; the
	// server assumes ownership (all pushes and lifecycle changes must go
	// through the server once it is constructed).
	Engine *core.Engine
	// MaxInFlight bounds the push batches executing concurrently; pushes
	// beyond it are refused with 429. 0 selects DefaultMaxInFlight.
	MaxInFlight int
	// MaxBatchBags bounds the rows of one push batch (a single giant
	// batch would hold a back-pressure slot indefinitely). 0 selects
	// DefaultMaxBatchBags.
	MaxBatchBags int
	// MaxBatchBytes bounds one push request's body size — the memory a
	// request can make the server buffer, which the row cap alone does
	// not (rows can be arbitrarily large). Requests beyond it are
	// refused with 413. 0 selects DefaultMaxBatchBytes.
	MaxBatchBytes int64
	// IdleTTL evicts streams that have not been pushed to for this long:
	// the stream is closed, its detector recycles into the pool, and its
	// state is DISCARDED (a later push restarts the stream from scratch —
	// snapshot first if the state matters). 0 disables eviction.
	IdleTTL time.Duration
	// EvictEvery is the eviction sweep period; 0 selects IdleTTL/4
	// (clamped to at least a second).
	EvictEvery time.Duration
	// Logger receives the server's structured operational events
	// (slow batches, evictions, snapshot/restore/migration spans). nil
	// discards them.
	Logger *slog.Logger
	// SlowPush is the batch-duration threshold above which a push batch
	// is logged (threshold sampling keeps the log volume proportional to
	// trouble, not traffic). 0 selects DefaultSlowPush; negative disables
	// slow-batch logging.
	SlowPush time.Duration
	// Now overrides the clock, for tests. nil selects time.Now.
	Now func() time.Time

	// OplogDir enables the write-ahead oplog: every applied push row is
	// made durable there before its batch is acknowledged, and the server
	// replays the directory's checkpoint + log suffix at startup. Empty
	// disables durability (the pre-oplog behavior).
	OplogDir string
	// OplogSegmentBytes rotates oplog segments past this size. 0 selects
	// oplog.DefaultSegmentBytes.
	OplogSegmentBytes int64
	// OplogCheckpointBytes triggers a background checkpoint (full engine
	// envelope + log compaction) once this many log bytes accumulate past
	// the last one. 0 selects DefaultOplogCheckpointBytes; negative
	// disables auto-checkpointing (explicit Checkpoint calls and the
	// graceful-drain checkpoint still run).
	OplogCheckpointBytes int64
	// SpillDir is the on-disk stream store for spilled idle streams.
	// Empty with OplogDir set defaults to OplogDir/streams; empty without
	// an oplog disables spilling (eviction discards, as before).
	SpillDir string
	// MaxResident bounds the detector streams resident in memory; pushes
	// that would exceed it spill the least-recently-pushed streams first.
	// Requires a spill store. 0 means unbounded.
	MaxResident int
	// EvictBatch bounds how many streams one eviction sweep closes (or
	// spills) per exclusive-lock acquisition — pushes interleave between
	// batches instead of stalling behind a whole O(streams) sweep. 0
	// selects DefaultEvictBatch.
	EvictBatch int
	// MaxEvictPerSweep caps the total streams one sweep may evict; the
	// remainder waits for the next sweep. 0 means no cap.
	MaxEvictPerSweep int
}

// Defaults for Config's zero values.
const (
	DefaultMaxInFlight   = 32
	DefaultMaxBatchBags  = 65536
	DefaultMaxBatchBytes = 64 << 20
	DefaultSlowPush      = time.Second
	DefaultEvictBatch    = 64
)

// Server is the HTTP front-end. Create with New, mount as an
// http.Handler, and Close when done (stops the eviction janitor).
type Server struct {
	cfg Config
	eng *core.Engine
	mux *http.ServeMux
	met *metrics
	log *slog.Logger
	now func() time.Time

	sem chan struct{} // in-flight push slots (back-pressure)

	// state is the push/snapshot phase lock: pushes, closes and evictions
	// hold it shared; snapshot and restore hold it exclusively so the
	// engine is quiescent while state is captured or replaced.
	state sync.RWMutex

	// mu guards the per-stream bookkeeping below.
	mu       sync.Mutex
	ticks    map[string]int       // next bag time index per stream
	lastPush map[string]time.Time // last push wall time per stream

	// Durability tier (durability.go). wal and spill are nil when the
	// corresponding Config directory is unset.
	wal      *oplog.Log
	spill    *oplog.StreamStore
	poolPeak atomic.Int64   // high-water mark of resident streams
	ckptBusy atomic.Bool    // one background auto-checkpoint at a time
	bg       sync.WaitGroup // background checkpoints in flight

	// sweepPause, when set (tests), runs between eviction batches with no
	// locks held — the window a racing push slots into.
	sweepPause func()

	janitorStop chan struct{}
	janitorDone chan struct{}
	closeOnce   sync.Once
}

// New validates cfg and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: Config.Engine is required")
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxInFlight < 1 {
		return nil, fmt.Errorf("server: MaxInFlight must be >= 1, got %d", cfg.MaxInFlight)
	}
	if cfg.MaxBatchBags == 0 {
		cfg.MaxBatchBags = DefaultMaxBatchBags
	}
	if cfg.MaxBatchBags < 1 {
		return nil, fmt.Errorf("server: MaxBatchBags must be >= 1, got %d", cfg.MaxBatchBags)
	}
	if cfg.MaxBatchBytes == 0 {
		cfg.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if cfg.MaxBatchBytes < 1 {
		return nil, fmt.Errorf("server: MaxBatchBytes must be >= 1, got %d", cfg.MaxBatchBytes)
	}
	if cfg.IdleTTL < 0 {
		return nil, fmt.Errorf("server: IdleTTL must be >= 0, got %v", cfg.IdleTTL)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.SlowPush == 0 {
		cfg.SlowPush = DefaultSlowPush
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		mux:      http.NewServeMux(),
		met:      newMetrics(cfg.Engine),
		log:      cfg.Logger,
		now:      cfg.Now,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		ticks:    make(map[string]int),
		lastPush: make(map[string]time.Time),
	}
	s.mux.HandleFunc("POST /v1/push", s.handlePush)
	s.mux.HandleFunc("GET /v1/streams", s.handleStreams)
	s.mux.HandleFunc("GET /v1/streams/{id}/stats", s.handleStreamStats)
	s.mux.HandleFunc("POST /v1/streams/{id}/close", s.handleCloseStream)
	s.mux.HandleFunc("POST /v1/streams/extract", s.handleExtract)
	s.mux.HandleFunc("POST /v1/streams/adopt", s.handleAdopt)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/restore", s.handleRestore)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	// Durability: open the spill store and oplog, replay the crash suffix.
	// Before the janitor starts and before any handler can run, so the
	// recovery sees a quiescent engine.
	if err := s.initDurability(); err != nil {
		if s.wal != nil {
			s.wal.Close()
		}
		return nil, err
	}
	if cfg.IdleTTL > 0 {
		every := cfg.EvictEvery
		if every <= 0 {
			every = cfg.IdleTTL / 4
		}
		if every < time.Second {
			every = time.Second
		}
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		go s.janitor(every)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the eviction janitor, waits out background checkpoints,
// and closes the oplog (syncing any pending records). It does not shut
// down the engine — the caller owns that decision (a process draining
// gracefully calls Checkpoint first, then shuts the engine down).
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.janitorStop != nil {
			close(s.janitorStop)
			<-s.janitorDone
		}
		s.bg.Wait()
		if s.wal != nil {
			err = s.wal.Close()
		}
	})
	return err
}

// pushRow is one NDJSON ingest row.
type pushRow struct {
	Stream string      `json:"stream"`
	Bag    [][]float64 `json:"bag"`
}

// resultRow is one NDJSON response row, parallel to the input row.
// BagT is the server-assigned time index of the pushed bag; scored rows
// carry the inspection time T (which trails BagT by τ′−1 — the test
// window must fill before a time can be judged).
type resultRow struct {
	Stream  string   `json:"stream"`
	BagT    int      `json:"bag_t"`
	Pending bool     `json:"pending,omitempty"`
	T       *int     `json:"t,omitempty"`
	Score   *float64 `json:"score,omitempty"`
	Lo      *float64 `json:"lo,omitempty"`
	Up      *float64 `json:"up,omitempty"`
	Kappa   *float64 `json:"kappa,omitempty"` // absent while κ_t is undefined
	Alarm   bool     `json:"alarm,omitempty"`
	Error   string   `json:"error,omitempty"`
	// Trace is the batch's correlation ID, echoed from the TraceHeader
	// request header (the router mints one per batch). Absent on direct
	// pushes without the header.
	Trace string `json:"trace,omitempty"`
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	trace := r.Header.Get(TraceHeader)
	select {
	case s.sem <- struct{}{}:
	default:
		s.met.rejected.Inc()
		// The hint tracks observed batch latency: telling a client to
		// retry in 1s while batches take 10 only feeds the congestion.
		w.Header().Set("Retry-After", strconv.Itoa(s.met.retryAfterSeconds()))
		http.Error(w, "too many in-flight push batches", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	// Parse the whole batch before touching the engine: a malformed line
	// rejects the request instead of half-applying it. The body is
	// byte-capped — the row cap alone would let one request buffer
	// unbounded memory before any limit trips.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)
	rows, err := s.readRows(r)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("batch exceeds %d bytes", s.cfg.MaxBatchBytes), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(rows) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}

	// Acquire the shared phase lock with every batch stream resident:
	// spilled streams fault back in and, when the pool is bounded, idle
	// residents spill out to make room (durability.go).
	streamSet := make(map[string]struct{}, len(rows))
	for _, row := range rows {
		streamSet[row.Stream] = struct{}{}
	}
	if err := s.ensureResident(streamSet); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer s.state.RUnlock()

	// Assign each row its stream's next time index. The tick allocation
	// is atomic per batch, so concurrent batches get disjoint label
	// ranges even when they interleave on a stream.
	batch := make([]core.StreamBag, len(rows))
	bagT := make([]int, len(rows))
	allocEnd := make(map[string]int) // where this batch left each stream's clock
	start := s.now()
	s.mu.Lock()
	for i, row := range rows {
		t := s.ticks[row.Stream]
		s.ticks[row.Stream] = t + 1
		allocEnd[row.Stream] = t + 1
		bagT[i] = t
		batch[i] = core.StreamBag{StreamID: row.Stream, Bag: bag.Bag{T: t, Points: row.Bag}}
	}
	s.mu.Unlock()

	// The oplog record for each applied row is enqueued from the engine's
	// apply hook — under the stream's lock, so per-stream log order is
	// apply order even across interleaving batches. Durability comes from
	// the Sync below, before anything is acknowledged.
	var onApply func(i int, mark uint64)
	if s.wal != nil {
		onApply = func(i int, mark uint64) {
			s.wal.Enqueue(&oplog.Record{
				Op:     oplog.OpPush,
				Stream: batch[i].StreamID,
				BagT:   batch[i].Bag.T,
				Bag:    batch[i].Bag.Points,
				Mark:   mark,
				Trace:  trace,
			})
		}
	}
	results, _ := s.eng.PushBatchFn(batch, onApply) // errors are carried per-row
	if results == nil {
		// The engine itself refused (shut down mid-flight).
		http.Error(w, "engine is shut down", http.StatusServiceUnavailable)
		return
	}
	if s.spill != nil {
		s.notePoolPeak()
	}

	end := s.now()
	// Reconcile the tick clocks of streams that had failing rows: a
	// failed (or skipped) bag consumed a tick label but never advanced
	// its detector, and the restore bookkeeping contract is exactly
	// "tick clock == detector count". The engine's Seq is the truth.
	reseq := make(map[string]int)
	for _, res := range results {
		if res.Err == nil {
			continue
		}
		if _, done := reseq[res.StreamID]; done {
			continue
		}
		if st, ok := s.eng.Get(res.StreamID); ok {
			reseq[res.StreamID] = st.Seq()
		} else {
			// The stream never opened (or is already gone): drop its
			// bookkeeping so a later life starts from tick 0.
			reseq[res.StreamID] = -1
		}
	}
	s.mu.Lock()
	for _, row := range rows {
		s.lastPush[row.Stream] = end
	}
	for id, seq := range reseq {
		// Reconcile only if no concurrent batch has moved the clock past
		// this batch's allocation: rolling it back below labels another
		// batch already issued would hand those labels out twice. The
		// skipped reconciliation leaves the clock ahead of the detector
		// count (labels skip values) — benign, and the interleaving
		// batch's own reconciliation still runs.
		if s.ticks[id] != allocEnd[id] {
			continue
		}
		if seq < 0 {
			delete(s.ticks, id)
			delete(s.lastPush, id)
		} else {
			s.ticks[id] = seq
		}
	}
	s.mu.Unlock()

	// The acknowledgement gate: no response row is written until every
	// applied row's oplog record is fsynced. On failure NOTHING is
	// acknowledged — the rows are applied in memory but the client must
	// treat the batch as not-ingested (the sticky log error keeps
	// refusing batches until the operator intervenes, so the in-memory
	// state cannot drift further from the durable one).
	if s.wal != nil {
		if err := s.wal.Sync(); err != nil {
			s.met.oplogSyncErrors.Inc()
			s.log.Error("oplog sync failed; refusing to acknowledge batch",
				"trace", trace, "bags", len(rows), "error", err)
			http.Error(w, "durability failure: batch not acknowledged", http.StatusServiceUnavailable)
			return
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	if trace != "" {
		w.Header().Set(TraceHeader, trace)
	}
	out := bufio.NewWriter(w)
	enc := json.NewEncoder(out)
	points, rowErrors := 0, 0
	// Once a response write fails the connection is gone: every further
	// Encode would fail identically, so the loop stops writing at the
	// first failure and counts the rows the client never saw. (The rows
	// ARE applied and durable — the client re-syncs via /v1/streams.)
	dropped := 0
	for i, res := range results {
		rr := resultRow{Stream: res.StreamID, BagT: bagT[i], Trace: trace}
		switch {
		case res.Err != nil:
			rowErrors++
			rr.Error = res.Err.Error()
		case res.Point == nil:
			rr.Pending = true
		default:
			points++
			p := res.Point
			rr.T = &p.T
			rr.Score = &p.Score
			rr.Lo = &p.Interval.Lo
			rr.Up = &p.Interval.Up
			if !math.IsNaN(p.Kappa) {
				rr.Kappa = &p.Kappa
			}
			rr.Alarm = p.Alarm
		}
		if dropped > 0 {
			dropped++
			continue
		}
		if err := enc.Encode(&rr); err != nil {
			dropped = 1
			s.log.Warn("push response write failed; dropping remaining rows",
				"trace", trace, "row", i, "error", err)
		}
	}
	if dropped == 0 {
		if err := out.Flush(); err != nil {
			dropped = 1
			s.log.Warn("push response flush failed", "trace", trace, "error", err)
		}
	}
	if dropped > 0 {
		s.met.respWriteErrors.Add(uint64(dropped))
	}
	elapsed := end.Sub(start)
	s.met.observeBatch(elapsed.Seconds(), len(rows), points, rowErrors)
	if s.cfg.SlowPush > 0 && elapsed >= s.cfg.SlowPush {
		s.log.Warn("slow push batch",
			"trace", trace,
			"bags", len(rows),
			"points", points,
			"row_errors", rowErrors,
			"duration", elapsed.Seconds())
	} else {
		s.log.Debug("push batch",
			"trace", trace,
			"bags", len(rows),
			"points", points,
			"row_errors", rowErrors,
			"duration", elapsed.Seconds())
	}
	s.maybeCheckpoint()
}

// readRows parses the request body as NDJSON push rows.
func (s *Server) readRows(r *http.Request) ([]pushRow, error) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var rows []pushRow
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var row pushRow
		if err := json.Unmarshal([]byte(text), &row); err != nil {
			return nil, lineErr(sc, line, err)
		}
		if row.Stream == "" {
			return nil, lineErr(sc, line, errors.New("missing stream id"))
		}
		if len(row.Bag) == 0 {
			return nil, lineErr(sc, line, errors.New("empty bag"))
		}
		if err := (bag.Bag{Points: row.Bag}).Validate(); err != nil {
			return nil, lineErr(sc, line, err)
		}
		rows = append(rows, row)
		if len(rows) > s.cfg.MaxBatchBags {
			return nil, fmt.Errorf("batch exceeds %d bags", s.cfg.MaxBatchBags)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return rows, nil
}

// lineErr reports a per-line parse error — unless the scanner already hit
// a read error (the byte cap truncating the final line mid-token): the
// scanner still yields the truncated tail as a token, and the truncation,
// not the garbage it produced, is the real failure.
func lineErr(sc *bufio.Scanner, line int, err error) error {
	if scErr := sc.Err(); scErr != nil {
		return fmt.Errorf("reading body: %w", scErr)
	}
	return fmt.Errorf("line %d: %v", line, err)
}

// streamInfo is one row of GET /v1/streams.
type streamInfo struct {
	ID          string  `json:"id"`
	Pushed      int     `json:"pushed"`
	IdleSeconds float64 `json:"idle_seconds"`
}

func (s *Server) handleStreams(w http.ResponseWriter, _ *http.Request) {
	s.state.RLock()
	defer s.state.RUnlock()
	now := s.now()
	ids := s.eng.StreamIDs()
	infos := make([]streamInfo, 0, len(ids))
	s.mu.Lock()
	for _, id := range ids {
		info := streamInfo{ID: id}
		info.Pushed = s.ticks[id]
		if last, ok := s.lastPush[id]; ok {
			info.IdleSeconds = now.Sub(last).Seconds()
		}
		infos = append(infos, info)
	}
	s.mu.Unlock()
	s.writeJSON(w, map[string]any{"streams": infos})
}

func (s *Server) handleCloseStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Exclusive, not shared: a close racing an in-flight push under the
	// shared lock could tear the stream down between the push being
	// applied (and acknowledged 200) and its bookkeeping update.
	s.state.Lock()
	defer s.state.Unlock()
	st, ok := s.eng.Get(id)
	if !ok {
		// A spilled stream is still logically open; closing it drops its
		// on-disk envelope. The close record goes durable FIRST — if the
		// spill file outlived a logged close, recovery would resurrect a
		// stream the client was told is gone.
		if s.spill != nil && s.spill.Has(id) {
			if err := s.logCloseLocked(id); err != nil {
				http.Error(w, fmt.Sprintf("recording close: %v", err), http.StatusServiceUnavailable)
				return
			}
			if err := s.spill.Delete(id); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			s.forget(id)
			s.writeJSON(w, map[string]any{"closed": id})
			return
		}
		http.Error(w, fmt.Sprintf("stream %q is not open", id), http.StatusNotFound)
		return
	}
	// Durable close record before the in-memory teardown: on failure the
	// stream stays open and the client gets the error, instead of a close
	// that silently un-happens at the next crash.
	if err := s.logCloseLocked(id); err != nil {
		http.Error(w, fmt.Sprintf("recording close: %v", err), http.StatusServiceUnavailable)
		return
	}
	st.Close()
	s.forget(id)
	s.writeJSON(w, map[string]any{"closed": id})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// ?since=M cuts a DELTA: only the streams mutated after mark M (a
	// value served in an earlier envelope's "mark" field), as a partial
	// envelope whose own mark is the next high-water value. Cost scales
	// with the dirty-stream count, not the fleet size.
	var since uint64
	var delta bool
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad since mark %q: %v", raw, err), http.StatusBadRequest)
			return
		}
		since, delta = v, true
	}
	// Exclusive: waits for in-flight pushes, holds new ones. The engine
	// is fully quiescent for the duration, so the captured state is a
	// consistent cut across every stream.
	start := s.now()
	s.state.Lock()
	var snap *core.EngineSnapshot
	var err error
	if delta {
		snap, err = s.eng.SnapshotDelta(since)
	} else {
		snap, err = s.eng.Snapshot()
	}
	s.state.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.met.snapshots.Inc()
	s.log.Info("snapshot served",
		"streams", len(snap.Streams),
		"delta", delta,
		"mark", snap.Mark,
		"duration", s.now().Sub(start).Seconds())
	s.writeJSON(w, snap)
}

// extractRequest is the body of POST /v1/streams/extract.
type extractRequest struct {
	Streams []string `json:"streams"`
}

// handleExtract is the donor half of a live stream migration: under the
// exclusive phase lock (pushes quiesced), the named streams are
// serialized into a partial envelope, CLOSED on this instance, and the
// envelope is returned. From the moment the response is written this
// instance no longer owns the streams — the caller (the router) ships
// the envelope to the target's /v1/streams/adopt and flips routing.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req extractRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("decoding extract request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Streams) == 0 {
		http.Error(w, "extract request names no streams", http.StatusBadRequest)
		return
	}
	start := s.now()
	s.state.Lock()
	defer s.state.Unlock()
	// Spilled streams are still this instance's to donate: fault them in
	// so the capture below sees them.
	if s.spill != nil {
		var spilled []string
		for _, id := range req.Streams {
			if s.spill.Has(id) {
				spilled = append(spilled, id)
			}
		}
		if err := s.faultInLocked(spilled); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	snap, err := s.eng.SnapshotStreams(req.Streams...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	// The extracted streams leave this instance, so their oplog story
	// ends in a durable close — recorded before the teardown, so a crash
	// cannot resurrect streams another instance now owns.
	if err := s.logCloseLocked(req.Streams...); err != nil {
		http.Error(w, fmt.Sprintf("recording extraction: %v", err), http.StatusServiceUnavailable)
		return
	}
	// Capture succeeded for every named stream; now drop them here. The
	// detectors recycle into the pool and the bookkeeping is forgotten so
	// a later life of the id starts from scratch.
	for _, id := range req.Streams {
		if st, ok := s.eng.Get(id); ok {
			st.Close()
			s.forget(id)
		}
	}
	s.met.extractions.Add(uint64(len(req.Streams)))
	s.log.Info("streams extracted",
		"streams", len(req.Streams),
		"duration", s.now().Sub(start).Seconds())
	s.writeJSON(w, snap)
}

// handleAdopt is the receiving half of a migration (and of a delta
// refresh): the posted envelope's streams are merged into the live
// engine without touching its other streams. A stream already open here
// answers 409 — the engine state is left exactly as it was, so a
// botched migration never rewinds a live stream.
func (s *Server) handleAdopt(w http.ResponseWriter, r *http.Request) {
	var snap core.EngineSnapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		http.Error(w, fmt.Sprintf("decoding snapshot: %v", err), http.StatusBadRequest)
		return
	}
	start := s.now()
	s.state.Lock()
	defer s.state.Unlock()
	if err := s.eng.RestoreStreams(&snap); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	now := s.now()
	s.mu.Lock()
	for i := range snap.Streams {
		ss := &snap.Streams[i]
		s.ticks[ss.ID] = ss.Detector.Count
		s.lastPush[ss.ID] = now
	}
	s.mu.Unlock()
	// Adopted state arrived without oplog records; only a checkpoint makes
	// it durable, and the donor has already let go. A checkpoint failure
	// keeps the streams live but reports 500 — the caller must not treat
	// the migration as safely landed.
	s.enforcePoolBoundLocked()
	if err := s.checkpointLocked("adopt"); err != nil {
		s.log.Error("post-adopt checkpoint failed", "error", err)
		http.Error(w, fmt.Sprintf("streams adopted but not yet durable: %v", err), http.StatusInternalServerError)
		return
	}
	s.met.adoptions.Add(uint64(len(snap.Streams)))
	s.log.Info("streams adopted",
		"streams", len(snap.Streams),
		"duration", s.now().Sub(start).Seconds())
	s.writeJSON(w, map[string]any{"adopted": len(snap.Streams)})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var snap core.EngineSnapshot
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&snap); err != nil {
		http.Error(w, fmt.Sprintf("decoding snapshot: %v", err), http.StatusBadRequest)
		return
	}

	start := s.now()
	s.state.Lock()
	defer s.state.Unlock()
	// Vet the envelope BEFORE tearing anything down: a mismatched
	// version or configuration fingerprint must answer 409 with the
	// server's live streams untouched, not wipe them first.
	if err := s.eng.ValidateSnapshot(&snap); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	// Restore REPLACES state: close whatever is open (their detectors
	// recycle into the pool and are immediately reused by the restored
	// streams), then rebuild from the envelope.
	s.eng.CloseAll()
	if err := s.eng.Restore(&snap); err != nil {
		// A failed restore may leave a partial stream set; don't serve it.
		s.eng.CloseAll()
		s.resetBookkeeping(nil)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.resetBookkeeping(&snap)
	// The envelope replaced ALL state: stale spill files would later
	// fault dead lives back in, and the old log no longer describes
	// anything. Clear the store and collapse the log into a covers-all
	// checkpoint (restore rewinds the engine's mark counter, so the old
	// records' marks cannot be compared against the new envelope's).
	if err := s.clearSpillLocked(); err != nil {
		http.Error(w, fmt.Sprintf("restore applied but spill store not cleared: %v", err), http.StatusInternalServerError)
		return
	}
	s.enforcePoolBoundLocked()
	if err := s.checkpointAsLocked("restore", true); err != nil {
		s.log.Error("post-restore checkpoint failed", "error", err)
		http.Error(w, fmt.Sprintf("restore applied but not yet durable: %v", err), http.StatusInternalServerError)
		return
	}
	s.met.restores.Inc()
	s.log.Info("restore applied",
		"streams", len(snap.Streams),
		"duration", s.now().Sub(start).Seconds())
	s.writeJSON(w, map[string]any{"restored": len(snap.Streams)})
}

// resetBookkeeping rebuilds the per-stream tick clocks and idle stamps
// after a restore (or clears them when snap is nil).
func (s *Server) resetBookkeeping(snap *core.EngineSnapshot) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	clear(s.ticks)
	clear(s.lastPush)
	if snap == nil {
		return
	}
	for i := range snap.Streams {
		ss := &snap.Streams[i]
		s.ticks[ss.ID] = ss.Detector.Count
		s.lastPush[ss.ID] = now
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.reg.Render(w)
}

// streamStatsRow is GET /v1/streams/{id}/stats's wire form of
// core.StreamStats. Last is re-shaped so an undefined κ_t is absent
// instead of a NaN (which JSON cannot carry), mirroring resultRow.
type streamStatsRow struct {
	Stream     string            `json:"stream"`
	Bags       int               `json:"bags"`
	WindowFill int               `json:"window_fill"`
	WindowSize int               `json:"window_size"`
	DirtyMark  uint64            `json:"dirty_mark"`
	Last       *lastPointRow     `json:"last,omitempty"`
	Stages     []core.StageTotal `json:"stages"`
}

// lastPointRow is the last inspection Point in result-row shape.
type lastPointRow struct {
	T     int      `json:"t"`
	Score float64  `json:"score"`
	Lo    float64  `json:"lo"`
	Up    float64  `json:"up"`
	Kappa *float64 `json:"kappa,omitempty"`
	Alarm bool     `json:"alarm,omitempty"`
}

// handleStreamStats serves the live introspection view of one stream:
// bag clock, window fill, last score/interval, cumulative per-stage
// push costs, and the delta-snapshot dirty mark.
func (s *Server) handleStreamStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.state.RLock()
	defer s.state.RUnlock()
	st, ok := s.eng.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("stream %q is not open", id), http.StatusNotFound)
		return
	}
	stats, err := st.Introspect()
	if err != nil {
		// Lost a race with Close.
		http.Error(w, fmt.Sprintf("stream %q is not open", id), http.StatusNotFound)
		return
	}
	row := streamStatsRow{
		Stream:     stats.ID,
		Bags:       stats.Bags,
		WindowFill: stats.WindowFill,
		WindowSize: stats.WindowSize,
		DirtyMark:  stats.DirtyMark,
		Stages:     stats.Stages,
	}
	if stats.HasLast {
		p := stats.Last
		row.Last = &lastPointRow{T: p.T, Score: p.Score, Lo: p.Interval.Lo, Up: p.Interval.Up, Alarm: p.Alarm}
		if !math.IsNaN(p.Kappa) {
			row.Last.Kappa = &p.Kappa
		}
	}
	s.writeJSON(w, row)
}

// forget drops the per-stream bookkeeping of a closed stream: its next
// life starts from scratch, tick 0 included.
func (s *Server) forget(id string) {
	s.mu.Lock()
	delete(s.ticks, id)
	delete(s.lastPush, id)
	s.mu.Unlock()
}

// EvictIdle evicts streams idle for at least ttl and returns the
// evicted ids (sorted). With a spill store the stream's envelope pages
// out to disk (a later push faults it back in, bit-identical);
// otherwise its state is discarded as before. The janitor calls it
// periodically; tests call it directly with a synthetic clock.
//
// The sweep no longer holds the exclusive phase lock for its whole
// O(streams) duration — that stalled every push behind the slowest
// sweep. Instead the idle census runs under the bookkeeping mutex only,
// and the candidates are then processed in bounded batches, each under
// a brief exclusive acquisition that RE-CHECKS the candidate's idle
// stamp: a stream pushed between census and batch has a newer stamp and
// is spared, so the old "evicted out from under its acknowledgement"
// guarantee still holds, now per batch instead of per sweep.
func (s *Server) EvictIdle(ttl time.Duration) []string {
	now := s.now()
	type cand struct {
		id   string
		last time.Time
	}
	ids := s.eng.StreamIDs()
	cands := make([]cand, 0, len(ids))
	s.mu.Lock()
	for _, id := range ids {
		last, seen := s.lastPush[id]
		if !seen {
			// A stream the server has no stamp for (restored then never
			// pushed, or opened out-of-band): start its idle clock now.
			s.lastPush[id] = now
			continue
		}
		if now.Sub(last) >= ttl {
			cands = append(cands, cand{id, last})
		}
	}
	s.mu.Unlock()
	// Oldest first, so a per-sweep cap sheds the longest-idle state.
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].last.Equal(cands[j].last) {
			return cands[i].last.Before(cands[j].last)
		}
		return cands[i].id < cands[j].id
	})
	if max := s.cfg.MaxEvictPerSweep; max > 0 && len(cands) > max {
		cands = cands[:max]
	}
	batchSize := s.cfg.EvictBatch
	if batchSize <= 0 {
		batchSize = DefaultEvictBatch
	}
	var evicted []string
	for lo := 0; lo < len(cands); lo += batchSize {
		hi := lo + batchSize
		if hi > len(cands) {
			hi = len(cands)
		}
		s.state.Lock()
		victims := make([]string, 0, hi-lo)
		s.mu.Lock()
		for _, c := range cands[lo:hi] {
			// Spare any stream pushed since the census (newer stamp) or
			// already gone (closed, extracted, spilled by a push's own
			// pool maintenance).
			if last, seen := s.lastPush[c.id]; !seen || !last.Equal(c.last) {
				continue
			}
			if _, open := s.eng.Get(c.id); open {
				victims = append(victims, c.id)
			}
		}
		s.mu.Unlock()
		if s.spill != nil {
			evicted = append(evicted, s.spillStreamsLocked(victims)...)
		} else {
			// Discard mode: the state is gone, so with an oplog the close
			// must be durable before the teardown (a crash between the two
			// would otherwise resurrect the stream).
			if err := s.logCloseLocked(victims...); err != nil {
				s.log.Error("eviction close records failed; keeping streams", "streams", len(victims), "error", err)
				s.state.Unlock()
				break
			}
			for _, id := range victims {
				if st, ok := s.eng.Get(id); ok {
					st.Close()
					s.forget(id)
					evicted = append(evicted, id)
				}
			}
		}
		s.state.Unlock()
		if s.sweepPause != nil && hi < len(cands) {
			s.sweepPause()
		}
	}
	sort.Strings(evicted)
	s.met.evictions.Add(uint64(len(evicted)))
	if len(evicted) > 0 {
		s.log.Info("idle streams evicted",
			"streams", len(evicted),
			"ttl", ttl.Seconds(),
			"spill", s.spill != nil,
			"duration", s.now().Sub(now).Seconds())
	}
	return evicted
}

func (s *Server) janitor(every time.Duration) {
	defer close(s.janitorDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			s.EvictIdle(s.cfg.IdleTTL)
		}
	}
}

// writeJSON writes v as the JSON response body. A failed write means
// the client hung up (or the value is unencodable — a bug): either way
// the failure is logged and counted instead of vanishing.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.met.respWriteErrors.Inc()
		s.log.Warn("response write failed", "error", err)
	}
}
