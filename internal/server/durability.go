// Durability tier: write-ahead oplog recovery/replay, checkpointing,
// and the bounded detector pool that pages idle streams to disk.
//
// The invariants that make the whole thing airtight live in the lock
// discipline, so they are spelled out here once:
//
//   - Push records are ENQUEUED from the engine's apply hook, under the
//     stream's own lock, and made durable (group-commit fsync) before
//     the batch's 200 is written — all while the batch holds the shared
//     phase lock. Per stream, log order therefore equals apply order.
//   - Spill, fault-in, checkpoint, close and restore all hold the
//     EXCLUSIVE phase lock. No push is in flight at those moments, so
//     every applied row's record has already been synced: a spilled
//     envelope or checkpoint can never be AHEAD of the durable log, and
//     compaction after a checkpoint can never delete a record the
//     envelope does not cover.
//   - Replay applies a push record only when its bag_t equals the
//     stream's current count: smaller means the checkpoint or spilled
//     envelope already contains it, larger is a hole the log contract
//     makes impossible (so it fails recovery loudly instead of scoring
//     garbage).
//
// Net effect: after a SIGKILL, recovery reconstructs exactly the
// acknowledged prefix of every stream — rows whose fsync never
// completed were never 200'd, and their retry lands on the very tick
// the crash rewound to.
package server

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/oplog"
)

// initDurability opens the spill store and the oplog (as configured)
// and runs crash recovery. Called from New before the server accepts
// traffic.
func (s *Server) initDurability() error {
	cfg := &s.cfg
	if cfg.MaxResident < 0 {
		return fmt.Errorf("server: MaxResident must be >= 0, got %d", cfg.MaxResident)
	}
	if cfg.EvictBatch < 0 {
		return fmt.Errorf("server: EvictBatch must be >= 0, got %d", cfg.EvictBatch)
	}
	if cfg.MaxEvictPerSweep < 0 {
		return fmt.Errorf("server: MaxEvictPerSweep must be >= 0, got %d", cfg.MaxEvictPerSweep)
	}
	if cfg.SpillDir == "" && cfg.OplogDir != "" {
		// An oplog without a spill store would make eviction DESTROY
		// durable state; default the store next to the log.
		cfg.SpillDir = filepath.Join(cfg.OplogDir, oplog.StreamDirName)
	}
	if cfg.MaxResident > 0 && cfg.SpillDir == "" {
		return fmt.Errorf("server: MaxResident requires SpillDir (or OplogDir) — a bounded pool needs somewhere to page streams out to")
	}
	if cfg.SpillDir != "" {
		store, err := oplog.OpenStreamStore(cfg.SpillDir)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		s.spill = store
		s.met.enablePool(s.eng, store, &s.poolPeak)
	}
	if cfg.OplogDir == "" {
		return nil
	}
	hist := s.met.oplogFsyncHistogram()
	l, err := oplog.Open(cfg.OplogDir, oplog.Options{
		SegmentBytes:  cfg.OplogSegmentBytes,
		FsyncObserver: hist.Observe,
	})
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.wal = l
	s.met.enableOplog(l)
	if err := s.recover(); err != nil {
		return fmt.Errorf("server: oplog recovery: %w", err)
	}
	return nil
}

// recover rebuilds engine state from the last checkpoint envelope plus
// the oplog suffix, reconciles the spill store, re-applies the pool
// bound, and collapses the result into a fresh checkpoint so the next
// crash replays only its own suffix. Runs before the server serves, so
// no locks are contended.
func (s *Server) recover() error {
	start := s.now()
	blob, ok, err := s.wal.LoadCheckpoint()
	if err != nil {
		return err
	}
	if ok {
		var snap core.EngineSnapshot
		if err := json.Unmarshal(blob, &snap); err != nil {
			return fmt.Errorf("checkpoint envelope: %w", err)
		}
		if n := s.eng.Len(); n != 0 {
			return fmt.Errorf("engine already has %d open streams; oplog recovery needs a fresh engine", n)
		}
		if err := s.eng.Restore(&snap); err != nil {
			return fmt.Errorf("restoring checkpoint: %w", err)
		}
		s.resetBookkeeping(&snap)
	}
	replayed := 0
	if err := s.wal.Replay(func(rec oplog.Record) error {
		replayed++
		return s.applyReplay(rec)
	}); err != nil {
		return err
	}
	// A spill file whose stream is ALSO live means the crash hit between
	// the spill write and the stream teardown. The live (replayed) state
	// is the acknowledged truth — at the moment the spill was captured
	// the two were identical, and only the live side can have advanced.
	if s.spill != nil {
		for _, id := range s.spill.IDs() {
			if _, open := s.eng.Get(id); open {
				if err := s.spill.Delete(id); err != nil {
					return err
				}
			}
		}
	}
	s.enforcePoolBoundLocked()
	if err := s.checkpointAsLocked("recovery", true); err != nil {
		return err
	}
	s.log.Info("oplog recovered",
		"records", replayed,
		"streams", s.eng.Len(),
		"spilled", s.spillCount(),
		"duration", s.now().Sub(start).Seconds())
	return nil
}

func (s *Server) spillCount() int {
	if s.spill == nil {
		return 0
	}
	return s.spill.Len()
}

// applyReplay applies one oplog record during recovery.
func (s *Server) applyReplay(rec oplog.Record) error {
	switch rec.Op {
	case oplog.OpClose:
		if st, ok := s.eng.Get(rec.Stream); ok {
			st.Close()
		} else if s.spill != nil && s.spill.Has(rec.Stream) {
			if err := s.spill.Delete(rec.Stream); err != nil {
				return err
			}
		}
		s.forget(rec.Stream)
		return nil
	case oplog.OpPush:
		if s.spill != nil && s.spill.Has(rec.Stream) {
			if _, open := s.eng.Get(rec.Stream); !open {
				if err := s.faultInLocked([]string{rec.Stream}); err != nil {
					return err
				}
			}
		}
		seq := 0
		if st, ok := s.eng.Get(rec.Stream); ok {
			seq = st.Seq()
		}
		if rec.BagT < seq {
			return nil // already inside the checkpoint or spilled envelope
		}
		if rec.BagT > seq {
			return fmt.Errorf("stream %q: record bag_t %d but stream is at %d — the log has a hole", rec.Stream, rec.BagT, seq)
		}
		st, err := s.eng.Open(rec.Stream)
		if err != nil {
			return err
		}
		if _, err := st.Push(bag.Bag{T: rec.BagT, Points: rec.Bag}); err != nil {
			return fmt.Errorf("stream %q: replaying bag %d: %w", rec.Stream, rec.BagT, err)
		}
		s.mu.Lock()
		s.ticks[rec.Stream] = rec.BagT + 1
		s.lastPush[rec.Stream] = s.now()
		s.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("unknown oplog op %q", rec.Op)
	}
}

// Checkpoint persists the full engine envelope into the oplog directory
// and compacts the log behind it. No-op without an oplog. It takes the
// exclusive phase lock (pushes quiesce for the duration, as with
// /v1/snapshot); the graceful-drain path and the auto-checkpoint
// trigger both land here.
func (s *Server) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	s.state.Lock()
	defer s.state.Unlock()
	return s.checkpointLocked("requested")
}

// checkpointLocked is Checkpoint under an already-held exclusive phase
// lock (or pre-serving quiescence, during recovery).
func (s *Server) checkpointLocked(reason string) error {
	return s.checkpointAsLocked(reason, false)
}

// checkpointAsLocked writes the envelope and compacts. coversAll passes
// the oplog a maximal compaction mark instead of the envelope's own:
// correct exactly when the envelope is known to cover the ENTIRE log
// regardless of record marks — after recovery (every durable record was
// just replayed into this state) and after restore (the envelope
// REPLACES all state, and rewinds the mark counter, so old records'
// marks no longer compare against it).
func (s *Server) checkpointAsLocked(reason string, coversAll bool) error {
	if s.wal == nil {
		return nil
	}
	start := s.now()
	snap, err := s.eng.Snapshot()
	if err != nil {
		return err
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	mark := snap.Mark
	if coversAll {
		mark = ^uint64(0)
	}
	if err := s.wal.Checkpoint(blob, mark); err != nil {
		return err
	}
	s.log.Info("oplog checkpoint",
		"reason", reason,
		"streams", len(snap.Streams),
		"mark", snap.Mark,
		"duration", s.now().Sub(start).Seconds())
	return nil
}

// DefaultOplogCheckpointBytes is the auto-checkpoint trigger: once this
// many log bytes accumulate past the last checkpoint, the next push
// kicks off a background checkpoint+compaction.
const DefaultOplogCheckpointBytes = 64 << 20

// maybeCheckpoint fires the background auto-checkpoint when the log has
// grown past the configured trigger. At most one runs at a time.
func (s *Server) maybeCheckpoint() {
	if s.wal == nil || s.cfg.OplogCheckpointBytes < 0 {
		return
	}
	limit := s.cfg.OplogCheckpointBytes
	if limit == 0 {
		limit = DefaultOplogCheckpointBytes
	}
	if s.wal.BytesSinceCheckpoint() < limit {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		defer s.ckptBusy.Store(false)
		if err := s.Checkpoint(); err != nil {
			s.log.Error("auto checkpoint failed", "error", err)
		}
	}()
}

// logCloseLocked appends (and syncs) close records for ids. Callers
// hold the exclusive phase lock, which is what orders the records
// after every acknowledged push of the closing life and before any
// push of the id's next life.
func (s *Server) logCloseLocked(ids ...string) error {
	if s.wal == nil || len(ids) == 0 {
		return nil
	}
	recs := make([]oplog.Record, len(ids))
	mark := s.eng.Mark()
	for i, id := range ids {
		recs[i] = oplog.Record{Op: oplog.OpClose, Stream: id, Mark: mark}
	}
	return s.wal.Append(recs...)
}

// ensureResident acquires the SHARED phase lock with every one of the
// batch's streams resident and the pool bound respected. The check runs
// under the shared lock (where spills cannot happen), so a clean check
// stays true for the whole batch; when a fault-in or an LRU spill is
// needed the shared lock is dropped and the mutation runs under the
// exclusive lock, then the check retries — another batch may have
// consumed the room in between. On success the shared lock is HELD;
// on error it is not.
func (s *Server) ensureResident(ids map[string]struct{}) error {
	for attempt := 0; ; attempt++ {
		s.state.RLock()
		if !s.residencyDebt(ids) {
			return nil
		}
		s.state.RUnlock()
		if attempt >= 3 {
			return fmt.Errorf("streams could not be made resident after %d attempts (pool bound %d thrashing?)", attempt, s.cfg.MaxResident)
		}
		s.state.Lock()
		err := s.makeResidentLocked(ids)
		s.state.Unlock()
		if err != nil {
			return err
		}
	}
}

// residencyDebt reports whether the batch still needs pool work: a
// spilled batch stream, or more newcomers than the bound has room for.
// Called under the shared phase lock.
func (s *Server) residencyDebt(ids map[string]struct{}) bool {
	if s.spill == nil {
		return false
	}
	newcomers := 0
	for id := range ids {
		if s.spill.Has(id) {
			return true
		}
		if _, open := s.eng.Get(id); !open {
			newcomers++
		}
	}
	return s.cfg.MaxResident > 0 && newcomers > 0 && s.eng.Len()+newcomers > s.cfg.MaxResident
}

// makeResidentLocked faults the batch's spilled streams in, first
// spilling least-recently-pushed non-batch streams if the incoming
// newcomers would overflow the pool bound. Callers hold the exclusive
// phase lock. When the batch itself is wider than the bound, everything
// else spills and the bound is transiently exceeded — the alternative
// is refusing valid traffic.
func (s *Server) makeResidentLocked(ids map[string]struct{}) error {
	var faults []string
	newcomers := 0
	for id := range ids {
		if _, open := s.eng.Get(id); open {
			continue
		}
		newcomers++
		if s.spill.Has(id) {
			faults = append(faults, id)
		}
	}
	if s.cfg.MaxResident > 0 {
		if over := s.eng.Len() + newcomers - s.cfg.MaxResident; over > 0 {
			s.spillLRULocked(over, ids)
		}
	}
	sort.Strings(faults)
	return s.faultInLocked(faults)
}

// enforcePoolBoundLocked pages out the least-recently-pushed overflow
// after bulk state arrivals (recovery, restore, adopt).
func (s *Server) enforcePoolBoundLocked() {
	if s.cfg.MaxResident <= 0 || s.spill == nil {
		return
	}
	if over := s.eng.Len() - s.cfg.MaxResident; over > 0 {
		s.spillLRULocked(over, nil)
	}
}

// spillLRULocked spills up to n resident streams, least recently
// pushed first, never touching ids in keep. Callers hold the exclusive
// phase lock.
func (s *Server) spillLRULocked(n int, keep map[string]struct{}) {
	type cand struct {
		id   string
		last time.Time
	}
	resident := s.eng.StreamIDs()
	cands := make([]cand, 0, len(resident))
	s.mu.Lock()
	for _, id := range resident {
		if _, kept := keep[id]; kept {
			continue
		}
		cands = append(cands, cand{id, s.lastPush[id]})
	}
	s.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].last.Equal(cands[j].last) {
			return cands[i].last.Before(cands[j].last)
		}
		return cands[i].id < cands[j].id
	})
	if n > len(cands) {
		n = len(cands)
	}
	victims := make([]string, n)
	for i := 0; i < n; i++ {
		victims[i] = cands[i].id
	}
	s.spillStreamsLocked(victims)
}

// spillStreamsLocked serializes each stream's single-stream envelope
// into the spill store and closes it, returning the ids actually
// spilled. A stream whose spill write fails stays resident (and
// counted in bagcpd_pool_spill_errors_total) — losing state to free
// memory is the bug this tier exists to fix. Callers hold the
// exclusive phase lock.
func (s *Server) spillStreamsLocked(ids []string) []string {
	if len(ids) == 0 {
		return nil
	}
	snap, err := s.eng.SnapshotStreams(ids...)
	if err != nil {
		// Only possible if a caller passed a non-open id; nothing was spilled.
		s.met.spillErrors.Add(uint64(len(ids)))
		s.log.Error("spill snapshot failed", "streams", len(ids), "error", err)
		return nil
	}
	parts := snap.SplitByStream()
	spilled := make([]string, 0, len(parts))
	for i := range parts {
		id := parts[i].Streams[0].ID
		blob, err := json.Marshal(&parts[i])
		if err == nil {
			err = s.spill.Put(id, blob)
		}
		if err != nil {
			s.met.spillErrors.Inc()
			s.log.Warn("stream spill failed; keeping it resident", "stream", id, "error", err)
			continue
		}
		if st, ok := s.eng.Get(id); ok {
			st.Close()
		}
		s.forget(id)
		s.met.spills.Inc()
		spilled = append(spilled, id)
	}
	return spilled
}

// faultInLocked restores each spilled stream from its envelope, resumes
// its bookkeeping at the envelope's bag clock, and deletes the spill
// file. Callers hold the exclusive phase lock (or pre-serving
// quiescence during replay).
func (s *Server) faultInLocked(ids []string) error {
	for _, id := range ids {
		if _, open := s.eng.Get(id); open {
			// Live state supersedes a leftover spill file (see recover).
			if err := s.spill.Delete(id); err != nil {
				return err
			}
			continue
		}
		blob, ok, err := s.spill.Get(id)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		var env core.EngineSnapshot
		if err := json.Unmarshal(blob, &env); err != nil {
			return fmt.Errorf("spilled stream %q: corrupt envelope: %w", id, err)
		}
		if err := s.eng.RestoreStreams(&env); err != nil {
			return fmt.Errorf("faulting in stream %q: %w", id, err)
		}
		now := s.now()
		s.mu.Lock()
		for i := range env.Streams {
			ss := &env.Streams[i]
			s.ticks[ss.ID] = ss.Detector.Count
			s.lastPush[ss.ID] = now
		}
		s.mu.Unlock()
		if err := s.spill.Delete(id); err != nil {
			// The stream is live and correct; a stale spill file is only a
			// problem if it survives to the next recovery, which reconciles.
			s.log.Warn("spill file delete failed after fault-in", "stream", id, "error", err)
		}
		s.met.faultins.Inc()
	}
	s.notePoolPeak()
	return nil
}

// clearSpillLocked empties the spill store — restore replaces ALL
// state, and a stale spill file would otherwise fault an old life of a
// stream back in later.
func (s *Server) clearSpillLocked() error {
	if s.spill == nil {
		return nil
	}
	for _, id := range s.spill.IDs() {
		if err := s.spill.Delete(id); err != nil {
			return err
		}
	}
	return nil
}

// notePoolPeak folds the current residency into the high-water mark.
func (s *Server) notePoolPeak() {
	n := int64(s.eng.Len())
	for {
		old := s.poolPeak.Load()
		if n <= old || s.poolPeak.CompareAndSwap(old, n) {
			return
		}
	}
}
