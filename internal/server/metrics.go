package server

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/emd"
	"repro/internal/obs"
	"repro/internal/oplog"
)

// latencyWindow is the number of recent batch latencies the quantile
// summary is computed over. A fixed window keeps the scrape O(window)
// and the memory bounded regardless of traffic.
const latencyWindow = 1024

// metrics holds the server's handles into its obs.Registry. The
// registry renders the whole /metrics exposition (the same code path
// the router uses), and every series the pre-registry hand-rolled
// renderer emitted is registered here under the same name, type and
// sample format — integer counters render with no decimal point, the
// engine-info gauge carries the statistic label, and the batch-latency
// summary keeps its 1024-observation window and p50/p90/p99 points
// (now ceil-rank; the old floor-rank selection under-reported tail
// quantiles on small windows).
type metrics struct {
	reg *obs.Registry

	batches         *obs.Counter // push batches accepted
	bags            *obs.Counter // bags ingested
	points          *obs.Counter // inspection points produced
	rowErrors       *obs.Counter // per-row push errors
	rejected        *obs.Counter // batches refused with 429
	evictions       *obs.Counter // idle streams evicted (discard mode)
	snapshots       *obs.Counter // snapshots served (full and delta)
	restores        *obs.Counter // restores applied
	extractions     *obs.Counter // streams extracted for migration
	adoptions       *obs.Counter // streams adopted from migration envelopes
	respWriteErrors *obs.Counter // response rows dropped on client write failure
	inflight        *obs.Gauge   // push batches currently executing
	batchLat        *obs.Summary // push batch latency window

	// Registered by enablePool when a spill store is configured.
	spills      *obs.Counter // streams spilled to the on-disk store
	faultins    *obs.Counter // spilled streams faulted back in
	spillErrors *obs.Counter // failed spills (stream stayed resident)

	// Registered by enableOplog when the write-ahead oplog is configured.
	oplogFsync      *obs.Histogram // group-commit fsync latency
	oplogSyncErrors *obs.Counter   // batches refused: records not durable
}

// maxRetryAfterSeconds caps the derived 429 hint: past a minute the
// number stops being advice and starts being an outage announcement.
const maxRetryAfterSeconds = 60

// retryAfterSeconds derives the 429 Retry-After hint from the recent
// batch-latency window: the ceiling of the p99 batch duration, floored
// at 1s and capped at maxRetryAfterSeconds. Under light load it stays
// at the old hardcoded 1; when batches take multiple seconds, a client
// told to come back in 1s would only feed the congestion. The router's
// max-across-members propagation consumes the same integer form.
func (m *metrics) retryAfterSeconds() int {
	qs, count, _ := m.batchLat.Quantiles()
	if count == 0 || len(qs) == 0 {
		return 1
	}
	secs := int(math.Ceil(qs[len(qs)-1]))
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs
}

// enablePool registers the bounded-pool residency series. peak is the
// server-maintained high-water mark of concurrently resident streams —
// the RSS proxy the spill acceptance tests gate on.
func (m *metrics) enablePool(eng *core.Engine, store *oplog.StreamStore, peak *atomic.Int64) {
	m.reg.GaugeFunc("bagcpd_pool_resident", "Resident (in-RAM) detector streams.", func() float64 {
		return float64(eng.Len())
	})
	m.reg.GaugeFunc("bagcpd_pool_resident_peak", "High-water mark of resident detector streams.", func() float64 {
		return float64(peak.Load())
	})
	m.reg.GaugeFunc("bagcpd_pool_spilled", "Streams paged out to the on-disk stream store.", func() float64 {
		return float64(store.Len())
	})
	m.spills = m.reg.Counter("bagcpd_pool_spills_total", "Streams spilled to the on-disk stream store.")
	m.faultins = m.reg.Counter("bagcpd_pool_faultins_total", "Spilled streams faulted back in on push.")
	m.spillErrors = m.reg.Counter("bagcpd_pool_spill_errors_total", "Failed spill attempts (the stream stayed resident).")
}

// enableOplog registers the write-ahead-log series, sampling the log's
// own census at scrape time. The fsync histogram is created separately
// (oplogFsyncHistogram) because the log needs its Observe before Open.
func (m *metrics) enableOplog(l *oplog.Log) {
	st := func(f func(oplog.Stats) uint64) func() uint64 {
		return func() uint64 { return f(l.Stats()) }
	}
	m.reg.CounterFunc("bagcpd_oplog_records_total", "Oplog records appended.", st(func(s oplog.Stats) uint64 { return s.Records }))
	m.reg.CounterFunc("bagcpd_oplog_bytes_total", "Oplog bytes appended.", st(func(s oplog.Stats) uint64 { return s.AppendedBytes }))
	m.reg.CounterFunc("bagcpd_oplog_fsyncs_total", "Oplog group-commit fsyncs.", st(func(s oplog.Stats) uint64 { return s.Fsyncs }))
	m.reg.CounterFunc("bagcpd_oplog_rotations_total", "Oplog segment rotations.", st(func(s oplog.Stats) uint64 { return s.Rotations }))
	m.reg.CounterFunc("bagcpd_oplog_truncated_bytes_total", "Torn-tail bytes truncated at oplog open.", st(func(s oplog.Stats) uint64 { return s.TruncatedBytes }))
	m.reg.CounterFunc("bagcpd_oplog_checkpoints_total", "Oplog checkpoints written.", st(func(s oplog.Stats) uint64 { return s.Checkpoints }))
	m.reg.CounterFunc("bagcpd_oplog_compacted_segments_total", "Oplog segments deleted by checkpoint compaction.", st(func(s oplog.Stats) uint64 { return s.CompactedSegments }))
	m.reg.GaugeFunc("bagcpd_oplog_segments", "Current oplog segment count (including the active one).", func() float64 {
		return float64(l.Stats().Segments)
	})
	m.reg.GaugeFunc("bagcpd_oplog_bytes_since_checkpoint", "Oplog bytes appended since the last checkpoint (auto-checkpoint trigger).", func() float64 {
		return float64(l.BytesSinceCheckpoint())
	})
	m.oplogSyncErrors = m.reg.Counter("bagcpd_oplog_sync_errors_total", "Push batches refused because their oplog records could not be made durable.")
}

// oplogFsyncHistogram creates (once) and returns the fsync latency
// histogram, so its Observe can be handed to oplog.Open as the
// FsyncObserver before enableOplog runs.
func (m *metrics) oplogFsyncHistogram() *obs.Histogram {
	if m.oplogFsync == nil {
		m.oplogFsync = m.reg.Histogram("bagcpd_oplog_fsync_seconds", "Oplog data-file fsync latency (group commit).", obs.FsyncBuckets)
	}
	return m.oplogFsync
}

// newMetrics builds the server's registry: the serving-tier series in
// the order the pre-registry renderer emitted them, then the engine's
// stage instrumentation (Engine.Instrument adds the
// bagcpd_push_stage_seconds histograms and solver counters, labeled by
// statistic), then the process runtime gauges.
func newMetrics(eng *core.Engine) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	// Info-style gauge: the engine's per-inspection statistic as a label.
	reg.GaugeVec("bagcpd_engine_info",
		"Engine configuration identity (constant 1; statistic is the registry name in the snapshot fingerprint).",
		"statistic").With(eng.StatisticName()).Set(1)
	reg.GaugeFunc("bagcpd_streams_open", "Open detector streams.", func() float64 {
		return float64(eng.Stats().Open)
	})
	reg.GaugeFunc("bagcpd_detector_pool_free", "Warm detectors waiting in the recycle pool.", func() float64 {
		return float64(eng.Stats().PooledFree)
	})
	m.inflight = reg.Gauge("bagcpd_inflight_batches", "Push batches currently executing.")
	m.batches = reg.Counter("bagcpd_push_batches_total", "Push batches accepted.")
	m.bags = reg.Counter("bagcpd_push_bags_total", "Bags ingested.")
	m.points = reg.Counter("bagcpd_push_points_total", "Inspection points produced.")
	m.rowErrors = reg.Counter("bagcpd_push_row_errors_total", "Per-row push errors.")
	m.rejected = reg.Counter("bagcpd_push_rejected_total", "Push batches refused with 429 (back-pressure).")
	m.evictions = reg.Counter("bagcpd_evictions_total", "Idle streams evicted.")
	m.snapshots = reg.Counter("bagcpd_snapshots_total", "Engine snapshots served.")
	m.restores = reg.Counter("bagcpd_restores_total", "Engine restores applied.")
	m.extractions = reg.Counter("bagcpd_streams_extracted_total", "Streams extracted into migration envelopes.")
	m.adoptions = reg.Counter("bagcpd_streams_adopted_total", "Streams adopted from migration envelopes.")
	m.respWriteErrors = reg.Counter("bagcpd_push_response_write_errors_total", "Push response rows dropped because the client connection failed mid-response.")

	// EMD cost-amortization totals, sampled from the solver package at
	// scrape time (every detector solve publishes into them). The hit:eval
	// ratio shows how much ground-distance work the cost caches absorb.
	reg.CounterFunc("emd_ground_evals_total", "Ground-distance evaluations performed by EMD solves.", func() uint64 {
		ge, _, _ := emd.GlobalStats()
		return ge
	})
	reg.CounterFunc("emd_cost_cache_hits_total", "Cost cells served from EMD ground-cost caches.", func() uint64 {
		_, ch, _ := emd.GlobalStats()
		return ch
	})
	reg.CounterFunc("emd_cost_cache_misses_total", "Cost cells computed and stored into EMD ground-cost caches.", func() uint64 {
		_, _, cm := emd.GlobalStats()
		return cm
	})

	m.batchLat = reg.Summary("bagcpd_push_batch_seconds",
		fmt.Sprintf("Push batch latency (window of last %d batches).", latencyWindow),
		latencyWindow, []float64{0.5, 0.9, 0.99})

	// Stage-level pipeline instrumentation: per-stage push histograms and
	// solver work counters, labeled with the engine's statistic name.
	eng.Instrument(reg)

	// Process runtime state (goroutines, heap, GC), sampled at scrape.
	obs.RegisterRuntimeGauges(reg)
	return m
}

// observeBatch records one completed push batch.
func (m *metrics) observeBatch(seconds float64, bags, points, rowErrors int) {
	m.batches.Inc()
	m.bags.Add(uint64(bags))
	m.points.Add(uint64(points))
	m.rowErrors.Add(uint64(rowErrors))
	m.batchLat.Observe(seconds)
}
