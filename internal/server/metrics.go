package server

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emd"
	"repro/internal/obs"
)

// latencyWindow is the number of recent batch latencies the quantile
// summary is computed over. A fixed window keeps the scrape O(window)
// and the memory bounded regardless of traffic.
const latencyWindow = 1024

// metrics holds the server's handles into its obs.Registry. The
// registry renders the whole /metrics exposition (the same code path
// the router uses), and every series the pre-registry hand-rolled
// renderer emitted is registered here under the same name, type and
// sample format — integer counters render with no decimal point, the
// engine-info gauge carries the statistic label, and the batch-latency
// summary keeps its 1024-observation window and p50/p90/p99 points
// (now ceil-rank; the old floor-rank selection under-reported tail
// quantiles on small windows).
type metrics struct {
	reg *obs.Registry

	batches     *obs.Counter // push batches accepted
	bags        *obs.Counter // bags ingested
	points      *obs.Counter // inspection points produced
	rowErrors   *obs.Counter // per-row push errors
	rejected    *obs.Counter // batches refused with 429
	evictions   *obs.Counter // idle streams evicted
	snapshots   *obs.Counter // snapshots served (full and delta)
	restores    *obs.Counter // restores applied
	extractions *obs.Counter // streams extracted for migration
	adoptions   *obs.Counter // streams adopted from migration envelopes
	inflight    *obs.Gauge   // push batches currently executing
	batchLat    *obs.Summary // push batch latency window
}

// newMetrics builds the server's registry: the serving-tier series in
// the order the pre-registry renderer emitted them, then the engine's
// stage instrumentation (Engine.Instrument adds the
// bagcpd_push_stage_seconds histograms and solver counters, labeled by
// statistic), then the process runtime gauges.
func newMetrics(eng *core.Engine) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	// Info-style gauge: the engine's per-inspection statistic as a label.
	reg.GaugeVec("bagcpd_engine_info",
		"Engine configuration identity (constant 1; statistic is the registry name in the snapshot fingerprint).",
		"statistic").With(eng.StatisticName()).Set(1)
	reg.GaugeFunc("bagcpd_streams_open", "Open detector streams.", func() float64 {
		return float64(eng.Stats().Open)
	})
	reg.GaugeFunc("bagcpd_detector_pool_free", "Warm detectors waiting in the recycle pool.", func() float64 {
		return float64(eng.Stats().PooledFree)
	})
	m.inflight = reg.Gauge("bagcpd_inflight_batches", "Push batches currently executing.")
	m.batches = reg.Counter("bagcpd_push_batches_total", "Push batches accepted.")
	m.bags = reg.Counter("bagcpd_push_bags_total", "Bags ingested.")
	m.points = reg.Counter("bagcpd_push_points_total", "Inspection points produced.")
	m.rowErrors = reg.Counter("bagcpd_push_row_errors_total", "Per-row push errors.")
	m.rejected = reg.Counter("bagcpd_push_rejected_total", "Push batches refused with 429 (back-pressure).")
	m.evictions = reg.Counter("bagcpd_evictions_total", "Idle streams evicted.")
	m.snapshots = reg.Counter("bagcpd_snapshots_total", "Engine snapshots served.")
	m.restores = reg.Counter("bagcpd_restores_total", "Engine restores applied.")
	m.extractions = reg.Counter("bagcpd_streams_extracted_total", "Streams extracted into migration envelopes.")
	m.adoptions = reg.Counter("bagcpd_streams_adopted_total", "Streams adopted from migration envelopes.")

	// EMD cost-amortization totals, sampled from the solver package at
	// scrape time (every detector solve publishes into them). The hit:eval
	// ratio shows how much ground-distance work the cost caches absorb.
	reg.CounterFunc("emd_ground_evals_total", "Ground-distance evaluations performed by EMD solves.", func() uint64 {
		ge, _, _ := emd.GlobalStats()
		return ge
	})
	reg.CounterFunc("emd_cost_cache_hits_total", "Cost cells served from EMD ground-cost caches.", func() uint64 {
		_, ch, _ := emd.GlobalStats()
		return ch
	})
	reg.CounterFunc("emd_cost_cache_misses_total", "Cost cells computed and stored into EMD ground-cost caches.", func() uint64 {
		_, _, cm := emd.GlobalStats()
		return cm
	})

	m.batchLat = reg.Summary("bagcpd_push_batch_seconds",
		fmt.Sprintf("Push batch latency (window of last %d batches).", latencyWindow),
		latencyWindow, []float64{0.5, 0.9, 0.99})

	// Stage-level pipeline instrumentation: per-stage push histograms and
	// solver work counters, labeled with the engine's statistic name.
	eng.Instrument(reg)

	// Process runtime state (goroutines, heap, GC), sampled at scrape.
	obs.RegisterRuntimeGauges(reg)
	return m
}

// observeBatch records one completed push batch.
func (m *metrics) observeBatch(seconds float64, bags, points, rowErrors int) {
	m.batches.Inc()
	m.bags.Add(uint64(bags))
	m.points.Add(uint64(points))
	m.rowErrors.Add(uint64(rowErrors))
	m.batchLat.Observe(seconds)
}
