package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/emd"
)

// latencyWindow is the number of recent batch latencies the quantile
// summary is computed over. A fixed window keeps the scrape O(window)
// and the memory bounded regardless of traffic.
const latencyWindow = 1024

// metrics is the server's instrumentation: monotonic counters plus a
// sliding window of push-batch latencies for the scrape-time quantile
// summary. All methods are safe for concurrent use.
type metrics struct {
	batches     atomic.Uint64 // push batches accepted
	bags        atomic.Uint64 // bags ingested
	points      atomic.Uint64 // inspection points produced
	rowErrors   atomic.Uint64 // per-row push errors
	rejected    atomic.Uint64 // batches refused with 429
	evictions   atomic.Uint64 // idle streams evicted
	snapshots   atomic.Uint64 // snapshots served (full and delta)
	restores    atomic.Uint64 // restores applied
	extractions atomic.Uint64 // streams extracted for migration
	adoptions   atomic.Uint64 // streams adopted from migration envelopes
	inflight    atomic.Int64  // push batches currently executing

	mu         sync.Mutex
	latencies  [latencyWindow]float64 // seconds, ring buffer
	latCount   uint64                 // total observations ever
	latSumSecs float64                // cumulative sum (Prometheus _sum)
}

func (m *metrics) observeBatch(seconds float64, bags, points, rowErrors int) {
	m.batches.Add(1)
	m.bags.Add(uint64(bags))
	m.points.Add(uint64(points))
	m.rowErrors.Add(uint64(rowErrors))
	m.mu.Lock()
	m.latencies[m.latCount%latencyWindow] = seconds
	m.latCount++
	m.latSumSecs += seconds
	m.mu.Unlock()
}

// quantiles returns the p50/p90/p99 of the latency window plus the
// cumulative count and sum.
func (m *metrics) quantiles() (q50, q90, q99 float64, count uint64, sum float64) {
	m.mu.Lock()
	n := int(m.latCount)
	if n > latencyWindow {
		n = latencyWindow
	}
	window := make([]float64, n)
	copy(window, m.latencies[:n])
	count, sum = m.latCount, m.latSumSecs
	m.mu.Unlock()
	if n == 0 {
		return 0, 0, 0, count, sum
	}
	sort.Float64s(window)
	at := func(p float64) float64 {
		i := int(p * float64(n-1))
		return window[i]
	}
	return at(0.5), at(0.9), at(0.99), count, sum
}

// render writes the Prometheus text exposition. The gauges that describe
// engine state (streams open, pool occupancy) and the engine's statistic
// name are sampled by the caller at scrape time and passed in.
func (m *metrics) render(w io.Writer, open, pooled int, statistic string) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	// Info-style gauge: the engine's per-inspection statistic as a label.
	// The router's fleet aggregation sums only UNLABELED samples, so this
	// passes through member scrapes without perturbing the fleet counters.
	fmt.Fprint(w, "# HELP bagcpd_engine_info Engine configuration identity (constant 1; statistic is the registry name in the snapshot fingerprint).\n# TYPE bagcpd_engine_info gauge\n")
	fmt.Fprintf(w, "bagcpd_engine_info{statistic=%q} 1\n", statistic)
	gauge("bagcpd_streams_open", "Open detector streams.", int64(open))
	gauge("bagcpd_detector_pool_free", "Warm detectors waiting in the recycle pool.", int64(pooled))
	gauge("bagcpd_inflight_batches", "Push batches currently executing.", m.inflight.Load())
	counter("bagcpd_push_batches_total", "Push batches accepted.", m.batches.Load())
	counter("bagcpd_push_bags_total", "Bags ingested.", m.bags.Load())
	counter("bagcpd_push_points_total", "Inspection points produced.", m.points.Load())
	counter("bagcpd_push_row_errors_total", "Per-row push errors.", m.rowErrors.Load())
	counter("bagcpd_push_rejected_total", "Push batches refused with 429 (back-pressure).", m.rejected.Load())
	counter("bagcpd_evictions_total", "Idle streams evicted.", m.evictions.Load())
	counter("bagcpd_snapshots_total", "Engine snapshots served.", m.snapshots.Load())
	counter("bagcpd_restores_total", "Engine restores applied.", m.restores.Load())
	counter("bagcpd_streams_extracted_total", "Streams extracted into migration envelopes.", m.extractions.Load())
	counter("bagcpd_streams_adopted_total", "Streams adopted from migration envelopes.", m.adoptions.Load())

	// EMD cost-amortization totals, sampled from the solver package at
	// scrape time (every detector solve publishes into them). The hit:eval
	// ratio shows how much ground-distance work the cost caches absorb.
	ge, ch, cm := emd.GlobalStats()
	counter("emd_ground_evals_total", "Ground-distance evaluations performed by EMD solves.", ge)
	counter("emd_cost_cache_hits_total", "Cost cells served from EMD ground-cost caches.", ch)
	counter("emd_cost_cache_misses_total", "Cost cells computed and stored into EMD ground-cost caches.", cm)

	q50, q90, q99, count, sum := m.quantiles()
	fmt.Fprintf(w, "# HELP bagcpd_push_batch_seconds Push batch latency (window of last %d batches).\n", latencyWindow)
	fmt.Fprint(w, "# TYPE bagcpd_push_batch_seconds summary\n")
	fmt.Fprintf(w, "bagcpd_push_batch_seconds{quantile=\"0.5\"} %g\n", q50)
	fmt.Fprintf(w, "bagcpd_push_batch_seconds{quantile=\"0.9\"} %g\n", q90)
	fmt.Fprintf(w, "bagcpd_push_batch_seconds{quantile=\"0.99\"} %g\n", q99)
	fmt.Fprintf(w, "bagcpd_push_batch_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "bagcpd_push_batch_seconds_count %d\n", count)
}
