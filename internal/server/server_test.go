package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/signature"
)

// testClock is a manually advanced clock for eviction tests.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testEngine(t testing.TB) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.EngineConfig{
		Template: core.Config{
			Tau: 3, TauPrime: 3,
			Bootstrap: bootstrap.Config{Replicates: 150},
		},
		Factory: signature.HistogramFactory(-6, 9, 24),
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func newTestServer(t testing.TB, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Engine: testEngine(t)}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// pushBody renders NDJSON push rows for the given streams at one step.
func pushBody(step int, ids ...string) string {
	var b strings.Builder
	for _, id := range ids {
		bagJSON, _ := json.Marshal(streamBag(id, step).Points)
		fmt.Fprintf(&b, "{\"stream\":%q,\"bag\":%s}\n", id, bagJSON)
	}
	return b.String()
}

// streamBag generates the step-th deterministic bag of a stream.
func streamBag(id string, step int) bag.Bag {
	rng := randx.New(randx.SplitSeedString(500, id) + int64(step))
	vals := make([]float64, 50)
	mu := 0.0
	if step >= 8 {
		mu = 3
	}
	for i := range vals {
		vals[i] = rng.Normal(mu, 1)
	}
	return bag.FromScalars(step, vals)
}

func doPush(t *testing.T, ts *httptest.Server, body string) []resultRow {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/push", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("push status %d: %s", resp.StatusCode, msg)
	}
	var rows []resultRow
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row resultRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad response row %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestPushNDJSON: rows stream back parallel to the input, pending while
// the window fills, scored afterwards, and every scored row is
// bit-identical to a standalone detector for that stream.
func TestPushNDJSON(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	ids := []string{"a", "b"}

	ref := make(map[string][]*core.Point)
	for _, id := range ids {
		det, err := core.New(srv.eng.StreamConfig(id))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 10; step++ {
			p, err := det.Push(streamBag(id, step))
			if err != nil {
				t.Fatal(err)
			}
			ref[id] = append(ref[id], p)
		}
	}

	for step := 0; step < 10; step++ {
		rows := doPush(t, ts, pushBody(step, ids...))
		if len(rows) != len(ids) {
			t.Fatalf("step %d: %d rows, want %d", step, len(rows), len(ids))
		}
		for i, id := range ids {
			row := rows[i]
			if row.Stream != id || row.BagT != step {
				t.Fatalf("step %d: row %+v, want stream %s bag_t %d", step, row, id, step)
			}
			want := ref[id][step]
			if want == nil {
				if !row.Pending || row.Score != nil {
					t.Fatalf("step %d stream %s: expected pending row, got %+v", step, id, row)
				}
				continue
			}
			if row.Score == nil || *row.Score != want.Score ||
				*row.Lo != want.Interval.Lo || *row.Up != want.Interval.Up ||
				*row.T != want.T || row.Alarm != want.Alarm {
				t.Fatalf("step %d stream %s: row %+v != reference %+v", step, id, row, want)
			}
		}
	}
}

// TestSnapshotRestoreHTTP is the rebalancing flow over real HTTP:
// push half the data into server A, GET its snapshot, POST it into a
// fresh server B, push the remaining data into B — B's scored rows must
// be byte-identical to an uninterrupted reference server's.
func TestSnapshotRestoreHTTP(t *testing.T) {
	ids := []string{"u-0", "u-1", "u-2"}
	const steps, cut = 14, 7

	// Uninterrupted reference.
	_, refTS := newTestServer(t, nil)
	var want [][]resultRow
	for step := 0; step < steps; step++ {
		rows := doPush(t, refTS, pushBody(step, ids...))
		if step >= cut {
			want = append(want, rows)
		}
	}

	_, tsA := newTestServer(t, nil)
	for step := 0; step < cut; step++ {
		doPush(t, tsA, pushBody(step, ids...))
	}
	resp, err := http.Get(tsA.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	envelope, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, envelope)
	}

	_, tsB := newTestServer(t, nil)
	resp, err = http.Post(tsB.URL+"/v1/restore", "application/json", strings.NewReader(string(envelope)))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d: %s", resp.StatusCode, msg)
	}

	for step := cut; step < steps; step++ {
		got := doPush(t, tsB, pushBody(step, ids...))
		wantRows := want[step-cut]
		if len(got) != len(wantRows) {
			t.Fatalf("step %d: %d rows, want %d", step, len(got), len(wantRows))
		}
		for i := range got {
			g, _ := json.Marshal(got[i])
			w, _ := json.Marshal(wantRows[i])
			if string(g) != string(w) {
				t.Fatalf("step %d row %d after restore:\n got %s\nwant %s", step, i, g, w)
			}
		}
	}
}

// TestRestoreMismatchedConfig: an envelope from a differently-configured
// engine is refused with 409 and the server stays usable.
func TestRestoreMismatchedConfig(t *testing.T) {
	_, tsA := newTestServer(t, nil)
	doPush(t, tsA, pushBody(0, "x"))
	resp, err := http.Get(tsA.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	envelope, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	otherEng, err := core.NewEngine(core.EngineConfig{
		Template: core.Config{Tau: 4, TauPrime: 4, Bootstrap: bootstrap.Config{Replicates: 150}},
		Factory:  signature.HistogramFactory(-6, 9, 24),
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := New(Config{Engine: otherEng})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()

	// Give server B live state of its own: a refused restore must leave
	// it exactly as it was, not wipe it.
	doPush(t, tsB, pushBody(0, "live"))
	doPush(t, tsB, pushBody(1, "live"))

	resp, err = http.Post(tsB.URL+"/v1/restore", "application/json", strings.NewReader(string(envelope)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("restore status %d, want 409", resp.StatusCode)
	}
	// The pre-conflict stream survives with its state intact: it is
	// still listed, and the next push continues its bag clock instead of
	// restarting at 0.
	st, ok := otherEng.Get("live")
	if !ok {
		t.Fatal("stream 'live' was wiped by the refused restore")
	}
	if got := st.Seq(); got != 2 {
		t.Fatalf("stream 'live' seq after refused restore = %d, want 2", got)
	}
	rows := doPushStatus(t, tsB, pushBody(2, "live"), http.StatusOK)
	if len(rows) != 1 || rows[0].BagT != 2 {
		t.Fatalf("post-conflict push rows = %+v, want one row with bag_t 2", rows)
	}
	// And the server still opens fresh streams.
	rows = doPushStatus(t, tsB, pushBody(0, "fresh"), http.StatusOK)
	if len(rows) != 1 {
		t.Fatalf("post-conflict push rows = %d", len(rows))
	}
}

func doPushStatus(t *testing.T, ts *httptest.Server, body string, wantStatus int) []resultRow {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/push", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("push status %d, want %d: %s", resp.StatusCode, wantStatus, raw)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var rows []resultRow
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var row resultRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	return rows
}

// TestBackPressure429: with MaxInFlight 1, a push stalled mid-request
// makes the next one bounce with 429 and a Retry-After header.
func TestBackPressure429(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxInFlight = 1 })

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		// This request holds the single in-flight slot for as long as its
		// body is unfinished.
		resp, err := http.Post(ts.URL+"/v1/push", "application/x-ndjson", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	// First line gets the handler past the semaphore and into body parsing.
	if _, err := pw.Write([]byte(pushBody(0, "slow"))); err != nil {
		t.Fatal(err)
	}

	// The stalled request may take a moment to reach the semaphore.
	var status int
	for i := 0; i < 100; i++ {
		resp, err := http.Post(ts.URL+"/v1/push", "application/x-ndjson", strings.NewReader(pushBody(0, "other")))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		status = resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if status == http.StatusTooManyRequests {
			if retryAfter == "" {
				t.Fatal("429 without Retry-After")
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("never saw 429, last status %d", status)
	}

	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The slot frees up: pushes succeed again.
	doPushStatus(t, ts, pushBody(1, "other"), http.StatusOK)
}

// TestIdleEviction: idle streams are closed after the TTL (detector
// recycled, tick clock forgotten), active streams survive, and the
// eviction counter moves.
func TestIdleEviction(t *testing.T) {
	clock := &testClock{t: time.Unix(1000, 0)}
	srv, ts := newTestServer(t, func(c *Config) {
		c.Now = clock.Now
		// IdleTTL deliberately NOT set: the janitor stays off and the test
		// drives EvictIdle with its synthetic clock.
	})

	doPush(t, ts, pushBody(0, "idle", "busy"))
	clock.Advance(30 * time.Second)
	doPush(t, ts, pushBody(1, "busy"))

	evicted := srv.EvictIdle(20 * time.Second)
	if len(evicted) != 1 || evicted[0] != "idle" {
		t.Fatalf("evicted %v, want [idle]", evicted)
	}
	if ids := srv.eng.StreamIDs(); len(ids) != 1 || ids[0] != "busy" {
		t.Fatalf("open streams %v, want [busy]", ids)
	}
	if stats := srv.eng.Stats(); stats.PooledFree != 1 {
		t.Fatalf("pool free = %d, want 1 (evicted detector recycled)", stats.PooledFree)
	}

	// The evicted stream restarts from scratch: bag_t goes back to 0.
	rows := doPush(t, ts, pushBody(0, "idle"))
	if rows[0].BagT != 0 {
		t.Fatalf("restarted stream bag_t = %d, want 0", rows[0].BagT)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "bagcpd_evictions_total 1") {
		t.Fatalf("metrics missing eviction count:\n%s", body)
	}
}

// TestStreamsAndClose: the lifecycle endpoints list and close streams.
func TestStreamsAndClose(t *testing.T) {
	_, ts := newTestServer(t, nil)
	doPush(t, ts, pushBody(0, "a", "b"))
	doPush(t, ts, pushBody(1, "a"))

	resp, err := http.Get(ts.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Streams []streamInfo `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Streams) != 2 {
		t.Fatalf("streams = %+v", listing.Streams)
	}
	if listing.Streams[0].ID != "a" || listing.Streams[0].Pushed != 2 {
		t.Fatalf("stream a = %+v, want 2 pushed", listing.Streams[0])
	}

	resp, err = http.Post(ts.URL+"/v1/streams/a/close", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/streams/a/close", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second close status %d, want 404", resp.StatusCode)
	}
}

// TestPushValidation: malformed batches are refused whole with 400.
func TestPushValidation(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatchBags = 4 })
	cases := map[string]string{
		"bad json":    "not json\n",
		"missing id":  `{"bag":[[1],[2]]}` + "\n",
		"empty bag":   `{"stream":"s","bag":[]}` + "\n",
		"ragged bag":  `{"stream":"s","bag":[[1],[2,3]]}` + "\n",
		"empty batch": "",
		"too many":    pushBody(0, "a", "b", "c", "d", "e"),
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			doPushStatus(t, ts, body, http.StatusBadRequest)
		})
	}
	// And nothing was half-applied: no streams opened.
	if n := len(testEngineIDs(t, ts)); n != 0 {
		t.Fatalf("%d streams opened by refused batches", n)
	}
}

func testEngineIDs(t *testing.T, ts *httptest.Server) []string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Streams []streamInfo `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(listing.Streams))
	for i, s := range listing.Streams {
		ids[i] = s.ID
	}
	return ids
}

// TestPushBodyTooLarge: the byte cap refuses oversized bodies with 413
// before buffering them (the row cap alone bounds rows, not memory).
func TestPushBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatchBytes = 512 })
	body := pushBody(0, "big") // one 50-point bag ≈ 1 KiB of JSON
	doPushStatus(t, ts, body, http.StatusRequestEntityTooLarge)
	// Within the cap, the same stream works.
	_, ts2 := newTestServer(t, nil)
	doPushStatus(t, ts2, body, http.StatusOK)
}

// TestPushErrorKeepsClockAligned: a bag that parses but fails inside the
// detector must not advance the stream's tick clock — the restore
// contract is tick clock == detector count, and the next good bag takes
// the label the failed one burned.
func TestPushErrorKeepsClockAligned(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	for step := 0; step < 3; step++ {
		doPush(t, ts, pushBody(step, "s"))
	}
	// 2-D bag into a 1-D histogram detector: valid wire row, Push error.
	rows := doPush(t, ts, `{"stream":"s","bag":[[1,2],[3,4]]}`+"\n")
	if rows[0].Error == "" {
		t.Fatal("expected a per-row detector error")
	}
	if infos := listStreams(t, ts); infos[0].Pushed != 3 {
		t.Fatalf("pushed = %d after failed bag, want 3", infos[0].Pushed)
	}
	rows = doPush(t, ts, pushBody(3, "s"))
	if rows[0].BagT != 3 {
		t.Fatalf("bag_t after failed bag = %d, want 3", rows[0].BagT)
	}
	// And the engine agrees with the server's clock.
	st, ok := srv.eng.Get("s")
	if !ok || st.Seq() != 4 {
		t.Fatalf("engine seq = %d, want 4", st.Seq())
	}

	// A stream whose very first row fails to OPEN leaves no bookkeeping:
	// its next life starts at tick 0. (Simulate via a bag the builder
	// rejects on a brand-new stream — the stream opens but count stays 0.)
	rows = doPush(t, ts, `{"stream":"fresh","bag":[[1,2],[3,4]]}`+"\n")
	if rows[0].Error == "" {
		t.Fatal("expected error")
	}
	rows = doPush(t, ts, pushBody(0, "fresh"))
	if rows[0].BagT != 0 {
		t.Fatalf("fresh stream bag_t = %d, want 0", rows[0].BagT)
	}
}

func listStreams(t *testing.T, ts *httptest.Server) []streamInfo {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Streams []streamInfo `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	return listing.Streams
}

// TestMetricsExposition: the scrape carries every metric family.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for step := 0; step < 7; step++ {
		doPush(t, ts, pushBody(step, "m"))
	}
	// One extract/adopt round trip so the migration counters move.
	adoptEnvelope(t, ts, extractStreams(t, ts, "m"))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"bagcpd_engine_info{statistic=\"kl\"} 1",
		"bagcpd_streams_open 1",
		"bagcpd_push_batches_total 7",
		"bagcpd_push_bags_total 7",
		"bagcpd_push_points_total 2", // window 6 → points at steps 5 and 6
		"bagcpd_push_batch_seconds{quantile=\"0.5\"}",
		"bagcpd_push_batch_seconds_count 7",
		"bagcpd_detector_pool_free 0",
		"bagcpd_inflight_batches 0",
		"bagcpd_streams_extracted_total 1",
		"bagcpd_streams_adopted_total 1",
		// EMD cost-amortization totals sampled from the solver package.
		// Values are process-wide (other tests solve EMDs too), so assert
		// only that the families are exposed.
		"# TYPE emd_ground_evals_total counter",
		"# TYPE emd_cost_cache_hits_total counter",
		"# TYPE emd_cost_cache_misses_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// extractStreams POSTs /v1/streams/extract and returns the raw envelope.
func extractStreams(t *testing.T, ts *httptest.Server, ids ...string) []byte {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"streams": ids})
	resp, err := http.Post(ts.URL+"/v1/streams/extract", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extract status %d: %s", resp.StatusCode, blob)
	}
	return blob
}

// adoptEnvelope POSTs an envelope to /v1/streams/adopt and returns the
// response status.
func adoptEnvelope(t *testing.T, ts *httptest.Server, envelope []byte) int {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/streams/adopt", "application/json", strings.NewReader(string(envelope)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// TestExtractAdoptHTTP: the migration hand-off over the wire — streams
// extracted from a donor keep scoring bit-identically after adoption on
// a receiver that already serves its own traffic.
func TestExtractAdoptHTTP(t *testing.T) {
	moving := []string{"x", "y"}
	staying := "z"
	const steps, cut = 14, 7

	// Uninterrupted reference for every stream involved.
	_, refTS := newTestServer(t, nil)
	want := make(map[string][]resultRow)
	for step := 0; step < steps; step++ {
		for _, id := range append(append([]string{}, moving...), staying, "resident") {
			rows := doPush(t, refTS, pushBody(step, id))
			want[id] = append(want[id], rows[0])
		}
	}

	_, donor := newTestServer(t, nil)
	_, receiver := newTestServer(t, nil)
	for step := 0; step < cut; step++ {
		doPush(t, donor, pushBody(step, append([]string{staying}, moving...)...))
		doPush(t, receiver, pushBody(step, "resident"))
	}

	envelope := extractStreams(t, donor, moving...)
	var snap core.EngineSnapshot
	if err := json.Unmarshal(envelope, &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Partial || len(snap.Streams) != len(moving) {
		t.Fatalf("extract envelope: partial=%t streams=%d, want partial with %d streams", snap.Partial, len(snap.Streams), len(moving))
	}

	// The donor no longer knows the streams: listed gone, re-extract 404.
	for _, info := range listStreams(t, donor) {
		if info.ID == moving[0] || info.ID == moving[1] {
			t.Fatalf("donor still lists extracted stream %s", info.ID)
		}
	}
	body, _ := json.Marshal(map[string]any{"streams": moving})
	resp, err := http.Post(donor.URL+"/v1/streams/extract", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("re-extract status %d, want 404", resp.StatusCode)
	}

	if got := adoptEnvelope(t, receiver, envelope); got != http.StatusOK {
		t.Fatalf("adopt status %d", got)
	}
	// Duplicate delivery of the same envelope must refuse loudly rather
	// than rewind the now-live streams.
	if got := adoptEnvelope(t, receiver, envelope); got != http.StatusConflict {
		t.Fatalf("duplicate adopt status %d, want 409", got)
	}
	// A differently-configured engine refuses the envelope outright.
	_, alien := newTestServer(t, func(c *Config) {
		eng, err := core.NewEngine(core.EngineConfig{
			Template: core.Config{Tau: 4, TauPrime: 4, Bootstrap: bootstrap.Config{Replicates: 150}},
			Factory:  signature.HistogramFactory(-6, 9, 24),
			Seed:     42,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Engine = eng
	})
	if got := adoptEnvelope(t, alien, envelope); got != http.StatusConflict {
		t.Fatalf("mismatched-config adopt status %d, want 409", got)
	}

	// Traffic continues on both sides; every row matches the reference.
	for step := cut; step < steps; step++ {
		for _, id := range moving {
			rows := doPush(t, receiver, pushBody(step, id))
			g, _ := json.Marshal(rows[0])
			w, _ := json.Marshal(want[id][step])
			if string(g) != string(w) {
				t.Fatalf("step %d stream %s after migration:\n got %s\nwant %s", step, id, g, w)
			}
		}
		rows := doPush(t, receiver, pushBody(step, "resident"))
		g, _ := json.Marshal(rows[0])
		w, _ := json.Marshal(want["resident"][step])
		if string(g) != string(w) {
			t.Fatalf("step %d resident stream:\n got %s\nwant %s", step, g, w)
		}
		rows = doPush(t, donor, pushBody(step, staying))
		g, _ = json.Marshal(rows[0])
		w, _ = json.Marshal(want[staying][step])
		if string(g) != string(w) {
			t.Fatalf("step %d staying stream:\n got %s\nwant %s", step, g, w)
		}
	}
}

// TestSnapshotDeltaHTTP: ?since=M serves only the streams mutated after
// mark M — the warm-standby refresh is O(dirty), not O(fleet).
func TestSnapshotDeltaHTTP(t *testing.T) {
	_, ts := newTestServer(t, nil)
	all := []string{"d-0", "d-1", "d-2", "d-3", "d-4"}
	doPush(t, ts, pushBody(0, all...))

	getSnap := func(query string) *core.EngineSnapshot {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/snapshot" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot%s status %d: %s", query, resp.StatusCode, blob)
		}
		var snap core.EngineSnapshot
		if err := json.Unmarshal(blob, &snap); err != nil {
			t.Fatal(err)
		}
		return &snap
	}

	full := getSnap("")
	if full.Partial || len(full.Streams) != len(all) {
		t.Fatalf("full snapshot: partial=%t streams=%d", full.Partial, len(full.Streams))
	}

	dirty := []string{"d-1", "d-3"}
	doPush(t, ts, pushBody(1, dirty...))
	delta := getSnap(fmt.Sprintf("?since=%d", full.Mark))
	if !delta.Partial || len(delta.Streams) != len(dirty) {
		t.Fatalf("delta: partial=%t streams=%d, want partial with %d", delta.Partial, len(delta.Streams), len(dirty))
	}
	for i, id := range dirty {
		if delta.Streams[i].ID != id {
			t.Fatalf("delta stream %d = %s, want %s", i, delta.Streams[i].ID, id)
		}
	}

	// Nothing mutated since the delta's own mark: the next delta is empty.
	empty := getSnap(fmt.Sprintf("?since=%d", delta.Mark))
	if len(empty.Streams) != 0 {
		t.Fatalf("delta-of-quiet: %d streams, want 0", len(empty.Streams))
	}

	resp, err := http.Get(ts.URL + "/v1/snapshot?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since mark status %d, want 400", resp.StatusCode)
	}
}
