// Package featsel implements the paper's first "future challenge" (§6):
// online feature selection for bag-of-data change detection. When only a
// few of the d dimensions of x carry change signal and the rest are
// noise, EMD in the full space dilutes the signal; given per-time-step
// labels ("change" / "no change"), which §6 notes can be collected
// online, the selector learns per-dimension relevance weights and scales
// bags so the metric concentrates on the informative dimensions.
//
// The relevance score of dimension j contrasts the per-dimension
// marginal shift (the 1-D Wasserstein distance between the pooled
// reference points and the pooled test points around an inspection time)
// at labeled change times against the same quantity at no-change times.
// Dimensions whose shift does not separate the two label classes get a
// small floor weight rather than zero, so a change in a previously quiet
// dimension can still be noticed.
package featsel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bag"
	"repro/internal/signature"
	"repro/internal/vec"
)

// Selector holds learned per-dimension relevance weights (max-normalized
// so the most relevant dimension has weight 1).
type Selector struct {
	Weights []float64
}

// Config controls learning.
type Config struct {
	// Tau and TauPrime define the windows around each labeled time
	// (matching the detector configuration the labels came from).
	Tau, TauPrime int
	// Floor is the minimum relative weight of an irrelevant dimension
	// (default 0.05).
	Floor float64
}

func (c Config) withDefaults() Config {
	if c.Floor <= 0 {
		c.Floor = 0.05
	}
	return c
}

// Learn estimates dimension weights from a labeled history. changeTimes
// are the indices t where a change was labeled (the first bag of the new
// regime); every other valid inspection time counts as "no change".
func Learn(seq bag.Sequence, changeTimes []int, cfg Config) (*Selector, error) {
	cfg = cfg.withDefaults()
	if cfg.Tau < 1 || cfg.TauPrime < 1 {
		return nil, fmt.Errorf("featsel: Tau and TauPrime must be >= 1, got %d/%d", cfg.Tau, cfg.TauPrime)
	}
	if len(seq) < cfg.Tau+cfg.TauPrime {
		return nil, fmt.Errorf("featsel: need at least %d bags, got %d", cfg.Tau+cfg.TauPrime, len(seq))
	}
	d := 0
	for _, b := range seq {
		if b.Len() > 0 {
			d = b.Dim()
			break
		}
	}
	if d == 0 {
		return nil, fmt.Errorf("featsel: sequence has no points")
	}

	isChange := map[int]bool{}
	for _, c := range changeTimes {
		isChange[c] = true
	}

	changeShift := make([]float64, d)
	quietShift := make([]float64, d)
	nChange, nQuiet := 0, 0
	for t := cfg.Tau; t+cfg.TauPrime <= len(seq); t++ {
		shifts, err := windowShifts(seq, t, cfg.Tau, cfg.TauPrime, d)
		if err != nil {
			return nil, err
		}
		if isChange[t] {
			vec.AddScaled(changeShift, 1, shifts)
			nChange++
		} else if !nearChange(t, changeTimes, cfg.TauPrime) {
			vec.AddScaled(quietShift, 1, shifts)
			nQuiet++
		}
	}
	if nChange == 0 {
		return nil, fmt.Errorf("featsel: no labeled change time falls inside the valid inspection range")
	}
	if nQuiet == 0 {
		return nil, fmt.Errorf("featsel: no quiet inspection times to contrast against")
	}
	vec.Scale(changeShift, 1/float64(nChange))
	vec.Scale(quietShift, 1/float64(nQuiet))

	w := make([]float64, d)
	maxW := 0.0
	for j := 0; j < d; j++ {
		// Relevance: shift excess at changes, relative to the quiet
		// baseline scale (adding a tiny eps keeps 0/0 defined).
		w[j] = (changeShift[j] - quietShift[j]) / (quietShift[j] + 1e-12)
		if w[j] < 0 {
			w[j] = 0
		}
		if w[j] > maxW {
			maxW = w[j]
		}
	}
	if maxW == 0 {
		return nil, fmt.Errorf("featsel: no dimension separates change from no-change labels")
	}
	for j := range w {
		w[j] /= maxW
		if w[j] < cfg.Floor {
			w[j] = cfg.Floor
		}
	}
	return &Selector{Weights: w}, nil
}

// nearChange reports whether t sits within tol of any change time
// (such borderline windows are excluded from the quiet statistics).
func nearChange(t int, changes []int, tol int) bool {
	for _, c := range changes {
		if t >= c-tol && t <= c+tol {
			return true
		}
	}
	return false
}

// windowShifts computes, per dimension, the 1-D Wasserstein distance
// between the pooled reference points (bags t−τ…t−1) and the pooled test
// points (bags t…t+τ′−1).
func windowShifts(seq bag.Sequence, t, tau, tauPrime, d int) ([]float64, error) {
	out := make([]float64, d)
	for j := 0; j < d; j++ {
		var ref, test []float64
		for i := t - tau; i < t; i++ {
			for _, p := range seq[i].Points {
				ref = append(ref, p[j])
			}
		}
		for i := t; i < t+tauPrime; i++ {
			for _, p := range seq[i].Points {
				test = append(test, p[j])
			}
		}
		if len(ref) == 0 || len(test) == 0 {
			return nil, fmt.Errorf("featsel: empty window at t=%d", t)
		}
		out[j] = wasserstein1(ref, test)
	}
	return out, nil
}

// wasserstein1 computes the exact 1-D Wasserstein-1 distance between two
// empirical distributions (sorted-CDF form).
func wasserstein1(a, b []float64) float64 {
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	// Merge the two CDFs over all breakpoints.
	na, nb := float64(len(as)), float64(len(bs))
	i, j := 0, 0
	dist := 0.0
	prev := math.Min(as[0], bs[0])
	for i < len(as) || j < len(bs) {
		var x float64
		switch {
		case i >= len(as):
			x = bs[j]
		case j >= len(bs):
			x = as[i]
		default:
			x = math.Min(as[i], bs[j])
		}
		fa := float64(i) / na
		fb := float64(j) / nb
		dist += math.Abs(fa-fb) * (x - prev)
		prev = x
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
	}
	return dist
}

// Transform scales every point of b by the learned weights, returning a
// new bag (the input is not modified).
func (s *Selector) Transform(b bag.Bag) bag.Bag {
	out := bag.Bag{T: b.T, Points: make([][]float64, len(b.Points))}
	for i, p := range b.Points {
		q := make([]float64, len(p))
		for j, v := range p {
			if j < len(s.Weights) {
				q[j] = v * s.Weights[j]
			} else {
				q[j] = v
			}
		}
		out.Points[i] = q
	}
	return out
}

// TransformSequence applies Transform to every bag.
func (s *Selector) TransformSequence(seq bag.Sequence) bag.Sequence {
	out := make(bag.Sequence, len(seq))
	for i, b := range seq {
		out[i] = s.Transform(b)
	}
	return out
}

// Builder wraps an inner signature builder so the weighting is applied
// transparently inside a detector Config.
func (s *Selector) Builder(inner signature.Builder) signature.Builder {
	return &weightedBuilder{sel: s, inner: inner}
}

type weightedBuilder struct {
	sel   *Selector
	inner signature.Builder
}

// Build implements signature.Builder.
func (wb *weightedBuilder) Build(b bag.Bag) (signature.Signature, error) {
	return wb.inner.Build(wb.sel.Transform(b))
}
