package featsel

import (
	"math"
	"testing"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/signature"
)

// noisySeq builds d-dimensional bags where ONLY dimension 0 shifts at the
// change times; the other dimensions are heavier-variance pure noise.
func noisySeq(rng *randx.RNG, n, d, size int, changes []int) bag.Sequence {
	isAfter := func(t int) float64 {
		shift := 0.0
		for _, c := range changes {
			if t >= c {
				shift += 2.5
			}
		}
		return shift
	}
	seq := make(bag.Sequence, n)
	for t := 0; t < n; t++ {
		pts := make([][]float64, size)
		for i := range pts {
			p := make([]float64, d)
			p[0] = rng.Normal(isAfter(t), 1)
			for j := 1; j < d; j++ {
				p[j] = rng.Normal(0, 4) // loud irrelevant noise
			}
			pts[i] = p
		}
		seq[t] = bag.New(t, pts)
	}
	return seq
}

func TestLearnRecoversInformativeDimension(t *testing.T) {
	rng := randx.New(1)
	changes := []int{15, 30}
	seq := noisySeq(rng, 45, 5, 60, changes)
	sel, err := Learn(seq, changes, Config{Tau: 5, TauPrime: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Weights) != 5 {
		t.Fatalf("got %d weights", len(sel.Weights))
	}
	if sel.Weights[0] != 1 {
		t.Errorf("informative dimension weight = %g, want 1 (max-normalized)", sel.Weights[0])
	}
	for j := 1; j < 5; j++ {
		if sel.Weights[j] > 0.5 {
			t.Errorf("noise dimension %d weight = %g, want small", j, sel.Weights[j])
		}
	}
}

func TestLearnValidation(t *testing.T) {
	rng := randx.New(2)
	seq := noisySeq(rng, 20, 2, 20, []int{10})
	if _, err := Learn(seq, []int{10}, Config{Tau: 0, TauPrime: 5}); err == nil {
		t.Error("Tau=0 accepted")
	}
	if _, err := Learn(seq[:4], []int{2}, Config{Tau: 5, TauPrime: 5}); err == nil {
		t.Error("short sequence accepted")
	}
	if _, err := Learn(seq, []int{500}, Config{Tau: 5, TauPrime: 5}); err == nil {
		t.Error("out-of-range change time accepted")
	}
	var empty bag.Sequence
	for i := 0; i < 20; i++ {
		empty = append(empty, bag.Bag{T: i})
	}
	if _, err := Learn(empty, []int{10}, Config{Tau: 5, TauPrime: 5}); err == nil {
		t.Error("pointless sequence accepted")
	}
}

func TestTransform(t *testing.T) {
	sel := &Selector{Weights: []float64{1, 0.1}}
	b := bag.New(0, [][]float64{{2, 10}})
	out := sel.Transform(b)
	if out.Points[0][0] != 2 || out.Points[0][1] != 1 {
		t.Errorf("Transform = %v", out.Points[0])
	}
	// Original untouched.
	if b.Points[0][1] != 10 {
		t.Error("Transform modified input")
	}
}

func TestWasserstein1(t *testing.T) {
	// Point masses at 0 vs 1: distance 1.
	if got := wasserstein1([]float64{0, 0}, []float64{1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("wasserstein1 = %g, want 1", got)
	}
	// Identical samples: 0.
	if got := wasserstein1([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("identical samples give %g", got)
	}
	// Shift by c: distance c.
	if got := wasserstein1([]float64{0, 1, 2}, []float64{5, 6, 7}); math.Abs(got-5) > 1e-12 {
		t.Errorf("shifted samples give %g, want 5", got)
	}
}

// TestSelectionImprovesDetection is the headline test of the §6
// extension: with 1 informative + 7 loud noise dimensions, learned
// weighting must sharpen the detector's score contrast at a held-out
// change compared to the unweighted pipeline.
func TestSelectionImprovesDetection(t *testing.T) {
	rng := randx.New(3)
	// Training history with labels.
	trainChanges := []int{15, 30}
	train := noisySeq(rng.Split(1), 45, 8, 60, trainChanges)
	sel, err := Learn(train, trainChanges, Config{Tau: 5, TauPrime: 5})
	if err != nil {
		t.Fatal(err)
	}

	// Held-out sequence with a change at 12.
	test := noisySeq(rng.Split(2), 24, 8, 60, []int{12})

	contrast := func(builder signature.Builder, seed int64) float64 {
		cfg := core.Config{
			Tau: 5, TauPrime: 5,
			Builder:   builder,
			Bootstrap: bootstrap.Config{Replicates: 100},
			Seed:      seed,
		}
		points, err := core.Run(cfg, test)
		if err != nil {
			t.Fatal(err)
		}
		var atChange float64
		var bg []float64
		for _, p := range points {
			if p.T == 12 {
				atChange = p.Score
			} else if p.T < 9 || p.T > 15 {
				bg = append(bg, p.Score)
			}
		}
		mean, sd := 0.0, 0.0
		for _, v := range bg {
			mean += v
		}
		mean /= float64(len(bg))
		for _, v := range bg {
			sd += (v - mean) * (v - mean)
		}
		sd = math.Sqrt(sd/float64(len(bg))) + 1e-9
		return (atChange - mean) / sd
	}

	newInner := func(seed int64) signature.Builder {
		return signature.NewKMeansBuilder(8, cluster.Config{}, randx.New(seed))
	}
	plain := contrast(newInner(10), 20)
	weighted := contrast(sel.Builder(newInner(10)), 20)
	if weighted <= plain {
		t.Errorf("weighted contrast %.2f <= plain %.2f — selection did not help", weighted, plain)
	}
}

func TestBuilderPropagatesError(t *testing.T) {
	sel := &Selector{Weights: []float64{1}}
	wb := sel.Builder(signature.NewHistogramBuilder(0, 1, 2))
	if _, err := wb.Build(bag.Bag{}); err == nil {
		t.Error("empty bag should error through the wrapper")
	}
}

func TestTransformSequence(t *testing.T) {
	sel := &Selector{Weights: []float64{2}}
	seq := bag.Sequence{bag.FromScalars(0, []float64{1, 2})}
	out := sel.TransformSequence(seq)
	if out[0].Points[1][0] != 4 {
		t.Errorf("TransformSequence = %v", out[0].Points)
	}
}
