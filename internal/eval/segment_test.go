package eval

import "testing"

func TestSegmentsBasic(t *testing.T) {
	segs := Segments([]int{50, 100}, 150, 1)
	want := []Segment{{0, 50}, {50, 100}, {100, 150}}
	if len(segs) != len(want) {
		t.Fatalf("Segments = %v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("Segments = %v, want %v", segs, want)
		}
	}
}

func TestSegmentsNoAlarms(t *testing.T) {
	segs := Segments(nil, 30, 1)
	if len(segs) != 1 || segs[0] != (Segment{0, 30}) {
		t.Fatalf("Segments = %v", segs)
	}
}

func TestSegmentsMergesBursts(t *testing.T) {
	// Alarm burst 50,51,52 is one change; 70 is another.
	segs := Segments([]int{50, 51, 52, 70}, 100, 5)
	want := []Segment{{0, 50}, {50, 70}, {70, 100}}
	if len(segs) != 3 {
		t.Fatalf("Segments = %v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("Segments = %v, want %v", segs, want)
		}
	}
}

func TestSegmentsIgnoresOutOfRange(t *testing.T) {
	segs := Segments([]int{-5, 0, 200}, 100, 1)
	if len(segs) != 1 {
		t.Fatalf("out-of-range alarms created segments: %v", segs)
	}
}

func TestSegmentsUnsortedInput(t *testing.T) {
	a := Segments([]int{70, 30}, 100, 1)
	b := Segments([]int{30, 70}, 100, 1)
	if len(a) != len(b) {
		t.Fatal("order sensitivity")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order sensitivity")
		}
	}
}

func TestSegmentsEmptyHorizon(t *testing.T) {
	if segs := Segments([]int{1}, 0, 1); segs != nil {
		t.Fatalf("Segments on empty horizon = %v", segs)
	}
}

func TestSegmentsDuplicateAlarms(t *testing.T) {
	// Repeated alarm times are one boundary, not several empty segments.
	segs := Segments([]int{40, 40, 40, 40}, 100, 1)
	want := []Segment{{0, 40}, {40, 100}}
	if len(segs) != len(want) {
		t.Fatalf("Segments = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("Segments = %v, want %v", segs, want)
		}
	}
}

func TestSegmentsBurstAtHorizonBoundary(t *testing.T) {
	// A burst running into the end of the horizon merges to its first
	// alarm and still leaves a non-empty final segment.
	segs := Segments([]int{97, 98, 99}, 100, 5)
	want := []Segment{{0, 97}, {97, 100}}
	if len(segs) != len(want) {
		t.Fatalf("Segments = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("Segments = %v, want %v", segs, want)
		}
	}
	// An alarm exactly at the last step keeps the tail segment non-empty.
	segs = Segments([]int{99}, 100, 5)
	if len(segs) != 2 || segs[1] != (Segment{99, 100}) {
		t.Fatalf("Segments = %v, want [{0 99} {99 100}]", segs)
	}
}

func TestSegmentsNonPositiveHorizon(t *testing.T) {
	if segs := Segments([]int{1, 2}, -3, 1); segs != nil {
		t.Fatalf("Segments on negative horizon = %v, want nil", segs)
	}
}

func TestSegmentsMinGapFloor(t *testing.T) {
	// minGap < 1 is promoted to 1: distinct adjacent alarms are distinct
	// boundaries, duplicates still merge.
	segs := Segments([]int{10, 10, 11}, 20, 0)
	want := []Segment{{0, 10}, {10, 11}, {11, 20}}
	if len(segs) != len(want) {
		t.Fatalf("Segments = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("Segments = %v, want %v", segs, want)
		}
	}
}

func TestCoveringSegment(t *testing.T) {
	segs := Segments([]int{50}, 100, 1)
	s, ok := CoveringSegment(segs, 75)
	if !ok || s.Start != 50 || s.End != 100 {
		t.Fatalf("CoveringSegment = %v %v", s, ok)
	}
	if _, ok := CoveringSegment(segs, 100); ok {
		t.Fatal("t=n should not be covered (half-open)")
	}
	if _, ok := CoveringSegment(segs, -1); ok {
		t.Fatal("negative t covered")
	}
}

func TestSegmentsPartitionProperty(t *testing.T) {
	// Segments must partition [0, n): contiguous, non-overlapping, and
	// covering.
	for _, alarms := range [][]int{{}, {1}, {1, 2, 3}, {10, 20, 30}, {99}, {5, 5, 5}} {
		segs := Segments(alarms, 100, 3)
		if segs[0].Start != 0 || segs[len(segs)-1].End != 100 {
			t.Fatalf("%v: not covering: %v", alarms, segs)
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].Start != segs[i-1].End {
				t.Fatalf("%v: gap/overlap: %v", alarms, segs)
			}
			if segs[i].Start >= segs[i].End {
				t.Fatalf("%v: empty segment: %v", alarms, segs)
			}
		}
	}
}
