// Offline distance-profile multi-change-point detection, in the style of
// Dubey & Zheng (arXiv 2311.16025): segmentation of a bag sequence from
// nothing but its pairwise distance matrix.
//
// The streaming detector in internal/core judges one inspection point at
// a time through a τ/τ′ window. Retrospective corpus analyses already
// compute the full pairwise EMD matrix (core.Pairwise, the Fig. 6
// heatmaps), and that matrix contains strictly more information than any
// single window sweep: for every observation i, the multiset of its
// distances to a candidate left segment and to a candidate right segment
// — its distance PROFILE — has the same distribution on both sides
// exactly when no change separates them. DistProfile turns that into a
// multi-change-point detector:
//
//   - for a candidate split c of a segment, every observation i
//     contributes a Cramér–von Mises-type discrepancy between the
//     empirical CDFs of its distances into the left part and into the
//     right part;
//   - the scan statistic T(c) averages the discrepancies over all i,
//     weighted by |L||R|/m² so near-degenerate splits don't win on
//     variance, and the best split arg-max_c T(c) is the candidate
//     change point;
//   - significance comes from a permutation bootstrap: shuffling the
//     segment's time order detaches distances from chronology while
//     keeping the exact distance population, so the permuted maxima
//     sample the null "no change" distribution of the scan maximum;
//   - binary segmentation recurses into both halves while splits stay
//     significant, yielding every change point in one pass over the
//     matrix — no window lengths, no alarm threshold.
//
// Complexity: a scan over a segment of m observations presorts each
// row's in-segment distances once (O(m² log m)) and then walks each
// candidate split in O(m²), i.e. O(m³) per scan and O(m³ (1+R)) with R
// permutation replicates. That is the intended regime: corpus-scale
// n ≲ a few thousand, where the pairwise matrix itself (n² EMD solves)
// already dominated.
package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/randx"
)

// DistProfileConfig parameterizes DistProfile. The zero value is ready
// to use.
type DistProfileConfig struct {
	// MinSegment is the smallest number of observations a segment may
	// hold on either side of a split (and hence the closest a change
	// point can sit to the horizon edges). Values below 2 are promoted
	// to 2: a one-observation side has no distance distribution to
	// compare.
	MinSegment int
	// Replicates is the number of permutation replicates behind each
	// split's p-value (default 199). The resolution of attainable
	// p-values is 1/(Replicates+1).
	Replicates int
	// Alpha is the significance level recursion stops at (default 0.05):
	// a split is accepted, and its halves scanned in turn, while
	// PValue <= Alpha.
	Alpha float64
	// Seed drives the permutation RNG (and nothing else). Fixed seed,
	// fixed matrix → bit-identical output.
	Seed int64
	// MaxChanges caps how many change points are returned, 0 = no cap.
	// The cap binds the binary-segmentation recursion, so the points
	// found under a cap are the strongest splits in scan order.
	MaxChanges int
}

func (c DistProfileConfig) withDefaults() DistProfileConfig {
	if c.MinSegment < 2 {
		c.MinSegment = 2
	}
	if c.Replicates <= 0 {
		c.Replicates = 199
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
	return c
}

// ChangePoint is one detected change, reported as the half-open
// boundary: observations [SegStart, T) precede the change, [T, SegEnd)
// follow it (SegStart/SegEnd delimit the segment the split was found
// in, so nested changes report their local context).
type ChangePoint struct {
	// T is the change point: the index of the first observation of the
	// new regime.
	T int
	// Stat is the scan statistic at the split — comparable across
	// change points, larger is stronger, and the ranking key of
	// DistProfile's result.
	Stat float64
	// PValue is the permutation p-value of the split within its
	// segment, never below 1/(Replicates+1).
	PValue float64
	// SegStart, SegEnd delimit the segment the split was scanned in.
	SegStart, SegEnd int
}

// DistProfile detects every change point of the sequence behind the
// pairwise distance matrix m, returned ranked by scan statistic
// (strongest change first). The matrix rows/columns must be in time
// order — it is the only input; the bags themselves are never touched.
func DistProfile(m *core.PairwiseMatrix, cfg DistProfileConfig) ([]ChangePoint, error) {
	if m == nil {
		return nil, fmt.Errorf("eval: DistProfile requires a pairwise matrix")
	}
	cfg = cfg.withDefaults()
	n := m.N()
	if n < 2*cfg.MinSegment {
		return nil, fmt.Errorf("eval: matrix has %d observations, need >= %d (2×MinSegment)", n, 2*cfg.MinSegment)
	}
	s := &dpScanner{m: m, cfg: cfg, rng: randx.New(cfg.Seed)}
	var out []ChangePoint
	s.segment(0, n, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stat != out[j].Stat {
			return out[i].Stat > out[j].Stat
		}
		return out[i].T < out[j].T // deterministic order on exact ties
	})
	return out, nil
}

// ChangeTimes extracts the change times of points in ascending time
// order — the boundary list Segments-style consumers want.
func ChangeTimes(points []ChangePoint) []int {
	out := make([]int, len(points))
	for i, p := range points {
		out[i] = p.T
	}
	sort.Ints(out)
	return out
}

type dpScanner struct {
	m     *core.PairwiseMatrix
	cfg   DistProfileConfig
	rng   *randx.RNG
	found int
}

// segment scans [lo, hi), recursing into both halves of a significant
// split. Recursion order is deterministic (left half first), so the
// permutation RNG consumption — and with it the full output — is a
// pure function of (matrix, config).
func (s *dpScanner) segment(lo, hi int, out *[]ChangePoint) {
	if s.cfg.MaxChanges > 0 && s.found >= s.cfg.MaxChanges {
		return
	}
	if hi-lo < 2*s.cfg.MinSegment {
		return
	}
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	best, bestStat := s.scan(idx)
	if best < 0 {
		return
	}
	// Permutation null: shuffle the segment's time order and rescan. The
	// observed max is included in its own null sample (the +1s), so the
	// p-value is exact and never zero.
	exceed := 0
	perm := make([]int, len(idx))
	copy(perm, idx)
	for r := 0; r < s.cfg.Replicates; r++ {
		s.rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if _, stat := s.scan(perm); stat >= bestStat {
			exceed++
		}
	}
	p := float64(exceed+1) / float64(s.cfg.Replicates+1)
	if p > s.cfg.Alpha {
		return
	}
	t := lo + best
	*out = append(*out, ChangePoint{T: t, Stat: bestStat, PValue: p, SegStart: lo, SegEnd: hi})
	s.found++
	s.segment(lo, t, out)
	s.segment(t, hi, out)
}

// scan returns the best split offset (in [MinSegment, m−MinSegment],
// relative to idx) and its scan statistic over the segment whose
// observations, in candidate time order, are idx. idx carries the
// permutation: idx[k] is the matrix row playing time-position k.
func (s *dpScanner) scan(idx []int) (best int, bestStat float64) {
	m := len(idx)
	// Presort each observation's in-segment distances ONCE, keeping for
	// each distance the time position of its counterpart. A split then
	// classifies every entry left/right by position in O(1), and the
	// CvM discrepancy over the merged order falls out of one pass.
	type distPos struct {
		d   float64
		pos int
	}
	rows := make([][]distPos, m)
	for k, i := range idx {
		row := make([]distPos, 0, m-1)
		for l, j := range idx {
			if l == k {
				continue
			}
			row = append(row, distPos{d: s.m.At(i, j), pos: l})
		}
		sort.Slice(row, func(a, b int) bool {
			if row[a].d != row[b].d {
				return row[a].d < row[b].d
			}
			return row[a].pos < row[b].pos // total order: permutation-invariant ties
		})
		rows[k] = row
	}
	best, bestStat = -1, math.Inf(-1)
	for c := s.cfg.MinSegment; c <= m-s.cfg.MinSegment; c++ {
		nL, nR := c, m-c
		var total float64
		for k := range rows {
			// Observation k's own side loses one member (no self-distance).
			cntL, cntR := nL, nR
			if k < c {
				cntL--
			} else {
				cntR--
			}
			if cntL == 0 || cntR == 0 {
				continue
			}
			// Walk the merged sorted distances maintaining both empirical
			// CDFs; the CvM-type discrepancy averages (F_L−F_R)² over the
			// m−1 merge steps.
			var seenL, seenR int
			var sum float64
			for _, e := range rows[k] {
				if e.pos < c {
					seenL++
				} else {
					seenR++
				}
				diff := float64(seenL)/float64(cntL) - float64(seenR)/float64(cntR)
				sum += diff * diff
			}
			total += sum / float64(len(rows[k]))
		}
		// |L||R|/m² weighting: a CvM gap measured from a handful of
		// observations on one side must out-discriminate, not out-vary,
		// a balanced split.
		stat := float64(nL) * float64(nR) / float64(m*m) * total / float64(m)
		if stat > bestStat {
			best, bestStat = c, stat
		}
	}
	return best, bestStat
}
