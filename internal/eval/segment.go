package eval

import "sort"

// Segment is a half-open interval [Start, End) of time steps governed by
// one regime.
type Segment struct {
	Start, End int
}

// Segments converts a set of alarm times into a segmentation of the
// horizon [0, n): consecutive alarms within minGap steps of each other
// are merged into a single boundary (an alarm burst marks one change),
// and each surviving boundary starts a new segment. This is the
// time-series segmentation use of change-point detection described in
// the paper's introduction.
func Segments(alarms []int, n, minGap int) []Segment {
	if n <= 0 {
		return nil
	}
	if minGap < 1 {
		minGap = 1
	}
	sorted := append([]int(nil), alarms...)
	sort.Ints(sorted)
	var boundaries []int
	for _, a := range sorted {
		if a <= 0 || a >= n {
			continue
		}
		if len(boundaries) > 0 && a-boundaries[len(boundaries)-1] < minGap {
			continue // same burst
		}
		boundaries = append(boundaries, a)
	}
	segments := make([]Segment, 0, len(boundaries)+1)
	start := 0
	for _, b := range boundaries {
		segments = append(segments, Segment{Start: start, End: b})
		start = b
	}
	segments = append(segments, Segment{Start: start, End: n})
	return segments
}

// CoveringSegment returns the segment containing time t, or a zero
// Segment and false when t is outside every segment.
func CoveringSegment(segments []Segment, t int) (Segment, bool) {
	for _, s := range segments {
		if t >= s.Start && t < s.End {
			return s, true
		}
	}
	return Segment{}, false
}
