package eval

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/signature"
)

// dpMatrix builds the pairwise EMD matrix of a 1-D Gaussian sequence
// whose mean walks through the given regimes, seg bags per regime.
func dpMatrix(t *testing.T, means []float64, seg int) *core.PairwiseMatrix {
	t.Helper()
	rng := randx.New(1234)
	var seq bag.Sequence
	for r, mu := range means {
		for k := 0; k < seg; k++ {
			vals := make([]float64, 30)
			for i := range vals {
				vals[i] = rng.Normal(mu, 0.3)
			}
			seq = append(seq, bag.FromScalars(r*seg+k, vals))
		}
	}
	m, err := core.Pairwise(seq,
		core.WithPairBuilderFactory(signature.HistogramFactory(-3, 9, 24), 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDistProfileRecoversChanges(t *testing.T) {
	// Three regimes (mean 0→3→1), 12 bags each: changes at t=12 and t=24.
	m := dpMatrix(t, []float64{0, 3, 1}, 12)
	points, err := DistProfile(m, DistProfileConfig{Replicates: 99, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	times := ChangeTimes(points)
	if len(times) != 2 {
		t.Fatalf("detected %d change points %v, want 2 near [12 24]", len(times), times)
	}
	for i, want := range []int{12, 24} {
		if d := times[i] - want; d < -2 || d > 2 {
			t.Fatalf("change %d detected at t=%d, want within ±2 of %d", i, times[i], want)
		}
	}
	for _, p := range points {
		if p.T < p.SegStart || p.T >= p.SegEnd {
			t.Fatalf("change at t=%d outside its own segment [%d,%d)", p.T, p.SegStart, p.SegEnd)
		}
		if p.PValue > 0.05 || p.PValue < 1.0/100 {
			t.Fatalf("p-value %v outside (1/(R+1), alpha]", p.PValue)
		}
		if math.IsNaN(p.Stat) || p.Stat <= 0 {
			t.Fatalf("scan statistic %v not positive", p.Stat)
		}
	}
	// Result is ranked by statistic, strongest first.
	for i := 1; i < len(points); i++ {
		if points[i-1].Stat < points[i].Stat {
			t.Fatalf("points not ranked by Stat: %v", points)
		}
	}
}

func TestDistProfileNullFindsNothing(t *testing.T) {
	// One regime, no change: the permutation test must refuse every split.
	m := dpMatrix(t, []float64{0}, 30)
	points, err := DistProfile(m, DistProfileConfig{Replicates: 99, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 {
		t.Fatalf("null sequence yielded change points: %v", points)
	}
}

func TestDistProfileDeterministic(t *testing.T) {
	m := dpMatrix(t, []float64{0, 3}, 10)
	cfg := DistProfileConfig{Replicates: 49, Seed: 7}
	a, err := DistProfile(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistProfile(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same matrix, same config, different output:\n%v\n%v", a, b)
	}
}

func TestDistProfileMaxChanges(t *testing.T) {
	// Three well-separated regimes → two true changes; the cap keeps only
	// the first split the recursion accepts.
	m := dpMatrix(t, []float64{0, 3, 6}, 10)
	points, err := DistProfile(m, DistProfileConfig{Replicates: 99, Seed: 3, MaxChanges: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("MaxChanges=1 returned %d points: %v", len(points), points)
	}
	uncapped, err := DistProfile(m, DistProfileConfig{Replicates: 99, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(uncapped) <= 1 {
		t.Fatalf("uncapped run found %d points, cap test is vacuous", len(uncapped))
	}
}

func TestDistProfileErrors(t *testing.T) {
	if _, err := DistProfile(nil, DistProfileConfig{}); err == nil {
		t.Fatal("nil matrix accepted")
	}
	small := dpMatrix(t, []float64{0}, 3)
	if _, err := DistProfile(small, DistProfileConfig{}); err == nil {
		t.Fatal("3-observation matrix accepted (needs >= 2×MinSegment)")
	}
	// MinSegment is honoured, not just the default minimum.
	ten := dpMatrix(t, []float64{0}, 10)
	if _, err := DistProfile(ten, DistProfileConfig{MinSegment: 6}); err == nil {
		t.Fatal("10 observations accepted with MinSegment=6")
	}
}

func TestChangeTimesSortsAscending(t *testing.T) {
	points := []ChangePoint{{T: 24, Stat: 0.9}, {T: 12, Stat: 0.5}, {T: 40, Stat: 0.7}}
	got := ChangeTimes(points)
	want := []int{12, 24, 40}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ChangeTimes = %v, want %v", got, want)
	}
	if len(ChangeTimes(nil)) != 0 {
		t.Fatal("ChangeTimes(nil) not empty")
	}
}
