package eval

import (
	"math"
	"strings"
	"testing"
)

func TestMatchPerfectDetection(t *testing.T) {
	m := Match([]int{50, 100}, []int{50, 100}, 0, 3)
	if m.TruePositives != 2 || m.FalseNegatives != 0 || m.FalseAlarms != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Precision() != 1 || m.Recall() != 1 || m.F1() != 1 {
		t.Errorf("P/R/F1 = %g/%g/%g", m.Precision(), m.Recall(), m.F1())
	}
	if m.MeanDelay != 0 {
		t.Errorf("delay = %g", m.MeanDelay)
	}
}

func TestMatchWithDelay(t *testing.T) {
	m := Match([]int{52, 103}, []int{50, 100}, 0, 5)
	if m.TruePositives != 2 {
		t.Fatalf("TP = %d", m.TruePositives)
	}
	if math.Abs(m.MeanDelay-2.5) > 1e-12 {
		t.Errorf("MeanDelay = %g, want 2.5", m.MeanDelay)
	}
}

func TestMatchFalseAlarm(t *testing.T) {
	m := Match([]int{20, 50}, []int{50}, 0, 2)
	if m.FalseAlarms != 1 || m.TruePositives != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Precision() != 0.5 {
		t.Errorf("precision = %g", m.Precision())
	}
}

func TestMatchMissedChange(t *testing.T) {
	m := Match(nil, []int{50}, 0, 5)
	if m.FalseNegatives != 1 || m.Recall() != 0 {
		t.Errorf("metrics = %+v", m)
	}
	// No alarms raised: precision defined as 1.
	if m.Precision() != 1 {
		t.Errorf("precision = %g", m.Precision())
	}
	if m.F1() != 0 {
		t.Errorf("F1 = %g", m.F1())
	}
}

func TestMatchMultipleAlarmsOneChange(t *testing.T) {
	m := Match([]int{50, 51, 52}, []int{50}, 0, 5)
	if m.TruePositives != 1 {
		t.Errorf("TP = %d, change should count once", m.TruePositives)
	}
	if m.MatchedAlarms != 3 {
		t.Errorf("MatchedAlarms = %d", m.MatchedAlarms)
	}
	// Delay uses the FIRST matching alarm.
	if m.MeanDelay != 0 {
		t.Errorf("delay = %g, want 0", m.MeanDelay)
	}
}

func TestMatchBeforeTolerance(t *testing.T) {
	// An alarm slightly before the labelled change (common when the
	// window straddles it) matches only when before > 0.
	if m := Match([]int{49}, []int{50}, 0, 5); m.TruePositives != 0 {
		t.Error("alarm before change matched with before=0")
	}
	if m := Match([]int{49}, []int{50}, 2, 5); m.TruePositives != 1 {
		t.Error("alarm before change not matched with before=2")
	}
}

func TestMatchNearestChangeWins(t *testing.T) {
	// One alarm between two changes matches the nearer one.
	m := Match([]int{58}, []int{50, 60}, 5, 5)
	if m.TruePositives != 1 || m.FalseNegatives != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.MeanDelay != -2 {
		t.Errorf("delay = %g, want -2 (matched the change at 60)", m.MeanDelay)
	}
}

func TestMatchPanicsOnNegativeTolerance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Match(nil, nil, -1, 0)
}

func TestMetricsString(t *testing.T) {
	s := Match([]int{50}, []int{50}, 0, 1).String()
	if !strings.Contains(s, "P=1.00") || !strings.Contains(s, "R=1.00") {
		t.Errorf("String = %q", s)
	}
}

func TestEmptyEverything(t *testing.T) {
	m := Match(nil, nil, 0, 5)
	if m.Precision() != 1 || m.Recall() != 1 {
		t.Errorf("vacuous metrics = %+v", m)
	}
}

func TestSweepThreshold(t *testing.T) {
	scores := []float64{0.1, 0.2, 5.0, 0.3, 6.0, 0.1}
	times := []int{10, 11, 12, 13, 14, 15}
	changes := []int{12, 14}
	sweep := SweepThreshold(scores, times, changes, 0, 0, []float64{1.0, 10.0})
	// Threshold 1.0: alarms at 12 and 14 → perfect.
	if sweep[0].F1() != 1 {
		t.Errorf("threshold 1.0 F1 = %g", sweep[0].F1())
	}
	// Threshold 10: no alarms → recall 0.
	if sweep[1].Recall() != 0 {
		t.Errorf("threshold 10 recall = %g", sweep[1].Recall())
	}
	best, idx := BestF1(sweep)
	if idx != 0 || best.F1() != 1 {
		t.Errorf("BestF1 = %+v at %d", best, idx)
	}
}

func TestSweepThresholdValidatesLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SweepThreshold([]float64{1}, []int{1, 2}, nil, 0, 0, []float64{0})
}

func TestBestF1Empty(t *testing.T) {
	_, idx := BestF1(nil)
	if idx != -1 {
		t.Errorf("BestF1(nil) index = %d", idx)
	}
}
