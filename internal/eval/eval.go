// Package eval scores change-point detections against ground truth: it
// matches raised alarms to true change points within a tolerance window
// and reports precision, recall, F1, mean detection delay, and false
// alarm counts. It is used by the experiment drivers and EXPERIMENTS.md
// to quantify the per-figure reproductions.
package eval

import (
	"fmt"
	"sort"
)

// Metrics summarizes detection quality for one run.
type Metrics struct {
	// TruePositives counts true change points matched by >= 1 alarm.
	TruePositives int
	// FalseNegatives counts true change points with no matching alarm.
	FalseNegatives int
	// FalseAlarms counts alarms not matched to any true change point.
	FalseAlarms int
	// MatchedAlarms counts alarms that matched some change point
	// (several alarms may match the same change).
	MatchedAlarms int
	// MeanDelay is the average (alarm time − change time) over the first
	// matching alarm of each detected change; 0 if none detected.
	MeanDelay float64
}

// Precision is MatchedAlarms / all alarms (1 if no alarms were raised).
func (m Metrics) Precision() float64 {
	total := m.MatchedAlarms + m.FalseAlarms
	if total == 0 {
		return 1
	}
	return float64(m.MatchedAlarms) / float64(total)
}

// Recall is TruePositives / all true changes (1 if there were none).
func (m Metrics) Recall() float64 {
	total := m.TruePositives + m.FalseNegatives
	if total == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(total)
}

// F1 is the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f (TP=%d FN=%d FA=%d, delay=%.1f)",
		m.Precision(), m.Recall(), m.F1(), m.TruePositives, m.FalseNegatives, m.FalseAlarms, m.MeanDelay)
}

// Match scores alarms against true change points. An alarm at time a
// matches a change at time c when c−before <= a <= c+after (detection is
// allowed to lag: typical use is before=0, after=tolerance). Each alarm
// matches at most one change (the nearest); each change may be matched by
// several alarms but counts once.
func Match(alarms, changes []int, before, after int) Metrics {
	if before < 0 || after < 0 {
		panic(fmt.Sprintf("eval: negative tolerance %d/%d", before, after))
	}
	sortedAlarms := append([]int(nil), alarms...)
	sort.Ints(sortedAlarms)
	sortedChanges := append([]int(nil), changes...)
	sort.Ints(sortedChanges)

	matchedChange := make([]bool, len(sortedChanges))
	firstDelay := make(map[int]int) // change index → delay of first alarm
	var m Metrics
	for _, a := range sortedAlarms {
		best, bestDist := -1, 1<<62
		for ci, c := range sortedChanges {
			if a < c-before || a > c+after {
				continue
			}
			dist := a - c
			if dist < 0 {
				dist = -dist
			}
			if dist < bestDist {
				best, bestDist = ci, dist
			}
		}
		if best == -1 {
			m.FalseAlarms++
			continue
		}
		m.MatchedAlarms++
		if !matchedChange[best] {
			matchedChange[best] = true
			firstDelay[best] = a - sortedChanges[best]
		}
	}
	totalDelay := 0
	for ci, matched := range matchedChange {
		if matched {
			m.TruePositives++
			totalDelay += firstDelay[ci]
		} else {
			m.FalseNegatives++
		}
	}
	if m.TruePositives > 0 {
		m.MeanDelay = float64(totalDelay) / float64(m.TruePositives)
	}
	return m
}

// SweepThreshold evaluates a fixed-threshold detector over a score series
// for every threshold in thresholds: an alarm fires at index i (mapped to
// time times[i]) whenever scores[i] > threshold. It returns one Metrics
// per threshold. This is the baseline against which the paper's adaptive
// CI threshold is compared.
func SweepThreshold(scores []float64, times []int, changes []int, before, after int, thresholds []float64) []Metrics {
	if len(scores) != len(times) {
		panic(fmt.Sprintf("eval: scores/times length mismatch %d != %d", len(scores), len(times)))
	}
	out := make([]Metrics, len(thresholds))
	for ti, th := range thresholds {
		var alarms []int
		for i, s := range scores {
			if s > th {
				alarms = append(alarms, times[i])
			}
		}
		out[ti] = Match(alarms, changes, before, after)
	}
	return out
}

// BestF1 returns the metrics and threshold index achieving the highest F1
// in a SweepThreshold result (ties resolve to the first).
func BestF1(sweep []Metrics) (Metrics, int) {
	best, bi := Metrics{}, -1
	bestF1 := -1.0
	for i, m := range sweep {
		if f := m.F1(); f > bestF1 {
			best, bi, bestF1 = m, i, f
		}
	}
	return best, bi
}
