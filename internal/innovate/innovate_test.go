package innovate

import (
	"math"
	"testing"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/signature"
)

// arRun generates an AR(1) run with coefficient phi and innovation sd
// sigma, started from stationarity.
func arRun(rng *randx.RNG, n int, phi, sigma float64) []float64 {
	out := make([]float64, n)
	marginal := sigma / math.Sqrt(1-phi*phi)
	out[0] = rng.Normal(0, marginal)
	for i := 1; i < n; i++ {
		out[i] = phi*out[i-1] + rng.Normal(0, sigma)
	}
	return out
}

func TestFitARRecoversCoefficient(t *testing.T) {
	rng := randx.New(1)
	xs := arRun(rng, 5000, 0.8, 1)
	coef, innovVar, err := FitAR(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-0.8) > 0.05 {
		t.Errorf("phi = %g, want 0.8", coef[0])
	}
	if math.Abs(innovVar-1) > 0.15 {
		t.Errorf("innovation variance = %g, want 1", innovVar)
	}
}

func TestFitARHigherOrder(t *testing.T) {
	// AR(2): x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + e.
	rng := randx.New(2)
	n := 8000
	xs := make([]float64, n)
	for i := 2; i < n; i++ {
		xs[i] = 0.5*xs[i-1] + 0.3*xs[i-2] + rng.Normal(0, 1)
	}
	coef, _, err := FitAR(xs[100:], 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-0.5) > 0.07 || math.Abs(coef[1]-0.3) > 0.07 {
		t.Errorf("coefficients = %v, want [0.5 0.3]", coef)
	}
}

func TestFitARValidation(t *testing.T) {
	if _, _, err := FitAR([]float64{1, 2, 3}, 0); err == nil {
		t.Error("order 0 accepted")
	}
	if _, _, err := FitAR([]float64{1, 2}, 1); err == nil {
		t.Error("too-short run accepted")
	}
	if _, _, err := FitAR([]float64{5, 5, 5, 5, 5}, 1); err == nil {
		t.Error("constant run accepted")
	}
}

func TestResidualsAreWhite(t *testing.T) {
	rng := randx.New(3)
	xs := arRun(rng, 4000, 0.9, 1)
	coef, _, err := FitAR(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := Residuals(xs, coef)
	if len(res) != len(xs)-1 {
		t.Fatalf("residual length %d", len(res))
	}
	// Lag-1 autocorrelation of residuals must be near zero while the
	// raw series has ~0.9.
	acf := func(v []float64) float64 {
		m := 0.0
		for _, x := range v {
			m += x
		}
		m /= float64(len(v))
		num, den := 0.0, 0.0
		for i := 1; i < len(v); i++ {
			num += (v[i] - m) * (v[i-1] - m)
		}
		for _, x := range v {
			den += (x - m) * (x - m)
		}
		return num / den
	}
	if raw := acf(xs); raw < 0.8 {
		t.Fatalf("test setup: raw ACF %g too low", raw)
	}
	if white := acf(res); math.Abs(white) > 0.08 {
		t.Errorf("residual ACF = %g, want ≈0", white)
	}
}

func TestWhitenValidation(t *testing.T) {
	seq := bag.Sequence{bag.New(0, [][]float64{{1, 2}})}
	if _, err := Whiten(seq, 1); err == nil {
		t.Error("2-D bags accepted")
	}
	if _, err := Whiten(nil, 0); err == nil {
		t.Error("order 0 accepted")
	}
	// Short bags pass through unchanged.
	short := bag.Sequence{bag.FromScalars(0, []float64{1, 2})}
	out, err := Whiten(short, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Len() != 2 {
		t.Error("short bag was not passed through")
	}
}

// TestWhiteningRevealsDynamicsChange is the headline test of the §6
// extension: two regimes share the SAME marginal distribution (unit
// variance, zero mean) but differ in dynamics (AR(1) φ=0.9 vs white
// noise). Raw signatures cannot distinguish the regimes; innovation
// signatures can.
func TestWhiteningRevealsDynamicsChange(t *testing.T) {
	rng := randx.New(4)
	const n = 30
	const change = 15
	seq := make(bag.Sequence, n)
	for ts := 0; ts < n; ts++ {
		var run []float64
		if ts < change {
			// AR(1) with unit MARGINAL variance: sigma = sqrt(1-phi²).
			run = arRun(rng, 400, 0.9, math.Sqrt(1-0.81))
		} else {
			run = arRun(rng, 400, 0.0, 1)
		}
		seq[ts] = bag.FromScalars(ts, run)
	}

	contrast := func(s bag.Sequence) float64 {
		cfg := core.Config{
			Tau: 5, TauPrime: 5,
			Builder:   signature.NewHistogramBuilder(-5, 5, 30),
			Bootstrap: bootstrap.Config{Replicates: 100},
			Seed:      9,
		}
		points, err := core.Run(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		var atChange float64
		var bg []float64
		for _, p := range points {
			if p.T == change {
				atChange = p.Score
			} else if p.T < change-3 || p.T > change+3 {
				bg = append(bg, p.Score)
			}
		}
		mean, sd := 0.0, 0.0
		for _, v := range bg {
			mean += v
		}
		mean /= float64(len(bg))
		for _, v := range bg {
			sd += (v - mean) * (v - mean)
		}
		sd = math.Sqrt(sd/float64(len(bg))) + 1e-9
		return (atChange - mean) / sd
	}

	raw := contrast(seq)
	whitened, err := Whiten(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	white := contrast(whitened)
	// Raw marginals are identical across the change: the raw contrast
	// must be unremarkable (below 3 background sd). Whitened innovations
	// change variance 0.19 → 1: the contrast must be strong.
	if raw > 3 {
		t.Errorf("raw contrast %g unexpectedly high — test premise broken", raw)
	}
	if white < 5 {
		t.Errorf("whitened contrast %g too weak — whitening did not reveal the change", white)
	}
	if white <= raw {
		t.Errorf("whitened contrast %g <= raw %g", white, raw)
	}
}
