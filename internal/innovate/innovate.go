// Package innovate implements the paper's second "future work" direction
// (§6): handling bags whose elements are CORRELATED rather than i.i.d.
// The paper's prescription is classical — "signals are often preprocessed
// by removing the predictable component. The resulting innovation time
// series is an i.i.d. sequence" — and this package provides exactly that
// preprocessing: each bag, interpreted as an ordered run of samples, is
// fitted with an AR(p) model (Yule-Walker) and replaced by its residual
// (innovation) bag.
//
// Whitening matters when the within-bag dependence masks a change: two
// regimes can share an identical marginal distribution while differing in
// dynamics (e.g. AR(1) with φ=0.9 and unit marginal variance versus white
// noise with unit variance). Raw signatures cannot see such a change;
// innovation signatures can.
package innovate

import (
	"fmt"

	"repro/internal/bag"
	"repro/internal/vec"
)

// FitAR estimates AR(p) coefficients and the innovation variance of an
// ordered sample run by solving the Yule-Walker equations on the sample
// autocovariances. It returns an error when the run is too short or the
// autocovariance system is singular.
func FitAR(xs []float64, order int) (coef []float64, innovVar float64, err error) {
	n := len(xs)
	if order < 1 {
		return nil, 0, fmt.Errorf("innovate: order must be >= 1, got %d", order)
	}
	if n < order+2 {
		return nil, 0, fmt.Errorf("innovate: need at least %d samples for AR(%d), got %d", order+2, order, n)
	}
	mean := vec.Mean(xs)
	// Sample autocovariances c[0..order].
	c := make([]float64, order+1)
	for lag := 0; lag <= order; lag++ {
		s := 0.0
		for i := lag; i < n; i++ {
			s += (xs[i] - mean) * (xs[i-lag] - mean)
		}
		c[lag] = s / float64(n)
	}
	if c[0] <= 0 {
		return nil, 0, fmt.Errorf("innovate: zero-variance run")
	}
	// Toeplitz system R·a = r.
	r := vec.NewMatrix(order, order)
	for i := 0; i < order; i++ {
		for j := 0; j < order; j++ {
			lag := i - j
			if lag < 0 {
				lag = -lag
			}
			r.Set(i, j, c[lag])
		}
		r.Set(i, i, r.At(i, i)*(1+1e-10)+1e-12)
	}
	coef, err = vec.SolveGauss(r, c[1:])
	if err != nil {
		return nil, 0, fmt.Errorf("innovate: Yule-Walker solve: %w", err)
	}
	innovVar = c[0]
	for i, a := range coef {
		innovVar -= a * c[i+1]
	}
	if innovVar < 0 {
		innovVar = 0
	}
	return coef, innovVar, nil
}

// Residuals returns the innovation sequence e_t = x_t − Σ a_i x_{t−i}
// (computed on mean-centered values, mean added back out — residuals are
// centered near zero). The output has len(xs) − order elements.
func Residuals(xs []float64, coef []float64) []float64 {
	order := len(coef)
	mean := vec.Mean(xs)
	out := make([]float64, 0, len(xs)-order)
	for t := order; t < len(xs); t++ {
		pred := 0.0
		for i, a := range coef {
			pred += a * (xs[t-1-i] - mean)
		}
		out = append(out, (xs[t]-mean)-pred)
	}
	return out
}

// Whiten replaces each 1-D bag with its AR(order) innovation bag. Bags
// shorter than order+2 are passed through unchanged (they carry too
// little sequence information to fit, and dropping them would break the
// detector's windowing).
func Whiten(seq bag.Sequence, order int) (bag.Sequence, error) {
	if order < 1 {
		return nil, fmt.Errorf("innovate: order must be >= 1, got %d", order)
	}
	out := make(bag.Sequence, len(seq))
	for i, b := range seq {
		if b.Len() > 0 && b.Dim() != 1 {
			return nil, fmt.Errorf("innovate: bag %d is %d-dimensional; whitening is defined for ordered scalar runs", i, b.Dim())
		}
		if b.Len() < order+2 {
			out[i] = b
			continue
		}
		xs := b.Scalars()
		coef, _, err := FitAR(xs, order)
		if err != nil {
			return nil, fmt.Errorf("innovate: bag %d: %w", i, err)
		}
		out[i] = bag.FromScalars(b.T, Residuals(xs, coef))
	}
	return out, nil
}
