package pamap

import (
	"math"
	"testing"

	"repro/internal/randx"
)

func TestTable1(t *testing.T) {
	acts := Table1()
	if len(acts) != 12 {
		t.Fatalf("Table 1 has %d activities, want 12", len(acts))
	}
	for i, a := range acts {
		if int(a) != i+1 {
			t.Errorf("activity %d has id %d", i, int(a))
		}
		if a.Name() == "" {
			t.Errorf("activity %d has empty name", int(a))
		}
	}
	if Lying.Name() != "lying" || RopeJumping.Name() != "rope jumping" {
		t.Error("Table 1 names wrong")
	}
	if Activity(99).Name() == "" {
		t.Error("unknown activity should render")
	}
}

func TestProtocol(t *testing.T) {
	p0 := Protocol(0)
	if len(p0) != 14 {
		t.Fatalf("protocol length %d, want 14", len(p0))
	}
	// The stairs interleave.
	count6, count7 := 0, 0
	for _, a := range p0 {
		if a == AscendingStairs {
			count6++
		}
		if a == DescendingStairs {
			count7++
		}
	}
	if count6 != 2 || count7 != 2 {
		t.Errorf("stairs appear %d/%d times, want 2/2", count6, count7)
	}
	// Subject 1 (0-based) skips rope jumping, like Fig. 7(b).
	p1 := Protocol(1)
	for _, a := range p1 {
		if a == RopeJumping {
			t.Error("subject 1 should skip rope jumping")
		}
	}
}

func TestGenerateShapesMatchPaperStatistics(t *testing.T) {
	rng := randx.New(1)
	rec := Generate(Config{Subject: 0}, rng)
	if err := rec.Bags.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Bags) != len(rec.Labels) {
		t.Fatal("labels not parallel to bags")
	}
	// Paper: 251.8 ± 32.5 bags per subject.
	if len(rec.Bags) < 180 || len(rec.Bags) > 330 {
		t.Errorf("bag count %d outside plausible range", len(rec.Bags))
	}
	// Paper: 947.8 ± 162.3 records per bag.
	total := 0
	for _, b := range rec.Bags {
		total += b.Len()
		if b.Dim() != Dim {
			t.Fatalf("bag dim %d", b.Dim())
		}
	}
	mean := float64(total) / float64(len(rec.Bags))
	if mean < 800 || mean > 1100 {
		t.Errorf("mean bag size %g, want ≈948", mean)
	}
	// Sizes must actually vary (sampling jitter + dropouts).
	varSum := 0.0
	for _, b := range rec.Bags {
		d := float64(b.Len()) - mean
		varSum += d * d
	}
	sd := math.Sqrt(varSum / float64(len(rec.Bags)))
	if sd < 50 {
		t.Errorf("bag size sd %g too small — no jitter", sd)
	}
}

func TestChangesMatchLabelBoundaries(t *testing.T) {
	rec := Generate(Config{Subject: 0}, randx.New(2))
	// Changes must be exactly the indices where labels switch.
	var want []int
	for i := 1; i < len(rec.Labels); i++ {
		if rec.Labels[i] != rec.Labels[i-1] {
			want = append(want, i)
		}
	}
	if len(want) != len(rec.Changes) {
		t.Fatalf("changes %v vs label boundaries %v", rec.Changes, want)
	}
	for i := range want {
		if rec.Changes[i] != want[i] {
			t.Fatalf("changes %v vs label boundaries %v", rec.Changes, want)
		}
	}
	// 14 segments → 13 changes.
	if len(rec.Changes) != 13 {
		t.Errorf("%d changes, want 13", len(rec.Changes))
	}
}

func TestRegimesSeparateByIntensity(t *testing.T) {
	// Sanity on the sensor model: resting activities must have lower
	// IMU magnitude and heart rate than vigorous ones.
	rng := randx.New(3)
	rec := Generate(Config{Subject: 0}, rng)
	meanFor := func(act Activity, ch int) float64 {
		s, n := 0.0, 0
		for i, b := range rec.Bags {
			if rec.Labels[i] != act {
				continue
			}
			for _, p := range b.Points {
				s += p[ch]
				n++
			}
		}
		return s / float64(n)
	}
	if meanFor(Lying, 3) >= meanFor(Running, 3) {
		t.Error("lying heart rate >= running heart rate")
	}
	if meanFor(Lying, 0) >= meanFor(Running, 0) {
		t.Error("lying IMU >= running IMU")
	}
	// Stairs up vs down differ most on the ankle channel (2).
	up, down := meanFor(AscendingStairs, 2), meanFor(DescendingStairs, 2)
	if math.Abs(up-down) < 0.2 {
		t.Errorf("stair regimes indistinguishable on ankle: %g vs %g", up, down)
	}
}

func TestPerSubjectVariation(t *testing.T) {
	a := Generate(Config{Subject: 0}, randx.New(4))
	b := Generate(Config{Subject: 2}, randx.New(5))
	// Same activity, different subjects → offset heart rates.
	hrMean := func(rec *Recording) float64 {
		s, n := 0.0, 0
		for i, bg := range rec.Bags {
			if rec.Labels[i] != Lying {
				continue
			}
			for _, p := range bg.Points {
				s += p[3]
				n++
			}
		}
		return s / float64(n)
	}
	if math.Abs(hrMean(a)-hrMean(b)) < 0.5 {
		t.Log("subjects happen to have close HR offsets (allowed but unusual)")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := Generate(Config{Subject: 0}, randx.New(6))
	b := Generate(Config{Subject: 0}, randx.New(6))
	if len(a.Bags) != len(b.Bags) {
		t.Fatal("lengths differ")
	}
	for i := range a.Bags {
		if a.Bags[i].Len() != b.Bags[i].Len() {
			t.Fatal("bag sizes differ")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.BagSeconds != 10 || c.MeanBagsPerActivity != 18 || c.MeanRecordsPerBag != 948 {
		t.Errorf("defaults = %+v", c)
	}
}
