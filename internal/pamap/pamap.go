// Package pamap simulates the PAMAP2 physical-activity-monitoring
// workload of §5.2 (Reiss & Stricker 2012). The real dataset — nine
// subjects wearing three inertial measurement units and a heart-rate
// monitor while performing the Table 1 protocol — is not redistributable
// here, so this package generates a statistically analogous stream:
//
//   - each activity is a stationary sensor regime over four channels
//     (three IMU acceleration magnitudes and heart rate) whose levels and
//     variability scale with activity intensity;
//   - subjects perform the activities in the protocol order with
//     per-subject durations and small per-subject sensor offsets;
//   - the sampling frequency jitters and connections drop, so the number
//     of records per 10-second bag varies (the paper reports 947.8 ±
//     162.3 records per bag and 251.8 ± 32.5 bags per subject).
//
// Ground-truth activity boundaries are returned, which the real dataset
// also provides via its activity labels. See DESIGN.md §4 for the
// substitution rationale.
package pamap

import (
	"fmt"

	"repro/internal/bag"
	"repro/internal/randx"
)

// Activity is a PAMAP2 activity id (Table 1).
type Activity int

// The twelve protocol activities of Table 1.
const (
	Lying Activity = iota + 1
	Sitting
	Standing
	Ironing
	VacuumCleaning
	AscendingStairs
	DescendingStairs
	Walking
	NordicWalking
	Cycling
	Running
	RopeJumping
)

// Name returns the Table 1 activity name.
func (a Activity) Name() string {
	switch a {
	case Lying:
		return "lying"
	case Sitting:
		return "sitting"
	case Standing:
		return "standing"
	case Ironing:
		return "ironing"
	case VacuumCleaning:
		return "vacuum cleaning"
	case AscendingStairs:
		return "ascending stairs"
	case DescendingStairs:
		return "descending stairs"
	case Walking:
		return "walking"
	case NordicWalking:
		return "Nordic walking"
	case Cycling:
		return "cycling"
	case Running:
		return "running"
	case RopeJumping:
		return "rope jumping"
	default:
		return fmt.Sprintf("activity-%d", int(a))
	}
}

// Table1 returns the activity/ID table of the paper in ID order.
func Table1() []Activity {
	return []Activity{
		Lying, Sitting, Standing, Ironing, VacuumCleaning, AscendingStairs,
		DescendingStairs, Walking, NordicWalking, Cycling, Running, RopeJumping,
	}
}

// regime holds the per-activity sensor characteristics: mean and standard
// deviation for the three IMU magnitude channels (hand, chest, ankle) and
// heart rate. Values are stylized (g-units ×10 and bpm) but ordered by
// real activity intensity so the distributional distances between
// activities vary the way the paper's change magnitudes do.
type regime struct {
	imu   [3]float64 // mean IMU magnitude per sensor location
	imuSd float64
	hr    float64 // mean heart rate
	hrSd  float64
}

var regimes = map[Activity]regime{
	Lying:            {imu: [3]float64{1.0, 1.0, 1.0}, imuSd: 0.15, hr: 60, hrSd: 3},
	Sitting:          {imu: [3]float64{1.2, 1.1, 1.0}, imuSd: 0.2, hr: 68, hrSd: 4},
	Standing:         {imu: [3]float64{1.3, 1.2, 1.2}, imuSd: 0.25, hr: 74, hrSd: 4},
	Ironing:          {imu: [3]float64{3.0, 1.4, 1.2}, imuSd: 0.8, hr: 80, hrSd: 5},
	VacuumCleaning:   {imu: [3]float64{3.8, 2.2, 2.4}, imuSd: 1.0, hr: 90, hrSd: 6},
	AscendingStairs:  {imu: [3]float64{4.5, 3.6, 6.0}, imuSd: 1.4, hr: 115, hrSd: 8},
	DescendingStairs: {imu: [3]float64{4.2, 3.4, 6.8}, imuSd: 1.6, hr: 105, hrSd: 8},
	Walking:          {imu: [3]float64{4.0, 3.0, 5.5}, imuSd: 1.2, hr: 95, hrSd: 6},
	NordicWalking:    {imu: [3]float64{5.5, 3.2, 5.8}, imuSd: 1.3, hr: 105, hrSd: 7},
	Cycling:          {imu: [3]float64{3.2, 2.0, 4.5}, imuSd: 1.0, hr: 110, hrSd: 8},
	Running:          {imu: [3]float64{8.0, 6.5, 9.5}, imuSd: 2.2, hr: 150, hrSd: 10},
	RopeJumping:      {imu: [3]float64{9.5, 7.5, 11.0}, imuSd: 2.6, hr: 160, hrSd: 12},
}

// Dim is the dimensionality of each sensor record (3 IMU + heart rate).
const Dim = 4

// Protocol returns the activity order a subject performs. The stair
// activities are interleaved (ascend, descend, ascend, descend) as in the
// PAMAP2 protocol, so some transitions are between very similar regimes —
// the hard cases visible in Fig. 7. Subjects beyond the first skip
// rope jumping occasionally (subject 2 in Fig. 7 has no activity 12).
func Protocol(subject int) []Activity {
	base := []Activity{
		Lying, Sitting, Standing, Ironing, VacuumCleaning,
		AscendingStairs, DescendingStairs, AscendingStairs, DescendingStairs,
		Walking, NordicWalking, Cycling, Running, RopeJumping,
	}
	if subject%3 == 1 { // e.g. subject 2 (0-based 1) skips rope jumping
		return base[:len(base)-1]
	}
	return base
}

// Config parameterizes a simulated recording.
type Config struct {
	// Subject selects per-subject variation (0-based).
	Subject int
	// BagSeconds is the bag window (paper: 10 s). Affects only labels.
	BagSeconds int
	// MeanBagsPerActivity controls segment lengths (default 18, giving
	// ≈252 bags over the 14-segment protocol, matching the paper's
	// 251.8 ± 32.5).
	MeanBagsPerActivity int
	// MeanRecordsPerBag is the average bag size (default 948, matching
	// the paper's 947.8 ± 162.3; jitter and dropouts produce the spread).
	MeanRecordsPerBag int
}

func (c Config) withDefaults() Config {
	if c.BagSeconds <= 0 {
		c.BagSeconds = 10
	}
	if c.MeanBagsPerActivity <= 0 {
		c.MeanBagsPerActivity = 18
	}
	if c.MeanRecordsPerBag <= 0 {
		c.MeanRecordsPerBag = 948
	}
	return c
}

// Recording is one simulated subject session.
type Recording struct {
	// Bags is the sequence of 10-second sensor bags.
	Bags bag.Sequence
	// Labels holds the activity of each bag (parallel to Bags).
	Labels []Activity
	// Changes lists the bag indices where the activity switches (the
	// index of the first bag of each new activity).
	Changes []int
}

// Generate simulates one subject's full protocol session.
func Generate(cfg Config, rng *randx.RNG) *Recording {
	cfg = cfg.withDefaults()
	protocol := Protocol(cfg.Subject)

	// Per-subject sensor personality: small offsets and scale.
	hrOffset := rng.Normal(0, 5)
	imuScale := 1 + rng.Normal(0, 0.05)

	rec := &Recording{}
	t := 0
	for segIdx, act := range protocol {
		// Segment length: mean ± 25%.
		nBags := int(float64(cfg.MeanBagsPerActivity) * (0.75 + rng.Float64()*0.5))
		if nBags < 4 {
			nBags = 4
		}
		if segIdx > 0 {
			rec.Changes = append(rec.Changes, t)
		}
		reg := regimes[act]
		for b := 0; b < nBags; b++ {
			n := bagSize(cfg, rng)
			pts := make([][]float64, n)
			for i := range pts {
				p := make([]float64, Dim)
				for ch := 0; ch < 3; ch++ {
					p[ch] = rng.Normal(reg.imu[ch]*imuScale, reg.imuSd)
				}
				p[3] = rng.Normal(reg.hr+hrOffset, reg.hrSd)
				pts[i] = p
			}
			rec.Bags = append(rec.Bags, bag.New(t, pts))
			rec.Labels = append(rec.Labels, act)
			t++
		}
	}
	return rec
}

// bagSize draws a per-bag record count: nominal sampling with frequency
// jitter plus occasional connection-loss dropouts, clamped to >= 1.
func bagSize(cfg Config, rng *randx.RNG) int {
	n := rng.Normal(float64(cfg.MeanRecordsPerBag), 0.12*float64(cfg.MeanRecordsPerBag))
	if rng.Bernoulli(0.05) {
		// Hardware fault: lose 10-70% of the window.
		n *= 0.3 + rng.Float64()*0.6
	}
	if n < 1 {
		n = 1
	}
	return int(n)
}
