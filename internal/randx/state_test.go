package randx

import (
	"encoding/json"
	"testing"
)

// drawMix consumes a mixed diet of sampler calls (the ones the detector
// pipeline actually uses) and returns a digest of the values, so two
// streams can be compared for bit-identity.
func drawMix(r *RNG, n int) []float64 {
	out := make([]float64, 0, 4*n)
	alpha := []float64{1, 1, 0.5, 2}
	dst := make([]float64, len(alpha))
	for i := 0; i < n; i++ {
		out = append(out, float64(r.Int63()))
		out = append(out, r.Float64())
		out = append(out, r.Normal(0, 1))
		r.DirichletInto(alpha, dst)
		out = append(out, dst[0], dst[3])
		out = append(out, r.ExpFloat64())
	}
	return out
}

func TestRNGStateRoundTrip(t *testing.T) {
	for name, mk := range map[string]func(int64) *RNG{"std": New, "fast": NewFast} {
		t.Run(name, func(t *testing.T) {
			ref := mk(12345)
			drawMix(ref, 50) // advance to an arbitrary mid-stream position

			st := ref.State()
			if st.Draws == 0 {
				t.Fatal("expected a non-zero draw count after sampling")
			}

			// JSON round-trip: the state must survive serialization, since
			// the engine snapshot envelope carries it over the wire.
			blob, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var back State
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatal(err)
			}
			if back != st {
				t.Fatalf("state JSON round-trip %+v != %+v", back, st)
			}

			restored, err := FromState(back)
			if err != nil {
				t.Fatal(err)
			}
			want := drawMix(ref, 30)
			got := drawMix(restored, 30)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("draw %d: restored %v != original %v", i, got[i], want[i])
				}
			}
			if restored.State() != ref.State() {
				t.Fatalf("post-draw states diverge: %+v vs %+v", restored.State(), ref.State())
			}
		})
	}
}

func TestRNGRestoreInPlace(t *testing.T) {
	ref := New(7)
	drawMix(ref, 10)
	st := ref.State()
	want := drawMix(ref, 10)

	// Restore onto an RNG that is on a completely different stream.
	other := New(99)
	drawMix(other, 3)
	if err := other.Restore(st); err != nil {
		t.Fatal(err)
	}
	got := drawMix(other, 10)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestRNGRestoreKindMismatch(t *testing.T) {
	if err := New(1).Restore(State{Kind: KindFast, Seed: 1}); err == nil {
		t.Fatal("expected kind mismatch error")
	}
	if _, err := FromState(State{Kind: "mystery", Seed: 1}); err == nil {
		t.Fatal("expected unknown kind error")
	}
}

func TestReseedResetsState(t *testing.T) {
	r := NewFast(3)
	drawMix(r, 5)
	r.Reseed(8)
	st := r.State()
	if st.Seed != 8 || st.Draws != 0 {
		t.Fatalf("state after Reseed = %+v, want seed 8 draws 0", st)
	}
	fresh := NewFast(8)
	a, b := drawMix(r, 5), drawMix(fresh, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reseeded stream diverges from fresh stream at %d", i)
		}
	}
}
