package randx

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(1)
	a := r.Split(1)
	b := r.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look identical (%d/100 equal draws)", same)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(3)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("Normal mean = %g, want 2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("Normal variance = %g, want 9", variance)
	}
}

func TestNormalVec(t *testing.T) {
	r := New(5)
	v := r.NormalVec(7, 0, 1)
	if len(v) != 7 {
		t.Fatalf("NormalVec length %d, want 7", len(v))
	}
}

func TestMVNormalMoments(t *testing.T) {
	mean := []float64{1, -1}
	cov := vec.NewMatrixFrom([][]float64{{2, 0.8}, {0.8, 1}})
	mv, err := NewMVNormal(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Dim() != 2 {
		t.Fatalf("Dim = %d", mv.Dim())
	}
	r := New(7)
	const n = 100000
	var s0, s1, s00, s11, s01 float64
	for i := 0; i < n; i++ {
		x := mv.Sample(r)
		s0 += x[0]
		s1 += x[1]
		s00 += x[0] * x[0]
		s11 += x[1] * x[1]
		s01 += x[0] * x[1]
	}
	m0, m1 := s0/n, s1/n
	if math.Abs(m0-1) > 0.05 || math.Abs(m1+1) > 0.05 {
		t.Errorf("MVNormal mean = (%g,%g), want (1,-1)", m0, m1)
	}
	c00 := s00/n - m0*m0
	c11 := s11/n - m1*m1
	c01 := s01/n - m0*m1
	if math.Abs(c00-2) > 0.1 || math.Abs(c11-1) > 0.06 || math.Abs(c01-0.8) > 0.06 {
		t.Errorf("MVNormal cov = [%g %g; %g %g], want [2 0.8; 0.8 1]", c00, c01, c01, c11)
	}
}

func TestMVNormalRejectsBadCov(t *testing.T) {
	if _, err := NewMVNormal([]float64{0}, vec.NewMatrix(2, 2)); err == nil {
		t.Fatal("expected dimension error")
	}
	bad := vec.NewMatrixFrom([][]float64{{1, 0}, {0, -1}})
	if _, err := NewMVNormal([]float64{0, 0}, bad); err == nil {
		t.Fatal("expected PSD error")
	}
}

func TestMVNormalIsotropic(t *testing.T) {
	mv := NewMVNormalIsotropic([]float64{3, 0, 0}, 2)
	r := New(11)
	const n = 50000
	var s, sq float64
	for i := 0; i < n; i++ {
		x := mv.Sample(r)
		s += x[0]
		sq += (x[0] - 3) * (x[0] - 3)
	}
	if math.Abs(s/n-3) > 0.05 {
		t.Errorf("isotropic mean = %g, want 3", s/n)
	}
	if math.Abs(sq/n-4) > 0.15 {
		t.Errorf("isotropic variance = %g, want 4", sq/n)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 20, 50, 200} {
		r := New(13)
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			k := float64(r.Poisson(lambda))
			sum += k
			sumSq += k * k
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		tol := 4 * math.Sqrt(lambda/float64(n)) * 3 // ~3 sigma with margin
		if math.Abs(mean-lambda) > math.Max(tol, 0.05) {
			t.Errorf("Poisson(%g) mean = %g", lambda, mean)
		}
		if math.Abs(variance-lambda) > math.Max(0.1*lambda, 0.1) {
			t.Errorf("Poisson(%g) variance = %g", lambda, variance)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := New(1)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson(<=0) must be 0")
	}
}

func TestGammaMoments(t *testing.T) {
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 1}, {1, 2}, {3, 0.5}, {10, 1},
	} {
		r := New(17)
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := r.Gamma(tc.shape, tc.scale)
			if x < 0 {
				t.Fatalf("Gamma produced negative %g", x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.02 {
			t.Errorf("Gamma(%g,%g) mean = %g, want %g", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.05 {
			t.Errorf("Gamma(%g,%g) variance = %g, want %g", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Gamma(0, 1)
}

func TestDirichletProperties(t *testing.T) {
	r := New(19)
	alpha := []float64{1, 2, 3, 4}
	const n = 50000
	sums := make([]float64, len(alpha))
	for i := 0; i < n; i++ {
		p := r.Dirichlet(alpha)
		total := 0.0
		for j, v := range p {
			if v < 0 {
				t.Fatalf("negative component %g", v)
			}
			total += v
			sums[j] += v
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("Dirichlet sample sums to %g", total)
		}
	}
	// E[p_j] = alpha_j / alpha_0 with alpha_0 = 10.
	for j, a := range alpha {
		want := a / 10.0
		got := sums[j] / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Dirichlet mean[%d] = %g, want %g", j, got, want)
		}
	}
}

func TestDirichletUniformMatchesDirichletOnes(t *testing.T) {
	r := New(23)
	const n = 20000
	// Var of Dir(1,1,1) component is (1/3)(2/3)/4 = 1/18.
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		p := r.DirichletUniform(3)
		if math.Abs(p[0]+p[1]+p[2]-1) > 1e-9 {
			t.Fatal("DirichletUniform does not sum to 1")
		}
		sum += p[0]
		sumSq += p[0] * p[0]
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1.0/3) > 0.01 {
		t.Errorf("mean = %g, want 1/3", mean)
	}
	if math.Abs(variance-1.0/18) > 0.008 {
		t.Errorf("variance = %g, want %g", variance, 1.0/18)
	}
}

func TestDirichletIntoValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).DirichletInto([]float64{1, 1}, make([]float64, 3))
}

func TestCategorical(t *testing.T) {
	r := New(29)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	got := float64(counts[2]) / n
	if math.Abs(got-0.75) > 0.02 {
		t.Errorf("P(2) = %g, want 0.75", got)
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { New(1).Categorical(nil) },
		"zero":     func() { New(1).Categorical([]float64{0, 0}) },
		"negative": func() { New(1).Categorical([]float64{1, -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBernoulli(t *testing.T) {
	r := New(31)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.015 {
		t.Errorf("Bernoulli(0.3) rate = %g", p)
	}
}
