// Package randx provides the deterministic, seedable random samplers used
// by the synthetic workloads and the Bayesian bootstrap: univariate and
// multivariate normal, Poisson, gamma, Dirichlet, exponential, and
// categorical draws. All generators consume an explicit *RNG so every
// experiment in the repository is reproducible from a single seed.
package randx

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vec"
)

// RNG is the random source for all samplers. It wraps math/rand.Rand so a
// single seeded stream drives an entire experiment.
//
// Every RNG tracks its stream position — the seed it was last (re)seeded
// with and the number of values drawn from its source since — so its
// exact state can be exported with State and reproduced with Restore or
// FromState. This is what lets a streaming detector checkpoint mid-run
// and resume bit-identically: both source backends advance one step per
// drawn value regardless of which sampler consumed it, so replaying the
// same number of draws lands on the same stream position.
type RNG struct {
	*rand.Rand
	src   rand.Source
	kind  string
	seed  int64
	draws uint64
}

// Source kinds of State: the stdlib source (New) and the xoshiro256++
// source (NewFast). The two produce different streams, so a state can
// only be restored onto the backend that produced it.
const (
	KindStd  = "std"
	KindFast = "fast"
)

// State is the serializable position of an RNG stream: restore it with
// (*RNG).Restore or FromState to obtain a generator whose future draws
// are bit-identical to the original's.
type State struct {
	Kind  string `json:"kind"`
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// countedSource wraps a Source64 and bumps the owning RNG's draw counter
// on every value pulled, whichever method pulls it. Both backends advance
// exactly one internal step per Int63/Uint64 call, so the counter is a
// faithful stream position.
type countedSource struct {
	inner rand.Source64
	n     *uint64
}

func (c *countedSource) Int63() int64 {
	*c.n++
	return c.inner.Int63()
}

func (c *countedSource) Uint64() uint64 {
	*c.n++
	return c.inner.Uint64()
}

func (c *countedSource) Seed(seed int64) { c.inner.Seed(seed) }

// New returns an RNG seeded with seed, backed by the stdlib source (the
// historical stream every experiment's seeds were chosen against).
func New(seed int64) *RNG {
	r := &RNG{kind: KindStd, seed: seed}
	src := &countedSource{inner: rand.NewSource(seed).(rand.Source64), n: &r.draws}
	r.src = src
	r.Rand = rand.New(src)
	return r
}

// NewFast returns an RNG backed by a xoshiro256++ source (Blackman &
// Vigna 2018). Its stream differs from New's, but seeding — and therefore
// Reseed — is O(1), where the stdlib source pays a ~600-word feedback
// register initialization. Use it for short-lived derived streams that
// are reseeded per task, e.g. the bootstrap's per-shard replicate
// streams.
func NewFast(seed int64) *RNG {
	x := &xoshiro{}
	x.Seed(seed)
	r := &RNG{kind: KindFast, seed: seed}
	src := &countedSource{inner: x, n: &r.draws}
	r.src = src
	r.Rand = rand.New(src)
	return r
}

// State returns the RNG's current stream position.
func (r *RNG) State() State { return State{Kind: r.kind, Seed: r.seed, Draws: r.draws} }

// Restore rewinds (or advances) r to the stream position st: it reseeds
// with st.Seed and replays st.Draws source steps, after which r's future
// draws are bit-identical to the RNG st was captured from. The backend
// must match (a std state cannot restore onto a fast RNG). Cost is
// O(Draws) — a replay, not a state copy — which keeps both backends
// restorable through one exact mechanism.
func (r *RNG) Restore(st State) error {
	if st.Kind != r.kind {
		return fmt.Errorf("randx: cannot restore %q state onto %q RNG", st.Kind, r.kind)
	}
	r.Reseed(st.Seed)
	cs := r.src.(*countedSource)
	for r.draws < st.Draws {
		cs.Uint64()
	}
	return nil
}

// FromState constructs a new RNG positioned at st; see (*RNG).Restore.
func FromState(st State) (*RNG, error) {
	var r *RNG
	switch st.Kind {
	case KindStd:
		r = New(st.Seed)
	case KindFast:
		r = NewFast(st.Seed)
	default:
		return nil, fmt.Errorf("randx: unknown RNG state kind %q", st.Kind)
	}
	if err := r.Restore(st); err != nil {
		return nil, err
	}
	return r, nil
}

// xoshiro is a xoshiro256++ generator (Blackman & Vigna 2018) seeded from
// an int64 via splitmix64, implementing math/rand.Source64.
type xoshiro struct {
	s [4]uint64
}

// Seed initializes the state from seed by four splitmix64 steps, the
// initialization recommended by the xoshiro authors. O(1), unlike the
// stdlib source.
func (x *xoshiro) Seed(seed int64) {
	z := uint64(seed)
	for i := range x.s {
		z += 0x9E3779B97F4A7C15
		w := z
		w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9
		w = (w ^ (w >> 27)) * 0x94D049BB133111EB
		x.s[i] = w ^ (w >> 31)
	}
}

func (x *xoshiro) Uint64() uint64 {
	s := &x.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func (x *xoshiro) Int63() int64 { return int64(x.Uint64() >> 1) }

func rotl(v uint64, k uint) uint64 { return (v << k) | (v >> (64 - k)) }

// SplitSeed deterministically derives an independent sub-seed from
// (seed, id) with splitmix64-style finalization. It is a pure function:
// shard k of a parallel computation can derive its own stream from a
// single base seed without consuming draws from a shared RNG, and the
// derived streams do not depend on how many shards run or in what order.
func SplitSeed(seed, id int64) int64 {
	z := uint64(seed) ^ (uint64(id) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & math.MaxInt64)
}

// SplitSeedString derives an independent sub-seed from (seed, id) for
// string-keyed shards: the id is hashed with FNV-1a 64 and the result
// mixed through SplitSeed. Like SplitSeed it is a pure function, so a
// multi-stream engine can derive each stream's seed from a single engine
// seed and the stream's name, independent of how many streams exist or
// in what order they are opened.
func SplitSeedString(seed int64, id string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return SplitSeed(seed, int64(h))
}

// Split derives an independent RNG from r, keyed by id. It is used to give
// each subsystem of an experiment (data generation, bootstrap, …) its own
// stream so adding draws to one does not perturb the others.
func (r *RNG) Split(id int64) *RNG {
	return New(SplitSeed(r.Int63(), id))
}

// Reseed resets r to the stream produced by its constructor with seed,
// without allocating a new generator. Parallel shard workers keep one RNG
// each and reseed it per task, which keeps hot loops allocation-free.
// O(1) for NewFast RNGs; New RNGs pay the stdlib's full re-init.
func (r *RNG) Reseed(seed int64) {
	r.seed = seed
	r.draws = 0
	r.src.Seed(seed)
}

// Normal draws a sample from N(mu, sigma²).
func (r *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.NormFloat64()
}

// NormalVec fills a length-d vector with independent N(mu, sigma²) draws.
func (r *RNG) NormalVec(d int, mu, sigma float64) []float64 {
	out := make([]float64, d)
	for i := range out {
		out[i] = r.Normal(mu, sigma)
	}
	return out
}

// MVNormal represents a multivariate normal distribution N(mean, cov),
// with the Cholesky factor of the covariance precomputed for fast
// repeated sampling.
type MVNormal struct {
	mean  []float64
	chol  *vec.Matrix
	lower bool
}

// NewMVNormal prepares a sampler for N(mean, cov). cov must be a symmetric
// positive semi-definite d×d matrix where d = len(mean).
func NewMVNormal(mean []float64, cov *vec.Matrix) (*MVNormal, error) {
	d := len(mean)
	if cov.Rows != d || cov.Cols != d {
		return nil, fmt.Errorf("randx: covariance is %dx%d, want %dx%d", cov.Rows, cov.Cols, d, d)
	}
	l, err := vec.Cholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("randx: covariance not PSD: %w", err)
	}
	return &MVNormal{mean: vec.Clone(mean), chol: l, lower: true}, nil
}

// NewMVNormalIsotropic prepares a sampler for N(mean, sigma²·I).
func NewMVNormalIsotropic(mean []float64, sigma float64) *MVNormal {
	d := len(mean)
	l := vec.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		l.Set(i, i, sigma)
	}
	return &MVNormal{mean: vec.Clone(mean), chol: l, lower: true}
}

// Dim returns the dimensionality of the distribution.
func (m *MVNormal) Dim() int { return len(m.mean) }

// Sample draws one vector from the distribution using r.
func (m *MVNormal) Sample(r *RNG) []float64 {
	d := len(m.mean)
	z := make([]float64, d)
	for i := range z {
		z[i] = r.NormFloat64()
	}
	out := vec.Clone(m.mean)
	for i := 0; i < d; i++ {
		row := m.chol.Row(i)
		s := 0.0
		for j := 0; j <= i; j++ {
			s += row[j] * z[j]
		}
		out[i] += s
	}
	return out
}

// Poisson draws a sample from a Poisson distribution with mean lambda.
// For small lambda it uses Knuth's product-of-uniforms inversion; for
// large lambda it uses the PTRS transformed-rejection method of
// Hörmann (1993), which has bounded expected iterations for all lambda.
func (r *RNG) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return r.poissonPTRS(lambda)
	}
}

// poissonPTRS implements Hörmann's PTRS rejection sampler for lambda >= 10.
func (r *RNG) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-lg {
			return int(k)
		}
	}
}

// Gamma draws from a Gamma(shape, scale) distribution (mean shape·scale)
// using the Marsaglia-Tsang squeeze method, with the standard boosting
// trick for shape < 1. It panics if shape or scale is not positive.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("randx: Gamma requires positive parameters, got shape=%g scale=%g", shape, scale))
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Dirichlet draws a probability vector from Dir(alpha). Every alpha[i]
// must be positive. The result sums to exactly 1 (renormalized).
func (r *RNG) Dirichlet(alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	r.DirichletInto(alpha, out)
	return out
}

// DirichletInto is Dirichlet without the allocation: it fills dst, which
// must have len(alpha) elements. The Bayesian bootstrap calls this in a
// tight loop.
func (r *RNG) DirichletInto(alpha []float64, dst []float64) {
	if len(dst) != len(alpha) {
		panic(fmt.Sprintf("randx: DirichletInto dst length %d != %d", len(dst), len(alpha)))
	}
	total := 0.0
	for i, a := range alpha {
		var g float64
		if a == 1 {
			// Gamma(1,1) is Exp(1); the direct exponential draw is several
			// times cheaper than the Marsaglia-Tsang rejection loop. This is
			// the common case: the plain Bayesian bootstrap uses Dir(1,…,1).
			g = r.ExpFloat64()
		} else {
			g = r.Gamma(a, 1)
		}
		dst[i] = g
		total += g
	}
	if total == 0 {
		// All gammas underflowed (tiny alphas): fall back to uniform.
		for i := range dst {
			dst[i] = 1 / float64(len(dst))
		}
		return
	}
	for i := range dst {
		dst[i] /= total
	}
}

// DirichletUniform draws from the flat Dirichlet Dir(1,…,1) of dimension n,
// the distribution used by the plain Bayesian bootstrap (Rubin 1981).
func (r *RNG) DirichletUniform(n int) []float64 {
	// For alpha = 1 the gamma draws reduce to exponentials.
	out := make([]float64, n)
	total := 0.0
	for i := range out {
		e := r.ExpFloat64()
		out[i] = e
		total += e
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Categorical draws an index from the (unnormalized, non-negative) weight
// vector w. It panics if w is empty or the total weight is not positive.
func (r *RNG) Categorical(w []float64) int {
	if len(w) == 0 {
		panic("randx: Categorical on empty weights")
	}
	total := 0.0
	for _, v := range w {
		if v < 0 {
			panic(fmt.Sprintf("randx: Categorical negative weight %g", v))
		}
		total += v
	}
	if total <= 0 {
		panic("randx: Categorical total weight must be positive")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }
