package randx

import (
	"fmt"
	"math"
	"testing"
)

// TestSplitSeedDeterministicAndSpread: SplitSeed is a pure function whose
// outputs for adjacent ids look unrelated and never collide over a
// practical range.
func TestSplitSeedDeterministicAndSpread(t *testing.T) {
	if SplitSeed(42, 7) != SplitSeed(42, 7) {
		t.Fatal("SplitSeed is not deterministic")
	}
	seen := make(map[int64]bool)
	for id := int64(0); id < 10000; id++ {
		s := SplitSeed(123456789, id)
		if s < 0 {
			t.Fatalf("SplitSeed produced negative seed %d", s)
		}
		if seen[s] {
			t.Fatalf("SplitSeed collision at id %d", id)
		}
		seen[s] = true
	}
	// Changing either argument must change the output.
	if SplitSeed(1, 2) == SplitSeed(1, 3) || SplitSeed(1, 2) == SplitSeed(2, 2) {
		t.Fatal("SplitSeed ignores an argument")
	}
}

// TestSplitMatchesSplitSeed: RNG.Split must remain exactly the historical
// stream — New(SplitSeed(first draw, id)).
func TestSplitMatchesSplitSeed(t *testing.T) {
	a := New(77)
	b := New(77)
	sa := a.Split(5)
	sb := New(SplitSeed(b.Int63(), 5))
	for i := 0; i < 100; i++ {
		if sa.Int63() != sb.Int63() {
			t.Fatalf("Split diverged from New(SplitSeed(...)) at draw %d", i)
		}
	}
}

// TestNewFastDeterministicAndReseedable: NewFast streams are reproducible
// from their seed, distinct across seeds, and Reseed restores the stream
// exactly without allocation.
func TestNewFastDeterministicAndReseedable(t *testing.T) {
	a, b := NewFast(9), NewFast(9)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("NewFast(9) streams diverged at draw %d", i)
		}
	}
	c := NewFast(10)
	same := true
	for i := 0; i < 10; i++ {
		if NewFast(9).Int63() == c.Int63() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("NewFast(9) and NewFast(10) look identical")
	}

	r := NewFast(1234)
	first := make([]int64, 20)
	for i := range first {
		first[i] = r.Int63()
	}
	r.Reseed(1234)
	for i := range first {
		if got := r.Int63(); got != first[i] {
			t.Fatalf("Reseed did not restore the stream at draw %d", i)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Reseed(42); _ = r.Int63() }); allocs != 0 {
		t.Errorf("Reseed allocates %g/op, want 0", allocs)
	}
}

// TestReseedMatchesNewForStdlibSource: Reseed on a New-backed RNG must
// reproduce New's stream, so both constructors honor the same contract.
func TestReseedMatchesNewForStdlibSource(t *testing.T) {
	r := New(1)
	r.Int63()
	r.Reseed(555)
	fresh := New(555)
	for i := 0; i < 50; i++ {
		if r.Int63() != fresh.Int63() {
			t.Fatalf("stdlib Reseed diverged from New at draw %d", i)
		}
	}
}

// TestNewFastMoments: the xoshiro-backed samplers must deliver the same
// distributions as the stdlib-backed ones.
func TestNewFastMoments(t *testing.T) {
	r := NewFast(2024)
	const n = 200000
	sumU, sumE, sumN, sumN2 := 0.0, 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		sumU += r.Float64()
		sumE += r.ExpFloat64()
		x := r.NormFloat64()
		sumN += x
		sumN2 += x * x
	}
	if m := sumU / n; math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean %g, want ~0.5", m)
	}
	if m := sumE / n; math.Abs(m-1) > 0.02 {
		t.Errorf("exponential mean %g, want ~1", m)
	}
	if m := sumN / n; math.Abs(m) > 0.02 {
		t.Errorf("normal mean %g, want ~0", m)
	}
	if v := sumN2/n - (sumN/n)*(sumN/n); math.Abs(v-1) > 0.03 {
		t.Errorf("normal variance %g, want ~1", v)
	}
}

// TestDirichletExpFastPathMatchesGamma: Dir(1,…,1) through the
// exponential fast path must have the same distribution as the gamma
// path with alpha just off 1 — compare component means and variances.
// (Mean 1/k, variance (k−1)/(k²(k+1)) for Dir(1,…,1).)
func TestDirichletExpFastPathMatchesGamma(t *testing.T) {
	const k = 4
	const n = 100000
	exact := []float64{1, 1, 1, 1}
	off := []float64{1 + 1e-9, 1 + 1e-9, 1 + 1e-9, 1 + 1e-9} // gamma path
	for name, alpha := range map[string][]float64{"exp": exact, "gamma": off} {
		r := New(77)
		dst := make([]float64, k)
		mean, m2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			r.DirichletInto(alpha, dst)
			mean += dst[0]
			m2 += dst[0] * dst[0]
		}
		mean /= n
		variance := m2/n - mean*mean
		if math.Abs(mean-0.25) > 0.01 {
			t.Errorf("%s path: mean %g, want 0.25", name, mean)
		}
		wantVar := float64(k-1) / float64(k*k*(k+1))
		if math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("%s path: variance %g, want ~%g", name, variance, wantVar)
		}
	}
}

func TestSplitSeedString(t *testing.T) {
	// Pure function: same (seed, id) → same sub-seed.
	if SplitSeedString(7, "user-42") != SplitSeedString(7, "user-42") {
		t.Fatal("SplitSeedString is not deterministic")
	}
	// Distinct ids and distinct base seeds give distinct streams.
	seen := map[int64]string{}
	for _, seed := range []int64{0, 1, 7} {
		for _, id := range []string{"", "a", "b", "ab", "ba", "user-1", "user-2"} {
			s := SplitSeedString(seed, id)
			if s < 0 {
				t.Fatalf("SplitSeedString(%d, %q) = %d, want non-negative", seed, id, s)
			}
			key := fmt.Sprintf("%d/%s", seed, id)
			if prev, ok := seen[s]; ok {
				t.Fatalf("collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
